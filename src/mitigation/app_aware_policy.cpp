#include "mitigation/app_aware_policy.hpp"

#include <algorithm>

namespace athena::mitigation {

AppAwareGrantPolicy::AppAwareGrantPolicy(const ran::RanConfig& cell)
    : AppAwareGrantPolicy(cell, Config{}) {}

AppAwareGrantPolicy::AppAwareGrantPolicy(const ran::RanConfig& cell, Config config)
    : cell_(cell), config_(config), fallback_(cell) {}

void AppAwareGrantPolicy::Announce(const StreamAnnouncement& announcement) {
  for (auto& s : streams_) {
    if (s.info.stream_id == announcement.stream_id) {
      // Keep the grant cursor monotone: never re-grant units already
      // covered, even if the refreshed announcement looks backwards.
      s.info = announcement;
      s.next_due = std::max(s.next_due, announcement.next_unit_at);
      s.active = true;
      return;
    }
  }
  streams_.push_back(Stream{announcement, announcement.next_unit_at, true});
}

ran::GrantPolicy::Decision AppAwareGrantPolicy::OnUplinkSlot(const SlotInfo& slot) {
  // A unit generated at t can ride a slot at s if t + processing <= s.
  const sim::TimePoint cutoff = slot.slot_time - cell_.ue_processing_delay;

  std::uint32_t predicted_bytes = 0;
  for (auto& s : streams_) {
    if (!s.active || s.info.unit_interval.count() <= 0) continue;
    if (slot.slot_time - s.info.next_unit_at > config_.announcement_ttl) {
      s.active = false;  // stale: stop predicting until re-announced
      continue;
    }
    while (s.next_due <= cutoff) {
      predicted_bytes += static_cast<std::uint32_t>(
          static_cast<double>(s.info.unit_bytes) * config_.size_margin);
      s.next_due += s.info.unit_interval;
    }
  }

  if (predicted_bytes > 0) {
    ++predicted_grants_;
    // Consume the fallback's slot decision too, so its pending-grant
    // bookkeeping stays coherent, then take the larger of the two.
    const Decision fb = fallback_.OnUplinkSlot(slot);
    const std::uint32_t tbs =
        std::min(std::max(predicted_bytes, fb.tbs_bytes), slot.available_bytes);
    return Decision{tbs, ran::GrantType::kRequested};
  }
  ++fallback_grants_;
  return fallback_.OnUplinkSlot(slot);
}

void AppAwareGrantPolicy::OnBsrDecoded(sim::TimePoint decoded_at,
                                       std::uint32_t reported_bytes) {
  fallback_.OnBsrDecoded(decoded_at, reported_bytes);
}

void AppAwareGrantPolicy::OnTbFilled(sim::TimePoint slot_time, const Decision& grant,
                                     std::uint32_t used_bytes) {
  fallback_.OnTbFilled(slot_time, grant, used_bytes);
}

}  // namespace athena::mitigation
