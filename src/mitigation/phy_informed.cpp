#include "mitigation/phy_informed.hpp"

#include <algorithm>
#include <cmath>

#include "sim/check.hpp"

namespace athena::mitigation {

OnlineRanDelayEstimator::OnlineRanDelayEstimator()
    : OnlineRanDelayEstimator(Config{}) {}

void OnlineRanDelayEstimator::OnPacketSent(std::uint16_t transport_seq,
                                           std::uint32_t size_bytes, sim::TimePoint sent_at) {
  pending_.push_back(Pending{
      .transport_seq = transport_seq,
      .sent_at = sent_at,
      .unassigned = size_bytes,
      .undelivered = size_bytes,
      .last_decode = sent_at,
  });
  // Backstop against unbounded growth when chains are dropped by HARQ:
  // evict the oldest (its delay simply stays unknown — no mask applied).
  while (pending_.size() > config_.max_tracked_packets) {
    pending_.pop_front();
    ++base_index_;
    drain_cursor_ = std::max(drain_cursor_, base_index_);
  }
}

void OnlineRanDelayEstimator::OnTbRecord(const ran::TbRecord& tb) {
  if (tb.harq_round == 0) {
    // New chain: FIFO byte-conservation drain, same invariant as the
    // offline correlator.
    Chain chain;
    std::uint32_t avail = tb.used_bytes;
    while (avail > 0) {
      if (drain_cursor_ < base_index_) drain_cursor_ = base_index_;
      const std::size_t pos = drain_cursor_ - base_index_;
      if (pos >= pending_.size()) break;  // telemetry ahead of send log
      Pending& p = pending_[pos];
      if (p.unassigned == 0) {
        ++drain_cursor_;
        continue;
      }
      const std::uint32_t take = std::min(avail, p.unassigned);
      p.unassigned -= take;
      avail -= take;
      chain.segments.emplace_back(drain_cursor_, take);
      if (p.unassigned == 0) ++drain_cursor_;
    }
    if (!chain.segments.empty()) chains_.emplace(tb.chain_id, std::move(chain));
  }

  if (!tb.crc_ok) return;
  const auto it = chains_.find(tb.chain_id);
  if (it == chains_.end() || it->second.resolved) return;
  it->second.resolved = true;
  for (const auto& [global_idx, bytes] : it->second.segments) {
    if (global_idx < base_index_) continue;  // evicted
    const std::size_t pos = global_idx - base_index_;
    if (pos >= pending_.size()) continue;
    Pending& p = pending_[pos];
    p.undelivered = p.undelivered > bytes ? p.undelivered - bytes : 0;
    p.last_decode = std::max(p.last_decode, tb.slot_time);
    if (p.undelivered == 0) Resolve(p);
  }
  chains_.erase(it);

  // Compact the fully processed prefix.
  while (!pending_.empty() && pending_.front().undelivered == 0 &&
         pending_.front().unassigned == 0) {
    pending_.pop_front();
    ++base_index_;
  }
  drain_cursor_ = std::max(drain_cursor_, base_index_);
}

void OnlineRanDelayEstimator::Resolve(Pending& p) {
  const sim::Duration delay = p.last_decode - p.sent_at;
  ran_delay_[p.transport_seq] = delay;
  ran_delay_order_.push_back(p.transport_seq);
  while (ran_delay_order_.size() > config_.max_tracked_packets) {
    ran_delay_.erase(ran_delay_order_.front());
    ran_delay_order_.pop_front();
  }
  if (!min_delay_ || delay < *min_delay_) min_delay_ = delay;
  ++resolved_;
}

std::optional<sim::Duration> OnlineRanDelayEstimator::ExtraDelay(
    std::uint16_t transport_seq) const {
  const auto it = ran_delay_.find(transport_seq);
  if (it == ran_delay_.end() || !min_delay_) return std::nullopt;
  const auto extra = it->second - *min_delay_;
  return extra.count() > 0 ? extra : sim::Duration{0};
}

void PhyInformedController::OnPacketSent(const net::Packet& p, sim::TimePoint now) {
  if (!p.rtp) return;
  estimator_.OnPacketSent(p.rtp->transport_seq, p.size_bytes, now);
}

void PhyInformedController::set_mask_gain(double gain) {
  ATHENA_CHECK(!std::isnan(gain), "PhyInformedController::set_mask_gain: NaN gain");
  mask_gain_ = std::clamp(gain, 0.0, 1.0);
}

double PhyInformedController::OnFeedback(std::span<const rtp::PacketReport> reports,
                                         sim::TimePoint now) {
  if (mask_gain_ == 0.0) {
    // Fully un-masked: behave exactly like plain GCC, including feeding
    // reports in their original arrival order.
    return gcc_.OnFeedback(reports, now);
  }
  std::vector<rtp::PacketReport> masked(reports.begin(), reports.end());
  for (auto& r : masked) {
    if (const auto extra = estimator_.ExtraDelay(r.transport_seq)) {
      r.recv_ts -= sim::Duration{static_cast<std::int64_t>(
          static_cast<double>(extra->count()) * mask_gain_)};
      ++masked_;
    }
  }
  // Masking can locally reorder receive timestamps; GCC's grouping keys on
  // send times, so feed in send order.
  std::sort(masked.begin(), masked.end(),
            [](const rtp::PacketReport& a, const rtp::PacketReport& b) {
              return a.send_ts < b.send_ts;
            });
  return gcc_.OnFeedback(masked, now);
}

}  // namespace athena::mitigation
