// §5.2, first flavor: an application-aware uplink scheduler.
//
// "Video-conferencing packets can be annotated (e.g., through RTP
// extensions) with media-level metadata … the number of streams, their
// sampling/frame rates, and a periodically updated estimate of the current
// frame size. Using this information, the base station can issue grants
// exactly at the right times when a sample or frame is generated."
//
// The policy keeps one predictor per announced stream, grants the whole
// estimated unit size at the first uplink slot the unit can make, and
// falls back to the baseline BSR machinery for anything unpredicted.
#pragma once

#include <cstdint>
#include <vector>

#include "ran/grant_policy.hpp"

namespace athena::mitigation {

/// Media-pattern metadata as carried by the RTP header extension.
struct StreamAnnouncement {
  std::uint32_t stream_id = 0;
  sim::TimePoint next_unit_at;     ///< generation time of the next frame/sample
  sim::Duration unit_interval{0};  ///< frame/sample spacing
  std::uint32_t unit_bytes = 0;    ///< current size estimate (on-the-wire)
};

class AppAwareGrantPolicy : public ran::GrantPolicy {
 public:
  struct Config {
    /// Grant head-room over the announced size (frame sizes vary a little;
    /// an undersized grant would reintroduce a BSR round trip).
    double size_margin = 1.25;
    /// Stop trusting an announcement this long after its horizon.
    sim::Duration announcement_ttl{std::chrono::seconds{2}};
  };

  explicit AppAwareGrantPolicy(const ran::RanConfig& cell);  // default config
  AppAwareGrantPolicy(const ran::RanConfig& cell, Config config);

  /// Updated announcements from the application (periodically refreshed).
  void Announce(const StreamAnnouncement& announcement);

  Decision OnUplinkSlot(const SlotInfo& slot) override;
  void OnBsrDecoded(sim::TimePoint decoded_at, std::uint32_t reported_bytes) override;
  void OnTbFilled(sim::TimePoint slot_time, const Decision& grant,
                  std::uint32_t used_bytes) override;

  [[nodiscard]] std::uint64_t predicted_grants() const { return predicted_grants_; }
  [[nodiscard]] std::uint64_t fallback_grants() const { return fallback_grants_; }

 private:
  struct Stream {
    StreamAnnouncement info;
    sim::TimePoint next_due;  ///< next unit not yet granted
    bool active = false;
  };

  ran::RanConfig cell_;
  Config config_;
  ran::BsrGrantPolicy fallback_;
  std::vector<Stream> streams_;
  sim::TimePoint prev_slot_;
  std::uint64_t predicted_grants_ = 0;
  std::uint64_t fallback_grants_ = 0;
};

}  // namespace athena::mitigation
