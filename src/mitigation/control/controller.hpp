// The online mitigation controller: the decide/act/verify half of the
// §5 closed loop. Triggers arrive from the live DetectorBank (via
// LiveEngine::set_anomaly_listener); at every decision tick the
// controller maps the highest-ranked attributions onto the three
// mitigation knobs — grant policy mode + proactive scale (ran/),
// PHY-informed delay-mask gain (cc/), paced sending (app/) — under a
// guardrail layer that makes the loop fail-safe against the PR-4 fault
// matrix:
//
//   * hysteresis + cooldown   — no flapping on a single noisy verdict
//   * per-knob min/max clamps — an actuation can never leave the safe range
//   * confidence gate         — refuses to act on low-confidence verdicts,
//                               while telemetry-gap/overload detectors fire,
//                               or while the correlator reports degraded input
//   * fail-safe watchdog      — reverts to baseline when QoE worsens after
//                               an actuation or the telemetry feed goes
//                               silent mid-flight, recording why
//
// Every decision (including refusals) lands in a deterministic ledger;
// its FNV digest is the byte-identity witness the --jobs and
// checkpoint/restore tests pin. All timing is virtual: the sense-to-act
// latency of each actuation is measured from the anomaly's observation
// instant to the actuating tick and must stay within the configured
// budget by construction (the tick period never exceeds the budget).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/live/anomaly.hpp"
#include "ran/types.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace athena::obs::live {
class LiveEngine;
}  // namespace athena::obs::live

namespace athena::mitigation::control {

/// The actuation surface, one entry per knob. Kept in enum order so the
/// ledger digest is stable.
enum class Knob : std::uint8_t {
  kGrantMode,       ///< ran/: baseline BSR scheduler vs traffic predictor
  kProactiveScale,  ///< ran/: proactive grant size multiplier
  kCcMaskGain,      ///< cc/: §5.3 delay-mask gain on TWCC feedback
  kPacing,          ///< app/: paced sending on/off
};
inline constexpr std::size_t kKnobCount = 4;
[[nodiscard]] const char* ToString(Knob knob);

enum class DecisionOutcome : std::uint8_t {
  kActuated,           ///< knob moved
  kReverted,           ///< watchdog rolled the knob back to baseline
  kBlockedConfidence,  ///< confidence gate refused (low confidence / gap / degraded)
  kBlockedHysteresis,  ///< not enough corroborating triggers yet
  kBlockedCooldown,    ///< knob moved too recently
  kBlockedNoActuator,  ///< no actuator wired for this knob (e.g. no RAN)
  kExpired,            ///< trigger aged past the sense-to-act budget
};
[[nodiscard]] const char* ToString(DecisionOutcome outcome);

struct GuardrailConfig {
  /// Verdicts below this confidence never actuate.
  double min_confidence = 0.5;
  /// A telemetry-gap or overload verdict poisons the gate for this long.
  sim::Duration gate_hold{std::chrono::seconds{1}};
  /// Corroborating triggers required per knob before the first move.
  std::uint32_t hysteresis_triggers = 2;
  /// ... which must all land within this window.
  sim::Duration hysteresis_window{std::chrono::seconds{2}};
  /// Minimum spacing between moves of the same knob.
  sim::Duration cooldown{std::chrono::milliseconds{500}};
  /// QoE verification horizon after each actuation.
  sim::Duration verify_window{std::chrono::milliseconds{600}};
  /// Revert when the frame-late fraction over the post-actuation window
  /// exceeds the pre-actuation window's by more than this.
  double max_late_fraction_increase = 0.10;
  /// Fail-safe: with knobs active, a telemetry feed silent for this long
  /// (while the session renders frames) reverts everything to baseline.
  sim::Duration telemetry_silence{std::chrono::milliseconds{250}};
  /// Knob clamps.
  double mask_gain_min = 0.0;
  double mask_gain_max = 1.0;
  double proactive_scale_min = 0.5;
  double proactive_scale_max = 1.0;
};

/// Callbacks into the session's knobs; absent entries mean the knob does
/// not exist in this session (the controller records the refusal).
struct Actuators {
  std::function<void(bool use_predictor)> grant_mode;
  std::function<void(double scale)> proactive_scale;
  std::function<void(double gain)> cc_mask_gain;
  std::function<void(bool enabled)> pacing;
};

/// One ledger entry. Fields are exactly what --diagnose prints: trigger,
/// attribution, knob delta, outcome, and the sense-to-act latency.
struct DecisionRecord {
  sim::TimePoint at;
  obs::live::AnomalyKind trigger{};
  double confidence = 0.0;
  Knob knob{};
  double from = 0.0;
  double to = 0.0;
  DecisionOutcome outcome{};
  sim::Duration sense_to_act{0};
  const char* why = "";  ///< string literal — safe to hash and print
};

class MitigationController {
 public:
  struct Config {
    /// Hard sense-to-act bound, virtual time. The decision tick runs at
    /// min(tick, budget) so a trigger is always decided within budget.
    sim::Duration budget{std::chrono::milliseconds{50}};
    sim::Duration tick{std::chrono::milliseconds{10}};
    GuardrailConfig guard;
  };

  MitigationController(sim::Simulator& sim, Config config);

  void set_actuators(Actuators actuators) { actuators_ = std::move(actuators); }
  /// The rollup source for the QoE watchdog (frames rendered/late).
  void set_live(const obs::live::LiveEngine* live) { live_ = live; }
  /// Overrides the QoE probe (tests): returns (frames_rendered, frames_late).
  void set_qoe_probe(std::function<std::pair<std::uint64_t, std::uint64_t>()> probe) {
    qoe_probe_ = std::move(probe);
  }
  /// Declares that a live telemetry feed exists, arming the feed-silence
  /// fail-safe. Sessions without a RAN never arm it.
  void set_has_telemetry_feed(bool has) { has_feed_ = has; }

  /// Begins the decision tick chain. Events capture `this` raw: the
  /// controller must outlive the simulator run (it never touches the
  /// simulator after the run ends, so tearing the sim down first is safe).
  void Start();

  // --- input feeds ---
  void OnAnomaly(const obs::live::AnomalyEvent& event);
  void OnTelemetry(const ran::TbRecord& tb);
  void NoteCorrelationDegraded(bool degraded) { correlation_degraded_ = degraded; }

  // --- state / ledger ---
  [[nodiscard]] const std::vector<DecisionRecord>& ledger() const { return ledger_; }
  [[nodiscard]] std::uint64_t LedgerDigest() const;
  void RenderLedger(std::ostream& os) const;

  [[nodiscard]] std::uint64_t actuations() const { return actuations_; }
  [[nodiscard]] std::uint64_t reverts() const { return reverts_; }
  [[nodiscard]] std::uint64_t guardrail_blocks() const { return guardrail_blocks_; }
  [[nodiscard]] sim::Duration max_sense_to_act() const { return max_sense_to_act_; }
  [[nodiscard]] double knob_value(Knob knob) const {
    return current_[static_cast<std::size_t>(knob)];
  }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct PendingTrigger {
    obs::live::AnomalyKind kind{};
    double confidence = 0.0;
    sim::TimePoint seen_at;
  };
  struct Verification {
    Knob knob{};
    sim::TimePoint at;
    double pre_late_fraction = 0.0;
    std::uint64_t rendered_at_act = 0;
    std::uint64_t late_at_act = 0;
    double revert_to = 0.0;
  };
  struct QoeSample {
    sim::TimePoint t;
    std::uint64_t rendered = 0;
    std::uint64_t late = 0;
  };

  void ScheduleTick();
  void Tick();
  void Decide(const PendingTrigger& trigger, sim::TimePoint now, bool gated);
  void Apply(Knob knob, double target, const PendingTrigger& trigger,
             sim::TimePoint now);
  void Revert(Knob knob, sim::TimePoint now, const char* why);
  void Record(DecisionRecord record);
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> ProbeQoe() const;
  [[nodiscard]] double LateFractionSince(std::uint64_t rendered0,
                                         std::uint64_t late0) const;
  [[nodiscard]] double WindowLateFraction(sim::TimePoint now) const;

  sim::Simulator& sim_;
  Config config_;
  GuardrailConfig guard_;
  Actuators actuators_;
  const obs::live::LiveEngine* live_ = nullptr;
  std::function<std::pair<std::uint64_t, std::uint64_t>()> qoe_probe_;

  std::vector<PendingTrigger> pending_;
  std::deque<sim::TimePoint> knob_triggers_[kKnobCount];
  sim::TimePoint last_actuation_[kKnobCount];
  bool ever_actuated_[kKnobCount] = {};
  double current_[kKnobCount] = {0.0, 1.0, 0.0, 0.0};  // baselines, Knob order
  std::vector<Verification> verifying_;
  std::deque<QoeSample> qoe_history_;

  bool has_feed_ = false;
  bool feed_seen_ = false;
  sim::TimePoint last_feed_;
  sim::TimePoint last_gate_anomaly_;
  bool gate_anomaly_seen_ = false;
  bool correlation_degraded_ = false;

  std::vector<DecisionRecord> ledger_;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t actuations_ = 0;
  std::uint64_t reverts_ = 0;
  std::uint64_t guardrail_blocks_ = 0;
  sim::Duration max_sense_to_act_{0};
};

}  // namespace athena::mitigation::control
