// Session wiring for the mitigation control plane: installs the
// actuation seams into a SessionConfig (switchable grant policy,
// PHY-informed controller at zero mask gain, pacer present but
// disabled — i.e. behaviour identical to an un-mitigated session until
// the controller moves a knob), then binds each freshly built session
// to a fresh LiveEngine + MitigationController pair.
//
// The runtime outlives individual driver attempts: under
// resilience::Supervisor every restart rebuilds the session, and
// BindSession discards all prior controller state so the
// replay-from-zero reproduces the decision ledger byte-identically.
// The stable-address ResettableSink lets callers install one trace sink
// (RunPlan::trace_sink / ObsSession extra_sink) whose inner engine is
// swapped per attempt.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>

#include "app/session.hpp"
#include "mitigation/control/controller.hpp"
#include "mitigation/phy_informed.hpp"
#include "obs/live/live.hpp"
#include "obs/trace.hpp"
#include "ran/grant_policy.hpp"

namespace athena::mitigation::control {

/// A TraceSink with a stable address whose target can be re-pointed per
/// driver attempt. Null inner = drop (cheap no-op).
class ResettableSink final : public obs::TraceSink {
 public:
  void set_inner(obs::TraceSink* inner) { inner_ = inner; }

  void Emit(const obs::TraceEvent& event) override {
    if (inner_ != nullptr) inner_->Emit(event);
  }
  void EmitBatch(const obs::TraceEvent* events, std::size_t count) override {
    if (inner_ != nullptr) inner_->EmitBatch(events, count);
  }

 private:
  obs::TraceSink* inner_ = nullptr;
};

class MitigationRuntime {
 public:
  struct Options {
    MitigationController::Config controller;
    obs::live::LiveEngine::Options live;
  };

  explicit MitigationRuntime(Options options = {}) : options_(options) {}

  /// Installs the actuation seams on `config`. Call once, before any
  /// session is built from it. The installed factories capture `this`,
  /// so the runtime must outlive every session built from the config.
  void InstallConfigHooks(app::SessionConfig& config);

  /// Binds a freshly constructed (not yet started) session: builds a
  /// fresh LiveEngine + controller, fans the RAN telemetry stream into
  /// the PHY-informed CC and the controller's feed watchdog, subscribes
  /// to anomaly verdicts, and starts the decision tick. Prior state from
  /// an earlier attempt is discarded.
  void BindSession(sim::Simulator& sim, app::Session& session);

  /// The stable trace sink to install for the run (RunPlan::trace_sink,
  /// ObsSession extra_sink, or a ScopedTraceSink).
  [[nodiscard]] obs::TraceSink* sink() { return &sink_; }

  [[nodiscard]] MitigationController* controller() { return controller_.get(); }
  [[nodiscard]] const MitigationController* controller() const { return controller_.get(); }
  [[nodiscard]] const obs::live::LiveEngine* live() const { return live_.get(); }

  /// Per-record interposer on the telemetry feed (chaos: lying
  /// telemetry). Returning nullopt drops the record — the control plane
  /// sees a silent feed; the session's own recorded telemetry is
  /// untouched. Applies only to the mitigation plane's view.
  using FeedFault = std::function<std::optional<ran::TbRecord>(const ran::TbRecord&)>;
  void set_feed_fault(FeedFault fault) { feed_fault_ = std::move(fault); }

  /// Renders the decision ledger (empty line-set before any BindSession).
  void RenderLedger(std::ostream& os) const;

 private:
  Options options_;
  ResettableSink sink_;
  std::unique_ptr<obs::live::LiveEngine> live_;
  std::unique_ptr<MitigationController> controller_;
  FeedFault feed_fault_;

  // Raw pointers into the *current* session (owned by it); refreshed by
  // the config factories each time a session is constructed.
  ran::TunableGrantPolicy* grant_ = nullptr;
  PhyInformedController* cc_ = nullptr;
};

}  // namespace athena::mitigation::control
