#include "mitigation/control/runtime.hpp"

#include <ostream>
#include <utility>

#include "app/pacer.hpp"
#include "app/sender.hpp"
#include "mitigation/traffic_predictor.hpp"
#include "ran/uplink.hpp"

namespace athena::mitigation::control {

void MitigationRuntime::InstallConfigHooks(app::SessionConfig& config) {
  // RAN knob: a switchable baseline/predictor pair. The factory runs
  // inside Session construction, so the stashed pointer always refers to
  // the most recently built session's policy.
  config.grant_policy = [this](const ran::RanConfig& cell) {
    auto policy = std::make_unique<ran::TunableGrantPolicy>(
        std::make_unique<ran::BsrGrantPolicy>(cell),
        std::make_unique<TrafficPredictorPolicy>(cell));
    grant_ = policy.get();
    return std::unique_ptr<ran::GrantPolicy>(std::move(policy));
  };

  // CC knob: the §5.3 controller at zero mask gain — byte-identical to
  // plain GCC until the controller raises the gain.
  config.controller_factory = [this, gcc = config.gcc]() {
    auto controller = std::make_unique<PhyInformedController>(gcc);
    controller->set_mask_gain(0.0);
    cc_ = controller.get();
    return std::unique_ptr<app::RateController>(std::move(controller));
  };

  // App knob: the pacer exists but starts disabled (pure pass-through),
  // so the un-actuated session keeps its per-frame burst timing.
  config.sender.pacing_enabled = true;
}

void MitigationRuntime::BindSession(sim::Simulator& sim, app::Session& session) {
  // Fresh per-attempt state: a supervisor restart replays from t=0 and
  // must re-derive the identical ledger, so nothing carries over.
  live_ = std::make_unique<obs::live::LiveEngine>(options_.live);
  controller_ = std::make_unique<MitigationController>(sim, options_.controller);
  controller_->set_live(live_.get());
  live_->set_anomaly_listener(
      [c = controller_.get()](const obs::live::AnomalyEvent& e) { c->OnAnomaly(e); });
  sink_.set_inner(live_.get());

  Actuators actuators;
  if (grant_ != nullptr) {
    actuators.grant_mode = [g = grant_](bool use_predictor) {
      g->set_use_alternate(use_predictor);
    };
    actuators.proactive_scale = [g = grant_](double scale) {
      g->set_proactive_scale(scale);
    };
  }
  if (cc_ != nullptr) {
    actuators.cc_mask_gain = [cc = cc_](double gain) { cc->set_mask_gain(gain); };
  }
  if (app::Pacer* pacer = session.sender().pacer()) {
    pacer->set_enabled(false);
    actuators.pacing = [pacer](bool enabled) { pacer->set_enabled(enabled); };
  }
  controller_->set_actuators(std::move(actuators));

  if (ran::RanUplink* uplink = session.ran_uplink()) {
    controller_->set_has_telemetry_feed(true);
    uplink->set_telemetry_listener([this](const ran::TbRecord& tb) {
      std::optional<ran::TbRecord> record =
          feed_fault_ ? feed_fault_(tb) : std::optional<ran::TbRecord>{tb};
      if (!record) return;  // dropped — the control plane sees silence
      if (cc_ != nullptr) cc_->OnTbRecord(*record);
      if (controller_ != nullptr) controller_->OnTelemetry(*record);
    });
  }

  controller_->Start();
}

void MitigationRuntime::RenderLedger(std::ostream& os) const {
  if (controller_ == nullptr) {
    os << "mitigation decision ledger: (controller never bound)\n";
    return;
  }
  controller_->RenderLedger(os);
}

}  // namespace athena::mitigation::control
