#include "mitigation/control/controller.hpp"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <ostream>

#include "obs/live/live.hpp"
#include "obs/metrics.hpp"
#include "sim/check.hpp"

namespace athena::mitigation::control {

namespace {

constexpr std::size_t kMaxLedgerEntries = 4096;
constexpr std::size_t kMaxQoeHistory = 1024;
constexpr double kProactiveBackoffFactor = 0.75;

constexpr std::size_t Index(Knob knob) { return static_cast<std::size_t>(knob); }

/// Baseline values per knob, Knob order: grant mode off, proactive scale
/// 1, mask gain 0, pacing off — i.e. exactly the un-mitigated session.
constexpr double kBaseline[kKnobCount] = {0.0, 1.0, 0.0, 0.0};

std::uint64_t MixFnv(std::uint64_t hash, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (v >> (i * 8)) & 0xFF;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

const char* ToString(Knob knob) {
  switch (knob) {
    case Knob::kGrantMode: return "grant_mode";
    case Knob::kProactiveScale: return "proactive_scale";
    case Knob::kCcMaskGain: return "cc_mask_gain";
    case Knob::kPacing: return "pacing";
  }
  return "unknown";
}

const char* ToString(DecisionOutcome outcome) {
  switch (outcome) {
    case DecisionOutcome::kActuated: return "actuated";
    case DecisionOutcome::kReverted: return "reverted";
    case DecisionOutcome::kBlockedConfidence: return "blocked_confidence";
    case DecisionOutcome::kBlockedHysteresis: return "blocked_hysteresis";
    case DecisionOutcome::kBlockedCooldown: return "blocked_cooldown";
    case DecisionOutcome::kBlockedNoActuator: return "blocked_no_actuator";
    case DecisionOutcome::kExpired: return "expired";
  }
  return "unknown";
}

MitigationController::MitigationController(sim::Simulator& sim, Config config)
    : sim_(sim), config_(config), guard_(config.guard) {
  ATHENA_CHECK(config_.budget.count() > 0,
               "MitigationController: sense-to-act budget must be positive");
  if (config_.tick.count() <= 0 || config_.tick > config_.budget) {
    config_.tick = config_.budget;
  }
  for (auto& t : last_actuation_) t = sim::kEpoch;
  last_feed_ = sim::kEpoch;
  last_gate_anomaly_ = sim::kEpoch;
}

void MitigationController::Start() { ScheduleTick(); }

void MitigationController::ScheduleTick() {
  sim_.ScheduleAfter(config_.tick, [this] {
    Tick();
    ScheduleTick();
  });
}

void MitigationController::OnAnomaly(const obs::live::AnomalyEvent& event) {
  const sim::TimePoint now = sim_.Now();
  switch (event.kind) {
    case obs::live::AnomalyKind::kTelemetryGap:
    case obs::live::AnomalyKind::kOverload:
      // Gate poison, not an actuation trigger: the input stream itself is
      // suspect, so refuse to move knobs on anything seen near it.
      gate_anomaly_seen_ = true;
      last_gate_anomaly_ = now;
      return;
    default:
      pending_.push_back(PendingTrigger{event.kind, event.confidence, now});
  }
}

void MitigationController::OnTelemetry(const ran::TbRecord&) {
  feed_seen_ = true;
  last_feed_ = sim_.Now();
}

std::pair<std::uint64_t, std::uint64_t> MitigationController::ProbeQoe() const {
  if (qoe_probe_) return qoe_probe_();
  if (live_ != nullptr) return {live_->frames_rendered(), live_->frames_late()};
  return {0, 0};
}

double MitigationController::LateFractionSince(std::uint64_t rendered0,
                                               std::uint64_t late0) const {
  const auto [rendered, late] = ProbeQoe();
  const std::uint64_t dr = rendered > rendered0 ? rendered - rendered0 : 0;
  const std::uint64_t dl = late > late0 ? late - late0 : 0;
  if (dr == 0) {
    // A total rendering stall is the worst outcome — but only judge it
    // once the session had rendered anything at all.
    return rendered0 > 0 ? 1.0 : 0.0;
  }
  return static_cast<double>(dl) / static_cast<double>(dr);
}

double MitigationController::WindowLateFraction(sim::TimePoint now) const {
  if (qoe_history_.empty()) return 0.0;
  const sim::TimePoint horizon = now - guard_.verify_window;
  const QoeSample* base = &qoe_history_.front();
  for (const QoeSample& s : qoe_history_) {
    if (s.t > horizon) break;
    base = &s;
  }
  return LateFractionSince(base->rendered, base->late);
}

void MitigationController::Tick() {
  const sim::TimePoint now = sim_.Now();
  const auto [rendered, late] = ProbeQoe();
  qoe_history_.push_back(QoeSample{now, rendered, late});
  while (qoe_history_.size() > kMaxQoeHistory) qoe_history_.pop_front();

  // --- fail-safe: the telemetry feed went silent mid-flight ---
  const bool feed_silent =
      has_feed_ && feed_seen_ && (now - last_feed_) > guard_.telemetry_silence;
  if (feed_silent) {
    for (std::size_t k = 0; k < kKnobCount; ++k) {
      if (current_[k] != kBaseline[k]) {
        Revert(static_cast<Knob>(k), now, "telemetry feed silent");
      }
    }
  }

  // --- verify: QoE watchdog over completed post-actuation windows ---
  std::vector<Verification> due;
  for (auto it = verifying_.begin(); it != verifying_.end();) {
    if (now - it->at >= guard_.verify_window) {
      due.push_back(*it);
      it = verifying_.erase(it);
    } else {
      ++it;
    }
  }
  for (const Verification& v : due) {
    const double post = LateFractionSince(v.rendered_at_act, v.late_at_act);
    if (post > v.pre_late_fraction + guard_.max_late_fraction_increase) {
      Revert(v.knob, now, "qoe worsened post-actuation");
    }
  }

  // --- decide: drain this tick's triggers through the guardrails ---
  const bool gated =
      feed_silent || correlation_degraded_ ||
      (gate_anomaly_seen_ && (now - last_gate_anomaly_) <= guard_.gate_hold);
  for (const PendingTrigger& trigger : pending_) {
    Decide(trigger, now, gated);
  }
  pending_.clear();

  obs::SetGauge("mitigation.max_sense_to_act_ms",
                static_cast<double>(max_sense_to_act_.count()) / 1000.0);
}

void MitigationController::Decide(const PendingTrigger& trigger, sim::TimePoint now,
                                  bool gated) {
  using K = obs::live::AnomalyKind;
  Knob knob{};
  double target = 0.0;
  switch (trigger.kind) {
    case K::kBsrGrantWait:
      knob = Knob::kGrantMode;
      target = 1.0;
      break;
    case K::kOverGranting:
      knob = Knob::kProactiveScale;
      target = std::clamp(current_[Index(Knob::kProactiveScale)] * kProactiveBackoffFactor,
                          guard_.proactive_scale_min, guard_.proactive_scale_max);
      break;
    case K::kDelaySpreadQuantization:
    case K::kHarqRtxInflation:
      knob = Knob::kCcMaskGain;
      target = std::clamp(1.0, guard_.mask_gain_min, guard_.mask_gain_max);
      break;
    case K::kQueueBuildup:
      knob = Knob::kPacing;
      target = 1.0;
      break;
    default:
      return;  // gate kinds never reach here (filtered in OnAnomaly)
  }

  const std::size_t k = Index(knob);
  const sim::Duration sense = now - trigger.seen_at;

  const auto block = [&](DecisionOutcome outcome, const char* why) {
    ++guardrail_blocks_;
    obs::CountInc("mitigation.guardrail_blocks");
    Record(DecisionRecord{now, trigger.kind, trigger.confidence, knob, current_[k],
                          target, outcome, sense, why});
  };

  if (sense > config_.budget) {
    // Defensive: the tick cadence makes this unreachable, but a stale
    // trigger must never actuate late.
    block(DecisionOutcome::kExpired, "sense-to-act budget exceeded");
    return;
  }
  if (current_[k] == target) return;  // already there — not a decision
  if (gated || trigger.confidence < guard_.min_confidence) {
    block(DecisionOutcome::kBlockedConfidence,
          gated ? "input degraded or telemetry suspect" : "confidence below floor");
    return;
  }
  auto& history = knob_triggers_[k];
  history.push_back(now);
  while (!history.empty() && now - history.front() > guard_.hysteresis_window) {
    history.pop_front();
  }
  if (history.size() < guard_.hysteresis_triggers) {
    block(DecisionOutcome::kBlockedHysteresis, "awaiting corroborating triggers");
    return;
  }
  if (ever_actuated_[k] && now - last_actuation_[k] < guard_.cooldown) {
    block(DecisionOutcome::kBlockedCooldown, "knob in cooldown");
    return;
  }
  Apply(knob, target, trigger, now);
}

void MitigationController::Apply(Knob knob, double target, const PendingTrigger& trigger,
                                 sim::TimePoint now) {
  const std::size_t k = Index(knob);
  const sim::Duration sense = now - trigger.seen_at;

  bool applied = false;
  switch (knob) {
    case Knob::kGrantMode:
      if (actuators_.grant_mode) {
        actuators_.grant_mode(target != 0.0);
        applied = true;
      }
      break;
    case Knob::kProactiveScale:
      if (actuators_.proactive_scale) {
        actuators_.proactive_scale(target);
        applied = true;
      }
      break;
    case Knob::kCcMaskGain:
      if (actuators_.cc_mask_gain) {
        actuators_.cc_mask_gain(target);
        applied = true;
      }
      break;
    case Knob::kPacing:
      if (actuators_.pacing) {
        actuators_.pacing(target != 0.0);
        applied = true;
      }
      break;
  }
  if (!applied) {
    ++guardrail_blocks_;
    obs::CountInc("mitigation.guardrail_blocks");
    Record(DecisionRecord{now, trigger.kind, trigger.confidence, knob, current_[k],
                          target, DecisionOutcome::kBlockedNoActuator, sense,
                          "no actuator wired"});
    return;
  }

  const double from = current_[k];
  current_[k] = target;
  ever_actuated_[k] = true;
  last_actuation_[k] = now;
  knob_triggers_[k].clear();  // the next move needs fresh corroboration
  ++actuations_;
  obs::CountInc("mitigation.actuations");
  if (sense > max_sense_to_act_) max_sense_to_act_ = sense;
  const auto [rendered, late] = ProbeQoe();
  verifying_.push_back(Verification{knob, now, WindowLateFraction(now), rendered, late,
                                    kBaseline[k]});
  Record(DecisionRecord{now, trigger.kind, trigger.confidence, knob, from, target,
                        DecisionOutcome::kActuated, sense, "guardrails passed"});
}

void MitigationController::Revert(Knob knob, sim::TimePoint now, const char* why) {
  const std::size_t k = Index(knob);
  if (current_[k] == kBaseline[k]) return;
  switch (knob) {
    case Knob::kGrantMode:
      if (actuators_.grant_mode) actuators_.grant_mode(false);
      break;
    case Knob::kProactiveScale:
      if (actuators_.proactive_scale) actuators_.proactive_scale(kBaseline[k]);
      break;
    case Knob::kCcMaskGain:
      if (actuators_.cc_mask_gain) actuators_.cc_mask_gain(kBaseline[k]);
      break;
    case Knob::kPacing:
      if (actuators_.pacing) actuators_.pacing(false);
      break;
  }
  const double from = current_[k];
  current_[k] = kBaseline[k];
  // A reverted knob re-enters cooldown and must re-earn its hysteresis.
  last_actuation_[k] = now;
  ever_actuated_[k] = true;
  knob_triggers_[k].clear();
  // Any in-flight verification of this knob is resolved by the revert.
  std::erase_if(verifying_, [knob](const Verification& v) { return v.knob == knob; });
  ++reverts_;
  obs::CountInc("mitigation.reverts");
  Record(DecisionRecord{now, obs::live::AnomalyKind::kTelemetryGap, 0.0, knob, from,
                        kBaseline[k], DecisionOutcome::kReverted, sim::Duration{0}, why});
}

void MitigationController::Record(DecisionRecord record) {
  if (ledger_.size() < kMaxLedgerEntries) ledger_.push_back(record);
  digest_ = MixFnv(digest_, static_cast<std::uint64_t>(record.at.us()));
  digest_ = MixFnv(digest_, static_cast<std::uint64_t>(record.trigger));
  digest_ = MixFnv(digest_, std::bit_cast<std::uint64_t>(record.confidence));
  digest_ = MixFnv(digest_, static_cast<std::uint64_t>(record.knob));
  digest_ = MixFnv(digest_, std::bit_cast<std::uint64_t>(record.from));
  digest_ = MixFnv(digest_, std::bit_cast<std::uint64_t>(record.to));
  digest_ = MixFnv(digest_, static_cast<std::uint64_t>(record.outcome));
  digest_ = MixFnv(digest_, static_cast<std::uint64_t>(record.sense_to_act.count()));
  for (const char* c = record.why; *c != '\0'; ++c) {
    digest_ ^= static_cast<std::uint8_t>(*c);
    digest_ *= 0x100000001b3ULL;
  }
}

std::uint64_t MitigationController::LedgerDigest() const { return digest_; }

void MitigationController::RenderLedger(std::ostream& os) const {
  os << "mitigation decision ledger: decisions=" << ledger_.size()
     << " actuations=" << actuations_ << " reverts=" << reverts_
     << " guardrail_blocks=" << guardrail_blocks_
     << " max_sense_to_act_us=" << max_sense_to_act_.count() << " digest=0x" << std::hex
     << digest_ << std::dec << "\n";
  for (const DecisionRecord& r : ledger_) {
    os << "  t=" << r.at.us() << "us trigger=" << obs::live::SlugFor(r.trigger)
       << " conf=" << std::fixed << std::setprecision(2) << r.confidence
       << std::defaultfloat << " knob=" << ToString(r.knob) << " " << r.from << "->"
       << r.to << " " << ToString(r.outcome) << " sense_us=" << r.sense_to_act.count()
       << " (" << r.why << ")\n";
  }
}

}  // namespace athena::mitigation::control
