// §5.3: a RAN-aware congestion controller.
//
// "The RAN could mask RAN-induced delays through the congestion-control
// feedback channel by modifying per-packet delay information as reported
// by RTCP transport-wide congestion-control messages."
//
// Everything here runs with information the sending device legitimately
// has: its own send log and its own modem's PHY telemetry (TbRecords).
// An online byte-conservation estimator attributes, per packet, the delay
// the RAN added (grant waiting + slot trickle + HARQ rounds); the
// controller subtracts that from the reported receive timestamps before
// GCC's trendline filter sees them — so the filter reacts to *queueing*
// (real congestion) but not to scheduling artifacts (phantom overuse,
// Fig. 10).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "app/controller.hpp"
#include "ran/types.hpp"

namespace athena::mitigation {

/// Incremental packet↔TB correlation at the sender (the online sibling of
/// core::Correlator, restricted to what the UE sees about itself).
class OnlineRanDelayEstimator {
 public:
  struct Config {
    std::size_t max_tracked_packets = 8192;
  };

  OnlineRanDelayEstimator();  // default config
  explicit OnlineRanDelayEstimator(Config config) : config_(config) {}

  /// Register every uplink packet as it leaves the IP stack.
  void OnPacketSent(std::uint16_t transport_seq, std::uint32_t size_bytes,
                    sim::TimePoint sent_at);

  /// Stream the modem's telemetry records here.
  void OnTbRecord(const ran::TbRecord& tb);

  /// RAN-added delay of the packet beyond the best-case path, if resolved.
  [[nodiscard]] std::optional<sim::Duration> ExtraDelay(std::uint16_t transport_seq) const;

  [[nodiscard]] std::uint64_t resolved_packets() const { return resolved_; }

 private:
  struct Pending {
    std::uint16_t transport_seq = 0;
    sim::TimePoint sent_at;
    std::uint32_t unassigned = 0;   ///< bytes not yet mapped to a chain
    std::uint32_t undelivered = 0;  ///< bytes not yet decoded
    sim::TimePoint last_decode;
  };

  struct Chain {
    std::vector<std::pair<std::size_t, std::uint32_t>> segments;  ///< (pending idx, bytes)
    bool resolved = false;
  };

  void Resolve(Pending& p);

  Config config_;
  std::deque<Pending> pending_;       ///< FIFO of sent packets (index-stable enough: we
                                      ///< only erase from the front after resolution)
  std::size_t drain_cursor_ = 0;      ///< first packet with unassigned bytes
  std::size_t base_index_ = 0;        ///< pending_[0]'s global index
  std::unordered_map<ran::TbId, Chain> chains_;
  std::unordered_map<std::uint16_t, sim::Duration> ran_delay_;
  std::deque<std::uint16_t> ran_delay_order_;  // eviction order
  std::optional<sim::Duration> min_delay_;
  std::uint64_t resolved_ = 0;
};

/// GCC with the §5.3 delay mask applied to incoming feedback.
class PhyInformedController final : public app::RateController {
 public:
  explicit PhyInformedController(cc::GoogCc::Config config = {}) : gcc_(config) {}

  void OnPacketSent(const net::Packet& p, sim::TimePoint now) override;
  double OnFeedback(std::span<const rtp::PacketReport> reports, sim::TimePoint now) override;
  [[nodiscard]] double target_bps() const override { return gcc_.target_bps(); }

  /// Wire the modem telemetry stream to this.
  void OnTbRecord(const ran::TbRecord& tb) { estimator_.OnTbRecord(tb); }

  /// Runtime actuation knob (mitigation control plane): how much of the
  /// estimated RAN delay to subtract from reported receive timestamps.
  /// 0 = plain GCC (feedback passes through untouched, in arrival order);
  /// 1 = the full §5.3 mask. Clamped to [0, 1]; NaN is rejected.
  void set_mask_gain(double gain);
  [[nodiscard]] double mask_gain() const { return mask_gain_; }

  [[nodiscard]] cc::GoogCc& gcc() { return gcc_; }
  [[nodiscard]] const cc::GoogCc& gcc() const { return gcc_; }
  [[nodiscard]] const OnlineRanDelayEstimator& estimator() const { return estimator_; }
  [[nodiscard]] std::uint64_t masked_reports() const { return masked_; }

 private:
  cc::GoogCc gcc_;
  OnlineRanDelayEstimator estimator_;
  double mask_gain_ = 1.0;
  std::uint64_t masked_ = 0;
};

}  // namespace athena::mitigation
