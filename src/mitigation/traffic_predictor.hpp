// §5.2, second flavor: a learning scheduler in the RAN (e.g. deployed as
// an xApp on a Real-Time RIC): "the base stations can use machine learning
// to learn the current transmission patterns, and predict future traffic
// demands to precisely issue grants."
//
// The predictor observes only what the scheduler legitimately sees — the
// fill level of every granted TB — detects the periodic burst structure of
// VCA traffic (a frame roughly every 33/66 ms of roughly stable size), and
// pre-issues a right-sized grant at each predicted burst time. Unpredicted
// demand falls back to the BSR baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "ran/grant_policy.hpp"

namespace athena::mitigation {

class TrafficPredictorPolicy : public ran::GrantPolicy {
 public:
  struct Config {
    /// Slots with at least this many payload bytes count as burst activity.
    std::uint32_t activity_threshold_bytes = 600;
    /// Gap (in slots) of inactivity that terminates a burst.
    std::uint32_t burst_gap_slots = 2;
    std::size_t history = 32;        ///< bursts remembered
    std::size_t min_bursts_to_predict = 8;
    double size_margin = 1.30;
    /// Periods outside this range are treated as noise.
    sim::Duration min_period{std::chrono::milliseconds{10}};
    sim::Duration max_period{std::chrono::milliseconds{120}};
  };

  explicit TrafficPredictorPolicy(const ran::RanConfig& cell);  // default config
  TrafficPredictorPolicy(const ran::RanConfig& cell, Config config);

  Decision OnUplinkSlot(const SlotInfo& slot) override;
  void OnBsrDecoded(sim::TimePoint decoded_at, std::uint32_t reported_bytes) override;
  void OnTbFilled(sim::TimePoint slot_time, const Decision& grant,
                  std::uint32_t used_bytes) override;

  /// Learned period (nullopt until confident).
  [[nodiscard]] std::optional<sim::Duration> learned_period() const;
  [[nodiscard]] double learned_burst_bytes() const { return burst_bytes_ewma_; }
  [[nodiscard]] std::uint64_t predicted_grants() const { return predicted_grants_; }

 private:
  struct Burst {
    sim::TimePoint start;
    std::uint32_t bytes = 0;
  };

  void CloseBurst();

  ran::RanConfig cell_;
  Config config_;
  ran::BsrGrantPolicy fallback_;

  // Burst detection state.
  bool in_burst_ = false;
  Burst current_burst_;
  std::uint32_t idle_slots_ = 0;
  std::deque<Burst> bursts_;
  double burst_bytes_ewma_ = 0.0;

  // Prediction state.
  std::optional<sim::TimePoint> next_predicted_;
  std::uint64_t predicted_grants_ = 0;
};

}  // namespace athena::mitigation
