#include "mitigation/traffic_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/check.hpp"

namespace athena::mitigation {

TrafficPredictorPolicy::TrafficPredictorPolicy(const ran::RanConfig& cell)
    : TrafficPredictorPolicy(cell, Config{}) {}

TrafficPredictorPolicy::TrafficPredictorPolicy(const ran::RanConfig& cell, Config config)
    : cell_(cell), config_(config), fallback_(cell) {
  ATHENA_CHECK(std::isfinite(config_.size_margin) && config_.size_margin >= 1.0,
               "TrafficPredictorPolicy: size_margin must be finite and >= 1");
  ATHENA_CHECK(config_.burst_gap_slots > 0,
               "TrafficPredictorPolicy: burst_gap_slots must be positive");
  ATHENA_CHECK(config_.history > 0 && config_.min_bursts_to_predict > 0,
               "TrafficPredictorPolicy: history and min_bursts_to_predict must be positive");
  ATHENA_CHECK(config_.min_period.count() > 0 && config_.max_period >= config_.min_period,
               "TrafficPredictorPolicy: need 0 < min_period <= max_period");
}

std::optional<sim::Duration> TrafficPredictorPolicy::learned_period() const {
  if (bursts_.size() < config_.min_bursts_to_predict) return std::nullopt;
  // Median of plausible inter-burst gaps: robust to the occasional merged
  // or skipped burst.
  std::vector<std::int64_t> gaps;
  for (std::size_t i = 1; i < bursts_.size(); ++i) {
    const auto gap = bursts_[i].start - bursts_[i - 1].start;
    if (gap >= config_.min_period && gap <= config_.max_period) gaps.push_back(gap.count());
  }
  if (gaps.size() < config_.min_bursts_to_predict / 2) return std::nullopt;
  std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
  return sim::Duration{gaps[gaps.size() / 2]};
}

void TrafficPredictorPolicy::CloseBurst() {
  in_burst_ = false;
  bursts_.push_back(current_burst_);
  while (bursts_.size() > config_.history) bursts_.pop_front();
  if (burst_bytes_ewma_ <= 0.0) {
    burst_bytes_ewma_ = current_burst_.bytes;
  } else {
    burst_bytes_ewma_ += 0.15 * (current_burst_.bytes - burst_bytes_ewma_);
  }
  // Arm the next prediction from this burst's start.
  if (const auto period = learned_period()) {
    next_predicted_ = current_burst_.start + *period;
  }
}

ran::GrantPolicy::Decision TrafficPredictorPolicy::OnUplinkSlot(const SlotInfo& slot) {
  std::uint32_t predicted_bytes = 0;
  if (next_predicted_) {
    const sim::TimePoint cutoff = slot.slot_time - cell_.ue_processing_delay;
    if (*next_predicted_ <= cutoff) {
      predicted_bytes = static_cast<std::uint32_t>(burst_bytes_ewma_ * config_.size_margin);
      // Re-arm one period ahead; refined when the burst is actually seen.
      if (const auto period = learned_period()) {
        next_predicted_ = *next_predicted_ + *period;
      } else {
        next_predicted_.reset();
      }
    }
  }

  const Decision fb = fallback_.OnUplinkSlot(slot);
  if (predicted_bytes > 0) {
    ++predicted_grants_;
    const std::uint32_t tbs =
        std::min(std::max(predicted_bytes, fb.tbs_bytes), slot.available_bytes);
    return Decision{tbs, ran::GrantType::kRequested};
  }
  return fb;
}

void TrafficPredictorPolicy::OnBsrDecoded(sim::TimePoint decoded_at,
                                          std::uint32_t reported_bytes) {
  fallback_.OnBsrDecoded(decoded_at, reported_bytes);
}

void TrafficPredictorPolicy::OnTbFilled(sim::TimePoint slot_time, const Decision& grant,
                                        std::uint32_t used_bytes) {
  fallback_.OnTbFilled(slot_time, grant, used_bytes);

  // Burst segmentation over the used-bytes-per-slot stream.
  if (used_bytes >= config_.activity_threshold_bytes) {
    if (!in_burst_) {
      in_burst_ = true;
      current_burst_ = Burst{slot_time, 0};
    }
    current_burst_.bytes += used_bytes;
    idle_slots_ = 0;
  } else if (in_burst_) {
    if (++idle_slots_ >= config_.burst_gap_slots) CloseBurst();
  }
}

}  // namespace athena::mitigation
