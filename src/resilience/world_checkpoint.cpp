#include "resilience/world_checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "sim/barrier.hpp"

namespace athena::resilience {

std::uint64_t WorldConfigFingerprint(const world::WorldConfig& config) {
  // A drift detector, not a cryptographic identity: covers every scalar
  // knob that shapes the simulation. Layout and fault-injection knobs
  // are excluded on purpose (see the header).
  StateDigest d;
  d.Mix(config.seed);
  d.Mix(config.ues);
  d.Mix(config.cells);
  d.Mix(static_cast<std::uint64_t>(config.duration.count()));
  d.Mix(static_cast<std::uint64_t>(config.link_latency.count()));
  d.Mix(static_cast<std::uint64_t>(config.cell.ul_slot_period.count()));
  d.Mix(static_cast<std::uint64_t>(config.cell.slot_duration.count()));
  d.Mix(static_cast<std::uint64_t>(config.cell.bsr_scheduling_delay.count()));
  d.Mix(config.cell.proactive_grant_bytes);
  d.Mix(static_cast<std::uint64_t>(config.cell.cell_ul_capacity_bps));
  d.Mix(static_cast<std::uint64_t>(config.cell.ue_processing_delay.count()));
  d.Mix(static_cast<std::uint64_t>(config.cell.rtx_delay.count()));
  d.Mix(config.cell.max_harq_rounds);
  d.Mix(static_cast<std::uint64_t>(config.cell.ecn_marking_threshold.count()));
  d.Mix(static_cast<std::uint64_t>(config.cell.gnb_to_core_delay.count()));
  d.Mix(static_cast<std::uint64_t>(config.channel.base_bler * 1e9));
  d.Mix(static_cast<std::uint64_t>(config.channel.rtx_bler_factor * 1e9));
  d.Mix(static_cast<std::uint64_t>(config.channel.bad_state_bler * 1e9));
  d.Mix(static_cast<std::uint64_t>(config.channel.p_good_to_bad * 1e9));
  d.Mix(static_cast<std::uint64_t>(config.channel.p_bad_to_good * 1e9));
  d.Mix(config.handover_every);
  d.Mix(static_cast<std::uint64_t>(config.handover_latency.count()));
  d.Mix(static_cast<std::uint64_t>(config.wan_delay.count()));
  d.Mix(static_cast<std::uint64_t>(config.wan_jitter.count()));
  d.Mix(static_cast<std::uint64_t>(config.feedback_delay.count()));
  d.Mix(config.outage_cell);
  d.Mix(static_cast<std::uint64_t>(config.outage_start.us()));
  d.Mix(static_cast<std::uint64_t>(config.outage_end.us()));
  d.Mix(config.scenario);
  return d.value();
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------
//
//   [0..8)    magic "ATHWSNP\n"
//   [8..12)   u32 version
//   [12..16)  u32 reserved (0)
//   ...       header fields (fixed-width little-endian)
//   ...       mailbox records (41 bytes each)
//   [-8..)    u64 FNV-1a checksum over every preceding byte
//
// Same conventions as the session checkpoint (checkpoint.cpp): all
// integers little-endian byte-by-byte, so the file is identical across
// platforms and never depends on struct layout.

namespace {

constexpr char kMagic[8] = {'A', 'T', 'H', 'W', 'S', 'N', 'P', '\n'};
constexpr std::size_t kRecordBytes = 1 + 4 + 4 + 8 + 8 + 4 + 4 + 8;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 6 * 8 + 8;  // magic..count

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) { Le(v, 4); }
  void U64(std::uint64_t v) { Le(v, 8); }
  void I64(std::int64_t v) { Le(static_cast<std::uint64_t>(v), 8); }

 private:
  void Le(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
  }
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t U8() { return static_cast<std::uint8_t>(Le(1)); }
  std::uint32_t U32() { return static_cast<std::uint32_t>(Le(4)); }
  std::uint64_t U64() { return Le(8); }
  std::int64_t I64() { return static_cast<std::int64_t>(Le(8)); }

 private:
  std::uint64_t Le(int bytes) {
    if (pos_ + static_cast<std::size_t>(bytes) > size_) {
      throw CheckpointError("world snapshot truncated: needed " + std::to_string(bytes) +
                            " bytes at offset " + std::to_string(pos_) + ", file has " +
                            std::to_string(size_));
    }
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (i * 8);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::uint64_t FnvOver(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void WorldSnapshot::Serialize(std::vector<std::uint8_t>& out) const {
  out.clear();
  out.reserve(SerializedBytes());
  Writer w(out);
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  w.U32(kVersion);
  w.U32(0);  // reserved
  w.U64(config_fingerprint);
  w.U64(seed);
  w.U64(window);
  w.I64(virtual_us);
  w.U64(windows_total);
  w.U64(state_digest);
  w.U64(mailbox.size());
  for (const world::WorldMsgRecord& r : mailbox) {
    w.U8(r.kind);
    w.U32(r.src);
    w.U32(r.dst);
    w.U64(r.seq);
    w.I64(r.arrival_us);
    w.U32(r.ue);
    w.U32(r.target_cell);
    w.U64(r.payload_digest);
  }
  w.U64(FnvOver(out.data(), out.size()));
}

std::size_t WorldSnapshot::SerializedBytes() const {
  return kHeaderBytes + mailbox.size() * kRecordBytes + 8;
}

void WorldSnapshot::WriteFile(const std::string& path) const {
  std::vector<std::uint8_t> bytes;
  Serialize(bytes);
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out.good()) throw CheckpointError("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) throw CheckpointError("short write: " + path);
}

WorldSnapshot WorldSnapshot::Deserialize(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderBytes + 8) {
    throw CheckpointError("world snapshot too small to be valid (" +
                          std::to_string(size) + " bytes)");
  }
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
    if (data[i] != static_cast<std::uint8_t>(kMagic[i])) {
      throw CheckpointError("bad magic: not a world snapshot file");
    }
  }
  // Checksum before any field is trusted.
  const std::uint64_t stored_sum = Reader(data + size - 8, 8).U64();
  const std::uint64_t actual_sum = FnvOver(data, size - 8);
  if (stored_sum != actual_sum) {
    std::ostringstream os;
    os << "world snapshot checksum mismatch: stored 0x" << std::hex << stored_sum
       << ", computed 0x" << actual_sum << " — file corrupt or truncated";
    throw CheckpointError(os.str());
  }

  Reader r(data + sizeof(kMagic), size - sizeof(kMagic) - 8);
  const std::uint32_t version = r.U32();
  if (version != kVersion) {
    throw CheckpointError("unsupported world snapshot version " +
                          std::to_string(version) + " (this build reads " +
                          std::to_string(kVersion) + ")");
  }
  (void)r.U32();  // reserved

  WorldSnapshot s;
  s.config_fingerprint = r.U64();
  s.seed = r.U64();
  s.window = r.U64();
  s.virtual_us = r.I64();
  s.windows_total = r.U64();
  s.state_digest = r.U64();
  const std::uint64_t count = r.U64();
  if (count * kRecordBytes != r.remaining()) {
    throw CheckpointError("world snapshot header declares " + std::to_string(count) +
                          " mailbox records but " + std::to_string(r.remaining()) +
                          " payload bytes remain (" + std::to_string(kRecordBytes) +
                          " per record)");
  }
  s.mailbox.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    world::WorldMsgRecord rec;
    rec.kind = r.U8();
    rec.src = r.U32();
    rec.dst = r.U32();
    rec.seq = r.U64();
    rec.arrival_us = r.I64();
    rec.ue = r.U32();
    rec.target_cell = r.U32();
    rec.payload_digest = r.U64();
    s.mailbox.push_back(rec);
  }
  return s;
}

WorldSnapshot WorldSnapshot::LoadFile(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.good()) throw CheckpointError("cannot open: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return Deserialize(bytes.data(), bytes.size());
}

WorldSnapshot SnapshotWorld(const world::WorldEngine& engine, std::uint64_t window) {
  const world::WorldConfig& config = engine.config();
  const auto schedule = sim::WindowSchedule::Cover(
      sim::kEpoch, sim::kEpoch + config.duration, config.link_latency);
  WorldSnapshot s;
  s.config_fingerprint = WorldConfigFingerprint(config);
  s.seed = config.seed;
  s.window = window;
  s.virtual_us = schedule.WindowEnd(window).us();
  s.windows_total = schedule.windows;
  s.state_digest = engine.Digest();
  s.mailbox = engine.PendingMailRecords();
  return s;
}

std::string DescribeWorldDivergence(
    const WorldSnapshot& expected, std::uint64_t replayed_digest,
    const std::vector<world::WorldMsgRecord>& replayed_mailbox) {
  std::ostringstream os;
  os << "replay diverged from the snapshot at window " << expected.window << ": ";
  if (replayed_digest != expected.state_digest) {
    os << "state digest 0x" << std::hex << replayed_digest << " != snapshot 0x"
       << expected.state_digest << std::dec;
    return os.str();
  }
  if (replayed_mailbox.size() != expected.mailbox.size()) {
    os << "pending mailbox has " << replayed_mailbox.size() << " messages, snapshot has "
       << expected.mailbox.size();
    return os.str();
  }
  for (std::size_t i = 0; i < expected.mailbox.size(); ++i) {
    if (!(replayed_mailbox[i] == expected.mailbox[i])) {
      const auto& a = replayed_mailbox[i];
      const auto& b = expected.mailbox[i];
      os << "mailbox record " << i << " differs (replayed kind=" << int(a.kind)
         << " src=" << a.src << " seq=" << a.seq << " arrival=" << a.arrival_us
         << "us payload=0x" << std::hex << a.payload_digest << std::dec
         << "; snapshot kind=" << int(b.kind) << " src=" << b.src << " seq=" << b.seq
         << " arrival=" << b.arrival_us << "us payload=0x" << std::hex
         << b.payload_digest << std::dec << ")";
      return os.str();
    }
  }
  os << "no field differs (spurious divergence report)";
  return os.str();
}

}  // namespace athena::resilience
