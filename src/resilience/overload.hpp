// Bounded-memory overload control: hard byte budgets with priority-aware
// load shedding for the telemetry/trace pipelines.
//
// A continuous diagnosis service cannot let a telemetry flood grow its
// buffers without bound — but it also must not shed the records that
// correlation is built on. The governor's priority order, lowest first:
//
//   1. low-priority trace events (anything the live decoder ignores;
//      enforced inside obs::TraceRecorder via its byte budget),
//   2. ICMP probe records in the capture logs (clock-sync refinement,
//      not packet evidence),
//   3. padding-only TBs (used_bytes == 0 — they drain no packet bytes,
//      so correlation never needs them),
//   4. only then, as a last resort, a hard cap on the newest data
//      records — counted loudly as `capped`, because at that point the
//      budget is genuinely too small for the offered load.
//
// Every shed is counted in a ShedStats ledger, published as
// `resilience.shed.*` metrics, and surfaced to the live `overload`
// detector so degradation is *reported*, never silent (the PR-4
// contract).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/correlator.hpp"

namespace athena::resilience {

/// Byte budgets; 0 = unbounded (the default — overload control is
/// strictly opt-in and costs nothing when disabled).
struct MemoryBudget {
  /// obs::TraceRecorder chunk storage (enforced via set_byte_budget).
  std::size_t trace_bytes = 0;
  /// Correlator input streams: telemetry + the three capture logs.
  std::size_t input_bytes = 0;
  /// Live EventLog ring, in records (maps to LiveEngine log_capacity).
  std::size_t event_log_records = 0;

  [[nodiscard]] bool any() const {
    return trace_bytes > 0 || input_bytes > 0 || event_log_records > 0;
  }
};

/// The governor's ledger: what was shed, why, from where.
struct ShedStats {
  std::uint64_t icmp_shed = 0;             ///< probe records dropped (priority 2)
  std::uint64_t padding_tb_shed = 0;       ///< padding-only TBs dropped (priority 3)
  std::uint64_t telemetry_capped = 0;      ///< data TBs dropped by the hard cap
  std::uint64_t capture_capped = 0;        ///< capture records dropped by the hard cap
  std::uint64_t trace_shed = 0;            ///< low-priority trace events (recorder)
  std::uint64_t trace_evicted = 0;         ///< recorder chunk evictions (high-prio overflow)

  [[nodiscard]] std::uint64_t total() const {
    return icmp_shed + padding_tb_shed + telemetry_capped + capture_capped +
           trace_shed + trace_evicted;
  }
  /// The last-resort tier: nonzero means the budget was too small for
  /// even the high-priority load.
  [[nodiscard]] std::uint64_t capped() const {
    return telemetry_capped + capture_capped;
  }

  /// Publishes the ledger as `resilience.shed.*` counters/gauges into
  /// the installed MetricsRegistry (no-op when metrics are disabled).
  void PublishMetrics() const;
};

/// Approximate resident bytes of a correlator input (records × record
/// size; the governor's accounting unit).
[[nodiscard]] std::size_t InputBytes(const core::CorrelatorInput& input);

/// Enforces `budget.input_bytes` on `input` in the priority order above,
/// in place. Record order within each stream is preserved. Returns the
/// shed ledger (all zeros when the input already fits or the budget is
/// unbounded).
ShedStats BoundInput(core::CorrelatorInput& input, const MemoryBudget& budget);

}  // namespace athena::resilience
