// Watchdog supervision: crash-point injection, stall detection, and
// automatic restart-from-latest-checkpoint with bounded retries.
//
// The supervisor wraps a CheckpointingDriver the way an init system
// wraps a daemon. Each attempt runs the plan with two kernel observers
// installed:
//
//   - ProcessFaultHooks simulates process death at configured points
//     (a virtual-time kill, or a kill every N executed events) by
//     throwing SimulatedCrash out of the event loop — everything the
//     attempt built is torn down, exactly like a crash would, except
//     the address space survives so the test harness can observe it.
//   - WatchdogHooks feeds per-attempt heartbeats (virtual time + event
//     count) into relaxed atomics that a wall-clock monitor thread
//     watches. If virtual time stops advancing while events keep firing
//     (a livelock — e.g. an event rescheduling itself at the same
//     instant), the monitor raises a cancel flag and the hook throws
//     RunStalled at the next event boundary. A *hard* stall — a
//     callback that never returns — cannot be safely interrupted
//     in-process; it is reported via `resilience.supervisor.hard_stall`
//     and the on_event log, honestly, rather than pretended away.
//
// After a crash or stall the supervisor restores from the latest
// checkpoint (replay-verified; see checkpoint.hpp), with exponential
// wall-clock backoff and a bounded retry budget. ATHENA_CHECK
// violations inside the supervised run are contained with
// ScopedCheckThrow: a poisoned run is a failed attempt, not a process
// kill.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>

#include "resilience/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace athena::resilience {

/// An injected process death (crash-point testing). Deliberately NOT
/// derived from CheckpointError: the supervisor treats it as "the
/// process died", never as a bad checkpoint.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& what) : std::runtime_error(what) {}
};

/// Raised at the next event boundary after the watchdog cancels a run
/// whose virtual time stopped advancing.
class RunStalled : public std::runtime_error {
 public:
  explicit RunStalled(const std::string& what) : std::runtime_error(what) {}
};

/// Process-level fault points, the resilience counterpart of the data
/// faults in fault::FaultSpec. All disabled by default.
struct ProcessFaultSpec {
  /// Kill the process when virtual time reaches this point.
  sim::TimePoint kill_at = sim::kTimeInfinity;
  /// Kill the process every N executed events (0 = disabled).
  std::uint64_t kill_every_events = 0;
  /// Total kill budget across all restart attempts. Restores replay
  /// through the original kill point, so an unbounded budget would
  /// crash-loop forever; the default kills once and lets the restore
  /// run to completion.
  int max_kills = 1;

  [[nodiscard]] bool any() const {
    return kill_at < sim::kTimeInfinity || kill_every_events > 0;
  }
};

/// Kernel observer that injects the configured process faults.
/// `kills_done` is shared across attempts (owned by the supervisor) so
/// the kill budget is global, not per-attempt.
class ProcessFaultHooks final : public sim::SimHooks {
 public:
  ProcessFaultHooks(const ProcessFaultSpec& spec, int& kills_done)
      : spec_(spec), kills_done_(kills_done) {}

  void OnEventExecuted(sim::TimePoint t, std::size_t queue_depth) override;
  void OnRunCompleted(sim::TimePoint, sim::TimePoint, std::uint64_t) override {}

 private:
  ProcessFaultSpec spec_;
  int& kills_done_;
  std::uint64_t events_seen_ = 0;
};

/// Per-attempt heartbeat state shared between the simulation thread
/// (writer, via hooks) and the watchdog monitor thread (reader).
struct Heartbeat {
  std::atomic<std::int64_t> virtual_us{0};
  std::atomic<std::uint64_t> beats{0};
  std::atomic<bool> cancel{false};
};

/// Kernel observer feeding the heartbeat and honouring the cancel flag.
class WatchdogHooks final : public sim::SimHooks {
 public:
  explicit WatchdogHooks(Heartbeat& hb) : hb_(hb) {}

  void OnEventExecuted(sim::TimePoint t, std::size_t queue_depth) override;
  void OnRunCompleted(sim::TimePoint, sim::TimePoint, std::uint64_t) override {}

 private:
  Heartbeat& hb_;
};

struct SupervisorOptions {
  /// Restore attempts after the first run; exhausted → gave_up.
  int max_restarts = 3;
  /// Wall-clock window with no virtual-time progress before the
  /// watchdog cancels the attempt.
  std::chrono::milliseconds stall_timeout{2000};
  /// Wall-clock backoff before restart attempt k is 2^k × this.
  std::chrono::milliseconds backoff_initial{10};
  /// Run the wall-clock monitor thread (off = crash recovery only).
  bool watchdog = true;
  /// Human-readable supervision log ("crash at t=…, restoring from …").
  std::function<void(const std::string&)> on_event;
};

struct SupervisedOutcome {
  RunOutcome outcome;       ///< valid iff `completed`
  bool completed = false;
  bool gave_up = false;     ///< retry budget exhausted
  int crashes = 0;          ///< SimulatedCrash + contained CheckViolations + other throws
  int stalls = 0;           ///< watchdog cancellations
  int restarts = 0;         ///< restore attempts performed
  bool hard_stall_reported = false;  ///< monitor saw zero beats for a full window
  std::string last_error;
};

/// Runs a plan to completion under crash/stall supervision.
class Supervisor {
 public:
  explicit Supervisor(RunPlan plan, SupervisorOptions options = {});

  /// Supervised run with injected process faults.
  [[nodiscard]] SupervisedOutcome Run(const ProcessFaultSpec& faults);
  /// Supervised run with no injected faults (still contains real
  /// crashes/stalls of the workload itself).
  [[nodiscard]] SupervisedOutcome Run() { return Run(ProcessFaultSpec{}); }

  /// Supervised run that starts from an externally loaded checkpoint
  /// (the CLI's --restore path).
  [[nodiscard]] SupervisedOutcome RunFrom(const Checkpoint& start,
                                          const ProcessFaultSpec& faults);

  [[nodiscard]] const RunPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] SupervisedOutcome Drive(const ProcessFaultSpec& faults,
                                        const Checkpoint* start);

  RunPlan plan_;
  SupervisorOptions options_;
};

}  // namespace athena::resilience
