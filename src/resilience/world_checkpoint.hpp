// Windowed world checkpoints for the sharded multi-cell engine.
//
// A WorldSnapshot is the world-scale analogue of the session Checkpoint
// (checkpoint.hpp): a versioned, FNV-1a-checksummed witness of the whole
// world at a conservative window boundary — every shard's deterministic
// state folded into one digest, plus every pending mailbox/exchange
// message reduced to its canonical-order record. Like the session
// format, restore is *replay-based*: live event queues hold closures and
// cannot be serialized, but the world is a pure function of
// (WorldConfig, seed), so a fresh engine replays windows 1..k and the
// snapshot verifies — byte-for-byte on both the state digest and the
// canonical mailbox records — that the replay reproduced the exact
// pre-crash world before it continues. A snapshot is therefore
// layout-invariant: taken at 8 threaded shards, it restores a 1-shard
// sequential run (and vice versa), because nothing in it names a shard.
//
// Corrupt, truncated, or wrong-config snapshots are rejected with
// CheckpointError before any field is trusted, exactly like the session
// format.
#pragma once

#include <cstdint>
#include <vector>

#include "resilience/checkpoint.hpp"
#include "world/config.hpp"
#include "world/engine.hpp"
#include "world/mailbox.hpp"

namespace athena::resilience {

/// Digest of the WorldConfig fields that shape the simulation. Layout
/// knobs (shards, threaded, correlate_jobs, pipeline) and fault-injection
/// knobs (crash point, quarantines) are deliberately excluded: the world
/// digest is layout-invariant, and a supervisor must be able to restore
/// a pre-fault snapshot under an updated fault plan — the replayed state
/// digest, not the fingerprint, is what catches behavioural divergence.
[[nodiscard]] std::uint64_t WorldConfigFingerprint(const world::WorldConfig& config);

/// One snapshot of the whole world at window boundary k.
struct WorldSnapshot {
  static constexpr std::uint32_t kVersion = 1;

  // --- identity ---
  std::uint64_t config_fingerprint = 0;
  std::uint64_t seed = 0;

  // --- progress ---
  std::uint64_t window = 0;       ///< boundary index k (1-based)
  std::int64_t virtual_us = 0;    ///< W_k, the boundary's virtual time
  std::uint64_t windows_total = 0;

  // --- observable state ---
  std::uint64_t state_digest = 0;  ///< engine.Digest() at the boundary
  /// Every pending mailbox message, canonical (arrival, src, seq) order.
  std::vector<world::WorldMsgRecord> mailbox;

  /// Serializes to the versioned binary format (magic + header + record
  /// payload + trailing FNV-1a checksum), little-endian byte-by-byte.
  void Serialize(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] std::size_t SerializedBytes() const;
  void WriteFile(const std::string& path) const;

  /// Parses and validates a serialized snapshot. Throws CheckpointError
  /// with a diagnostic on bad magic, unsupported version, truncation or
  /// a checksum mismatch — never returns garbage.
  [[nodiscard]] static WorldSnapshot Deserialize(const std::uint8_t* data,
                                                 std::size_t size);
  [[nodiscard]] static WorldSnapshot LoadFile(const std::string& path);
};

/// Builds a snapshot from a live engine at window boundary `window`.
/// Call only where the engine guarantees quiescence: from a window hook
/// (all shards parked at the barrier) or after Run() returns.
[[nodiscard]] WorldSnapshot SnapshotWorld(const world::WorldEngine& engine,
                                          std::uint64_t window);

/// Explains how a replayed boundary differs from a snapshot — digest
/// mismatch, mailbox length skew, or the first diverging record — for
/// CheckpointError diagnostics.
[[nodiscard]] std::string DescribeWorldDivergence(
    const WorldSnapshot& expected, std::uint64_t replayed_digest,
    const std::vector<world::WorldMsgRecord>& replayed_mailbox);

}  // namespace athena::resilience
