#include "resilience/supervisor.hpp"

#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "sim/check.hpp"

namespace athena::resilience {

void ProcessFaultHooks::OnEventExecuted(sim::TimePoint t, std::size_t /*queue_depth*/) {
  if (kills_done_ >= spec_.max_kills) return;
  ++events_seen_;
  if (t >= spec_.kill_at) {
    ++kills_done_;
    std::ostringstream os;
    os << "injected crash: virtual time reached " << t;
    throw SimulatedCrash(os.str());
  }
  if (spec_.kill_every_events > 0 && events_seen_ % spec_.kill_every_events == 0) {
    ++kills_done_;
    std::ostringstream os;
    os << "injected crash: " << events_seen_ << " events into the attempt (every "
       << spec_.kill_every_events << ")";
    throw SimulatedCrash(os.str());
  }
}

void WatchdogHooks::OnEventExecuted(sim::TimePoint t, std::size_t /*queue_depth*/) {
  hb_.virtual_us.store(t.us(), std::memory_order_relaxed);
  hb_.beats.fetch_add(1, std::memory_order_relaxed);
  if (hb_.cancel.load(std::memory_order_relaxed)) {
    std::ostringstream os;
    os << "watchdog cancelled this run: no virtual-time progress (stuck at " << t << ")";
    throw RunStalled(os.str());
  }
}

namespace {

/// Wall-clock monitor: cancels the attempt when virtual time freezes
/// while events keep firing (livelock). A callback that never returns
/// produces zero beats — that cannot be interrupted safely in-process,
/// so it is *reported* (hard_stall flag + gauge) and the monitor keeps
/// waiting for the workload or the harness to act.
class WatchdogMonitor {
 public:
  WatchdogMonitor(Heartbeat& hb, std::chrono::milliseconds stall_timeout,
                  bool* hard_stall_flag)
      : hb_(hb), stall_timeout_(stall_timeout), hard_stall_flag_(hard_stall_flag) {
    thread_ = std::thread([this] { Monitor(); });
  }

  ~WatchdogMonitor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  WatchdogMonitor(const WatchdogMonitor&) = delete;
  WatchdogMonitor& operator=(const WatchdogMonitor&) = delete;

 private:
  void Monitor() {
    std::int64_t last_virtual = hb_.virtual_us.load(std::memory_order_relaxed);
    std::uint64_t last_beats = hb_.beats.load(std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, stall_timeout_, [this] { return done_; })) {
      const std::int64_t v = hb_.virtual_us.load(std::memory_order_relaxed);
      const std::uint64_t b = hb_.beats.load(std::memory_order_relaxed);
      if (v != last_virtual) {
        last_virtual = v;
        last_beats = b;
        continue;
      }
      if (b != last_beats) {
        // Events fire, clock frozen: livelock. The hook will throw
        // RunStalled at the next event boundary.
        hb_.cancel.store(true, std::memory_order_relaxed);
      } else {
        // No events at all for a full window: a callback is stuck and
        // cannot be interrupted from inside the process. Report it.
        *hard_stall_flag_ = true;
        obs::SetGauge("resilience.supervisor.hard_stall", 1.0);
      }
      last_beats = b;
    }
  }

  Heartbeat& hb_;
  std::chrono::milliseconds stall_timeout_;
  bool* hard_stall_flag_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace

Supervisor::Supervisor(RunPlan plan, SupervisorOptions options)
    : plan_(std::move(plan)), options_(std::move(options)) {}

SupervisedOutcome Supervisor::Run(const ProcessFaultSpec& faults) {
  return Drive(faults, nullptr);
}

SupervisedOutcome Supervisor::RunFrom(const Checkpoint& start,
                                      const ProcessFaultSpec& faults) {
  return Drive(faults, &start);
}

SupervisedOutcome Supervisor::Drive(const ProcessFaultSpec& faults,
                                    const Checkpoint* start) {
  SupervisedOutcome out;
  const auto say = [&](const std::string& msg) {
    if (options_.on_event) options_.on_event(msg);
  };

  // The latest checkpoint is the restart point; seed it from --restore.
  std::optional<Checkpoint> latest;
  if (start != nullptr) latest = *start;

  RunPlan plan = plan_;
  const auto user_on_checkpoint = plan_.on_checkpoint;
  plan.on_checkpoint = [&latest, &user_on_checkpoint](const Checkpoint& c) {
    latest = c;
    if (user_on_checkpoint) user_on_checkpoint(c);
  };

  int kills_done = 0;
  const int max_attempts = options_.max_restarts + 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++out.restarts;
      const auto backoff = options_.backoff_initial * (1LL << (attempt - 1));
      std::this_thread::sleep_for(backoff);
      std::ostringstream os;
      os << "restart " << attempt << "/" << options_.max_restarts << " from "
         << (latest ? "checkpoint at " + sim::ToString(latest->virtual_time)
                    : std::string{"scratch (no checkpoint yet)"});
      say(os.str());
    }

    ProcessFaultHooks fault_hooks{faults, kills_done};
    Heartbeat heartbeat;
    WatchdogHooks watchdog_hooks{heartbeat};
    const auto user_on_simulator = plan_.on_simulator;
    plan.on_simulator = [&](sim::Simulator& sim) {
      sim.AddHooks(&fault_hooks);
      if (options_.watchdog) sim.AddHooks(&watchdog_hooks);
      if (user_on_simulator) user_on_simulator(sim);
    };

    std::optional<WatchdogMonitor> monitor;
    if (options_.watchdog) {
      monitor.emplace(heartbeat, options_.stall_timeout, &out.hard_stall_reported);
    }

    try {
      sim::ScopedCheckThrow contain;
      CheckpointingDriver driver{plan};
      out.outcome = latest ? driver.Resume(*latest) : driver.Run();
      out.completed = true;
    } catch (const SimulatedCrash& e) {
      ++out.crashes;
      out.last_error = e.what();
      say(std::string{"crash: "} + e.what());
    } catch (const RunStalled& e) {
      ++out.stalls;
      out.last_error = e.what();
      say(std::string{"stall: "} + e.what());
    } catch (const sim::CheckViolation& e) {
      ++out.crashes;
      out.last_error = e.what();
      say(std::string{"check violation: "} + e.what());
    } catch (const std::exception& e) {
      ++out.crashes;
      out.last_error = e.what();
      say(std::string{"error: "} + e.what());
    }
    monitor.reset();  // joins the monitor thread before the next attempt
    if (out.completed) break;
  }
  out.gave_up = !out.completed;
  if (out.gave_up) say("retry budget exhausted; giving up: " + out.last_error);

  if (obs::metrics_enabled()) {
    obs::SetGauge("resilience.supervisor.crashes", static_cast<double>(out.crashes));
    obs::SetGauge("resilience.supervisor.stalls", static_cast<double>(out.stalls));
    obs::SetGauge("resilience.supervisor.restarts", static_cast<double>(out.restarts));
    obs::SetGauge("resilience.supervisor.completed", out.completed ? 1.0 : 0.0);
  }
  return out;
}

}  // namespace athena::resilience
