// Shard-crash supervision for the sharded world engine.
//
// The world-scale counterpart of Supervisor (supervisor.hpp): drives a
// WorldEngine to completion under deterministic shard-crash injection,
// snapshotting the whole world at a window cadence and restoring from
// the latest snapshot after a crash. Restore is replay-based, like every
// checkpoint in this repo: a fresh engine replays windows 1..k and the
// supervisor's window hook verifies — state digest and canonical-order
// mailbox records, byte-for-byte — that the replayed boundary matches
// the snapshot before the run continues (CheckpointError on divergence).
// A supervised run that recovers from a crash therefore finishes with a
// world digest and FleetReport byte-identical to an uninterrupted run,
// at any shard count, threaded or sequential.
//
// Cell quarantine: when crashes blamed on one cell exhaust its restart
// budget, the next restore quarantines that cell — from the crash window
// onward it stops transmitting and the engine evacuates its population
// to surviving cells through the normal 4-message handover dance
// (in-flight HARQ chains booked as `lost`; UEs without time to move are
// stranded with their packets in_flight) — so the conservation ledger
// balances and the run completes instead of crash-looping.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "resilience/world_checkpoint.hpp"
#include "world/config.hpp"
#include "world/engine.hpp"

namespace athena::resilience {

/// ProcessFaultSpec's world-scale sibling: a deterministic crash point
/// in (shard, window) coordinates with a kill budget shared across
/// attempts — a restore replays through the crash window, so an
/// unbounded budget would crash-loop forever.
struct WorldFaultSpec {
  static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  /// Shard whose worker dies (mod the layout's shard count). kNone
  /// disables injection.
  std::size_t crash_shard = kNone;
  /// 1-based window at which it dies; 0 derives a mid-run window from
  /// the world seed.
  std::uint64_t crash_window = 0;
  /// Total kills across all attempts (the default crashes once and lets
  /// the restore replay through the crash point unharmed).
  int max_kills = 1;

  /// Cell blamed for the crashes. When its crash count exceeds
  /// WorldSupervisorOptions::cell_restart_budget, the cell is
  /// quarantined and the crash point is disarmed (the faulty workload is
  /// out of the world). kNone blames the crash shard's lowest cell.
  std::size_t blame_cell = kNone;

  [[nodiscard]] bool any() const { return crash_shard != kNone; }
};

struct WorldSupervisorOptions {
  /// Snapshot cadence in window boundaries; 0 disables checkpoints (a
  /// crash then restarts from scratch).
  std::uint64_t checkpoint_every_windows = 64;
  /// Restart attempts after the first (attempts = max_restarts + 1).
  int max_restarts = 3;
  /// Crashes blamed on one cell before it is quarantined.
  int cell_restart_budget = 2;
  /// Invoked with every snapshot taken (the CLI spills the latest to
  /// disk). Observability only: must not mutate the run.
  std::function<void(const WorldSnapshot&)> on_checkpoint;
  /// Human-readable lifecycle events (crash, restore, quarantine).
  std::function<void(const std::string&)> on_event;
};

struct WorldSupervisedOutcome {
  world::WorldResult result;
  bool completed = false;
  bool gave_up = false;
  int crashes = 0;
  int restarts = 0;
  /// Attempts that began from a snapshot (replay + verify), as opposed
  /// to from scratch.
  int restores = 0;
  std::uint64_t checkpoints_taken = 0;
  std::size_t last_snapshot_bytes = 0;
  /// Wall seconds spent replaying up to the verified restore boundary,
  /// summed over restore attempts (bench_world reports this).
  double restore_replay_seconds = 0.0;
  std::vector<std::size_t> quarantined_cells;
  std::string last_error;
};

class WorldSupervisor {
 public:
  WorldSupervisor(world::WorldConfig config, WorldSupervisorOptions options);

  /// Supervised run from scratch.
  [[nodiscard]] WorldSupervisedOutcome Run(const WorldFaultSpec& faults);

  /// Supervised run seeded with an on-disk snapshot (--world-restore):
  /// validates identity (fingerprint + seed — CheckpointError on
  /// mismatch), then replays to the snapshot's window, verifies, and
  /// continues under supervision.
  [[nodiscard]] WorldSupervisedOutcome RunFrom(const WorldSnapshot& start,
                                               const WorldFaultSpec& faults);

  /// The window the fault spec resolves to under this config (exposed so
  /// callers can align checkpoint cadences and quarantine probes).
  [[nodiscard]] std::uint64_t ResolveCrashWindow(const WorldFaultSpec& faults) const;

 private:
  [[nodiscard]] WorldSupervisedOutcome Drive(const WorldFaultSpec& faults,
                                             const WorldSnapshot* start);

  world::WorldConfig config_;
  WorldSupervisorOptions options_;
};

}  // namespace athena::resilience
