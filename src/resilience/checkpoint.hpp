// Deterministic checkpoint/restore for long-running sessions.
//
// Athena sessions are pure functions of (SessionConfig, seed): every
// random decision flows from seeded sim::Rng streams and virtual time,
// so an identical build replays to an identical state. A checkpoint
// exploits that: it is a versioned, self-describing, checksummed binary
// snapshot of the session's *observable* state at a virtual-time
// boundary — the accumulated correlator-input streams (PHY telemetry +
// the capture logs, i.e. everything the measurement pipeline has
// collected so far), the clock-offset estimates, progress counters and
// an FNV-1a state digest over all of it.
//
// Restore is replay-based: a fresh process rebuilds the session from the
// plan, fast-forwards to the checkpoint's virtual time, and *verifies*
// that the replayed state digest is byte-identical to the snapshot
// before continuing — catching nondeterminism, config drift and version
// skew instead of silently diverging. (Serializing the live event queue
// is impossible in general C++ — callbacks are closures — and
// unnecessary: determinism makes the reached state reproducible, and the
// digest makes the reproduction *checkable*.) A restored run therefore
// finishes with a final report digest byte-identical to an uninterrupted
// run; tests/resilience_test.cpp pins that across seeds × kill points.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/session.hpp"
#include "core/correlator.hpp"
#include "resilience/overload.hpp"
#include "sim/time.hpp"

namespace athena::obs {
class TraceSink;
}  // namespace athena::obs

namespace athena::resilience {

/// A malformed, truncated, corrupted or mismatched checkpoint. Always a
/// diagnostic, never UB: loading validates the magic, version, size and
/// payload checksum before any field is trusted.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what) : std::runtime_error(what) {}
};

/// Rolling FNV-1a digest over the fields the pipeline consumes — the
/// byte-identity witness for checkpoint verification and final-report
/// comparison. (Deliberately self-contained: fault::InputDigest lives a
/// dependency level above this library.)
class StateDigest {
 public:
  void Mix(std::uint64_t v);
  void Mix(std::string_view s);
  void Mix(const std::vector<ran::TbRecord>& records);
  void Mix(const std::vector<net::CaptureRecord>& records);
  void Mix(const core::CorrelatorInput& input);

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

/// Digest of the SessionConfig fields that shape a run's behaviour. A
/// checkpoint taken under one configuration refuses to restore under
/// another (the replay would silently diverge otherwise).
[[nodiscard]] std::uint64_t ConfigFingerprint(const app::SessionConfig& config);

/// One snapshot of a session at a virtual-time boundary.
struct Checkpoint {
  static constexpr std::uint32_t kVersion = 1;

  // --- identity ---
  std::uint64_t config_fingerprint = 0;
  std::uint64_t seed = 0;
  sim::Duration planned_duration{0};

  // --- progress ---
  sim::TimePoint virtual_time;          ///< boundary the snapshot was taken at
  std::uint64_t events_executed = 0;

  // --- observable state ---
  std::uint64_t state_digest = 0;       ///< StateDigest over `input`
  core::CorrelatorInput input;          ///< streams collected so far

  /// Serializes to the versioned binary format (magic + header + record
  /// payload + trailing FNV checksum).
  void Serialize(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] std::size_t SerializedBytes() const;
  void WriteFile(const std::string& path) const;

  /// Parses and validates a serialized checkpoint. Throws CheckpointError
  /// with a diagnostic on bad magic, unsupported version, truncation or a
  /// checksum mismatch — never returns garbage.
  [[nodiscard]] static Checkpoint Deserialize(const std::uint8_t* data, std::size_t size);
  [[nodiscard]] static Checkpoint LoadFile(const std::string& path);
};

/// Everything a checkpointing run needs to be reproducible. The plan is
/// the unit of identity: the same plan always produces the same outcome,
/// checkpoints included.
struct RunPlan {
  app::SessionConfig config;
  sim::Duration duration{std::chrono::seconds{2}};

  /// Virtual-time checkpoint cadence; 0 disables periodic snapshots.
  sim::Duration checkpoint_every{0};

  /// Byte budgets for the overload governor; default = unbounded.
  MemoryBudget budget;

  /// Invoked (on the driving thread) each time a checkpoint is taken —
  /// the supervisor keeps the latest for crash recovery, the CLI spills
  /// it to disk. Observability only: must not mutate the run.
  std::function<void(const Checkpoint&)> on_checkpoint;

  /// Invoked once per Run()/Resume() with the freshly built simulator,
  /// before any event executes. The supervisor installs its crash-point
  /// and watchdog hooks here; tests plant livelock bombs. The callee must
  /// not advance the simulator.
  std::function<void(sim::Simulator&)> on_simulator;

  /// Invoked once per Run()/Resume() after the session is constructed
  /// (and after on_simulator), before Start(). The mitigation control
  /// plane binds its per-attempt state here — each supervisor restart
  /// gets a fresh controller whose replay-from-zero reproduces the same
  /// decision ledger. Must not advance the simulator.
  std::function<void(sim::Simulator&, app::Session&)> on_session;

  /// When non-null, installed as the current thread's trace sink for the
  /// whole Drive (session construction through teardown). The pointer
  /// must stay valid across the run; ownership stays with the caller.
  obs::TraceSink* trace_sink = nullptr;

  /// Appended to the rendered report before the report digest is taken —
  /// extra per-run text (the mitigation decision ledger) joins the
  /// byte-identity surface the restore tests pin.
  std::function<void(std::ostream&)> report_appendix;
};

/// What a completed run produced. `final_digest`/`report` are the
/// byte-identity surface the restore tests pin.
struct RunOutcome {
  std::uint64_t final_digest = 0;   ///< StateDigest over the final correlator input
  std::uint64_t report_digest = 0;  ///< FNV over the rendered report text
  std::string report;               ///< the full rendered core::Report
  std::uint64_t events_executed = 0;
  std::size_t packets_correlated = 0;
  std::size_t checkpoints_taken = 0;
  std::size_t last_checkpoint_bytes = 0;
  bool restored = false;            ///< this outcome came through Resume()
  ShedStats shed;                   ///< overload-governor ledger for the run
};

/// Drives one session to completion in checkpoint-cadence slices.
/// Stateless between calls: each Run()/Resume() builds a fresh
/// Simulator + Session, so a driver can be re-invoked after a crash.
class CheckpointingDriver {
 public:
  explicit CheckpointingDriver(RunPlan plan);

  /// Uninterrupted run from t=0, snapshotting at the plan's cadence.
  [[nodiscard]] RunOutcome Run();

  /// Restore: validates `ckpt` against the plan, replays a fresh session
  /// to the checkpoint's virtual time, verifies the replayed state
  /// digest byte-for-byte (CheckpointError on mismatch, with the first
  /// diverging record in the diagnostic), then continues to the end.
  [[nodiscard]] RunOutcome Resume(const Checkpoint& ckpt);

  [[nodiscard]] const RunPlan& plan() const { return plan_; }

 private:
  RunOutcome Drive(const Checkpoint* resume_from);

  RunPlan plan_;
};

/// Builds a Checkpoint from a live session at its current virtual time.
[[nodiscard]] Checkpoint SnapshotSession(const sim::Simulator& sim,
                                         const app::Session& session,
                                         const RunPlan& plan);

}  // namespace athena::resilience
