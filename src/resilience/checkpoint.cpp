#include "resilience/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace athena::resilience {

// ---------------------------------------------------------------------------
// StateDigest
// ---------------------------------------------------------------------------

void StateDigest::Mix(std::uint64_t v) {
  // FNV-1a one byte at a time: byte-order independent across platforms.
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (i * 8)) & 0xffu;
    hash_ *= 0x100000001b3ULL;
  }
}

void StateDigest::Mix(std::string_view s) {
  Mix(static_cast<std::uint64_t>(s.size()));
  for (const char c : s) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= 0x100000001b3ULL;
  }
}

void StateDigest::Mix(const std::vector<ran::TbRecord>& records) {
  Mix(records.size());
  for (const auto& r : records) {
    Mix(r.tb_id);
    Mix(r.chain_id);
    Mix(static_cast<std::uint64_t>(r.slot_time.us()));
    Mix(static_cast<std::uint64_t>(r.grant));
    Mix(r.tbs_bytes);
    Mix(r.used_bytes);
    Mix(r.harq_round);
    Mix(r.crc_ok ? 1u : 0u);
  }
}

void StateDigest::Mix(const std::vector<net::CaptureRecord>& records) {
  Mix(records.size());
  for (const auto& r : records) {
    Mix(r.packet_id);
    Mix(static_cast<std::uint64_t>(r.local_ts.us()));
    Mix(static_cast<std::uint64_t>(r.kind));
    Mix(r.size_bytes);
    Mix(r.flow);
    Mix(r.rtp.has_value() ? r.rtp->frame_id + 1 : 0u);
    Mix(r.icmp.has_value() ? r.icmp->probe_seq + 1 : 0u);
  }
}

void StateDigest::Mix(const core::CorrelatorInput& input) {
  Mix(static_cast<std::uint64_t>(input.sender_offset.count()));
  Mix(static_cast<std::uint64_t>(input.receiver_offset.count()));
  Mix(input.telemetry);
  Mix(input.sender);
  Mix(input.core);
  Mix(input.receiver);
}

std::uint64_t ConfigFingerprint(const app::SessionConfig& config) {
  // A drift detector, not a cryptographic identity: covers every scalar
  // knob that shapes the run. Functional overrides (grant_policy,
  // controller_factory) cannot be fingerprinted — restoring a checkpoint
  // under a different custom policy is the caller's responsibility.
  StateDigest d;
  d.Mix(config.seed);
  d.Mix(static_cast<std::uint64_t>(config.access));
  d.Mix(static_cast<std::uint64_t>(config.controller));
  d.Mix(static_cast<std::uint64_t>(config.cell.ul_slot_period.count()));
  d.Mix(static_cast<std::uint64_t>(config.cell.slot_duration.count()));
  d.Mix(static_cast<std::uint64_t>(config.cell.bsr_scheduling_delay.count()));
  d.Mix(config.cell.proactive_grant_bytes);
  d.Mix(static_cast<std::uint64_t>(config.cell.cell_ul_capacity_bps));
  d.Mix(static_cast<std::uint64_t>(config.cell.ue_processing_delay.count()));
  d.Mix(static_cast<std::uint64_t>(config.cell.rtx_delay.count()));
  d.Mix(config.cell.max_harq_rounds);
  d.Mix(static_cast<std::uint64_t>(config.cell.ecn_marking_threshold.count()));
  d.Mix(static_cast<std::uint64_t>(config.cell.gnb_to_core_delay.count()));
  d.Mix(static_cast<std::uint64_t>(config.channel.base_bler * 1e9));
  d.Mix(static_cast<std::uint64_t>(config.channel.rtx_bler_factor * 1e9));
  d.Mix(static_cast<std::uint64_t>(config.channel.bad_state_bler * 1e9));
  d.Mix(static_cast<std::uint64_t>(config.channel.p_good_to_bad * 1e9));
  d.Mix(static_cast<std::uint64_t>(config.channel.p_bad_to_good * 1e9));
  d.Mix(static_cast<std::uint64_t>(config.wan_delay.count()));
  d.Mix(static_cast<std::uint64_t>(config.wan_jitter.count()));
  d.Mix(static_cast<std::uint64_t>(config.emulated_latency.count()));
  d.Mix(static_cast<std::uint64_t>(config.cross_burstiness * 1e6));
  d.Mix(static_cast<std::uint64_t>(config.cross_modulation_sigma * 1e6));
  d.Mix(config.cross_traffic.steps().size());
  for (const auto& step : config.cross_traffic.steps()) {
    d.Mix(static_cast<std::uint64_t>(step.from.us()));
    d.Mix(static_cast<std::uint64_t>(step.bits_per_second));
  }
  d.Mix(config.icmp_enabled ? 1u : 0u);
  d.Mix(static_cast<std::uint64_t>(config.icmp_interval.count()));
  d.Mix(static_cast<std::uint64_t>(config.sender_clock_offset.count()));
  d.Mix(static_cast<std::uint64_t>(config.receiver_clock_offset.count()));
  d.Mix(static_cast<std::uint64_t>(config.sender_clock_drift_ppm * 1e3));
  return d.value();
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------
//
//   [0..8)    magic "ATHCKPT\n"
//   [8..12)   u32 version
//   [12..16)  u32 reserved (0)
//   ...       header fields (fixed-width little-endian)
//   ...       record payload (telemetry, sender, core, receiver)
//   [-8..)    u64 FNV-1a checksum over every preceding byte
//
// All integers are written little-endian byte-by-byte, so the file is
// identical across platforms and never depends on struct layout.

namespace {

constexpr char kMagic[8] = {'A', 'T', 'H', 'C', 'K', 'P', 'T', '\n'};

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void U8(std::uint8_t v) { out_.push_back(v); }
  void U16(std::uint16_t v) { Le(v, 2); }
  void U32(std::uint32_t v) { Le(v, 4); }
  void U64(std::uint64_t v) { Le(v, 8); }
  void I64(std::int64_t v) { Le(static_cast<std::uint64_t>(v), 8); }

 private:
  void Le(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
  }
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t U8() { return static_cast<std::uint8_t>(Le(1)); }
  std::uint16_t U16() { return static_cast<std::uint16_t>(Le(2)); }
  std::uint32_t U32() { return static_cast<std::uint32_t>(Le(4)); }
  std::uint64_t U64() { return Le(8); }
  std::int64_t I64() { return static_cast<std::int64_t>(Le(8)); }

 private:
  std::uint64_t Le(int bytes) {
    if (pos_ + static_cast<std::size_t>(bytes) > size_) {
      throw CheckpointError("checkpoint truncated: needed " + std::to_string(bytes) +
                            " bytes at offset " + std::to_string(pos_) + ", file has " +
                            std::to_string(size_));
    }
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (i * 8);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::uint64_t FnvOver(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void WriteTb(Writer& w, const ran::TbRecord& r) {
  w.U64(r.tb_id);
  w.U64(r.chain_id);
  w.I64(r.slot_time.us());
  w.U8(static_cast<std::uint8_t>(r.grant));
  w.U32(r.tbs_bytes);
  w.U32(r.used_bytes);
  w.U8(r.harq_round);
  w.U8(r.crc_ok ? 1 : 0);
}

ran::TbRecord ReadTb(Reader& r) {
  ran::TbRecord tb;
  tb.tb_id = r.U64();
  tb.chain_id = r.U64();
  tb.slot_time = sim::TimePoint{sim::Duration{r.I64()}};
  tb.grant = static_cast<ran::GrantType>(r.U8());
  tb.tbs_bytes = r.U32();
  tb.used_bytes = r.U32();
  tb.harq_round = r.U8();
  tb.crc_ok = r.U8() != 0;
  return tb;
}

void WriteCapture(Writer& w, const net::CaptureRecord& r) {
  w.U64(r.packet_id);
  w.I64(r.local_ts.us());
  w.I64(r.true_ts.us());
  w.U8(static_cast<std::uint8_t>(r.kind));
  w.U32(r.size_bytes);
  w.U32(r.flow);
  w.U8(r.rtp.has_value() ? 1 : 0);
  if (r.rtp.has_value()) {
    w.U32(r.rtp->ssrc);
    w.U16(r.rtp->seq);
    w.U32(r.rtp->media_ts);
    w.U8(r.rtp->marker ? 1 : 0);
    w.U8(static_cast<std::uint8_t>(r.rtp->layer));
    w.U64(r.rtp->frame_id);
    w.U16(r.rtp->transport_seq);
    w.U32(r.rtp->packets_in_frame);
    w.U32(r.rtp->packet_index_in_frame);
  }
  w.U8(r.icmp.has_value() ? 1 : 0);
  if (r.icmp.has_value()) {
    w.U32(r.icmp->probe_seq);
    w.I64(r.icmp->echo_sent_at.us());
  }
}

net::CaptureRecord ReadCapture(Reader& r) {
  net::CaptureRecord c;
  c.packet_id = r.U64();
  c.local_ts = sim::TimePoint{sim::Duration{r.I64()}};
  c.true_ts = sim::TimePoint{sim::Duration{r.I64()}};
  c.kind = static_cast<net::PacketKind>(r.U8());
  c.size_bytes = r.U32();
  c.flow = r.U32();
  if (r.U8() != 0) {
    net::RtpMeta rtp;
    rtp.ssrc = r.U32();
    rtp.seq = r.U16();
    rtp.media_ts = r.U32();
    rtp.marker = r.U8() != 0;
    rtp.layer = static_cast<net::SvcLayer>(r.U8());
    rtp.frame_id = r.U64();
    rtp.transport_seq = r.U16();
    rtp.packets_in_frame = r.U32();
    rtp.packet_index_in_frame = r.U32();
    c.rtp = rtp;
  }
  if (r.U8() != 0) {
    net::IcmpMeta icmp;
    icmp.probe_seq = r.U32();
    icmp.echo_sent_at = sim::TimePoint{sim::Duration{r.I64()}};
    c.icmp = icmp;
  }
  return c;
}

}  // namespace

void Checkpoint::Serialize(std::vector<std::uint8_t>& out) const {
  out.clear();
  Writer w{out};
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  w.U32(kVersion);
  w.U32(0);  // reserved
  w.U64(config_fingerprint);
  w.U64(seed);
  w.I64(planned_duration.count());
  w.I64(virtual_time.us());
  w.U64(events_executed);
  w.U64(state_digest);
  w.I64(input.sender_offset.count());
  w.I64(input.receiver_offset.count());
  w.U64(input.telemetry.size());
  w.U64(input.sender.size());
  w.U64(input.core.size());
  w.U64(input.receiver.size());
  for (const auto& r : input.telemetry) WriteTb(w, r);
  for (const auto* stream : {&input.sender, &input.core, &input.receiver}) {
    for (const auto& r : *stream) WriteCapture(w, r);
  }
  w.U64(FnvOver(out.data(), out.size()));
}

std::size_t Checkpoint::SerializedBytes() const {
  // Header 112 B + trailer 8 B + per-record payload (capture records vary
  // with their optional metadata; computed exactly by Serialize).
  std::vector<std::uint8_t> buf;
  Serialize(buf);
  return buf.size();
}

Checkpoint Checkpoint::Deserialize(const std::uint8_t* data, std::size_t size) {
  if (size < sizeof(kMagic) + 8) {
    throw CheckpointError("checkpoint truncated: " + std::to_string(size) +
                          " bytes is smaller than the minimal header");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError("not a checkpoint: bad magic (expected ATHCKPT)");
  }
  // Trailer first: any corruption anywhere — header or payload — must be
  // caught before a single field is trusted.
  const std::uint64_t stored_checksum =
      Reader{data + size - 8, 8}.U64();
  const std::uint64_t computed_checksum = FnvOver(data, size - 8);
  if (stored_checksum != computed_checksum) {
    std::ostringstream os;
    os << "checkpoint corrupted: checksum mismatch (stored 0x" << std::hex
       << stored_checksum << ", computed 0x" << computed_checksum << ")";
    throw CheckpointError(os.str());
  }

  Reader r{data, size - 8};
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)r.U8();
  const std::uint32_t version = r.U32();
  if (version != kVersion) {
    throw CheckpointError("unsupported checkpoint version " + std::to_string(version) +
                          " (this build reads version " + std::to_string(kVersion) + ")");
  }
  (void)r.U32();  // reserved

  Checkpoint c;
  c.config_fingerprint = r.U64();
  c.seed = r.U64();
  c.planned_duration = sim::Duration{r.I64()};
  c.virtual_time = sim::TimePoint{sim::Duration{r.I64()}};
  c.events_executed = r.U64();
  c.state_digest = r.U64();
  c.input.sender_offset = sim::Duration{r.I64()};
  c.input.receiver_offset = sim::Duration{r.I64()};
  const std::uint64_t n_telemetry = r.U64();
  const std::uint64_t n_sender = r.U64();
  const std::uint64_t n_core = r.U64();
  const std::uint64_t n_receiver = r.U64();
  // Counts are attacker-controlled until proven payload-backed: a TB is
  // ≥ 28 payload bytes, so reject counts the remaining bytes cannot hold
  // instead of reserving gigabytes on a lying header.
  const std::uint64_t total_records = n_telemetry + n_sender + n_core + n_receiver;
  if (total_records > r.remaining()) {
    throw CheckpointError("checkpoint corrupted: header claims " +
                          std::to_string(total_records) +
                          " records but only " + std::to_string(r.remaining()) +
                          " payload bytes remain");
  }
  c.input.telemetry.reserve(n_telemetry);
  for (std::uint64_t i = 0; i < n_telemetry; ++i) c.input.telemetry.push_back(ReadTb(r));
  for (auto* stream : {&c.input.sender, &c.input.core, &c.input.receiver}) {
    const std::uint64_t n = stream == &c.input.sender ? n_sender
                            : stream == &c.input.core ? n_core
                                                      : n_receiver;
    stream->reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) stream->push_back(ReadCapture(r));
  }
  if (r.remaining() != 0) {
    throw CheckpointError("checkpoint corrupted: " + std::to_string(r.remaining()) +
                          " trailing bytes after the last record");
  }

  // Self-check: the stored digest must match the stored records.
  StateDigest digest;
  digest.Mix(c.input);
  if (digest.value() != c.state_digest) {
    throw CheckpointError("checkpoint corrupted: state digest does not match payload");
  }
  return c;
}

void Checkpoint::WriteFile(const std::string& path) const {
  std::vector<std::uint8_t> buf;
  Serialize(buf);
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  if (!os) throw CheckpointError("cannot write checkpoint file " + path);
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
  if (!os) throw CheckpointError("short write to checkpoint file " + path);
}

Checkpoint Checkpoint::LoadFile(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw CheckpointError("cannot read checkpoint file " + path);
  std::vector<std::uint8_t> buf{std::istreambuf_iterator<char>(is),
                                std::istreambuf_iterator<char>()};
  return Deserialize(buf.data(), buf.size());
}

// ---------------------------------------------------------------------------
// Checkpointing driver
// ---------------------------------------------------------------------------

Checkpoint SnapshotSession(const sim::Simulator& sim, const app::Session& session,
                           const RunPlan& plan) {
  Checkpoint c;
  c.config_fingerprint = ConfigFingerprint(plan.config);
  c.seed = plan.config.seed;
  c.planned_duration = plan.duration;
  c.virtual_time = sim.Now();
  c.events_executed = sim.events_executed();
  c.input = session.BuildCorrelatorInput();
  StateDigest digest;
  digest.Mix(c.input);
  c.state_digest = digest.value();
  return c;
}

CheckpointingDriver::CheckpointingDriver(RunPlan plan) : plan_(std::move(plan)) {}

RunOutcome CheckpointingDriver::Run() { return Drive(nullptr); }

RunOutcome CheckpointingDriver::Resume(const Checkpoint& ckpt) {
  if (ckpt.config_fingerprint != ConfigFingerprint(plan_.config)) {
    throw CheckpointError(
        "checkpoint was taken under a different session configuration "
        "(fingerprint mismatch); restoring would silently diverge");
  }
  if (ckpt.seed != plan_.config.seed) {
    throw CheckpointError("checkpoint seed " + std::to_string(ckpt.seed) +
                          " does not match the plan's seed " +
                          std::to_string(plan_.config.seed));
  }
  if (ckpt.planned_duration != plan_.duration) {
    throw CheckpointError("checkpoint was taken for a different planned duration");
  }
  if (ckpt.virtual_time > sim::kEpoch + plan_.duration) {
    throw CheckpointError("checkpoint lies beyond the planned duration");
  }
  return Drive(&ckpt);
}

namespace {

/// First index where the replayed telemetry/captures diverge from the
/// snapshot — turns a digest mismatch into an actionable diagnostic.
std::string DescribeDivergence(const core::CorrelatorInput& replayed,
                               const core::CorrelatorInput& stored) {
  auto first_tb_diff = [](const std::vector<ran::TbRecord>& a,
                          const std::vector<ran::TbRecord>& b) -> std::ptrdiff_t {
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
      StateDigest da, db;
      da.Mix(std::vector<ran::TbRecord>{a[i]});
      db.Mix(std::vector<ran::TbRecord>{b[i]});
      if (da.value() != db.value()) return static_cast<std::ptrdiff_t>(i);
    }
    return a.size() != b.size() ? static_cast<std::ptrdiff_t>(n) : -1;
  };
  std::ostringstream os;
  os << "replayed " << replayed.telemetry.size() << " TBs / " << replayed.core.size()
     << " core captures vs snapshot " << stored.telemetry.size() << " / "
     << stored.core.size();
  const std::ptrdiff_t tb = first_tb_diff(replayed.telemetry, stored.telemetry);
  if (tb >= 0) os << "; first diverging telemetry record at index " << tb;
  return os.str();
}

}  // namespace

RunOutcome CheckpointingDriver::Drive(const Checkpoint* resume_from) {
  // Live consumers (the mitigation control plane) see the whole attempt:
  // the sink covers session construction through teardown, and is
  // re-installed identically on every restart so replays decode the same
  // event stream.
  std::optional<obs::ScopedTraceSink> trace_scope;
  if (plan_.trace_sink != nullptr) trace_scope.emplace(plan_.trace_sink);

  sim::Simulator simulator;
  app::Session session{simulator, plan_.config};
  if (plan_.on_simulator) plan_.on_simulator(simulator);
  if (plan_.on_session) plan_.on_session(simulator, session);
  session.Start();

  RunOutcome outcome;
  outcome.restored = resume_from != nullptr;
  const sim::TimePoint end = sim::kEpoch + plan_.duration;

  // --- fast-forward replay to the checkpoint boundary, then verify ---
  if (resume_from != nullptr) {
    simulator.RunUntil(resume_from->virtual_time);
    const core::CorrelatorInput replayed = session.BuildCorrelatorInput();
    StateDigest digest;
    digest.Mix(replayed);
    if (digest.value() != resume_from->state_digest) {
      throw CheckpointError(
          "restore verification failed: replayed state digest differs from the "
          "snapshot — the build or configuration is not the one that took the "
          "checkpoint (" +
          DescribeDivergence(replayed, resume_from->input) + ")");
    }
    obs::SetGauge("resilience.checkpoint.restored_at_ms",
                  resume_from->virtual_time.ms());
  }

  // --- run the remainder in checkpoint-cadence slices ---
  const sim::Duration cadence = plan_.checkpoint_every;
  sim::TimePoint next_boundary = end;
  if (cadence.count() > 0) {
    // Boundaries stay on the absolute grid k × cadence whether or not the
    // run was restored, so a restored run's later checkpoints land at the
    // same virtual times as the uninterrupted run's.
    const std::int64_t elapsed = (simulator.Now() - sim::kEpoch).count();
    const std::int64_t k = elapsed / cadence.count() + 1;
    next_boundary = sim::kEpoch + sim::Duration{k * cadence.count()};
  }
  while (simulator.Now() < end) {
    const sim::TimePoint target = next_boundary < end ? next_boundary : end;
    simulator.RunUntil(target);
    if (cadence.count() > 0 && simulator.Now() >= next_boundary &&
        simulator.Now() < end) {
      Checkpoint ckpt = SnapshotSession(simulator, session, plan_);
      ++outcome.checkpoints_taken;
      outcome.last_checkpoint_bytes = ckpt.SerializedBytes();
      obs::SetGauge("resilience.checkpoint.count",
                    static_cast<double>(outcome.checkpoints_taken));
      obs::SetGauge("resilience.checkpoint.bytes",
                    static_cast<double>(outcome.last_checkpoint_bytes));
      if (plan_.on_checkpoint) plan_.on_checkpoint(ckpt);
      next_boundary += cadence;
    }
  }
  session.Stop();
  simulator.RunUntil(end);  // drain same-instant stop events, keep clock at end

  // --- final state: bound, correlate, report, digest ---
  core::CorrelatorInput input = session.BuildCorrelatorInput();
  outcome.shed = BoundInput(input, plan_.budget);
  const core::CrossLayerDataset data = core::Correlator::Correlate(input);
  outcome.packets_correlated = data.packets.size();
  outcome.events_executed = simulator.events_executed();

  std::ostringstream report;
  core::Report::Render(
      report,
      core::Report::Inputs{
          .dataset = &data,
          .qoe = &session.qoe(),
          .ran_counters =
              session.ran_uplink() ? &session.ran_uplink()->counters() : nullptr,
          .controller_target_bps = session.sender().controller().target_bps(),
      });
  if (plan_.report_appendix) plan_.report_appendix(report);
  outcome.report = report.str();

  StateDigest final_digest;
  final_digest.Mix(input);
  outcome.final_digest = final_digest.value();
  StateDigest report_digest;
  report_digest.Mix(outcome.report);
  outcome.report_digest = report_digest.value();
  return outcome;
}

}  // namespace athena::resilience
