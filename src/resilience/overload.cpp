#include "resilience/overload.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"

namespace athena::resilience {

void ShedStats::PublishMetrics() const {
  if (!obs::metrics_enabled()) return;
  obs::SetGauge("resilience.shed.icmp", static_cast<double>(icmp_shed));
  obs::SetGauge("resilience.shed.padding_tb", static_cast<double>(padding_tb_shed));
  obs::SetGauge("resilience.shed.telemetry_capped", static_cast<double>(telemetry_capped));
  obs::SetGauge("resilience.shed.capture_capped", static_cast<double>(capture_capped));
  obs::SetGauge("resilience.shed.trace", static_cast<double>(trace_shed));
  obs::SetGauge("resilience.shed.trace_evicted", static_cast<double>(trace_evicted));
  obs::SetGauge("resilience.shed.total", static_cast<double>(total()));
}

std::size_t InputBytes(const core::CorrelatorInput& input) {
  return input.telemetry.size() * sizeof(ran::TbRecord) +
         (input.sender.size() + input.core.size() + input.receiver.size()) *
             sizeof(net::CaptureRecord);
}

namespace {

/// Erase-if preserving order, returning how many were removed.
template <typename Record, typename Pred>
std::uint64_t ShedWhere(std::vector<Record>& records, Pred pred) {
  const auto it = std::remove_if(records.begin(), records.end(), pred);
  const auto removed = static_cast<std::uint64_t>(records.end() - it);
  records.erase(it, records.end());
  return removed;
}

/// Hard cap: drop the newest records (the tail) so the stream keeps its
/// contiguous history from t=0 — a truncated-but-coherent record beats a
/// full-length one with holes.
template <typename Record>
std::uint64_t CapTail(std::vector<Record>& records, std::size_t keep) {
  if (records.size() <= keep) return 0;
  const auto dropped = static_cast<std::uint64_t>(records.size() - keep);
  records.resize(keep);
  return dropped;
}

}  // namespace

ShedStats BoundInput(core::CorrelatorInput& input, const MemoryBudget& budget) {
  ShedStats stats;
  if (budget.input_bytes == 0) return stats;

  // Priority 2: ICMP probe records. The correlator matches packets to
  // TBs; ICMP echoes never cross the RAN, so they are refinement, not
  // evidence.
  if (InputBytes(input) > budget.input_bytes) {
    for (auto* stream : {&input.sender, &input.core, &input.receiver}) {
      stats.icmp_shed += ShedWhere(
          *stream, [](const net::CaptureRecord& r) { return r.icmp.has_value(); });
    }
  }

  // Priority 3: padding-only TBs — they carried zero RLC payload, so the
  // byte-conservation replay never drains a packet through them.
  if (InputBytes(input) > budget.input_bytes) {
    stats.padding_tb_shed += ShedWhere(input.telemetry, [](const ran::TbRecord& r) {
      return r.used_bytes == 0;
    });
  }

  // Last resort: hard-cap every stream proportionally to its share of
  // the remaining bytes. This drops data records — counted as `capped`,
  // the loudest tier of the ledger.
  std::size_t bytes = InputBytes(input);
  if (bytes > budget.input_bytes) {
    const double scale = static_cast<double>(budget.input_bytes) / static_cast<double>(bytes);
    stats.telemetry_capped += CapTail(
        input.telemetry,
        static_cast<std::size_t>(static_cast<double>(input.telemetry.size()) * scale));
    for (auto* stream : {&input.sender, &input.core, &input.receiver}) {
      stats.capture_capped += CapTail(
          *stream,
          static_cast<std::size_t>(static_cast<double>(stream->size()) * scale));
    }
  }

  stats.PublishMetrics();
  return stats;
}

}  // namespace athena::resilience
