#include "resilience/world_supervisor.hpp"

#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/barrier.hpp"
#include "sim/check.hpp"
#include "sim/runner.hpp"

namespace athena::resilience {
namespace {

/// Seed sub-stream for the derived crash window (disjoint from the
/// engine's kChannelStream/kHandoverStream fan-out).
constexpr std::uint64_t kCrashWindowStream = 3'000'000;

[[nodiscard]] double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

WorldSupervisor::WorldSupervisor(world::WorldConfig config, WorldSupervisorOptions options)
    : config_(std::move(config)), options_(std::move(options)) {}

std::uint64_t WorldSupervisor::ResolveCrashWindow(const WorldFaultSpec& faults) const {
  const auto schedule = sim::WindowSchedule::Cover(
      sim::kEpoch, sim::kEpoch + config_.duration, config_.link_latency);
  if (faults.crash_window != 0) {
    return std::min(faults.crash_window, schedule.windows);
  }
  // Seed-derived, in the middle 50% of the run: late enough that a
  // checkpoint exists, early enough that the recovery is exercised.
  const std::uint64_t span = std::max<std::uint64_t>(1, schedule.windows / 2);
  return schedule.windows / 4 + 1 +
         sim::DeriveSeed(config_.seed, kCrashWindowStream) % span;
}

WorldSupervisedOutcome WorldSupervisor::Run(const WorldFaultSpec& faults) {
  return Drive(faults, nullptr);
}

WorldSupervisedOutcome WorldSupervisor::RunFrom(const WorldSnapshot& start,
                                                const WorldFaultSpec& faults) {
  const std::uint64_t fingerprint = WorldConfigFingerprint(config_);
  if (start.config_fingerprint != fingerprint) {
    std::ostringstream os;
    os << "world snapshot was taken under a different configuration (fingerprint 0x"
       << std::hex << start.config_fingerprint << ", this config 0x" << fingerprint
       << ") — the replay would silently diverge";
    throw CheckpointError(os.str());
  }
  if (start.seed != config_.seed) {
    throw CheckpointError("world snapshot seed " + std::to_string(start.seed) +
                          " does not match the configured seed " +
                          std::to_string(config_.seed));
  }
  return Drive(faults, &start);
}

WorldSupervisedOutcome WorldSupervisor::Drive(const WorldFaultSpec& faults,
                                              const WorldSnapshot* start) {
  WorldSupervisedOutcome out;
  const auto say = [&](const std::string& msg) {
    if (options_.on_event) options_.on_event(msg);
  };

  const auto schedule = sim::WindowSchedule::Cover(
      sim::kEpoch, sim::kEpoch + config_.duration, config_.link_latency);
  const std::uint64_t crash_window = faults.any() ? ResolveCrashWindow(faults) : 0;
  const std::size_t blame_cell =
      faults.blame_cell != WorldFaultSpec::kNone
          ? faults.blame_cell % config_.cells
          : (faults.any() ? faults.crash_shard % config_.shards : 0);

  // The latest snapshot is the restart point; seed it from --world-restore.
  std::optional<WorldSnapshot> latest;
  if (start != nullptr) latest = *start;

  int kills_done = 0;
  int blame_crashes = 0;
  bool quarantined = false;
  const int max_attempts = options_.max_restarts + 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++out.restarts;
      std::ostringstream os;
      os << "restart " << attempt << "/" << options_.max_restarts << " from "
         << (latest ? "snapshot at window " + std::to_string(latest->window)
                    : std::string{"scratch (no snapshot yet)"});
      say(os.str());
    }

    world::WorldConfig cfg = config_;
    const bool armed = faults.any() && kills_done < faults.max_kills && !quarantined;
    cfg.crash_shard = armed ? faults.crash_shard : world::WorldConfig::kNoCrash;
    cfg.crash_window = armed ? crash_window : 0;
    if (quarantined) {
      // Quarantine from the start of the crash window: one tick past the
      // W_{crash-1} boundary, so every boundary at or before it — the
      // restore-verify point included — replays untouched.
      const std::int64_t at_us =
          static_cast<std::int64_t>(crash_window - 1) * cfg.link_latency.count() + 1;
      cfg.quarantines.push_back(
          world::WorldConfig::QuarantineSpec{blame_cell, sim::TimePoint{sim::Duration{at_us}}});
    }

    const std::uint64_t restore_window = latest ? latest->window : 0;
    if (latest) ++out.restores;

    world::WorldEngine engine(cfg);
    const auto attempt_t0 = std::chrono::steady_clock::now();
    engine.set_window_hook([&](std::uint64_t k) {
      if (restore_window != 0 && k == restore_window) {
        // The restore contract: the replayed boundary must reproduce the
        // snapshot byte-for-byte — state digest and canonical-order
        // pending mailbox alike — before the run is allowed to continue.
        const std::uint64_t digest = engine.Digest();
        const auto mailbox = engine.PendingMailRecords();
        if (digest != latest->state_digest || !(mailbox == latest->mailbox)) {
          throw CheckpointError(DescribeWorldDivergence(*latest, digest, mailbox));
        }
        out.restore_replay_seconds += SecondsSince(attempt_t0);
      }
      if (options_.checkpoint_every_windows > 0 &&
          k % options_.checkpoint_every_windows == 0 && k > restore_window &&
          k < schedule.windows) {
        WorldSnapshot snapshot = SnapshotWorld(engine, k);
        ++out.checkpoints_taken;
        out.last_snapshot_bytes = snapshot.SerializedBytes();
        if (options_.on_checkpoint) options_.on_checkpoint(snapshot);
        latest = std::move(snapshot);
      }
    });

    try {
      sim::ScopedCheckThrow contain;
      out.result = engine.Run();
      out.completed = true;
    } catch (const world::ShardCrash& e) {
      ++out.crashes;
      ++kills_done;
      ++blame_crashes;
      out.last_error = e.what();
      say(std::string{"crash: "} + e.what());
      if (!quarantined && blame_crashes > options_.cell_restart_budget) {
        quarantined = true;
        out.quarantined_cells.push_back(blame_cell);
        say("cell " + std::to_string(blame_cell) + " exhausted its restart budget (" +
            std::to_string(options_.cell_restart_budget) +
            "); quarantining it and evacuating its UEs");
      }
    } catch (const CheckpointError& e) {
      // Replay divergence (or a poisoned snapshot). The snapshot cannot
      // be trusted: drop it and let the next attempt rebuild from
      // scratch — determinism makes that equivalent, just slower.
      ++out.crashes;
      out.last_error = e.what();
      latest.reset();
      say(std::string{"restore failed: "} + e.what());
    } catch (const sim::CheckViolation& e) {
      ++out.crashes;
      out.last_error = e.what();
      say(std::string{"check violation: "} + e.what());
    } catch (const std::exception& e) {
      ++out.crashes;
      out.last_error = e.what();
      say(std::string{"error: "} + e.what());
    }
    if (out.completed) break;
  }
  out.gave_up = !out.completed;
  if (out.gave_up) say("retry budget exhausted; giving up: " + out.last_error);

  if (obs::metrics_enabled()) {
    obs::CountInc("resilience.world.checkpoints", out.checkpoints_taken);
    obs::CountInc("resilience.world.restores", static_cast<std::uint64_t>(out.restores));
    obs::CountInc("resilience.world.quarantines", out.quarantined_cells.size());
    obs::SetGauge("resilience.world.completed", out.completed ? 1.0 : 0.0);
  }
  return out;
}

}  // namespace athena::resilience
