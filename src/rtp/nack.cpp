#include "rtp/nack.hpp"

#include <algorithm>

namespace athena::rtp {

namespace {
/// Signed distance a→b on the 16-bit sequence circle.
int SeqDiff(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(b - a));
}
}  // namespace

NackGenerator::NackGenerator(sim::Simulator& sim, Config config, net::PacketIdGenerator& ids)
    : sim_(sim),
      config_(config),
      ids_(ids),
      timer_(sim, config.check_interval, [this] { CheckAndSend(); }) {}

void NackGenerator::Start() { timer_.Start(); }

void NackGenerator::Stop() { timer_.Stop(); }

void NackGenerator::OnMediaPacket(const net::Packet& p) {
  if (!p.rtp) return;
  Stream& stream = streams_[p.rtp->ssrc];
  const std::uint16_t seq = p.rtp->seq;

  if (!stream.started) {
    stream.started = true;
    stream.highest_seq = seq;
    return;
  }

  const int ahead = SeqDiff(stream.highest_seq, seq);
  if (ahead > 0) {
    // Every sequence number skipped over is (for now) missing.
    for (int i = 1; i < ahead; ++i) {
      const auto missing_seq = static_cast<std::uint16_t>(stream.highest_seq + i);
      stream.missing.emplace(
          missing_seq, Missing{sim_.Now(), sim_.Now() + config_.initial_hold, 0});
      ++gaps_detected_;
    }
    stream.highest_seq = seq;
    return;
  }

  // At or behind the high-water mark: a retransmission (or reordering)
  // filling a hole.
  const auto it = stream.missing.find(seq);
  if (it != stream.missing.end()) {
    stream.missing.erase(it);
    ++recovered_;
  }
}

void NackGenerator::CheckAndSend() {
  if (!feedback_path_) return;
  const sim::TimePoint now = sim_.Now();
  for (auto& [ssrc, stream] : streams_) {
    std::vector<std::uint16_t> due;
    for (auto it = stream.missing.begin(); it != stream.missing.end();) {
      Missing& m = it->second;
      if (m.retries >= config_.max_retries) {
        ++abandoned_;
        it = stream.missing.erase(it);
        continue;
      }
      if (now >= m.next_action) {
        due.push_back(it->first);
        ++m.retries;
        m.next_action = now + config_.retry_interval;
      }
      ++it;
    }
    if (due.empty()) continue;
    net::Packet nack;
    nack.id = ids_.Next();
    nack.flow = config_.flow;
    nack.kind = net::PacketKind::kRtcpFeedback;
    nack.size_bytes =
        config_.nack_packet_bytes + static_cast<std::uint32_t>(due.size()) * 2;
    nack.created_at = now;
    nack.nack = net::NackMeta{ssrc, std::move(due)};
    ++nacks_sent_;
    feedback_path_(nack);
  }
}

void RtxCache::Insert(const net::Packet& p) {
  if (!p.rtp) return;
  const std::uint64_t key = Key(p.rtp->ssrc, p.rtp->seq);
  if (order_.size() < capacity_) {
    order_.push_back(key);
  } else {
    cache_.erase(order_[next_evict_]);
    order_[next_evict_] = key;
    next_evict_ = (next_evict_ + 1) % capacity_;
  }
  cache_[key] = p;
}

const net::Packet* RtxCache::Find(std::uint32_t ssrc, std::uint16_t seq) const {
  const auto it = cache_.find(Key(ssrc, seq));
  return it == cache_.end() ? nullptr : &it->second;
}

}  // namespace athena::rtp
