#include "rtp/twcc.hpp"

#include <algorithm>

namespace athena::rtp {

TwccReceiver::TwccReceiver(sim::Simulator& sim, Config config, net::PacketIdGenerator& ids)
    : sim_(sim),
      config_(config),
      ids_(ids),
      timer_(sim, config.feedback_interval, [this] { FlushFeedback(); }) {}

void TwccReceiver::Start() { timer_.Start(); }

void TwccReceiver::Stop() { timer_.Stop(); }

void TwccReceiver::OnMediaPacket(const net::Packet& p) {
  if (!p.rtp) return;
  pending_.push_back(net::TwccArrival{p.rtp->transport_seq, sim_.Now(), p.ecn_ce});
}

void TwccReceiver::FlushFeedback() {
  if (pending_.empty() || !feedback_path_) return;
  net::Packet fb;
  fb.id = ids_.Next();
  fb.flow = config_.feedback_flow;
  fb.kind = net::PacketKind::kRtcpFeedback;
  fb.size_bytes = config_.feedback_packet_bytes +
                  static_cast<std::uint32_t>(pending_.size()) * 4;  // ~4 B per report
  fb.created_at = sim_.Now();
  fb.feedback = net::FeedbackMeta{next_feedback_seq_++, std::move(pending_)};
  pending_.clear();
  feedback_path_(fb);
}

void TwccSender::OnPacketSent(const net::Packet& p, sim::TimePoint now) {
  if (!p.rtp) return;
  history_.push_back(SentEntry{
      .transport_seq = p.rtp->transport_seq,
      .send_ts = now,
      .size_bytes = p.size_bytes,
      .is_audio = p.is_audio(),
  });
  while (history_.size() > history_limit_) history_.pop_front();
}

std::vector<PacketReport> TwccSender::OnFeedback(const net::Packet& feedback) {
  std::vector<PacketReport> out;
  if (!feedback.feedback) return out;
  out.reserve(feedback.feedback->arrivals.size());
  for (const auto& arrival : feedback.feedback->arrivals) {
    // Linear scan from the back: feedback reports are recent packets, so
    // the match is almost always within the last interval's worth.
    const auto it = std::find_if(history_.rbegin(), history_.rend(), [&](const SentEntry& e) {
      return e.transport_seq == arrival.transport_seq;
    });
    if (it == history_.rend()) continue;
    out.push_back(PacketReport{
        .transport_seq = arrival.transport_seq,
        .send_ts = it->send_ts,
        .recv_ts = arrival.recv_ts,
        .size_bytes = it->size_bytes,
        .is_audio = it->is_audio,
        .ce = arrival.ce,
    });
  }
  std::sort(out.begin(), out.end(), [](const PacketReport& a, const PacketReport& b) {
    return a.recv_ts < b.recv_ts;
  });
  return out;
}

}  // namespace athena::rtp
