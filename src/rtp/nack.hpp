// Receiver-side loss detection and NACK generation (RFC 4585 generic
// NACK, WebRTC-style): RTP sequence gaps per SSRC are reported back to the
// sender for retransmission, with bounded retries. In this system losses
// come from HARQ chain drops in the RAN (§3.2) — NACK recovery is how the
// application layer papers over them, at the cost of an extra RTT that
// Athena's cross-layer records make visible.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace athena::rtp {

class NackGenerator {
 public:
  struct Config {
    /// How long to sit on a fresh gap before NACKing (reordering grace).
    sim::Duration initial_hold{std::chrono::milliseconds{15}};
    sim::Duration retry_interval{std::chrono::milliseconds{80}};
    int max_retries = 4;
    sim::Duration check_interval{std::chrono::milliseconds{10}};
    std::uint32_t nack_packet_bytes = 72;
    net::FlowId flow = 9200;
  };

  NackGenerator(sim::Simulator& sim, Config config, net::PacketIdGenerator& ids);

  void Start();
  void Stop();

  /// Feed every media packet arriving at the receiver.
  void OnMediaPacket(const net::Packet& p);

  /// NACK packets leave through this handler (the feedback return path).
  void set_feedback_path(net::PacketHandler h) { feedback_path_ = std::move(h); }

  [[nodiscard]] std::uint64_t gaps_detected() const { return gaps_detected_; }
  [[nodiscard]] std::uint64_t nacks_sent() const { return nacks_sent_; }
  [[nodiscard]] std::uint64_t recovered() const { return recovered_; }
  [[nodiscard]] std::uint64_t abandoned() const { return abandoned_; }

 private:
  struct Missing {
    sim::TimePoint first_seen;
    sim::TimePoint next_action;
    int retries = 0;
  };
  struct Stream {
    bool started = false;
    std::uint16_t highest_seq = 0;
    std::map<std::uint16_t, Missing> missing;
  };

  void CheckAndSend();

  sim::Simulator& sim_;
  Config config_;
  net::PacketIdGenerator& ids_;
  net::PacketHandler feedback_path_;
  sim::PeriodicTimer timer_;
  std::map<std::uint32_t, Stream> streams_;  // by SSRC
  std::uint64_t gaps_detected_ = 0;
  std::uint64_t nacks_sent_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t abandoned_ = 0;
};

/// Sender-side retransmission cache: recent RTP packets by (SSRC, seq).
class RtxCache {
 public:
  explicit RtxCache(std::size_t capacity = 2048) : capacity_(capacity) {}

  void Insert(const net::Packet& p);

  /// Returns the cached packet for (ssrc, seq), or nullptr if evicted.
  [[nodiscard]] const net::Packet* Find(std::uint32_t ssrc, std::uint16_t seq) const;

  [[nodiscard]] std::size_t size() const { return order_.size(); }

 private:
  static std::uint64_t Key(std::uint32_t ssrc, std::uint16_t seq) {
    return (static_cast<std::uint64_t>(ssrc) << 16) | seq;
  }

  std::size_t capacity_;
  std::map<std::uint64_t, net::Packet> cache_;
  std::vector<std::uint64_t> order_;  // FIFO eviction ring
  std::size_t next_evict_ = 0;
};

}  // namespace athena::rtp
