#include "rtp/packetizer.hpp"

#include <algorithm>
#include <cassert>

namespace athena::rtp {

std::vector<net::Packet> Packetizer::Packetize(const MediaUnit& unit, sim::TimePoint now) {
  assert(unit.payload_bytes > 0 && "packetizing an empty media unit");
  const std::uint32_t mtu = config_.mtu_payload_bytes;
  const std::uint32_t count = (unit.payload_bytes + mtu - 1) / mtu;

  std::vector<net::Packet> out;
  out.reserve(count);
  std::uint32_t remaining = unit.payload_bytes;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t chunk = std::min(remaining, mtu);
    remaining -= chunk;

    net::Packet p;
    p.id = ids_.Next();
    p.flow = config_.flow;
    p.kind = unit.is_audio ? net::PacketKind::kRtpAudio : net::PacketKind::kRtpVideo;
    p.size_bytes = chunk + config_.header_overhead_bytes;
    p.created_at = now;
    p.rtp = net::RtpMeta{
        .ssrc = config_.ssrc,
        .seq = next_seq_++,
        .media_ts = unit.media_ts,
        .marker = (i + 1 == count),
        .layer = unit.layer,
        .frame_id = unit.frame_id,
        .transport_seq = transport_seq_.Next(),
        .packets_in_frame = count,
        .packet_index_in_frame = i,
    };
    out.push_back(std::move(p));
  }
  assert(remaining == 0);
  return out;
}

}  // namespace athena::rtp
