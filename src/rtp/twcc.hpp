// Transport-wide congestion-control feedback (WebRTC TWCC / RFC 8888
// spirit). The receiver logs per-packet arrival times keyed by the
// transport-wide sequence number and periodically ships them back; the
// sender joins them with its send history to produce the
// (send_time, recv_time, size) triples GCC's delay estimator consumes.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace athena::rtp {

/// A fully resolved packet report: what the congestion controller sees.
struct PacketReport {
  std::uint16_t transport_seq = 0;
  sim::TimePoint send_ts;   ///< sender clock
  sim::TimePoint recv_ts;   ///< receiver clock (offset does not matter to GCC:
                            ///< it differences consecutive packets)
  std::uint32_t size_bytes = 0;
  bool is_audio = false;
  bool ce = false;  ///< ECN-CE observed at the receiver
};

/// Receiver half: observe media arrivals, emit feedback packets.
class TwccReceiver {
 public:
  struct Config {
    sim::Duration feedback_interval{std::chrono::milliseconds{50}};
    net::FlowId feedback_flow = 9100;
    std::uint32_t feedback_packet_bytes = 80;
  };

  TwccReceiver(sim::Simulator& sim, Config config, net::PacketIdGenerator& ids);

  void Start();
  void Stop();

  /// Call for every media packet that reaches the receiver.
  void OnMediaPacket(const net::Packet& p);

  /// Feedback packets are pushed into this handler (the return network path).
  void set_feedback_path(net::PacketHandler h) { feedback_path_ = std::move(h); }

  [[nodiscard]] std::uint32_t feedback_sent() const { return next_feedback_seq_; }

 private:
  void FlushFeedback();

  sim::Simulator& sim_;
  Config config_;
  net::PacketIdGenerator& ids_;
  net::PacketHandler feedback_path_;
  sim::PeriodicTimer timer_;
  std::vector<net::TwccArrival> pending_;
  std::uint32_t next_feedback_seq_ = 0;
};

/// Sender half: remember what was sent, resolve feedback into reports.
class TwccSender {
 public:
  explicit TwccSender(std::size_t history_limit = 10'000) : history_limit_(history_limit) {}

  /// Record a packet as sent "now" (sender clock).
  void OnPacketSent(const net::Packet& p, sim::TimePoint now);

  /// Resolve a feedback packet into per-packet reports, in transport-seq
  /// order. Unknown sequence numbers (history evicted) are skipped.
  [[nodiscard]] std::vector<PacketReport> OnFeedback(const net::Packet& feedback);

  [[nodiscard]] std::size_t history_size() const { return history_.size(); }

 private:
  struct SentEntry {
    std::uint16_t transport_seq = 0;
    sim::TimePoint send_ts;
    std::uint32_t size_bytes = 0;
    bool is_audio = false;
  };

  std::deque<SentEntry> history_;
  std::size_t history_limit_;
};

}  // namespace athena::rtp
