// RTP packetization: turns encoded media units (a video frame or an audio
// sample) into bursts of RTP packets, stamping the header-extension fields
// Athena correlates on (SVC layer id, frame id, transport-wide sequence
// number). §2 of the paper: "audio samples and video frames (usually
// consisting of multiple RTP packets) are sent in bursts".
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace athena::rtp {

/// One encoded media unit handed to the packetizer.
struct MediaUnit {
  std::uint64_t frame_id = 0;        ///< globally unique frame/sample id
  std::uint32_t payload_bytes = 0;   ///< encoded size before RTP/UDP/IP headers
  net::SvcLayer layer = net::SvcLayer::kNone;
  bool is_audio = false;
  std::uint32_t media_ts = 0;        ///< RTP timestamp (clock-rate ticks)
};

/// Transport-wide sequence numbers are shared across all SSRCs of a
/// connection (that is what makes them "transport-wide"); one sequencer is
/// shared by the audio and video packetizers of a sender.
class TransportSequencer {
 public:
  std::uint16_t Next() { return next_++; }
  [[nodiscard]] std::uint16_t peek() const { return next_; }

 private:
  std::uint16_t next_ = 0;
};

class Packetizer {
 public:
  struct Config {
    std::uint32_t ssrc = 0;
    net::FlowId flow = 0;
    std::uint32_t mtu_payload_bytes = net::kRtpPayloadMtuBytes;
    std::uint32_t header_overhead_bytes = net::kRtpHeaderOverheadBytes;
  };

  Packetizer(Config config, net::PacketIdGenerator& ids, TransportSequencer& transport_seq)
      : config_(config), ids_(ids), transport_seq_(transport_seq) {}

  /// Splits `unit` into RTP packets. The last packet carries the RTP
  /// marker bit (end of frame). Every packet gets the frame id, SVC layer
  /// and its index within the frame so the receiver can detect
  /// completeness without guessing.
  [[nodiscard]] std::vector<net::Packet> Packetize(const MediaUnit& unit, sim::TimePoint now);

  [[nodiscard]] std::uint16_t next_rtp_seq() const { return next_seq_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  net::PacketIdGenerator& ids_;
  TransportSequencer& transport_seq_;
  std::uint16_t next_seq_ = 0;
};

}  // namespace athena::rtp
