// Umbrella header: everything a typical Athena user needs.
//
//   #include "athena.hpp"
//
// pulls in the session builder (Fig. 2 topology), the correlator and
// analyzers (the measurement framework itself), the congestion-controller
// family, the mitigation components, and the stats utilities. Individual
// headers remain includable on their own for finer-grained builds.
#pragma once

#include "app/adaptation.hpp"     // IWYU pragma: export
#include "app/controller.hpp"     // IWYU pragma: export
#include "app/receiver.hpp"       // IWYU pragma: export
#include "app/sender.hpp"         // IWYU pragma: export
#include "app/session.hpp"        // IWYU pragma: export
#include "app/sfu.hpp"            // IWYU pragma: export
#include "cc/gcc.hpp"             // IWYU pragma: export
#include "cc/l4s.hpp"             // IWYU pragma: export
#include "cc/nada.hpp"            // IWYU pragma: export
#include "cc/scream.hpp"          // IWYU pragma: export
#include "core/analyzer.hpp"      // IWYU pragma: export
#include "core/clock_sync.hpp"    // IWYU pragma: export
#include "core/correlator.hpp"    // IWYU pragma: export
#include "core/export.hpp"        // IWYU pragma: export
#include "core/overuse_audit.hpp" // IWYU pragma: export
#include "core/report.hpp"        // IWYU pragma: export
#include "core/wifi_correlator.hpp"  // IWYU pragma: export
#include "fault/chaos.hpp"        // IWYU pragma: export
#include "fault/fault.hpp"        // IWYU pragma: export
#include "media/emodel.hpp"       // IWYU pragma: export
#include "media/encoder.hpp"      // IWYU pragma: export
#include "media/jitter_buffer.hpp"  // IWYU pragma: export
#include "media/qoe.hpp"          // IWYU pragma: export
#include "net/trace_link.hpp"     // IWYU pragma: export
#include "obs/metrics.hpp"        // IWYU pragma: export
#include "obs/obs.hpp"            // IWYU pragma: export
#include "obs/trace.hpp"          // IWYU pragma: export
#include "net/wireless_links.hpp" // IWYU pragma: export
#include "rtp/nack.hpp"           // IWYU pragma: export
#include "mitigation/app_aware_policy.hpp"   // IWYU pragma: export
#include "mitigation/phy_informed.hpp"       // IWYU pragma: export
#include "mitigation/traffic_predictor.hpp"  // IWYU pragma: export
#include "ran/uplink.hpp"         // IWYU pragma: export
#include "ran/multi_ue.hpp"       // IWYU pragma: export
#include "sim/simulator.hpp"      // IWYU pragma: export
#include "stats/cdf.hpp"          // IWYU pragma: export
#include "stats/table.hpp"        // IWYU pragma: export
#include "world/engine.hpp"       // IWYU pragma: export
