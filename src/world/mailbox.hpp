// Cross-shard mailboxes.
//
// Entities (UE sessions and cells) never call each other: all
// interaction is a `WorldMsg` posted with an arrival time at least one
// lookahead in the future. Messages posted during window k are
// exchanged at the window-k barrier and delivered (as simulator events
// at their arrival time) in window k+1 or later.
//
// Determinism across shard layouts hinges on one rule: before delivery,
// each shard sorts its due inbound messages by the canonical
// (arrival, src, seq) order — `MsgOrder`. The physical route a message
// took (same-shard loopback vs. cross-shard exchange) can differ
// between layouts; the delivery schedule cannot.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "ran/multi_ue.hpp"
#include "sim/time.hpp"

namespace athena::world {

/// Entity ids: UEs are 0..U-1, cells are U..U+C-1.
using EntityId = std::uint32_t;

/// One cross-entity message. Move-only (handover radio state travels by
/// unique_ptr).
struct WorldMsg {
  enum class Kind : std::uint8_t {
    kUplink,        ///< session → cell: datagram enters the UE's RLC buffer
    kCoreDelivery,  ///< cell → session: decoded datagram reaches the core
    kDetach,        ///< session → serving cell: begin handover to `target_cell`
    kTransfer,      ///< old cell → new cell: the UE's radio state in flight
    kAttached,      ///< new cell → session: handover complete
  };

  Kind kind = Kind::kUplink;
  EntityId src = 0;
  EntityId dst = 0;
  /// Per-source monotonic sequence number — the tiebreak that makes the
  /// canonical order total.
  std::uint64_t seq = 0;
  sim::TimePoint arrival{};

  /// The UE the message concerns.
  std::uint32_t ue = 0;
  /// kDetach: destination cell of the handover.
  EntityId target_cell = 0;
  /// kUplink / kCoreDelivery payload.
  net::Packet pkt{};
  /// kTransfer payload.
  std::unique_ptr<ran::UeRadioState> radio;
};

/// Canonical delivery order: (arrival, src, seq). Total because `seq`
/// is monotonic per source.
struct MsgOrder {
  bool operator()(const WorldMsg& a, const WorldMsg& b) const {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }
};

/// Anything that can receive a WorldMsg. Delivery happens as a
/// simulator event on the entity's own shard at `msg.arrival`; the
/// reference is mutable so kTransfer handlers can steal the payload.
class Entity {
 public:
  virtual ~Entity() = default;
  virtual void OnMessage(WorldMsg& msg) = 0;
};

}  // namespace athena::world
