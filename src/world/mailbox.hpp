// Cross-shard mailboxes.
//
// Entities (UE sessions and cells) never call each other: all
// interaction is a `WorldMsg` posted with an arrival time at least one
// lookahead in the future. Messages posted during window k are
// exchanged at the window-k barrier and delivered (as simulator events
// at their arrival time) in window k+1 or later.
//
// Determinism across shard layouts hinges on one rule: before delivery,
// each shard sorts its due inbound messages by the canonical
// (arrival, src, seq) order — `MsgOrder`. The physical route a message
// took (same-shard loopback vs. cross-shard exchange) can differ
// between layouts; the delivery schedule cannot.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "ran/multi_ue.hpp"
#include "sim/time.hpp"

namespace athena::world {

/// Entity ids: UEs are 0..U-1, cells are U..U+C-1.
using EntityId = std::uint32_t;

/// One cross-entity message. Move-only (handover radio state travels by
/// unique_ptr).
struct WorldMsg {
  enum class Kind : std::uint8_t {
    kUplink,        ///< session → cell: datagram enters the UE's RLC buffer
    kCoreDelivery,  ///< cell → session: decoded datagram reaches the core
    kDetach,        ///< session → serving cell: begin handover to `target_cell`
    kTransfer,      ///< old cell → new cell: the UE's radio state in flight
    kAttached,      ///< new cell → session: handover complete
  };

  Kind kind = Kind::kUplink;
  EntityId src = 0;
  EntityId dst = 0;
  /// Per-source monotonic sequence number — the tiebreak that makes the
  /// canonical order total.
  std::uint64_t seq = 0;
  sim::TimePoint arrival{};

  /// The UE the message concerns.
  std::uint32_t ue = 0;
  /// kDetach: destination cell of the handover.
  EntityId target_cell = 0;
  /// kUplink / kCoreDelivery payload.
  net::Packet pkt{};
  /// kTransfer payload.
  std::unique_ptr<ran::UeRadioState> radio;
};

/// Canonical delivery order: (arrival, src, seq). Total because `seq`
/// is monotonic per source.
struct MsgOrder {
  bool operator()(const WorldMsg& a, const WorldMsg& b) const {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }
};

/// Anything that can receive a WorldMsg. Delivery happens as a
/// simulator event on the entity's own shard at `msg.arrival`; the
/// reference is mutable so kTransfer handlers can steal the payload.
class Entity {
 public:
  virtual ~Entity() = default;
  virtual void OnMessage(WorldMsg& msg) = 0;
};

/// A pending message reduced to its canonical identity words. World
/// snapshots store these instead of full messages: restore is
/// replay-based (the engine re-derives every payload from the seed), so
/// the record only has to *witness* the pending mail — kind, routing,
/// canonical order and a payload digest — byte-for-byte.
struct WorldMsgRecord {
  std::uint8_t kind = 0;
  EntityId src = 0;
  EntityId dst = 0;
  std::uint64_t seq = 0;
  std::int64_t arrival_us = 0;
  std::uint32_t ue = 0;
  EntityId target_cell = 0;
  std::uint64_t payload_digest = 0;

  bool operator==(const WorldMsgRecord&) const = default;
};

/// Canonical order over records: the same (arrival, src, seq) total
/// order MsgOrder imposes on live messages.
struct MsgRecordOrder {
  bool operator()(const WorldMsgRecord& a, const WorldMsgRecord& b) const {
    if (a.arrival_us != b.arrival_us) return a.arrival_us < b.arrival_us;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }
};

/// Reduces a live message to its record. The payload digest folds the
/// packet identity (kUplink/kCoreDelivery) or the carried radio-state
/// ledger (kTransfer) into one FNV-1a word.
[[nodiscard]] inline WorldMsgRecord MakeRecord(const WorldMsg& m) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(m.pkt.id);
  mix(m.pkt.flow);
  mix(static_cast<std::uint64_t>(m.pkt.kind));
  mix(m.pkt.size_bytes);
  mix(static_cast<std::uint64_t>(m.pkt.created_at.us()));
  if (m.radio != nullptr) {
    mix(m.radio->offered);
    mix(m.radio->delivered);
    mix(m.radio->lost);
    mix(m.radio->in_flight.size());
    mix(m.radio->queue.size());
    mix(m.radio->TotalBufferBytes());
    mix(m.radio->telemetry.size());
  }
  WorldMsgRecord r;
  r.kind = static_cast<std::uint8_t>(m.kind);
  r.src = m.src;
  r.dst = m.dst;
  r.seq = m.seq;
  r.arrival_us = m.arrival.us();
  r.ue = m.ue;
  r.target_cell = m.target_cell;
  r.payload_digest = h;
  return r;
}

}  // namespace athena::world
