// The sharded multi-cell world engine.
//
// Partitions a U-session, C-cell world across S shards, each with its
// own `sim::Simulator`, and advances them under a conservative
// (CMB-style) time-sync barrier:
//
//   lookahead L  = config.link_latency (the minimum cross-entity hop)
//   window k     = virtual time (W_{k-1}, W_k], W_k = k·L
//
// Because every cross-entity message travels ≥ L, a message posted in
// window k can only be due in window k+1 or later — so each shard can
// run a whole window without hearing from the others. Per window, each
// shard worker:
//
//   1. pulls due inbound messages (arrival ≤ W_k) from its pending set,
//      sorts them by the canonical (arrival, src, seq) order, and
//      schedules them as simulator events at their arrival times;
//   2. runs its simulator to W_k (entities post outbound messages into
//      the shard's per-destination outbox);
//   3. publishes its outbox into the global exchange  — barrier —
//   4. collects its inbound column from the exchange  — barrier —
//
// Determinism across layouts (the world digest is byte-identical at
// shards 1/2/8, threaded or sequential) rests on three facts: entities
// share no state, per-shard event queues break same-time ties FIFO by
// insertion order, and the canonical inbound sort erases any trace of
// which physical route a message took. The sequential mode runs the
// *same* window loop round-robin on one thread; it exists for clean
// busy-time measurement and as the determinism oracle.
//
// `BusyRecorder` captures per-shard per-window busy seconds, from which
// the result reports both measured wall time and the modeled critical
// path Σ_k max_s busy(s, k) — the wall time an S-core machine would see
// (bench_world uses this to demonstrate scaling honestly on any host).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/fleet/report.hpp"
#include "sim/barrier.hpp"
#include "world/cell.hpp"
#include "world/config.hpp"
#include "world/mailbox.hpp"
#include "world/ue_session.hpp"

namespace athena::world {

/// A shard worker died mid-run (deterministic crash injection via
/// WorldConfig::crash_shard). In threaded mode the surviving workers
/// keep the barrier protocol alive and the engine rethrows this after
/// join — the supervisor's cue to restore from the latest snapshot.
class ShardCrash : public std::runtime_error {
 public:
  ShardCrash(std::size_t shard, std::uint64_t window, const std::string& what)
      : std::runtime_error(what), shard_(shard), window_(window) {}

  [[nodiscard]] std::size_t shard() const { return shard_; }
  [[nodiscard]] std::uint64_t window() const { return window_; }

 private:
  std::size_t shard_ = 0;
  std::uint64_t window_ = 0;
};

struct WorldResult {
  /// FNV-1a over every session's and cell's deterministic state words,
  /// in entity-id order. Pure simulation state — byte-identical across
  /// shard counts and threading modes for a given (config, seed).
  std::uint64_t digest = 0;

  /// The population FleetReport (deterministic bytes via WriteJson).
  obs::fleet::FleetReport report;
  std::string fleet_json;

  // --- timing ---
  double wall_seconds = 0.0;           ///< measured, this host
  double busy_seconds = 0.0;           ///< Σ per-shard per-window busy
  double critical_path_seconds = 0.0;  ///< Σ_k max_s busy — modeled S-core wall
  std::size_t shards = 0;
  std::size_t windows = 0;
  bool threaded = false;

  // --- volume ---
  std::uint64_t events_executed = 0;    ///< across all shard simulators
  std::uint64_t messages_delivered = 0; ///< mailbox msgs delivered to entities
  std::uint64_t handovers = 0;          ///< completed UE migrations

  // --- conservation ledger (population totals) ---
  std::uint64_t offered = 0;    ///< packets entering RLC buffers
  std::uint64_t delivered = 0;  ///< packets fully decoded at a cell
  std::uint64_t lost = 0;       ///< HARQ-chain + handover drops
  std::uint64_t in_flight = 0;  ///< mid-transmission at end of run
  std::uint64_t in_transit_uplink = 0;    ///< mailbox msgs not yet at a cell
  std::uint64_t in_transit_delivery = 0;  ///< decoded msgs not yet at the core
  bool conservation_ok = false;
  /// Empty when conservation_ok; otherwise the first violated invariant.
  std::string conservation_error;

  // --- quarantine (populated when WorldConfig::quarantines is set) ---
  std::vector<std::size_t> quarantined_cells;
  std::uint64_t evacuated = 0;  ///< forced handovers completed off quarantined cells
  std::uint64_t stranded = 0;   ///< UEs left on a quarantined cell (no time to move)
};

class WorldEngine {
 public:
  explicit WorldEngine(WorldConfig config);
  ~WorldEngine();

  WorldEngine(const WorldEngine&) = delete;
  WorldEngine& operator=(const WorldEngine&) = delete;

  /// Runs the world once (one engine = one run).
  [[nodiscard]] WorldResult Run();

  [[nodiscard]] const WorldConfig& config() const { return config_; }

  /// Window-boundary observer, invoked as `hook(k)` after window k's
  /// collect barrier with every shard parked (worker 0 runs it in
  /// threaded mode, the driving thread in sequential mode). The hook may
  /// read the boundary introspection below; an exception it throws
  /// aborts the run exactly like a shard crash. Install before Run().
  void set_window_hook(std::function<void(std::uint64_t)> hook) {
    window_hook_ = std::move(hook);
  }

  // --- window-boundary introspection (hook context or post-run only) ---

  /// FNV-1a over every session's and cell's deterministic state words —
  /// the same digest Run() reports, computable at any barrier.
  [[nodiscard]] std::uint64_t Digest() const { return ComputeDigest(); }

  /// Every pending (posted, not yet delivered) mailbox message across
  /// all shards, reduced to records in the canonical (arrival, src, seq)
  /// order. Layout-invariant: the physical shard holding a message never
  /// shows through.
  [[nodiscard]] std::vector<WorldMsgRecord> PendingMailRecords() const;

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

 private:
  struct Shard;

  [[nodiscard]] Entity* EntityFor(EntityId id);
  void Build();
  void RunShardWindow(std::size_t s, std::uint64_t window, sim::TimePoint window_end);
  void SweepQuarantined(std::size_t s, sim::TimePoint window_end);
  void Publish(std::size_t s);
  void Collect(std::size_t s);
  void RunSequential(const sim::WindowSchedule& schedule, sim::BusyRecorder& busy);
  void RunThreaded(const sim::WindowSchedule& schedule, sim::BusyRecorder& busy);
  void CheckConservation(WorldResult& result);
  [[nodiscard]] std::uint64_t ComputeDigest() const;
  void BuildFleet(WorldResult& result);

  WorldConfig config_;
  std::size_t shard_count_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// exchange_[src][dst]: published outboxes awaiting collection.
  std::vector<std::vector<std::vector<WorldMsg>>> exchange_;
  std::vector<std::uint16_t> shard_of_;  ///< entity id → shard
  std::vector<std::unique_ptr<UeSession>> sessions_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::vector<EntityId> initial_cell_;  ///< per UE (fleet scenario key)
  std::function<void(std::uint64_t)> window_hook_;
  /// Per-cell quarantine activation time (µs); kNeverQuarantined = none.
  static constexpr std::int64_t kNeverQuarantined =
      std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> quarantine_at_us_;
  std::int64_t earliest_quarantine_us_ = kNeverQuarantined;
  std::size_t crash_shard_ = WorldConfig::kNoCrash;  ///< clamped to the layout
  bool ran_ = false;
};

}  // namespace athena::world
