#include "world/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/correlator.hpp"
#include "obs/fleet/aggregate.hpp"
#include "obs/fleet/slo.hpp"
#include "obs/fleet/summary.hpp"
#include "obs/pipeline/pipeline.hpp"
#include "obs/trace.hpp"
#include "sim/check.hpp"
#include "sim/random.hpp"
#include "sim/runner.hpp"

namespace athena::world {
namespace {

/// Seed sub-stream tags: the world seed fans out into disjoint per-UE
/// streams (session internals fork further from the per-UE seed).
constexpr std::uint64_t kChannelStream = 1'000'000;
constexpr std::uint64_t kHandoverStream = 2'000'000;

[[nodiscard]] double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

struct WorldEngine::Shard {
  std::unique_ptr<sim::Simulator> sim;
  /// Inbound messages not yet due (plus everything collected at the last
  /// barrier). Only touched by this shard's worker.
  std::vector<WorldMsg> pending;
  /// Due messages for the window in flight; a deque so addresses stay
  /// stable while delivery events hold pointers into it.
  std::deque<WorldMsg> delivery;
  /// Outbound messages per destination shard, filled by entity posts
  /// during the window, swapped into the exchange at publish time.
  std::vector<std::vector<WorldMsg>> outbox;
  std::uint64_t delivered_msgs = 0;
  std::uint64_t stranded = 0;  ///< UEs this shard marked unreachable (quarantine)
};

WorldEngine::WorldEngine(WorldConfig config) : config_(std::move(config)) {
  // Fail at construction, not first Run(): a config that cannot build a
  // world should never look like a valid engine.
  ATHENA_CHECK(config_.ues > 0, "world needs at least one UE");
  ATHENA_CHECK(config_.cells > 0, "world needs at least one cell");
  ATHENA_CHECK(config_.shards > 0, "world needs at least one shard");
  ATHENA_CHECK(config_.shards <= config_.cells,
               "shards > cells leaves empty shards; clamp before building");
  ATHENA_CHECK(config_.duration.count() > 0, "world duration must be positive");
  ATHENA_CHECK(config_.link_latency.count() > 0,
               "link_latency is the lookahead; it must be positive");
  ATHENA_CHECK(config_.link_latency <= config_.duration,
               "lookahead exceeds the run duration: not even one window fits");
  ATHENA_CHECK(config_.handover_latency.count() >= 0,
               "handover_latency cannot be negative");
  ATHENA_CHECK(config_.crash_shard == WorldConfig::kNoCrash || config_.crash_window >= 1,
               "crash_window is 1-based: the shard dies entering that window");
  for (const auto& q : config_.quarantines) {
    ATHENA_CHECK(q.cell < config_.cells, "quarantine names a cell outside the world");
  }
}
WorldEngine::~WorldEngine() = default;

Entity* WorldEngine::EntityFor(EntityId id) {
  const std::size_t ues = sessions_.size();
  if (id < ues) return sessions_[id].get();
  return cells_[id - ues].get();
}

void WorldEngine::Build() {
  const std::size_t ues = config_.ues;
  const std::size_t cells = config_.cells;
  shard_count_ = config_.shards;
  const std::size_t shard_count = shard_count_;

  // Crash points name a logical shard; clamp to the layout so the same
  // fault spec stays meaningful (and deterministic) at any shard count.
  if (config_.crash_shard != WorldConfig::kNoCrash) {
    crash_shard_ = config_.crash_shard % shard_count;
  }

  quarantine_at_us_.assign(cells, kNeverQuarantined);
  for (const auto& q : config_.quarantines) {
    quarantine_at_us_[q.cell] = std::min(quarantine_at_us_[q.cell], q.at.us());
    earliest_quarantine_us_ = std::min(earliest_quarantine_us_, q.at.us());
  }

  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->sim = std::make_unique<sim::Simulator>();
    shard->outbox.resize(shard_count);
    shards_.push_back(std::move(shard));
  }
  exchange_.resize(shard_count);
  for (auto& row : exchange_) row.resize(shard_count);

  // Layout: cell c → shard c mod S; UE u starts on cell u mod C and is
  // pinned to that cell's shard for the whole run (only its radio state
  // migrates on handover).
  shard_of_.resize(ues + cells);
  for (std::size_t c = 0; c < cells; ++c) {
    shard_of_[ues + c] = static_cast<std::uint16_t>(c % shard_count);
  }
  for (std::size_t u = 0; u < ues; ++u) shard_of_[u] = shard_of_[ues + (u % cells)];

  auto make_post = [this](std::size_t s) {
    return [this, s](WorldMsg&& msg) {
      Shard& shard = *shards_[s];
      ATHENA_CHECK(msg.arrival >= shard.sim->Now() + config_.link_latency,
                   "posted arrival violates the conservative lookahead");
      shard.outbox[shard_of_[msg.dst]].push_back(std::move(msg));
    };
  };

  cells_.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    const std::size_t s = c % shard_count;
    Cell::Context ctx;
    ctx.sim = shards_[s]->sim.get();
    ctx.id = static_cast<EntityId>(ues + c);
    ctx.post = make_post(s);
    ctx.lookahead = config_.link_latency;
    ctx.handover_latency = config_.handover_latency;
    cells_.push_back(MakeNrCell(std::move(ctx), config_.cell));
    if (config_.outage_cell == c) {
      cells_.back()->SetOutage(config_.outage_start, config_.outage_end);
    }
    if (quarantine_at_us_[c] != kNeverQuarantined) {
      // A quarantined cell is permanently dark from its activation time
      // (this overrides any chaos outage window on the same cell).
      cells_.back()->SetOutage(sim::TimePoint{sim::Duration{quarantine_at_us_[c]}},
                               sim::kEpoch + config_.duration + config_.link_latency);
    }
  }

  // A planned handover needs detach + transfer + attach round trips to
  // finish before the run ends (the conservation invariant requires
  // every UE to be attached somewhere at the final barrier).
  const std::int64_t handover_cost_us =
      4 * (config_.handover_latency.count() + config_.link_latency.count());
  const std::int64_t latest_handover_us = config_.duration.count() - handover_cost_us;

  sessions_.reserve(ues);
  initial_cell_.resize(ues);
  for (std::size_t u = 0; u < ues; ++u) {
    const std::size_t cell_index = u % cells;
    initial_cell_[u] = static_cast<EntityId>(cell_index);
    const std::size_t s = shard_of_[u];

    UeSession::Config sc;
    sc.ue = static_cast<std::uint32_t>(u);
    sc.initial_cell = static_cast<EntityId>(ues + cell_index);
    sc.seed = sim::DeriveSeed(config_.seed, u);
    sc.lookahead = config_.link_latency;
    sc.wan_delay = config_.wan_delay;
    sc.wan_jitter = config_.wan_jitter;
    sc.feedback_delay = config_.feedback_delay;
    sc.sender = config_.sender;
    sc.receiver = config_.receiver;
    sc.gcc = config_.gcc;

    if (config_.handover_every > 0 && cells > 1 && u % config_.handover_every == 0 &&
        latest_handover_us > 0) {
      // Handover time is seed-derived in the middle of the run, clamped
      // so the choreography completes well before the end.
      sim::Rng hr{sim::DeriveSeed(config_.seed, kHandoverStream + u)};
      const double frac = hr.Uniform(0.25, 0.6);
      const auto at_us = std::min(
          static_cast<std::int64_t>(frac * static_cast<double>(config_.duration.count())),
          latest_handover_us);
      sc.handovers.push_back(UeSession::HandoverPlan{
          sim::TimePoint{sim::Duration{at_us}},
          static_cast<EntityId>(ues + (cell_index + 1) % cells)});
    }

    sessions_.push_back(
        std::make_unique<UeSession>(*shards_[s]->sim, std::move(sc), make_post(s)));

    ran::UeRadioState radio;
    radio.channel =
        ran::ChannelModel{config_.channel, sim::Rng{sim::DeriveSeed(config_.seed, kChannelStream + u)}};
    cells_[cell_index]->AttachInitial(static_cast<std::uint32_t>(u), std::move(radio));
  }
}

void WorldEngine::RunShardWindow(std::size_t s, std::uint64_t window,
                                 sim::TimePoint window_end) {
  // Deterministic crash point: the shard dies the moment it enters the
  // configured window — before delivering any of that window's mail, so
  // windows 1..crash_window-1 are exactly what an uninterrupted run saw.
  if (s == crash_shard_ && window == config_.crash_window) {
    throw ShardCrash(s, window,
                     "injected crash: shard " + std::to_string(s) +
                         " died entering window " + std::to_string(window));
  }

  Shard& shard = *shards_[s];
  // All of last window's delivery events have fired; reclaim the slab.
  shard.delivery.clear();

  // Pull due inbound mail and schedule it in the canonical order. The
  // sort erases any trace of the physical route (same-shard loopback vs.
  // cross-shard exchange), which is what keeps the digest layout-stable.
  auto due = std::stable_partition(
      shard.pending.begin(), shard.pending.end(),
      [&](const WorldMsg& m) { return m.arrival > window_end; });
  std::sort(due, shard.pending.end(), MsgOrder{});
  for (auto it = due; it != shard.pending.end(); ++it) {
    shard.delivery.push_back(std::move(*it));
    WorldMsg* msg = &shard.delivery.back();
    Entity* entity = EntityFor(msg->dst);
    shard.sim->ScheduleAt(msg->arrival, [entity, msg] { entity->OnMessage(*msg); });
    ++shard.delivered_msgs;
  }
  shard.pending.erase(due, shard.pending.end());

  shard.sim->RunUntil(window_end);

  if (window_end.us() >= earliest_quarantine_us_) SweepQuarantined(s, window_end);
}

void WorldEngine::SweepQuarantined(std::size_t s, sim::TimePoint window_end) {
  // Evacuation sweep: at every boundary past a quarantine's activation,
  // each UE still served by (or just handed over into) a quarantined
  // cell schedules a forced handover to a surviving cell. Runs on the
  // shard's own worker over its own sessions in UE order — the decisions
  // depend only on layout-invariant session state, so the schedule (and
  // therefore the digest) is identical at every shard count.
  const std::size_t ues = sessions_.size();

  // A forced handover needs the full 4-message dance to finish before
  // the final barrier, or conservation would see mail in transit.
  const std::int64_t handover_cost_us =
      4 * (config_.handover_latency.count() + config_.link_latency.count());
  const bool time_left =
      window_end.us() + handover_cost_us + config_.link_latency.count() <=
      config_.duration.count();

  std::vector<EntityId> survivors;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    if (quarantine_at_us_[c] == kNeverQuarantined) {
      survivors.push_back(static_cast<EntityId>(ues + c));
    }
  }

  for (std::size_t u = 0; u < ues; ++u) {
    if (shard_of_[u] != s) continue;
    UeSession& session = *sessions_[u];
    if (session.in_handover() || session.evacuation_pending() || session.stranded()) {
      continue;
    }
    const std::size_t serving = session.serving_cell() - ues;
    if (window_end.us() < quarantine_at_us_[serving]) continue;
    if (!time_left || survivors.empty()) {
      // Unreachable: the UE cannot complete a handover before the run
      // ends (or nowhere is left to go). It stays attached — its queued
      // packets remain in_flight, so the ledger still balances.
      session.MarkStranded();
      ++shards_[s]->stranded;
      continue;
    }
    session.ScheduleEvacuation(survivors[u % survivors.size()], window_end);
  }
}

void WorldEngine::Publish(std::size_t s) {
  Shard& shard = *shards_[s];
  for (std::size_t d = 0; d < shard_count_; ++d) {
    if (shard.outbox[d].empty()) continue;
    if (exchange_[s][d].empty()) {
      exchange_[s][d].swap(shard.outbox[d]);
    } else {
      for (auto& m : shard.outbox[d]) exchange_[s][d].push_back(std::move(m));
      shard.outbox[d].clear();
    }
  }
}

void WorldEngine::Collect(std::size_t s) {
  Shard& shard = *shards_[s];
  for (std::size_t src = 0; src < shard_count_; ++src) {
    auto& inbox = exchange_[src][s];
    if (inbox.empty()) continue;
    for (auto& m : inbox) shard.pending.push_back(std::move(m));
    inbox.clear();
  }
}

void WorldEngine::RunSequential(const sim::WindowSchedule& schedule,
                                sim::BusyRecorder& busy) {
  std::optional<obs::ScopedTraceSink> scope;
  if (config_.pipeline != nullptr) {
    config_.pipeline->BindCurrentThread();
    scope.emplace(config_.pipeline->CurrentThreadSink());
  }
  for (std::uint64_t k = 1; k <= schedule.windows; ++k) {
    const sim::TimePoint window_end = schedule.WindowEnd(k);
    for (std::size_t s = 0; s < shard_count_; ++s) {
      const auto t0 = std::chrono::steady_clock::now();
      RunShardWindow(s, k, window_end);
      busy.Record(s, k, SecondsSince(t0));
    }
    for (std::size_t s = 0; s < shard_count_; ++s) Publish(s);
    for (std::size_t s = 0; s < shard_count_; ++s) Collect(s);
    if (window_hook_) window_hook_(k);
  }
  if (config_.pipeline != nullptr) {
    scope.reset();
    config_.pipeline->UnbindCurrentThread();
  }
}

void WorldEngine::RunThreaded(const sim::WindowSchedule& schedule,
                              sim::BusyRecorder& busy) {
  const std::size_t shard_count = shard_count_;
  sim::WindowBarrier barrier(static_cast<unsigned>(shard_count));
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<std::thread> workers;
  workers.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    workers.emplace_back([&, s] {
      // Per-shard telemetry ring: each worker binds its own collector
      // shard so trace ingest never contends across shards.
      std::optional<obs::ScopedTraceSink> scope;
      if (config_.pipeline != nullptr) {
        config_.pipeline->BindCurrentThread();
        scope.emplace(config_.pipeline->CurrentThreadSink());
      }
      for (std::uint64_t k = 1; k <= schedule.windows; ++k) {
        if (!failed.load(std::memory_order_relaxed)) {
          try {
            const auto t0 = std::chrono::steady_clock::now();
            RunShardWindow(s, k, schedule.WindowEnd(k));
            busy.Record(s, k, SecondsSince(t0));
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
          }
        }
        // Keep the barrier protocol alive even after a failure so no
        // worker deadlocks waiting for a peer that bailed.
        Publish(s);
        barrier.PublishDone();
        Collect(s);
        barrier.CollectDone();
        if (window_hook_) {
          // Phase C: every worker is parked past CollectDone, so worker
          // 0 observes all shards with full memory visibility (the
          // barriers order the accesses); Sync() releases the others.
          // Hook failures abort the run like a shard crash.
          if (s == 0 && !failed.load(std::memory_order_relaxed)) {
            try {
              window_hook_(k);
            } catch (...) {
              std::lock_guard<std::mutex> lock(error_mu);
              if (!first_error) first_error = std::current_exception();
              failed.store(true, std::memory_order_relaxed);
            }
          }
          barrier.Sync();
        }
      }
      if (config_.pipeline != nullptr) {
        scope.reset();
        config_.pipeline->UnbindCurrentThread();
      }
    });
  }
  for (auto& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

void WorldEngine::CheckConservation(WorldResult& result) {
  auto fail = [&](std::string msg) {
    if (result.conservation_error.empty()) result.conservation_error = std::move(msg);
  };

  // Whatever is still in transit at the final barrier is mail posted in
  // the last window — legal for data, never for handover choreography.
  std::unordered_map<std::uint32_t, std::uint64_t> transit_up;
  std::unordered_map<std::uint32_t, std::uint64_t> transit_down;
  for (const auto& shard : shards_) {
    for (const WorldMsg& m : shard->pending) {
      switch (m.kind) {
        case WorldMsg::Kind::kUplink:
          ++transit_up[m.ue];
          ++result.in_transit_uplink;
          break;
        case WorldMsg::Kind::kCoreDelivery:
          ++transit_down[m.ue];
          ++result.in_transit_delivery;
          break;
        default:
          fail("handover message for UE " + std::to_string(m.ue) +
               " still in transit at end of run");
      }
    }
  }

  for (std::size_t u = 0; u < sessions_.size(); ++u) {
    const UeSession& session = *sessions_[u];
    const ran::UeRadioState* radio = nullptr;
    std::size_t homes = 0;
    for (const auto& cell : cells_) {
      if (const ran::UeRadioState* st = cell->FindUe(static_cast<std::uint32_t>(u))) {
        radio = st;
        ++homes;
      }
    }
    if (homes != 1) {
      fail("UE " + std::to_string(u) + " attached to " + std::to_string(homes) +
           " cells (expected exactly 1)");
      continue;
    }
    if (session.in_handover()) fail("UE " + std::to_string(u) + " stuck in handover");
    if (session.buffered_pending() != 0) {
      fail("UE " + std::to_string(u) + " ended with buffered uplink datagrams");
    }

    const std::uint64_t in_flight = radio->in_flight.size();
    result.offered += radio->offered;
    result.delivered += radio->delivered;
    result.lost += radio->lost;
    result.in_flight += in_flight;
    result.handovers += session.handovers_completed();

    if (radio->offered != radio->delivered + radio->lost + in_flight) {
      // Every packet offered to the RLC buffer is delivered, lost, or
      // still undelivered (in_flight covers queued and mid-TB packets
      // alike — registration happens at enqueue). Nothing else.
      fail("UE " + std::to_string(u) + " radio ledger leak: offered=" +
           std::to_string(radio->offered) + " delivered=" + std::to_string(radio->delivered) +
           " lost=" + std::to_string(radio->lost) + " in_flight=" + std::to_string(in_flight));
    }
    const std::uint64_t tu = transit_up.count(static_cast<std::uint32_t>(u))
                                 ? transit_up[static_cast<std::uint32_t>(u)]
                                 : 0;
    if (session.uplink_posted() != radio->offered + tu) {
      fail("UE " + std::to_string(u) + " posted " + std::to_string(session.uplink_posted()) +
           " uplink datagrams but the radio saw " + std::to_string(radio->offered) + " (+" +
           std::to_string(tu) + " in transit)");
    }
    const std::uint64_t td = transit_down.count(static_cast<std::uint32_t>(u))
                                 ? transit_down[static_cast<std::uint32_t>(u)]
                                 : 0;
    if (radio->delivered != session.core_received() + td) {
      fail("UE " + std::to_string(u) + " decoded " + std::to_string(radio->delivered) +
           " packets but the core saw " + std::to_string(session.core_received()) + " (+" +
           std::to_string(td) + " in transit)");
    }
  }
  result.conservation_ok = result.conservation_error.empty();
}

std::vector<WorldMsgRecord> WorldEngine::PendingMailRecords() const {
  std::vector<WorldMsgRecord> records;
  for (const auto& shard : shards_) {
    records.reserve(records.size() + shard->pending.size());
    for (const WorldMsg& m : shard->pending) records.push_back(MakeRecord(m));
  }
  // Canonical order: which shard physically held a message is a layout
  // artifact and must not show through in a snapshot.
  std::sort(records.begin(), records.end(), MsgRecordOrder{});
  return records;
}

std::uint64_t WorldEngine::ComputeDigest() const {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(sessions_.size());
  mix(cells_.size());

  std::vector<std::uint64_t> words;
  for (std::size_t u = 0; u < sessions_.size(); ++u) {
    words.clear();
    sessions_[u]->AppendDigest(words);
    for (const auto& cell : cells_) {
      if (const ran::UeRadioState* radio = cell->FindUe(static_cast<std::uint32_t>(u))) {
        words.push_back(radio->offered);
        words.push_back(radio->delivered);
        words.push_back(radio->lost);
        words.push_back(radio->in_flight.size());
        words.push_back(radio->queue.size());
        words.push_back(radio->TotalBufferBytes());
        words.push_back(radio->telemetry.size());
        std::uint64_t slot_sum = 0;
        std::uint64_t used_sum = 0;
        for (const ran::TbRecord& tb : radio->telemetry) {
          slot_sum += static_cast<std::uint64_t>(tb.slot_time.us());
          used_sum += tb.used_bytes;
        }
        words.push_back(slot_sum);
        words.push_back(used_sum);
        break;
      }
    }
    for (std::uint64_t w : words) mix(w);
  }
  for (const auto& cell : cells_) {
    words.clear();
    cell->AppendDigest(words);
    for (std::uint64_t w : words) mix(w);
  }
  return h;
}

void WorldEngine::BuildFleet(WorldResult& result) {
  const std::size_t ues = sessions_.size();
  sim::ParallelRunner runner(config_.correlate_jobs == 0 ? 1 : config_.correlate_jobs);
  auto summaries = runner.Map<obs::fleet::SessionSummary>(ues, [&](std::size_t u) {
    std::vector<ran::TbRecord> telemetry;
    for (const auto& cell : cells_) {
      if (const ran::UeRadioState* radio = cell->FindUe(static_cast<std::uint32_t>(u))) {
        telemetry = radio->telemetry;
        break;
      }
    }
    const core::CorrelatorInput input =
        sessions_[u]->BuildCorrelatorInput(std::move(telemetry), config_.cell);
    const core::CrossLayerDataset dataset = core::Correlator::Correlate(input);
    obs::fleet::SummaryInputs inputs;
    inputs.dataset = &dataset;
    inputs.qoe = &sessions_[u]->qoe();
    inputs.scenario = config_.scenario + "/cell" + std::to_string(initial_cell_[u]);
    // Quarantine visibility: the blamed cell's population reports under
    // its own fleet group, so the report shows *which* UEs rode out a
    // quarantine (evacuated or stranded).
    if (quarantine_at_us_[initial_cell_[u]] != kNeverQuarantined) {
      inputs.scenario += "/quarantined";
    }
    inputs.seed = sim::DeriveSeed(config_.seed, u);
    return obs::fleet::SummarizeSession(inputs);
  });

  obs::fleet::FleetAggregator aggregator;
  obs::fleet::SloEngine slos;
  for (const auto& summary : summaries) {
    aggregator.Fold(summary);
    slos.Observe(summary);
  }
  result.report = obs::fleet::BuildReport(aggregator, slos);
  std::ostringstream os;
  obs::fleet::WriteJson(result.report, os);
  result.fleet_json = os.str();
}

WorldResult WorldEngine::Run() {
  ATHENA_CHECK(!ran_, "WorldEngine::Run is single-shot; build a fresh engine per run");
  ran_ = true;
  Build();

  // Start everything (pre-window, main thread): cells first so the slot
  // clocks exist, then sessions in UE order — deterministic insertion
  // order per shard at any layout.
  for (auto& cell : cells_) cell->Start();
  for (auto& session : sessions_) session->Start();

  const auto schedule = sim::WindowSchedule::Cover(
      sim::kEpoch, sim::kEpoch + config_.duration, config_.link_latency);
  sim::BusyRecorder busy(shard_count_, schedule.windows);

  WorldResult result;
  result.shards = shard_count_;
  result.windows = schedule.windows;
  result.threaded = config_.threaded && shard_count_ > 1;

  const auto wall0 = std::chrono::steady_clock::now();
  if (result.threaded) {
    RunThreaded(schedule, busy);
  } else {
    RunSequential(schedule, busy);
  }
  result.wall_seconds = SecondsSince(wall0);
  result.busy_seconds = busy.TotalSeconds();
  result.critical_path_seconds = busy.CriticalPathSeconds();

  for (auto& session : sessions_) session->Stop();
  for (auto& cell : cells_) cell->Stop();

  for (const auto& shard : shards_) {
    result.events_executed += shard->sim->events_executed();
    result.messages_delivered += shard->delivered_msgs;
    result.stranded += shard->stranded;
  }
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    if (quarantine_at_us_[c] != kNeverQuarantined) result.quarantined_cells.push_back(c);
  }
  for (const auto& session : sessions_) result.evacuated += session->forced_handovers();

  CheckConservation(result);
  result.digest = ComputeDigest();
  BuildFleet(result);
  return result;
}

}  // namespace athena::world
