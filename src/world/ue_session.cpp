#include "world/ue_session.hpp"

#include <string>
#include <utility>

#include "sim/check.hpp"
#include "sim/runner.hpp"

namespace athena::world {

UeSession::UeSession(sim::Simulator& sim, Config config, std::function<void(WorldMsg&&)> post)
    : sim_(sim),
      config_(std::move(config)),
      post_(std::move(post)),
      cap_sender_(sim, "ue" + std::to_string(config_.ue) + ".sender"),
      cap_core_(sim, "ue" + std::to_string(config_.ue) + ".core"),
      cap_receiver_(sim, "ue" + std::to_string(config_.ue) + ".receiver"),
      serving_cell_(config_.initial_cell) {
  // Per-component RNG sub-streams derived from the per-UE seed: the
  // session's behaviour is a pure function of (world seed, ue).
  sender_ = std::make_unique<app::VcaSender>(
      sim_, config_.sender, std::make_unique<app::GccController>(config_.gcc), ids_,
      sim::Rng{sim::DeriveSeed(config_.seed, 1)});
  sender_->set_qoe(&qoe_);
  receiver_ = std::make_unique<app::VcaReceiver>(sim_, config_.receiver, ids_, qoe_);

  wan_ = std::make_unique<net::FixedDelayLink>(
      sim_, net::FixedDelayLink::Config{config_.wan_delay, config_.wan_jitter, 0.0},
      sim::Rng{sim::DeriveSeed(config_.seed, 2)});
  feedback_ = std::make_unique<net::FixedDelayLink>(
      sim_,
      net::FixedDelayLink::Config{config_.feedback_delay, sim::Duration{0}, 0.0},
      sim::Rng{sim::DeriveSeed(config_.seed, 3)});

  // Uplink: sender → ① → (handover buffer |) mailbox to the serving cell.
  sender_->set_outbound(cap_sender_.AsHandler());
  cap_sender_.set_sink([this](const net::Packet& p) {
    if (in_handover_) {
      buffer_.push_back(p);
    } else {
      PostUplink(p);
    }
  });

  // Downlink tail: core ② → WAN → ④ → receiver.
  cap_core_.set_sink(wan_->AsHandler());
  wan_->set_sink(cap_receiver_.AsHandler());
  cap_receiver_.set_sink(receiver_->AsHandler());

  // Feedback (TWCC/NACK): receiver → fixed link → sender.
  receiver_->set_feedback_path(feedback_->AsHandler());
  feedback_->set_sink(sender_->FeedbackHandler());
}

void UeSession::Start() {
  sender_->Start();
  for (const HandoverPlan& plan : config_.handovers) {
    sim_.ScheduleAt(plan.at, [this, target = plan.target_cell] { BeginHandover(target); });
  }
}

void UeSession::Stop() { sender_->Stop(); }

void UeSession::PostUplink(const net::Packet& p) {
  WorldMsg msg;
  msg.kind = WorldMsg::Kind::kUplink;
  msg.src = static_cast<EntityId>(config_.ue);
  msg.dst = serving_cell_;
  msg.seq = next_seq_++;
  msg.arrival = sim_.Now() + config_.lookahead;
  msg.ue = config_.ue;
  msg.pkt = p;
  ++uplink_posted_;
  post_(std::move(msg));
}

void UeSession::ScheduleEvacuation(EntityId target, sim::TimePoint at) {
  if (evac_pending_ || stranded_) return;
  evac_pending_ = true;
  // One tick after the boundary: the event lands strictly inside the
  // next window, after any same-boundary slot work, identically at every
  // shard layout.
  sim_.ScheduleAt(at + sim::Duration{1}, [this, target] {
    if (in_handover_ || target == serving_cell_) {
      // A planned handover raced in (possibly *into* the quarantined
      // cell). Stand down; the engine's next boundary sweep re-checks.
      evac_pending_ = false;
      return;
    }
    BeginHandover(target);
  });
}

void UeSession::BeginHandover(EntityId target) {
  if (in_handover_ || target == serving_cell_) return;
  in_handover_ = true;
  WorldMsg msg;
  msg.kind = WorldMsg::Kind::kDetach;
  msg.src = static_cast<EntityId>(config_.ue);
  msg.dst = serving_cell_;
  msg.seq = next_seq_++;
  msg.arrival = sim_.Now() + config_.lookahead;
  msg.ue = config_.ue;
  msg.target_cell = target;
  post_(std::move(msg));
}

void UeSession::OnMessage(WorldMsg& msg) {
  switch (msg.kind) {
    case WorldMsg::Kind::kCoreDelivery:
      ++core_received_;
      cap_core_.OnPacket(msg.pkt);
      break;
    case WorldMsg::Kind::kAttached: {
      ATHENA_CHECK(in_handover_, "kAttached outside a handover");
      serving_cell_ = msg.src;
      in_handover_ = false;
      ++handovers_completed_;
      if (evac_pending_) {
        evac_pending_ = false;
        ++forced_handovers_;
      }
      // Flush datagrams buffered during the radio-state transfer, in
      // arrival order (the UE-side RRC stall releasing).
      std::vector<net::Packet> pending;
      pending.swap(buffer_);
      for (const net::Packet& p : pending) PostUplink(p);
      break;
    }
    default:
      ATHENA_CHECK(false, "unexpected message kind at session");
  }
}

core::CorrelatorInput UeSession::BuildCorrelatorInput(std::vector<ran::TbRecord> telemetry,
                                                      const ran::RanConfig& cell) const {
  core::CorrelatorInput input;
  input.sender = cap_sender_.records();
  input.core = cap_core_.records();
  input.receiver = cap_receiver_.records();
  input.telemetry = std::move(telemetry);
  // All session clocks are the common clock in the world (no drift
  // modeled); offsets stay zero.
  input.cell = cell;
  // The correlator replays slot eligibility from the ① capture, but a
  // world packet spends one mailbox hop before reaching the cell's RLC
  // buffer — fold that hop into the visible processing delay, and the
  // core hop into the gNB→core delay, so the replay matches reality.
  input.cell.ue_processing_delay = cell.ue_processing_delay + config_.lookahead;
  input.cell.gnb_to_core_delay = std::max(config_.lookahead, cell.gnb_to_core_delay);
  return input;
}

void UeSession::AppendDigest(std::vector<std::uint64_t>& out) const {
  out.push_back(uplink_posted_);
  out.push_back(core_received_);
  out.push_back(handovers_completed_);
  out.push_back(forced_handovers_);
  out.push_back(serving_cell_);
  out.push_back(static_cast<std::uint64_t>(in_handover_));
  out.push_back(static_cast<std::uint64_t>(evac_pending_));
  out.push_back(static_cast<std::uint64_t>(stranded_));
  out.push_back(buffer_.size());
  out.push_back(sender_->media_packets_sent());
  out.push_back(receiver_->packets_received());
  out.push_back(cap_sender_.count());
  out.push_back(cap_core_.count());
  out.push_back(cap_receiver_.count());
}

}  // namespace athena::world
