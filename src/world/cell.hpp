// The world's cell abstraction.
//
// A Cell is an Entity that owns a radio-access model for the UEs
// currently attached to it. The stock implementation (`MakeNrCell`)
// wraps `ran::MultiUeUplink` — the paper's 5G cell generalized to a
// contending population. EXTENDING.md describes how to add other cell
// types (Wi-Fi AP, satellite beam, …): implement this interface, keep
// the mailbox choreography, and the engine, digest, handover and fleet
// machinery work unchanged.
//
// Mailbox choreography a Cell must honour:
//   kUplink    → enqueue msg.pkt into msg.ue's radio buffer.
//   kDetach    → detach msg.ue, post kTransfer{radio} to msg.target_cell
//                with arrival now + max(lookahead, handover_latency).
//   kTransfer  → attach the carried radio state, post kAttached to the
//                UE's session (entity id == ue id) at now + lookahead.
//   decode     → post kCoreDelivery to the session at
//                now + max(lookahead, gNB→core delay).
// Every posted arrival must be ≥ now + ctx.lookahead — that is the
// engine's conservative-execution contract.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ran/config.hpp"
#include "ran/multi_ue.hpp"
#include "ran/types.hpp"
#include "sim/simulator.hpp"
#include "world/mailbox.hpp"

namespace athena::world {

class Cell : public Entity {
 public:
  /// Engine-provided wiring. `post` routes a WorldMsg to its dst shard;
  /// it is only safe to call from this cell's own shard (i.e. from
  /// simulator events and OnMessage).
  struct Context {
    sim::Simulator* sim = nullptr;
    EntityId id = 0;  ///< this cell's entity id (U + cell index)
    std::function<void(WorldMsg&&)> post;
    sim::Duration lookahead{std::chrono::milliseconds{1}};
    sim::Duration handover_latency{std::chrono::milliseconds{20}};
  };

  virtual void Start() = 0;
  virtual void Stop() = 0;

  /// Pre-run attach (engine setup, before the first window).
  virtual void AttachInitial(std::uint32_t ue, ran::UeRadioState state) = 0;

  /// Cell-wide outage window (chaos).
  virtual void SetOutage(sim::TimePoint start, sim::TimePoint end) = 0;

  // --- end-of-run inspection ---
  [[nodiscard]] virtual std::vector<std::uint32_t> AttachedUes() const = 0;
  [[nodiscard]] virtual const ran::UeRadioState* FindUe(std::uint32_t ue) const = 0;
  [[nodiscard]] virtual const ran::RanCounters& counters() const = 0;
  [[nodiscard]] virtual std::uint64_t slots_run() const = 0;

  /// Appends this cell's deterministic state words to the world digest
  /// (integers only — the digest must be bit-stable across platforms).
  virtual void AppendDigest(std::vector<std::uint64_t>& out) const = 0;
};

/// The stock 5G cell: `ran::MultiUeUplink` with the shared BSR grant
/// policy, slot clock on the epoch-aligned UL grid.
[[nodiscard]] std::unique_ptr<Cell> MakeNrCell(Cell::Context ctx, ran::RanConfig config);

}  // namespace athena::world
