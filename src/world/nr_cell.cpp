#include <utility>

#include "sim/check.hpp"
#include "world/cell.hpp"

namespace athena::world {
namespace {

class NrCell final : public Cell {
 public:
  NrCell(Context ctx, ran::RanConfig config)
      : ctx_(std::move(ctx)),
        uplink_(*ctx_.sim, config, /*cell_tag=*/ctx_.id,
                /*policy=*/nullptr) {
    uplink_.set_deliver_sink(
        [this](std::uint32_t ue, const net::Packet& pkt, sim::TimePoint decoded_at) {
          // gNB → core: at least one lookahead (the core-delivery hop is
          // a mailbox edge, so it must respect the conservative bound).
          const sim::Duration hop =
              std::max(ctx_.lookahead, uplink_.config().gnb_to_core_delay);
          WorldMsg msg;
          msg.kind = WorldMsg::Kind::kCoreDelivery;
          msg.src = ctx_.id;
          msg.dst = static_cast<EntityId>(ue);
          msg.seq = next_seq_++;
          msg.arrival = decoded_at + hop;
          msg.ue = ue;
          msg.pkt = pkt;
          ctx_.post(std::move(msg));
        });
  }

  void Start() override { uplink_.Start(); }
  void Stop() override { uplink_.Stop(); }

  void AttachInitial(std::uint32_t ue, ran::UeRadioState state) override {
    uplink_.AttachUe(ue, std::move(state));
  }

  void SetOutage(sim::TimePoint start, sim::TimePoint end) override {
    uplink_.SetOutage(start, end);
  }

  void OnMessage(WorldMsg& msg) override {
    switch (msg.kind) {
      case WorldMsg::Kind::kUplink:
        // A detach can race an in-flight uplink datagram (posted before
        // the session learned of the handover); RLC-UM drops it. The
        // session's conservation ledger accounts for this via the
        // cell-side `offered` counter, so count it explicitly.
        if (uplink_.HasUe(msg.ue)) {
          uplink_.SendFromUe(msg.ue, msg.pkt);
        } else {
          ++stray_uplink_;
        }
        break;
      case WorldMsg::Kind::kDetach: {
        ATHENA_CHECK(uplink_.HasUe(msg.ue), "kDetach for UE not attached here");
        auto state = std::make_unique<ran::UeRadioState>(uplink_.DetachUe(msg.ue));
        WorldMsg transfer;
        transfer.kind = WorldMsg::Kind::kTransfer;
        transfer.src = ctx_.id;
        transfer.dst = msg.target_cell;
        transfer.seq = next_seq_++;
        transfer.arrival =
            ctx_.sim->Now() + std::max(ctx_.lookahead, ctx_.handover_latency);
        transfer.ue = msg.ue;
        transfer.radio = std::move(state);
        ctx_.post(std::move(transfer));
        break;
      }
      case WorldMsg::Kind::kTransfer: {
        ATHENA_CHECK(msg.radio != nullptr, "kTransfer without radio state");
        uplink_.AttachUe(msg.ue, std::move(*msg.radio));
        msg.radio.reset();
        WorldMsg attached;
        attached.kind = WorldMsg::Kind::kAttached;
        attached.src = ctx_.id;
        attached.dst = static_cast<EntityId>(msg.ue);
        attached.seq = next_seq_++;
        attached.arrival = ctx_.sim->Now() + ctx_.lookahead;
        attached.ue = msg.ue;
        ctx_.post(std::move(attached));
        break;
      }
      default:
        ATHENA_CHECK(false, "unexpected message kind at cell");
    }
  }

  std::vector<std::uint32_t> AttachedUes() const override { return uplink_.AttachedUes(); }
  const ran::UeRadioState* FindUe(std::uint32_t ue) const override {
    return uplink_.FindUe(ue);
  }
  const ran::RanCounters& counters() const override { return uplink_.counters(); }
  std::uint64_t slots_run() const override { return uplink_.slots_run(); }

  void AppendDigest(std::vector<std::uint64_t>& out) const override {
    const ran::RanCounters& c = uplink_.counters();
    out.push_back(c.tb_new);
    out.push_back(c.tb_rtx);
    out.push_back(c.tb_failed);
    out.push_back(c.tb_dropped_chains);
    out.push_back(c.granted_bytes);
    out.push_back(c.used_bytes);
    out.push_back(c.packets_delivered);
    out.push_back(c.packets_lost);
    out.push_back(c.bsr_sent);
    out.push_back(uplink_.slots_run());
    out.push_back(stray_uplink_);
    for (std::uint32_t ue : uplink_.AttachedUes()) out.push_back(ue);
  }

 private:
  Context ctx_;
  ran::MultiUeUplink uplink_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t stray_uplink_ = 0;
};

}  // namespace

std::unique_ptr<Cell> MakeNrCell(Cell::Context ctx, ran::RanConfig config) {
  return std::make_unique<NrCell>(std::move(ctx), std::move(config));
}

}  // namespace athena::world
