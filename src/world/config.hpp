// Configuration for the sharded multi-cell world.
//
// A world is U concurrent video-conferencing sessions (one per UE)
// sharing C cells, partitioned across S shards. Each shard owns one
// `sim::EventQueue` and advances under a conservative time-sync barrier
// (engine.hpp); `link_latency` is the lookahead — every cross-entity
// message travels at least this long, which is what makes windowed
// parallel execution safe.
//
// Defaults are sized for livability: the stock single-UE cell
// (30 Mbps ⇒ 9 375 B/slot) would starve a 64-UE population, so the
// world cell defaults to 100 Mbps shared uplink.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "app/receiver.hpp"
#include "app/sender.hpp"
#include "cc/gcc.hpp"
#include "ran/channel.hpp"
#include "ran/config.hpp"
#include "sim/time.hpp"

namespace athena::obs::pipeline {
class TelemetryPipeline;
}  // namespace athena::obs::pipeline

namespace athena::world {

struct WorldConfig {
  std::uint64_t seed = 42;

  // --- population & layout ---
  std::size_t ues = 64;
  std::size_t cells = 4;
  /// Shard count (clamped to `cells`; each cell lives on shard c mod S,
  /// each session on its initial cell's shard).
  std::size_t shards = 1;
  /// true: one worker thread per shard, barrier-synchronized.
  /// false: same window loop, round-robin on the calling thread —
  /// bit-identical results (the determinism tests prove it) and clean
  /// per-shard busy-time measurement.
  bool threaded = true;

  // --- time ---
  sim::Duration duration{std::chrono::seconds{2}};
  /// Minimum cross-entity (UE↔cell, cell→core) latency; doubles as the
  /// conservative lookahead. Must be > 0.
  sim::Duration link_latency{std::chrono::milliseconds{1}};

  // --- radio ---
  ran::RanConfig cell = WorldCell();
  ran::ChannelModel::Config channel{};

  // --- mobility ---
  /// Every k-th UE (ue mod k == 0) performs one mid-run handover to the
  /// next cell; 0 disables mobility.
  std::size_t handover_every = 0;
  /// Radio-state transfer time between cells (detach → attach).
  sim::Duration handover_latency{std::chrono::milliseconds{20}};

  // --- wired tail (per-session, downstream of the core) ---
  sim::Duration wan_delay{std::chrono::milliseconds{10}};
  sim::Duration wan_jitter{std::chrono::microseconds{300}};
  /// Receiver → sender feedback path (TWCC / NACK), modeled as a fixed
  /// link outside the contended uplink.
  sim::Duration feedback_delay{std::chrono::milliseconds{22}};

  // --- application ---
  app::VcaSender::Config sender{};
  app::VcaReceiver::Config receiver = app::VcaReceiver::DefaultConfig();
  cc::GoogCc::Config gcc{};

  // --- chaos (world-scale fault injection) ---
  /// Cell index to black out for [outage_start, outage_end); kNoOutage
  /// disables.
  static constexpr std::size_t kNoOutage = std::numeric_limits<std::size_t>::max();
  std::size_t outage_cell = kNoOutage;
  sim::TimePoint outage_start{};
  sim::TimePoint outage_end{};

  // --- observability ---
  /// Scenario prefix for fleet grouping; sessions report as
  /// "<scenario>/cell<initial-cell>".
  std::string scenario = "world";
  /// Optional: per-shard telemetry ring ingest. Each shard worker binds
  /// its own collector shard for the duration of the run.
  obs::pipeline::TelemetryPipeline* pipeline = nullptr;
  /// Worker threads for the end-of-run correlate/summarize fan-out
  /// (deterministic at any value; results are folded in UE order).
  unsigned correlate_jobs = 1;

  /// The world's default shared cell: 100 Mbps uplink so a default
  /// population is capacity-constrained but not starved.
  [[nodiscard]] static ran::RanConfig WorldCell() {
    ran::RanConfig c;
    c.cell_ul_capacity_bps = 100e6;
    return c;
  }
};

}  // namespace athena::world
