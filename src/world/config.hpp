// Configuration for the sharded multi-cell world.
//
// A world is U concurrent video-conferencing sessions (one per UE)
// sharing C cells, partitioned across S shards. Each shard owns one
// `sim::EventQueue` and advances under a conservative time-sync barrier
// (engine.hpp); `link_latency` is the lookahead — every cross-entity
// message travels at least this long, which is what makes windowed
// parallel execution safe.
//
// Defaults are sized for livability: the stock single-UE cell
// (30 Mbps ⇒ 9 375 B/slot) would starve a 64-UE population, so the
// world cell defaults to 100 Mbps shared uplink.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "app/receiver.hpp"
#include "app/sender.hpp"
#include "cc/gcc.hpp"
#include "ran/channel.hpp"
#include "ran/config.hpp"
#include "sim/time.hpp"

namespace athena::obs::pipeline {
class TelemetryPipeline;
}  // namespace athena::obs::pipeline

namespace athena::world {

struct WorldConfig {
  std::uint64_t seed = 42;

  // --- population & layout ---
  std::size_t ues = 64;
  std::size_t cells = 4;
  /// Shard count; must be in [1, cells] — the engine rejects layouts
  /// with empty shards (each cell lives on shard c mod S, each session
  /// on its initial cell's shard).
  std::size_t shards = 1;
  /// true: one worker thread per shard, barrier-synchronized.
  /// false: same window loop, round-robin on the calling thread —
  /// bit-identical results (the determinism tests prove it) and clean
  /// per-shard busy-time measurement.
  bool threaded = true;

  // --- time ---
  sim::Duration duration{std::chrono::seconds{2}};
  /// Minimum cross-entity (UE↔cell, cell→core) latency; doubles as the
  /// conservative lookahead. Must be > 0.
  sim::Duration link_latency{std::chrono::milliseconds{1}};

  // --- radio ---
  ran::RanConfig cell = WorldCell();
  ran::ChannelModel::Config channel{};

  // --- mobility ---
  /// Every k-th UE (ue mod k == 0) performs one mid-run handover to the
  /// next cell; 0 disables mobility.
  std::size_t handover_every = 0;
  /// Radio-state transfer time between cells (detach → attach).
  sim::Duration handover_latency{std::chrono::milliseconds{20}};

  // --- wired tail (per-session, downstream of the core) ---
  sim::Duration wan_delay{std::chrono::milliseconds{10}};
  sim::Duration wan_jitter{std::chrono::microseconds{300}};
  /// Receiver → sender feedback path (TWCC / NACK), modeled as a fixed
  /// link outside the contended uplink.
  sim::Duration feedback_delay{std::chrono::milliseconds{22}};

  // --- application ---
  app::VcaSender::Config sender{};
  app::VcaReceiver::Config receiver = app::VcaReceiver::DefaultConfig();
  cc::GoogCc::Config gcc{};

  // --- chaos (world-scale fault injection) ---
  /// Cell index to black out for [outage_start, outage_end); kNoOutage
  /// disables.
  static constexpr std::size_t kNoOutage = std::numeric_limits<std::size_t>::max();
  std::size_t outage_cell = kNoOutage;
  sim::TimePoint outage_start{};
  sim::TimePoint outage_end{};

  // --- resilience (world-scale fault tolerance) ---
  /// Deterministic shard-crash point: the worker for shard
  /// `crash_shard mod S` throws ShardCrash the moment it begins window
  /// `crash_window` (windows 1..crash_window-1 complete normally; the
  /// barrier protocol detects the dead shard without deadlocking its
  /// peers). kNoCrash disables. Driven by resilience::WorldSupervisor,
  /// which disarms the point once its kill budget is consumed.
  static constexpr std::size_t kNoCrash = std::numeric_limits<std::size_t>::max();
  std::size_t crash_shard = kNoCrash;
  std::uint64_t crash_window = 0;

  /// A quarantined cell: from `at` onward the cell stops transmitting
  /// (permanent outage) and the engine evacuates its population at every
  /// window boundary — each attached UE hands over to a surviving cell
  /// through the normal 4-message dance (in-flight HARQ chains are
  /// booked as `lost`, exactly like any handover). UEs without enough
  /// remaining run time to complete the dance are left attached and
  /// counted as stranded — their queued packets stay `in_flight`, so the
  /// conservation ledger balances either way.
  struct QuarantineSpec {
    std::size_t cell = 0;
    sim::TimePoint at{};
  };
  std::vector<QuarantineSpec> quarantines;

  // --- observability ---
  /// Scenario prefix for fleet grouping; sessions report as
  /// "<scenario>/cell<initial-cell>".
  std::string scenario = "world";
  /// Optional: per-shard telemetry ring ingest. Each shard worker binds
  /// its own collector shard for the duration of the run.
  obs::pipeline::TelemetryPipeline* pipeline = nullptr;
  /// Worker threads for the end-of-run correlate/summarize fan-out
  /// (deterministic at any value; results are folded in UE order).
  unsigned correlate_jobs = 1;

  /// The world's default shared cell: 100 Mbps uplink so a default
  /// population is capacity-constrained but not starved.
  [[nodiscard]] static ran::RanConfig WorldCell() {
    ran::RanConfig c;
    c.cell_ul_capacity_bps = 100e6;
    return c;
  }
};

}  // namespace athena::world
