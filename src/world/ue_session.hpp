// One UE's end-to-end conferencing session inside the world.
//
// Mirrors the single-session harness (app/session.hpp) but the uplink
// is a *shared* cell reached through the mailbox: sender → capture ① →
// kUplink to the serving cell; decoded packets come back as
// kCoreDelivery → capture ② → WAN link → capture ④ → receiver. The
// feedback path (TWCC/NACK) is a session-local fixed link — the paper's
// downlink is not the bottleneck and is not contended here.
//
// Mobility: the session owns its handover schedule. At each planned
// time it stops posting uplink traffic (buffering datagrams locally —
// the UE-side RRC stall), posts kDetach to the serving cell, and on
// kAttached from the new cell flushes the buffer and resumes. The
// radio-side state travels cell-to-cell without touching the session.
//
// Determinism: everything here runs on the session's home shard with
// RNG streams derived from the per-UE seed, so behaviour is a pure
// function of (world seed, ue) regardless of shard layout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "app/controller.hpp"
#include "app/receiver.hpp"
#include "app/sender.hpp"
#include "cc/gcc.hpp"
#include "core/correlator.hpp"
#include "media/qoe.hpp"
#include "net/capture.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "ran/config.hpp"
#include "sim/simulator.hpp"
#include "world/mailbox.hpp"

namespace athena::world {

class UeSession final : public Entity {
 public:
  struct HandoverPlan {
    sim::TimePoint at{};
    EntityId target_cell = 0;
  };

  struct Config {
    std::uint32_t ue = 0;
    EntityId initial_cell = 0;
    std::uint64_t seed = 0;  ///< per-UE seed (already DeriveSeed'd)
    sim::Duration lookahead{std::chrono::milliseconds{1}};
    sim::Duration wan_delay{std::chrono::milliseconds{10}};
    sim::Duration wan_jitter{std::chrono::microseconds{300}};
    sim::Duration feedback_delay{std::chrono::milliseconds{22}};
    app::VcaSender::Config sender{};
    app::VcaReceiver::Config receiver{};
    cc::GoogCc::Config gcc{};
    std::vector<HandoverPlan> handovers;
  };

  UeSession(sim::Simulator& sim, Config config, std::function<void(WorldMsg&&)> post);

  void Start();
  void Stop();
  void OnMessage(WorldMsg& msg) override;

  /// Quarantine evacuation (engine-driven, at a window boundary `at`):
  /// schedules a forced handover to `target` just after `at`. If a
  /// planned handover races in first the attempt stands down and the
  /// engine's next boundary sweep retries. Idempotent while pending.
  void ScheduleEvacuation(EntityId target, sim::TimePoint at);

  /// Marks this UE as unable to leave its quarantined cell before the
  /// run ends (the engine books it stranded; its packets stay in_flight).
  void MarkStranded() { stranded_ = true; }

  /// Builds the correlator input for this session: captures ①②④ plus
  /// the UE's (cross-cell) telemetry stream. `cell` is adjusted for the
  /// mailbox hops so the correlator's slot-eligibility replay matches
  /// what the shared cell actually did.
  [[nodiscard]] core::CorrelatorInput BuildCorrelatorInput(
      std::vector<ran::TbRecord> telemetry, const ran::RanConfig& cell) const;

  [[nodiscard]] const media::QoeCollector& qoe() const { return qoe_; }
  [[nodiscard]] EntityId serving_cell() const { return serving_cell_; }
  [[nodiscard]] std::uint64_t uplink_posted() const { return uplink_posted_; }
  [[nodiscard]] std::uint64_t core_received() const { return core_received_; }
  [[nodiscard]] std::uint64_t handovers_completed() const { return handovers_completed_; }
  [[nodiscard]] std::size_t buffered_pending() const { return buffer_.size(); }
  [[nodiscard]] bool in_handover() const { return in_handover_; }
  [[nodiscard]] bool evacuation_pending() const { return evac_pending_; }
  [[nodiscard]] bool stranded() const { return stranded_; }
  [[nodiscard]] std::uint64_t forced_handovers() const { return forced_handovers_; }
  [[nodiscard]] std::uint64_t media_packets_sent() const {
    return sender_->media_packets_sent();
  }
  [[nodiscard]] std::uint64_t packets_received() const {
    return receiver_->packets_received();
  }

  /// Appends this session's deterministic state words to the world digest.
  void AppendDigest(std::vector<std::uint64_t>& out) const;

 private:
  void PostUplink(const net::Packet& p);
  void BeginHandover(EntityId target);

  sim::Simulator& sim_;
  Config config_;
  std::function<void(WorldMsg&&)> post_;

  net::PacketIdGenerator ids_;
  media::QoeCollector qoe_;
  net::CapturePoint cap_sender_;    // ① UE egress (before the cell)
  net::CapturePoint cap_core_;      // ② mobile-core ingress
  net::CapturePoint cap_receiver_;  // ④ receiver ingress
  std::unique_ptr<net::FixedDelayLink> wan_;       // core → receiver
  std::unique_ptr<net::FixedDelayLink> feedback_;  // receiver → sender
  std::unique_ptr<app::VcaSender> sender_;
  std::unique_ptr<app::VcaReceiver> receiver_;

  EntityId serving_cell_ = 0;
  bool in_handover_ = false;
  bool evac_pending_ = false;  ///< a forced (quarantine) handover is underway
  bool stranded_ = false;      ///< left on a quarantined cell (no time to move)
  std::vector<net::Packet> buffer_;  ///< uplink datagrams held during handover
  std::uint64_t next_seq_ = 0;
  std::uint64_t uplink_posted_ = 0;
  std::uint64_t core_received_ = 0;
  std::uint64_t handovers_completed_ = 0;
  std::uint64_t forced_handovers_ = 0;
};

}  // namespace athena::world
