#include "fault/world_chaos.hpp"

#include <utility>

namespace athena::fault {
namespace {

world::WorldConfig BaseWorld(const WorldChaosConfig& config) {
  world::WorldConfig wc;
  wc.seed = config.seed;
  wc.ues = config.ues;
  wc.cells = config.cells;
  wc.shards = config.shards;
  wc.threaded = config.threaded;
  wc.duration = config.duration;
  wc.handover_every = config.handover_every;
  wc.scenario = "world-chaos";
  return wc;
}

world::WorldResult RunOnce(world::WorldConfig config) {
  world::WorldEngine engine(std::move(config));
  return engine.Run();
}

}  // namespace

WorldChaosOutcome RunWorldChaos(const WorldChaosConfig& config) {
  WorldChaosOutcome outcome;
  auto violate = [&outcome](std::string msg) {
    outcome.violations.push_back(std::move(msg));
  };

  outcome.clean = RunOnce(BaseWorld(config));

  world::WorldConfig faulted_config = BaseWorld(config);
  faulted_config.outage_cell = config.outage_cell;
  faulted_config.outage_start = sim::TimePoint{sim::Duration{static_cast<std::int64_t>(
      config.outage_start_frac * static_cast<double>(config.duration.count()))}};
  faulted_config.outage_end = sim::TimePoint{config.duration};
  outcome.faulted = RunOnce(faulted_config);

  // --- hard invariants ---
  if (!outcome.clean.conservation_ok) {
    violate("clean world violated conservation: " + outcome.clean.conservation_error);
  }
  if (!outcome.faulted.conservation_ok) {
    violate("faulted world violated conservation: " + outcome.faulted.conservation_error);
  }

  // Determinism under fault: the impaired run is as reproducible as the
  // clean one.
  const world::WorldResult repeat = RunOnce(faulted_config);
  if (repeat.digest != outcome.faulted.digest) {
    violate("faulted world digest not reproducible across same-seed runs");
  }
  if (repeat.fleet_json != outcome.faulted.fleet_json) {
    violate("faulted world FleetReport not byte-identical across same-seed runs");
  }

  // --- degradation contract ---
  if (outcome.faulted.delivered >= outcome.clean.delivered) {
    violate("cell outage did not reduce population delivery (" +
            std::to_string(outcome.faulted.delivered) + " >= " +
            std::to_string(outcome.clean.delivered) + ")");
  }
  const std::string faulted_group =
      "world-chaos/cell" + std::to_string(config.outage_cell);
  if (outcome.faulted.report.scenarios.count(faulted_group) == 0) {
    violate("faulted cell's population group missing from the FleetReport: " +
            faulted_group);
  }

  outcome.invariants_ok = outcome.violations.empty();
  return outcome;
}

}  // namespace athena::fault
