#include "fault/world_chaos.hpp"

#include <utility>

#include "sim/barrier.hpp"

namespace athena::fault {
namespace {

world::WorldConfig BaseWorld(const WorldChaosConfig& config) {
  world::WorldConfig wc;
  wc.seed = config.seed;
  wc.ues = config.ues;
  wc.cells = config.cells;
  wc.shards = config.shards;
  wc.threaded = config.threaded;
  wc.duration = config.duration;
  wc.handover_every = config.handover_every;
  wc.scenario = "world-chaos";
  return wc;
}

world::WorldResult RunOnce(world::WorldConfig config) {
  world::WorldEngine engine(std::move(config));
  return engine.Run();
}

}  // namespace

WorldChaosOutcome RunWorldChaos(const WorldChaosConfig& config) {
  WorldChaosOutcome outcome;
  auto violate = [&outcome](std::string msg) {
    outcome.violations.push_back(std::move(msg));
  };

  outcome.clean = RunOnce(BaseWorld(config));

  world::WorldConfig faulted_config = BaseWorld(config);
  faulted_config.outage_cell = config.outage_cell;
  faulted_config.outage_start = sim::TimePoint{sim::Duration{static_cast<std::int64_t>(
      config.outage_start_frac * static_cast<double>(config.duration.count()))}};
  faulted_config.outage_end = sim::TimePoint{config.duration};
  outcome.faulted = RunOnce(faulted_config);

  // --- hard invariants ---
  if (!outcome.clean.conservation_ok) {
    violate("clean world violated conservation: " + outcome.clean.conservation_error);
  }
  if (!outcome.faulted.conservation_ok) {
    violate("faulted world violated conservation: " + outcome.faulted.conservation_error);
  }

  // Determinism under fault: the impaired run is as reproducible as the
  // clean one.
  const world::WorldResult repeat = RunOnce(faulted_config);
  if (repeat.digest != outcome.faulted.digest) {
    violate("faulted world digest not reproducible across same-seed runs");
  }
  if (repeat.fleet_json != outcome.faulted.fleet_json) {
    violate("faulted world FleetReport not byte-identical across same-seed runs");
  }

  // --- degradation contract ---
  if (outcome.faulted.delivered >= outcome.clean.delivered) {
    violate("cell outage did not reduce population delivery (" +
            std::to_string(outcome.faulted.delivered) + " >= " +
            std::to_string(outcome.clean.delivered) + ")");
  }
  const std::string faulted_group =
      "world-chaos/cell" + std::to_string(config.outage_cell);
  if (outcome.faulted.report.scenarios.count(faulted_group) == 0) {
    violate("faulted cell's population group missing from the FleetReport: " +
            faulted_group);
  }

  outcome.invariants_ok = outcome.violations.empty();
  return outcome;
}

namespace {

resilience::WorldFaultSpec CrashSpec(const WorldChaosConfig& config, int max_kills) {
  resilience::WorldFaultSpec faults;
  faults.crash_shard = config.crash_shard;
  faults.crash_window = config.crash_window;
  faults.max_kills = max_kills;
  return faults;
}

resilience::WorldSupervisorOptions SupervisionOptions(const WorldChaosConfig& config,
                                                      int cell_restart_budget) {
  resilience::WorldSupervisorOptions options;
  options.checkpoint_every_windows = config.checkpoint_every;
  options.max_restarts = 4;
  options.cell_restart_budget = cell_restart_budget;
  return options;
}

}  // namespace

WorldSupervisionOutcome RunShardCrashRestore(const WorldChaosConfig& config) {
  WorldSupervisionOutcome outcome;
  auto violate = [&outcome](std::string msg) {
    outcome.violations.push_back(std::move(msg));
  };

  outcome.clean = RunOnce(BaseWorld(config));

  // One kill: the supervisor restores from the latest snapshot, replays
  // through the (now disarmed) crash window, and finishes the run.
  resilience::WorldSupervisor supervisor(BaseWorld(config),
                                         SupervisionOptions(config, 1 << 20));
  outcome.supervised = supervisor.Run(CrashSpec(config, /*max_kills=*/1));

  if (!outcome.supervised.completed) {
    violate("supervised world did not complete: " + outcome.supervised.last_error);
  }
  if (outcome.supervised.crashes < 1) violate("crash injection never fired");
  if (outcome.supervised.restarts < 1) violate("supervisor never restarted");
  if (outcome.supervised.checkpoints_taken < 1) violate("no world snapshot was taken");
  if (!outcome.supervised.result.conservation_ok) {
    violate("recovered world violated conservation: " +
            outcome.supervised.result.conservation_error);
  }

  // The recovery contract: crash + restore must be invisible in the
  // final state — digest and FleetReport byte-identical to a run that
  // never crashed.
  if (outcome.supervised.result.digest != outcome.clean.digest) {
    violate("recovered world digest differs from the uninterrupted run");
  }
  if (outcome.supervised.result.fleet_json != outcome.clean.fleet_json) {
    violate("recovered world FleetReport not byte-identical to the uninterrupted run");
  }

  // Cross-layout probe: the same kill/restore at 1 sequential shard must
  // land on the same digest (snapshots are layout-invariant).
  world::WorldConfig narrow = BaseWorld(config);
  narrow.shards = 1;
  narrow.threaded = false;
  resilience::WorldSupervisor narrow_supervisor(narrow,
                                                SupervisionOptions(config, 1 << 20));
  const resilience::WorldSupervisedOutcome narrow_run =
      narrow_supervisor.Run(CrashSpec(config, /*max_kills=*/1));
  if (!narrow_run.completed) {
    violate("1-shard sequential recovery did not complete: " + narrow_run.last_error);
  } else if (narrow_run.result.digest != outcome.clean.digest) {
    violate("1-shard sequential recovery digest differs from the uninterrupted run");
  }

  outcome.invariants_ok = outcome.violations.empty();
  return outcome;
}

WorldSupervisionOutcome RunCellQuarantine(const WorldChaosConfig& config) {
  WorldSupervisionOutcome outcome;
  auto violate = [&outcome](std::string msg) {
    outcome.violations.push_back(std::move(msg));
  };

  outcome.clean = RunOnce(BaseWorld(config));

  // Default the crash (and thus the quarantine) to a window with less
  // run time left than one 4-message handover, so the blamed cell's UEs
  // strand and the delivery loss is deterministic — an early quarantine
  // lets the evacuated UEs drain their backlog on a surviving cell and
  // the end-state totals can converge with the clean run.
  WorldChaosConfig local = config;
  if (local.crash_window == 0) {
    const world::WorldConfig base = BaseWorld(config);
    const auto schedule = sim::WindowSchedule::Cover(
        sim::kEpoch, sim::kEpoch + base.duration, base.link_latency);
    local.crash_window =
        schedule.windows > 60 ? schedule.windows - 40 : schedule.windows / 2 + 1;
  }

  // Budget 1 with kills to spare: the second crash blamed on the same
  // cell exceeds the budget and triggers quarantine; the third attempt
  // runs with the cell dark.
  const auto run_supervised = [&local] {
    resilience::WorldSupervisor supervisor(BaseWorld(local),
                                           SupervisionOptions(local, /*budget=*/1));
    return supervisor.Run(CrashSpec(local, /*max_kills=*/8));
  };
  outcome.supervised = run_supervised();

  if (!outcome.supervised.completed) {
    violate("quarantine run did not complete: " + outcome.supervised.last_error);
  }
  if (outcome.supervised.quarantined_cells.empty() ||
      outcome.supervised.result.quarantined_cells.empty()) {
    violate("restart budget exhausted but no cell was quarantined");
  }
  if (!outcome.supervised.result.conservation_ok) {
    violate("quarantined world violated conservation: " +
            outcome.supervised.result.conservation_error);
  }
  if (outcome.supervised.result.evacuated + outcome.supervised.result.stranded == 0) {
    violate("quarantined cell's population was neither evacuated nor stranded");
  }

  // Degradation contract: a dark cell must cost delivery, never mint
  // packets, and its population group must be visible to operators.
  if (outcome.supervised.result.delivered >= outcome.clean.delivered) {
    violate("cell quarantine did not reduce population delivery (" +
            std::to_string(outcome.supervised.result.delivered) + " >= " +
            std::to_string(outcome.clean.delivered) + ")");
  }
  if (outcome.supervised.result.lost < outcome.clean.lost) {
    violate("quarantined world lost fewer packets than the clean one (" +
            std::to_string(outcome.supervised.result.lost) + " < " +
            std::to_string(outcome.clean.lost) + ")");
  }
  if (!outcome.supervised.result.quarantined_cells.empty()) {
    const std::string group =
        "world-chaos/cell" +
        std::to_string(outcome.supervised.result.quarantined_cells.front()) +
        "/quarantined";
    if (outcome.supervised.result.report.scenarios.count(group) == 0) {
      violate("quarantined population group missing from the FleetReport: " + group);
    }
  }

  // Determinism probe: the whole supervised trajectory — crashes,
  // restores, quarantine, evacuation — is a pure function of (config,
  // seed).
  const resilience::WorldSupervisedOutcome repeat = run_supervised();
  if (repeat.result.digest != outcome.supervised.result.digest) {
    violate("quarantined world digest not reproducible across same-seed runs");
  }
  if (repeat.result.fleet_json != outcome.supervised.result.fleet_json) {
    violate("quarantined world FleetReport not byte-identical across same-seed runs");
  }

  outcome.invariants_ok = outcome.violations.empty();
  return outcome;
}

}  // namespace athena::fault
