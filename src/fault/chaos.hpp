// The chaos harness: named fault scenarios, the invariants every
// impaired run must uphold, and a deterministic scenario × seed matrix
// runner.
//
// A chaos run is a full Session driven to completion, its correlator
// input impaired by a FaultInjector, correlated, and replayed through
// the live detector bank. The harness then checks the *degradation
// contract*, not just survival: a lossy scenario must produce explicit
// degraded-mode signals (stream health, gap counters, the telemetry_gap
// anomaly), and the clean baseline must produce none. Every run is a
// pure function of (scenario, seed), so the matrix is reproducible under
// sim::ParallelRunner with any job count — the per-run InputDigest is
// the cross-job identity check bench/run_chaos_matrix.sh relies on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "obs/fleet/summary.hpp"
#include "sim/time.hpp"

namespace athena::fault {

/// What the degradation contract requires of a scenario's runs. All
/// false = the strict clean contract: zero faults, zero degradation,
/// zero telemetry_gap anomalies.
struct ChaosExpectation {
  /// CorrelationHealth::degraded() must be true on every run.
  bool degraded = false;
  /// The live telemetry_gap detector must emit at least one anomaly.
  bool telemetry_gap_anomaly = false;
  /// The telemetry stream itself must be flagged (gap windows counted or
  /// repairs performed) — stricter than `degraded`, which any stream or
  /// the coverage check can satisfy.
  bool telemetry_flagged = false;
  /// The fault is below the pipeline's detection floor by design (e.g. a
  /// small clock drift): only the hard invariants apply; degradation may
  /// or may not be reported.
  bool tolerated = false;
  /// Supervised scenarios: the run must be killed at least once, restored
  /// from a checkpoint, and finish with final/report digests byte-identical
  /// to an uninterrupted run of the same plan.
  bool restore_identical = false;
  /// Overload scenarios: the governor must shed (loudly), the bounded
  /// input must fit its byte budget, the live overload detector must
  /// fire, and correlation of the surviving records must still succeed.
  bool bounded_memory = false;
  /// Under --mitigate, the controller's guardrails must visibly engage:
  /// the decision ledger must show at least one block or revert (the
  /// telemetry feeding the control plane is lying or vanishing, so
  /// acting blindly on it would be the failure). Ignored by the plain
  /// (un-mitigated) contract.
  bool mitigation_guarded = false;
};

struct ChaosScenario {
  std::string name;
  std::string description;
  FaultPlan plan;
  ChaosExpectation expect;

  /// Session shape. Short calls keep the full matrix in the seconds
  /// range; cross-traffic exercises the detectors under contention.
  sim::Duration duration{std::chrono::seconds{2}};
  double cross_mbps = 0.0;

  /// Run under the resilience Supervisor (crash injection + restore path)
  /// instead of the plain session loop. When `plan.process` sets no kill
  /// point, a seed-derived virtual-time kill is used, so every seed in
  /// the matrix kills at a different point.
  bool supervised = false;
  /// Overload-governor budget applied to the (impaired) correlator input;
  /// default = unbounded.
  resilience::MemoryBudget budget{};
};

/// The built-in scenario catalog (≥ 8 scenarios spanning every fault
/// model). Names are stable CLI/script identifiers.
[[nodiscard]] std::vector<ChaosScenario> BuiltinScenarios();

/// Finds a scenario by name; null when unknown.
[[nodiscard]] const ChaosScenario* FindScenario(const std::vector<ChaosScenario>& scenarios,
                                                std::string_view name);

/// One run's verdict: hard invariants, contract checks and the evidence
/// they were judged on.
struct ChaosOutcome {
  std::string scenario;
  std::uint64_t seed = 0;

  // --- hard invariants (must hold for every scenario) ---
  bool survived = false;       ///< session + correlation completed, no throw
  bool time_monotone = false;  ///< virtual time reached the configured end
  bool queues_bounded = false; ///< event queue drained / detector windows bounded

  // --- degradation contract ---
  /// Degradation was reported where the scenario demands it, and the
  /// clean baseline stayed pristine.
  bool contract_met = false;
  /// Faults were injected but no degraded-mode signal surfaced anywhere
  /// (the failure mode the contract exists to prevent on lossy plans).
  bool silently_degraded = false;

  // --- evidence ---
  std::uint64_t digest = 0;            ///< impaired-input InputDigest
  std::uint64_t faults_injected = 0;
  bool health_degraded = false;        ///< CorrelationHealth::degraded()
  std::uint64_t telemetry_gaps = 0;    ///< confirmed gap windows
  std::uint64_t telemetry_repairs = 0; ///< dup/ooo repairs on the telemetry stream
  std::uint64_t uncovered_packets = 0;
  std::uint64_t unmatched_tb_bytes = 0;  ///< phantom TB payload (corruption signal)
  double mean_match_confidence = 1.0;
  std::uint64_t anomalies_total = 0;       ///< all detectors, impaired replay
  std::uint64_t telemetry_gap_anomalies = 0;
  std::uint64_t packets_correlated = 0;
  std::uint64_t events_executed = 0;

  // --- resilience evidence (supervised / budgeted scenarios) ---
  int kills = 0;                      ///< injected crashes observed
  int restores = 0;                   ///< restore attempts performed
  bool digest_match = false;          ///< restored digests == uninterrupted run's
  std::uint64_t shed_total = 0;       ///< overload-governor ledger, all tiers
  std::uint64_t shed_capped = 0;      ///< hard-capped data records
  std::size_t bounded_bytes = 0;      ///< input bytes after BoundInput
  std::uint64_t overload_anomalies = 0;

  std::string failure;  ///< first violated check, empty when ok()

  /// Fleet digest of this run (delay decomposition, QoE, detector
  /// verdicts); only populated when the run was asked to summarize.
  obs::fleet::SessionSummary summary;

  [[nodiscard]] bool ok() const {
    return survived && time_monotone && queues_bounded && contract_met &&
           !silently_degraded;
  }
};

/// Runs one scenario under one seed: session → impair → correlate →
/// detector replay → invariant checks. Never throws; a crashed run
/// returns survived == false. With `summarize`, the outcome also carries
/// the fleet SessionSummary (supervised scenarios re-run the same plan
/// uninterrupted to extract it — the underlying session is identical).
[[nodiscard]] ChaosOutcome RunChaosScenario(const ChaosScenario& scenario,
                                            std::uint64_t seed,
                                            bool summarize = false);

struct ChaosMatrixResult {
  /// Scenario-major, seed-minor — index order, identical for any job count.
  std::vector<ChaosOutcome> outcomes;

  [[nodiscard]] bool all_ok() const {
    for (const auto& o : outcomes) {
      if (!o.ok()) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t failures() const {
    std::size_t n = 0;
    for (const auto& o : outcomes) n += o.ok() ? 0 : 1;
    return n;
  }
};

/// Runs every scenario under every derived seed (run (s, i) gets
/// sim::DeriveSeed(base_seed, i)) on `jobs` workers. `summarize` attaches
/// a fleet SessionSummary to every outcome (results stay in index order,
/// so downstream aggregation is byte-identical at any job count).
[[nodiscard]] ChaosMatrixResult RunChaosMatrix(const std::vector<ChaosScenario>& scenarios,
                                               std::uint64_t base_seed, std::size_t seeds,
                                               unsigned jobs, bool summarize = false);

/// Machine-readable matrix report (BENCH_chaos.json schema).
void WriteChaosJson(std::ostream& os, const ChaosMatrixResult& result,
                    std::uint64_t base_seed, std::size_t seeds, unsigned jobs);

/// Human-readable one-line-per-run table.
void RenderChaosTable(std::ostream& os, const ChaosMatrixResult& result);

}  // namespace athena::fault
