#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/runner.hpp"

namespace athena::fault {

const char* ToString(Stream stream) {
  switch (stream) {
    case Stream::kTelemetry: return "telemetry";
    case Stream::kSenderCapture: return "sender_capture";
    case Stream::kCoreCapture: return "core_capture";
    case Stream::kReceiverCapture: return "receiver_capture";
    case Stream::kPackets: return "packets";
  }
  return "?";
}

void FaultStats::PublishMetrics() const {
  if (!obs::metrics_enabled()) return;
  for (std::size_t i = 0; i < kStreamCount; ++i) {
    const PerStream& s = streams[i];
    if (s.seen == 0 && s.faults() == 0) continue;
    const std::string prefix = std::string("fault.") + ToString(static_cast<Stream>(i));
    obs::SetGauge(prefix + ".seen", static_cast<double>(s.seen));
    obs::SetGauge(prefix + ".dropped",
                  static_cast<double>(s.dropped + s.outage_dropped + s.truncated));
    obs::SetGauge(prefix + ".duplicated", static_cast<double>(s.duplicated));
    obs::SetGauge(prefix + ".flooded", static_cast<double>(s.flooded));
    obs::SetGauge(prefix + ".reordered", static_cast<double>(s.reordered));
    obs::SetGauge(prefix + ".delayed", static_cast<double>(s.delayed));
    obs::SetGauge(prefix + ".corrupted", static_cast<double>(s.corrupted));
    obs::SetGauge(prefix + ".clock_stepped", static_cast<double>(s.clock_stepped));
  }
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(plan), seed_(seed) {}

namespace {

/// One record held back by the bounded reorder buffer: re-emitted once
/// `countdown` later records have passed it.
template <typename Record>
struct Held {
  Record record;
  std::int64_t countdown = 0;
};

}  // namespace

template <typename Record, typename TsOf, typename SetTs, typename Corrupt>
void FaultInjector::ApplyImpl(Stream stream, std::vector<Record>& records, TsOf ts_of,
                              SetTs set_ts, Corrupt corrupt) {
  FaultStats::PerStream& st = stats_.For(stream);
  st.seen += records.size();
  const FaultSpec& spec = plan_.For(stream);
  if (!spec.active() || records.empty()) return;

  // One independent sub-stream per (seed, stream): transforming stream A
  // never shifts stream B's draws, whatever order Apply is called in.
  sim::Rng rng{sim::DeriveSeed(seed_, static_cast<std::uint64_t>(stream))};

  // Clock drift is relative to the stream's first observation; truncation
  // cuts the tail of the stream's observed time span.
  sim::TimePoint first_ts = ts_of(records.front());
  sim::TimePoint last_ts = first_ts;
  for (const Record& r : records) {
    first_ts = std::min(first_ts, ts_of(r));
    last_ts = std::max(last_ts, ts_of(r));
  }
  const bool truncating = spec.truncate_after_fraction < 1.0;
  const sim::TimePoint truncate_at =
      first_ts + sim::Duration{static_cast<std::int64_t>(
                     static_cast<double>((last_ts - first_ts).count()) *
                     std::max(0.0, spec.truncate_after_fraction))};

  std::vector<Record> out;
  out.reserve(records.size());
  std::deque<Held<Record>> held;

  auto emit = [&](Record&& r) {
    out.push_back(std::move(r));
    // A passing record ages every held one; expired records re-enter here.
    for (auto it = held.begin(); it != held.end();) {
      if (--it->countdown <= 0) {
        out.push_back(std::move(it->record));
        it = held.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (Record& r : records) {
    const sim::TimePoint ts = ts_of(r);

    // Window faults first — they model the collector being absent, so no
    // other fault applies to a record that was never collected.
    if (spec.outage_end > spec.outage_begin && ts >= spec.outage_begin &&
        ts < spec.outage_end) {
      ++st.outage_dropped;
      continue;
    }
    if (truncating && ts > truncate_at) {
      ++st.truncated;
      continue;
    }
    if (spec.drop > 0.0 && rng.Bernoulli(spec.drop)) {
      ++st.dropped;
      continue;
    }

    // Clock faults move the local timestamp only; ground truth stays put.
    sim::TimePoint new_ts = ts;
    if (spec.clock_drift_ppm != 0.0) {
      new_ts += sim::Duration{static_cast<std::int64_t>(
          std::llround(static_cast<double>((ts - first_ts).count()) *
                       spec.clock_drift_ppm * 1e-6))};
    }
    if (spec.clock_step.count() != 0 && ts >= spec.clock_step_at) {
      new_ts += spec.clock_step;
      ++st.clock_stepped;
    }
    if (spec.delay > 0.0 && rng.Bernoulli(spec.delay)) {
      new_ts += rng.UniformDuration(spec.delay_min, spec.delay_max);
      ++st.delayed;
    }
    if (new_ts != ts) set_ts(r, new_ts);

    if (spec.corrupt > 0.0 && rng.Bernoulli(spec.corrupt)) {
      corrupt(r, rng);
      ++st.corrupted;
    }

    const bool dup = spec.duplicate > 0.0 && rng.Bernoulli(spec.duplicate);
    if (dup) {
      ++st.duplicated;
      emit(Record{r});
    }
    if (spec.flood_factor > 1.0) {
      // Expected flood_factor total copies: emit the integer part of the
      // surplus always, the fractional part probabilistically. Each copy
      // gets a small timestamp jitter so it is a *near*-duplicate the
      // correlator's exact-dedup keeps — offered load really grows.
      const double extra = spec.flood_factor - 1.0;
      auto copies = static_cast<std::int64_t>(extra);
      const double frac = extra - static_cast<double>(copies);
      if (frac > 0.0 && rng.Bernoulli(frac)) ++copies;
      for (std::int64_t c = 0; c < copies; ++c) {
        ++st.flooded;
        Record copy{r};
        set_ts(copy, ts_of(copy) + rng.UniformDuration(sim::Duration{1}, sim::Duration{50}));
        emit(Record{copy});
      }
    }
    if (spec.reorder > 0.0 && rng.Bernoulli(spec.reorder)) {
      ++st.reordered;
      held.push_back(Held<Record>{
          std::move(r),
          rng.UniformInt(1, static_cast<std::int64_t>(std::max<std::size_t>(
                                1, spec.reorder_depth)))});
      continue;
    }
    emit(std::move(r));
  }
  // Stream end: whatever is still held back surfaces now (bounded by
  // reorder_depth, so nothing is retained indefinitely).
  for (auto& h : held) out.push_back(std::move(h.record));

  records.swap(out);
}

void FaultInjector::Apply(Stream stream, std::vector<ran::TbRecord>& records) {
  ApplyImpl(
      stream, records, [](const ran::TbRecord& r) { return r.slot_time; },
      [](ran::TbRecord& r, sim::TimePoint ts) { r.slot_time = ts; },
      [](ran::TbRecord& r, sim::Rng& rng) {
        // Scramble one field into a *wrong* but consumable value.
        switch (rng.UniformInt(0, 3)) {
          case 0:
            r.used_bytes = static_cast<std::uint32_t>(rng.UniformInt(0, r.tbs_bytes));
            break;
          case 1:
            r.harq_round = static_cast<std::uint8_t>(r.harq_round +
                                                     rng.UniformInt(1, 3));
            break;
          case 2: r.crc_ok = !r.crc_ok; break;
          default:
            r.tbs_bytes = static_cast<std::uint32_t>(rng.UniformInt(0, 4000));
            r.used_bytes = std::min(r.used_bytes, r.tbs_bytes);
            break;
        }
      });
}

void FaultInjector::Apply(Stream stream, std::vector<net::CaptureRecord>& records) {
  ApplyImpl(
      stream, records, [](const net::CaptureRecord& r) { return r.local_ts; },
      [](net::CaptureRecord& r, sim::TimePoint ts) { r.local_ts = ts; },
      [](net::CaptureRecord& r, sim::Rng& rng) {
        switch (rng.UniformInt(0, 2)) {
          case 0:
            r.size_bytes = static_cast<std::uint32_t>(rng.UniformInt(1, 3000));
            break;
          case 1:
            r.kind = net::PacketKind::kGeneric;
            r.rtp.reset();
            break;
          default:
            // A mangled id breaks the L3 joins for this record only.
            r.packet_id ^= 0x8000'0000'0000'0000ULL;
            break;
        }
      });
}

net::PacketHandler FaultInjector::Wrap(sim::Simulator& sim, net::PacketHandler next) {
  struct WrapState {
    sim::Simulator& sim;
    FaultSpec spec;
    sim::Rng rng;
    FaultStats::PerStream* st;
    net::PacketHandler next;
    std::deque<Held<net::Packet>> held;
  };
  auto state = std::make_shared<WrapState>(WrapState{
      sim, plan_.For(Stream::kPackets),
      sim::Rng{sim::DeriveSeed(seed_, static_cast<std::uint64_t>(Stream::kPackets))},
      &stats_.For(Stream::kPackets), std::move(next), {}});

  return [state](const net::Packet& p) {
    WrapState& s = *state;
    ++s.st->seen;
    const sim::TimePoint now = s.sim.Now();
    const FaultSpec& spec = s.spec;

    auto deliver = [&](const net::Packet& pkt) {
      s.next(pkt);
      for (auto it = s.held.begin(); it != s.held.end();) {
        if (--it->countdown <= 0) {
          const net::Packet released = std::move(it->record);
          it = s.held.erase(it);
          s.next(released);
        } else {
          ++it;
        }
      }
    };

    if (spec.outage_end > spec.outage_begin && now >= spec.outage_begin &&
        now < spec.outage_end) {
      ++s.st->outage_dropped;
      return;
    }
    if (spec.drop > 0.0 && s.rng.Bernoulli(spec.drop)) {
      ++s.st->dropped;
      return;
    }
    if (spec.delay > 0.0 && s.rng.Bernoulli(spec.delay)) {
      ++s.st->delayed;
      const sim::Duration d = s.rng.UniformDuration(spec.delay_min, spec.delay_max);
      net::Packet copy = p;
      s.sim.ScheduleAfter(d, [state, copy = std::move(copy)] { state->next(copy); });
      return;
    }
    if (spec.duplicate > 0.0 && s.rng.Bernoulli(spec.duplicate)) {
      ++s.st->duplicated;
      deliver(p);
    }
    if (spec.reorder > 0.0 && s.rng.Bernoulli(spec.reorder)) {
      ++s.st->reordered;
      s.held.push_back(Held<net::Packet>{
          p, s.rng.UniformInt(1, static_cast<std::int64_t>(std::max<std::size_t>(
                                     1, spec.reorder_depth)))});
      return;
    }
    deliver(p);
  };
}

// ---------------------------------------------------------------------------
// InputDigest — FNV-1a over every field the correlator consumes.
// ---------------------------------------------------------------------------

void InputDigest::Mix(std::uint64_t v) {
  // FNV-1a, one byte at a time (byte-order independent across platforms).
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (i * 8)) & 0xffu;
    hash_ *= 0x100000001b3ULL;
  }
}

void InputDigest::Mix(const std::vector<ran::TbRecord>& records) {
  Mix(records.size());
  for (const auto& r : records) {
    Mix(r.tb_id);
    Mix(r.chain_id);
    Mix(static_cast<std::uint64_t>(r.slot_time.us()));
    Mix(static_cast<std::uint64_t>(r.grant));
    Mix(r.tbs_bytes);
    Mix(r.used_bytes);
    Mix(r.harq_round);
    Mix(r.crc_ok ? 1u : 0u);
  }
}

void InputDigest::Mix(const std::vector<net::CaptureRecord>& records) {
  Mix(records.size());
  for (const auto& r : records) {
    Mix(r.packet_id);
    Mix(static_cast<std::uint64_t>(r.local_ts.us()));
    Mix(static_cast<std::uint64_t>(r.kind));
    Mix(r.size_bytes);
    Mix(r.flow);
    Mix(r.rtp.has_value() ? r.rtp->frame_id + 1 : 0u);
  }
}

}  // namespace athena::fault
