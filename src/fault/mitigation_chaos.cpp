#include "fault/mitigation_chaos.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <ostream>
#include <utility>

#include "app/session.hpp"
#include "core/correlator.hpp"
#include "media/qoe.hpp"
#include "mitigation/control/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/random.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"

namespace athena::fault {
namespace {

using namespace std::chrono_literals;

MitigationQoe ExtractQoe(const media::QoeCollector& qoe) {
  MitigationQoe out;
  out.ssim_mean = qoe.Ssim().Mean();
  out.frames_rendered = qoe.video_frames_rendered();
  out.late_fraction = static_cast<double>(qoe.late_frames()) /
                      static_cast<double>(std::max<std::uint64_t>(1, out.frames_rendered));
  out.audio_loss = qoe.AudioLossFraction();
  out.audio_mos = qoe.AudioMos();
  return out;
}

app::SessionConfig BaseConfig(const ChaosScenario& scenario, std::uint64_t seed) {
  app::SessionConfig config;
  config.seed = seed;
  if (scenario.cross_mbps > 0.0) {
    config.cross_traffic = net::CapacityTrace{scenario.cross_mbps * 1e6};
    config.cross_burstiness = 0.35;
  }
  return config;
}

/// Builds the live feed interposer from the scenario's offline telemetry
/// fault spec: the same drop/corrupt/outage/clock faults the offline
/// injector applies to the recorded stream, replayed record-by-record
/// against the control plane's view. Deterministic: one Rng seeded from
/// (seed, stream) and a single-threaded record order.
mitigation::control::MitigationRuntime::FeedFault MakeFeedFault(
    const FaultSpec& spec, std::uint64_t seed) {
  auto rng = std::make_shared<sim::Rng>(sim::DeriveSeed(seed, 0x4D17));
  return [spec, rng](const ran::TbRecord& tb) -> std::optional<ran::TbRecord> {
    ran::TbRecord record = tb;
    if (spec.outage_begin != spec.outage_end &&
        record.slot_time >= spec.outage_begin && record.slot_time < spec.outage_end) {
      return std::nullopt;
    }
    if (spec.drop > 0.0 && rng->Bernoulli(spec.drop)) return std::nullopt;
    if (spec.corrupt > 0.0 && rng->Bernoulli(spec.corrupt)) {
      switch (rng->UniformInt(0, 3)) {
        case 0:
          record.tbs_bytes = record.tbs_bytes * 7 + 1;
          break;
        case 1:
          record.used_bytes = record.tbs_bytes + 1500;
          break;
        case 2:
          record.harq_round = static_cast<std::uint8_t>(record.harq_round + 3);
          break;
        default:
          record.crc_ok = !record.crc_ok;
          break;
      }
    }
    if (spec.clock_step.count() != 0 && record.slot_time >= spec.clock_step_at) {
      record.slot_time = record.slot_time + spec.clock_step;
    }
    if (spec.delay > 0.0 && rng->Bernoulli(spec.delay)) {
      record.slot_time = record.slot_time + rng->UniformDuration(spec.delay_min, spec.delay_max);
    }
    return record;
  };
}

}  // namespace

MitigationOutcome RunMitigationScenario(const ChaosScenario& scenario,
                                        std::uint64_t seed, sim::Duration budget,
                                        MitigationSlack slack, bool summarize) {
  MitigationOutcome out;
  out.scenario = scenario.name;
  out.seed = seed;

  try {
    // Leg 1: the un-mitigated reference. Per-leg metrics registries keep
    // the comparison (and matrix workers) isolated.
    {
      obs::MetricsRegistry registry;
      obs::ScopedMetrics metrics_scope{&registry};
      sim::Simulator simulator;
      app::Session session{simulator, BaseConfig(scenario, seed)};
      session.Run(scenario.duration);
      out.baseline = ExtractQoe(session.qoe());
    }

    // Leg 2: the same session under the closed loop, with the scenario's
    // telemetry faults applied live to the control plane's feed.
    {
      obs::MetricsRegistry registry;
      obs::ScopedMetrics metrics_scope{&registry};
      sim::Simulator simulator;

      mitigation::control::MitigationRuntime::Options options;
      options.controller.budget = budget;
      mitigation::control::MitigationRuntime runtime{options};

      app::SessionConfig config = BaseConfig(scenario, seed);
      runtime.InstallConfigHooks(config);
      app::Session session{simulator, config};
      runtime.BindSession(simulator, session);
      runtime.set_feed_fault(MakeFeedFault(scenario.plan.For(Stream::kTelemetry), seed));

      {
        obs::ScopedTraceSink trace_scope{runtime.sink()};
        session.Run(scenario.duration);
      }

      out.mitigated = ExtractQoe(session.qoe());
      if (summarize) {
        // The fleet digest of the mitigated leg: the correlated dataset,
        // receiver-side QoE, and the live detector verdicts that drove
        // the controller.
        const core::CrossLayerDataset data =
            core::Correlator::Correlate(session.BuildCorrelatorInput());
        out.summary = obs::fleet::SummarizeSession({.dataset = &data,
                                                    .qoe = &session.qoe(),
                                                    .detectors = &runtime.live()->bank(),
                                                    .scenario = scenario.name,
                                                    .seed = seed});
      }
      const auto* controller = runtime.controller();
      out.decisions = controller->ledger().size();
      out.actuations = controller->actuations();
      out.reverts = controller->reverts();
      out.guardrail_blocks = controller->guardrail_blocks();
      out.ledger_digest = controller->LedgerDigest();
      out.max_sense_to_act_us = controller->max_sense_to_act().count();
      out.budget_ok = controller->max_sense_to_act() <= budget;
    }

    out.survived = true;

    auto fail = [&](const char* why) {
      if (out.failure.empty()) out.failure = why;
    };
    if (!out.budget_ok) fail("sense-to-act latency exceeded the budget");

    // Never-regress: mitigation on must not be meaningfully worse than
    // mitigation off on any facet, under any scenario.
    out.qoe_ok = out.mitigated.late_fraction <=
                     out.baseline.late_fraction + slack.late_fraction &&
                 out.mitigated.ssim_mean >= out.baseline.ssim_mean - slack.ssim &&
                 out.mitigated.audio_loss <= out.baseline.audio_loss + slack.audio_loss &&
                 out.mitigated.audio_mos >= out.baseline.audio_mos - slack.audio_mos;
    if (!out.qoe_ok) fail("mitigated QoE regressed beyond slack vs baseline");

    out.guarded_ok = !scenario.expect.mitigation_guarded ||
                     out.guardrail_blocks + out.reverts > 0;
    if (!out.guarded_ok) {
      fail("guardrails never engaged on a scenario with hostile telemetry");
    }
  } catch (const std::exception& e) {
    out.survived = false;
    out.failure = std::string("exception: ") + e.what();
  } catch (...) {
    out.survived = false;
    out.failure = "unknown exception";
  }
  return out;
}

MitigationMatrixResult RunMitigationMatrix(const std::vector<ChaosScenario>& scenarios,
                                           std::uint64_t base_seed, std::size_t seeds,
                                           unsigned jobs, sim::Duration budget,
                                           bool summarize) {
  const std::size_t n = scenarios.size() * seeds;
  const sim::ParallelRunner runner{jobs};
  MitigationMatrixResult result;
  result.outcomes = runner.Map<MitigationOutcome>(n, [&](std::size_t i) {
    const ChaosScenario& scenario = scenarios[i / seeds];
    return RunMitigationScenario(scenario, sim::DeriveSeed(base_seed, i % seeds),
                                 budget, {}, summarize);
  });
  return result;
}

namespace {

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void WriteQoe(std::ostream& os, const char* key, const MitigationQoe& q) {
  os << "\"" << key << "\": {\"ssim_mean\": " << q.ssim_mean
     << ", \"late_fraction\": " << q.late_fraction
     << ", \"audio_loss\": " << q.audio_loss << ", \"audio_mos\": " << q.audio_mos
     << ", \"frames_rendered\": " << q.frames_rendered << "}";
}

}  // namespace

void WriteMitigationJson(std::ostream& os, const MitigationMatrixResult& result,
                         std::uint64_t base_seed, std::size_t seeds, unsigned jobs,
                         sim::Duration budget) {
  os << "{\n  \"bench\": \"mitigation_matrix\",\n";
  os << "  \"base_seed\": " << base_seed << ",\n";
  os << "  \"seeds\": " << seeds << ",\n";
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"budget_ms\": " << sim::ToMs(budget) << ",\n";
  os << "  \"runs\": " << result.outcomes.size() << ",\n";
  os << "  \"failures\": " << result.failures() << ",\n";
  os << "  \"all_ok\": " << (result.all_ok() ? "true" : "false") << ",\n";
  os << "  \"outcomes\": [\n";
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const MitigationOutcome& o = result.outcomes[i];
    os << "    {\"scenario\": ";
    WriteJsonString(os, o.scenario);
    os << ", \"seed\": " << o.seed << ", \"ok\": " << (o.ok() ? "true" : "false")
       << ", \"survived\": " << (o.survived ? "true" : "false") << ", ";
    WriteQoe(os, "baseline", o.baseline);
    os << ", ";
    WriteQoe(os, "mitigated", o.mitigated);
    os << ", \"decisions\": " << o.decisions << ", \"actuations\": " << o.actuations
       << ", \"reverts\": " << o.reverts
       << ", \"guardrail_blocks\": " << o.guardrail_blocks
       << ", \"ledger_digest\": \"" << std::hex << o.ledger_digest << std::dec << "\""
       << ", \"max_sense_to_act_us\": " << o.max_sense_to_act_us
       << ", \"budget_ok\": " << (o.budget_ok ? "true" : "false")
       << ", \"qoe_ok\": " << (o.qoe_ok ? "true" : "false")
       << ", \"guarded_ok\": " << (o.guarded_ok ? "true" : "false")
       << ", \"failure\": ";
    WriteJsonString(os, o.failure);
    os << "}" << (i + 1 < result.outcomes.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void RenderMitigationTable(std::ostream& os, const MitigationMatrixResult& result) {
  for (const MitigationOutcome& o : result.outcomes) {
    os << (o.ok() ? "PASS" : "FAIL") << "  " << o.scenario << " seed=" << o.seed
       << " late_frac=" << o.baseline.late_fraction << "->" << o.mitigated.late_fraction
       << " ssim=" << o.baseline.ssim_mean << "->" << o.mitigated.ssim_mean
       << " mos=" << o.baseline.audio_mos << "->" << o.mitigated.audio_mos
       << " acts=" << o.actuations << " reverts=" << o.reverts
       << " blocks=" << o.guardrail_blocks << " sense_us=" << o.max_sense_to_act_us
       << " ledger=" << std::hex << o.ledger_digest << std::dec;
    if (!o.failure.empty()) os << "  [" << o.failure << "]";
    os << "\n";
  }
  os << (result.all_ok() ? "mitigation matrix: all contracts held"
                         : "mitigation matrix: CONTRACT VIOLATIONS")
     << " (" << result.outcomes.size() - result.failures() << "/"
     << result.outcomes.size() << " ok)\n";
}

}  // namespace athena::fault
