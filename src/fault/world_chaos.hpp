// World-scale chaos: fault injection against the sharded multi-cell
// engine instead of a single session.
//
// Where chaos.hpp impairs one session's correlator input, a world chaos
// run blacks out a whole cell mid-run and checks the population-level
// degradation contract:
//
//   - packet conservation holds for every UE even under the fault;
//   - the run stays a pure function of (config, seed) — a second run
//     produces a byte-identical digest and FleetReport;
//   - the blast radius is visible: the faulted world delivers strictly
//     less than the clean one, and the per-cell scenario groups in the
//     FleetReport let an operator see *which* population degraded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resilience/world_supervisor.hpp"
#include "world/config.hpp"
#include "world/engine.hpp"

namespace athena::fault {

struct WorldChaosConfig {
  std::uint64_t seed = 7;
  std::size_t ues = 32;
  std::size_t cells = 4;
  std::size_t shards = 2;
  bool threaded = true;
  sim::Duration duration{std::chrono::milliseconds{500}};
  /// Cell to black out, from `outage_start_frac · duration` to the end
  /// of the run (so the backlog cannot silently drain).
  std::size_t outage_cell = 0;
  double outage_start_frac = 0.25;
  /// Every k-th UE also performs a handover during the fault (0 = none):
  /// chaos and mobility interleave.
  std::size_t handover_every = 8;

  // --- shard_crash_restore / cell_quarantine scenario knobs ---
  /// Shard killed by the supervision scenarios (mod the layout's count).
  std::size_t crash_shard = 1;
  /// 1-based window at which it dies; 0 derives one from the seed.
  std::uint64_t crash_window = 0;
  /// World-snapshot cadence in window boundaries.
  std::uint64_t checkpoint_every = 64;
};

struct WorldChaosOutcome {
  world::WorldResult clean;
  world::WorldResult faulted;
  bool invariants_ok = false;
  std::vector<std::string> violations;
};

/// Runs the clean world, the faulted world, and a repeat of the faulted
/// world (the determinism probe), then checks the degradation contract.
[[nodiscard]] WorldChaosOutcome RunWorldChaos(const WorldChaosConfig& config);

/// Outcome shared by the supervision scenarios: the clean run is the
/// oracle the supervised (crashed-and-recovered) run is held against.
struct WorldSupervisionOutcome {
  world::WorldResult clean;
  resilience::WorldSupervisedOutcome supervised;
  bool invariants_ok = false;
  std::vector<std::string> violations;
};

/// `shard_crash_restore`: kills one shard mid-run, lets the supervisor
/// restore from the latest windowed snapshot, and checks the recovery
/// contract — the supervised run crashes (≥1) and restarts (≥1), yet
/// finishes with a world digest and FleetReport byte-identical to the
/// uninterrupted run; a cross-layout probe (1 shard, sequential) must
/// recover to the same digest.
[[nodiscard]] WorldSupervisionOutcome RunShardCrashRestore(const WorldChaosConfig& config);

/// `cell_quarantine`: crashes repeatedly blamed on one cell exhaust its
/// restart budget, so the supervisor quarantines it and the engine
/// evacuates its population. Contract: the run completes with the cell
/// quarantined, packet conservation still holds (evacuation drops are
/// booked as `lost`, stranded UEs keep packets `in_flight`), delivery is
/// strictly below the clean run, losses are at least the clean run's,
/// the quarantined population group is visible in the FleetReport, and
/// a repeat supervised run is byte-identical (determinism probe).
[[nodiscard]] WorldSupervisionOutcome RunCellQuarantine(const WorldChaosConfig& config);

}  // namespace athena::fault
