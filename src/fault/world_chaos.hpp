// World-scale chaos: fault injection against the sharded multi-cell
// engine instead of a single session.
//
// Where chaos.hpp impairs one session's correlator input, a world chaos
// run blacks out a whole cell mid-run and checks the population-level
// degradation contract:
//
//   - packet conservation holds for every UE even under the fault;
//   - the run stays a pure function of (config, seed) — a second run
//     produces a byte-identical digest and FleetReport;
//   - the blast radius is visible: the faulted world delivers strictly
//     less than the clean one, and the per-cell scenario groups in the
//     FleetReport let an operator see *which* population degraded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "world/config.hpp"
#include "world/engine.hpp"

namespace athena::fault {

struct WorldChaosConfig {
  std::uint64_t seed = 7;
  std::size_t ues = 32;
  std::size_t cells = 4;
  std::size_t shards = 2;
  bool threaded = true;
  sim::Duration duration{std::chrono::milliseconds{500}};
  /// Cell to black out, from `outage_start_frac · duration` to the end
  /// of the run (so the backlog cannot silently drain).
  std::size_t outage_cell = 0;
  double outage_start_frac = 0.25;
  /// Every k-th UE also performs a handover during the fault (0 = none):
  /// chaos and mobility interleave.
  std::size_t handover_every = 8;
};

struct WorldChaosOutcome {
  world::WorldResult clean;
  world::WorldResult faulted;
  bool invariants_ok = false;
  std::vector<std::string> violations;
};

/// Runs the clean world, the faulted world, and a repeat of the faulted
/// world (the determinism probe), then checks the degradation contract.
[[nodiscard]] WorldChaosOutcome RunWorldChaos(const WorldChaosConfig& config);

}  // namespace athena::fault
