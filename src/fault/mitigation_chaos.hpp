// Mitigation-on/off chaos pairs: every (scenario, seed) cell runs the
// session twice — once plain, once under the closed-loop
// MitigationRuntime with the scenario's telemetry faults applied *live*
// to the control plane's feed — and judges the QoE delta against the
// scenario's contract:
//
//   * clean / wireless-impaired scenarios: mitigation must hold or
//     improve QoE (never regress beyond the stochastic slack)
//   * mitigation_guarded scenarios (lying / vanishing telemetry): the
//     guardrails must visibly engage (>= 1 block or revert in the
//     ledger) and QoE must still never regress beyond slack — acting
//     blindly on bad telemetry is the failure this contract prevents
//
// Every cell also pins the sense-to-act budget and the decision-ledger
// digest; both are pure functions of (scenario, seed), so the matrix is
// byte-identical under sim::ParallelRunner at any job count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "sim/time.hpp"

namespace athena::fault {

/// The QoE facets the on/off comparison is judged on.
struct MitigationQoe {
  double ssim_mean = 0.0;
  double late_fraction = 0.0;  ///< frames late / max(1, frames rendered)
  double audio_loss = 0.0;
  double audio_mos = 0.0;
  std::uint64_t frames_rendered = 0;
};

/// Stochastic slack for the never-regress checks: two runs of the same
/// scenario under different control paths jitter by this much without
/// either being "worse".
struct MitigationSlack {
  double late_fraction = 0.08;
  double ssim = 0.05;
  double audio_loss = 0.05;
  double audio_mos = 0.30;
};

struct MitigationOutcome {
  std::string scenario;
  std::uint64_t seed = 0;

  bool survived = false;  ///< both runs completed without throwing
  MitigationQoe baseline;
  MitigationQoe mitigated;

  // --- controller evidence ---
  std::uint64_t decisions = 0;
  std::uint64_t actuations = 0;
  std::uint64_t reverts = 0;
  std::uint64_t guardrail_blocks = 0;
  std::uint64_t ledger_digest = 0;
  std::int64_t max_sense_to_act_us = 0;

  // --- contract verdicts ---
  bool budget_ok = false;   ///< every actuation within the sense-to-act budget
  bool qoe_ok = false;      ///< mitigated QoE never regresses beyond slack
  bool guarded_ok = false;  ///< guardrail engagement where the scenario demands it

  std::string failure;  ///< first violated check, empty when ok()

  /// Fleet digest of the *mitigated* leg (delay decomposition, QoE,
  /// detector verdicts); only populated when the run was asked to
  /// summarize. Gating this report against a mitigation-off baseline is
  /// the "not stochastically worse" CI check.
  obs::fleet::SessionSummary summary;

  [[nodiscard]] bool ok() const {
    return survived && budget_ok && qoe_ok && guarded_ok;
  }
};

/// Runs one mitigation-on/off pair. `budget` is the controller's hard
/// sense-to-act bound (virtual time). Never throws.
[[nodiscard]] MitigationOutcome RunMitigationScenario(
    const ChaosScenario& scenario, std::uint64_t seed,
    sim::Duration budget = sim::Duration{std::chrono::milliseconds{50}},
    MitigationSlack slack = {}, bool summarize = false);

struct MitigationMatrixResult {
  /// Scenario-major, seed-minor — index order, identical for any job count.
  std::vector<MitigationOutcome> outcomes;

  [[nodiscard]] bool all_ok() const {
    for (const auto& o : outcomes) {
      if (!o.ok()) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t failures() const {
    std::size_t n = 0;
    for (const auto& o : outcomes) n += o.ok() ? 0 : 1;
    return n;
  }
};

/// Runs every scenario × derived seed pair on `jobs` workers (run (s, i)
/// gets sim::DeriveSeed(base_seed, i)); results stay in index order.
[[nodiscard]] MitigationMatrixResult RunMitigationMatrix(
    const std::vector<ChaosScenario>& scenarios, std::uint64_t base_seed,
    std::size_t seeds, unsigned jobs,
    sim::Duration budget = sim::Duration{std::chrono::milliseconds{50}},
    bool summarize = false);

/// Machine-readable report (BENCH_mitigation.json schema).
void WriteMitigationJson(std::ostream& os, const MitigationMatrixResult& result,
                         std::uint64_t base_seed, std::size_t seeds, unsigned jobs,
                         sim::Duration budget);

/// Human-readable one-line-per-pair table.
void RenderMitigationTable(std::ostream& os, const MitigationMatrixResult& result);

}  // namespace athena::fault
