// Deterministic fault injection for the measurement pipeline.
//
// Athena's correlator, analyzer and live engine consume three
// independently-collected feeds (PHY telemetry, per-hop captures, app
// logs). In deployment those feeds are lossy, duplicated, reordered,
// clock-skewed and occasionally garbage. This subsystem impairs any feed
// *systematically*: a `FaultPlan` declares per-stream fault models, and a
// `FaultInjector` applies them — offline to recorded vectors (the
// correlator path) or online as a packet-handler interposer (the live
// path). Every random decision flows from one `sim::Rng` sub-stream per
// (seed, stream), so an identical plan + seed reproduces a byte-identical
// impaired run regardless of which streams are transformed first or how
// many sweep workers are running (sim::ParallelRunner-safe: no globals).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/capture.hpp"
#include "net/packet.hpp"
#include "ran/types.hpp"
#include "resilience/supervisor.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace athena::fault {

/// The telemetry/capture feeds a plan can impair independently. kPackets
/// is the online interposer stream (FaultInjector::Wrap).
enum class Stream : std::uint8_t {
  kTelemetry,        ///< PHY TbRecords (the NG-Scope feed)
  kSenderCapture,    ///< pcap tap ① (sender egress)
  kCoreCapture,      ///< pcap tap ② (mobile core)
  kReceiverCapture,  ///< pcap tap ④ (receiver ingress)
  kPackets,          ///< a live packet path (online interposer)
};
inline constexpr std::size_t kStreamCount = 5;

[[nodiscard]] const char* ToString(Stream stream);

/// One stream's fault model. All probabilities are per-record and the
/// faults compose: a record can be clock-stepped, delayed *and*
/// duplicated in one pass. Zero-initialized = pass-through.
struct FaultSpec {
  // --- record-level faults ---
  double drop = 0.0;       ///< record vanishes
  double duplicate = 0.0;  ///< record is emitted twice (same timestamps)
  /// With probability `reorder` a record is held back and re-emitted
  /// after up to `reorder_depth` later records — a bounded reorder
  /// buffer, never an unbounded shuffle.
  double reorder = 0.0;
  std::size_t reorder_depth = 8;
  /// With probability `delay` the record's *local* timestamp is pushed
  /// late by Uniform[delay_min, delay_max] (collection latency, not
  /// transit delay; ground-truth fields are never touched).
  double delay = 0.0;
  sim::Duration delay_min{0};
  sim::Duration delay_max{0};
  /// With probability `corrupt` one field of the record is scrambled
  /// (sizes, HARQ metadata, CRC verdicts — never into values that are
  /// UB to consume, only into values that are *wrong*).
  double corrupt = 0.0;
  /// Telemetry flood: expected total copies per record (≥ 1.0; 1.0
  /// disables). Extra copies carry jittered local timestamps, so they
  /// are near-duplicates the correlator's exact-dedup cannot remove —
  /// a misbehaving collector re-reporting everything, the overload
  /// governor's natural enemy.
  double flood_factor = 1.0;

  // --- window faults ---
  /// Burst outage: every record timestamped inside [outage_begin,
  /// outage_end) vanishes (sniffer crash + restart). begin == end
  /// disables.
  sim::TimePoint outage_begin;
  sim::TimePoint outage_end;
  /// Truncation: the stream ends early — records in the last
  /// (1 - truncate_after_fraction) of the stream's observed time span
  /// vanish (collector died before the run finished). 1.0 disables.
  double truncate_after_fraction = 1.0;

  // --- clock faults (applied to local timestamps) ---
  /// Step the stream's clock by `clock_step` for every record at or
  /// after `clock_step_at` (NTP re-sync mid-run).
  sim::Duration clock_step{0};
  sim::TimePoint clock_step_at;
  /// Constant drift in parts-per-million relative to the stream's first
  /// record (a skewed local oscillator).
  double clock_drift_ppm = 0.0;

  [[nodiscard]] bool active() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || delay > 0.0 ||
           corrupt > 0.0 || flood_factor > 1.0 || outage_end > outage_begin ||
           truncate_after_fraction < 1.0 || clock_step.count() != 0 ||
           clock_drift_ppm != 0.0;
  }
};

/// A named, composable set of per-stream fault models, plus the
/// process-level faults (kill points) the resilience supervisor injects.
struct FaultPlan {
  std::array<FaultSpec, kStreamCount> streams{};

  /// Process death, handled by resilience::Supervisor rather than the
  /// record-level injector: the whole collector process dies and is
  /// restarted from its latest checkpoint.
  resilience::ProcessFaultSpec process{};

  [[nodiscard]] FaultSpec& For(Stream s) { return streams[static_cast<std::size_t>(s)]; }
  [[nodiscard]] const FaultSpec& For(Stream s) const {
    return streams[static_cast<std::size_t>(s)];
  }

  /// True when any *stream* fault model is active (process faults are
  /// queried separately via `process.any()` — they act on the run, not
  /// on records).
  [[nodiscard]] bool active() const {
    for (const auto& s : streams) {
      if (s.active()) return true;
    }
    return false;
  }
};

/// What the injector actually did, per stream — the ground truth chaos
/// invariants compare degradation reports against.
struct FaultStats {
  struct PerStream {
    std::uint64_t seen = 0;
    std::uint64_t dropped = 0;          ///< random drops
    std::uint64_t outage_dropped = 0;   ///< burst-outage window
    std::uint64_t truncated = 0;        ///< truncation tail
    std::uint64_t duplicated = 0;
    std::uint64_t flooded = 0;          ///< extra near-duplicate copies emitted
    std::uint64_t reordered = 0;
    std::uint64_t delayed = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t clock_stepped = 0;

    [[nodiscard]] std::uint64_t faults() const {
      return dropped + outage_dropped + truncated + duplicated + flooded + reordered +
             delayed + corrupted + clock_stepped;
    }
  };

  std::array<PerStream, kStreamCount> streams{};

  [[nodiscard]] PerStream& For(Stream s) { return streams[static_cast<std::size_t>(s)]; }
  [[nodiscard]] const PerStream& For(Stream s) const {
    return streams[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t total_faults() const {
    std::uint64_t n = 0;
    for (const auto& s : streams) n += s.faults();
    return n;
  }

  /// Publishes per-stream tallies as `fault.<stream>.<kind>` gauges into
  /// the installed MetricsRegistry (no-op when metrics are disabled).
  void PublishMetrics() const;
};

/// Applies a FaultPlan. Each stream's randomness is an independent
/// sub-stream derived from (seed, stream index), so transforming the
/// telemetry never perturbs the capture faults and call order is
/// irrelevant to the output.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Impairs a telemetry vector in place (timestamp field: slot_time).
  void Apply(Stream stream, std::vector<ran::TbRecord>& records);
  /// Impairs a capture log in place (timestamp field: local_ts; the
  /// ground-truth true_ts is deliberately left pristine).
  void Apply(Stream stream, std::vector<net::CaptureRecord>& records);

  /// Wraps a live packet handler: drop / duplicate / bounded-reorder /
  /// delay / burst-outage applied per packet at simulated time. Delayed
  /// and reordered packets are re-emitted through the simulator, so the
  /// impaired run stays deterministic and virtual-time ordered.
  [[nodiscard]] net::PacketHandler Wrap(sim::Simulator& sim, net::PacketHandler next);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  template <typename Record, typename TsOf, typename SetTs, typename Corrupt>
  void ApplyImpl(Stream stream, std::vector<Record>& records, TsOf ts_of, SetTs set_ts,
                 Corrupt corrupt);

  FaultPlan plan_;
  std::uint64_t seed_;
  FaultStats stats_;
};

/// Order-insensitive-of-construction, content-sensitive digest of a
/// correlator input (FNV-1a over every field the correlator consumes).
/// Two impaired runs are "byte-identical" iff their digests match — the
/// reproducibility invariant `run_chaos_matrix.sh` checks across
/// --jobs=1/8.
class InputDigest {
 public:
  void Mix(std::uint64_t v);
  void Mix(const std::vector<ran::TbRecord>& records);
  void Mix(const std::vector<net::CaptureRecord>& records);

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace athena::fault
