#include "fault/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <ostream>
#include <utility>

#include "app/session.hpp"
#include "core/correlator.hpp"
#include "obs/live/detectors.hpp"
#include "obs/metrics.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/overload.hpp"
#include "resilience/supervisor.hpp"
#include "sim/random.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"

namespace athena::fault {
namespace {

using namespace std::chrono_literals;

/// Post-run event-queue ceiling. A stopped 2 s session leaves at most a
/// handful of cancelled periodic timers behind; anything in the tens of
/// thousands means a component kept scheduling against a dead session.
constexpr std::size_t kQueueDepthBound = 65'536;

ChaosScenario Make(std::string name, std::string description, ChaosExpectation expect) {
  ChaosScenario s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.expect = expect;
  return s;
}

}  // namespace

std::vector<ChaosScenario> BuiltinScenarios() {
  std::vector<ChaosScenario> all;

  // 1. The control: the contract cuts both ways — a clean feed must
  // produce *zero* degradation signals, or every report is noise.
  all.push_back(Make("clean_baseline",
                     "no faults; health must be pristine and telemetry_gap silent",
                     ChaosExpectation{}));

  // 2. Random record loss: the sniffer misses DCI decodes under load.
  {
    auto s = Make("telemetry_drop",
                  "40% of TbRecords vanish at random (sniffer decode misses)",
                  {.degraded = true, .telemetry_gap_anomaly = true});
    s.plan.For(Stream::kTelemetry).drop = 0.4;
    all.push_back(std::move(s));
  }

  // 3. Burst outage: sniffer crash + restart mid-call.
  {
    auto s = Make("telemetry_burst_outage",
                  "telemetry silent for [700ms, 1300ms) (sniffer crash/restart)",
                  {.degraded = true, .telemetry_gap_anomaly = true,
                   .telemetry_flagged = true});
    s.plan.For(Stream::kTelemetry).outage_begin = sim::kEpoch + 700ms;
    s.plan.For(Stream::kTelemetry).outage_end = sim::kEpoch + 1300ms;
    all.push_back(std::move(s));
  }

  // 4. Truncation: the collector died before the run finished.
  {
    auto s = Make("telemetry_truncate",
                  "telemetry ends at 55% of the run (collector died early)",
                  {.degraded = true, .telemetry_gap_anomaly = true,
                   .telemetry_flagged = true});
    s.plan.For(Stream::kTelemetry).truncate_after_fraction = 0.55;
    all.push_back(std::move(s));
  }

  // 5. Duplicates + bounded reordering: a lossy transport re-delivering
  // and shuffling the telemetry export stream.
  {
    auto s = Make("telemetry_dup_reorder",
                  "25% duplicated, 30% reordered (depth 12) TbRecords",
                  {.degraded = true, .telemetry_flagged = true});
    auto& spec = s.plan.For(Stream::kTelemetry);
    spec.duplicate = 0.25;
    spec.reorder = 0.3;
    spec.reorder_depth = 12;
    all.push_back(std::move(s));
  }

  // 6. Collection latency: records timestamped late by a jittery export
  // path, landing behind their successors.
  {
    auto s = Make("telemetry_delay",
                  "30% of TbRecords timestamped 2-30ms late (export latency)",
                  {.degraded = true, .telemetry_flagged = true});
    auto& spec = s.plan.For(Stream::kTelemetry);
    spec.delay = 0.3;
    spec.delay_min = 2ms;
    spec.delay_max = 30ms;
    all.push_back(std::move(s));
  }

  // 7. Field corruption: sizes, HARQ metadata and CRC verdicts scrambled.
  {
    auto s = Make("telemetry_corrupt",
                  "25% of TbRecords have one field scrambled (decode errors)",
                  {.degraded = true});
    s.plan.For(Stream::kTelemetry).corrupt = 0.25;
    all.push_back(std::move(s));
  }

  // 8. Capture-side duplicates + reordering: pcap taps re-deliver.
  {
    auto s = Make("capture_dup_reorder",
                  "core+receiver captures: 20% duplicated, 25% reordered",
                  {.degraded = true});
    for (Stream st : {Stream::kCoreCapture, Stream::kReceiverCapture}) {
      auto& spec = s.plan.For(st);
      spec.duplicate = 0.2;
      spec.reorder = 0.25;
      spec.reorder_depth = 8;
    }
    all.push_back(std::move(s));
  }

  // 9. Clock step: the sender host NTP-steps backwards mid-call, so its
  // capture timestamps fold over themselves.
  {
    auto s = Make("capture_clock_step",
                  "sender capture clock steps -20ms at t=1s (NTP re-sync)",
                  {.degraded = true});
    auto& spec = s.plan.For(Stream::kSenderCapture);
    spec.clock_step = -20ms;
    spec.clock_step_at = sim::kEpoch + 1s;
    all.push_back(std::move(s));
  }

  // 10. Clock drift below the detection floor: the pipeline must absorb
  // it without crashing, but flagging it is not required.
  {
    auto s = Make("telemetry_clock_drift",
                  "telemetry clock drifts 400ppm (skewed oscillator; tolerated)",
                  {.tolerated = true});
    s.plan.For(Stream::kTelemetry).clock_drift_ppm = 400.0;
    all.push_back(std::move(s));
  }

  // 11. Process death mid-run: the collector is killed at a seed-derived
  // virtual time and restored from its latest checkpoint. The restored
  // run's final *and* report digests must be byte-identical to an
  // uninterrupted run — the checkpoint/restore determinism contract,
  // exercised end to end under the supervisor.
  {
    auto s = Make("kill_restore_midrun",
                  "process killed at a seed-derived virtual time, restored from "
                  "checkpoint; digests must match an uninterrupted run",
                  {.restore_identical = true});
    s.supervised = true;
    s.plan.process.max_kills = 1;  // kill point derived per seed at run time
    all.push_back(std::move(s));
  }

  // 12. Telemetry flood against a hard byte budget: a misbehaving
  // collector re-reports everything ~10x with jittered timestamps. The
  // governor must keep the input bounded, shed loudly, raise the
  // overload anomaly, and correlation of the surviving records must
  // still succeed.
  {
    auto s = Make("overload_flood",
                  "10x telemetry/capture flood vs a hard byte budget: bounded "
                  "memory, loud shed counters, correlation survives",
                  {.degraded = true, .bounded_memory = true});
    s.plan.For(Stream::kTelemetry).flood_factor = 10.0;
    s.plan.For(Stream::kCoreCapture).flood_factor = 10.0;
    // ~2.3x the clean input, ~0.4x the flooded one: tiers 2-3 alone
    // cannot absorb the flood, so the hard cap must engage (loudly).
    s.budget.input_bytes = 256 * 1024;
    all.push_back(std::move(s));
  }

  // 13. Lying telemetry: the feed keeps flowing but a quarter of it is
  // wrong (scrambled fields) and late. An online mitigation loop that
  // trusts it would actuate on fiction — the guardrail contract demands
  // the confidence gate block (or the watchdog revert) at least once.
  {
    auto s = Make("lying_telemetry",
                  "30% of TbRecords corrupted + 20% timestamped late: the "
                  "control plane must refuse or roll back, never act blindly",
                  {.degraded = true, .mitigation_guarded = true});
    auto& spec = s.plan.For(Stream::kTelemetry);
    spec.corrupt = 0.3;
    spec.delay = 0.2;
    spec.delay_min = 2ms;
    spec.delay_max = 25ms;
    all.push_back(std::move(s));
  }

  // 14. Detector outage during actuation: telemetry goes dark over a
  // handover-shaped window right when the controller is likely to be
  // holding knobs away from baseline, then the restarted feed steps its
  // clock. The feed-silence fail-safe must revert to baseline (or the
  // gate must hold fire) rather than steering on stale evidence.
  {
    auto s = Make("actuate_during_handover",
                  "telemetry dark for [800ms, 1300ms) with a -15ms clock step "
                  "on re-attach: fail-safe must revert/hold, not steer blind",
                  {.degraded = true, .telemetry_gap_anomaly = true,
                   .telemetry_flagged = true, .mitigation_guarded = true});
    auto& spec = s.plan.For(Stream::kTelemetry);
    spec.outage_begin = sim::kEpoch + 800ms;
    spec.outage_end = sim::kEpoch + 1300ms;
    spec.clock_step = -15ms;
    spec.clock_step_at = sim::kEpoch + 1300ms;
    all.push_back(std::move(s));
  }

  // 15. Everything at once, under cross traffic.
  {
    auto s = Make("everything_hostile",
                  "compound faults on all streams under 12 Mbps cross traffic",
                  {.degraded = true, .telemetry_gap_anomaly = true,
                   .telemetry_flagged = true});
    auto& tele = s.plan.For(Stream::kTelemetry);
    tele.drop = 0.2;
    tele.duplicate = 0.1;
    tele.reorder = 0.15;
    tele.corrupt = 0.05;
    tele.outage_begin = sim::kEpoch + 500ms;
    tele.outage_end = sim::kEpoch + 900ms;
    for (Stream st :
         {Stream::kSenderCapture, Stream::kCoreCapture, Stream::kReceiverCapture}) {
      auto& spec = s.plan.For(st);
      spec.duplicate = 0.1;
      spec.reorder = 0.1;
    }
    s.cross_mbps = 12.0;
    all.push_back(std::move(s));
  }

  return all;
}

const ChaosScenario* FindScenario(const std::vector<ChaosScenario>& scenarios,
                                  std::string_view name) {
  for (const auto& s : scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

namespace {

/// Replays the impaired telemetry + core-capture streams through a fresh
/// detector bank in timestamp order — the live engine's view of the same
/// impaired evidence the correlator consumed. ICMP records are skipped:
/// the core's own probes never crossed the RAN, so they are not
/// deliveries.
void ReplayIntoBank(const core::CorrelatorInput& input, obs::live::DetectorBank& bank) {
  struct Event {
    sim::TimePoint t;
    bool is_tb = false;
    std::size_t index = 0;
  };
  std::vector<Event> events;
  events.reserve(input.telemetry.size() + input.core.size());
  for (std::size_t i = 0; i < input.telemetry.size(); ++i) {
    events.push_back({input.telemetry[i].slot_time, true, i});
  }
  for (std::size_t i = 0; i < input.core.size(); ++i) {
    if (input.core[i].icmp.has_value()) continue;
    events.push_back({input.core[i].local_ts, false, i});
  }
  // TB before delivery on ties: a TB observed in the slot that delivered
  // a packet should not look like silence.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.is_tb != b.is_tb) return a.is_tb;
    return a.index < b.index;
  });

  for (const Event& ev : events) {
    if (ev.is_tb) {
      const ran::TbRecord& tb = input.telemetry[ev.index];
      bank.OnTb({.slot_time = tb.slot_time,
                 .tbs_bytes = tb.tbs_bytes,
                 .used_bytes = tb.used_bytes,
                 .harq_round = tb.harq_round,
                 .crc_ok = tb.crc_ok,
                 .requested_grant = tb.grant == ran::GrantType::kRequested});
    } else {
      const net::CaptureRecord& r = input.core[ev.index];
      bank.OnDelivery({.packet_id = r.packet_id,
                       .enqueued_at = r.local_ts,
                       .delivered_at = r.local_ts,
                       .bytes = r.size_bytes});
    }
  }
}

/// Fleet extraction for supervised scenarios: the process faults only
/// kill the *driver*; the simulated session itself is untouched. Re-run
/// the same (config, seed) plainly and summarize that — deterministic
/// and identical to what the supervised run computed between crashes.
obs::fleet::SessionSummary SummarizePlainRun(const ChaosScenario& scenario,
                                             std::uint64_t seed) {
  sim::Simulator simulator;
  app::SessionConfig config;
  config.seed = seed;
  if (scenario.cross_mbps > 0.0) {
    config.cross_traffic = net::CapacityTrace{scenario.cross_mbps * 1e6};
    config.cross_burstiness = 0.35;
  }
  app::Session session{simulator, config};
  session.Run(scenario.duration);
  const core::CorrelatorInput input = session.BuildCorrelatorInput();
  const core::CrossLayerDataset data = core::Correlator::Correlate(input);
  obs::live::DetectorBank bank;
  ReplayIntoBank(input, bank);
  return obs::fleet::SummarizeSession({.dataset = &data,
                                       .qoe = &session.qoe(),
                                       .detectors = &bank,
                                       .scenario = scenario.name,
                                       .seed = seed});
}

/// Supervised scenarios: run the plan under the resilience Supervisor
/// with an injected process kill, then run the same plan uninterrupted
/// and demand byte-identical final + report digests.
ChaosOutcome RunSupervisedScenario(const ChaosScenario& scenario, std::uint64_t seed,
                                   bool summarize) {
  ChaosOutcome out;
  out.scenario = scenario.name;
  out.seed = seed;

  try {
    // A per-run registry, as in the plain path: supervision gauges are
    // inspectable and sweep workers never share.
    obs::MetricsRegistry registry;
    obs::ScopedMetrics metrics_scope{&registry};

    resilience::RunPlan plan;
    plan.config.seed = seed;
    if (scenario.cross_mbps > 0.0) {
      plan.config.cross_traffic = net::CapacityTrace{scenario.cross_mbps * 1e6};
      plan.config.cross_burstiness = 0.35;
    }
    plan.duration = scenario.duration;
    plan.checkpoint_every = 250ms;
    plan.budget = scenario.budget;

    resilience::ProcessFaultSpec faults = scenario.plan.process;
    if (!faults.any()) {
      // Seed-derived kill point in the middle 60% of the run, so every
      // seed in the matrix dies (and restores) somewhere different.
      const auto span = static_cast<std::uint64_t>(scenario.duration.count());
      const std::uint64_t offset =
          span / 5 + sim::DeriveSeed(seed, 0x6B) % (3 * span / 5);
      faults.kill_at = sim::kEpoch + sim::Duration{static_cast<std::int64_t>(offset)};
    }

    resilience::SupervisorOptions options;
    options.watchdog = false;  // keep matrix workers thread-free
    options.backoff_initial = std::chrono::milliseconds{0};
    resilience::Supervisor supervisor{plan, options};
    const resilience::SupervisedOutcome sup = supervisor.Run(faults);

    out.kills = sup.crashes;
    out.restores = sup.restarts;
    out.survived = sup.completed;
    out.time_monotone = sup.completed;
    out.queues_bounded = true;  // the driver owns and drains its simulator
    out.events_executed = sup.outcome.events_executed;
    out.packets_correlated = sup.outcome.packets_correlated;
    out.digest = sup.outcome.final_digest;
    out.shed_total = sup.outcome.shed.total();
    out.shed_capped = sup.outcome.shed.capped();

    // The determinism oracle: the identical plan, never killed.
    resilience::CheckpointingDriver reference{plan};
    const resilience::RunOutcome ref = reference.Run();
    out.digest_match = sup.completed &&
                       sup.outcome.final_digest == ref.final_digest &&
                       sup.outcome.report_digest == ref.report_digest;

    auto fail = [&](const std::string& why) {
      if (out.failure.empty()) out.failure = why;
    };
    if (!sup.completed) {
      fail(sup.last_error.empty() ? std::string{"supervised run never completed"}
                                  : sup.last_error);
    }
    out.contract_met = sup.completed;
    if (scenario.expect.restore_identical) {
      if (out.kills == 0) fail("kill point never fired");
      if (out.restores == 0) fail("run was never restored from a checkpoint");
      if (!out.digest_match) fail("restored digests diverge from the uninterrupted run");
      out.contract_met = out.contract_met && out.kills > 0 && out.restores > 0 &&
                         out.digest_match;
    }
    if (summarize) out.summary = SummarizePlainRun(scenario, seed);
  } catch (const std::exception& e) {
    out.survived = false;
    out.failure = std::string("exception: ") + e.what();
  } catch (...) {
    out.survived = false;
    out.failure = "unknown exception";
  }
  return out;
}

}  // namespace

ChaosOutcome RunChaosScenario(const ChaosScenario& scenario, std::uint64_t seed,
                              bool summarize) {
  if (scenario.supervised) return RunSupervisedScenario(scenario, seed, summarize);

  ChaosOutcome out;
  out.scenario = scenario.name;
  out.seed = seed;

  try {
    sim::Simulator simulator;
    // A per-run registry so the degradation gauges the correlator and
    // injector publish are inspectable (and so sweep workers never share).
    obs::MetricsRegistry registry;
    obs::ScopedMetrics metrics_scope{&registry};

    app::SessionConfig config;
    config.seed = seed;
    if (scenario.cross_mbps > 0.0) {
      config.cross_traffic = net::CapacityTrace{scenario.cross_mbps * 1e6};
      config.cross_burstiness = 0.35;
    }
    app::Session session{simulator, config};
    session.Run(scenario.duration);

    out.events_executed = simulator.events_executed();
    out.time_monotone =
        simulator.Now() >= sim::kEpoch + scenario.duration && out.events_executed > 0;
    out.queues_bounded = simulator.queue_depth() <= kQueueDepthBound;

    // Impair the recorded feeds exactly as a deployment would see them.
    core::CorrelatorInput input = session.BuildCorrelatorInput();
    FaultInjector injector{scenario.plan, seed};
    injector.Apply(Stream::kTelemetry, input.telemetry);
    injector.Apply(Stream::kSenderCapture, input.sender);
    injector.Apply(Stream::kCoreCapture, input.core);
    injector.Apply(Stream::kReceiverCapture, input.receiver);
    out.faults_injected = injector.stats().total_faults();
    injector.stats().PublishMetrics();

    // Overload governor: bound the impaired input before anything
    // downstream sees it, exactly as the resilient pipeline does.
    if (scenario.budget.any()) {
      const resilience::ShedStats shed = resilience::BoundInput(input, scenario.budget);
      shed.PublishMetrics();
      out.shed_total = shed.total();
      out.shed_capped = shed.capped();
      out.bounded_bytes = resilience::InputBytes(input);
    }

    InputDigest digest;
    digest.Mix(seed);
    digest.Mix(input.telemetry);
    digest.Mix(input.sender);
    digest.Mix(input.core);
    digest.Mix(input.receiver);
    out.digest = digest.value();

    const core::CrossLayerDataset data = core::Correlator::Correlate(input);
    out.health_degraded = data.health.degraded();
    out.telemetry_gaps = data.health.telemetry.gaps;
    out.telemetry_repairs = data.health.telemetry.duplicates_dropped +
                            data.health.telemetry.out_of_order;
    out.uncovered_packets = data.health.uncovered_packets;
    out.unmatched_tb_bytes = data.unmatched_tb_bytes;
    out.mean_match_confidence = data.health.mean_match_confidence;
    out.packets_correlated = data.packets.size();

    // The live engine's verdict on the same impaired evidence.
    obs::live::DetectorBank bank;
    ReplayIntoBank(input, bank);
    if (out.shed_total > 0) {
      bank.OnShed({.t = simulator.Now(),
                   .shed_total = static_cast<double>(out.shed_total),
                   .shed_capped = static_cast<double>(out.shed_capped)});
    }
    out.anomalies_total = bank.anomaly_count();
    out.telemetry_gap_anomalies =
        bank.anomaly_count(obs::live::AnomalyKind::kTelemetryGap);
    out.overload_anomalies = bank.anomaly_count(obs::live::AnomalyKind::kOverload);

    if (summarize) {
      // The fleet digest of what this run observed: the (impaired)
      // correlated dataset, the receiver-side QoE and the live verdicts.
      out.summary = obs::fleet::SummarizeSession({.dataset = &data,
                                                  .qoe = &session.qoe(),
                                                  .detectors = &bank,
                                                  .scenario = scenario.name,
                                                  .seed = seed});
    }

    // Degradation must be *reported*, not just computed: the gauges the
    // rest of the stack scrapes have to agree with the dataset verdict.
    const bool gauges_agree =
        registry.GaugeValue("core.degraded") == (out.health_degraded ? 1.0 : 0.0);

    out.survived = true;

    // --- contract evaluation ---
    const ChaosExpectation& expect = scenario.expect;
    auto fail = [&](const char* why) {
      if (out.failure.empty()) out.failure = why;
    };
    if (!out.time_monotone) fail("virtual time did not reach the configured end");
    if (!out.queues_bounded) fail("event queue not bounded after the run");
    if (!gauges_agree) fail("core.degraded gauge disagrees with the dataset health");

    out.contract_met = gauges_agree;
    if (expect.tolerated) {
      // Hard invariants only.
    } else if (!expect.degraded && !expect.telemetry_gap_anomaly &&
               !expect.telemetry_flagged) {
      // Strict clean contract.
      if (out.faults_injected != 0) fail("clean scenario injected faults");
      if (out.health_degraded) fail("clean run reported degradation");
      if (out.telemetry_gap_anomalies != 0) fail("clean run raised telemetry_gap");
      out.contract_met = out.contract_met && out.faults_injected == 0 &&
                         !out.health_degraded && out.telemetry_gap_anomalies == 0;
    } else {
      if (out.faults_injected == 0) fail("lossy plan injected nothing");
      if (expect.degraded && !out.health_degraded) {
        fail("degradation expected but health reports clean");
      }
      if (expect.telemetry_gap_anomaly && out.telemetry_gap_anomalies == 0) {
        fail("telemetry_gap anomaly expected but the detector stayed silent");
      }
      if (expect.telemetry_flagged && out.telemetry_gaps == 0 &&
          out.telemetry_repairs == 0) {
        fail("telemetry stream expected flagged but shows no gaps/repairs");
      }
      out.contract_met = out.contract_met && out.faults_injected > 0 &&
                         (!expect.degraded || out.health_degraded) &&
                         (!expect.telemetry_gap_anomaly ||
                          out.telemetry_gap_anomalies > 0) &&
                         (!expect.telemetry_flagged || out.telemetry_gaps > 0 ||
                          out.telemetry_repairs > 0);
      if (expect.bounded_memory) {
        const bool fits = scenario.budget.input_bytes == 0 ||
                          out.bounded_bytes <= scenario.budget.input_bytes;
        if (out.shed_total == 0) fail("budget set but the governor shed nothing");
        if (!fits) fail("bounded input still exceeds its byte budget");
        if (out.overload_anomalies == 0) {
          fail("overload detector stayed silent while shedding");
        }
        if (out.packets_correlated == 0) {
          fail("no packets correlated from the bounded input");
        }
        out.contract_met = out.contract_met && out.shed_total > 0 && fits &&
                           out.overload_anomalies > 0 && out.packets_correlated > 0;
      }
      out.silently_degraded = out.faults_injected > 0 && !out.health_degraded &&
                              out.anomalies_total == 0;
      if (out.silently_degraded) fail("faults injected but every signal stayed silent");
    }
  } catch (const std::exception& e) {
    out.survived = false;
    out.failure = std::string("exception: ") + e.what();
  } catch (...) {
    out.survived = false;
    out.failure = "unknown exception";
  }
  return out;
}

ChaosMatrixResult RunChaosMatrix(const std::vector<ChaosScenario>& scenarios,
                                 std::uint64_t base_seed, std::size_t seeds,
                                 unsigned jobs, bool summarize) {
  const std::size_t n = scenarios.size() * seeds;
  const sim::ParallelRunner runner{jobs};
  ChaosMatrixResult result;
  // Each (scenario, seed) cell is a pure function of its index; Map
  // returns index order, so the matrix is identical for any job count.
  result.outcomes = runner.Map<ChaosOutcome>(n, [&](std::size_t i) {
    const ChaosScenario& scenario = scenarios[i / seeds];
    return RunChaosScenario(scenario, sim::DeriveSeed(base_seed, i % seeds), summarize);
  });
  return result;
}

namespace {

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void WriteChaosJson(std::ostream& os, const ChaosMatrixResult& result,
                    std::uint64_t base_seed, std::size_t seeds, unsigned jobs) {
  os << "{\n  \"bench\": \"chaos_matrix\",\n";
  os << "  \"base_seed\": " << base_seed << ",\n";
  os << "  \"seeds\": " << seeds << ",\n";
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"runs\": " << result.outcomes.size() << ",\n";
  os << "  \"failures\": " << result.failures() << ",\n";
  os << "  \"all_ok\": " << (result.all_ok() ? "true" : "false") << ",\n";
  os << "  \"outcomes\": [\n";
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const ChaosOutcome& o = result.outcomes[i];
    os << "    {\"scenario\": ";
    WriteJsonString(os, o.scenario);
    os << ", \"seed\": " << o.seed << ", \"ok\": " << (o.ok() ? "true" : "false")
       << ", \"survived\": " << (o.survived ? "true" : "false")
       << ", \"time_monotone\": " << (o.time_monotone ? "true" : "false")
       << ", \"queues_bounded\": " << (o.queues_bounded ? "true" : "false")
       << ", \"contract_met\": " << (o.contract_met ? "true" : "false")
       << ", \"silently_degraded\": " << (o.silently_degraded ? "true" : "false")
       << ", \"digest\": \"" << std::hex << o.digest << std::dec << "\""
       << ", \"faults_injected\": " << o.faults_injected
       << ", \"health_degraded\": " << (o.health_degraded ? "true" : "false")
       << ", \"telemetry_gaps\": " << o.telemetry_gaps
       << ", \"telemetry_repairs\": " << o.telemetry_repairs
       << ", \"uncovered_packets\": " << o.uncovered_packets
       << ", \"mean_match_confidence\": " << o.mean_match_confidence
       << ", \"anomalies_total\": " << o.anomalies_total
       << ", \"telemetry_gap_anomalies\": " << o.telemetry_gap_anomalies
       << ", \"packets_correlated\": " << o.packets_correlated
       << ", \"events_executed\": " << o.events_executed
       << ", \"kills\": " << o.kills << ", \"restores\": " << o.restores
       << ", \"digest_match\": " << (o.digest_match ? "true" : "false")
       << ", \"shed_total\": " << o.shed_total
       << ", \"shed_capped\": " << o.shed_capped
       << ", \"bounded_bytes\": " << o.bounded_bytes
       << ", \"overload_anomalies\": " << o.overload_anomalies << ", \"failure\": ";
    WriteJsonString(os, o.failure);
    os << "}" << (i + 1 < result.outcomes.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void RenderChaosTable(std::ostream& os, const ChaosMatrixResult& result) {
  for (const ChaosOutcome& o : result.outcomes) {
    os << (o.ok() ? "PASS" : "FAIL") << "  " << o.scenario << " seed=" << o.seed
       << " digest=" << std::hex << o.digest << std::dec
       << " faults=" << o.faults_injected
       << " degraded=" << (o.health_degraded ? "yes" : "no")
       << " gaps=" << o.telemetry_gaps << " repairs=" << o.telemetry_repairs
       << " uncovered=" << o.uncovered_packets << " phantom=" << o.unmatched_tb_bytes
       << " conf=" << o.mean_match_confidence
       << " tele_gap_anoms=" << o.telemetry_gap_anomalies;
    if (o.kills > 0 || o.restores > 0) {
      os << " kills=" << o.kills << " restores=" << o.restores
         << " digest_match=" << (o.digest_match ? "yes" : "NO");
    }
    if (o.shed_total > 0) {
      os << " shed=" << o.shed_total << " capped=" << o.shed_capped
         << " bytes=" << o.bounded_bytes << " overload_anoms=" << o.overload_anomalies;
    }
    if (!o.failure.empty()) os << "  [" << o.failure << "]";
    os << "\n";
  }
  os << (result.all_ok() ? "chaos matrix: all invariants held"
                         : "chaos matrix: INVARIANT VIOLATIONS")
     << " (" << result.outcomes.size() - result.failures() << "/"
     << result.outcomes.size() << " ok)\n";
}

}  // namespace athena::fault
