// The sender's congestion-controller seam. The VCA sender programs against
// this small interface so that GCC, NADA, or the §5.3 PHY-informed
// controller can be swapped without touching the media pipeline.
#pragma once

#include <memory>
#include <span>

#include "cc/gcc.hpp"
#include "cc/l4s.hpp"
#include "cc/nada.hpp"
#include "cc/scream.hpp"
#include "rtp/twcc.hpp"
#include "sim/time.hpp"

namespace athena::app {

class RateController {
 public:
  virtual ~RateController() = default;

  /// Feeds a resolved feedback batch; returns the updated target bitrate.
  virtual double OnFeedback(std::span<const rtp::PacketReport> reports,
                            sim::TimePoint now) = 0;

  /// Called for every outgoing media packet (controllers that track the
  /// send side — e.g. the §5.3 PHY-informed controller — override this).
  virtual void OnPacketSent(const net::Packet& /*p*/, sim::TimePoint /*now*/) {}

  [[nodiscard]] virtual double target_bps() const = 0;
};

/// Google Congestion Control behind the seam.
class GccController final : public RateController {
 public:
  explicit GccController(cc::GoogCc::Config config = {}) : gcc_(config) {}

  double OnFeedback(std::span<const rtp::PacketReport> reports, sim::TimePoint now) override {
    return gcc_.OnFeedback(reports, now);
  }
  [[nodiscard]] double target_bps() const override { return gcc_.target_bps(); }

  [[nodiscard]] cc::GoogCc& gcc() { return gcc_; }
  [[nodiscard]] const cc::GoogCc& gcc() const { return gcc_; }

 private:
  cc::GoogCc gcc_;
};

/// NADA behind the seam (loss fed from GCC-style batch accounting).
class NadaRateController final : public RateController {
 public:
  explicit NadaRateController(cc::NadaController::Config config = {}) : nada_(config) {}

  double OnFeedback(std::span<const rtp::PacketReport> reports, sim::TimePoint now) override {
    loss_.OnBatch(reports.empty() ? 0 : reports.front().transport_seq,
                  reports.empty() ? 0 : reports.back().transport_seq, reports.size());
    return nada_.OnFeedback(reports, loss_.LossFraction(), now);
  }
  [[nodiscard]] double target_bps() const override { return nada_.target_bps(); }

  [[nodiscard]] const cc::NadaController& nada() const { return nada_; }

 private:
  cc::NadaController nada_;
  cc::LossEstimator loss_;
};

/// SCReAM behind the seam.
class ScreamRateController final : public RateController {
 public:
  explicit ScreamRateController(cc::ScreamController::Config config = {}) : scream_(config) {}

  double OnFeedback(std::span<const rtp::PacketReport> reports, sim::TimePoint now) override {
    return scream_.OnFeedback(reports, now);
  }
  [[nodiscard]] double target_bps() const override { return scream_.target_bps(); }

  [[nodiscard]] const cc::ScreamController& scream() const { return scream_; }

 private:
  cc::ScreamController scream_;
};

/// L4S/ECN behind the seam (requires the RAN's marking to be enabled).
class L4sRateController final : public RateController {
 public:
  explicit L4sRateController(cc::L4sController::Config config = {}) : l4s_(config) {}

  double OnFeedback(std::span<const rtp::PacketReport> reports, sim::TimePoint now) override {
    return l4s_.OnFeedback(reports, now);
  }
  [[nodiscard]] double target_bps() const override { return l4s_.target_bps(); }

  [[nodiscard]] const cc::L4sController& l4s() const { return l4s_; }

 private:
  cc::L4sController l4s_;
};

}  // namespace athena::app
