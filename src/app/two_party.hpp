// A full two-party call with the mobile party behind real radio machinery
// in BOTH directions: party A's media climbs the 5G uplink (grants, BSR,
// HARQ — §3), party B's media descends the 5G downlink (dense self-
// scheduled slots — the reason the paper finds downlink delay "low and
// stable"), and A's RTCP feedback shares the uplink RLC queue with A's own
// media (as it does on a real phone).
//
//   A.sender ──① RanUplink  ──②→ WAN → SFU → WAN →④ B.receiver
//   B.sender ──⑤ wired      ──→ SFU → WAN ──⑥ RanDownlink ──⑦→ A.receiver
//
// Both directions are captured and correlable: the uplink with the 5G
// correlator as usual, the downlink with the same byte-conservation
// algorithm against the gNB's transmit telemetry.
#pragma once

#include <memory>

#include "app/receiver.hpp"
#include "app/sender.hpp"
#include "app/sfu.hpp"
#include "core/correlator.hpp"
#include "net/capture.hpp"
#include "net/link.hpp"
#include "ran/downlink_ran.hpp"
#include "ran/uplink.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace athena::app {

struct TwoPartyConfig {
  std::uint64_t seed = 42;
  ran::RanConfig cell = ran::RanConfig::PaperCell();
  ran::ChannelModel::Config channel;
  net::CapacityTrace uplink_cross_traffic;
  net::CapacityTrace downlink_cross_traffic;
  double cross_burstiness = 0.25;
  sim::Duration wan_delay{std::chrono::milliseconds{10}};
  sim::Duration wan_jitter{std::chrono::microseconds{300}};
  sim::Duration wired_party_delay{std::chrono::milliseconds{5}};
  SfuServer::Config sfu;
  VcaSender::Config sender_a;  ///< the mobile party
  VcaSender::Config sender_b;  ///< the wired party
};

class TwoPartySession {
 public:
  TwoPartySession(sim::Simulator& sim, TwoPartyConfig config);
  ~TwoPartySession();

  TwoPartySession(const TwoPartySession&) = delete;
  TwoPartySession& operator=(const TwoPartySession&) = delete;

  void Start();
  void Stop();
  void Run(sim::Duration span);

  // --- the mobile party (A) and the wired party (B) ---
  [[nodiscard]] VcaSender& sender_a() { return *sender_a_; }
  [[nodiscard]] VcaSender& sender_b() { return *sender_b_; }
  [[nodiscard]] VcaReceiver& receiver_a() { return *receiver_a_; }
  [[nodiscard]] VcaReceiver& receiver_b() { return *receiver_b_; }
  [[nodiscard]] media::QoeCollector& qoe_at_a() { return qoe_a_; }
  [[nodiscard]] media::QoeCollector& qoe_at_b() { return qoe_b_; }
  [[nodiscard]] ran::RanUplink& uplink() { return *uplink_; }
  [[nodiscard]] ran::RanDownlink& downlink() { return *downlink_; }

  /// Correlator input for the A→B direction (across the 5G uplink).
  [[nodiscard]] core::CorrelatorInput BuildUplinkCorrelatorInput() const;

  /// Correlator input for the B→A direction (across the 5G downlink).
  /// The same byte-conservation correlator applies — the gNB transmit
  /// queue is FIFO; the returned cell config carries the DL slot period so
  /// root-cause thresholds scale correctly.
  [[nodiscard]] core::CorrelatorInput BuildDownlinkCorrelatorInput() const;

 private:
  sim::Simulator& sim_;
  TwoPartyConfig config_;
  sim::Rng rng_;
  net::PacketIdGenerator ids_;
  media::QoeCollector qoe_a_;  ///< what A sees of B's media
  media::QoeCollector qoe_b_;  ///< what B sees of A's media

  // Capture points.
  std::unique_ptr<net::CapturePoint> cap_a_out_;     // ① A's egress
  std::unique_ptr<net::CapturePoint> cap_core_up_;   // ② after the uplink
  std::unique_ptr<net::CapturePoint> cap_b_in_;      // ④ B's ingress
  std::unique_ptr<net::CapturePoint> cap_b_out_;     // ⑤ B's egress
  std::unique_ptr<net::CapturePoint> cap_core_down_; // ⑥ before the downlink
  std::unique_ptr<net::CapturePoint> cap_a_in_;      // ⑦ A's ingress

  std::unique_ptr<ran::RanUplink> uplink_;
  std::unique_ptr<ran::RanDownlink> downlink_;
  std::unique_ptr<net::FixedDelayLink> wan_up_;
  std::unique_ptr<net::FixedDelayLink> wan_b_;
  std::unique_ptr<net::FixedDelayLink> wired_b_;
  std::unique_ptr<net::FixedDelayLink> wan_down_;
  std::unique_ptr<SfuServer> sfu_ab_;
  std::unique_ptr<SfuServer> sfu_ba_;
  std::unique_ptr<net::FixedDelayLink> feedback_to_b_;

  std::unique_ptr<VcaSender> sender_a_;
  std::unique_ptr<VcaSender> sender_b_;
  std::unique_ptr<VcaReceiver> receiver_a_;
  std::unique_ptr<VcaReceiver> receiver_b_;

  bool running_ = false;
};

}  // namespace athena::app
