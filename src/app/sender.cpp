#include "app/sender.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace athena::app {

VcaSender::VcaSender(sim::Simulator& sim, Config config,
                     std::unique_ptr<RateController> controller, net::PacketIdGenerator& ids,
                     sim::Rng rng)
    : sim_(sim),
      config_(config),
      controller_(std::move(controller)),
      video_encoder_(config.video, rng.Fork()),
      audio_encoder_(config.audio),
      adaptation_(video_encoder_, config.adaptation),
      video_packetizer_(rtp::Packetizer::Config{.ssrc = config.video_ssrc,
                                                .flow = config.flow},
                        ids, transport_seq_),
      audio_packetizer_(rtp::Packetizer::Config{.ssrc = config.audio_ssrc,
                                                .flow = config.flow},
                        ids, transport_seq_),
      rtx_cache_(config.rtx_cache_packets),
      ids_(ids),
      audio_timer_(sim, config.audio.sample_interval, [this] { OnAudioTick(); }) {
  if (config_.pacing_enabled) {
    pacer_ = std::make_unique<Pacer>(sim_, config_.pacer);
    pacer_->set_target_bitrate(config_.video.initial_bitrate_bps);
    pacer_->set_sink([this](const net::Packet& p) {
      if (outbound_) outbound_(p);
    });
  }
}

void VcaSender::Start() {
  if (running_) return;
  running_ = true;
  audio_timer_.Start(sim::Duration{0});
  timer_mode_ = video_encoder_.mode();
  video_timer_ = sim_.ScheduleAfter(sim::Duration{0}, [this] { OnVideoTick(); });
}

void VcaSender::Stop() {
  running_ = false;
  audio_timer_.Stop();
  sim_.Cancel(video_timer_);
}

void VcaSender::OnVideoTick() {
  if (!running_) return;
  if (const auto unit = video_encoder_.EncodeNextFrame(sim_.Now())) {
    SendUnit(*unit, video_packetizer_);
  }
  RescheduleVideoTimer();
}

void VcaSender::RescheduleVideoTimer() {
  // The frame interval follows the adaptation FSM's current mode.
  timer_mode_ = video_encoder_.mode();
  video_timer_ = sim_.ScheduleAfter(video_encoder_.frame_interval(), [this] { OnVideoTick(); });
}

void VcaSender::OnAudioTick() {
  if (!running_) return;
  SendUnit(audio_encoder_.EncodeNextSample(sim_.Now()), audio_packetizer_);
}

void VcaSender::SendUnit(const media::EncodedUnit& unit, rtp::Packetizer& packetizer) {
  if (qoe_) qoe_->OnUnitSent(unit);
  const auto packets = packetizer.Packetize(unit.unit, sim_.Now());
  obs::TraceInstant(obs::Layer::kApp,
                    unit.unit.is_audio ? obs::names::kAudioEncoded : obs::names::kFrameEncoded, sim_.Now(),
                    {{"frame", static_cast<double>(unit.unit.frame_id)},
                     {"bytes", static_cast<double>(unit.unit.payload_bytes)},
                     {"packets", static_cast<double>(packets.size())}});
  for (const auto& p : packets) {
    twcc_.OnPacketSent(p, sim_.Now());
    controller_->OnPacketSent(p, sim_.Now());
    if (config_.nack_enabled) rtx_cache_.Insert(p);
    ++media_packets_sent_;
    if (pacer_) {
      pacer_->Send(p);
    } else if (outbound_) {
      outbound_(p);
    }
  }
  static thread_local obs::CachedCounter counter_media_packets_sent{"app.media_packets_sent"};
  counter_media_packets_sent.Inc(packets.size());
}

void VcaSender::OnFeedbackPacket(const net::Packet& p) {
  if (p.nack && config_.nack_enabled) {
    // RFC 4585: resend the requested packets from the cache. The
    // retransmission is a fresh transmission for the transport: new packet
    // id and transport-wide sequence number, same RTP identity.
    for (const auto seq : p.nack->seqs) {
      const net::Packet* cached = rtx_cache_.Find(p.nack->ssrc, seq);
      if (cached == nullptr) continue;  // evicted: the receiver gives up
      net::Packet rtx = *cached;
      rtx.id = ids_.Next();
      rtx.created_at = sim_.Now();
      rtx.rtp->transport_seq = transport_seq_.Next();
      twcc_.OnPacketSent(rtx, sim_.Now());
      controller_->OnPacketSent(rtx, sim_.Now());
      ++retransmissions_;
      static thread_local obs::CachedCounter counter_retransmissions{"app.retransmissions"};
      counter_retransmissions.Inc();
      obs::TraceInstant(obs::Layer::kApp, obs::names::kRtxSent, sim_.Now(),
                        {{"seq", static_cast<double>(seq)}});
      if (outbound_) outbound_(rtx);
    }
  }
  if (!p.feedback) return;
  ++feedback_received_;
  static thread_local obs::CachedCounter counter_feedback_received{"app.feedback_received"};
  counter_feedback_received.Inc();
  const auto reports = twcc_.OnFeedback(p);
  if (reports.empty()) return;

  const double target = controller_->OnFeedback(reports, sim_.Now());
  if (config_.adaptation_enabled) adaptation_.OnFeedback(reports, sim_.Now());

  const double video_target = std::max(target - config_.audio_reserve_bps, 50e3);
  video_encoder_.set_target_bitrate(video_target);
  if (pacer_) pacer_->set_target_bitrate(target);
}

}  // namespace athena::app
