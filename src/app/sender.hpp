// The VCA sender: camera/microphone → encoders → packetizers → network,
// with congestion control and Zoom-style adaptation in the loop. Media
// units go out as RTP bursts (§2: frames "are sent in bursts"); TWCC
// feedback returns through OnFeedbackPacket and drives both the rate
// controller and the adaptation FSM.
#pragma once

#include <cstdint>
#include <memory>

#include "app/adaptation.hpp"
#include "app/controller.hpp"
#include "app/pacer.hpp"
#include "media/encoder.hpp"
#include "media/qoe.hpp"
#include "net/packet.hpp"
#include "rtp/nack.hpp"
#include "rtp/packetizer.hpp"
#include "rtp/twcc.hpp"
#include "sim/simulator.hpp"

namespace athena::app {

class VcaSender {
 public:
  struct Config {
    media::VideoEncoder::Config video;
    media::AudioEncoder::Config audio;
    ZoomAdaptation::Config adaptation;
    bool adaptation_enabled = true;
    std::uint32_t video_ssrc = 0x10;
    std::uint32_t audio_ssrc = 0x20;
    net::FlowId flow = 1;
    /// Reserved for audio + headers when splitting the CC target.
    double audio_reserve_bps = 80e3;
    /// RFC 4585 NACK handling: retransmit cached packets on request.
    bool nack_enabled = true;
    std::size_t rtx_cache_packets = 2048;
    /// Paced sending instead of per-frame bursts (see app/pacer.hpp).
    bool pacing_enabled = false;
    Pacer::Config pacer;
  };

  VcaSender(sim::Simulator& sim, Config config, std::unique_ptr<RateController> controller,
            net::PacketIdGenerator& ids, sim::Rng rng);

  /// Starts the capture clocks.
  void Start();
  void Stop();

  /// Media packets leave through this handler (towards capture point ①).
  void set_outbound(net::PacketHandler h) { outbound_ = std::move(h); }

  /// Wire the feedback return path here.
  void OnFeedbackPacket(const net::Packet& p);
  [[nodiscard]] net::PacketHandler FeedbackHandler() {
    return [this](const net::Packet& p) { OnFeedbackPacket(p); };
  }

  /// Optional: QoE collector registering every encoded unit.
  void set_qoe(media::QoeCollector* qoe) { qoe_ = qoe; }

  [[nodiscard]] RateController& controller() { return *controller_; }
  [[nodiscard]] const RateController& controller() const { return *controller_; }
  [[nodiscard]] media::VideoEncoder& video_encoder() { return video_encoder_; }
  [[nodiscard]] ZoomAdaptation& adaptation() { return adaptation_; }
  [[nodiscard]] std::uint64_t media_packets_sent() const { return media_packets_sent_; }
  [[nodiscard]] std::uint64_t feedback_received() const { return feedback_received_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] Pacer* pacer() { return pacer_.get(); }

 private:
  void OnVideoTick();
  void OnAudioTick();
  void SendUnit(const media::EncodedUnit& unit, rtp::Packetizer& packetizer);
  void RescheduleVideoTimer();

  sim::Simulator& sim_;
  Config config_;
  std::unique_ptr<RateController> controller_;
  media::VideoEncoder video_encoder_;
  media::AudioEncoder audio_encoder_;
  ZoomAdaptation adaptation_;
  rtp::TransportSequencer transport_seq_;
  rtp::Packetizer video_packetizer_;
  rtp::Packetizer audio_packetizer_;
  rtp::TwccSender twcc_;
  rtp::RtxCache rtx_cache_;
  net::PacketIdGenerator& ids_;
  std::unique_ptr<Pacer> pacer_;
  net::PacketHandler outbound_;
  media::QoeCollector* qoe_ = nullptr;

  sim::PeriodicTimer audio_timer_;
  sim::EventHandle video_timer_;
  bool running_ = false;
  media::SvcMode timer_mode_ = media::SvcMode::kHighFps28;
  std::uint64_t media_packets_sent_ = 0;
  std::uint64_t feedback_received_ = 0;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace athena::app
