// Zoom's frame-rate adaptation, as reverse-engineered in §2 ("How Zoom
// Adapts", Fig. 8) and confirmed by Zoom engineers:
//
//   - Very high absolute delay (above ~1 s): switch the SVC ladder to the
//     14 fps mode (base 7 + low-FPS enhancement) and stay there for a
//     while — the "more permanent" frame-rate reduction.
//   - High jitter: transiently skip enhancement frames, dropping the
//     effective rate to around 20 fps without changing the ladder.
//
// The FSM observes delay/jitter through the congestion feedback reports
// (relative one-way delay against the running minimum, so clock offsets
// cancel) and drives the VideoEncoder's mode and skip fraction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "media/encoder.hpp"
#include "rtp/twcc.hpp"
#include "sim/time.hpp"
#include "stats/timeseries.hpp"

namespace athena::app {

class ZoomAdaptation {
 public:
  struct Config {
    double delay_ewma_alpha = 0.1;
    double jitter_ewma_alpha = 0.1;
    /// Relative OWD above this switches to the 14 fps ladder (§2: "reacts
    /// to very high absolute delay (above one second)").
    sim::Duration high_delay_threshold{std::chrono::seconds{1}};
    /// Smoothed delay must stay below this to recover the 28 fps ladder...
    sim::Duration recover_delay_threshold{std::chrono::milliseconds{150}};
    /// ...for at least this long (the "more permanently" part).
    sim::Duration recover_hold{std::chrono::seconds{30}};
    /// Jitter (EWMA of |ΔOWD|) above this triggers transient skipping.
    sim::Duration high_jitter_threshold{std::chrono::milliseconds{12}};
    sim::Duration low_jitter_threshold{std::chrono::milliseconds{6}};
    /// Skip fraction while jittery: 28 fps → ~20 fps effective.
    double skip_fraction_when_jittery = 0.55;
  };

  explicit ZoomAdaptation(media::VideoEncoder& encoder);  // default config
  ZoomAdaptation(media::VideoEncoder& encoder, Config config)
      : encoder_(encoder), config_(config) {}

  /// Feed every resolved feedback batch.
  void OnFeedback(std::span<const rtp::PacketReport> reports, sim::TimePoint now);

  [[nodiscard]] media::SvcMode mode() const { return encoder_.mode(); }
  [[nodiscard]] sim::Duration smoothed_delay() const {
    return sim::Duration{static_cast<std::int64_t>(delay_ewma_us_)};
  }
  [[nodiscard]] sim::Duration smoothed_jitter() const {
    return sim::Duration{static_cast<std::int64_t>(jitter_ewma_us_)};
  }
  [[nodiscard]] bool skipping() const { return skipping_; }
  [[nodiscard]] std::uint64_t mode_downgrades() const { return downgrades_; }
  [[nodiscard]] std::uint64_t mode_recoveries() const { return recoveries_; }

  /// Time series of the FSM's view, for Fig. 8: (t, smoothed delay ms) and
  /// (t, effective target fps).
  [[nodiscard]] const stats::TimeSeries& delay_log() const { return delay_log_; }
  [[nodiscard]] const stats::TimeSeries& fps_log() const { return fps_log_; }

 private:
  void Apply(sim::TimePoint now);

  media::VideoEncoder& encoder_;
  Config config_;

  bool have_min_ = false;
  double min_owd_us_ = 0.0;
  bool have_ewma_ = false;
  double delay_ewma_us_ = 0.0;
  double jitter_ewma_us_ = 0.0;
  double prev_owd_us_ = 0.0;
  bool have_prev_owd_ = false;

  bool skipping_ = false;
  bool low_fps_locked_ = false;
  bool recovery_pending_ = false;
  sim::TimePoint recovery_start_;
  std::uint64_t downgrades_ = 0;
  std::uint64_t recoveries_ = 0;

  stats::TimeSeries delay_log_;
  stats::TimeSeries fps_log_;
};

inline ZoomAdaptation::ZoomAdaptation(media::VideoEncoder& encoder)
    : ZoomAdaptation(encoder, Config{}) {}

}  // namespace athena::app
