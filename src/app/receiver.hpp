// The receiving VCA endpoint: jitter buffers (separate for video and
// audio, as real VCAs keep independent playout clocks), TWCC feedback
// generation, the virtual screen + 70 fps capture, and QoE collection.
#pragma once

#include <cstdint>

#include "media/jitter_buffer.hpp"
#include "media/qoe.hpp"
#include "media/screen_capture.hpp"
#include "net/packet.hpp"
#include "rtp/nack.hpp"
#include "rtp/twcc.hpp"
#include "sim/simulator.hpp"

namespace athena::app {

class VcaReceiver {
 public:
  struct Config {
    media::JitterBuffer::Config video_jb;
    media::JitterBuffer::Config audio_jb;
    rtp::TwccReceiver::Config twcc;
    media::ScreenCapture::Config screen;
    rtp::NackGenerator::Config nack;
    bool nack_enabled = true;
  };

  VcaReceiver(sim::Simulator& sim, Config config, net::PacketIdGenerator& ids,
              media::QoeCollector& qoe);

  void Start();
  void Stop();

  /// Feed every packet that arrives at the receiver host.
  void OnPacket(const net::Packet& p);
  [[nodiscard]] net::PacketHandler AsHandler() {
    return [this](const net::Packet& p) { OnPacket(p); };
  }

  /// RTCP feedback (TWCC reports and NACKs) goes back through this path.
  void set_feedback_path(net::PacketHandler h) {
    twcc_.set_feedback_path(h);
    nack_.set_feedback_path(std::move(h));
  }

  [[nodiscard]] media::JitterBuffer& video_jitter_buffer() { return video_jb_; }
  [[nodiscard]] media::JitterBuffer& audio_jitter_buffer() { return audio_jb_; }
  [[nodiscard]] media::ScreenCapture& screen() { return screen_; }
  [[nodiscard]] media::QoeCollector& qoe() { return qoe_; }
  [[nodiscard]] rtp::NackGenerator& nack_generator() { return nack_; }
  [[nodiscard]] std::uint64_t packets_received() const { return packets_received_; }

  /// Default configuration with the audio jitter buffer on the 48 kHz clock.
  [[nodiscard]] static Config DefaultConfig();

 private:
  sim::Simulator& sim_;
  media::QoeCollector& qoe_;
  media::JitterBuffer video_jb_;
  media::JitterBuffer audio_jb_;
  rtp::TwccReceiver twcc_;
  rtp::NackGenerator nack_;
  bool nack_enabled_ = true;
  media::ScreenCapture screen_;
  std::uint64_t packets_received_ = 0;
};

}  // namespace athena::app
