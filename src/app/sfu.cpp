#include "app/sfu.hpp"

#include <algorithm>
#include <cmath>

namespace athena::app {

void SfuServer::OnPacket(const net::Packet& p) {
  double proc_ms = rng_.LogNormal(std::log(config_.proc_median_ms), config_.proc_sigma);
  if (rng_.Bernoulli(config_.spike_probability)) {
    proc_ms += rng_.Uniform(config_.spike_ms_min, config_.spike_ms_max);
  }
  sim::TimePoint out_at = sim_.Now() + sim::FromMs(proc_ms);
  out_at = std::max(out_at, last_out_);  // the worker drains its queue FIFO
  last_out_ = out_at;
  sim_.ScheduleAt(out_at, [this, p] {
    ++forwarded_;
    if (forward_) forward_(p);
  });
}

}  // namespace athena::app
