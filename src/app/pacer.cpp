#include "app/pacer.hpp"

#include <algorithm>
#include <cmath>

#include "sim/check.hpp"

namespace athena::app {

Pacer::Pacer(sim::Simulator& sim, Config config)
    : sim_(sim), config_(config), pacing_rate_bps_(config.min_rate_bps) {}

void Pacer::set_target_bitrate(double bps) {
  last_target_bps_ = bps;
  pacing_rate_bps_ = std::max(config_.min_rate_bps, bps * config_.rate_factor);
}

void Pacer::set_enabled(bool enabled) {
  if (enabled_ == enabled) return;
  enabled_ = enabled;
  if (!enabled_) {
    // Flush synchronously: a revert to un-paced sending must not strand
    // queued media behind a timer that would now never fire usefully.
    while (!queue_.empty()) {
      const net::Packet p = queue_.front();
      queue_.pop_front();
      ++sent_;
      if (sink_) sink_(p);
    }
  }
}

void Pacer::set_rate_factor(double factor) {
  ATHENA_CHECK(std::isfinite(factor) && factor > 0.0,
               "Pacer::set_rate_factor: factor must be finite and positive");
  config_.rate_factor = std::clamp(factor, 1.0, 8.0);
  if (last_target_bps_ > 0.0) set_target_bitrate(last_target_bps_);
}

void Pacer::Send(const net::Packet& p) {
  if (!enabled_) {
    ++sent_;
    if (sink_) sink_(p);
    return;
  }
  if (queue_.size() >= config_.max_queue_packets) {
    ++dropped_;
    return;
  }
  queue_.push_back(p);
  MaybeSchedule();
}

void Pacer::MaybeSchedule() {
  if (armed_ || queue_.empty()) return;
  armed_ = true;
  const sim::TimePoint at = std::max(next_send_, sim_.Now());
  sim_.ScheduleAt(at, [this] { SendHead(); });
}

void Pacer::SendHead() {
  armed_ = false;
  if (queue_.empty()) return;
  const net::Packet p = queue_.front();
  queue_.pop_front();
  ++sent_;
  // The bucket drains at the pacing rate: the next packet may leave after
  // this one's serialization budget elapses.
  const double interval_s = static_cast<double>(p.size_bytes) * 8.0 / pacing_rate_bps_;
  next_send_ = sim_.Now() + sim::FromSeconds(interval_s);
  if (sink_) sink_(p);
  MaybeSchedule();
}

}  // namespace athena::app
