#include "app/session.hpp"

#include "core/clock_sync.hpp"

namespace athena::app {

namespace {

std::unique_ptr<RateController> MakeController(const SessionConfig& config) {
  if (config.controller_factory) return config.controller_factory();
  switch (config.controller) {
    case SessionConfig::Controller::kNada:
      return std::make_unique<NadaRateController>(config.nada);
    case SessionConfig::Controller::kScream:
      return std::make_unique<ScreamRateController>(config.scream);
    case SessionConfig::Controller::kL4s:
      return std::make_unique<L4sRateController>(config.l4s);
    case SessionConfig::Controller::kGcc:
      break;
  }
  return std::make_unique<GccController>(config.gcc);
}

}  // namespace

Session::Session(sim::Simulator& sim, SessionConfig config)
    : sim_(sim), config_(std::move(config)), rng_(config_.seed) {
  // The L4S controller needs the modem's marker; default it on when the
  // user picked L4S but left the threshold unset. The threshold sits
  // *above* the predictable scheduling artifacts (one BSR cycle ≈
  // 12.5 ms) so that the §3.1 delay spreads do not read as congestion —
  // §5.3's open question ("how should control of the accelerate-brake
  // signal be defined in the presence of … predictable delay spikes and
  // spreads?") answered the RAN-aware way.
  if (config_.controller == SessionConfig::Controller::kL4s &&
      config_.cell.ecn_marking_threshold.count() == 0) {
    config_.cell.ecn_marking_threshold =
        config_.cell.bsr_scheduling_delay + 2 * config_.cell.ul_slot_period;
  }
  // --- capture points with their hosts' clocks ---
  cap_sender_ = std::make_unique<net::CapturePoint>(
      sim_, "sender",
      net::HostClock{config_.sender_clock_offset, config_.sender_clock_drift_ppm});
  cap_core_ = std::make_unique<net::CapturePoint>(sim_, "core");  // reference clock
  cap_sfu_in_ = std::make_unique<net::CapturePoint>(sim_, "sfu-in");
  cap_sfu_out_ = std::make_unique<net::CapturePoint>(sim_, "sfu-out");
  cap_receiver_ = std::make_unique<net::CapturePoint>(
      sim_, "receiver", net::HostClock{config_.receiver_clock_offset, 0.0});

  // --- access network ---
  if (config_.access == SessionConfig::Access::k5G) {
    ran::CrossTraffic::Config cross_config;
    cross_config.demand = config_.cross_traffic;
    cross_config.burstiness = config_.cross_burstiness;
    cross_config.modulation_sigma = config_.cross_modulation_sigma;
    ran::CrossTraffic cross{cross_config, rng_.Fork()};
    auto policy = config_.grant_policy ? config_.grant_policy(config_.cell) : nullptr;
    ran_uplink_ = std::make_unique<ran::RanUplink>(
        sim_, config_.cell, ran::ChannelModel{config_.channel, rng_.Fork()},
        std::move(cross), std::move(policy));
    downlink_ = std::make_unique<ran::DownlinkPath>(
        ran::DownlinkPath::ForCell(sim_, config_.cell, rng_.Fork()));
  } else if (config_.access == SessionConfig::Access::kWifiLike) {
    wifi_uplink_ = std::make_unique<net::WifiLikeLink>(sim_, config_.wifi, rng_.Fork());
    wifi_downlink_ = std::make_unique<net::WifiLikeLink>(sim_, config_.wifi, rng_.Fork());
  } else if (config_.access == SessionConfig::Access::kLeoSat) {
    leo_uplink_ = std::make_unique<net::LeoSatLink>(sim_, config_.leo);
    leo_downlink_ = std::make_unique<net::LeoSatLink>(sim_, config_.leo);
  } else {
    emulated_uplink_ = std::make_unique<net::RateLimitedLink>(
        sim_, net::RateLimitedLink::Config{
                  .capacity = config_.emulated_capacity,
                  .propagation = config_.emulated_latency,
                  .max_queue_packets = 2000,
              });
    emulated_downlink_ = std::make_unique<net::FixedDelayLink>(
        sim_, net::FixedDelayLink::Config{.delay = config_.emulated_latency}, rng_.Fork());
  }

  // --- WAN and SFU ---
  wan_to_sfu_ = std::make_unique<net::FixedDelayLink>(
      sim_, net::FixedDelayLink::Config{.delay = config_.wan_delay,
                                        .jitter_stddev = config_.wan_jitter},
      rng_.Fork());
  wan_to_receiver_ = std::make_unique<net::FixedDelayLink>(
      sim_, net::FixedDelayLink::Config{.delay = config_.wan_delay,
                                        .jitter_stddev = config_.wan_jitter},
      rng_.Fork());
  sfu_ = std::make_unique<SfuServer>(sim_, config_.sfu, rng_.Fork());

  // --- feedback return path (receiver → SFU → core → downlink → sender) ---
  feedback_wan_ = std::make_unique<net::FixedDelayLink>(
      sim_, net::FixedDelayLink::Config{.delay = config_.wan_delay + config_.wan_delay,
                                        .jitter_stddev = config_.wan_jitter},
      rng_.Fork());

  // --- ICMP probing from the core towards the SFU ---
  if (config_.icmp_enabled) {
    icmp_prober_ = std::make_unique<net::IcmpProber>(
        sim_, net::IcmpProber::Config{.interval = config_.icmp_interval}, ids_);
    icmp_responder_ = std::make_unique<net::IcmpResponder>(sim_);
    icmp_out_ = std::make_unique<net::FixedDelayLink>(
        sim_, net::FixedDelayLink::Config{.delay = config_.wan_delay,
                                          .jitter_stddev = config_.wan_jitter},
        rng_.Fork());
    icmp_back_ = std::make_unique<net::FixedDelayLink>(
        sim_, net::FixedDelayLink::Config{.delay = config_.wan_delay,
                                          .jitter_stddev = config_.wan_jitter},
        rng_.Fork());
  }

  // --- endpoints ---
  sender_ = std::make_unique<VcaSender>(sim_, config_.sender, MakeController(config_), ids_,
                                        rng_.Fork());
  sender_->set_qoe(&qoe_);
  receiver_ = std::make_unique<VcaReceiver>(sim_, config_.receiver, ids_, qoe_);

  WireMediaPath();
}

Session::~Session() { Stop(); }

void Session::WireMediaPath() {
  // Uplink: sender → ① → access → ② → WAN → ③ → SFU → ③* → WAN → ④ → receiver.
  sender_->set_outbound(cap_sender_->AsHandler());
  if (ran_uplink_) {
    cap_sender_->set_sink(ran_uplink_->AsHandler());
    ran_uplink_->set_core_sink(cap_core_->AsHandler());
  } else if (wifi_uplink_) {
    cap_sender_->set_sink(wifi_uplink_->AsHandler());
    wifi_uplink_->set_sink(cap_core_->AsHandler());
  } else if (leo_uplink_) {
    cap_sender_->set_sink(leo_uplink_->AsHandler());
    leo_uplink_->set_sink(cap_core_->AsHandler());
  } else {
    cap_sender_->set_sink(emulated_uplink_->AsHandler());
    emulated_uplink_->set_sink(cap_core_->AsHandler());
  }
  cap_core_->set_sink(wan_to_sfu_->AsHandler());
  wan_to_sfu_->set_sink(cap_sfu_in_->AsHandler());

  // The SFU host demultiplexes: ICMP echoes are reflected in the kernel
  // (no app-layer processing — the point of the Fig. 3 comparison);
  // media goes through the SFU process.
  cap_sfu_in_->set_sink([this](const net::Packet& p) {
    if (p.kind == net::PacketKind::kIcmpEcho) {
      if (icmp_responder_) icmp_responder_->OnPacket(p);
      return;
    }
    sfu_->OnPacket(p);
  });
  sfu_->set_forward_path(cap_sfu_out_->AsHandler());
  cap_sfu_out_->set_sink(wan_to_receiver_->AsHandler());
  wan_to_receiver_->set_sink(cap_receiver_->AsHandler());
  cap_receiver_->set_sink(receiver_->AsHandler());

  // Feedback: receiver → WAN (through the SFU region) → core → downlink.
  receiver_->set_feedback_path(feedback_wan_->AsHandler());
  if (downlink_) {
    feedback_wan_->set_sink(downlink_->AsHandler());
    downlink_->set_ue_sink(sender_->FeedbackHandler());
  } else if (wifi_downlink_) {
    feedback_wan_->set_sink(wifi_downlink_->AsHandler());
    wifi_downlink_->set_sink(sender_->FeedbackHandler());
  } else if (leo_downlink_) {
    feedback_wan_->set_sink(leo_downlink_->AsHandler());
    leo_downlink_->set_sink(sender_->FeedbackHandler());
  } else {
    feedback_wan_->set_sink(emulated_downlink_->AsHandler());
    emulated_downlink_->set_sink(sender_->FeedbackHandler());
  }

  // ICMP: core → WAN → SFU kernel → WAN → core.
  if (icmp_prober_) {
    icmp_prober_->set_outbound(icmp_out_->AsHandler());
    icmp_out_->set_sink(cap_sfu_in_->AsHandler());
    icmp_responder_->set_return_path(icmp_back_->AsHandler());
    icmp_back_->set_sink([this](const net::Packet& p) { icmp_prober_->OnReply(p); });
  }
}

void Session::Start() {
  if (running_) return;
  running_ = true;
  if (ran_uplink_) ran_uplink_->Start();
  receiver_->Start();
  sender_->Start();
  if (icmp_prober_) icmp_prober_->Start();
}

void Session::Stop() {
  if (!running_) return;
  running_ = false;
  sender_->Stop();
  receiver_->Stop();
  if (icmp_prober_) icmp_prober_->Stop();
  if (ran_uplink_) ran_uplink_->Stop();
}

void Session::Run(sim::Duration span) {
  Start();
  sim_.RunFor(span);
  Stop();
}

core::WifiCorrelatorInput Session::BuildWifiCorrelatorInput() const {
  core::WifiCorrelatorInput input;
  input.sender = cap_sender_->records();
  input.egress = cap_core_->records();
  if (wifi_uplink_) input.telemetry = wifi_uplink_->telemetry();
  const auto pairs =
      core::ClockSync::JoinCaptures(cap_sender_->records(), cap_core_->records());
  if (const auto off = core::ClockSync::OffsetFromMinOwd(pairs, config_.wifi.min_backoff)) {
    input.sender_offset = *off;
  }
  return input;
}

core::CorrelatorInput Session::BuildCorrelatorInput() const {
  core::CorrelatorInput input;
  input.sender = cap_sender_->records();
  input.core = cap_core_->records();
  input.receiver = cap_receiver_->records();
  if (ran_uplink_) input.telemetry = ran_uplink_->telemetry();
  input.cell = config_.cell;

  // Clock-offset estimation, as the measurement pipeline would do it:
  // min-filter the observed OWD against the known wired floor of each path.
  const auto sender_pairs =
      core::ClockSync::JoinCaptures(cap_sender_->records(), cap_core_->records());
  sim::Duration uplink_floor = config_.emulated_latency;
  switch (config_.access) {
    case SessionConfig::Access::k5G:
      uplink_floor = config_.cell.ue_processing_delay + config_.cell.gnb_to_core_delay;
      break;
    case SessionConfig::Access::kWifiLike:
      uplink_floor = config_.wifi.min_backoff;
      break;
    case SessionConfig::Access::kLeoSat:
      uplink_floor = config_.leo.base_propagation;
      break;
    case SessionConfig::Access::kEmulated:
      break;
  }
  if (const auto off = core::ClockSync::OffsetFromMinOwd(sender_pairs, uplink_floor)) {
    // `off` is the core clock relative to the sender clock; adding it to a
    // sender timestamp lands on the core (common) clock.
    input.sender_offset = *off;
  }

  const auto recv_pairs =
      core::ClockSync::JoinCaptures(cap_core_->records(), cap_receiver_->records());
  const sim::Duration wan_floor =
      config_.wan_delay + config_.wan_delay + sim::FromMs(config_.sfu.proc_median_ms * 0.5);
  if (const auto off = core::ClockSync::OffsetFromMinOwd(recv_pairs, wan_floor)) {
    // Here `off` is the receiver clock relative to the core clock, so it
    // is *subtracted* to land receiver timestamps on the core clock.
    input.receiver_offset = sim::Duration{-off->count()};
  }
  return input;
}

}  // namespace athena::app
