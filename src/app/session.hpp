// The complete measurement testbed of Fig. 2 wired together:
//
//   sender ──①──> [5G uplink | emulated wire] ──②──> WAN ──③──> SFU
//        ──③*──> WAN ──④──> receiver,
//
// with TWCC feedback returning over the WAN + 5G downlink, ICMP probes
// from the core to the SFU every 20 ms, per-host clocks with NTP-residual
// offsets, and capture points at ①②③③*④. A Session is the one-stop
// entry point for examples, tests and every bench binary.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "app/receiver.hpp"
#include "app/sender.hpp"
#include "app/sfu.hpp"
#include "core/correlator.hpp"
#include "core/wifi_correlator.hpp"
#include "net/capture.hpp"
#include "net/icmp.hpp"
#include "net/link.hpp"
#include "net/wireless_links.hpp"
#include "ran/downlink.hpp"
#include "ran/uplink.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace athena::app {

struct SessionConfig {
  std::uint64_t seed = 42;

  /// Access network under test: the 5G RAN model, the Fig. 7 wired
  /// baseline (fixed latency, rate replayed from a capacity trace), or the
  /// §5.1 alternative wireless technologies.
  enum class Access { k5G, kEmulated, kWifiLike, kLeoSat };
  Access access = Access::k5G;

  // --- 5G access ---
  ran::RanConfig cell = ran::RanConfig::PaperCell();
  ran::ChannelModel::Config channel;
  net::CapacityTrace cross_traffic;  ///< empty/0 = idle cell
  double cross_burstiness = 0.25;
  double cross_modulation_sigma = 0.0;  ///< slow (250 ms) demand wander
  /// Optional custom grant policy (§5.2 mitigations); null = BSR baseline.
  std::function<std::unique_ptr<ran::GrantPolicy>(const ran::RanConfig&)> grant_policy;

  // --- emulated access (Fig. 7 baseline) ---
  net::CapacityTrace emulated_capacity{net::CapacityTrace{8e6}};
  sim::Duration emulated_latency{std::chrono::milliseconds{15}};

  // --- alternative wireless access (§5.1) ---
  net::WifiLikeLink::Config wifi;
  net::LeoSatLink::Config leo;

  // --- WAN + server ---
  sim::Duration wan_delay{std::chrono::milliseconds{10}};
  sim::Duration wan_jitter{std::chrono::microseconds{300}};
  SfuServer::Config sfu;

  // --- endpoints ---
  VcaSender::Config sender;
  VcaReceiver::Config receiver = VcaReceiver::DefaultConfig();
  enum class Controller { kGcc, kNada, kScream, kL4s };
  Controller controller = Controller::kGcc;
  cc::GoogCc::Config gcc;
  cc::NadaController::Config nada;
  cc::ScreamController::Config scream;
  cc::L4sController::Config l4s;
  /// Override the controller entirely (takes precedence; §5.3 mitigation).
  std::function<std::unique_ptr<RateController>()> controller_factory;

  bool icmp_enabled = true;
  sim::Duration icmp_interval{std::chrono::milliseconds{20}};

  // --- NTP-residual clock offsets (relative to the core's clock) ---
  sim::Duration sender_clock_offset{std::chrono::microseconds{1500}};
  double sender_clock_drift_ppm = 0.0;
  sim::Duration receiver_clock_offset{std::chrono::microseconds{-2100}};
};

class Session {
 public:
  Session(sim::Simulator& sim, SessionConfig config);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Starts all components; the caller then advances the simulator.
  void Start();
  void Stop();

  /// Convenience: Start, run for `span`, Stop.
  void Run(sim::Duration span);

  // --- component access ---
  [[nodiscard]] VcaSender& sender() { return *sender_; }
  [[nodiscard]] VcaReceiver& receiver() { return *receiver_; }
  [[nodiscard]] media::QoeCollector& qoe() { return qoe_; }
  [[nodiscard]] ran::RanUplink* ran_uplink() { return ran_uplink_.get(); }
  [[nodiscard]] const ran::RanUplink* ran_uplink() const { return ran_uplink_.get(); }
  [[nodiscard]] net::IcmpProber* icmp_prober() { return icmp_prober_.get(); }
  [[nodiscard]] net::WifiLikeLink* wifi_uplink() { return wifi_uplink_.get(); }

  // --- capture points (Fig. 2 ①②③③*④) ---
  [[nodiscard]] const net::CapturePoint& sender_capture() const { return *cap_sender_; }
  [[nodiscard]] const net::CapturePoint& core_capture() const { return *cap_core_; }
  [[nodiscard]] const net::CapturePoint& sfu_in_capture() const { return *cap_sfu_in_; }
  [[nodiscard]] const net::CapturePoint& sfu_out_capture() const { return *cap_sfu_out_; }
  [[nodiscard]] const net::CapturePoint& receiver_capture() const { return *cap_receiver_; }

  /// Assembles the Athena correlator's input from the session's logs,
  /// estimating clock offsets the way the measurement pipeline would
  /// (min-OWD filtering against the known wired floors).
  [[nodiscard]] core::CorrelatorInput BuildCorrelatorInput() const;

  /// The Wi-Fi flavour of the correlator input (valid only for
  /// Access::kWifiLike sessions).
  [[nodiscard]] core::WifiCorrelatorInput BuildWifiCorrelatorInput() const;

  [[nodiscard]] const SessionConfig& config() const { return config_; }

 private:
  void WireMediaPath();

  sim::Simulator& sim_;
  SessionConfig config_;
  sim::Rng rng_;
  net::PacketIdGenerator ids_;
  media::QoeCollector qoe_;

  // Capture points.
  std::unique_ptr<net::CapturePoint> cap_sender_;
  std::unique_ptr<net::CapturePoint> cap_core_;
  std::unique_ptr<net::CapturePoint> cap_sfu_in_;
  std::unique_ptr<net::CapturePoint> cap_sfu_out_;
  std::unique_ptr<net::CapturePoint> cap_receiver_;

  // Access network (exactly one uplink is non-null).
  std::unique_ptr<ran::RanUplink> ran_uplink_;
  std::unique_ptr<net::RateLimitedLink> emulated_uplink_;
  std::unique_ptr<net::WifiLikeLink> wifi_uplink_;
  std::unique_ptr<net::WifiLikeLink> wifi_downlink_;
  std::unique_ptr<net::LeoSatLink> leo_uplink_;
  std::unique_ptr<net::LeoSatLink> leo_downlink_;

  // WAN and server.
  std::unique_ptr<net::FixedDelayLink> wan_to_sfu_;
  std::unique_ptr<net::FixedDelayLink> wan_to_receiver_;
  std::unique_ptr<SfuServer> sfu_;

  // Feedback return path.
  std::unique_ptr<net::FixedDelayLink> feedback_wan_;
  std::unique_ptr<ran::DownlinkPath> downlink_;
  std::unique_ptr<net::FixedDelayLink> emulated_downlink_;

  // ICMP probing.
  std::unique_ptr<net::IcmpProber> icmp_prober_;
  std::unique_ptr<net::IcmpResponder> icmp_responder_;
  std::unique_ptr<net::FixedDelayLink> icmp_out_;
  std::unique_ptr<net::FixedDelayLink> icmp_back_;

  // Endpoints.
  std::unique_ptr<VcaSender> sender_;
  std::unique_ptr<VcaReceiver> receiver_;

  bool running_ = false;
};

}  // namespace athena::app
