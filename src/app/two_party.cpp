#include "app/two_party.hpp"

namespace athena::app {

TwoPartySession::TwoPartySession(sim::Simulator& sim, TwoPartyConfig config)
    : sim_(sim), config_(std::move(config)), rng_(config_.seed) {
  cap_a_out_ = std::make_unique<net::CapturePoint>(sim_, "a-out");
  cap_core_up_ = std::make_unique<net::CapturePoint>(sim_, "core-up");
  cap_b_in_ = std::make_unique<net::CapturePoint>(sim_, "b-in");
  cap_b_out_ = std::make_unique<net::CapturePoint>(sim_, "b-out");
  cap_core_down_ = std::make_unique<net::CapturePoint>(sim_, "core-down");
  cap_a_in_ = std::make_unique<net::CapturePoint>(sim_, "a-in");

  ran::CrossTraffic::Config up_cross;
  up_cross.demand = config_.uplink_cross_traffic;
  up_cross.burstiness = config_.cross_burstiness;
  uplink_ = std::make_unique<ran::RanUplink>(
      sim_, config_.cell, ran::ChannelModel{config_.channel, rng_.Fork()},
      ran::CrossTraffic{up_cross, rng_.Fork()});

  ran::CrossTraffic::Config down_cross;
  down_cross.demand = config_.downlink_cross_traffic;
  down_cross.burstiness = config_.cross_burstiness;
  downlink_ = std::make_unique<ran::RanDownlink>(
      sim_, config_.cell, ran::ChannelModel{config_.channel, rng_.Fork()},
      ran::CrossTraffic{down_cross, rng_.Fork()});

  auto wan = [&](sim::Duration delay) {
    return std::make_unique<net::FixedDelayLink>(
        sim_, net::FixedDelayLink::Config{.delay = delay, .jitter_stddev = config_.wan_jitter},
        rng_.Fork());
  };
  wan_up_ = wan(config_.wan_delay);
  wan_b_ = wan(config_.wan_delay);
  wired_b_ = wan(config_.wired_party_delay);
  wan_down_ = wan(config_.wan_delay);
  sfu_ab_ = std::make_unique<SfuServer>(sim_, config_.sfu, rng_.Fork());
  sfu_ba_ = std::make_unique<SfuServer>(sim_, config_.sfu, rng_.Fork());

  // Distinct SSRCs/flows per direction keep the correlators unambiguous.
  config_.sender_b.video_ssrc = 0x30;
  config_.sender_b.audio_ssrc = 0x40;
  config_.sender_b.flow = 2;

  sender_a_ = std::make_unique<VcaSender>(sim_, config_.sender_a,
                                          std::make_unique<GccController>(), ids_, rng_.Fork());
  sender_b_ = std::make_unique<VcaSender>(sim_, config_.sender_b,
                                          std::make_unique<GccController>(), ids_, rng_.Fork());
  receiver_a_ = std::make_unique<VcaReceiver>(sim_, VcaReceiver::DefaultConfig(), ids_, qoe_a_);
  receiver_b_ = std::make_unique<VcaReceiver>(sim_, VcaReceiver::DefaultConfig(), ids_, qoe_b_);
  sender_a_->set_qoe(&qoe_b_);  // A's media is experienced at B
  sender_b_->set_qoe(&qoe_a_);

  // ---- A → B: up the 5G uplink ----
  sender_a_->set_outbound(cap_a_out_->AsHandler());
  cap_a_out_->set_sink(uplink_->AsHandler());
  uplink_->set_core_sink(cap_core_up_->AsHandler());
  cap_core_up_->set_sink(wan_up_->AsHandler());
  wan_up_->set_sink(sfu_ab_->AsHandler());
  sfu_ab_->set_forward_path(wan_b_->AsHandler());
  wan_b_->set_sink(cap_b_in_->AsHandler());
  // B's host demultiplexes: media to the receiver, RTCP to the sender.
  cap_b_in_->set_sink([this](const net::Packet& p) {
    if (p.is_media()) {
      receiver_b_->OnPacket(p);
    } else {
      sender_b_->OnFeedbackPacket(p);
    }
  });

  // ---- B → A: down the 5G downlink ----
  sender_b_->set_outbound(cap_b_out_->AsHandler());
  cap_b_out_->set_sink(wired_b_->AsHandler());
  wired_b_->set_sink(sfu_ba_->AsHandler());
  sfu_ba_->set_forward_path(wan_down_->AsHandler());
  wan_down_->set_sink(cap_core_down_->AsHandler());
  cap_core_down_->set_sink(downlink_->AsHandler());
  downlink_->set_ue_sink(cap_a_in_->AsHandler());
  cap_a_in_->set_sink([this](const net::Packet& p) {
    if (p.is_media()) {
      receiver_a_->OnPacket(p);
    } else {
      sender_a_->OnFeedbackPacket(p);
    }
  });

  // ---- feedback paths ride the media paths of the opposite direction ----
  // B's reports about A's media travel B → SFU → core → 5G downlink → A.
  receiver_b_->set_feedback_path(wired_b_->AsHandler());
  // A's reports about B's media are uplink traffic: they enter A's egress
  // capture and share the RLC queue with A's own media.
  receiver_a_->set_feedback_path(cap_a_out_->AsHandler());
}

TwoPartySession::~TwoPartySession() { Stop(); }

void TwoPartySession::Start() {
  if (running_) return;
  running_ = true;
  uplink_->Start();
  downlink_->Start();
  receiver_a_->Start();
  receiver_b_->Start();
  sender_a_->Start();
  sender_b_->Start();
}

void TwoPartySession::Stop() {
  if (!running_) return;
  running_ = false;
  sender_a_->Stop();
  sender_b_->Stop();
  receiver_a_->Stop();
  receiver_b_->Stop();
  uplink_->Stop();
  downlink_->Stop();
}

void TwoPartySession::Run(sim::Duration span) {
  Start();
  sim_.RunFor(span);
  Stop();
}

core::CorrelatorInput TwoPartySession::BuildUplinkCorrelatorInput() const {
  core::CorrelatorInput input;
  input.sender = cap_a_out_->records();
  input.core = cap_core_up_->records();
  input.receiver = cap_b_in_->records();
  input.telemetry = uplink_->telemetry();
  input.cell = config_.cell;
  return input;  // all clocks in this session are true (offset 0)
}

core::CorrelatorInput TwoPartySession::BuildDownlinkCorrelatorInput() const {
  core::CorrelatorInput input;
  input.sender = cap_core_down_->records();
  input.core = cap_a_in_->records();
  input.telemetry = downlink_->telemetry();
  // Root-cause thresholds must scale with the DL slot grid; the downlink
  // has no grant cycle, so the BSR delay is moot (kept for completeness).
  input.cell = config_.cell;
  input.cell.ul_slot_period = downlink_->slot_period();
  input.cell.proactive_grant_bytes = 0;
  return input;
}

}  // namespace athena::app
