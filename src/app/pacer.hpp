// A WebRTC-style leaky-bucket pacer.
//
// §2 of the paper observes that VCAs send each frame as a burst — and §3.1
// shows how the 5G grant cycle smears exactly such bursts across slots.
// A pacer spaces the packets out at a multiple of the target bitrate
// instead. Whether that helps or hurts on a slotted uplink is a question
// this codebase can answer empirically (bench_ablation_pacing): spaced
// packets can each catch a proactive grant, trading sender-side holding
// delay against RAN-side spread.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace athena::app {

class Pacer {
 public:
  struct Config {
    /// Pacing-rate multiplier over the target bitrate (WebRTC uses 2.5).
    double rate_factor = 2.5;
    double min_rate_bps = 300e3;
    std::size_t max_queue_packets = 2000;
  };

  Pacer(sim::Simulator& sim, Config config);

  /// Enqueue a packet for paced transmission.
  void Send(const net::Packet& p);

  void set_sink(net::PacketHandler sink) { sink_ = std::move(sink); }

  /// The media target bitrate the pacing rate derives from.
  void set_target_bitrate(double bps);

  /// Runtime actuation knob (mitigation control plane): a disabled pacer
  /// is a pure pass-through — packets go straight to the sink, preserving
  /// the exact burst timing an un-paced sender would produce. Disabling
  /// with packets queued flushes them immediately, so no media is ever
  /// stranded by a revert.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Runtime actuation knob: adjusts the pacing-rate multiplier, clamped
  /// to [1, 8]. Takes effect immediately against the last target bitrate.
  void set_rate_factor(double factor);
  [[nodiscard]] double rate_factor() const { return config_.rate_factor; }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  void MaybeSchedule();
  void SendHead();

  sim::Simulator& sim_;
  Config config_;
  net::PacketHandler sink_;
  std::deque<net::Packet> queue_;
  double pacing_rate_bps_;
  double last_target_bps_ = 0.0;
  bool enabled_ = true;
  bool armed_ = false;
  sim::TimePoint next_send_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace athena::app
