// The conferencing server (Zoom SFU in Fig. 2): forwards media between
// parties with *application-layer* processing time. §2 takeaway (b): the
// server's processing — absent from ICMP probes that are reflected in the
// kernel — is a secondary source of jitter. We model per-packet processing
// as a lognormal with an occasional heavy-tail spike.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace athena::app {

class SfuServer {
 public:
  struct Config {
    double proc_median_ms = 1.2;     ///< median per-packet processing
    double proc_sigma = 0.5;         ///< lognormal sigma
    double spike_probability = 0.01; ///< occasional GC/scheduler stall...
    double spike_ms_min = 5.0;
    double spike_ms_max = 25.0;
  };

  SfuServer(sim::Simulator& sim, Config config, sim::Rng rng)
      : sim_(sim), config_(config), rng_(rng) {}

  /// Media in (capture point ③) → processed → forward path (③*).
  void OnPacket(const net::Packet& p);
  [[nodiscard]] net::PacketHandler AsHandler() {
    return [this](const net::Packet& p) { OnPacket(p); };
  }

  void set_forward_path(net::PacketHandler h) { forward_ = std::move(h); }

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }

 private:
  sim::Simulator& sim_;
  Config config_;
  sim::Rng rng_;
  net::PacketHandler forward_;
  sim::TimePoint last_out_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace athena::app
