#include "app/adaptation.hpp"

#include <algorithm>
#include <cmath>

namespace athena::app {

void ZoomAdaptation::OnFeedback(std::span<const rtp::PacketReport> reports,
                                sim::TimePoint now) {
  if (reports.empty()) return;

  for (const auto& r : reports) {
    const double owd_us = static_cast<double>((r.recv_ts - r.send_ts).count());
    if (!have_min_ || owd_us < min_owd_us_) {
      have_min_ = true;
      min_owd_us_ = owd_us;
    }
    const double rel = owd_us - min_owd_us_;
    if (!have_ewma_) {
      have_ewma_ = true;
      delay_ewma_us_ = rel;
    } else {
      delay_ewma_us_ += config_.delay_ewma_alpha * (rel - delay_ewma_us_);
    }
    if (have_prev_owd_) {
      const double dev = std::abs(owd_us - prev_owd_us_);
      jitter_ewma_us_ += config_.jitter_ewma_alpha * (dev - jitter_ewma_us_);
    }
    have_prev_owd_ = true;
    prev_owd_us_ = owd_us;
  }

  Apply(now);

  delay_log_.Add(now, delay_ewma_us_ / 1e3);
  const double base_fps = media::NominalFps(encoder_.mode());
  const double effective =
      base_fps - (skipping_ ? config_.skip_fraction_when_jittery * base_fps / 2.0 : 0.0);
  fps_log_.Add(now, effective);
}

void ZoomAdaptation::Apply(sim::TimePoint now) {
  const auto delay = smoothed_delay();
  const auto jitter = smoothed_jitter();

  // --- sticky frame-rate ladder (high absolute delay) ---
  if (!low_fps_locked_ && delay > config_.high_delay_threshold) {
    low_fps_locked_ = true;
    recovery_pending_ = false;
    encoder_.set_mode(media::SvcMode::kLowFps14);
    ++downgrades_;
  } else if (low_fps_locked_) {
    if (delay < config_.recover_delay_threshold) {
      if (!recovery_pending_) {
        recovery_pending_ = true;
        recovery_start_ = now;
      } else if (now - recovery_start_ >= config_.recover_hold) {
        low_fps_locked_ = false;
        recovery_pending_ = false;
        encoder_.set_mode(media::SvcMode::kHighFps28);
        ++recoveries_;
      }
    } else {
      recovery_pending_ = false;
    }
  }

  // --- transient frame skipping (high jitter) with hysteresis ---
  if (!skipping_ && jitter > config_.high_jitter_threshold) {
    skipping_ = true;
  } else if (skipping_ && jitter < config_.low_jitter_threshold) {
    skipping_ = false;
  }
  encoder_.set_enhancement_skip_fraction(
      skipping_ ? config_.skip_fraction_when_jittery : 0.0);
}

}  // namespace athena::app
