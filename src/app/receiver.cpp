#include "app/receiver.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace athena::app {

VcaReceiver::Config VcaReceiver::DefaultConfig() {
  Config c;
  c.audio_jb.media_clock_hz = 48'000;
  c.audio_jb.min_playout_delay = sim::Duration{std::chrono::milliseconds{20}};
  return c;
}

VcaReceiver::VcaReceiver(sim::Simulator& sim, Config config, net::PacketIdGenerator& ids,
                         media::QoeCollector& qoe)
    : sim_(sim),
      qoe_(qoe),
      video_jb_(sim, config.video_jb),
      audio_jb_(sim, config.audio_jb),
      twcc_(sim, config.twcc, ids),
      nack_(sim, config.nack, ids),
      screen_(sim, config.screen) {
  nack_enabled_ = config.nack_enabled;
  video_jb_.set_render_callback([this](const media::RenderedFrame& f) {
    screen_.OnFrameRendered(f);
    qoe_.OnFrameRendered(f);
  });
  audio_jb_.set_render_callback(
      [this](const media::RenderedFrame& f) { qoe_.OnFrameRendered(f); });
}

void VcaReceiver::Start() {
  twcc_.Start();
  if (nack_enabled_) nack_.Start();
  screen_.Start();
}

void VcaReceiver::Stop() {
  twcc_.Stop();
  nack_.Stop();
  screen_.Stop();
}

void VcaReceiver::OnPacket(const net::Packet& p) {
  if (!p.is_media()) return;
  ++packets_received_;
  static thread_local obs::CachedCounter counter_media_packets_received{"app.media_packets_received"};
  counter_media_packets_received.Inc();
  // Sampled counter: one point every 16 packets keeps the track readable.
  if (obs::trace_enabled() && packets_received_ % 16 == 0) {
    obs::TraceCounter(obs::Layer::kApp, obs::names::kAppRecvPackets, sim_.Now(),
                      static_cast<double>(packets_received_));
  }
  qoe_.OnPacketReceived(p, sim_.Now());
  twcc_.OnMediaPacket(p);
  if (nack_enabled_) nack_.OnMediaPacket(p);
  if (p.is_video()) {
    video_jb_.OnPacket(p);
  } else {
    audio_jb_.OnPacket(p);
  }
}

}  // namespace athena::app
