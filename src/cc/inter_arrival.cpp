#include "cc/inter_arrival.hpp"

namespace athena::cc {

std::optional<InterArrival::Deltas> InterArrival::OnPacket(sim::TimePoint send_ts,
                                                           sim::TimePoint recv_ts) {
  if (!current_.valid) {
    current_ = Group{send_ts, send_ts, recv_ts, 1, true};
    return std::nullopt;
  }

  // Same group while the send time stays within the burst window of the
  // group's first packet.
  if (send_ts - current_.first_send <= config_.burst_interval) {
    current_.last_send = std::max(current_.last_send, send_ts);
    current_.last_recv = std::max(current_.last_recv, recv_ts);
    ++current_.packets;
    return std::nullopt;
  }

  std::optional<Deltas> out;
  if (previous_.valid) {
    out = Deltas{
        .send_delta = current_.last_send - previous_.last_send,
        .recv_delta = current_.last_recv - previous_.last_recv,
        .packets = current_.packets,
    };
  }
  previous_ = current_;
  current_ = Group{send_ts, send_ts, recv_ts, 1, true};
  return out;
}

void InterArrival::Reset() {
  current_ = Group{};
  previous_ = Group{};
}

}  // namespace athena::cc
