// Google Congestion Control, assembled: inter-arrival grouping → trendline
// filter → overuse detector → AIMD, combined with a loss-based controller
// (the delay-based estimate usually binds; loss binds under heavy drops).
// This is the controller §4 runs over the idle 5G uplink to produce
// Fig. 10, and the default controller of the VCA sender in src/app/.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cc/aimd.hpp"
#include "cc/inter_arrival.hpp"
#include "cc/trendline.hpp"
#include "rtp/twcc.hpp"
#include "sim/time.hpp"

namespace athena::cc {

/// Simple windowed loss estimator over transport-wide sequence numbers.
class LossEstimator {
 public:
  /// Feeds the highest seq seen and the count received for a feedback
  /// batch; loss fraction is computed over a rolling set of batches.
  void OnBatch(std::uint16_t first_seq, std::uint16_t last_seq, std::size_t received);
  [[nodiscard]] double LossFraction() const;

 private:
  struct Batch {
    std::uint32_t expected = 0;
    std::uint32_t received = 0;
  };
  std::vector<Batch> batches_;
  static constexpr std::size_t kMaxBatches = 20;
};

class GoogCc {
 public:
  struct Config {
    InterArrival::Config inter_arrival;
    TrendlineEstimator::Config trendline;
    AimdRateControl::Config aimd;
    double loss_decrease_threshold = 0.10;  ///< loss > 10% → back off
    double loss_increase_threshold = 0.02;  ///< loss < 2% → allow probing
    bool keep_history = true;               ///< record Fig.-10 snapshots
  };

  GoogCc();  // defaults (defined in gcc.cpp: nested-Config quirk)
  explicit GoogCc(Config config);

  /// Feeds a resolved TWCC feedback batch. Returns the (possibly updated)
  /// target bitrate.
  double OnFeedback(std::span<const rtp::PacketReport> reports, sim::TimePoint now);

  [[nodiscard]] double target_bps() const;
  [[nodiscard]] double delay_based_bps() const { return aimd_.target_bps(); }
  [[nodiscard]] double LossFraction() const { return loss_.LossFraction(); }
  [[nodiscard]] BandwidthUsage usage() const { return trendline_.State(); }
  [[nodiscard]] const TrendlineEstimator& trendline() const { return trendline_; }
  [[nodiscard]] std::uint64_t overuse_events() const { return overuse_events_; }
  [[nodiscard]] std::uint64_t detector_updates() const { return detector_updates_; }

  /// Per-group detector snapshots for reproducing Fig. 10.
  struct Snapshot {
    sim::TimePoint t;
    std::uint64_t group_index = 0;
    double raw_gradient_ms = 0.0;      ///< unsmoothed inter-group delta
    double trend = 0.0;                ///< filtered delay gradient (slope)
    double modified_trend_ms = 0.0;
    double threshold_ms = 0.0;
    BandwidthUsage state = BandwidthUsage::kNormal;
    double target_bps = 0.0;
  };
  [[nodiscard]] const std::vector<Snapshot>& history() const { return history_; }

 private:
  Config config_;
  InterArrival inter_arrival_;
  TrendlineEstimator trendline_;
  AimdRateControl aimd_;
  AckedBitrateEstimator acked_;
  LossEstimator loss_;
  double loss_based_bps_;
  std::uint64_t overuse_events_ = 0;
  std::uint64_t detector_updates_ = 0;
  BandwidthUsage prev_usage_ = BandwidthUsage::kNormal;
  std::vector<Snapshot> history_;
};

}  // namespace athena::cc
