#include "cc/trendline.hpp"

#include <algorithm>
#include <cmath>

namespace athena::cc {

const char* ToString(BandwidthUsage usage) {
  switch (usage) {
    case BandwidthUsage::kNormal: return "normal";
    case BandwidthUsage::kOverusing: return "overusing";
    case BandwidthUsage::kUnderusing: return "underusing";
  }
  return "?";
}

void TrendlineEstimator::Update(sim::Duration recv_delta, sim::Duration send_delta,
                                sim::TimePoint arrival) {
  const double delta_ms = sim::ToMs(recv_delta) - sim::ToMs(send_delta);
  ++num_deltas_;
  if (!have_first_arrival_) {
    have_first_arrival_ = true;
    first_arrival_ = arrival;
  }

  accumulated_delay_ms_ += delta_ms;
  smoothed_delay_ms_ = config_.smoothing * smoothed_delay_ms_ +
                       (1.0 - config_.smoothing) * accumulated_delay_ms_;

  window_.push_back(Sample{sim::ToMs(arrival - first_arrival_), smoothed_delay_ms_});
  if (window_.size() > config_.window_size) window_.pop_front();

  if (window_.size() == config_.window_size) {
    prev_trend_ = trend_;
    trend_ = LinearFitSlope();
  }

  Detect(arrival);
}

double TrendlineEstimator::LinearFitSlope() const {
  // Ordinary least squares over (arrival_ms, smoothed_delay_ms).
  double sum_x = 0.0;
  double sum_y = 0.0;
  const auto n = static_cast<double>(window_.size());
  for (const auto& s : window_) {
    sum_x += s.arrival_ms;
    sum_y += s.smoothed_delay_ms;
  }
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;
  double numerator = 0.0;
  double denominator = 0.0;
  for (const auto& s : window_) {
    const double dx = s.arrival_ms - mean_x;
    numerator += dx * (s.smoothed_delay_ms - mean_y);
    denominator += dx * dx;
  }
  return denominator > 0.0 ? numerator / denominator : 0.0;
}

void TrendlineEstimator::Detect(sim::TimePoint now) {
  if (num_deltas_ < 2) {
    state_ = BandwidthUsage::kNormal;
    return;
  }
  const double multiplier =
      std::min(static_cast<double>(num_deltas_), static_cast<double>(config_.max_deltas));
  modified_trend_ms_ = multiplier * trend_ * config_.threshold_gain;

  if (modified_trend_ms_ > threshold_ms_) {
    if (!overusing_) {
      overusing_ = true;
      overuse_start_ = now;
    }
    // Require the overuse condition to persist and the trend not to be
    // falling before declaring overuse (WebRTC's hysteresis).
    if (now - overuse_start_ >= config_.overuse_time_threshold && trend_ >= prev_trend_) {
      state_ = BandwidthUsage::kOverusing;
    }
  } else if (modified_trend_ms_ < -threshold_ms_) {
    overusing_ = false;
    state_ = BandwidthUsage::kUnderusing;
  } else {
    overusing_ = false;
    state_ = BandwidthUsage::kNormal;
  }

  UpdateThreshold(modified_trend_ms_, now);
}

void TrendlineEstimator::UpdateThreshold(double modified_trend, sim::TimePoint now) {
  if (!have_last_update_) {
    have_last_update_ = true;
    last_threshold_update_ = now;
  }
  const double abs_trend = std::abs(modified_trend);
  // Large spikes (e.g., a routing change) must not poison the threshold.
  if (abs_trend > threshold_ms_ + 15.0) {
    last_threshold_update_ = now;
    return;
  }
  const double k = abs_trend < threshold_ms_ ? config_.k_down : config_.k_up;
  const double dt_ms = std::min(sim::ToMs(now - last_threshold_update_), 100.0);
  threshold_ms_ += k * (abs_trend - threshold_ms_) * dt_ms;
  threshold_ms_ = std::clamp(threshold_ms_, config_.min_threshold_ms, config_.max_threshold_ms);
  last_threshold_update_ = now;
}

}  // namespace athena::cc
