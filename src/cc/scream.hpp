// SCReAM-lite: a compact implementation of the self-clocked rate
// adaptation of SCReAM (Johansson, CSWS '14; RFC 8298) — the third
// delay-based controller §4 of the paper names next to GCC and NADA.
//
// Core loop: estimate queuing delay as OWD minus a running minimum, drive
// a byte congestion window toward a queuing-delay target, convert the
// window into a send rate via the smoothed RTT. Like every member of the
// family, it reads delay as congestion — so the RAN's scheduling and HARQ
// artifacts perturb it exactly the way the paper describes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "rtp/twcc.hpp"
#include "sim/time.hpp"

namespace athena::cc {

class ScreamController {
 public:
  struct Config {
    double initial_bps = 600e3;
    double min_bps = 80e3;
    double max_bps = 4e6;
    double qdelay_target_ms = 60.0;   ///< RFC 8298 default ballpark
    double gain_up = 1.0;             ///< window gain when under target
    double gain_down = 2.0;           ///< stronger reaction over target
    double qdelay_ewma_alpha = 0.25;
    double assumed_rtt_ms = 80.0;     ///< floor for the rate conversion
  };

  ScreamController();  // defaults (defined below: nested-Config quirk)
  explicit ScreamController(Config config) : config_(config) {
    cwnd_bytes_ = config_.initial_bps / 8.0 * config_.assumed_rtt_ms / 1e3;
  }

  double OnFeedback(std::span<const rtp::PacketReport> reports, sim::TimePoint now);

  [[nodiscard]] double target_bps() const;
  [[nodiscard]] double qdelay_ms() const { return qdelay_ms_; }
  [[nodiscard]] double cwnd_bytes() const { return cwnd_bytes_; }

 private:
  Config config_;
  double cwnd_bytes_;
  std::optional<double> base_owd_ms_;
  double qdelay_ms_ = 0.0;
  bool have_qdelay_ = false;
};

inline ScreamController::ScreamController() : ScreamController(Config{}) {}

}  // namespace athena::cc
