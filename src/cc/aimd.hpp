// AIMD rate control (the back half of GCC): maps the overuse detector's
// signal to a send-rate target. Multiplicative increase far from the
// estimated convergence point, additive near it; multiplicative decrease
// to β × the measured delivery rate on overuse.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "cc/trendline.hpp"
#include "sim/time.hpp"

namespace athena::cc {

/// Delivery ("acked") bitrate over a sliding window, computed from the
/// feedback reports.
class AckedBitrateEstimator {
 public:
  explicit AckedBitrateEstimator(sim::Duration window = std::chrono::milliseconds{500})
      : window_(window) {}

  void OnAckedBytes(std::uint32_t bytes, sim::TimePoint recv_ts);
  [[nodiscard]] std::optional<double> BitrateBps(sim::TimePoint now) const;

 private:
  struct Entry {
    sim::TimePoint t;
    std::uint32_t bytes = 0;
  };
  sim::Duration window_;
  std::deque<Entry> entries_;
};

class AimdRateControl {
 public:
  struct Config {
    double initial_bps = 600e3;
    double min_bps = 80e3;
    double max_bps = 4e6;
    double beta = 0.85;                ///< decrease factor
    double increase_factor = 1.08;     ///< multiplicative increase per second
    double additive_bps_per_s = 40e3;  ///< near-convergence additive step
    sim::Duration rtt{std::chrono::milliseconds{100}};
  };

  AimdRateControl();  // defaults (defined below: nested-Config quirk)
  explicit AimdRateControl(Config config) : config_(config) {
    target_bps_ = config_.initial_bps;
  }

  /// Applies one detector update. `acked_bps` is the measured delivery
  /// rate, when available.
  void Update(BandwidthUsage usage, std::optional<double> acked_bps, sim::TimePoint now);

  [[nodiscard]] double target_bps() const { return target_bps_; }

  enum class State : std::uint8_t { kHold, kIncrease, kDecrease };
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint64_t decreases() const { return decreases_; }

 private:
  Config config_;
  double target_bps_;
  State state_ = State::kIncrease;

  // Moving average/variance of the throughput at decrease time: defines
  // the "near convergence" band that switches increase to additive mode.
  bool have_link_estimate_ = false;
  double link_mean_bps_ = 0.0;
  double link_var_rel_ = 0.15;  // variance relative to mean

  bool have_last_update_ = false;
  sim::TimePoint last_update_;
  std::uint64_t decreases_ = 0;
};

inline AimdRateControl::AimdRateControl() : AimdRateControl(Config{}) {}

}  // namespace athena::cc
