// NADA-lite: a compact implementation of the NADA congestion controller
// (Zhu & Pan, Packet Video '13; RFC 8698) — one of the delay-based
// algorithms §4 of the paper names alongside GCC and SCReAM. Serves as a
// second controller for comparing sensitivity to RAN-induced delay
// artifacts (a different filter, the same vulnerability).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "rtp/twcc.hpp"
#include "sim/time.hpp"

namespace athena::cc {

class NadaController {
 public:
  struct Config {
    double initial_bps = 600e3;
    double min_bps = 80e3;
    double max_bps = 4e6;
    double x_ref_ms = 10.0;       ///< reference congestion signal
    double kappa = 0.5;           ///< gradual-update scaling
    double tau_ms = 500.0;        ///< target feedback interval constant
    double eta = 2.0;             ///< ramp-up cap scale
    double queue_epsilon_ms = 10.0;  ///< "no congestion" bound for ramp-up
    double loss_penalty_ms_per_percent = 10.0;
    double delay_ewma_alpha = 0.1;
  };

  NadaController();  // defaults (defined below: nested-Config quirk)
  explicit NadaController(Config config) : config_(config) {
    target_bps_ = config_.initial_bps;
  }

  double OnFeedback(std::span<const rtp::PacketReport> reports, double loss_fraction,
                    sim::TimePoint now);

  [[nodiscard]] double target_bps() const { return target_bps_; }
  [[nodiscard]] double congestion_signal_ms() const { return x_curr_ms_; }
  [[nodiscard]] double queuing_delay_ms() const { return queue_ms_; }

 private:
  Config config_;
  double target_bps_;
  std::optional<double> base_owd_ms_;  ///< min observed one-way delay
  double owd_ewma_ms_ = 0.0;
  bool have_owd_ = false;
  double queue_ms_ = 0.0;
  double x_curr_ms_ = 0.0;
  bool have_last_ = false;
  sim::TimePoint last_update_;
};

inline NadaController::NadaController() : NadaController(Config{}) {}

}  // namespace athena::cc
