#include "cc/l4s.hpp"

#include <algorithm>
#include <cmath>

namespace athena::cc {

double L4sController::OnFeedback(std::span<const rtp::PacketReport> reports,
                                 sim::TimePoint now) {
  if (reports.empty()) return target_bps_;

  std::size_t marked = 0;
  for (const auto& r : reports) marked += r.ce ? 1 : 0;
  const double frac = static_cast<double>(marked) / static_cast<double>(reports.size());
  alpha_ += config_.alpha_gain * (frac - alpha_);

  if (!have_last_) {
    have_last_ = true;
    last_update_ = now;
    last_backoff_ = now - config_.backoff_interval;  // allow an immediate brake
    return target_bps_;
  }
  const double dt_s = std::min(sim::ToSeconds(now - last_update_), 1.0);
  last_update_ = now;

  if (marked > 0 && now - last_backoff_ >= config_.backoff_interval) {
    // DCTCP-style brake proportional to the smoothed marking fraction.
    target_bps_ *= 1.0 - alpha_ / 2.0;
    last_backoff_ = now;
    ++backoffs_;
  } else if (marked == 0) {
    target_bps_ = target_bps_ * std::pow(config_.multiplicative_per_s, dt_s) +
                  config_.additive_bps_per_s * dt_s;
  }
  target_bps_ = std::clamp(target_bps_, config_.min_bps, config_.max_bps);
  return target_bps_;
}

}  // namespace athena::cc
