// An L4S/DCTCP-style controller driven by ECN marks instead of delay —
// §5.3: "As a protocol, L4S is attractive, as it adopts ECN bits in the IP
// header to accelerate or brake the sender (cf. ABC)".
//
// Here the *modem* applies the marks (it knows precisely how long each
// packet waited for a grant), so the congestion signal is clean by
// construction: scheduling artifacts below the marking threshold never
// reach the controller, and real queue growth shows up within one slot.
// The controller is DCTCP-flavoured: an EWMA of the per-feedback marking
// fraction scales multiplicative decrease; absence of marks permits
// additive + gentle multiplicative increase.
#pragma once

#include <cstdint>
#include <span>

#include "rtp/twcc.hpp"
#include "sim/time.hpp"

namespace athena::cc {

class L4sController {
 public:
  struct Config {
    double initial_bps = 600e3;
    double min_bps = 80e3;
    double max_bps = 4e6;
    double alpha_gain = 0.25;        ///< EWMA gain on the marking fraction
    double additive_bps_per_s = 100e3;
    double multiplicative_per_s = 1.04;
    sim::Duration backoff_interval{std::chrono::milliseconds{100}};  ///< ≥ once per RTT
  };

  L4sController();  // defaults (defined below: nested-Config quirk)
  explicit L4sController(Config config) : config_(config) {
    target_bps_ = config_.initial_bps;
  }

  double OnFeedback(std::span<const rtp::PacketReport> reports, sim::TimePoint now);

  [[nodiscard]] double target_bps() const { return target_bps_; }
  [[nodiscard]] double marking_alpha() const { return alpha_; }
  [[nodiscard]] std::uint64_t backoffs() const { return backoffs_; }

 private:
  Config config_;
  double target_bps_;
  double alpha_ = 0.0;
  bool have_last_ = false;
  sim::TimePoint last_update_;
  sim::TimePoint last_backoff_;
  std::uint64_t backoffs_ = 0;
};

inline L4sController::L4sController() : L4sController(Config{}) {}

}  // namespace athena::cc
