#include "cc/aimd.hpp"

#include <algorithm>
#include <cmath>

namespace athena::cc {

void AckedBitrateEstimator::OnAckedBytes(std::uint32_t bytes, sim::TimePoint recv_ts) {
  entries_.push_back(Entry{recv_ts, bytes});
  while (!entries_.empty() && recv_ts - entries_.front().t > window_) entries_.pop_front();
}

std::optional<double> AckedBitrateEstimator::BitrateBps(sim::TimePoint now) const {
  if (entries_.size() < 2) return std::nullopt;
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    if (now - e.t <= window_) total += e.bytes;
  }
  return static_cast<double>(total) * 8.0 / sim::ToSeconds(window_);
}

void AimdRateControl::Update(BandwidthUsage usage, std::optional<double> acked_bps,
                             sim::TimePoint now) {
  if (!have_last_update_) {
    have_last_update_ = true;
    last_update_ = now;
  }
  const double dt_s = std::min(sim::ToSeconds(now - last_update_), 1.0);
  last_update_ = now;

  // State machine (Carlucci et al., Fig. 4): overuse always decreases,
  // underuse always holds, normal resumes increasing.
  switch (usage) {
    case BandwidthUsage::kOverusing:
      state_ = State::kDecrease;
      break;
    case BandwidthUsage::kUnderusing:
      state_ = State::kHold;
      break;
    case BandwidthUsage::kNormal:
      if (state_ != State::kIncrease) state_ = State::kIncrease;
      break;
  }

  switch (state_) {
    case State::kHold:
      break;
    case State::kDecrease: {
      const double basis = acked_bps.value_or(target_bps_);
      target_bps_ = std::max(config_.min_bps, config_.beta * basis);
      // Remember where the link gave out: convergence estimate.
      if (!have_link_estimate_) {
        have_link_estimate_ = true;
        link_mean_bps_ = basis;
      } else {
        link_mean_bps_ += 0.05 * (basis - link_mean_bps_);
      }
      ++decreases_;
      state_ = State::kHold;  // wait for normal before increasing again
      break;
    }
    case State::kIncrease: {
      const bool near_convergence =
          have_link_estimate_ &&
          target_bps_ > link_mean_bps_ * (1.0 - 3.0 * link_var_rel_) &&
          target_bps_ < link_mean_bps_ * (1.0 + 3.0 * link_var_rel_);
      const double before = target_bps_;
      if (near_convergence) {
        target_bps_ += config_.additive_bps_per_s * dt_s;
      } else {
        target_bps_ *= std::pow(config_.increase_factor, dt_s);
      }
      // Don't *grow* far beyond what the path demonstrably delivers (the
      // cap limits increase; it never pulls an established target down —
      // decreases are the detector's job).
      if (acked_bps) {
        const double cap = 1.5 * *acked_bps + 10e3;
        if (target_bps_ > cap) target_bps_ = std::max(cap, before);
      }
      break;
    }
  }
  target_bps_ = std::clamp(target_bps_, config_.min_bps, config_.max_bps);
}

}  // namespace athena::cc
