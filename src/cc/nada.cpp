#include "cc/nada.hpp"

#include <algorithm>
#include <cmath>

namespace athena::cc {

double NadaController::OnFeedback(std::span<const rtp::PacketReport> reports,
                                  double loss_fraction, sim::TimePoint now) {
  if (reports.empty()) return target_bps_;

  // One-way delay (receiver clock minus sender clock): the absolute value
  // is offset by the clock difference, which cancels in the
  // queuing-delay computation against the running minimum.
  for (const auto& r : reports) {
    const double owd_ms = sim::ToMs(r.recv_ts - r.send_ts);
    if (!base_owd_ms_ || owd_ms < *base_owd_ms_) base_owd_ms_ = owd_ms;
    if (!have_owd_) {
      have_owd_ = true;
      owd_ewma_ms_ = owd_ms;
    } else {
      owd_ewma_ms_ += config_.delay_ewma_alpha * (owd_ms - owd_ewma_ms_);
    }
  }
  queue_ms_ = std::max(0.0, owd_ewma_ms_ - base_owd_ms_.value_or(owd_ewma_ms_));
  x_curr_ms_ = queue_ms_ + loss_fraction * 100.0 * config_.loss_penalty_ms_per_percent;

  if (!have_last_) {
    have_last_ = true;
    last_update_ = now;
    return target_bps_;
  }
  const double delta_ms = std::min(sim::ToMs(now - last_update_), 2.0 * config_.tau_ms);
  last_update_ = now;

  if (x_curr_ms_ < config_.queue_epsilon_ms && loss_fraction == 0.0) {
    // Accelerated ramp-up: grow bounded by eta per tau.
    const double gamma =
        std::min(config_.eta * delta_ms / config_.tau_ms, 0.5);
    target_bps_ *= 1.0 + 0.1 * gamma;
  } else {
    // Gradual update (RFC 8698 §4.3, simplified): drive x toward x_ref.
    const double x_offset = x_curr_ms_ - config_.x_ref_ms;
    target_bps_ -= config_.kappa * (delta_ms / config_.tau_ms) *
                   (x_offset / config_.tau_ms) * target_bps_;
  }
  target_bps_ = std::clamp(target_bps_, config_.min_bps, config_.max_bps);
  return target_bps_;
}

}  // namespace athena::cc
