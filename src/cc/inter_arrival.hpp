// Packet grouping for the delay-based estimator. GCC does not difference
// individual packets: packets sent within one burst window (5 ms) form a
// group, and the estimator works on inter-group deltas
//   d = (recv_i − recv_{i−1}) − (send_i − send_{i−1})
// — the one-way delay gradient of §4 of the paper, computed exactly as
// WebRTC's InterArrival does.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.hpp"

namespace athena::cc {

class InterArrival {
 public:
  struct Config {
    sim::Duration burst_interval{std::chrono::milliseconds{5}};
  };

  InterArrival();  // defaults (defined below: nested-Config quirk)
  explicit InterArrival(Config config) : config_(config) {}

  struct Deltas {
    sim::Duration send_delta{0};
    sim::Duration recv_delta{0};
    int packets = 0;  ///< packets in the completed group
  };

  /// Feeds one packet (send/receive timestamps in their own clocks).
  /// Returns the deltas between the two *previous* groups when this packet
  /// starts a new group and at least two groups have completed.
  std::optional<Deltas> OnPacket(sim::TimePoint send_ts, sim::TimePoint recv_ts);

  void Reset();

 private:
  struct Group {
    sim::TimePoint first_send;
    sim::TimePoint last_send;
    sim::TimePoint last_recv;
    int packets = 0;
    bool valid = false;
  };

  Config config_;
  Group current_;
  Group previous_;
};

inline InterArrival::InterArrival() : InterArrival(Config{}) {}

}  // namespace athena::cc
