#include "cc/gcc.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/check.hpp"

namespace athena::cc {

void LossEstimator::OnBatch(std::uint16_t first_seq, std::uint16_t last_seq,
                            std::size_t received) {
  // Sequence numbers wrap; the span of a batch is small, so modular
  // distance is safe.
  const std::uint16_t span = static_cast<std::uint16_t>(last_seq - first_seq);
  batches_.push_back(Batch{static_cast<std::uint32_t>(span) + 1,
                           static_cast<std::uint32_t>(received)});
  if (batches_.size() > kMaxBatches) batches_.erase(batches_.begin());
}

double LossEstimator::LossFraction() const {
  std::uint64_t expected = 0;
  std::uint64_t received = 0;
  for (const auto& b : batches_) {
    expected += b.expected;
    received += b.received;
  }
  if (expected == 0 || received >= expected) return 0.0;
  return static_cast<double>(expected - received) / static_cast<double>(expected);
}

GoogCc::GoogCc() : GoogCc(Config{}) {}

GoogCc::GoogCc(Config config)
    : config_(config),
      inter_arrival_(config.inter_arrival),
      trendline_(config.trendline),
      aimd_(config.aimd),
      loss_based_bps_(config.aimd.max_bps) {
  ATHENA_CHECK(std::isfinite(config.loss_decrease_threshold) &&
                   std::isfinite(config.loss_increase_threshold) &&
                   config.loss_increase_threshold >= 0.0 &&
                   config.loss_decrease_threshold >= config.loss_increase_threshold &&
                   config.loss_decrease_threshold <= 1.0,
               "GoogCc: loss thresholds must satisfy 0 <= increase <= decrease <= 1");
}

double GoogCc::OnFeedback(std::span<const rtp::PacketReport> reports, sim::TimePoint now) {
  if (reports.empty()) return target_bps();

  for (const auto& r : reports) {
    acked_.OnAckedBytes(r.size_bytes, r.recv_ts);
    if (const auto deltas = inter_arrival_.OnPacket(r.send_ts, r.recv_ts)) {
      ++detector_updates_;
      trendline_.Update(deltas->recv_delta, deltas->send_delta, r.recv_ts);
      if (trendline_.State() == BandwidthUsage::kOverusing &&
          prev_usage_ != BandwidthUsage::kOverusing) {
        ++overuse_events_;
        obs::CountInc("cc.overuse_events");
        obs::TraceInstant(obs::Layer::kCc, obs::names::kCcOveruse, r.recv_ts,
                          {{"trend_ms", trendline_.modified_trend_ms()},
                           {"threshold_ms", trendline_.threshold_ms()}});
      }
      prev_usage_ = trendline_.State();
      if (config_.keep_history) {
        history_.push_back(Snapshot{
            .t = r.recv_ts,
            .group_index = detector_updates_,
            .raw_gradient_ms = sim::ToMs(deltas->recv_delta) - sim::ToMs(deltas->send_delta),
            .trend = trendline_.trend(),
            .modified_trend_ms = trendline_.modified_trend_ms(),
            .threshold_ms = trendline_.threshold_ms(),
            .state = trendline_.State(),
            .target_bps = aimd_.target_bps(),
        });
      }
    }
  }

  aimd_.Update(trendline_.State(), acked_.BitrateBps(now), now);

  // Loss-based bound.
  loss_.OnBatch(reports.front().transport_seq, reports.back().transport_seq, reports.size());
  const double loss = loss_.LossFraction();
  if (loss > config_.loss_decrease_threshold) {
    loss_based_bps_ =
        std::max(config_.aimd.min_bps, aimd_.target_bps() * (1.0 - 0.5 * loss));
  } else if (loss < config_.loss_increase_threshold) {
    loss_based_bps_ = std::min(config_.aimd.max_bps, loss_based_bps_ * 1.02);
  }

  obs::CountInc("cc.feedback_batches");
  if (obs::trace_enabled()) {
    obs::TraceCounter(obs::Layer::kCc, obs::names::kCcTargetBps, now, target_bps());
    obs::TraceCounter(obs::Layer::kCc, obs::names::kCcTrendMs, now,
                      trendline_.modified_trend_ms());
  }
  obs::SetGauge("cc.target_bps", target_bps());
  return target_bps();
}

double GoogCc::target_bps() const { return std::min(aimd_.target_bps(), loss_based_bps_); }

}  // namespace athena::cc
