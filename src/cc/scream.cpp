#include "cc/scream.hpp"

#include <algorithm>
#include <cmath>

namespace athena::cc {

double ScreamController::OnFeedback(std::span<const rtp::PacketReport> reports,
                                    sim::TimePoint /*now*/) {
  if (reports.empty()) return target_bps();

  std::uint64_t acked_bytes = 0;
  for (const auto& r : reports) {
    const double owd_ms = sim::ToMs(r.recv_ts - r.send_ts);
    if (!base_owd_ms_ || owd_ms < *base_owd_ms_) base_owd_ms_ = owd_ms;
    const double q = std::max(0.0, owd_ms - *base_owd_ms_);
    if (!have_qdelay_) {
      have_qdelay_ = true;
      qdelay_ms_ = q;
    } else {
      qdelay_ms_ += config_.qdelay_ewma_alpha * (q - qdelay_ms_);
    }
    acked_bytes += r.size_bytes;
  }

  // off_target in [-1, 1]: positive = headroom, negative = standing queue.
  const double off_target =
      std::clamp((config_.qdelay_target_ms - qdelay_ms_) / config_.qdelay_target_ms,
                 -1.0, 1.0);
  const double gain = off_target >= 0 ? config_.gain_up : config_.gain_down;
  // RFC 8298-style window update: proportional to acked bytes, scaled by
  // how far we sit from the delay target.
  cwnd_bytes_ += gain * off_target * static_cast<double>(acked_bytes) * 1200.0 /
                 std::max(cwnd_bytes_, 1200.0);

  const double min_cwnd = config_.min_bps / 8.0 * config_.assumed_rtt_ms / 1e3;
  const double max_cwnd = config_.max_bps / 8.0 * config_.assumed_rtt_ms / 1e3;
  cwnd_bytes_ = std::clamp(cwnd_bytes_, min_cwnd, max_cwnd);
  return target_bps();
}

double ScreamController::target_bps() const {
  return cwnd_bytes_ * 8.0 / (config_.assumed_rtt_ms / 1e3);
}

}  // namespace athena::cc
