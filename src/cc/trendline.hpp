// The trendline filter and overuse detector at the heart of GCC (§4 of
// the paper; Carlucci et al., MMSys '16; WebRTC's TrendlineEstimator).
//
// The filter accumulates inter-group delay deltas, smooths them, and fits
// a least-squares line over a sliding window; the slope — the *filtered
// one-way delay gradient* plotted in Fig. 10 — is compared against an
// adaptive threshold to classify the path as over-, under-, or normally
// used. Fig. 10's finding: on an idle 5G uplink this gradient fluctuates
// enough to cross the threshold repeatedly, signalling phantom overuse.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/time.hpp"

namespace athena::cc {

enum class BandwidthUsage : std::uint8_t {
  kNormal,
  kOverusing,
  kUnderusing,
};

[[nodiscard]] const char* ToString(BandwidthUsage usage);

class TrendlineEstimator {
 public:
  struct Config {
    std::size_t window_size = 20;      ///< groups in the regression window
    double smoothing = 0.9;            ///< EWMA on the accumulated delay
    double threshold_gain = 4.0;       ///< scales slope → modified trend
    int max_deltas = 60;               ///< cap on the slope multiplier
    double initial_threshold_ms = 12.5;
    double k_up = 0.0087;              ///< threshold adaptation rates
    double k_down = 0.039;
    double min_threshold_ms = 6.0;
    double max_threshold_ms = 600.0;
    sim::Duration overuse_time_threshold{std::chrono::milliseconds{10}};
  };

  TrendlineEstimator();  // defaults (defined below: nested-Config quirk)
  explicit TrendlineEstimator(Config config) : config_(config) {
    threshold_ms_ = config_.initial_threshold_ms;
  }

  /// Feeds one inter-group observation (from InterArrival).
  void Update(sim::Duration recv_delta, sim::Duration send_delta, sim::TimePoint arrival);

  [[nodiscard]] BandwidthUsage State() const { return state_; }

  /// The filtered delay gradient (slope of the fitted line, ms per ms).
  [[nodiscard]] double trend() const { return trend_; }
  /// trend × min(num_deltas, cap) × gain — what is compared to the threshold.
  [[nodiscard]] double modified_trend_ms() const { return modified_trend_ms_; }
  [[nodiscard]] double threshold_ms() const { return threshold_ms_; }
  [[nodiscard]] std::uint64_t num_updates() const { return num_deltas_; }

 private:
  void Detect(sim::TimePoint now);
  void UpdateThreshold(double modified_trend, sim::TimePoint now);
  [[nodiscard]] double LinearFitSlope() const;

  Config config_;

  struct Sample {
    double arrival_ms = 0.0;           ///< x: arrival time since first sample
    double smoothed_delay_ms = 0.0;    ///< y: smoothed accumulated delay
  };
  std::deque<Sample> window_;

  std::uint64_t num_deltas_ = 0;
  bool have_first_arrival_ = false;
  sim::TimePoint first_arrival_;
  double accumulated_delay_ms_ = 0.0;
  double smoothed_delay_ms_ = 0.0;

  double trend_ = 0.0;
  double prev_trend_ = 0.0;
  double modified_trend_ms_ = 0.0;
  double threshold_ms_;
  bool have_last_update_ = false;
  sim::TimePoint last_threshold_update_;
  sim::TimePoint overuse_start_;
  bool overusing_ = false;
  BandwidthUsage state_ = BandwidthUsage::kNormal;
};

inline TrendlineEstimator::TrendlineEstimator() : TrendlineEstimator(Config{}) {}

}  // namespace athena::cc
