// Chrome trace-event JSON primitives, shared by the in-memory recorder
// (TraceRecorder::WriteJson) and the chunked Perfetto emitter that
// streams from columnar blocks (obs/pipeline/export.hpp). Internal to
// the obs subsystem — tools should use those two entry points.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/trace.hpp"

namespace athena::obs::jsonio {

void WriteEscaped(std::ostream& os, std::string_view s);

/// JSON-safe number: non-finite clamps to 0, integers render exactly.
void WriteNumber(std::ostream& os, double v);

/// One trace-event object for `e` (no surrounding comma/newline); `name`
/// is the resolved text of `e.name`.
void WriteEventJson(std::ostream& os, const TraceEvent& e, const std::string& name);

/// Document preamble: `{"traceEvents":[` plus process/track metadata for
/// every layer flagged in `layer_used`.
void WriteTraceHeader(std::ostream& os, const bool layer_used[kLayerCount]);

/// Resolves each distinct interned id once per export, not per event.
class NameCache {
 public:
  const std::string& Resolve(NameId id);

 private:
  std::unordered_map<NameId, std::string> cache_;
};

}  // namespace athena::obs::jsonio
