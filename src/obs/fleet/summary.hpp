// Fleet observability, stage 1: one session → one SessionSummary.
//
// A SessionSummary is the EDAF-style per-session digest the fleet layer
// aggregates: the end-to-end delay decomposed into per-segment
// components (slot-quantization wait, BSR grant wait, HARQ inflation,
// in-RAN transmission trickle, core/SFU residence, jitter-buffer hold),
// the application-side QoE the user actually felt (SSIM, frame-late
// fraction, audio gaps, mouth-to-ear), and which live detectors fired.
// Every metric is held as a mergeable count/sum/min/max + quantile-sketch
// accumulator (obs/pipeline rollup machinery), so N summaries fold into
// population CDFs without retaining samples, in any order, on any worker.
//
// Normalization rule: every metric is *lower-is-better*. Quality scores
// are stored as deficits (1−SSIM, 5−MOS, 1−match-confidence) so the SLO
// engine and the regression gate apply one uniform dominance test, and so
// the log-domain sketch — accurate near 0, coarse near 1 — spends its
// resolution where quality metrics actually move.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/correlator.hpp"
#include "media/qoe.hpp"
#include "obs/live/detectors.hpp"
#include "obs/pipeline/rollup.hpp"

namespace athena::obs::fleet {

/// The fixed metric catalog. Append only — report consumers key on the
/// names, and the SLO spec format references them. Keep ToString /
/// MetricFromName / GranularityOf in summary.cpp in sync.
enum class FleetMetric : std::uint8_t {
  // --- delay decomposition, per media packet/frame (ms) ---
  kUplinkOwdMs,        ///< sender egress → mobile core, total
  kSlotWaitMs,         ///< sched_wait of packets that (only) waited for a UL slot
  kBsrWaitMs,          ///< sched_wait of packets that queued for a BSR grant (§3.1)
  kHarqInflationMs,    ///< HARQ retransmission inflation on the final chain (§3.2)
  kTxSpreadMs,         ///< first-TB → last-byte-TB slot trickle
  kCoreSfuMs,          ///< core → receiver residence (WAN + SFU fan-out)
  kFrameDelayMs,       ///< frame-level: first packet sent → last packet at core
  kJbHoldMs,           ///< jitter-buffer hold: frame complete → rendered
  // --- QoE, per sample (ms / normalized) ---
  kFrameJitterMs,      ///< |inter-completion − inter-capture| per video frame
  kMouthToEarMs,       ///< capture → render per rendered unit
  kSsimDistortion,     ///< 1 − SSIM per rendered video frame
  // --- session scalars (one sample per session) ---
  kFrameLateFraction,  ///< late frames / rendered frames
  kAudioGapFraction,   ///< sent audio samples never rendered
  kMosDeficit,         ///< 5 − E-model audio MOS
  kMatchDeficit,       ///< 1 − mean correlator match confidence
};
inline constexpr std::size_t kFleetMetricCount = 15;

/// Stable report/SLO-spec identifier, e.g. "uplink_owd_ms".
[[nodiscard]] const char* ToString(FleetMetric metric);

/// Inverse of ToString; nullopt for unknown names.
[[nodiscard]] std::optional<FleetMetric> MetricFromName(std::string_view name);

/// Whether a metric folds one sample per packet/frame or one per session.
enum class Granularity : std::uint8_t { kSample, kSession };
[[nodiscard]] Granularity GranularityOf(FleetMetric metric);

/// One session's mergeable digest. Plain value type: ParallelRunner map
/// slots, chaos outcomes and the aggregator all copy it freely.
struct SessionSummary {
  std::string scenario;  ///< population grouping key (chaos scenario, sweep label)
  std::uint64_t seed = 0;
  bool valid = false;    ///< false = extraction skipped (no dataset)

  /// Per-metric accumulators (count/sum/min/max + quantile sketch).
  std::array<obs::pipeline::RollupBucket, kFleetMetricCount> metrics{};

  /// Live-detector verdict counts for this session, by AnomalyKind.
  std::array<std::uint64_t, obs::live::kAnomalyKindCount> anomalies{};
  /// Correlation health: the dataset-level degradation verdict.
  bool degraded = false;

  [[nodiscard]] const obs::pipeline::RollupBucket& metric(FleetMetric m) const {
    return metrics[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] obs::pipeline::RollupBucket& metric(FleetMetric m) {
    return metrics[static_cast<std::size_t>(m)];
  }

  /// The single sample of a session-granularity metric (0 when absent).
  [[nodiscard]] double SessionValue(FleetMetric m) const {
    const auto& b = metric(m);
    return b.count == 0 ? 0.0 : b.sum / static_cast<double>(b.count);
  }
};

/// Extraction inputs. `dataset` is required; the rest degrade gracefully
/// (missing QoE ⇒ no QoE metrics, missing detectors ⇒ zero anomalies).
struct SummaryInputs {
  const core::CrossLayerDataset* dataset = nullptr;
  const media::QoeCollector* qoe = nullptr;
  const obs::live::DetectorBank* detectors = nullptr;
  std::string scenario = "session";
  std::uint64_t seed = 0;
};

/// Computes the per-session delay decomposition and QoE digest. Pure and
/// deterministic: the same inputs always produce the same summary.
[[nodiscard]] SessionSummary SummarizeSession(const SummaryInputs& inputs);

}  // namespace athena::obs::fleet
