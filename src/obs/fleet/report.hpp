// Fleet observability, stage 4: the serialized fleet report and the
// regression gate over it.
//
// The report is a deterministic JSON document: fleet- and per-scenario
// population aggregates (each metric as count/mean/min/max plus a fixed
// 21-point quantile grid — enough to reconstruct a comparable CDF), the
// anomaly-prevalence table, and the SLO scoreboard. Determinism contract:
// the same sweep produces byte-identical bytes at any --jobs, so reports
// can be diffed, committed as baselines, and gated in CI.
//
// The gate replays `stats::StochasticallyBelow` over CDFs reconstructed
// from the quantile grids: a candidate passes when every fleet metric is
// stochastically no worse than the baseline (within slack) and every SLO
// meets its target. Exit-nonzero plumbing lives in athena_cli.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/fleet/aggregate.hpp"
#include "obs/fleet/slo.hpp"
#include "stats/cdf.hpp"

namespace athena::obs::fleet {

/// Quantile-grid resolution: q = 0, 0.05, …, 1.0.
inline constexpr std::size_t kReportQuantilePoints = 21;

/// One metric's population digest as serialized.
struct MetricReport {
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> quantiles;  ///< kReportQuantilePoints sketch quantiles

  /// Rebuilds a comparable CDF from the quantile grid (empty when count==0).
  [[nodiscard]] stats::Cdf ToCdf() const;
};

struct ScenarioReport {
  std::uint64_t sessions = 0;
  std::uint64_t invalid_sessions = 0;
  std::uint64_t degraded_sessions = 0;
  std::uint64_t anomalies_total = 0;
  std::map<std::string, MetricReport> metrics;        ///< keyed by metric name
  std::map<std::string, std::uint64_t> prevalence;    ///< keyed by anomaly slug
};

struct SloReport {
  SloSpec spec;
  double good = 0.0;
  double total = 0.0;
  double compliance = 1.0;
  double window_compliance = 1.0;
  double budget_remaining = 1.0;
  double burn_rate = 0.0;
  bool ok = true;
};

struct FleetReport {
  std::uint64_t sessions = 0;
  ScenarioReport fleet;
  std::map<std::string, ScenarioReport> scenarios;
  std::vector<SloReport> slos;
};

/// Snapshots an aggregator + SLO engine into the serializable report.
[[nodiscard]] FleetReport BuildReport(const FleetAggregator& aggregator,
                                      const SloEngine& slos);

/// Deterministic JSON serialization (sorted keys, fixed float format,
/// trailing newline). Byte-identical for equal reports.
void WriteJson(const FleetReport& report, std::ostream& os);

/// Parses a report previously written by WriteJson (the baseline side of
/// the gate). Throws std::runtime_error on malformed input.
[[nodiscard]] FleetReport ParseReport(std::istream& in);

struct GateOptions {
  /// CDF-dominance slack (probability units) passed to StochasticallyBelow;
  /// absorbs sketch bucketing and seed noise.
  double slack = 0.05;
  /// Gate the anomaly-prevalence table. Off when comparing a mitigated
  /// population against an un-mitigated baseline: the closed loop's
  /// actuations legitimately change what the detectors see (e.g.
  /// switching to the traffic predictor shifts the over-granting
  /// signature), so detection-rate deltas are expected there and only the
  /// QoE/delay dominance + SLO axes are the contract.
  bool compare_prevalence = true;
};

struct GateResult {
  bool ok = true;
  std::vector<std::string> failures;  ///< human-readable, deterministic order
};

/// Compares `current` against `baseline`: every fleet-level metric present
/// in both must be stochastically no worse (within slack), anomaly
/// prevalence must not grow beyond slack, and every current SLO must meet
/// its target.
[[nodiscard]] GateResult GateAgainstBaseline(const FleetReport& current,
                                             const FleetReport& baseline,
                                             const GateOptions& options = {});

}  // namespace athena::obs::fleet
