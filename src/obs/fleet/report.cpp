#include "obs/fleet/report.hpp"

#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/live/anomaly.hpp"

namespace athena::obs::fleet {

namespace {

/// Shortest round-trip decimal form (std::to_chars): deterministic bytes
/// for equal doubles — the property the byte-identity contract rests on.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan; reports never should
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, end);
}

void WriteString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void WriteMetric(std::ostream& os, const MetricReport& m) {
  os << "{\"count\":" << m.count << ",\"mean\":" << FormatDouble(m.mean)
     << ",\"min\":" << FormatDouble(m.min) << ",\"max\":" << FormatDouble(m.max)
     << ",\"quantiles\":[";
  for (std::size_t i = 0; i < m.quantiles.size(); ++i) {
    if (i != 0) os << ',';
    os << FormatDouble(m.quantiles[i]);
  }
  os << "]}";
}

void WriteScenario(std::ostream& os, const ScenarioReport& s) {
  os << "{\"sessions\":" << s.sessions
     << ",\"invalid_sessions\":" << s.invalid_sessions
     << ",\"degraded_sessions\":" << s.degraded_sessions
     << ",\"anomalies_total\":" << s.anomalies_total << ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, metric] : s.metrics) {
    if (!first) os << ',';
    first = false;
    WriteString(os, name);
    os << ':';
    WriteMetric(os, metric);
  }
  os << "},\"prevalence\":{";
  first = true;
  for (const auto& [slug, count] : s.prevalence) {
    if (!first) os << ',';
    first = false;
    WriteString(os, slug);
    os << ':' << count;
  }
  os << "}}";
}

void WriteSlo(std::ostream& os, const SloReport& r) {
  os << "{\"name\":";
  WriteString(os, r.spec.name);
  os << ",\"metric\":";
  WriteString(os, ToString(r.spec.metric));
  os << ",\"granularity\":"
     << (r.spec.granularity == Granularity::kSample ? "\"sample\"" : "\"session\"")
     << ",\"threshold\":" << FormatDouble(r.spec.threshold)
     << ",\"target\":" << FormatDouble(r.spec.target)
     << ",\"window\":" << r.spec.window << ",\"good\":" << FormatDouble(r.good)
     << ",\"total\":" << FormatDouble(r.total)
     << ",\"compliance\":" << FormatDouble(r.compliance)
     << ",\"window_compliance\":" << FormatDouble(r.window_compliance)
     << ",\"budget_remaining\":" << FormatDouble(r.budget_remaining)
     << ",\"burn_rate\":" << FormatDouble(r.burn_rate)
     << ",\"ok\":" << (r.ok ? "true" : "false") << "}";
}

ScenarioReport SnapshotScenario(const ScenarioAggregate& a) {
  ScenarioReport s;
  s.sessions = a.sessions;
  s.invalid_sessions = a.invalid_sessions;
  s.degraded_sessions = a.degraded_sessions;
  s.anomalies_total = a.anomalies_total;
  for (std::size_t i = 0; i < kFleetMetricCount; ++i) {
    const auto& bucket = a.metrics[i];
    if (bucket.count == 0) continue;  // absent metrics stay out of the report
    MetricReport m;
    m.count = bucket.count;
    m.mean = bucket.sum / static_cast<double>(bucket.count);
    m.min = bucket.min;
    m.max = bucket.max;
    m.quantiles.reserve(kReportQuantilePoints);
    for (std::size_t q = 0; q < kReportQuantilePoints; ++q) {
      m.quantiles.push_back(bucket.sketch.Quantile(
          static_cast<double>(q) / static_cast<double>(kReportQuantilePoints - 1)));
    }
    s.metrics.emplace(ToString(static_cast<FleetMetric>(i)), std::move(m));
  }
  for (std::size_t k = 0; k < obs::live::kAnomalyKindCount; ++k) {
    s.prevalence.emplace(obs::live::SlugFor(static_cast<obs::live::AnomalyKind>(k)),
                         a.prevalence[k]);
  }
  return s;
}

// --- minimal JSON reader (baseline side of the gate; no external deps) ---

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  Json Parse() {
    Json v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw std::runtime_error("fleet report JSON, offset " + std::to_string(pos_) +
                             ": " + why);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    SkipWs();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  Json ParseValue() {
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        Json v;
        v.type = Json::Type::kString;
        v.str = ParseString();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.type = Json::Type::kBool;
        if (Consume("true")) {
          v.boolean = true;
        } else if (Consume("false")) {
          v.boolean = false;
        } else {
          Fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!Consume("null")) Fail("bad literal");
        return Json{};
      }
      default: return ParseNumber();
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: Fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json ParseNumber() {
    SkipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
          c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) Fail("expected a value");
    Json v;
    v.type = Json::Type::kNumber;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.number);
    if (ec != std::errc{} || end != text_.data() + pos_) Fail("bad number");
    return v;
  }

  Json ParseArray() {
    Expect('[');
    Json v;
    v.type = Json::Type::kArray;
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      const char c = Peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') Fail("expected ',' or ']' in array");
    }
  }

  Json ParseObject() {
    Expect('{');
    Json v;
    v.type = Json::Type::kObject;
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      Expect(':');
      v.object.emplace(std::move(key), ParseValue());
      const char c = Peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') Fail("expected ',' or '}' in object");
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

const Json& Field(const Json& obj, const std::string& key) {
  if (obj.type != Json::Type::kObject) {
    throw std::runtime_error("fleet report JSON: expected object around \"" + key + "\"");
  }
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) {
    throw std::runtime_error("fleet report JSON: missing field \"" + key + "\"");
  }
  return it->second;
}

double Num(const Json& obj, const std::string& key) {
  const Json& v = Field(obj, key);
  if (v.type != Json::Type::kNumber) {
    throw std::runtime_error("fleet report JSON: field \"" + key + "\" is not a number");
  }
  return v.number;
}

std::uint64_t UInt(const Json& obj, const std::string& key) {
  return static_cast<std::uint64_t>(Num(obj, key));
}

std::string Str(const Json& obj, const std::string& key) {
  const Json& v = Field(obj, key);
  if (v.type != Json::Type::kString) {
    throw std::runtime_error("fleet report JSON: field \"" + key + "\" is not a string");
  }
  return v.str;
}

MetricReport ReadMetric(const Json& j) {
  MetricReport m;
  m.count = UInt(j, "count");
  m.mean = Num(j, "mean");
  m.min = Num(j, "min");
  m.max = Num(j, "max");
  const Json& grid = Field(j, "quantiles");
  if (grid.type != Json::Type::kArray) {
    throw std::runtime_error("fleet report JSON: \"quantiles\" is not an array");
  }
  for (const Json& q : grid.array) {
    if (q.type != Json::Type::kNumber) {
      throw std::runtime_error("fleet report JSON: non-numeric quantile");
    }
    m.quantiles.push_back(q.number);
  }
  return m;
}

ScenarioReport ReadScenario(const Json& j) {
  ScenarioReport s;
  s.sessions = UInt(j, "sessions");
  s.invalid_sessions = UInt(j, "invalid_sessions");
  s.degraded_sessions = UInt(j, "degraded_sessions");
  s.anomalies_total = UInt(j, "anomalies_total");
  for (const auto& [name, metric] : Field(j, "metrics").object) {
    s.metrics.emplace(name, ReadMetric(metric));
  }
  for (const auto& [slug, count] : Field(j, "prevalence").object) {
    if (count.type != Json::Type::kNumber) {
      throw std::runtime_error("fleet report JSON: non-numeric prevalence");
    }
    s.prevalence.emplace(slug, static_cast<std::uint64_t>(count.number));
  }
  return s;
}

SloReport ReadSlo(const Json& j) {
  SloReport r;
  r.spec.name = Str(j, "name");
  const std::string metric = Str(j, "metric");
  const auto m = MetricFromName(metric);
  if (!m) throw std::runtime_error("fleet report JSON: unknown SLO metric \"" + metric + "\"");
  r.spec.metric = *m;
  r.spec.granularity =
      Str(j, "granularity") == "session" ? Granularity::kSession : Granularity::kSample;
  r.spec.threshold = Num(j, "threshold");
  r.spec.target = Num(j, "target");
  r.spec.window = static_cast<std::uint32_t>(Num(j, "window"));
  r.good = Num(j, "good");
  r.total = Num(j, "total");
  r.compliance = Num(j, "compliance");
  r.window_compliance = Num(j, "window_compliance");
  r.budget_remaining = Num(j, "budget_remaining");
  r.burn_rate = Num(j, "burn_rate");
  const Json& ok = Field(j, "ok");
  if (ok.type != Json::Type::kBool) {
    throw std::runtime_error("fleet report JSON: SLO \"ok\" is not a bool");
  }
  r.ok = ok.boolean;
  return r;
}

}  // namespace

stats::Cdf MetricReport::ToCdf() const {
  return count == 0 ? stats::Cdf{} : stats::Cdf{quantiles};
}

FleetReport BuildReport(const FleetAggregator& aggregator, const SloEngine& slos) {
  FleetReport report;
  report.sessions = aggregator.sessions();
  report.fleet = SnapshotScenario(aggregator.fleet());
  for (const auto& [name, aggregate] : aggregator.scenarios()) {
    report.scenarios.emplace(name, SnapshotScenario(aggregate));
  }
  for (const SloResult& r : slos.Results()) {
    SloReport entry;
    entry.spec = r.spec;
    entry.good = r.good;
    entry.total = r.total;
    entry.compliance = r.compliance;
    entry.window_compliance = r.window_compliance;
    entry.budget_remaining = r.budget_remaining;
    entry.burn_rate = r.burn_rate;
    entry.ok = r.ok();
    report.slos.push_back(std::move(entry));
  }
  return report;
}

void WriteJson(const FleetReport& report, std::ostream& os) {
  os << "{\"sessions\":" << report.sessions << ",\"fleet\":";
  WriteScenario(os, report.fleet);
  os << ",\"scenarios\":{";
  bool first = true;
  for (const auto& [name, scenario] : report.scenarios) {
    if (!first) os << ',';
    first = false;
    WriteString(os, name);
    os << ':';
    WriteScenario(os, scenario);
  }
  os << "},\"slos\":[";
  first = true;
  for (const SloReport& slo : report.slos) {
    if (!first) os << ',';
    first = false;
    WriteSlo(os, slo);
  }
  os << "]}\n";
}

FleetReport ParseReport(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const Json root = JsonParser{buf.str()}.Parse();

  FleetReport report;
  report.sessions = UInt(root, "sessions");
  report.fleet = ReadScenario(Field(root, "fleet"));
  for (const auto& [name, scenario] : Field(root, "scenarios").object) {
    report.scenarios.emplace(name, ReadScenario(scenario));
  }
  const Json& slos = Field(root, "slos");
  if (slos.type != Json::Type::kArray) {
    throw std::runtime_error("fleet report JSON: \"slos\" is not an array");
  }
  for (const Json& slo : slos.array) report.slos.push_back(ReadSlo(slo));
  return report;
}

GateResult GateAgainstBaseline(const FleetReport& current,
                               const FleetReport& baseline,
                               const GateOptions& options) {
  GateResult result;
  const auto fail = [&result](std::string why) {
    result.ok = false;
    result.failures.push_back(std::move(why));
  };

  // 1. Every baseline fleet metric must still exist and be stochastically
  //    no worse. Lower-is-better normalization makes one direction enough.
  for (const auto& [name, base] : baseline.fleet.metrics) {
    if (base.count == 0) continue;
    const auto it = current.fleet.metrics.find(name);
    if (it == current.fleet.metrics.end() || it->second.count == 0) {
      fail("metric " + name + ": present in baseline but absent from candidate");
      continue;
    }
    const stats::Cdf cur = it->second.ToCdf();
    const stats::Cdf ref = base.ToCdf();
    if (!stats::StochasticallyBelow(cur, ref, options.slack)) {
      std::ostringstream why;
      why << "metric " << name << ": candidate CDF regressed (p95 "
          << FormatDouble(it->second.quantiles.empty() ? 0.0
                                                       : cur.P(95.0))
          << " vs baseline " << FormatDouble(ref.P(95.0)) << ", slack "
          << FormatDouble(options.slack) << ")";
      fail(why.str());
    }
  }

  // 2. Anomaly prevalence must not grow beyond slack.
  for (const auto& [slug, base_count] : baseline.fleet.prevalence) {
    if (!options.compare_prevalence) break;
    const auto it = current.fleet.prevalence.find(slug);
    if (it == current.fleet.prevalence.end()) continue;
    const double base_frac =
        baseline.fleet.sessions == 0
            ? 0.0
            : static_cast<double>(base_count) / static_cast<double>(baseline.fleet.sessions);
    const double cur_frac =
        current.fleet.sessions == 0
            ? 0.0
            : static_cast<double>(it->second) / static_cast<double>(current.fleet.sessions);
    if (cur_frac > base_frac + options.slack) {
      std::ostringstream why;
      why << "prevalence " << slug << ": " << FormatDouble(cur_frac)
          << " of sessions vs baseline " << FormatDouble(base_frac);
      fail(why.str());
    }
  }

  // 3. Every candidate SLO must meet its target.
  for (const SloReport& slo : current.slos) {
    if (!slo.ok) {
      std::ostringstream why;
      why << "slo " << slo.spec.name << ": compliance " << FormatDouble(slo.compliance)
          << " below target " << FormatDouble(slo.spec.target) << " (budget remaining "
          << FormatDouble(slo.budget_remaining) << ")";
      fail(why.str());
    }
  }
  return result;
}

}  // namespace athena::obs::fleet
