#include "obs/fleet/slo.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>

#include "obs/live/anomaly.hpp"
#include "obs/metrics.hpp"

namespace athena::obs::fleet {

namespace {

[[noreturn]] void Malformed(std::string_view line, const std::string& why) {
  throw std::runtime_error("malformed SLO spec line \"" + std::string(line) +
                           "\": " + why);
}

double ParseNumber(std::string_view line, const std::string& token,
                   const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) Malformed(line, "trailing junk in " + what);
    return v;
  } catch (const std::invalid_argument&) {
    Malformed(line, what + " is not a number: \"" + token + "\"");
  } catch (const std::out_of_range&) {
    Malformed(line, what + " is out of range: \"" + token + "\"");
  }
}

}  // namespace

std::optional<SloSpec> ParseSloLine(std::string_view line) {
  // Strip comments, then tokenize on whitespace.
  const std::size_t hash = line.find('#');
  const std::string_view body = hash == std::string_view::npos ? line : line.substr(0, hash);
  std::istringstream in{std::string(body)};
  std::vector<std::string> tokens;
  for (std::string t; in >> t;) tokens.push_back(std::move(t));
  if (tokens.empty()) return std::nullopt;

  // <name>: <sample|session> <metric> <= <threshold> @ <target> [window <N>]
  if (tokens.size() != 7 && tokens.size() != 9) {
    Malformed(line, "expected 7 or 9 tokens, got " + std::to_string(tokens.size()));
  }
  SloSpec spec;
  if (tokens[0].size() < 2 || tokens[0].back() != ':') {
    Malformed(line, "name must end with ':'");
  }
  spec.name = tokens[0].substr(0, tokens[0].size() - 1);

  if (tokens[1] == "sample") {
    spec.granularity = Granularity::kSample;
  } else if (tokens[1] == "session") {
    spec.granularity = Granularity::kSession;
  } else {
    Malformed(line, "granularity must be 'sample' or 'session', got \"" + tokens[1] + "\"");
  }

  const auto metric = MetricFromName(tokens[2]);
  if (!metric) Malformed(line, "unknown metric \"" + tokens[2] + "\"");
  spec.metric = *metric;
  if (spec.granularity == Granularity::kSample &&
      GranularityOf(spec.metric) == Granularity::kSession) {
    Malformed(line, "metric \"" + tokens[2] + "\" is session-scalar; use 'session'");
  }

  if (tokens[3] != "<=") Malformed(line, "expected '<=' after metric");
  spec.threshold = ParseNumber(line, tokens[4], "threshold");
  if (spec.threshold < 0.0) Malformed(line, "threshold must be >= 0");

  if (tokens[5] != "@") Malformed(line, "expected '@' before target");
  spec.target = ParseNumber(line, tokens[6], "target");
  if (!(spec.target > 0.0 && spec.target < 1.0)) {
    Malformed(line, "target must be in (0, 1)");
  }

  if (tokens.size() == 9) {
    if (tokens[7] != "window") Malformed(line, "expected 'window <N>'");
    const double w = ParseNumber(line, tokens[8], "window");
    if (w < 1.0 || w != static_cast<double>(static_cast<std::uint32_t>(w))) {
      Malformed(line, "window must be a positive integer");
    }
    spec.window = static_cast<std::uint32_t>(w);
  }
  return spec;
}

std::vector<SloSpec> ParseSloSpecs(std::istream& in) {
  std::vector<SloSpec> specs;
  for (std::string line; std::getline(in, line);) {
    if (auto spec = ParseSloLine(line)) specs.push_back(std::move(*spec));
  }
  return specs;
}

std::vector<SloSpec> DefaultSlos() {
  // Calibrated to the clean paper cell (scenario "clean" of the chaos
  // matrix): each holds comfortably there and breaks under contention /
  // deep fading, so the gate separates healthy from regressed fleets.
  std::istringstream in{R"(# built-in fleet SLO catalog
uplink_owd_p95:   sample  uplink_owd_ms       <= 25   @ 0.95 window 64
bsr_wait_bound:   sample  bsr_wait_ms         <= 12   @ 0.90 window 64
mouth_to_ear_p99: sample  mouth_to_ear_ms     <= 450  @ 0.99 window 64
frame_late:       session frame_late_fraction <= 0.05 @ 0.95 window 64
audio_gaps:       session audio_gap_fraction  <= 0.05 @ 0.95 window 64
)"};
  return ParseSloSpecs(in);
}

SloEngine::SloEngine(std::vector<SloSpec> specs)
    : specs_(std::move(specs)), states_(specs_.size()) {}

void SloEngine::Observe(const SessionSummary& summary) {
  ++sessions_;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    State& state = states_[i];

    Ledger session;
    if (!summary.valid) {
      // No dataset: nothing to judge; the session does not consume budget.
    } else if (spec.granularity == Granularity::kSample) {
      const auto& bucket = summary.metric(spec.metric);
      session.total = static_cast<double>(bucket.count);
      session.good = bucket.sketch.CountAtOrBelow(spec.threshold);
    } else {
      session.total = 1.0;
      session.good = summary.SessionValue(spec.metric) <= spec.threshold ? 1.0 : 0.0;
    }

    state.cumulative.good += session.good;
    state.cumulative.total += session.total;
    state.window.push_back(session);
    state.window_sum.good += session.good;
    state.window_sum.total += session.total;
    while (state.window.size() > spec.window) {
      state.window_sum.good -= state.window.front().good;
      state.window_sum.total -= state.window.front().total;
      state.window.pop_front();
    }
  }
}

std::vector<SloResult> SloEngine::Results() const {
  std::vector<SloResult> results;
  results.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    const State& state = states_[i];
    SloResult r;
    r.spec = spec;
    r.good = state.cumulative.good;
    r.total = state.cumulative.total;
    r.compliance = r.total > 0.0 ? r.good / r.total : 1.0;
    r.window_compliance = state.window_sum.total > 0.0
                              ? state.window_sum.good / state.window_sum.total
                              : 1.0;
    const double budget = 1.0 - spec.target;  // target ∈ (0,1) ⇒ budget > 0
    r.budget_remaining = 1.0 - (1.0 - r.compliance) / budget;
    r.burn_rate = (1.0 - r.window_compliance) / budget;
    results.push_back(std::move(r));
  }
  return results;
}

bool SloEngine::AllOk() const {
  for (const SloResult& r : Results()) {
    if (!r.ok()) return false;
  }
  return true;
}

void SloEngine::PublishMetrics() const {
  for (const SloResult& r : Results()) {
    const std::string prefix = "fleet.slo." + r.spec.name + ".";
    obs::SetGauge(prefix + "compliance", r.compliance);
    obs::SetGauge(prefix + "budget_remaining", r.budget_remaining);
    obs::SetGauge(prefix + "burn_rate", r.burn_rate);
    obs::SetGauge(prefix + "ok", r.ok() ? 1.0 : 0.0);
  }
}

void PublishPrevalenceMetrics(const ScenarioAggregate& aggregate) {
  for (std::size_t k = 0; k < obs::live::kAnomalyKindCount; ++k) {
    const auto kind = static_cast<obs::live::AnomalyKind>(k);
    obs::SetGauge(std::string("fleet.prevalence.") + obs::live::SlugFor(kind),
                  aggregate.PrevalenceFraction(kind));
  }
}

}  // namespace athena::obs::fleet
