// Fleet observability, stage 3: declarative SLOs with error budgets.
//
// An SLO is "fraction `target` of <samples|sessions> must keep `metric`
// at or below `threshold`, judged over a sliding window of `window`
// sessions". The engine evaluates online: summaries stream in (run-index
// order), each updates a cumulative good/total ledger and a bounded ring
// of recent per-session ledgers. From those it derives the SRE trio:
//
//   compliance        = good / total (cumulative)
//   budget_remaining  = 1 − (1 − compliance) / (1 − target)
//                       (1 = untouched, 0 = spent, negative = overspent)
//   burn_rate         = windowed violation rate / (1 − target)
//                       (1.0 = burning exactly at budget; >1 = alert)
//
// Every metric is lower-is-better by the summary normalization rule, so
// "at or below threshold" is the only comparison the spec needs.
//
// Text spec format (one SLO per line, '#' comments):
//
//   <name>: <sample|session> <metric> <= <threshold> @ <target> [window <N>]
//   uplink_owd_p95: sample uplink_owd_ms <= 20 @ 0.95 window 64
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/fleet/aggregate.hpp"
#include "obs/fleet/summary.hpp"

namespace athena::obs::fleet {

struct SloSpec {
  std::string name;
  FleetMetric metric = FleetMetric::kUplinkOwdMs;
  /// kSample judges every sample in the session's sketch; kSession judges
  /// one value per session (the session mean for sample metrics).
  Granularity granularity = Granularity::kSample;
  double threshold = 0.0;      ///< good ⇔ value <= threshold
  double target = 0.99;        ///< required good fraction, (0, 1)
  std::uint32_t window = 64;   ///< burn-rate window, in sessions
};

/// Parses one spec line; empty/comment lines return nullopt, malformed
/// lines throw std::runtime_error naming the defect.
[[nodiscard]] std::optional<SloSpec> ParseSloLine(std::string_view line);

/// Parses a whole spec stream (athena_cli --fleet-slo=FILE).
[[nodiscard]] std::vector<SloSpec> ParseSloSpecs(std::istream& in);

/// The built-in fleet SLO catalog: uplink delay, frame lateness, audio
/// continuity and mouth-to-ear bounds calibrated to the clean paper cell.
[[nodiscard]] std::vector<SloSpec> DefaultSlos();

struct SloResult {
  SloSpec spec;
  double good = 0.0;              ///< cumulative good samples/sessions
  double total = 0.0;             ///< cumulative samples/sessions observed
  double compliance = 1.0;        ///< good / total (1 when nothing observed)
  double window_compliance = 1.0; ///< same, over the last `window` sessions
  double budget_remaining = 1.0;  ///< 1 − violations/budget (cumulative)
  double burn_rate = 0.0;         ///< windowed violation rate / budget
  [[nodiscard]] bool ok() const { return compliance >= spec.target; }
};

/// Online evaluator over a stream of SessionSummaries.
class SloEngine {
 public:
  SloEngine() : SloEngine(DefaultSlos()) {}
  explicit SloEngine(std::vector<SloSpec> specs);

  /// Folds one session (in run-index order for reproducible windows).
  void Observe(const SessionSummary& summary);

  [[nodiscard]] std::uint64_t sessions_observed() const { return sessions_; }
  [[nodiscard]] const std::vector<SloSpec>& specs() const { return specs_; }

  /// Current verdict per spec, in spec order.
  [[nodiscard]] std::vector<SloResult> Results() const;

  /// True when every SLO currently meets its target.
  [[nodiscard]] bool AllOk() const;

  /// Publishes `fleet.slo.<name>.{compliance,budget_remaining,burn_rate,ok}`
  /// gauges into the installed obs::MetricsRegistry (no-op when none),
  /// rendering through the shared prom_text exposition path.
  void PublishMetrics() const;

 private:
  struct Ledger {
    double good = 0.0;
    double total = 0.0;
  };
  struct State {
    Ledger cumulative;
    std::deque<Ledger> window;  ///< per-session ledgers, newest at back
    Ledger window_sum;
  };

  std::vector<SloSpec> specs_;
  std::vector<State> states_;  ///< parallel to specs_
  std::uint64_t sessions_ = 0;
};

/// Publishes `fleet.prevalence.<slug>` gauges (fraction of sessions in
/// which each detector fired) for one aggregate into the installed
/// registry — the population companion of the per-session anomaly counts.
void PublishPrevalenceMetrics(const ScenarioAggregate& aggregate);

}  // namespace athena::obs::fleet
