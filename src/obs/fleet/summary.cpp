#include "obs/fleet/summary.hpp"

#include "sim/time.hpp"

namespace athena::obs::fleet {

const char* ToString(FleetMetric metric) {
  switch (metric) {
    case FleetMetric::kUplinkOwdMs: return "uplink_owd_ms";
    case FleetMetric::kSlotWaitMs: return "slot_wait_ms";
    case FleetMetric::kBsrWaitMs: return "bsr_wait_ms";
    case FleetMetric::kHarqInflationMs: return "harq_inflation_ms";
    case FleetMetric::kTxSpreadMs: return "tx_spread_ms";
    case FleetMetric::kCoreSfuMs: return "core_sfu_ms";
    case FleetMetric::kFrameDelayMs: return "frame_delay_ms";
    case FleetMetric::kJbHoldMs: return "jb_hold_ms";
    case FleetMetric::kFrameJitterMs: return "frame_jitter_ms";
    case FleetMetric::kMouthToEarMs: return "mouth_to_ear_ms";
    case FleetMetric::kSsimDistortion: return "ssim_distortion";
    case FleetMetric::kFrameLateFraction: return "frame_late_fraction";
    case FleetMetric::kAudioGapFraction: return "audio_gap_fraction";
    case FleetMetric::kMosDeficit: return "mos_deficit";
    case FleetMetric::kMatchDeficit: return "match_deficit";
  }
  return "unknown";
}

std::optional<FleetMetric> MetricFromName(std::string_view name) {
  for (std::size_t i = 0; i < kFleetMetricCount; ++i) {
    const auto m = static_cast<FleetMetric>(i);
    if (name == ToString(m)) return m;
  }
  return std::nullopt;
}

Granularity GranularityOf(FleetMetric metric) {
  switch (metric) {
    case FleetMetric::kFrameLateFraction:
    case FleetMetric::kAudioGapFraction:
    case FleetMetric::kMosDeficit:
    case FleetMetric::kMatchDeficit:
      return Granularity::kSession;
    default:
      return Granularity::kSample;
  }
}

namespace {

/// Folds every sample of an offline CDF into a fleet accumulator,
/// optionally transformed (deficit normalization).
void FoldCdf(SessionSummary& s, FleetMetric m, const stats::Cdf& cdf,
             double (*transform)(double) = nullptr) {
  auto& bucket = s.metric(m);
  for (const double v : cdf.sorted_samples()) {
    bucket.Add(transform != nullptr ? transform(v) : v);
  }
}

}  // namespace

SessionSummary SummarizeSession(const SummaryInputs& inputs) {
  SessionSummary s;
  s.scenario = inputs.scenario;
  s.seed = inputs.seed;
  if (inputs.dataset == nullptr) return s;
  const core::CrossLayerDataset& data = *inputs.dataset;
  s.valid = true;
  s.degraded = data.health.degraded();

  // --- per-packet delay decomposition (media packets that reached ②) ---
  for (const core::CrossLayerRecord& r : data.packets) {
    if (!r.is_media() || !r.reached_core) continue;
    s.metric(FleetMetric::kUplinkOwdMs).Add(sim::ToMs(r.uplink_owd));
    s.metric(FleetMetric::kTxSpreadMs).Add(sim::ToMs(r.transmission_spread));
    if (r.rtx_inflation.count() > 0) {
      s.metric(FleetMetric::kHarqInflationMs).Add(sim::ToMs(r.rtx_inflation));
    }
    switch (r.primary_cause) {
      case core::RootCause::kSlotAlignment:
        s.metric(FleetMetric::kSlotWaitMs).Add(sim::ToMs(r.sched_wait));
        break;
      case core::RootCause::kBsrWait:
        s.metric(FleetMetric::kBsrWaitMs).Add(sim::ToMs(r.sched_wait));
        break;
      default:
        break;
    }
    if (r.reached_receiver) {
      s.metric(FleetMetric::kCoreSfuMs).Add(sim::ToMs(r.wan_owd));
    }
  }

  // --- per-frame delay (what the renderer gates on) ---
  for (const core::FrameRecord& f : data.frames) {
    if (!f.complete_at_core || f.is_audio) continue;
    s.metric(FleetMetric::kFrameDelayMs).Add(sim::ToMs(f.FrameDelay()));
  }

  // --- session scalar: correlation confidence deficit ---
  s.metric(FleetMetric::kMatchDeficit).Add(1.0 - data.health.mean_match_confidence);

  // --- QoE (receiver-side) ---
  if (inputs.qoe != nullptr) {
    const media::QoeCollector& qoe = *inputs.qoe;
    FoldCdf(s, FleetMetric::kJbHoldMs, qoe.JitterHoldMs());
    FoldCdf(s, FleetMetric::kFrameJitterMs, qoe.FrameJitterMs());
    FoldCdf(s, FleetMetric::kMouthToEarMs, qoe.MouthToEarMs());
    FoldCdf(s, FleetMetric::kSsimDistortion, qoe.Ssim(),
            +[](double ssim) { return 1.0 - ssim; });

    const double rendered = static_cast<double>(qoe.video_frames_rendered());
    const double late_fraction =
        rendered > 0.0 ? static_cast<double>(qoe.late_frames()) / rendered : 0.0;
    s.metric(FleetMetric::kFrameLateFraction).Add(late_fraction);
    s.metric(FleetMetric::kAudioGapFraction).Add(qoe.AudioLossFraction());
    s.metric(FleetMetric::kMosDeficit).Add(5.0 - qoe.AudioMos());
  }

  // --- live-detector verdicts ---
  if (inputs.detectors != nullptr) {
    for (std::size_t k = 0; k < obs::live::kAnomalyKindCount; ++k) {
      s.anomalies[k] =
          inputs.detectors->anomaly_count(static_cast<obs::live::AnomalyKind>(k));
    }
  }
  return s;
}

}  // namespace athena::obs::fleet
