#include "obs/fleet/aggregate.hpp"

namespace athena::obs::fleet {

void ScenarioAggregate::Fold(const SessionSummary& summary) {
  ++sessions;
  if (!summary.valid) {
    ++invalid_sessions;
    return;
  }
  if (summary.degraded) ++degraded_sessions;
  for (std::size_t i = 0; i < kFleetMetricCount; ++i) {
    metrics[i].Merge(summary.metrics[i]);
  }
  for (std::size_t k = 0; k < obs::live::kAnomalyKindCount; ++k) {
    anomalies_total += summary.anomalies[k];
    if (summary.anomalies[k] > 0) ++prevalence[k];
  }
}

void ScenarioAggregate::Merge(const ScenarioAggregate& other) {
  sessions += other.sessions;
  invalid_sessions += other.invalid_sessions;
  degraded_sessions += other.degraded_sessions;
  anomalies_total += other.anomalies_total;
  for (std::size_t i = 0; i < kFleetMetricCount; ++i) {
    metrics[i].Merge(other.metrics[i]);
  }
  for (std::size_t k = 0; k < obs::live::kAnomalyKindCount; ++k) {
    prevalence[k] += other.prevalence[k];
  }
}

void FleetAggregator::Fold(const SessionSummary& summary) {
  fleet_.Fold(summary);
  scenarios_[summary.scenario].Fold(summary);
}

void FleetAggregator::Merge(const FleetAggregator& other) {
  fleet_.Merge(other.fleet_);
  for (const auto& [name, aggregate] : other.scenarios_) {
    scenarios_[name].Merge(aggregate);
  }
}

}  // namespace athena::obs::fleet
