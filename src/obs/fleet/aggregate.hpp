// Fleet observability, stage 2: N SessionSummaries → one population view.
//
// The aggregator is a pile of commutative, mergeable folds: per-scenario
// groups of per-metric accumulators (population CDFs via the quantile
// sketch), anomaly-prevalence counts (in how many sessions did detector X
// fire), and degradation tallies. Folding is order-insensitive, and
// Merge() combines two aggregators exactly, so a sweep may fold on every
// ParallelRunner worker and combine in run-index order — the fleet report
// comes out byte-identical at any --jobs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/fleet/summary.hpp"

namespace athena::obs::fleet {

/// One scenario's (or the whole fleet's) population aggregate.
struct ScenarioAggregate {
  std::uint64_t sessions = 0;
  std::uint64_t invalid_sessions = 0;  ///< summaries without a dataset
  std::uint64_t degraded_sessions = 0;
  std::uint64_t anomalies_total = 0;

  /// Population accumulators per metric (merged across sessions).
  std::array<obs::pipeline::RollupBucket, kFleetMetricCount> metrics{};

  /// Sessions in which detector `kind` fired at least once.
  std::array<std::uint64_t, obs::live::kAnomalyKindCount> prevalence{};

  void Fold(const SessionSummary& summary);
  void Merge(const ScenarioAggregate& other);

  [[nodiscard]] const obs::pipeline::RollupBucket& metric(FleetMetric m) const {
    return metrics[static_cast<std::size_t>(m)];
  }

  /// Fraction of sessions in which detector `kind` fired (0 when empty).
  [[nodiscard]] double PrevalenceFraction(obs::live::AnomalyKind kind) const {
    return sessions == 0
               ? 0.0
               : static_cast<double>(prevalence[static_cast<std::size_t>(kind)]) /
                     static_cast<double>(sessions);
  }
};

/// The fleet-level rollup: scenario-keyed groups plus the all-sessions
/// union. Scenario keys are ordered (std::map), so iteration — and
/// therefore the serialized report — is deterministic.
class FleetAggregator {
 public:
  void Fold(const SessionSummary& summary);
  void Merge(const FleetAggregator& other);

  [[nodiscard]] std::uint64_t sessions() const { return fleet_.sessions; }
  [[nodiscard]] const ScenarioAggregate& fleet() const { return fleet_; }
  [[nodiscard]] const std::map<std::string, ScenarioAggregate>& scenarios() const {
    return scenarios_;
  }

 private:
  ScenarioAggregate fleet_;
  std::map<std::string, ScenarioAggregate> scenarios_;
};

}  // namespace athena::obs::fleet
