#include "obs/trace_names.hpp"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace athena::obs {

struct TraceNameRegistry::Impl {
  mutable std::mutex mu;
  // Keys view into `texts`, whose elements are never moved (deque).
  std::unordered_map<std::string_view, NameId> index;
  std::deque<std::string> texts;
};

TraceNameRegistry::TraceNameRegistry() : impl_(new Impl) {
  impl_->texts.emplace_back();  // id 0 = ""
  impl_->index.emplace(impl_->texts.back(), kEmptyNameId);
}

TraceNameRegistry& TraceNameRegistry::Instance() {
  // Leaked on purpose: trace emitters in static destructors must still
  // find a live registry.
  static TraceNameRegistry* const registry = new TraceNameRegistry;
  return *registry;
}

NameId TraceNameRegistry::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock{impl_->mu};
  const auto it = impl_->index.find(name);
  if (it != impl_->index.end()) return it->second;
  const auto id = static_cast<NameId>(impl_->texts.size());
  impl_->texts.emplace_back(name);
  impl_->index.emplace(impl_->texts.back(), id);
  return id;
}

std::string TraceNameRegistry::NameOf(NameId id) const {
  std::lock_guard<std::mutex> lock{impl_->mu};
  if (id >= impl_->texts.size()) return {};
  return impl_->texts[id];
}

std::size_t TraceNameRegistry::size() const {
  std::lock_guard<std::mutex> lock{impl_->mu};
  return impl_->texts.size();
}

}  // namespace athena::obs
