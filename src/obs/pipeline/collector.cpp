#include "obs/pipeline/collector.hpp"

#include "obs/metrics.hpp"

namespace athena::obs::pipeline {

Collector::Collector(Options options) : options_(options) {
  batch_.resize(options_.drain_batch);
}

Collector::~Collector() { Stop(); }

void Collector::AddSink(TraceSink* sink) {
  ATHENA_CHECK(!running_.load(std::memory_order_relaxed),
               "collector already running");
  if (sink != nullptr) sinks_.push_back(sink);
}

RingTraceSink* Collector::AddShard() {
  std::lock_guard<std::mutex> lock(shards_mu_);
  shards_.push_back(std::make_unique<Shard>(options_.ring_capacity));
  return &shards_.back()->sink;
}

std::size_t Collector::shard_count() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  return shards_.size();
}

RingStats Collector::TotalRingStats() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  RingStats total;
  for (const auto& s : shards_) {
    const RingStats& r = s->sink.stats();
    total.pushed += r.pushed;
    total.shed_low += r.shed_low;
    total.shed_critical += r.shed_critical;
    if (r.high_water > total.high_water) total.high_water = r.high_water;
  }
  return total;
}

std::size_t Collector::Sweep() {
  // Snapshot the shard count under the lock, then drain lock-free: the
  // vector only grows, and unique_ptr elements never move their Shard.
  std::size_t n;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    n = shards_.size();
  }
  std::size_t drained = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Shard* shard;
    {
      std::lock_guard<std::mutex> lock(shards_mu_);
      shard = shards_[i].get();
    }
    for (;;) {
      const std::size_t got = shard->ring.PopBatch(batch_.data(), batch_.size());
      if (got == 0) break;
      for (TraceSink* s : sinks_) s->EmitBatch(batch_.data(), got);
      drained += got;
      ++stats_.batches;
      if (got > stats_.max_batch) stats_.max_batch = got;
      if (got < batch_.size()) break;  // ring momentarily empty
    }
  }
  stats_.events += drained;
  if (drained == 0) ++stats_.idle_spins;
  return drained;
}

std::size_t Collector::DrainOnce() {
  ATHENA_CHECK(!running_.load(std::memory_order_relaxed),
               "collector already running");
  return Sweep();
}

void Collector::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      if (Sweep() == 0) std::this_thread::sleep_for(options_.idle_sleep);
    }
    // Final drain: everything producers pushed before Stop() flipped the
    // flag is delivered before the thread exits.
    while (Sweep() > 0) {
    }
  });
}

void Collector::Stop() {
  if (running_.exchange(false)) {
    thread_.join();
  } else {
    // Inline mode: leave nothing buffered behind.
    while (Sweep() > 0) {
    }
  }
}

void Collector::PublishMetrics() const {
  if (!metrics_enabled()) return;
  const RingStats rings = TotalRingStats();
  SetGauge("pipeline.ingested", static_cast<double>(stats_.events));
  SetGauge("pipeline.batches", static_cast<double>(stats_.batches));
  SetGauge("pipeline.ring.shed_low", static_cast<double>(rings.shed_low));
  SetGauge("pipeline.ring.shed_critical", static_cast<double>(rings.shed_critical));
  SetGauge("pipeline.ring.high_water", static_cast<double>(rings.high_water));
  SetGauge("pipeline.shards", static_cast<double>(shard_count()));
}

}  // namespace athena::obs::pipeline
