// Online time-bucketed rollups: the streaming downsampler that keeps
// long-horizon telemetry O(buckets) instead of O(events).
//
// Every event folds into one fixed-width virtual-time bucket of one
// series (a series is a (name, layer) pair), carrying a scalar value:
// counter events their sampled value, complete spans their duration in
// ms, everything else its first numeric arg (or 1.0 — a pure
// occurrence). Per bucket the rollup keeps count/sum/min/max plus a
// fixed-size log-domain quantile sketch, so p50/p99 survive aggregation
// without retaining samples — the AtlasRAN lesson: per-event fidelity
// must degrade *predictably* (bounded relative error), not arbitrarily.
//
// Two structural guarantees:
//   - Bounded memory for unbounded horizons: when a series would exceed
//     `max_buckets`, the bucket width doubles and adjacent pairs fold
//     together (sketches merge exactly), so a 10×-longer run costs zero
//     extra resident bytes — the property BENCH_telemetry pins.
//   - Order-insensitive folds: every accumulator is commutative, so the
//     collector may interleave shards arbitrarily and a sweep's rollups
//     merge into deterministic population aggregates regardless of job
//     count.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace athena::obs::pipeline {

/// Fixed-footprint quantile sketch over non-negative values: 128 log2-
/// domain buckets, 4 sub-buckets per octave, covering [2^-8, 2^24) with
/// ≤ ~19% relative error (2^(1/4)); zeros and out-of-range values land
/// in pinned edge buckets. Mergeable by bucket-wise addition — the
/// population-CDF primitive.
class QuantileSketch {
 public:
  static constexpr int kSubBuckets = 4;       // per octave
  static constexpr int kMinExponent = -8;     // 2^-8 ≈ 0.004
  static constexpr int kOctaves = 32;         // up to 2^24 ≈ 16.7M
  static constexpr std::size_t kBuckets = kOctaves * kSubBuckets;

  void Add(double v, std::uint64_t weight = 1);
  void Merge(const QuantileSketch& other);

  /// Inverse CDF at q ∈ [0, 1] (geometric bucket midpoint). 0 when empty.
  [[nodiscard]] double Quantile(double q) const;

  /// Estimated number of recorded values ≤ x: full buckets below x plus a
  /// linear fraction of the straddling bucket. Deterministic, monotone in
  /// x — the SLO engine's "good samples" primitive. 0 when empty or x < 0.
  [[nodiscard]] double CountAtOrBelow(double x) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] const std::array<std::uint32_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint32_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

/// One bucket's accumulators. All operations commutative + associative.
struct RollupBucket {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  QuantileSketch sketch;

  void Add(double v);
  void Merge(const RollupBucket& other);
};

/// A series key: which event stream, on which layer.
struct SeriesKey {
  NameId name = kEmptyNameId;
  Layer layer = Layer::kOther;

  auto operator<=>(const SeriesKey&) const = default;
};

class TimeBucketRollup final : public TraceSink {
 public:
  struct Options {
    sim::Duration bucket_width{std::chrono::milliseconds{100}};
    /// Per-series bucket cap; crossing it doubles the width and folds
    /// pairs. Power of two keeps folds exact.
    std::size_t max_buckets = 4096;
  };

  TimeBucketRollup() : TimeBucketRollup(Options{}) {}
  explicit TimeBucketRollup(Options options);

  void Emit(const TraceEvent& event) override;
  void EmitBatch(const TraceEvent* events, std::size_t count) override;

  /// Folds `other` into this rollup (population aggregation across runs
  /// or shards). Widths reconcile by doubling the narrower side.
  void Merge(const TimeBucketRollup& other);

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }
  [[nodiscard]] std::uint64_t events_folded() const { return events_folded_; }
  [[nodiscard]] sim::Duration bucket_width() const { return options_.bucket_width; }
  /// Total width-doubling folds performed (bounded-horizon telemetry).
  [[nodiscard]] std::uint64_t rescales() const { return rescales_; }

  /// Whole-series aggregate (all buckets merged): the population CDF for
  /// one series. Returns an empty bucket when the series is unknown.
  [[nodiscard]] RollupBucket SeriesAggregate(SeriesKey key) const;
  [[nodiscard]] RollupBucket SeriesAggregate(std::string_view name, Layer layer) const;

  struct Series {
    sim::Duration width{0};         ///< this series' current bucket width
    std::vector<RollupBucket> buckets;
  };
  [[nodiscard]] const std::map<SeriesKey, Series>& series() const { return series_; }

  /// One JSON object: per series, the width, bucket array (t, count,
  /// sum, min, max, p50, p99) and the whole-series aggregate.
  void WriteJson(std::ostream& os) const;

  /// Long-form CSV: series,layer,bucket_start_ms,count,sum,min,max,p50,p99.
  void WriteCsv(std::ostream& os) const;

  /// Resident footprint estimate (series × buckets × sizeof bucket).
  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  Series& SeriesFor(SeriesKey key);
  void Fold(Series& s, sim::TimePoint ts, double value);
  static void Halve(Series& s);

  Options options_;
  std::map<SeriesKey, Series> series_;
  std::uint64_t events_folded_ = 0;
  std::uint64_t rescales_ = 0;
};

}  // namespace athena::obs::pipeline
