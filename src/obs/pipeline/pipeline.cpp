#include "obs/pipeline/pipeline.hpp"

#include <ostream>
#include <utility>

namespace athena::obs::pipeline {
namespace {

/// The calling thread's bound shard, plus the pipeline it belongs to so
/// a stale binding from a destroyed pipeline is never handed out.
thread_local RingTraceSink* t_shard = nullptr;
thread_local const TelemetryPipeline* t_shard_owner = nullptr;

}  // namespace

TelemetryPipeline::TelemetryPipeline(Options options)
    : options_(std::move(options)),
      rollup_(options_.rollup),
      collector_(options_.collector) {
  if (options_.columnar_out != nullptr) {
    columnar_ = std::make_unique<ColumnarWriter>(*options_.columnar_out);
  }
  collector_.AddSink(&rollup_);
  if (columnar_) collector_.AddSink(columnar_.get());
  for (TraceSink* s : options_.sinks) collector_.AddSink(s);
  if (options_.background) collector_.Start();
}

TelemetryPipeline::~TelemetryPipeline() {
  Finish();
  if (t_shard_owner == this) {
    t_shard = nullptr;
    t_shard_owner = nullptr;
  }
}

void TelemetryPipeline::BindCurrentThread() {
  if (t_shard_owner == this && t_shard != nullptr) return;
  t_shard = collector_.AddShard();
  t_shard_owner = this;
}

void TelemetryPipeline::UnbindCurrentThread() {
  if (t_shard_owner != this) return;
  if (t_shard != nullptr) t_shard->Flush();
  t_shard = nullptr;
  t_shard_owner = nullptr;
}

TraceSink* TelemetryPipeline::CurrentThreadSink() { return t_shard; }

sim::WorkerHooks TelemetryPipeline::MakeWorkerHooks() {
  return sim::WorkerHooks{
      .on_start = [this](unsigned) { BindCurrentThread(); },
      .on_stop = [this](unsigned) { UnbindCurrentThread(); },
  };
}

std::size_t TelemetryPipeline::Drain() {
  if (t_shard_owner == this && t_shard != nullptr) t_shard->Flush();
  return collector_.DrainOnce();
}

void TelemetryPipeline::Finish() {
  if (finished_) return;
  finished_ = true;
  if (t_shard_owner == this && t_shard != nullptr) t_shard->Flush();
  collector_.Stop();
  if (columnar_) columnar_->Finish();
  collector_.PublishMetrics();
}

}  // namespace athena::obs::pipeline
