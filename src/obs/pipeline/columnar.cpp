#include "obs/pipeline/columnar.hpp"

#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>

namespace athena::obs::pipeline {
namespace {

constexpr std::uint8_t kNameDictKind = 1;
constexpr std::uint8_t kKeyDictKind = 2;
constexpr std::uint8_t kEventsKind = 3;
constexpr std::uint8_t kFooterKind = 4;

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// --- LEB128 varints, zigzag for signed ---

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t Zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t Unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void PutSigned(std::vector<std::uint8_t>& out, std::int64_t v) {
  PutVarint(out, Zigzag(v));
}

void PutBytes(std::vector<std::uint8_t>& out, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + len);
}

/// Bounds-checked decode cursor over one block payload.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;

  [[nodiscard]] bool done() const { return p == end; }

  std::uint8_t U8() {
    if (p == end) throw std::runtime_error("ATHC: truncated block payload");
    return *p++;
  }

  std::uint64_t Varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (p == end) throw std::runtime_error("ATHC: truncated varint");
      const std::uint8_t b = *p++;
      if (shift >= 64) throw std::runtime_error("ATHC: varint overflow");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t Signed() { return Unzigzag(Varint()); }

  void Raw(void* out, std::size_t len) {
    if (static_cast<std::size_t>(end - p) < len) {
      throw std::runtime_error("ATHC: truncated block payload");
    }
    std::memcpy(out, p, len);
    p += len;
  }

  std::string Str() {
    const std::uint64_t len = Varint();
    if (static_cast<std::uint64_t>(end - p) < len) {
      throw std::runtime_error("ATHC: truncated string");
    }
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    return s;
  }
};

// --- little-endian fixed-width stream IO ---

void WriteU32(std::ostream& os, std::uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  os.write(b, 4);
}

void WriteU64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  os.write(b, 8);
}

std::uint32_t ReadU32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  if (!is) throw std::runtime_error("ATHC: truncated header field");
  return static_cast<std::uint32_t>(b[0]) | static_cast<std::uint32_t>(b[1]) << 8 |
         static_cast<std::uint32_t>(b[2]) << 16 | static_cast<std::uint32_t>(b[3]) << 24;
}

std::uint64_t ReadU64(std::istream& is) {
  unsigned char b[8];
  is.read(reinterpret_cast<char*>(b), 8);
  if (!is) throw std::runtime_error("ATHC: truncated header field");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

}  // namespace

// --- EventStreamDigest ---

void EventStreamDigest::Mix(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h_ ^= p[i];
    h_ *= 0x100000001b3ULL;
  }
}

void EventStreamDigest::MixU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= static_cast<std::uint8_t>(v >> (8 * i));
    h_ *= 0x100000001b3ULL;
  }
}

void EventStreamDigest::Add(const TraceEvent& event) {
  const std::string name = event.name_text();
  MixU64(name.size());
  Mix(name.data(), name.size());
  MixU64(static_cast<std::uint64_t>(event.phase));
  MixU64(static_cast<std::uint64_t>(event.layer));
  MixU64(static_cast<std::uint64_t>(event.ts.us()));
  MixU64(static_cast<std::uint64_t>(event.dur.count()));
  MixU64(event.id);
  MixU64(event.arg_count);
  for (std::size_t i = 0; i < event.arg_count; ++i) {
    const std::size_t klen = std::strlen(event.args[i].key);
    MixU64(klen);
    Mix(event.args[i].key, klen);
    std::uint64_t bits;
    std::memcpy(&bits, &event.args[i].value, sizeof bits);
    MixU64(bits);
  }
}

// --- ColumnarWriter ---

ColumnarWriter::ColumnarWriter(std::ostream& os) : os_(os) {
  buffer_.reserve(kBlockEvents);
  os_.write(kColumnarMagic, sizeof kColumnarMagic);
  WriteU32(os_, kColumnarVersion);
}

ColumnarWriter::~ColumnarWriter() { Finish(); }

void ColumnarWriter::Emit(const TraceEvent& event) {
  digest_.Add(event);
  buffer_.push_back(event);
  if (buffer_.size() == kBlockEvents) FlushBlock();
}

void ColumnarWriter::EmitBatch(const TraceEvent* events, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) Emit(events[i]);
}

void ColumnarWriter::WriteBlock(std::uint8_t kind,
                                const std::vector<std::uint8_t>& payload) {
  os_.put(static_cast<char>(kind));
  WriteU32(os_, static_cast<std::uint32_t>(payload.size()));
  WriteU64(os_, Fnv1a(payload.data(), payload.size()));
  os_.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  ++blocks_written_;
}

void ColumnarWriter::EmitDictionaries() {
  // Names first seen in this batch. File ids reuse the process NameId —
  // registry ids are dense and small, so varints stay short.
  std::vector<NameId> new_names;
  std::vector<std::pair<std::uint32_t, const char*>> new_keys;
  for (const TraceEvent& e : buffer_) {
    if (names_seen_.try_emplace(e.name, true).second) new_names.push_back(e.name);
    for (std::size_t i = 0; i < e.arg_count; ++i) {
      const auto [it, inserted] = key_ids_.try_emplace(
          e.args[i].key, static_cast<std::uint32_t>(key_ids_.size()));
      if (inserted) new_keys.emplace_back(it->second, it->first.c_str());
    }
  }
  if (!new_names.empty()) {
    payload_.clear();
    PutVarint(payload_, new_names.size());
    for (NameId id : new_names) {
      const std::string text = TraceNameRegistry::Instance().NameOf(id);
      PutVarint(payload_, id);
      PutVarint(payload_, text.size());
      PutBytes(payload_, text.data(), text.size());
    }
    WriteBlock(kNameDictKind, payload_);
  }
  if (!new_keys.empty()) {
    payload_.clear();
    PutVarint(payload_, new_keys.size());
    for (const auto& [id, text] : new_keys) {
      const std::size_t len = std::strlen(text);
      PutVarint(payload_, id);
      PutVarint(payload_, len);
      PutBytes(payload_, text, len);
    }
    WriteBlock(kKeyDictKind, payload_);
  }
}

void ColumnarWriter::FlushBlock() {
  if (buffer_.empty()) return;
  EmitDictionaries();

  payload_.clear();
  const std::size_t n = buffer_.size();
  PutVarint(payload_, n);
  PutSigned(payload_, buffer_.front().ts.us());

  for (const TraceEvent& e : buffer_) {
    payload_.push_back(static_cast<std::uint8_t>(e.phase));
  }
  for (const TraceEvent& e : buffer_) {
    payload_.push_back(static_cast<std::uint8_t>(e.layer));
  }
  for (const TraceEvent& e : buffer_) payload_.push_back(e.arg_count);
  for (const TraceEvent& e : buffer_) PutVarint(payload_, e.name);
  std::int64_t prev_ts = buffer_.front().ts.us();
  bool first = true;
  for (const TraceEvent& e : buffer_) {
    // First delta is vs base_ts (== its own ts), i.e. zero: one byte.
    PutSigned(payload_, e.ts.us() - (first ? e.ts.us() : prev_ts));
    prev_ts = e.ts.us();
    first = false;
  }
  for (const TraceEvent& e : buffer_) PutSigned(payload_, e.dur.count());
  std::uint64_t prev_id = 0;
  for (const TraceEvent& e : buffer_) {
    PutSigned(payload_, static_cast<std::int64_t>(e.id - prev_id));
    prev_id = e.id;
  }
  for (const TraceEvent& e : buffer_) {
    for (std::size_t i = 0; i < e.arg_count; ++i) {
      PutVarint(payload_, key_ids_.find(e.args[i].key)->second);
      std::uint64_t bits;
      std::memcpy(&bits, &e.args[i].value, sizeof bits);
      std::uint8_t raw[8];
      for (int b = 0; b < 8; ++b) raw[b] = static_cast<std::uint8_t>(bits >> (8 * b));
      PutBytes(payload_, raw, 8);
    }
  }

  WriteBlock(kEventsKind, payload_);
  events_written_ += n;
  buffer_.clear();
}

void ColumnarWriter::Finish() {
  if (finished_) return;
  finished_ = true;
  FlushBlock();
  payload_.clear();
  PutVarint(payload_, events_written_);
  std::uint8_t raw[8];
  for (int b = 0; b < 8; ++b) {
    raw[b] = static_cast<std::uint8_t>(digest_.value() >> (8 * b));
  }
  PutBytes(payload_, raw, 8);
  WriteBlock(kFooterKind, payload_);
  os_.flush();
}

// --- ColumnarReader ---

ColumnarReader::ColumnarReader(std::istream& is) : is_(is) {
  char magic[4];
  is_.read(magic, 4);
  if (!is_ || std::memcmp(magic, kColumnarMagic, 4) != 0) {
    throw std::runtime_error("ATHC: bad magic (not a columnar trace)");
  }
  const std::uint32_t version = ReadU32(is_);
  if (version != kColumnarVersion) {
    throw std::runtime_error("ATHC: unsupported version " + std::to_string(version));
  }
}

std::uint8_t ColumnarReader::ReadBlock(std::vector<std::uint8_t>& payload) {
  const int kind_ch = is_.get();
  if (kind_ch == std::istream::traits_type::eof()) return 0;
  const auto kind = static_cast<std::uint8_t>(kind_ch);
  const std::uint32_t bytes = ReadU32(is_);
  const std::uint64_t checksum = ReadU64(is_);
  payload.resize(bytes);
  is_.read(reinterpret_cast<char*>(payload.data()), bytes);
  if (!is_) throw std::runtime_error("ATHC: truncated block");
  if (Fnv1a(payload.data(), payload.size()) != checksum) {
    throw std::runtime_error("ATHC: block checksum mismatch (corrupt trace)");
  }
  return kind;
}

bool ColumnarReader::NextBlock(std::vector<TraceEvent>& out) {
  out.clear();
  std::vector<std::uint8_t> payload;
  for (;;) {
    const std::uint8_t kind = ReadBlock(payload);
    if (kind == 0) return false;  // clean EOF (footer-less streams still read)
    Cursor c{payload.data(), payload.data() + payload.size()};
    switch (kind) {
      case kNameDictKind: {
        const std::uint64_t count = c.Varint();
        for (std::uint64_t i = 0; i < count; ++i) {
          const auto file_id = static_cast<std::uint32_t>(c.Varint());
          names_[file_id] = TraceNameRegistry::Instance().Intern(c.Str());
        }
        break;
      }
      case kKeyDictKind: {
        const std::uint64_t count = c.Varint();
        for (std::uint64_t i = 0; i < count; ++i) {
          const auto file_id = static_cast<std::uint32_t>(c.Varint());
          key_storage_.push_back(std::make_unique<std::string>(c.Str()));
          keys_[file_id] = key_storage_.back()->c_str();
        }
        break;
      }
      case kEventsKind: {
        const std::uint64_t n = c.Varint();
        const std::int64_t base_ts = c.Signed();
        out.resize(n);
        for (auto& e : out) e.phase = static_cast<TraceEvent::Phase>(c.U8());
        for (auto& e : out) {
          const std::uint8_t layer = c.U8();
          if (layer >= kLayerCount) throw std::runtime_error("ATHC: bad layer");
          e.layer = static_cast<Layer>(layer);
        }
        for (auto& e : out) {
          e.arg_count = c.U8();
          if (e.arg_count > e.args.size()) throw std::runtime_error("ATHC: bad arg count");
        }
        for (auto& e : out) {
          const auto file_id = static_cast<std::uint32_t>(c.Varint());
          const auto it = names_.find(file_id);
          if (it == names_.end()) throw std::runtime_error("ATHC: undefined name id");
          e.name = it->second;
        }
        std::int64_t ts = base_ts;
        bool first = true;
        for (auto& e : out) {
          const std::int64_t delta = c.Signed();
          ts = first ? base_ts + delta : ts + delta;
          first = false;
          e.ts = sim::kEpoch + sim::Duration{ts};
        }
        for (auto& e : out) e.dur = sim::Duration{c.Signed()};
        std::uint64_t id = 0;
        for (auto& e : out) {
          id += static_cast<std::uint64_t>(c.Signed());
          e.id = id;
        }
        for (auto& e : out) {
          for (std::size_t i = 0; i < e.arg_count; ++i) {
            const auto key_id = static_cast<std::uint32_t>(c.Varint());
            const auto it = keys_.find(key_id);
            if (it == keys_.end()) throw std::runtime_error("ATHC: undefined key id");
            std::uint8_t raw[8];
            c.Raw(raw, 8);
            std::uint64_t bits = 0;
            for (int b = 0; b < 8; ++b) bits |= static_cast<std::uint64_t>(raw[b]) << (8 * b);
            double value;
            std::memcpy(&value, &bits, sizeof value);
            e.args[i] = TraceArg{it->second, value};
          }
        }
        if (!c.done()) throw std::runtime_error("ATHC: trailing bytes in events block");
        for (const TraceEvent& e : out) digest_.Add(e);
        events_read_ += n;
        return true;
      }
      case kFooterKind: {
        footer_.event_count = c.Varint();
        std::uint8_t raw[8];
        c.Raw(raw, 8);
        footer_.digest = 0;
        for (int b = 0; b < 8; ++b) {
          footer_.digest |= static_cast<std::uint64_t>(raw[b]) << (8 * b);
        }
        footer_.present = true;
        return false;
      }
      default:
        throw std::runtime_error("ATHC: unknown block kind " + std::to_string(kind));
    }
  }
}

std::uint64_t ColumnarReader::VerifyFooter() {
  if (!footer_.present) throw std::runtime_error("ATHC: missing footer (truncated file)");
  if (footer_.event_count != events_read_) {
    throw std::runtime_error("ATHC: footer event count mismatch");
  }
  if (footer_.digest != digest_.value()) {
    throw std::runtime_error("ATHC: stream digest mismatch (corrupt trace)");
  }
  return digest_.value();
}

}  // namespace athena::obs::pipeline
