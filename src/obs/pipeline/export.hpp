// Flat-memory fleet export: sharded Prometheus exposition and chunked
// Perfetto emission.
//
// Both paths stream — nothing materializes the full trace or the full
// exposition:
//   - Prometheus shards partition metric families by a stable FNV-1a
//     name hash (obs/prom_text.hpp), so N scrape endpoints each carry
//     ~1/N of the fleet's series and a family never migrates between
//     shards across releases. Rollup series export as whole-series
//     aggregates (count/sum/min/max/p50/p99 per (name, layer)).
//   - Perfetto emission replays an ATHC columnar stream block-by-block
//     into Chrome trace-event JSON: working memory is one block (~512
//     KiB), whatever the trace length. Events are sorted within each
//     block; Perfetto's JSON importer orders the full set on load.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/pipeline/rollup.hpp"

namespace athena::obs::pipeline {

struct ShardedExpositionOptions {
  std::string prefix = "athena_";
  unsigned shard = 0;        ///< which shard to render
  unsigned shard_count = 1;  ///< total shards (1 = classic single stream)
};

/// Renders shard `options.shard` of the exposition: every registry
/// metric and rollup series whose family name lands on this shard.
/// `registry` may be null (rollup-only exposition). The union of all
/// shards is exactly the full exposition; shards are disjoint.
void WritePrometheusShard(std::ostream& os, const TimeBucketRollup& rollup,
                          const MetricsRegistry* registry,
                          ShardedExpositionOptions options = {});

/// Streams the ATHC columnar trace on `in` to Chrome trace-event JSON on
/// `os`, block-at-a-time. Verifies block checksums and the footer stream
/// digest (throws std::runtime_error on corruption). Returns the number
/// of events emitted.
std::uint64_t WriteChunkedPerfetto(std::istream& in, std::ostream& os);

}  // namespace athena::obs::pipeline
