// ATHC — the compact binary columnar trace format.
//
// Chrome-trace JSON is ~20× the size of the events it encodes and must be
// fully materialized to sort; neither survives fleet scale. ATHC stores
// the same TraceEvent stream column-wise in self-describing, individually
// checksummed blocks, so a reader can stream, skip, or parallelize over
// blocks without loading the file.
//
// Layout (all integers little-endian; varints are LEB128, signed values
// zigzag-encoded):
//
//   file   := magic "ATHC" | u32 version | blocks...
//   block  := u8 kind | u32 payload_bytes | u64 fnv1a(payload) | payload
//   kinds  := 1 name-dict  — varint count, then (varint id, varint len, bytes)
//             2 key-dict   — same shape; arg keys interned by the writer
//             3 events     — columnar event batch (below)
//             4 footer     — varint event_count | u64 stream digest
//
// An events block holds `n` events as column runs, in order:
//   varint n | i64zz base_ts_us
//   phase[n] u8 | layer[n] u8 | arg_count[n] u8
//   name_id[n]  varint        (dictionary id, dense and small)
//   ts[n]       i64zz varint  delta vs previous event (base_ts for [0])
//   dur[n]      i64zz varint
//   id[n]       i64zz varint  delta vs previous event's id
//   args        per event: arg_count × (varint key_id, u64 double bits)
//
// Dictionaries are incremental: before an events block, the writer emits
// dict blocks covering any names/keys first seen in that batch, so a
// stream is decodable strictly front-to-back. The footer's stream digest
// is the canonical event digest (EventStreamDigest) of everything
// written; readers recompute it, making write→read→digest-match a
// one-call integrity check.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace athena::obs::pipeline {

inline constexpr char kColumnarMagic[4] = {'A', 'T', 'H', 'C'};
inline constexpr std::uint32_t kColumnarVersion = 1;

/// Order-sensitive FNV-1a digest over the canonical content of an event
/// stream: name text (not the process-local NameId), phase, layer, ts,
/// dur, id, and each arg's key text + raw value bits. Identical streams
/// digest identically across processes, which is what makes the digest a
/// round-trip oracle.
class EventStreamDigest {
 public:
  void Add(const TraceEvent& event);
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  void Mix(const void* data, std::size_t len);
  void MixU64(std::uint64_t v);

  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Streaming writer. Feed it events (any phase mix, any order — order is
/// preserved); call Finish() exactly once to emit the footer. Also
/// usable as a TraceSink, so it can hang off a Collector directly.
class ColumnarWriter final : public TraceSink {
 public:
  /// Events per block. 4096 × 128 B ≈ 512 KiB working set: the writer's
  /// memory is O(block), never O(trace).
  static constexpr std::size_t kBlockEvents = 4096;

  explicit ColumnarWriter(std::ostream& os);
  ~ColumnarWriter() override;

  ColumnarWriter(const ColumnarWriter&) = delete;
  ColumnarWriter& operator=(const ColumnarWriter&) = delete;

  void Emit(const TraceEvent& event) override;
  void EmitBatch(const TraceEvent* events, std::size_t count) override;

  /// Flushes the open block and writes the footer. Idempotent; the
  /// destructor calls it as a backstop.
  void Finish();

  [[nodiscard]] std::uint64_t events_written() const { return events_written_; }
  [[nodiscard]] std::uint64_t blocks_written() const { return blocks_written_; }
  [[nodiscard]] std::uint64_t digest() const { return digest_.value(); }

 private:
  void FlushBlock();
  void WriteBlock(std::uint8_t kind, const std::vector<std::uint8_t>& payload);
  /// Emits dict blocks for names/keys in [buffer_ events] not yet written.
  void EmitDictionaries();

  std::ostream& os_;
  std::vector<TraceEvent> buffer_;
  std::vector<std::uint8_t> payload_;  // reused scratch
  std::unordered_map<NameId, bool> names_seen_;
  std::unordered_map<std::string, std::uint32_t> key_ids_;
  EventStreamDigest digest_;
  std::uint64_t events_written_ = 0;
  std::uint64_t blocks_written_ = 0;
  bool finished_ = false;
};

/// Streaming reader. Decodes block-by-block; memory stays O(block +
/// dictionaries). Decoded events carry NameIds re-interned into this
/// process's TraceNameRegistry and arg keys pointing into reader-owned
/// stable storage, so they behave like locally emitted events.
class ColumnarReader {
 public:
  explicit ColumnarReader(std::istream& is);

  /// Decodes the next events block into `out` (replacing its contents).
  /// Returns false at the footer (or clean end of stream). Throws
  /// std::runtime_error on malformed input or a checksum mismatch.
  bool NextBlock(std::vector<TraceEvent>& out);

  /// Streams the whole file through `fn(const TraceEvent&)`, verifies
  /// the footer digest, and returns it. Throws on corruption or digest
  /// mismatch.
  template <typename Fn>
  std::uint64_t ForEach(Fn&& fn) {
    std::vector<TraceEvent> block;
    while (NextBlock(block)) {
      for (const TraceEvent& e : block) fn(e);
    }
    return VerifyFooter();
  }

  /// After NextBlock returned false: checks the recomputed digest and
  /// event count against the footer. Returns the digest; throws on
  /// mismatch or missing footer.
  std::uint64_t VerifyFooter();

  [[nodiscard]] std::uint64_t events_read() const { return events_read_; }

 private:
  struct Footer {
    std::uint64_t event_count = 0;
    std::uint64_t digest = 0;
    bool present = false;
  };

  /// Reads one block header+payload (checksum-verified). Returns the
  /// kind, or 0 at end of stream.
  std::uint8_t ReadBlock(std::vector<std::uint8_t>& payload);

  std::istream& is_;
  std::unordered_map<std::uint32_t, NameId> names_;         // file id → local id
  std::unordered_map<std::uint32_t, const char*> keys_;     // file id → stable text
  std::vector<std::unique_ptr<std::string>> key_storage_;   // owns key text
  EventStreamDigest digest_;
  Footer footer_;
  std::uint64_t events_read_ = 0;
};

}  // namespace athena::obs::pipeline
