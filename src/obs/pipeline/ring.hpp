// Lock-free single-producer/single-consumer event ring — the ingest
// pipeline's shard primitive.
//
// Topology (see docs/ARCHITECTURE.md § Telemetry pipeline): one ring per
// producer thread (a sim::ParallelRunner worker or a live session), one
// collector thread draining all rings. SPSC keeps both sides wait-free:
// the producer owns `tail`, the consumer owns `head`, and each caches the
// other's index so the common push/pop touches no shared cache line at
// all — an atomic load of the peer index happens only when the cached
// copy says the ring looks full/empty.
//
// Backpressure is explicit, never blocking: when a ring is full the
// producer sheds the event and counts it (split by CriticalTraceEvent
// priority, mirroring the resilience/ shed tiers) rather than stalling
// the simulation. Lossy-but-accounted is the fleet contract — the same
// one obs::TraceRecorder's byte budget implements downstream.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>

#include "obs/trace.hpp"
#include "sim/check.hpp"

namespace athena::obs::pipeline {

/// Producer-side shed/throughput ledger. Written by the producer thread
/// only; read (racily, monotonic counters) by stats reporters.
struct RingStats {
  std::uint64_t pushed = 0;          ///< events accepted into the ring
  std::uint64_t shed_low = 0;        ///< dropped while full: low priority
  std::uint64_t shed_critical = 0;   ///< dropped while full: critical events
  std::uint64_t high_water = 0;      ///< max observed occupancy

  [[nodiscard]] std::uint64_t shed() const { return shed_low + shed_critical; }
};

/// Fixed-capacity SPSC ring of TraceEvent. Capacity is rounded up to a
/// power of two (index masking instead of modulo). One slot is kept
/// empty to distinguish full from empty, so usable capacity is
/// `capacity() - 1`.
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_events) {
    std::size_t cap = 2;
    while (cap < capacity_events) cap <<= 1;
    mask_ = cap - 1;
    slots_.reset(new TraceEvent[cap]);
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Bytes of slot storage (RSS accounting for the memory-budget story).
  [[nodiscard]] std::size_t capacity_bytes() const {
    return capacity() * sizeof(TraceEvent);
  }

  // --- producer side ---

  /// Pushes up to `count` events; returns how many were accepted (a
  /// prefix of `events` — order is always preserved). Wait-free. The
  /// copy is at most two memcpy segments (pre/post wrap), not a
  /// per-slot loop.
  std::size_t PushBatch(const TraceEvent* events, std::size_t count) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = mask_ - (tail - cached_head_);
    if (free < count) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = mask_ - (tail - cached_head_);
      if (free < count) count = free;
    }
    const std::size_t start = tail & mask_;
    const std::size_t first = std::min(count, capacity() - start);
    std::memcpy(slots_.get() + start, events, first * sizeof(TraceEvent));
    std::memcpy(slots_.get(), events + first, (count - first) * sizeof(TraceEvent));
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  bool TryPush(const TraceEvent& event) { return PushBatch(&event, 1) == 1; }

  /// Producer-side occupancy estimate (exact for the producer thread).
  [[nodiscard]] std::size_t SizeEstimate() const {
    return tail_.load(std::memory_order_relaxed) -
           head_.load(std::memory_order_relaxed);
  }

  // --- consumer side ---

  /// Pops up to `max` events into `out`; returns how many. Wait-free.
  std::size_t PopBatch(TraceEvent* out, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = cached_tail_ - head;
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t n = avail < max ? avail : max;
    const std::size_t start = head & mask_;
    const std::size_t first = std::min(n, capacity() - start);
    std::memcpy(out, slots_.get() + start, first * sizeof(TraceEvent));
    std::memcpy(out + first, slots_.get(), (n - first) * sizeof(TraceEvent));
    head_.store(head + n, std::memory_order_release);
    return n;
  }

 private:
  std::unique_ptr<TraceEvent[]> slots_;
  std::size_t mask_ = 0;

  // Producer and consumer indices live on separate cache lines; each
  // side's cached copy of the peer index sits with its own index so the
  // fast path reads one line.
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer-owned
  std::size_t cached_head_ = 0;                   // producer's view of head_
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-owned
  std::size_t cached_tail_ = 0;                   // consumer's view of tail_
};

/// The producer-facing TraceSink over one ring shard: batches locally
/// (like TraceBatcher) and pushes batch-at-a-time, shedding with
/// priority-split accounting when the collector falls behind. Install as
/// the thread's trace sink (or fan out to it) — strictly one thread.
class RingTraceSink final : public TraceSink {
 public:
  static constexpr std::size_t kBatch = 256;

  explicit RingTraceSink(SpscRing* ring) : ring_(ring) {
    ATHENA_CHECK(ring != nullptr, "RingTraceSink needs a ring");
    ArmReserveWindow(buffer_.data(), buffer_.data() + kBatch);
  }
  ~RingTraceSink() override { Flush(); }

  RingTraceSink(const RingTraceSink&) = delete;
  RingTraceSink& operator=(const RingTraceSink&) = delete;

  void Emit(const TraceEvent& event) override {
    SyncFill();
    if (fill_ == kBatch) Flush();
    buffer_[fill_++] = event;
    // Re-arm before any flush: SyncFill derives the fill count from the
    // reserve cursor, so the cursor must account for this direct append
    // too (an empty window when full — TryReserve then returns null).
    ArmReserveWindow(buffer_.data() + fill_, buffer_.data() + kBatch);
    if (fill_ == kBatch) Flush();
  }

  void EmitBatch(const TraceEvent* events, std::size_t count) override {
    Flush();
    Push(events, count);
  }

  /// Drains the local batch into the ring. Call at quiescent points; the
  /// destructor flushes too.
  void Flush() {
    SyncFill();
    if (fill_ > 0) {
      Push(buffer_.data(), fill_);
      fill_ = 0;
    }
    ArmReserveWindow(buffer_.data(), buffer_.data() + kBatch);
  }

  [[nodiscard]] const RingStats& stats() const { return stats_; }
  [[nodiscard]] SpscRing* ring() const { return ring_; }

 private:
  /// The armed window always starts at buffer_ + fill_, so the cursor's
  /// offset *is* the true fill count after in-place reservations.
  void SyncFill() { fill_ = static_cast<std::size_t>(reserve_cursor() - buffer_.data()); }

  void Push(const TraceEvent* events, std::size_t count) {
    const std::size_t accepted = ring_->PushBatch(events, count);
    stats_.pushed += accepted;
    // Full ring: shed the remainder in resilience-tier order — low-
    // priority events go first, critical events (the detectors' evidence
    // stream) get an individual retry against whatever slots the
    // collector has freed meanwhile. Relative order of the events that
    // do land is preserved.
    for (std::size_t i = accepted; i < count; ++i) {
      if (CriticalTraceEvent(events[i])) {
        if (ring_->PushBatch(&events[i], 1) == 1) {
          ++stats_.pushed;
        } else {
          ++stats_.shed_critical;
        }
      } else {
        ++stats_.shed_low;
      }
    }
    const std::size_t depth = ring_->SizeEstimate();
    if (depth > stats_.high_water) stats_.high_water = depth;
  }

  SpscRing* ring_;
  RingStats stats_;
  std::size_t fill_ = 0;
  std::array<TraceEvent, kBatch> buffer_;
};

}  // namespace athena::obs::pipeline
