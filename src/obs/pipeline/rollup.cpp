#include "obs/pipeline/rollup.hpp"

#include <cmath>
#include <ostream>

#include "sim/check.hpp"

namespace athena::obs::pipeline {

// --- QuantileSketch ---

namespace {

/// Bucket index for v: octave from the binary exponent, sub-bucket from
/// the mantissa's top bits. Clamped to the sketch's range.
std::size_t BucketIndex(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;  // zeros/negatives/NaN pin low
  int exponent;
  const double mantissa = std::frexp(v, &exponent);  // v = mantissa * 2^exp, m ∈ [0.5, 1)
  // Octave relative to kMinExponent; frexp's exponent is one above the
  // floor-log2 for mantissa in [0.5, 1).
  int octave = (exponent - 1) - QuantileSketch::kMinExponent;
  if (octave < 0) return 0;
  if (octave >= QuantileSketch::kOctaves) return QuantileSketch::kBuckets - 1;
  const int sub = static_cast<int>((mantissa - 0.5) * 2.0 * QuantileSketch::kSubBuckets);
  const int clamped_sub =
      sub >= QuantileSketch::kSubBuckets ? QuantileSketch::kSubBuckets - 1 : sub;
  return static_cast<std::size_t>(octave) * QuantileSketch::kSubBuckets +
         static_cast<std::size_t>(clamped_sub);
}

/// Lower edge of bucket i's value range.
double BucketLow(std::size_t i) {
  const auto octave = static_cast<int>(i) / QuantileSketch::kSubBuckets;
  const auto sub = static_cast<int>(i) % QuantileSketch::kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / QuantileSketch::kSubBuckets,
                    octave + QuantileSketch::kMinExponent);
}

/// Upper edge of bucket i's value range (== BucketLow(i + 1) in-range).
double BucketHigh(std::size_t i) {
  const auto octave = static_cast<int>(i) / QuantileSketch::kSubBuckets;
  const auto sub = static_cast<int>(i) % QuantileSketch::kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / QuantileSketch::kSubBuckets,
                    octave + QuantileSketch::kMinExponent);
}

/// Geometric midpoint of bucket i — the value a quantile query reports.
double BucketMid(std::size_t i) { return std::sqrt(BucketLow(i) * BucketHigh(i)); }

}  // namespace

void QuantileSketch::Add(double v, std::uint64_t weight) {
  buckets_[BucketIndex(v)] += static_cast<std::uint32_t>(weight);
  count_ += weight;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) return i == 0 ? 0.0 : BucketMid(i);
  }
  return BucketMid(kBuckets - 1);
}

double QuantileSketch::CountAtOrBelow(double x) const {
  if (count_ == 0 || x < 0.0 || !std::isfinite(x)) return 0.0;
  const std::size_t idx = BucketIndex(x);
  double n = 0.0;
  for (std::size_t i = 0; i < idx; ++i) n += buckets_[i];
  if (idx == 0) {
    // The pinned low bucket holds zeros and sub-range values; any x ≥ 0
    // landing here dominates them all.
    n += buckets_[0];
  } else {
    const double lo = BucketLow(idx);
    const double hi = BucketHigh(idx);
    double frac = hi > lo ? (x - lo) / (hi - lo) : 1.0;
    if (frac < 0.0) frac = 0.0;
    if (frac > 1.0) frac = 1.0;
    n += frac * buckets_[idx];
  }
  return n;
}

// --- RollupBucket ---

void RollupBucket::Add(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  sketch.Add(v);
}

void RollupBucket::Merge(const RollupBucket& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
  count += other.count;
  sum += other.sum;
  sketch.Merge(other.sketch);
}

// --- TimeBucketRollup ---

TimeBucketRollup::TimeBucketRollup(Options options) : options_(options) {
  ATHENA_CHECK(options_.bucket_width.count() > 0, "bucket width must be positive");
  ATHENA_CHECK(options_.max_buckets >= 2, "need at least two buckets");
  // Pair-folding needs an even cap to stay exact.
  if (options_.max_buckets % 2 != 0) ++options_.max_buckets;
}

TimeBucketRollup::Series& TimeBucketRollup::SeriesFor(SeriesKey key) {
  auto [it, inserted] = series_.try_emplace(key);
  if (inserted) it->second.width = options_.bucket_width;
  return it->second;
}

void TimeBucketRollup::Halve(Series& s) {
  const std::size_t n = s.buckets.size();
  std::vector<RollupBucket> folded((n + 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    folded[i / 2].Merge(s.buckets[i]);
  }
  s.buckets = std::move(folded);
  s.width *= 2;
}

void TimeBucketRollup::Fold(Series& s, sim::TimePoint ts, double value) {
  std::int64_t us = ts.us();
  if (us < 0) us = 0;  // pre-epoch clock-fault events pin to bucket 0
  auto index = static_cast<std::size_t>(us / s.width.count());
  while (index >= options_.max_buckets) {
    Halve(s);
    ++rescales_;
    index = static_cast<std::size_t>(us / s.width.count());
  }
  if (index >= s.buckets.size()) s.buckets.resize(index + 1);
  s.buckets[index].Add(value);
}

void TimeBucketRollup::Emit(const TraceEvent& event) {
  double value;
  switch (event.phase) {
    case TraceEvent::Phase::kCounter:
      value = event.arg_count > 0 ? event.args[0].value : 0.0;
      break;
    case TraceEvent::Phase::kComplete:
      value = static_cast<double>(event.dur.count()) / 1e3;  // ms
      break;
    default:
      value = event.arg_count > 0 ? event.args[0].value : 1.0;
      break;
  }
  Fold(SeriesFor({event.name, event.layer}), event.ts, value);
  ++events_folded_;
}

void TimeBucketRollup::EmitBatch(const TraceEvent* events, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) Emit(events[i]);
}

void TimeBucketRollup::Merge(const TimeBucketRollup& other) {
  for (const auto& [key, theirs] : other.series_) {
    Series& ours = SeriesFor(key);
    if (ours.buckets.empty()) ours.width = theirs.width;
    // Reconcile widths by doubling the finer side — folds stay exact
    // because widths are the base width times a power of two.
    Series copy;
    const Series* src = &theirs;
    if (theirs.width != ours.width) {
      copy = theirs;
      while (copy.width < ours.width) Halve(copy);
      while (ours.width < copy.width) {
        Halve(ours);
        ++rescales_;
      }
      src = &copy;
    }
    if (src->buckets.size() > ours.buckets.size()) {
      ours.buckets.resize(src->buckets.size());
    }
    for (std::size_t i = 0; i < src->buckets.size(); ++i) {
      ours.buckets[i].Merge(src->buckets[i]);
    }
    while (ours.buckets.size() > options_.max_buckets) {
      Halve(ours);
      ++rescales_;
    }
  }
  events_folded_ += other.events_folded_;
}

RollupBucket TimeBucketRollup::SeriesAggregate(SeriesKey key) const {
  RollupBucket total;
  const auto it = series_.find(key);
  if (it == series_.end()) return total;
  for (const RollupBucket& b : it->second.buckets) total.Merge(b);
  return total;
}

RollupBucket TimeBucketRollup::SeriesAggregate(std::string_view name,
                                               Layer layer) const {
  return SeriesAggregate(
      SeriesKey{TraceNameRegistry::Instance().Intern(name), layer});
}

std::size_t TimeBucketRollup::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& [key, s] : series_) {
    bytes += sizeof(SeriesKey) + sizeof(Series) + s.buckets.capacity() * sizeof(RollupBucket);
  }
  return bytes;
}

namespace {

void WriteBucketJson(std::ostream& os, std::int64_t start_us, const RollupBucket& b) {
  os << "{\"t_ms\":" << static_cast<double>(start_us) / 1e3 << ",\"count\":" << b.count
     << ",\"sum\":" << b.sum << ",\"min\":" << b.min << ",\"max\":" << b.max
     << ",\"p50\":" << b.sketch.Quantile(0.5) << ",\"p99\":" << b.sketch.Quantile(0.99)
     << "}";
}

}  // namespace

void TimeBucketRollup::WriteJson(std::ostream& os) const {
  os << "{\n  \"bucket_width_us\": " << options_.bucket_width.count()
     << ",\n  \"events_folded\": " << events_folded_
     << ",\n  \"rescales\": " << rescales_ << ",\n  \"series\": {\n";
  bool first_series = true;
  for (const auto& [key, s] : series_) {
    if (!first_series) os << ",\n";
    first_series = false;
    os << "    \"" << ToString(key.layer) << '/'
       << TraceNameRegistry::Instance().NameOf(key.name)
       << "\": {\"width_us\":" << s.width.count() << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      if (s.buckets[i].count == 0) continue;  // sparse series stay sparse
      if (!first) os << ',';
      first = false;
      WriteBucketJson(os, static_cast<std::int64_t>(i) * s.width.count(),
                      s.buckets[i]);
    }
    RollupBucket total;
    for (const RollupBucket& b : s.buckets) total.Merge(b);
    os << "],\"total\":";
    WriteBucketJson(os, 0, total);
    os << "}";
  }
  os << "\n  }\n}\n";
}

void TimeBucketRollup::WriteCsv(std::ostream& os) const {
  os << "series,layer,bucket_start_ms,count,sum,min,max,p50,p99\n";
  for (const auto& [key, s] : series_) {
    const std::string name = TraceNameRegistry::Instance().NameOf(key.name);
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      const RollupBucket& b = s.buckets[i];
      if (b.count == 0) continue;
      os << name << ',' << ToString(key.layer) << ','
         << static_cast<double>(static_cast<std::int64_t>(i) * s.width.count()) / 1e3
         << ',' << b.count << ',' << b.sum << ',' << b.min << ',' << b.max << ','
         << b.sketch.Quantile(0.5) << ',' << b.sketch.Quantile(0.99) << '\n';
    }
  }
}

}  // namespace athena::obs::pipeline
