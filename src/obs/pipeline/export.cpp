#include "obs/pipeline/export.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "obs/pipeline/columnar.hpp"
#include "obs/prom_text.hpp"
#include "obs/trace_json.hpp"

namespace athena::obs::pipeline {
namespace {

/// Shard assignment on the *family* name (prefix + sanitized metric), so
/// a family's `_count`/`_sum`/quantile series never split across shards.
bool OnShard(const std::string& family, const ShardedExpositionOptions& options) {
  if (options.shard_count <= 1) return true;
  return prom::NameShard(family) % options.shard_count == options.shard;
}

void WriteGauge(std::ostream& os, const std::string& name, double value,
                const char* help) {
  prom::WriteHeader(os, name, "gauge", help);
  os << name << ' ';
  prom::WriteValue(os, value);
  os << '\n';
}

}  // namespace

void WritePrometheusShard(std::ostream& os, const TimeBucketRollup& rollup,
                          const MetricsRegistry* registry,
                          ShardedExpositionOptions options) {
  os << "# Athena sharded exposition (Prometheus text format 0.0.4), shard "
     << options.shard << '/' << options.shard_count << "\n";

  if (registry != nullptr) {
    for (const auto& [name, value] : registry->counters()) {
      const std::string full = prom::SanitizeMetricName(options.prefix + name);
      if (!OnShard(full, options)) continue;
      prom::WriteHeader(os, full, "counter", "Athena counter");
      os << full << ' ' << value << '\n';
    }
    for (const auto& [name, value] : registry->gauges()) {
      const std::string full = prom::SanitizeMetricName(options.prefix + name);
      if (!OnShard(full, options)) continue;
      WriteGauge(os, full, value, "Athena gauge");
    }
  }

  for (const auto& [key, series] : rollup.series()) {
    const std::string family = prom::SanitizeMetricName(
        options.prefix + "rollup_" +
        TraceNameRegistry::Instance().NameOf(key.name));
    if (!OnShard(family, options)) continue;
    RollupBucket total;
    for (const RollupBucket& b : series.buckets) total.Merge(b);
    const std::string labels = std::string{"{layer=\""} + ToString(key.layer) + "\"}";
    prom::WriteHeader(os, family, "summary", "Athena rollup series");
    os << family << "_count" << labels << ' ' << total.count << '\n';
    os << family << "_sum" << labels << ' ';
    prom::WriteValue(os, total.sum);
    os << '\n';
    for (const auto& [q, v] :
         {std::pair<const char*, double>{"0.5", total.sketch.Quantile(0.5)},
          {"0.99", total.sketch.Quantile(0.99)}}) {
      os << family << "{layer=\"" << ToString(key.layer) << "\",quantile=\"" << q
         << "\"} ";
      prom::WriteValue(os, v);
      os << '\n';
    }
    os << family << "_min" << labels << ' ';
    prom::WriteValue(os, total.min);
    os << '\n';
    os << family << "_max" << labels << ' ';
    prom::WriteValue(os, total.max);
    os << '\n';
  }
}

std::uint64_t WriteChunkedPerfetto(std::istream& in, std::ostream& os) {
  ColumnarReader reader{in};
  jsonio::NameCache names;

  // Track metadata must precede events, and which layers appear isn't
  // known until the stream ends — emit every track; Perfetto ignores
  // empty ones.
  bool all_layers[kLayerCount];
  for (bool& used : all_layers) used = true;
  jsonio::WriteTraceHeader(os, all_layers);

  std::vector<TraceEvent> block;
  std::vector<const TraceEvent*> sorted;
  std::uint64_t emitted = 0;
  while (reader.NextBlock(block)) {
    // Sort within the block only: flat memory. Cross-block disorder is
    // bounded by block size and tolerated by the JSON importer.
    sorted.clear();
    sorted.reserve(block.size());
    for (const TraceEvent& e : block) sorted.push_back(&e);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       return a->ts < b->ts;
                     });
    for (const TraceEvent* e : sorted) {
      os << ",\n";
      jsonio::WriteEventJson(os, *e, names.Resolve(e->name));
      ++emitted;
    }
  }
  reader.VerifyFooter();
  os << "\n]}\n";
  return emitted;
}

}  // namespace athena::obs::pipeline
