// The consumer half of the sharded ring topology: one collector thread
// draining every producer ring with batched dequeues and fanning the
// merged stream out to downstream sinks (rollups, the columnar writer,
// a LiveEngine).
//
// Why one thread: every downstream consumer then runs single-threaded —
// LiveEngine, TimeBucketRollup and ColumnarWriter need no locks, exactly
// like they don't when fed directly from a simulation thread. The
// collector is the only place in the pipeline where shards merge, and it
// merges by batch, so cross-shard interleaving is at batch granularity
// (downstream consumers must be order-insensitive across shards;
// per-shard order is preserved).
//
// The collector also runs *inline*: `DrainOnce()` on the caller's thread
// drains everything currently buffered. Deterministic tools (tests, the
// CLI's single-run mode) use inline mode; the background thread is for
// live ingest and the throughput bench.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/pipeline/ring.hpp"
#include "obs/trace.hpp"

namespace athena::obs::pipeline {

/// Collector-side counters. Written by whichever thread drains; read
/// after Stop() (or racily for progress displays).
struct CollectorStats {
  std::uint64_t events = 0;        ///< events delivered downstream
  std::uint64_t batches = 0;       ///< non-empty dequeue batches
  std::uint64_t idle_spins = 0;    ///< full sweeps that found every ring empty
  std::uint64_t max_batch = 0;     ///< largest single dequeue
};

class Collector {
 public:
  struct Options {
    /// Per-ring slot count (rounded up to a power of two by SpscRing).
    std::size_t ring_capacity = 1 << 14;
    /// Max events per dequeue; also the fan-out batch size.
    std::size_t drain_batch = 512;
    /// Background-thread backoff once every ring is empty.
    std::chrono::microseconds idle_sleep{50};
  };

  Collector() : Collector(Options{}) {}
  explicit Collector(Options options);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Downstream consumers, invoked on the draining thread in
  /// registration order. Register everything before Start().
  void AddSink(TraceSink* sink);

  /// Creates a new ring shard and its producer sink. The returned sink
  /// is owned by the collector and valid for its lifetime; hand it to
  /// exactly one producer thread. Thread-safe (new producers may join a
  /// running collector — a ParallelRunner worker spinning up mid-sweep).
  [[nodiscard]] RingTraceSink* AddShard();

  /// Starts the background drain thread. Idempotent.
  void Start();

  /// Drains every ring until all are simultaneously empty, then stops
  /// the thread. Producers must have flushed (RingTraceSink::Flush) and
  /// gone quiet first. Also usable without Start() — inline mode.
  void Stop();

  /// Inline drain: one full sweep over all rings on the calling thread.
  /// Returns events delivered. Must not race a running background
  /// thread — it's either/or.
  std::size_t DrainOnce();

  [[nodiscard]] const CollectorStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t shard_count() const;

  /// Sum of the producer-side ledgers across all shards.
  [[nodiscard]] RingStats TotalRingStats() const;

  /// Publishes `pipeline.*` gauges (ingested events, per-tier ring
  /// sheds, high water) into the calling thread's MetricsRegistry.
  void PublishMetrics() const;

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : ring(capacity), sink(&ring) {}
    SpscRing ring;
    RingTraceSink sink;
  };

  /// One sweep over a stable snapshot of the shard list.
  std::size_t Sweep();

  Options options_;
  mutable std::mutex shards_mu_;  ///< guards shards_ growth only
  std::vector<std::unique_ptr<Shard>> shards_;

  std::vector<TraceSink*> sinks_;
  std::vector<TraceEvent> batch_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  CollectorStats stats_;
};

}  // namespace athena::obs::pipeline
