// TelemetryPipeline — the assembled ingest path tools use:
//
//   producer threads (sweep workers / live sessions)
//        │ RingTraceSink (per-thread SPSC shard, batched push)
//        ▼
//   Collector (one drain thread, or inline DrainOnce)
//        ├─► TimeBucketRollup      (bounded-memory series + CDF sketches)
//        ├─► ColumnarWriter        (ATHC stream, optional)
//        └─► live::LiveEngine      (optional: detectors on the merged feed)
//
// Wiring a sweep: pass MakeWorkerHooks() to sim::ParallelRunner, then
// each run installs CurrentThreadSink() as (or alongside) its trace
// sink — see ObsSession::Options::extra_sink. Wiring a single run:
// BindCurrentThread() once and drain inline.
#pragma once

#include <iosfwd>
#include <memory>

#include "obs/pipeline/collector.hpp"
#include "obs/pipeline/columnar.hpp"
#include "obs/pipeline/rollup.hpp"
#include "sim/runner.hpp"

namespace athena::obs::pipeline {

class TelemetryPipeline {
 public:
  struct Options {
    Collector::Options collector{};
    TimeBucketRollup::Options rollup{};
    /// Destination for the ATHC columnar stream; null = no columnar out.
    /// Must outlive Finish().
    std::ostream* columnar_out = nullptr;
    /// Extra downstream sinks on the collector thread (e.g. a
    /// LiveEngine). Single-threaded consumption guaranteed.
    std::vector<TraceSink*> sinks;
    /// Run the background collector thread. Off = inline draining
    /// (deterministic single-run mode; call Drain()/Finish() yourself).
    bool background = false;
  };

  explicit TelemetryPipeline(Options options);
  ~TelemetryPipeline();

  TelemetryPipeline(const TelemetryPipeline&) = delete;
  TelemetryPipeline& operator=(const TelemetryPipeline&) = delete;

  /// Binds a fresh ring shard to the calling thread (idempotent per
  /// thread per pipeline). The bound sink is reachable via
  /// CurrentThreadSink() until UnbindCurrentThread().
  void BindCurrentThread();

  /// Flushes and unbinds the calling thread's shard sink.
  void UnbindCurrentThread();

  /// The calling thread's bound shard sink, or null when unbound. Null
  /// is safe to pass to ObsSession::Options::extra_sink.
  [[nodiscard]] static TraceSink* CurrentThreadSink();

  /// ParallelRunner wiring: binds/unbinds one shard per worker thread.
  [[nodiscard]] sim::WorkerHooks MakeWorkerHooks();

  /// Inline drain of everything currently ringed (background == false).
  std::size_t Drain();

  /// Stops the collector (final drain included), finishes the columnar
  /// stream, publishes `pipeline.*` metrics. Idempotent; the destructor
  /// calls it.
  void Finish();

  [[nodiscard]] TimeBucketRollup& rollup() { return rollup_; }
  [[nodiscard]] const TimeBucketRollup& rollup() const { return rollup_; }
  [[nodiscard]] Collector& collector() { return collector_; }
  [[nodiscard]] const Collector& collector() const { return collector_; }
  /// Null when no columnar_out was configured.
  [[nodiscard]] ColumnarWriter* columnar() { return columnar_.get(); }

 private:
  Options options_;
  TimeBucketRollup rollup_;
  Collector collector_;
  std::unique_ptr<ColumnarWriter> columnar_;
  bool finished_ = false;
};

}  // namespace athena::obs::pipeline
