#include "obs/live/health.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/live/detectors.hpp"
#include "obs/live/live.hpp"

namespace athena::obs::live {
namespace {

/// Mirrors core::RootCause (obs/live must not depend on core/).
constexpr const char* kCoreCauseNames[] = {
    "none",       "slot_alignment",      "bsr_wait",
    "harq_rtx",   "capacity_contention", "cause5",
    "cause6",     "cause7",
};

std::string Percent(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

std::string SummaryFor(const HealthReport::Cause& c) {
  std::string s = std::to_string(c.anomalies);
  s += c.anomalies == 1 ? " anomaly" : " anomalies";
  switch (c.kind) {
    case AnomalyKind::kDelaySpreadQuantization:
      s += ", arrival phases concentrated on the UL slot grid (peak confidence " +
           Percent(c.max_confidence) + ")";
      break;
    case AnomalyKind::kHarqRtxInflation:
      if (c.suspect > 0) {
        s += ", " + Percent(c.share) + " of late packets attributable to HARQ RTX (" +
             std::to_string(c.attributed) + "/" + std::to_string(c.suspect) + ")";
      }
      break;
    case AnomalyKind::kBsrGrantWait:
      if (c.suspect > 0) {
        s += ", " + Percent(c.share) + " of backlog episodes waited on a BSR grant (" +
             std::to_string(c.attributed) + "/" + std::to_string(c.suspect) + ")";
      }
      break;
    case AnomalyKind::kOverGranting:
      if (c.suspect > 0) {
        s += ", " + Percent(c.share) + " of requested-grant bytes unused (" +
             std::to_string(c.attributed) + "/" + std::to_string(c.suspect) + " kB)";
      }
      break;
    case AnomalyKind::kQueueBuildup:
      s += ", RLC queue never drained over the detection window";
      break;
    case AnomalyKind::kTelemetryGap:
      if (c.suspect > 0) {
        s += ", " + Percent(c.share) +
             " of deliveries crossed the RAN while the TB feed was silent (" +
             std::to_string(c.attributed) + "/" + std::to_string(c.suspect) + ")";
      } else {
        s += ", telemetry feed lost records while traffic flowed";
      }
      break;
    case AnomalyKind::kOverload:
      if (c.suspect > 0) {
        s += ", " + std::to_string(c.suspect) + " records shed under memory pressure (" +
             std::to_string(c.attributed) + " were data records)";
      } else {
        s += ", the overload governor shed telemetry load";
      }
      break;
  }
  return s;
}

}  // namespace

HealthReport HealthReport::Build(const LiveEngine& live) {
  HealthReport report;
  report.deliveries = live.deliveries();
  report.frames_rendered = live.frames_rendered();
  report.frames_late = live.frames_late();
  report.overuse_events = live.overuse_events();
  report.link_drops = live.link_drops();
  report.anomalies_total = live.bank().anomaly_count();
  report.log_dropped = live.log().dropped_count();
  report.core_cause_counts = live.core_cause_counts();

  for (const auto& detector : live.bank().detectors()) {
    if (detector->anomalies_emitted() == 0) continue;
    Cause cause;
    cause.kind = detector->kind();
    cause.layer = Layer::kRan;
    cause.detector = detector->name();
    cause.anomalies = detector->anomalies_emitted();
    const auto attribution = detector->attribution();
    cause.suspect = attribution.suspect;
    cause.attributed = attribution.attributed;
    cause.share = attribution.suspect > 0
                      ? static_cast<double>(attribution.attributed) /
                            static_cast<double>(attribution.suspect)
                      : 0.0;
    cause.max_confidence = detector->max_confidence();
    cause.summary = SummaryFor(cause);
    report.causes.push_back(std::move(cause));
  }

  std::sort(report.causes.begin(), report.causes.end(),
            [](const Cause& a, const Cause& b) {
              if (a.anomalies != b.anomalies) return a.anomalies > b.anomalies;
              return a.max_confidence > b.max_confidence;
            });
  return report;
}

void HealthReport::Render(std::ostream& os) const {
  os << "=== session health ===\n";
  os << "deliveries: " << deliveries << ", frames rendered: " << frames_rendered
     << " (" << frames_late << " late)";
  if (frames_rendered > 0) {
    os << " ["
       << Percent(static_cast<double>(frames_late) /
                  static_cast<double>(frames_rendered))
       << " late]";
  }
  os << '\n';
  os << "cc overuse events: " << overuse_events << ", link drops: " << link_drops
     << '\n';

  if (healthy()) {
    os << "no anomalies detected — channel looks healthy\n";
    return;
  }

  os << "anomalies: " << anomalies_total;
  if (log_dropped > 0) os << " (" << log_dropped << " evicted from the log ring)";
  os << '\n';
  os << "root causes, ranked:\n";
  std::size_t rank = 1;
  for (const Cause& c : causes) {
    os << "  " << rank++ << ". " << ToString(c.kind) << " [" << ToString(c.layer)
       << "] — " << c.summary << '\n';
  }

  std::uint64_t core_total = 0;
  for (std::size_t i = 1; i < core_cause_counts.size(); ++i) {
    core_total += core_cause_counts[i];
  }
  if (core_total > 0) {
    os << "correlator corroboration (per-packet primary causes):\n";
    for (std::size_t i = 1; i < core_cause_counts.size(); ++i) {
      if (core_cause_counts[i] == 0) continue;
      os << "  " << kCoreCauseNames[i] << ": " << core_cause_counts[i] << " ("
         << Percent(static_cast<double>(core_cause_counts[i]) /
                    static_cast<double>(core_total))
         << ")\n";
    }
  }
}

}  // namespace athena::obs::live
