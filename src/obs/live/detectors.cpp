#include "obs/live/detectors.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace athena::obs::live {

namespace {

std::string Format(const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, a, b);
  return buf;
}

}  // namespace

bool Detector::Emit(AnomalyEvent event) {
  const sim::TimePoint now = event.window_end;
  if (emitted_once_ && now - last_emit_ < config_.cooldown) return false;
  emitted_once_ = true;
  last_emit_ = now;
  ++emitted_;
  max_confidence_ = std::max(max_confidence_, event.confidence);
  event.detector = name();
  if (emitter_) emitter_(event);
  return true;
}

// ---------------------------------------------------------------------------
// SlotQuantizationDetector
// ---------------------------------------------------------------------------

void SlotQuantizationDetector::OnDelivery(const Delivery& d) {
  if (have_last_) {
    const std::int64_t delta = (d.delivered_at - last_delivery_).count();
    // Zero deltas are packets sharing one slot's TB — trivially grid-
    // aligned; only the spacing *between* slots carries information.
    if (delta > 0) {
      deltas_.push_back({delta, d.delivered_at});
      while (deltas_.size() > config_.quant_window) deltas_.pop_front();
      if (++since_eval_ >= 16) {
        since_eval_ = 0;
        Evaluate(d.delivered_at);
      }
    }
  }
  last_delivery_ = d.delivered_at;
  have_last_ = true;
}

void SlotQuantizationDetector::Evaluate(sim::TimePoint now) {
  if (deltas_.size() < config_.quant_min_samples) return;
  const std::int64_t period = config_.cell.ul_slot_period.count();
  if (period <= 0) return;

  // Phase histogram of delta mod slot-period. A quantized arrival
  // process piles into one bin; under a smooth wire the phases spread
  // uniformly (expected max share ≈ 1/bins).
  std::vector<std::uint32_t> bins(config_.quant_bins, 0);
  for (const DeltaSample& s : deltas_) {
    const std::int64_t phase = s.delta_us % period;
    const auto idx = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(phase) * bins.size()) / static_cast<std::uint64_t>(period));
    ++bins[std::min(idx, bins.size() - 1)];
  }
  const std::uint32_t peak = *std::max_element(bins.begin(), bins.end());
  const double share = static_cast<double>(peak) / static_cast<double>(deltas_.size());
  if (share < config_.quant_concentration) return;

  AnomalyEvent e;
  e.kind = kind();
  e.layer = Layer::kRan;
  e.window_begin = deltas_.front().t;
  e.window_end = now;
  e.confidence = share;
  e.message = Format("core arrivals quantized onto the %.1f ms UL slot grid "
                     "(%.0f%% of inter-arrival phases in one bin)",
                     sim::ToMs(config_.cell.ul_slot_period), share * 100.0);
  e.AddEvidence("concentration", share);
  e.AddEvidence("samples", static_cast<double>(deltas_.size()));
  e.AddEvidence("grid_ms", sim::ToMs(config_.cell.ul_slot_period));
  Emit(std::move(e));
}

// ---------------------------------------------------------------------------
// HarqRtxDetector
// ---------------------------------------------------------------------------

void HarqRtxDetector::OnHarqChain(const HarqChainObservation& c) {
  if (c.rounds == 0) return;
  chain_ends_.push_back(c.done);
  while (chain_ends_.size() > 64) chain_ends_.pop_front();
}

void HarqRtxDetector::OnDelivery(const Delivery& d) {
  const sim::Duration owd = d.delivered_at - d.enqueued_at;

  // Sliding-window floor = the uncongested baseline this packet's delay
  // is compared against. Needs a few samples before steps mean anything.
  sim::Duration floor = owd;
  for (const sim::Duration w : owds_) floor = std::min(floor, w);
  owds_.push_back(owd);
  while (owds_.size() > config_.rtx_window) owds_.pop_front();
  if (owds_.size() < 16) return;

  const auto step_threshold = sim::Duration{static_cast<std::int64_t>(
      config_.rtx_step_fraction * static_cast<double>(config_.cell.rtx_delay.count()))};
  if (owd - floor < step_threshold) return;

  if (window_suspect_ == 0) window_begin_ = d.delivered_at;
  ++suspect_;
  ++window_suspect_;

  // Attributed iff a retransmitted HARQ chain completed within the last
  // couple of slots before this delivery (decode → core hop is short).
  const sim::Duration attr_window = 2 * config_.cell.ul_slot_period;
  const bool explained =
      std::any_of(chain_ends_.begin(), chain_ends_.end(), [&](sim::TimePoint end) {
        return end <= d.delivered_at && d.delivered_at - end <= attr_window;
      });
  if (explained) {
    ++attributed_;
    ++window_attributed_;
    window_inflation_ms_ += sim::ToMs(owd - floor);
  }

  if (window_attributed_ < config_.rtx_min_attributed) return;
  const double share =
      static_cast<double>(window_attributed_) / static_cast<double>(window_suspect_);
  if (share < config_.rtx_min_share) return;

  AnomalyEvent e;
  e.kind = kind();
  e.layer = Layer::kRan;
  e.window_begin = window_begin_;
  e.window_end = d.delivered_at;
  e.confidence = share;
  e.message = Format("HARQ retransmissions inflating per-packet delay "
                     "(~%.1f ms mean step, %.0f%% of late packets explained)",
                     window_inflation_ms_ / static_cast<double>(window_attributed_),
                     share * 100.0);
  e.AddEvidence("attributed", static_cast<double>(window_attributed_));
  e.AddEvidence("suspect", static_cast<double>(window_suspect_));
  e.AddEvidence("mean_inflation_ms",
                window_inflation_ms_ / static_cast<double>(window_attributed_));
  e.AddEvidence("rtx_delay_ms", sim::ToMs(config_.cell.rtx_delay));
  if (Emit(std::move(e))) {
    window_suspect_ = 0;
    window_attributed_ = 0;
    window_inflation_ms_ = 0.0;
  }
}

// ---------------------------------------------------------------------------
// BsrGrantWaitDetector
// ---------------------------------------------------------------------------

void BsrGrantWaitDetector::OnBacklog(const BacklogSample& s) {
  if (s.bytes > 0.0) {
    if (!waiting_) {
      waiting_ = true;
      wait_begin_ = s.t;
    }
  } else {
    waiting_ = false;  // drained without us seeing the serving TB
  }
}

void BsrGrantWaitDetector::OnTb(const TbObservation& tb) {
  if (!waiting_ || tb.used_bytes == 0 || tb.harq_round != 0) return;
  waiting_ = false;
  const double wait_ms = sim::ToMs(tb.slot_time - wait_begin_);
  ++episodes_;
  if (wait_ms >= config_.bsr_wait_threshold_ms) ++slow_episodes_;
  episodes_window_.push_back({wait_ms, tb.slot_time});
  while (episodes_window_.size() > 32) episodes_window_.pop_front();

  if (episodes_window_.size() < config_.bsr_min_episodes) return;
  double sum = 0.0;
  double worst = 0.0;
  for (const Episode& ep : episodes_window_) {
    sum += ep.wait_ms;
    worst = std::max(worst, ep.wait_ms);
  }
  const double mean = sum / static_cast<double>(episodes_window_.size());
  if (mean < config_.bsr_wait_threshold_ms) return;

  AnomalyEvent e;
  e.kind = kind();
  e.layer = Layer::kRan;
  e.window_begin = episodes_window_.front().served_at;
  e.window_end = tb.slot_time;
  e.confidence =
      std::min(1.0, mean / sim::ToMs(config_.cell.bsr_scheduling_delay));
  e.message = Format("bursts wait %.1f ms on average for their first serving "
                     "grant (worst %.1f ms) — BSR scheduling delay",
                     mean, worst);
  e.AddEvidence("mean_wait_ms", mean);
  e.AddEvidence("max_wait_ms", worst);
  e.AddEvidence("episodes", static_cast<double>(episodes_window_.size()));
  e.AddEvidence("bsr_delay_ms", sim::ToMs(config_.cell.bsr_scheduling_delay));
  Emit(std::move(e));
}

// ---------------------------------------------------------------------------
// OverGrantingDetector
// ---------------------------------------------------------------------------

void OverGrantingDetector::OnTb(const TbObservation& tb) {
  if (tb.harq_round != 0 || !tb.requested_grant) return;
  window_.push_back({tb.tbs_bytes, tb.used_bytes, tb.slot_time});
  while (window_.size() > config_.grant_window_tbs) window_.pop_front();
  granted_total_ += tb.tbs_bytes;
  wasted_total_ += tb.tbs_bytes - tb.used_bytes;
  if (++since_eval_ >= 32) {
    since_eval_ = 0;
    Evaluate(tb.slot_time);
  }
}

void OverGrantingDetector::Evaluate(sim::TimePoint now) {
  std::uint64_t granted = 0;
  std::uint64_t used = 0;
  for (const Grant& g : window_) {
    granted += g.tbs;
    used += g.used;
  }
  if (granted < config_.grant_min_requested_bytes) return;
  const double utilization = static_cast<double>(used) / static_cast<double>(granted);
  if (utilization > config_.grant_utilization_threshold) return;

  AnomalyEvent e;
  e.kind = kind();
  e.layer = Layer::kRan;
  e.window_begin = window_.front().t;
  e.window_end = now;
  e.confidence = 1.0 - utilization;
  e.message = Format("requested grants only %.0f%% utilized (%.0f kB granted "
                     "from stale BSRs went out as padding)",
                     utilization * 100.0,
                     static_cast<double>(granted - used) / 1000.0);
  e.AddEvidence("utilization", utilization);
  e.AddEvidence("granted_bytes", static_cast<double>(granted));
  e.AddEvidence("wasted_bytes", static_cast<double>(granted - used));
  e.AddEvidence("window_tbs", static_cast<double>(window_.size()));
  Emit(std::move(e));
}

// ---------------------------------------------------------------------------
// QueueBuildupDetector
// ---------------------------------------------------------------------------

void QueueBuildupDetector::OnBacklog(const BacklogSample& s) {
  window_.push_back(s);
  while (window_.size() > config_.queue_window) window_.pop_front();
  if (++since_eval_ < 8 || window_.size() < config_.queue_window) return;
  since_eval_ = 0;

  double lo = window_.front().bytes;
  double hi = lo;
  double sum = 0.0;
  for (const BacklogSample& b : window_) {
    lo = std::min(lo, b.bytes);
    hi = std::max(hi, b.bytes);
    sum += b.bytes;
  }
  if (lo < config_.queue_floor_bytes) return;  // the buffer still drains

  AnomalyEvent e;
  e.kind = kind();
  e.layer = Layer::kRan;
  e.window_begin = window_.front().t;
  e.window_end = s.t;
  e.confidence = std::min(1.0, lo / (4.0 * config_.queue_floor_bytes));
  e.message = Format("RLC backlog never drained below %.0f kB over the last "
                     "%.0f ms — capacity contention (cross traffic?)",
                     lo / 1000.0, sim::ToMs(s.t - window_.front().t));
  e.AddEvidence("min_backlog_bytes", lo);
  e.AddEvidence("max_backlog_bytes", hi);
  e.AddEvidence("mean_backlog_bytes", sum / static_cast<double>(window_.size()));
  e.AddEvidence("window_ms", sim::ToMs(s.t - window_.front().t));
  Emit(std::move(e));
}

// ---------------------------------------------------------------------------
// TelemetryGapDetector
// ---------------------------------------------------------------------------

void TelemetryGapDetector::OnDelivery(const Delivery& d) {
  ++deliveries_;
  delivered_bytes_ += d.bytes;
  if (!tb_seen_) return;  // no feed yet: nothing to diagnose

  // Test 1 — contiguous silence: the RAN is demonstrably serving packets
  // (this delivery) but the control-channel feed stopped reporting TBs.
  if (d.delivered_at - last_tb_ > config_.tele_gap_max_silence) {
    if (silent_deliveries_ == 0) silence_begin_ = last_tb_;
    ++silent_deliveries_;
    ++silent_deliveries_total_;
    if (silent_deliveries_ >= config_.tele_gap_min_deliveries) {
      AnomalyEvent e;
      e.kind = kind();
      e.layer = Layer::kRan;
      e.window_begin = silence_begin_;
      e.window_end = d.delivered_at;
      e.confidence = std::min(
          1.0, static_cast<double>(silent_deliveries_) /
                   (2.0 * static_cast<double>(config_.tele_gap_min_deliveries)));
      e.message = Format("telemetry feed silent for %.0f ms while %.0f packets "
                         "crossed the RAN — sniffer outage or record loss",
                         sim::ToMs(d.delivered_at - last_tb_),
                         static_cast<double>(silent_deliveries_));
      e.AddEvidence("silence_ms", sim::ToMs(d.delivered_at - last_tb_));
      e.AddEvidence("deliveries_in_silence", static_cast<double>(silent_deliveries_));
      if (Emit(std::move(e))) silent_deliveries_ = 0;
    }
    return;
  }

  // Test 2 — byte conservation: every byte delivered through the RAN was
  // carried by some TB, so round-0 TB payload must cover delivered bytes.
  // Random record loss that never leaves a long hole still shows up as a
  // deficit here.
  if (++since_ratio_eval_ < 32) return;
  since_ratio_eval_ = 0;
  if (delivered_bytes_ < config_.tele_gap_min_bytes) return;
  const double ratio = static_cast<double>(tb_payload_bytes_) /
                       static_cast<double>(delivered_bytes_);
  if (ratio >= config_.tele_gap_byte_ratio) return;
  AnomalyEvent e;
  e.kind = kind();
  e.layer = Layer::kRan;
  e.window_begin = silence_begin_;
  e.window_end = d.delivered_at;
  e.confidence = std::min(1.0, (config_.tele_gap_byte_ratio - ratio) /
                                   config_.tele_gap_byte_ratio + 0.5);
  e.message = Format("observed TBs account for only %.0f%% of the bytes delivered "
                     "through the RAN (%.0f kB unexplained) — telemetry record loss",
                     ratio * 100.0,
                     static_cast<double>(delivered_bytes_ - tb_payload_bytes_) / 1000.0);
  e.AddEvidence("tb_byte_ratio", ratio);
  e.AddEvidence("delivered_bytes", static_cast<double>(delivered_bytes_));
  e.AddEvidence("tb_payload_bytes", static_cast<double>(tb_payload_bytes_));
  Emit(std::move(e));
}

void TelemetryGapDetector::OnTb(const TbObservation& tb) {
  tb_seen_ = true;
  last_tb_ = std::max(last_tb_, tb.slot_time);
  // Round-0 only: HARQ retransmissions re-carry the same payload and
  // would double-count it.
  if (tb.harq_round == 0) tb_payload_bytes_ += tb.used_bytes;
  silent_deliveries_ = 0;
}

// ---------------------------------------------------------------------------
// DetectorBank
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// OverloadDetector
// ---------------------------------------------------------------------------

void OverloadDetector::OnShed(const ShedSample& s) {
  // Samples carry cumulative counts; only growth is new evidence.
  const bool grew = s.shed_total > last_total_;
  const bool capped_grew = s.shed_capped > last_capped_;
  last_total_ = std::max(last_total_, s.shed_total);
  last_capped_ = std::max(last_capped_, s.shed_capped);
  if (!grew || s.shed_total < static_cast<double>(config_.overload_min_shed)) return;

  AnomalyEvent e;
  e.kind = kind();
  e.layer = Layer::kOther;
  e.window_begin = s.t;
  e.window_end = s.t;
  // Sheds confined to the refinement tiers (ICMP, padding TBs, low-prio
  // trace) degrade confidence mildly; hard-capped data records mean the
  // budget was too small for even the high-priority load.
  e.confidence = capped_grew ? 1.0 : 0.6;
  e.message = Format("overload governor shed %.0f records under memory pressure "
                     "(%.0f were hard-capped data records)",
                     s.shed_total, s.shed_capped);
  e.AddEvidence("shed_total", s.shed_total);
  e.AddEvidence("shed_capped", s.shed_capped);
  Emit(std::move(e));
}

DetectorBank::DetectorBank(DetectorConfig config) : config_(config) {
  Add(std::make_unique<SlotQuantizationDetector>());
  Add(std::make_unique<HarqRtxDetector>());
  Add(std::make_unique<BsrGrantWaitDetector>());
  Add(std::make_unique<OverGrantingDetector>());
  Add(std::make_unique<QueueBuildupDetector>());
  Add(std::make_unique<TelemetryGapDetector>());
  Add(std::make_unique<OverloadDetector>());
}

void DetectorBank::Add(std::unique_ptr<Detector> detector) {
  detector->set_config(config_);
  detector->set_emitter([this](const AnomalyEvent& e) { Route(e); });
  detectors_.push_back(std::move(detector));
}

void DetectorBank::set_on_anomaly(std::function<void(const AnomalyEvent&)> cb) {
  on_anomaly_ = std::move(cb);
}

void DetectorBank::Route(const AnomalyEvent& event) {
  ++anomaly_count_;
  ++counts_by_kind_[static_cast<std::size_t>(event.kind)];
  if (on_anomaly_) on_anomaly_(event);
}

void DetectorBank::OnDelivery(const Delivery& d) {
  for (const auto& det : detectors_) det->OnDelivery(d);
}

void DetectorBank::OnTb(const TbObservation& tb) {
  for (const auto& det : detectors_) det->OnTb(tb);
}

void DetectorBank::OnHarqChain(const HarqChainObservation& c) {
  for (const auto& det : detectors_) det->OnHarqChain(c);
}

void DetectorBank::OnBacklog(const BacklogSample& s) {
  for (const auto& det : detectors_) det->OnBacklog(s);
}

void DetectorBank::OnOveruse(const OveruseObservation& o) {
  for (const auto& det : detectors_) det->OnOveruse(o);
}

void DetectorBank::OnShed(const ShedSample& s) {
  for (const auto& det : detectors_) det->OnShed(s);
}

}  // namespace athena::obs::live
