#include "obs/live/anomaly.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace athena::obs::live {

const char* ToString(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kDelaySpreadQuantization: return "delay-spread slot quantization";
    case AnomalyKind::kHarqRtxInflation: return "HARQ retransmission inflation";
    case AnomalyKind::kBsrGrantWait: return "BSR grant-wait";
    case AnomalyKind::kOverGranting: return "over-granting (PRB waste)";
    case AnomalyKind::kQueueBuildup: return "cross-traffic queue buildup";
    case AnomalyKind::kTelemetryGap: return "telemetry feed gap";
    case AnomalyKind::kOverload: return "telemetry overload shedding";
  }
  return "?";
}

const char* SlugFor(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kDelaySpreadQuantization: return "delay_spread_quantization";
    case AnomalyKind::kHarqRtxInflation: return "harq_rtx_inflation";
    case AnomalyKind::kBsrGrantWait: return "bsr_grant_wait";
    case AnomalyKind::kOverGranting: return "over_granting";
    case AnomalyKind::kQueueBuildup: return "queue_buildup";
    case AnomalyKind::kTelemetryGap: return "telemetry_gap";
    case AnomalyKind::kOverload: return "overload";
  }
  return "unknown";
}

namespace {

void WriteEscaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void WriteNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN
    os << 0;
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os << buf;
  }
}

void WriteRecordJson(std::ostream& os, const EventLog::Record& r) {
  switch (r.kind) {
    case EventLog::Record::Kind::kAnomaly: WriteJson(os, r.anomaly); return;
    case EventLog::Record::Kind::kSpan:
      os << "{\"type\":\"span\",\"layer\":\"" << obs::ToString(r.layer) << "\",\"name\":\"";
      WriteEscaped(os, r.name);
      os << "\",\"t_us\":" << r.t.us() << ",\"duration_ms\":";
      WriteNumber(os, r.value);
      os << "}";
      return;
    case EventLog::Record::Kind::kMetric:
      os << "{\"type\":\"metric\",\"name\":\"";
      WriteEscaped(os, r.name);
      os << "\",\"t_us\":" << r.t.us() << ",\"value\":";
      WriteNumber(os, r.value);
      os << "}";
      return;
  }
}

}  // namespace

void WriteJson(std::ostream& os, const AnomalyEvent& e) {
  os << "{\"type\":\"anomaly\",\"kind\":\"" << SlugFor(e.kind) << "\",\"layer\":\""
     << obs::ToString(e.layer) << "\",\"window_begin_us\":" << e.window_begin.us()
     << ",\"window_end_us\":" << e.window_end.us() << ",\"confidence\":";
  WriteNumber(os, e.confidence);
  os << ",\"detector\":\"";
  WriteEscaped(os, e.detector);
  os << "\",\"message\":\"";
  WriteEscaped(os, e.message);
  os << "\",\"evidence\":{";
  for (std::size_t i = 0; i < e.evidence_count; ++i) {
    if (i > 0) os << ",";
    os << "\"";
    WriteEscaped(os, e.evidence[i].key);
    os << "\":";
    WriteNumber(os, e.evidence[i].value);
  }
  os << "}}";
}

EventLog::EventLog(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void EventLog::Push(Record record) {
  if (jsonl_ != nullptr) {
    WriteRecordJson(*jsonl_, record);
    *jsonl_ << '\n';
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++pushed_;
}

void EventLog::PushAnomaly(const AnomalyEvent& event) {
  Record r;
  r.kind = Record::Kind::kAnomaly;
  r.t = event.window_end;
  r.anomaly = event;
  Push(std::move(r));
}

void EventLog::PushSpan(Layer layer, std::string_view name, sim::TimePoint end,
                        double duration_ms) {
  Record r;
  r.kind = Record::Kind::kSpan;
  r.t = end;
  r.layer = layer;
  r.name = name;
  r.value = duration_ms;
  Push(std::move(r));
}

void EventLog::PushMetric(std::string_view name, sim::TimePoint t, double value) {
  Record r;
  r.kind = Record::Kind::kMetric;
  r.t = t;
  r.name = name;
  r.value = value;
  Push(std::move(r));
}

std::vector<const EventLog::Record*> EventLog::Ordered() const {
  std::vector<const Record*> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(&ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void EventLog::WriteJsonl(std::ostream& os) const {
  for (const Record* r : Ordered()) {
    WriteRecordJson(os, *r);
    os << '\n';
  }
}

}  // namespace athena::obs::live
