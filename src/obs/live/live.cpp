#include "obs/live/live.hpp"

namespace athena::obs::live {

LiveEngine::LiveEngine(Options options)
    : options_(options), bank_(options.detectors), log_(options.log_capacity) {
  bank_.set_on_anomaly([this](const AnomalyEvent& e) {
    log_.PushAnomaly(e);
    if (anomaly_listener_) anomaly_listener_(e);
  });
}

namespace {

/// The only async spans the decoder acts on. Everything else (packet
/// transits on the wired hops, sim bookkeeping, ...) is rejected before
/// the 128-byte pending-begin copy — async begins dominate a stressed
/// session's event stream.
bool DecodedSpan(const TraceEvent& event) {
  switch (event.layer) {
    case Layer::kRan:
      return event.name == names::kRanTransit.id ||
             event.name == names::kHarqChain.id;
    case Layer::kMedia:
      return event.name == names::kFrameJb.id ||
             event.name == names::kSampleJb.id;
    case Layer::kCore:
      return event.name == names::kPktUplink.id;
    default:
      return false;
  }
}

}  // namespace

void LiveEngine::Emit(const TraceEvent& event) {
  // All name checks are integer compares against the pre-interned ids in
  // obs::names — the streaming decode path never touches strings.
  switch (event.phase) {
    case TraceEvent::Phase::kAsyncBegin:
      if (DecodedSpan(event)) {
        pending_begin_ = event;
        have_pending_ = true;
      }
      return;

    case TraceEvent::Phase::kAsyncEnd:
      if (have_pending_ && pending_begin_.layer == event.layer &&
          pending_begin_.id == event.id && pending_begin_.name == event.name) {
        have_pending_ = false;
        OnSpan(pending_begin_, event);
      }
      return;

    case TraceEvent::Phase::kInstant:
      if (event.layer == Layer::kRan &&
          (event.name == names::kTbTx.id || event.name == names::kTbRtx.id)) {
        bank_.OnTb(TbObservation{
            .slot_time = event.ts,
            .tbs_bytes = static_cast<std::uint32_t>(event.Arg("tbs")),
            .used_bytes = static_cast<std::uint32_t>(event.Arg("used")),
            .harq_round = static_cast<std::uint8_t>(event.Arg("round")),
            .crc_ok = event.Arg("crc_ok") != 0.0,
            .requested_grant = event.Arg("grant") != 0.0,
        });
      } else if (event.layer == Layer::kCc && event.name == names::kCcOveruse.id) {
        ++overuse_events_;
        bank_.OnOveruse(OveruseObservation{event.ts, event.Arg("trend_ms")});
      } else if (event.layer == Layer::kNet && event.name == names::kLinkDrop.id) {
        ++link_drops_;
      } else if (event.name == names::kOverloadShed.id) {
        bank_.OnShed(ShedSample{
            .t = event.ts,
            .shed_total = event.Arg("total"),
            .shed_capped = event.Arg("capped"),
        });
      }
      return;

    case TraceEvent::Phase::kCounter:
      if (event.layer == Layer::kRan && event.name == names::kRanRlcBytes.id) {
        bank_.OnBacklog(BacklogSample{event.ts, event.Arg("value")});
      }
      return;

    case TraceEvent::Phase::kComplete:
      return;
  }
}

void LiveEngine::OnSpan(const TraceEvent& begin, const TraceEvent& end) {
  if (begin.layer == Layer::kRan && begin.name == names::kRanTransit.id) {
    ++deliveries_;
    bank_.OnDelivery(Delivery{
        .packet_id = begin.id,
        .enqueued_at = begin.ts,
        .delivered_at = end.ts,
        .bytes = static_cast<std::uint32_t>(begin.Arg("bytes")),
    });
  } else if (begin.layer == Layer::kRan && begin.name == names::kHarqChain.id) {
    bank_.OnHarqChain(HarqChainObservation{
        .first_tx = begin.ts,
        .done = end.ts,
        .rounds = static_cast<std::uint8_t>(begin.Arg("rounds")),
        .dropped = begin.Arg("dropped") != 0.0,
    });
  } else if (begin.layer == Layer::kMedia &&
             (begin.name == names::kFrameJb.id || begin.name == names::kSampleJb.id)) {
    ++frames_rendered_;
    if (begin.Arg("late") != 0.0) ++frames_late_;
  } else if (begin.layer == Layer::kCore && begin.name == names::kPktUplink.id) {
    const auto cause = static_cast<std::size_t>(begin.Arg("cause"));
    if (cause < core_causes_.size()) ++core_causes_[cause];
  }

  if (options_.log_span_every > 0 && ++span_counter_ % options_.log_span_every == 0) {
    log_.PushSpan(begin.layer, begin.name_text(), end.ts, sim::ToMs(end.ts - begin.ts));
  }
}

}  // namespace athena::obs::live
