// The output schema of the live diagnosis engine (obs/live/): typed
// anomaly verdicts with layer attribution, and a bounded structured
// event log that unifies them with the span/metric streams.
//
// An `AnomalyEvent` is one *verdict*: "between window_begin and
// window_end, the evidence says artifact X happened at layer Y, with
// confidence C". The five kinds mirror the paper's wireless delay
// artifacts (§3): slot-grid delay-spread quantization, HARQ
// retransmission inflation, BSR grant-wait, over-granting, and
// cross-traffic queue buildup.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace athena::obs::live {

/// One anomaly class per paper artifact. Keep ToString/SlugFor in
/// anomaly.cpp in sync when extending.
enum class AnomalyKind : std::uint8_t {
  kDelaySpreadQuantization,  ///< core arrivals concentrated on the UL slot grid (§2, Fig. 5)
  kHarqRtxInflation,         ///< OWD steps explained by HARQ retransmission rounds (§3.2)
  kBsrGrantWait,             ///< bursts wait ~a BSR RTT for their first serving grant (§3.1)
  kOverGranting,             ///< requested grants sized from stale BSRs go unused (§3.1)
  kQueueBuildup,             ///< RLC backlog never drains: capacity contention (§2)
  kTelemetryGap,             ///< the PHY telemetry feed lost records while traffic flowed
  kOverload,                 ///< the overload governor is shedding telemetry load
};
inline constexpr std::size_t kAnomalyKindCount = 7;

/// Human-readable name, e.g. "HARQ retransmission inflation".
[[nodiscard]] const char* ToString(AnomalyKind kind);

/// Prometheus-label-safe slug, e.g. "harq_rtx_inflation".
[[nodiscard]] const char* SlugFor(AnomalyKind kind);

/// A numeric evidence key/value. Keys must be string literals.
using Evidence = TraceArg;

struct AnomalyEvent {
  AnomalyKind kind = AnomalyKind::kDelaySpreadQuantization;
  Layer layer = Layer::kOther;       ///< attributed layer
  sim::TimePoint window_begin;       ///< evidence window
  sim::TimePoint window_end;
  double confidence = 0.0;           ///< 0..1
  const char* detector = "";         ///< emitting detector's name (literal)
  std::string message;               ///< one-line human description
  std::array<Evidence, 6> evidence{};
  std::size_t evidence_count = 0;

  void AddEvidence(const char* key, double value) {
    if (evidence_count < evidence.size()) evidence[evidence_count++] = {key, value};
  }
};

/// Serializes one anomaly as a single JSON object (one JSONL line,
/// without the trailing newline).
void WriteJson(std::ostream& os, const AnomalyEvent& event);

/// Bounded structured event log: a ring buffer of the most recent
/// records plus an optional append-only JSONL sink. Anomalies, trace
/// spans and metric samples share one record shape so a session's
/// "what happened" stream is a single ordered log.
class EventLog {
 public:
  struct Record {
    enum class Kind : std::uint8_t { kAnomaly, kSpan, kMetric };
    Kind kind = Kind::kAnomaly;
    sim::TimePoint t;            ///< anomaly: window_end; span: end; metric: sample time
    AnomalyEvent anomaly;        ///< kAnomaly only
    Layer layer = Layer::kOther; ///< kSpan/kMetric
    std::string name;            ///< kSpan/kMetric
    double value = 0.0;          ///< span: duration ms; metric: sample value
  };

  /// `capacity` bounds the in-memory ring; the oldest records are
  /// overwritten once it fills (dropped_count() tracks how many).
  explicit EventLog(std::size_t capacity = 1024);

  void PushAnomaly(const AnomalyEvent& event);
  void PushSpan(Layer layer, std::string_view name, sim::TimePoint end, double duration_ms);
  void PushMetric(std::string_view name, sim::TimePoint t, double value);

  /// Streams every record to `os` as JSONL the moment it is pushed
  /// (null disables). The ring keeps buffering regardless.
  void set_jsonl_sink(std::ostream* os) { jsonl_ = os; }

  /// Records currently buffered, oldest first.
  [[nodiscard]] std::vector<const Record*> Ordered() const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t total_pushed() const { return pushed_; }
  [[nodiscard]] std::uint64_t dropped_count() const {
    return pushed_ - static_cast<std::uint64_t>(size_);
  }

  /// All buffered records as JSONL, oldest first.
  void WriteJsonl(std::ostream& os) const;

 private:
  void Push(Record record);

  std::vector<Record> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;
  std::uint64_t pushed_ = 0;
  std::ostream* jsonl_ = nullptr;
};

}  // namespace athena::obs::live
