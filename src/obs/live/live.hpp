// The live diagnosis engine: a TraceSink that decodes the instrumentation
// stream (the exact emit points PR 1 placed in net/ran/cc/app/media/core)
// into typed observations, feeds the DetectorBank, and files every
// anomaly into the bounded EventLog.
//
// Because it is *just another trace sink*, the engine composes with the
// TraceRecorder through obs::TraceFanout: the same emit call lands in
// the Perfetto buffer and in the detectors, and disabling both restores
// the null-sink fast path untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/live/anomaly.hpp"
#include "obs/live/detectors.hpp"
#include "obs/trace.hpp"

namespace athena::obs::live {

class LiveEngine final : public TraceSink {
 public:
  struct Options {
    DetectorConfig detectors{};
    std::size_t log_capacity = 1024;
    /// Also mirror decoded spans/counters into the event log (sampled:
    /// every Nth; 0 = anomalies only, the default — spans are already in
    /// the trace).
    std::uint64_t log_span_every = 0;
  };

  LiveEngine() : LiveEngine(Options{}) {}
  explicit LiveEngine(Options options);

  // --- TraceSink: decode and route ---
  void Emit(const TraceEvent& event) override;

  /// Forwards every anomaly verdict (after it is filed into the event
  /// log) to an online consumer — the mitigation control plane's trigger
  /// feed. Single slot; replaces any previous listener.
  void set_anomaly_listener(std::function<void(const AnomalyEvent&)> listener) {
    anomaly_listener_ = std::move(listener);
  }

  [[nodiscard]] DetectorBank& bank() { return bank_; }
  [[nodiscard]] const DetectorBank& bank() const { return bank_; }
  [[nodiscard]] EventLog& log() { return log_; }
  [[nodiscard]] const EventLog& log() const { return log_; }

  // --- session rollups the HealthReport draws on ---
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t frames_rendered() const { return frames_rendered_; }
  [[nodiscard]] std::uint64_t frames_late() const { return frames_late_; }
  [[nodiscard]] std::uint64_t overuse_events() const { return overuse_events_; }
  [[nodiscard]] std::uint64_t link_drops() const { return link_drops_; }
  /// Post-hoc corroboration: counts of the correlator's per-packet
  /// primary causes (decoded from `pkt.uplink` spans when Correlate runs
  /// inside the session scope). Indexed by core::RootCause's value.
  [[nodiscard]] const std::array<std::uint64_t, 8>& core_cause_counts() const {
    return core_causes_;
  }

 private:
  void OnSpan(const TraceEvent& begin, const TraceEvent& end);

  Options options_;
  DetectorBank bank_;
  EventLog log_;
  std::function<void(const AnomalyEvent&)> anomaly_listener_;

  // TraceAsyncSpan always emits its begin/end pair back-to-back from one
  // call, so a single pending slot suffices to rejoin them.
  TraceEvent pending_begin_;
  bool have_pending_ = false;

  std::uint64_t deliveries_ = 0;
  std::uint64_t frames_rendered_ = 0;
  std::uint64_t frames_late_ = 0;
  std::uint64_t overuse_events_ = 0;
  std::uint64_t link_drops_ = 0;
  std::uint64_t span_counter_ = 0;
  std::array<std::uint64_t, 8> core_causes_{};
};

}  // namespace athena::obs::live
