#include "obs/live/exposition.hpp"

#include <ostream>
#include <string>
#include <string_view>

#include "obs/live/detectors.hpp"
#include "obs/live/live.hpp"
#include "obs/prom_text.hpp"

namespace athena::obs::live {
namespace {

using prom::WriteHeader;
using prom::WriteValue;

void WriteHistogram(std::ostream& os, const std::string& name,
                    const stats::Histogram& h) {
  WriteHeader(os, name, "histogram", "Athena histogram");
  // Prometheus buckets are cumulative upper bounds; the registry's
  // histograms are fixed-width [lo, hi) bins with explicit under/overflow,
  // so underflow folds into the first bucket and overflow into +Inf.
  std::uint64_t cumulative = h.underflow();
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    cumulative += h.bin(i);
    os << name << "_bucket{le=\"";
    WriteValue(os, h.bin_low(i) + h.bin_width());
    os << "\"} " << cumulative << '\n';
  }
  os << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
  os << name << "_sum ";
  WriteValue(os, h.sum());
  os << '\n';
  os << name << "_count " << h.count() << '\n';
}

void WriteLiveState(std::ostream& os, const LiveEngine& live,
                    const ExpositionOptions& options) {
  const std::string& p = options.prefix;
  const DetectorBank& bank = live.bank();

  {
    const std::string name = p + "anomalies_total";
    WriteHeader(os, name, "counter", "Anomalies emitted by the live detectors");
    for (std::size_t i = 0; i < kAnomalyKindCount; ++i) {
      const auto kind = static_cast<AnomalyKind>(i);
      os << name << "{kind=\"" << SlugFor(kind) << "\",layer=\"ran\"} "
         << bank.anomaly_count(kind) << '\n';
    }
  }
  {
    const std::string name = p + "detector_confidence";
    WriteHeader(os, name, "gauge", "Peak confidence reported per detector");
    for (const auto& d : bank.detectors()) {
      os << name << "{detector=\"" << d->name() << "\"} ";
      WriteValue(os, d->max_confidence());
      os << '\n';
    }
  }
  {
    const std::string name = p + "event_log_records";
    WriteHeader(os, name, "gauge", "Records currently retained in the event log");
    os << name << ' ' << live.log().size() << '\n';
    const std::string dropped = p + "event_log_dropped_total";
    WriteHeader(os, dropped, "counter", "Event-log records evicted by the ring");
    os << dropped << ' ' << live.log().dropped_count() << '\n';
  }
  {
    const std::string name = p + "frames_rendered_total";
    WriteHeader(os, name, "counter", "Media frames/samples played out");
    os << name << ' ' << live.frames_rendered() << '\n';
    const std::string late = p + "frames_late_total";
    WriteHeader(os, late, "counter", "Media frames/samples played out late");
    os << late << ' ' << live.frames_late() << '\n';
  }
}

}  // namespace

void WritePrometheus(std::ostream& os, const MetricsRegistry& registry,
                     const LiveEngine* live, ExpositionOptions options) {
  os << "# Athena metrics exposition (Prometheus text format 0.0.4)\n";

  for (const auto& [name, value] : registry.counters()) {
    const std::string full = SanitizeMetricName(options.prefix + name);
    WriteHeader(os, full, "counter", "Athena counter");
    os << full << ' ' << value << '\n';
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string full = SanitizeMetricName(options.prefix + name);
    WriteHeader(os, full, "gauge", "Athena gauge");
    os << full << ' ';
    WriteValue(os, value);
    os << '\n';
  }
  for (const auto& [name, s] : registry.stats()) {
    const std::string full = SanitizeMetricName(options.prefix + name);
    WriteHeader(os, full, "summary", "Athena streaming stats");
    os << full << "_count " << s.count() << '\n';
    os << full << "_sum ";
    WriteValue(os, s.sum());
    os << '\n';
    for (const auto& [suffix, v] :
         {std::pair<const char*, double>{"_mean", s.mean()},
          {"_min", s.min()},
          {"_max", s.max()}}) {
      const std::string g = full + suffix;
      WriteHeader(os, g, "gauge", "Athena streaming stats");
      os << g << ' ';
      WriteValue(os, v);
      os << '\n';
    }
  }
  for (const auto& [name, h] : registry.histograms()) {
    WriteHistogram(os, SanitizeMetricName(options.prefix + name), h);
  }

  if (live != nullptr) WriteLiveState(os, *live, options);
}

}  // namespace athena::obs::live
