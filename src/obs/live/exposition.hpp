// Prometheus text exposition (format 0.0.4) for the MetricsRegistry and
// the live detector state, so the framework's own health is scrapeable:
// write to a file on a period (athena_cli --expose) and point a
// node-exporter-style textfile collector at it.
//
// Mapping:
//   counter           → `<prefix><name> <value>` with `# TYPE ... counter`
//   gauge             → `# TYPE ... gauge`
//   RunningStats      → `_count`/`_sum` summary + `_mean`/`_min`/`_max` gauges
//   stats::Histogram  → cumulative `_bucket{le="..."}` series ending in
//                       `le="+Inf"`, plus `_sum` and `_count`
//   live detectors    → `athena_anomalies_total{kind=...,layer=...}`,
//                       per-detector confidence gauges, event-log depth
//
// Metric names are sanitized to Prometheus' [a-zA-Z_:][a-zA-Z0-9_:]*
// (dots and dashes become underscores); non-finite values serialize as
// the tokens `+Inf` / `-Inf` / `NaN`, which the text format allows.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/prom_text.hpp"

namespace athena::obs::live {

class LiveEngine;

/// The sanitization rule is shared with the sharded fleet exporter
/// (obs/pipeline/export.hpp); both delegate to obs/prom_text.hpp.
using prom::SanitizeMetricName;

struct ExpositionOptions {
  std::string prefix = "athena_";
};

/// Renders everything in `registry` (and, when given, `live`'s detector
/// state) in Prometheus text format. An empty registry yields only the
/// header comment — still a valid exposition.
void WritePrometheus(std::ostream& os, const MetricsRegistry& registry,
                     const LiveEngine* live = nullptr, ExpositionOptions options = {});

}  // namespace athena::obs::live
