// Streaming detectors: online tests that turn the instrumentation
// stream into AnomalyEvents *while the session runs* — one detector per
// paper artifact (§§2–3). Detectors are pure consumers: they never
// schedule simulator events, never mutate component state, and work
// only from the same observations the trace sink sees, so enabling them
// cannot change a run's behaviour.
//
// Each detector receives typed observations (decoded from trace events
// by the LiveEngine, or fed directly in tests), maintains a bounded
// sliding window, and emits through the DetectorBank when its test
// trips. Emission is rate-limited per detector (config.cooldown) so a
// persistent condition produces a bounded anomaly stream.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "obs/live/anomaly.hpp"
#include "sim/time.hpp"

namespace athena::obs::live {

// --- typed observations (decoded from the PR-1 emit points) ---

/// One packet through the RAN: modem arrival → mobile-core delivery
/// (the `ran.transit` async span).
struct Delivery {
  std::uint64_t packet_id = 0;
  sim::TimePoint enqueued_at;
  sim::TimePoint delivered_at;
  std::uint32_t bytes = 0;
};

/// One TB transmission on the control channel (the `tb.tx`/`tb.rtx`
/// instants; mirrors ran::TbRecord without depending on ran/).
struct TbObservation {
  sim::TimePoint slot_time;
  std::uint32_t tbs_bytes = 0;
  std::uint32_t used_bytes = 0;
  std::uint8_t harq_round = 0;
  bool crc_ok = true;
  bool requested_grant = false;  ///< false = proactive
};

/// A completed HARQ chain that needed at least one retransmission
/// (the `harq.chain` async span).
struct HarqChainObservation {
  sim::TimePoint first_tx;
  sim::TimePoint done;
  std::uint8_t rounds = 0;
  bool dropped = false;
};

/// UE RLC buffer occupancy sampled at an uplink slot (the
/// `ran.rlc_bytes` trace counter).
struct BacklogSample {
  sim::TimePoint t;
  double bytes = 0.0;
};

/// A GCC overuse instant (the `cc.overuse` trace instant).
struct OveruseObservation {
  sim::TimePoint t;
  double trend_ms = 0.0;
};

/// One load-shedding report from the overload governor (the
/// `overload.shed` trace instant, or fed directly from a
/// resilience::ShedStats ledger).
struct ShedSample {
  sim::TimePoint t;
  double shed_total = 0.0;   ///< records shed so far (cumulative)
  double shed_capped = 0.0;  ///< of those, hard-capped *data* records
};

/// Timing constants of the observed cell the tests key on. Defaults
/// match ran::RanConfig::PaperCell().
struct CellTiming {
  sim::Duration ul_slot_period{std::chrono::microseconds{2500}};
  sim::Duration rtx_delay{std::chrono::milliseconds{10}};
  sim::Duration bsr_scheduling_delay{std::chrono::milliseconds{10}};
};

/// Tunables shared by the bank's detectors. The defaults are calibrated
/// for the paper cell; tests exercise both firing and quiet scenarios
/// against them.
struct DetectorConfig {
  CellTiming cell;

  /// Suppress re-emission of the same anomaly kind for this long.
  sim::Duration cooldown{std::chrono::milliseconds{500}};

  // -- slot quantization --
  std::size_t quant_window = 96;       ///< inter-arrival deltas per test
  std::size_t quant_min_samples = 64;
  std::size_t quant_bins = 10;         ///< phase bins over one slot period
  double quant_concentration = 0.5;    ///< fire when max-bin share ≥ this

  // -- HARQ rtx inflation --
  std::size_t rtx_window = 128;        ///< OWD samples tracked for the floor
  double rtx_step_fraction = 0.7;      ///< step threshold = fraction × rtx_delay
  std::uint32_t rtx_min_attributed = 5;
  double rtx_min_share = 0.5;          ///< attributed / suspect late packets

  // -- BSR grant wait --
  std::size_t bsr_min_episodes = 8;
  double bsr_wait_threshold_ms = 6.0;  ///< mean first-grant wait to fire

  // -- over-granting --
  std::uint64_t grant_min_requested_bytes = 50'000;
  double grant_utilization_threshold = 0.6;
  std::size_t grant_window_tbs = 256;

  // -- queue buildup --
  std::size_t queue_window = 64;       ///< backlog samples (one per UL slot)
  double queue_floor_bytes = 15'000;   ///< fire when min over window ≥ this

  // -- telemetry gap --
  /// Deliveries keep flowing this long past the last TB observation →
  /// the feed is silent, not the cell.
  sim::Duration tele_gap_max_silence{std::chrono::milliseconds{100}};
  std::size_t tele_gap_min_deliveries = 12;  ///< deliveries inside the silence to fire
  /// Byte-conservation test: round-0 TB payload bytes should cover the
  /// bytes delivered through the RAN; a ratio below this means records
  /// were lost even without a long contiguous hole.
  double tele_gap_byte_ratio = 0.8;
  std::uint64_t tele_gap_min_bytes = 60'000;  ///< delivered bytes before the ratio test arms

  // -- overload --
  std::uint64_t overload_min_shed = 1;  ///< cumulative sheds before firing
};

/// Base class. Override only the observation kinds the detector needs.
class Detector {
 public:
  using Emitter = std::function<void(const AnomalyEvent&)>;

  virtual ~Detector() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual AnomalyKind kind() const = 0;

  virtual void OnDelivery(const Delivery&) {}
  virtual void OnTb(const TbObservation&) {}
  virtual void OnHarqChain(const HarqChainObservation&) {}
  virtual void OnBacklog(const BacklogSample&) {}
  virtual void OnOveruse(const OveruseObservation&) {}
  virtual void OnShed(const ShedSample&) {}

  /// Attribution tally for the health report: of the samples this
  /// detector flagged as suspicious, how many did it explain?
  struct Attribution {
    std::uint64_t suspect = 0;
    std::uint64_t attributed = 0;
  };
  [[nodiscard]] virtual Attribution attribution() const { return {}; }

  [[nodiscard]] std::uint64_t anomalies_emitted() const { return emitted_; }
  [[nodiscard]] double max_confidence() const { return max_confidence_; }

  void set_emitter(Emitter emitter) { emitter_ = std::move(emitter); }
  void set_config(const DetectorConfig& config) { config_ = config; }

 protected:
  /// Rate-limited emission; drops the event (returning false) inside the
  /// cooldown window following the previous emission.
  bool Emit(AnomalyEvent event);

  DetectorConfig config_{};

 private:
  Emitter emitter_;
  std::uint64_t emitted_ = 0;
  double max_confidence_ = 0.0;
  sim::TimePoint last_emit_;
  bool emitted_once_ = false;
};

/// §2 / Fig. 5: are core arrival times quantized onto the UL slot grid?
/// Online mod-grid concentration test: bin successive non-zero core
/// inter-arrival deltas by their phase within one slot period; a slotted
/// RAN concentrates the mass in one phase bin, a wire spreads it evenly.
class SlotQuantizationDetector final : public Detector {
 public:
  [[nodiscard]] const char* name() const override { return "slot_quantization"; }
  [[nodiscard]] AnomalyKind kind() const override {
    return AnomalyKind::kDelaySpreadQuantization;
  }

  void OnDelivery(const Delivery& d) override;

 private:
  void Evaluate(sim::TimePoint now);

  struct DeltaSample {
    std::int64_t delta_us = 0;
    sim::TimePoint t;
  };
  std::deque<DeltaSample> deltas_;
  sim::TimePoint last_delivery_;
  bool have_last_ = false;
  std::size_t since_eval_ = 0;
};

/// §3.2: ~10 ms OWD steps on per-packet RAN transit correlated with
/// HARQ retransmission rounds. A packet is *suspect* when its transit
/// exceeds the sliding-window floor by ≥ rtx_step_fraction × rtx_delay;
/// it is *attributed* when a retransmitted HARQ chain completed just
/// before its delivery.
class HarqRtxDetector final : public Detector {
 public:
  [[nodiscard]] const char* name() const override { return "harq_rtx"; }
  [[nodiscard]] AnomalyKind kind() const override { return AnomalyKind::kHarqRtxInflation; }

  void OnDelivery(const Delivery& d) override;
  void OnHarqChain(const HarqChainObservation& c) override;

  [[nodiscard]] Attribution attribution() const override {
    return {suspect_, attributed_};
  }

 private:
  std::deque<sim::Duration> owds_;          ///< sliding window for the floor
  std::deque<sim::TimePoint> chain_ends_;   ///< recent rtx-chain completion times
  std::uint64_t suspect_ = 0;
  std::uint64_t attributed_ = 0;
  std::uint64_t window_suspect_ = 0;        ///< since last emission
  std::uint64_t window_attributed_ = 0;
  double window_inflation_ms_ = 0.0;
  sim::TimePoint window_begin_;
};

/// §3.1: bursts wait for a BSR-requested grant. Measures, per backlog
/// episode (buffer leaves zero → first TB that carries data), the wait
/// before service; proactive-served bursts wait ≤ one slot, BSR-served
/// bursts wait ~bsr_scheduling_delay.
class BsrGrantWaitDetector final : public Detector {
 public:
  [[nodiscard]] const char* name() const override { return "bsr_grant_wait"; }
  [[nodiscard]] AnomalyKind kind() const override { return AnomalyKind::kBsrGrantWait; }

  void OnBacklog(const BacklogSample& s) override;
  void OnTb(const TbObservation& tb) override;

  [[nodiscard]] Attribution attribution() const override {
    return {episodes_, slow_episodes_};
  }

 private:
  struct Episode {
    double wait_ms = 0.0;
    sim::TimePoint served_at;
  };

  bool waiting_ = false;
  sim::TimePoint wait_begin_;
  std::deque<Episode> episodes_window_;
  std::uint64_t episodes_ = 0;
  std::uint64_t slow_episodes_ = 0;
};

/// §3.1's other half: requested grants are sized from stale BSRs, so
/// granted ≫ used. Watches utilization of *requested* grants over a
/// sliding TB window (proactive grants idle-wasting is by design, so
/// they are excluded — a quiet cell must not fire).
class OverGrantingDetector final : public Detector {
 public:
  [[nodiscard]] const char* name() const override { return "over_granting"; }
  [[nodiscard]] AnomalyKind kind() const override { return AnomalyKind::kOverGranting; }

  void OnTb(const TbObservation& tb) override;

  [[nodiscard]] Attribution attribution() const override {
    return {granted_total_ / 1000, wasted_total_ / 1000};  // kB granted vs wasted
  }

 private:
  void Evaluate(sim::TimePoint now);

  struct Grant {
    std::uint32_t tbs = 0;
    std::uint32_t used = 0;
    sim::TimePoint t;
  };
  std::deque<Grant> window_;
  std::uint64_t granted_total_ = 0;
  std::uint64_t wasted_total_ = 0;
  std::size_t since_eval_ = 0;
};

/// §2: the RLC buffer never drains — competing traffic (or an undersized
/// cell) has turned the modem into a standing queue. Fires when the
/// *minimum* backlog over the sliding window stays above the floor:
/// bursty-but-draining traffic (BSR waits) keeps touching zero, a
/// contended cell does not.
class QueueBuildupDetector final : public Detector {
 public:
  [[nodiscard]] const char* name() const override { return "queue_buildup"; }
  [[nodiscard]] AnomalyKind kind() const override { return AnomalyKind::kQueueBuildup; }

  void OnBacklog(const BacklogSample& s) override;

 private:
  std::deque<BacklogSample> window_;
  std::size_t since_eval_ = 0;
};

/// Robustness (degradation contract): the PHY telemetry feed itself is a
/// failure domain — sniffers crash, drop records, get truncated. Packets
/// that demonstrably crossed the RAN (deliveries) while the TB stream
/// went silent, or delivered bytes that the observed TBs cannot account
/// for, mean the *feed* degraded; downstream attributions built on it
/// are then guesses and must be flagged, not trusted. Fires on either
/// test: a contiguous silence with deliveries inside it, or a
/// byte-conservation deficit over the session.
class TelemetryGapDetector final : public Detector {
 public:
  [[nodiscard]] const char* name() const override { return "telemetry_gap"; }
  [[nodiscard]] AnomalyKind kind() const override { return AnomalyKind::kTelemetryGap; }

  void OnDelivery(const Delivery& d) override;
  void OnTb(const TbObservation& tb) override;

  [[nodiscard]] Attribution attribution() const override {
    return {deliveries_, silent_deliveries_total_};
  }

 private:
  bool tb_seen_ = false;
  sim::TimePoint last_tb_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t tb_payload_bytes_ = 0;        ///< round-0 used bytes
  std::uint64_t silent_deliveries_ = 0;       ///< inside the current silence
  std::uint64_t silent_deliveries_total_ = 0;
  sim::TimePoint silence_begin_;
  std::size_t since_ratio_eval_ = 0;
};

/// Robustness (bounded-memory contract): the overload governor started
/// shedding telemetry load. Degradation must be *diagnosed*, not just
/// counted — an operator reading the health report should learn that
/// attribution confidence is reduced because records were dropped on
/// purpose, and whether the drops reached the data records correlation
/// is built on (the `capped` tier) or stayed in the refinement tiers.
class OverloadDetector final : public Detector {
 public:
  [[nodiscard]] const char* name() const override { return "overload"; }
  [[nodiscard]] AnomalyKind kind() const override { return AnomalyKind::kOverload; }

  void OnShed(const ShedSample& s) override;

  [[nodiscard]] Attribution attribution() const override {
    return {static_cast<std::uint64_t>(last_total_),
            static_cast<std::uint64_t>(last_capped_)};
  }

 private:
  double last_total_ = 0.0;
  double last_capped_ = 0.0;
};

/// Owns the detector set, fans observations out, and funnels emitted
/// anomalies into one callback (the LiveEngine's event log).
class DetectorBank {
 public:
  /// Constructs the five paper-artifact detectors plus the
  /// telemetry-feed health detector (degradation contract).
  explicit DetectorBank(DetectorConfig config = {});

  /// Adds a custom detector (EXTENDING.md). The bank re-points its
  /// emitter and config.
  void Add(std::unique_ptr<Detector> detector);

  void OnDelivery(const Delivery& d);
  void OnTb(const TbObservation& tb);
  void OnHarqChain(const HarqChainObservation& c);
  void OnBacklog(const BacklogSample& s);
  void OnOveruse(const OveruseObservation& o);
  void OnShed(const ShedSample& s);

  /// Invoked (synchronously) for every anomaly any detector emits.
  void set_on_anomaly(std::function<void(const AnomalyEvent&)> cb);

  [[nodiscard]] const std::vector<std::unique_ptr<Detector>>& detectors() const {
    return detectors_;
  }
  [[nodiscard]] const DetectorConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t anomaly_count() const { return anomaly_count_; }
  [[nodiscard]] std::uint64_t anomaly_count(AnomalyKind kind) const {
    return counts_by_kind_[static_cast<std::size_t>(kind)];
  }

 private:
  void Route(const AnomalyEvent& event);

  DetectorConfig config_;
  std::vector<std::unique_ptr<Detector>> detectors_;
  std::function<void(const AnomalyEvent&)> on_anomaly_;
  std::uint64_t anomaly_count_ = 0;
  std::array<std::uint64_t, kAnomalyKindCount> counts_by_kind_{};
};

}  // namespace athena::obs::live
