// Per-session health report: rolls the live engine's anomalies and
// attribution tallies up into a ranked root-cause list ("61% of late
// frames attributable to HARQ RTX"). Built on demand from a LiveEngine
// (athena_cli --diagnose, why_was_this_packet_late) — no extra state is
// kept during the run.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/live/anomaly.hpp"

namespace athena::obs::live {

class LiveEngine;

struct HealthReport {
  /// One ranked root-cause line. `share` is the fraction of suspect
  /// samples the detector attributed (0 when it tracks no attribution).
  struct Cause {
    AnomalyKind kind{};
    Layer layer = Layer::kRan;
    std::string detector;
    std::uint64_t anomalies = 0;
    std::uint64_t suspect = 0;
    std::uint64_t attributed = 0;
    double share = 0.0;
    double max_confidence = 0.0;
    std::string summary;  ///< human-readable one-liner
  };

  /// Sorted most-culpable first (anomaly count, then confidence).
  std::vector<Cause> causes;

  // Session rollups.
  std::uint64_t deliveries = 0;
  std::uint64_t frames_rendered = 0;
  std::uint64_t frames_late = 0;
  std::uint64_t overuse_events = 0;
  std::uint64_t link_drops = 0;
  std::uint64_t anomalies_total = 0;
  std::uint64_t log_dropped = 0;

  /// The offline correlator's per-packet verdicts (when Correlate ran in
  /// scope), indexed by core::RootCause — corroborates the live ranking.
  std::array<std::uint64_t, 8> core_cause_counts{};

  [[nodiscard]] static HealthReport Build(const LiveEngine& live);

  /// `healthy()` is true when no detector fired.
  [[nodiscard]] bool healthy() const { return anomalies_total == 0; }

  /// Renders the ranked report as indented text.
  void Render(std::ostream& os) const;
};

}  // namespace athena::obs::live
