// Interned trace-event names.
//
// `TraceEvent` stores a 32-bit `NameId` instead of a `std::string`, which
// keeps the event a fixed-size trivially-copyable record and makes the
// emit hot path allocation-free. Names are interned once — at static
// initialization for the literals below, or at component construction for
// runtime names (e.g. capture-point labels) — and resolved back to text
// only at serialization time.
//
// Every name the stack emits is listed in `obs::names`; instrumented
// call sites reference those constants so the per-emit cost is a single
// 32-bit load. See docs/EXTENDING.md for how to register a new name.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace athena::obs {

using NameId = std::uint32_t;

/// Id 0 is the empty name, pre-interned so a default TraceEvent is valid.
inline constexpr NameId kEmptyNameId = 0;

/// Process-global name table. Interning is thread-safe (sweep runs may
/// intern runtime names concurrently); ids are dense and never reused.
class TraceNameRegistry {
 public:
  static TraceNameRegistry& Instance();

  /// Find-or-add. Copies `name` into registry-owned storage, so callers
  /// may pass transient strings.
  NameId Intern(std::string_view name);

  /// Text of an interned id ("" for kEmptyNameId or unknown ids).
  [[nodiscard]] std::string NameOf(NameId id) const;

  [[nodiscard]] std::size_t size() const;

 private:
  TraceNameRegistry();
  struct Impl;
  Impl* impl_;  // intentionally leaked: emitters may outlive static dtors
};

/// A cheap handle to an interned name. Implicitly constructible from a
/// string so cold call sites can pass literals directly; hot call sites
/// use the pre-interned constants in obs::names.
struct TraceName {
  NameId id = kEmptyNameId;

  constexpr TraceName() = default;
  TraceName(const char* name)  // NOLINT(google-explicit-constructor)
      : id(TraceNameRegistry::Instance().Intern(name)) {}
  TraceName(std::string_view name)  // NOLINT(google-explicit-constructor)
      : id(TraceNameRegistry::Instance().Intern(name)) {}
};

/// Every name emitted by the instrumented stack, interned once at static
/// init. Grouped by layer; keep alphabetical within a group.
namespace names {
// sim
inline const TraceName kSimQueueDepth{"sim.queue_depth"};
inline const TraceName kSimRun{"sim.run"};
// net
inline const TraceName kLinkDrop{"link.drop"};
inline const TraceName kLinkTx{"link.tx"};
inline const TraceName kNetLinkQueue{"net.link_queue"};
inline const TraceName kPktHop{"pkt.hop"};
// ran
inline const TraceName kHarqChain{"harq.chain"};
inline const TraceName kRanRlcBytes{"ran.rlc_bytes"};
inline const TraceName kRanTransit{"ran.transit"};
inline const TraceName kTbRtx{"tb.rtx"};
inline const TraceName kTbTx{"tb.tx"};
// cc
inline const TraceName kCcOveruse{"cc.overuse"};
inline const TraceName kCcTargetBps{"cc.target_bps"};
inline const TraceName kCcTrendMs{"cc.trend_ms"};
// app
inline const TraceName kAppRecvPackets{"app.recv_packets"};
inline const TraceName kAudioEncoded{"audio.encoded"};
inline const TraceName kFrameEncoded{"frame.encoded"};
inline const TraceName kRtxSent{"rtx.sent"};
// media
inline const TraceName kFrameJb{"frame.jb"};
inline const TraceName kSampleJb{"sample.jb"};
// core
inline const TraceName kPktUplink{"pkt.uplink"};
// resilience (overload governor)
inline const TraceName kOverloadShed{"overload.shed"};
}  // namespace names

}  // namespace athena::obs
