// Cross-layer tracing: every layer of the stack emits events onto one
// synchronized virtual-time timeline — the Athena thesis ("you can only
// explain wireless-induced delay by seeing every layer at once") applied
// to the framework itself.
//
// Design rules:
//  - One `TraceSink*` per thread, null by default. Every emit helper is an
//    inline function whose first instruction is a null check, so with
//    tracing disabled the instrumentation costs one predictable branch
//    and existing behaviour is untouched (no RNG draws, no scheduling).
//    The sink pointer is thread-local so concurrent simulations (see
//    sim::ParallelRunner) each trace into their own sink.
//  - A `TraceEvent` is a fixed-size, trivially-copyable record: names are
//    interned 32-bit ids (obs/trace_names.hpp), so emitting never touches
//    the heap. Events carry virtual time (`sim::TimePoint`), one track
//    (`Layer`) per subsystem, and a handful of numeric args.
//  - Interval events that may overlap on a track (packet transits, HARQ
//    chains, frame lifecycles) are emitted as *async* begin/end pairs
//    keyed by an id, and always as a completed pair (`TraceAsyncSpan`),
//    so a recorded trace never contains an unbalanced span.
//  - `TraceRecorder` buffers events in chunked block storage (no huge
//    reallocation-and-copy spikes) and serializes Chrome trace-event
//    JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_names.hpp"
#include "sim/time.hpp"

namespace athena::obs {

/// One trace track per layer of the stack (rendered as named threads).
enum class Layer : std::uint8_t { kSim, kNet, kRan, kCc, kApp, kMedia, kCore, kOther };
inline constexpr std::size_t kLayerCount = 8;

[[nodiscard]] const char* ToString(Layer layer);

/// A numeric key/value attached to an event. Keys must be string
/// literals (or otherwise outlive the sink). Deliberately no default
/// member initializers: TraceEvent leaves unused arg slots
/// uninitialized so the emit path never pays a 96-byte clear, and
/// every reader is bounded by `arg_count`.
struct TraceArg {
  const char* key;
  double value;
};

struct TraceEvent {
  /// Chrome trace-event phases: complete span, async begin/end, instant,
  /// counter.
  enum class Phase : char {
    kComplete = 'X',
    kAsyncBegin = 'b',
    kAsyncEnd = 'e',
    kInstant = 'i',
    kCounter = 'C',
  };

  Phase phase = Phase::kInstant;
  Layer layer = Layer::kOther;
  std::uint8_t arg_count = 0;
  NameId name = kEmptyNameId;  ///< interned (obs/trace_names.hpp)
  sim::TimePoint ts;
  sim::Duration dur{0};   ///< kComplete only
  std::uint64_t id = 0;   ///< async-pair key (packet id, chain id, frame id)
  std::array<TraceArg, 6> args;  ///< only [0, arg_count) are initialized

  /// Value of the arg named `key`, or `fallback` when absent. `key` must
  /// be a string literal: identical literals are usually pooled by the
  /// linker, so the first pass is pointer compares (the streaming-decode
  /// hot path); the content-compare pass keeps lookups correct when the
  /// emit site's literal lives in another binary region.
  [[nodiscard]] double Arg(const char* key, double fallback = 0.0) const {
    for (std::size_t i = 0; i < arg_count; ++i) {
      if (args[i].key == key) return args[i].value;
    }
    const std::string_view want{key};
    for (std::size_t i = 0; i < arg_count; ++i) {
      if (want == args[i].key) return args[i].value;
    }
    return fallback;
  }

  /// Resolves the interned name (serialization/tests; not the hot path).
  [[nodiscard]] std::string name_text() const {
    return TraceNameRegistry::Instance().NameOf(name);
  }
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay a POD-ish record: the recorder relies on "
              "memcpy-cheap appends and the emit path on zero allocation");

/// Where trace events go. Implementations must tolerate events arriving
/// out of timestamp order (async pairs are emitted at completion time).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceEvent& event) = 0;

  /// Batched delivery — the fleet-ingest hot path (obs/pipeline/). The
  /// default forwards event-by-event, so every sink is batch-capable;
  /// sinks with a cheaper bulk form (TraceRecorder's chunk memcpy, the
  /// pipeline's ring PushBatch) override it.
  virtual void EmitBatch(const TraceEvent* events, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) Emit(events[i]);
  }

  /// Bump-pointer fast path: sinks with contiguous slot storage (an
  /// unbudgeted TraceRecorder's chunk tail, TraceBatcher's and the ring
  /// sink's inline buffers) arm a reservation window over it, and the
  /// emit helpers then construct events *in place* — no stack copy, no
  /// virtual call — until the window is exhausted. Returns null when no
  /// window is armed (fanout, budgeted recorder, consumer-side sinks);
  /// callers fall back to the virtual Emit. This is where the sub-82 ns
  /// batched emit cost comes from: one virtual call per window, one
  /// 128-byte store per event.
  [[nodiscard]] TraceEvent* TryReserve() {
    TraceEvent* slot = reserve_cursor_;
    if (slot == reserve_limit_) return nullptr;
    reserve_cursor_ = slot + 1;
    return slot;
  }

 protected:
  /// Arms the fast-path window over [begin, end). The sink must treat
  /// everything before the current cursor as committed events and must
  /// re-sync (reserve_cursor()) before reading its own storage.
  void ArmReserveWindow(TraceEvent* begin, TraceEvent* end) {
    reserve_cursor_ = begin;
    reserve_limit_ = end;
  }
  void DisarmReserveWindow() { reserve_cursor_ = reserve_limit_ = nullptr; }
  [[nodiscard]] TraceEvent* reserve_cursor() const { return reserve_cursor_; }

 private:
  TraceEvent* reserve_cursor_ = nullptr;
  TraceEvent* reserve_limit_ = nullptr;
};

namespace detail {
/// The per-thread sink. Null = tracing disabled (the default). Thread-
/// local so concurrent simulations compose: each sim::ParallelRunner
/// worker installs its run's sink on its own thread and never sees
/// another run's events.
inline thread_local TraceSink* g_trace_sink = nullptr;

inline void FillArgs(TraceEvent& e, std::initializer_list<TraceArg> args) {
  for (const TraceArg& a : args) {
    if (e.arg_count == e.args.size()) break;
    e.args[e.arg_count++] = a;
  }
}

/// Resets every field a reader may touch. Reserved slots hold stale
/// bytes from earlier events, so in-place construction must write all
/// of them (args excepted — readers are bounded by arg_count).
inline void InitEvent(TraceEvent& e, TraceEvent::Phase phase, Layer layer,
                      NameId name, sim::TimePoint ts) {
  e.phase = phase;
  e.layer = layer;
  e.arg_count = 0;
  e.name = name;
  e.ts = ts;
  e.dur = sim::Duration{0};
  e.id = 0;
}
}  // namespace detail

[[nodiscard]] inline TraceSink* trace_sink() { return detail::g_trace_sink; }
[[nodiscard]] inline bool trace_enabled() { return detail::g_trace_sink != nullptr; }

/// Installs `sink` as the calling thread's trace sink (null disables
/// tracing). Returns the previous sink so scopes can restore it.
inline TraceSink* set_trace_sink(TraceSink* sink) {
  TraceSink* prev = detail::g_trace_sink;
  detail::g_trace_sink = sink;
  return prev;
}

/// A complete span [begin, end) on `layer`'s track. Use only for
/// intervals that cannot overlap others of the same track (e.g. the
/// serialized service times of a FIFO link, or a Run* call of the sim
/// kernel); overlapping intervals must use TraceAsyncSpan.
inline void TraceSpan(Layer layer, TraceName name, sim::TimePoint begin,
                      sim::TimePoint end, std::initializer_list<TraceArg> args = {}) {
  TraceSink* sink = detail::g_trace_sink;
  if (sink == nullptr) return;
  TraceEvent* slot = sink->TryReserve();
  TraceEvent local;
  TraceEvent& e = slot != nullptr ? *slot : local;
  detail::InitEvent(e, TraceEvent::Phase::kComplete, layer, name.id, begin);
  e.dur = end - begin;
  detail::FillArgs(e, args);
  if (slot == nullptr) sink->Emit(local);
}

/// An async (possibly overlapping) span keyed by `id`, emitted as a
/// balanced begin/end pair at completion time.
inline void TraceAsyncSpan(Layer layer, TraceName name, std::uint64_t id,
                           sim::TimePoint begin, sim::TimePoint end,
                           std::initializer_list<TraceArg> args = {}) {
  TraceSink* sink = detail::g_trace_sink;
  if (sink == nullptr) return;
  {
    TraceEvent* slot = sink->TryReserve();
    TraceEvent local;
    TraceEvent& b = slot != nullptr ? *slot : local;
    detail::InitEvent(b, TraceEvent::Phase::kAsyncBegin, layer, name.id, begin);
    b.id = id;
    detail::FillArgs(b, args);
    if (slot == nullptr) sink->Emit(local);
  }
  {
    TraceEvent* slot = sink->TryReserve();
    TraceEvent local;
    TraceEvent& e = slot != nullptr ? *slot : local;
    detail::InitEvent(e, TraceEvent::Phase::kAsyncEnd, layer, name.id,
                      end < begin ? begin : end);
    e.id = id;
    if (slot == nullptr) sink->Emit(local);
  }
}

/// A zero-duration marker on `layer`'s track.
inline void TraceInstant(Layer layer, TraceName name, sim::TimePoint t,
                         std::initializer_list<TraceArg> args = {}) {
  TraceSink* sink = detail::g_trace_sink;
  if (sink == nullptr) return;
  TraceEvent* slot = sink->TryReserve();
  TraceEvent local;
  TraceEvent& e = slot != nullptr ? *slot : local;
  detail::InitEvent(e, TraceEvent::Phase::kInstant, layer, name.id, t);
  detail::FillArgs(e, args);
  if (slot == nullptr) sink->Emit(local);
}

/// A sampled counter series (rendered as a graph track).
inline void TraceCounter(Layer layer, TraceName name, sim::TimePoint t,
                         double value) {
  TraceSink* sink = detail::g_trace_sink;
  if (sink == nullptr) return;
  TraceEvent* slot = sink->TryReserve();
  TraceEvent local;
  TraceEvent& e = slot != nullptr ? *slot : local;
  detail::InitEvent(e, TraceEvent::Phase::kCounter, layer, name.id, t);
  e.args[0] = TraceArg{"value", value};
  e.arg_count = 1;
  if (slot == nullptr) sink->Emit(local);
}

/// True for events the live diagnosis engine decodes (TB telemetry,
/// RAN transits, HARQ chains, jitter-buffer verdicts, correlator
/// verdicts, overload reports, …). Under a TraceRecorder byte budget
/// these are the events that must survive shedding: dropping them
/// blinds the detectors, while dropping anything else only thins the
/// Perfetto timeline.
[[nodiscard]] inline bool CriticalTraceEvent(const TraceEvent& e) {
  return e.name == names::kTbTx.id || e.name == names::kTbRtx.id ||
         e.name == names::kRanTransit.id || e.name == names::kHarqChain.id ||
         e.name == names::kRanRlcBytes.id || e.name == names::kCcOveruse.id ||
         e.name == names::kLinkDrop.id || e.name == names::kFrameJb.id ||
         e.name == names::kSampleJb.id || e.name == names::kPktUplink.id ||
         e.name == names::kOverloadShed.id;
}

/// Buffers events in memory and serializes them as Chrome trace-event
/// JSON (`{"traceEvents": [...]}`), with one named track per Layer.
/// Storage is chunked: appending never copies already-buffered events,
/// so emit cost stays flat no matter how large the trace grows.
///
/// An optional hard byte budget (set_byte_budget) bounds the buffer at
/// chunk granularity. Once the budget is reached, low-priority events
/// (everything CriticalTraceEvent rejects) are shed on arrival; critical
/// events evict the oldest chunk instead, so the detectors' evidence
/// stream keeps flowing with bounded memory. Both actions are counted
/// (shed_low_priority / chunks_evicted) — degradation is never silent.
class TraceRecorder final : public TraceSink {
 public:
  void Emit(const TraceEvent& event) override {
    SyncReserved();
    if (max_chunks_ > 0 && saturated_ && !CriticalTraceEvent(event)) {
      ++shed_low_priority_;
      return;
    }
    if (chunk_pos_ == kChunkSize) {
      if (max_chunks_ > 0 && chunks_.size() >= max_chunks_) {
        saturated_ = true;
        if (!CriticalTraceEvent(event)) {
          ++shed_low_priority_;
          return;
        }
        chunks_.erase(chunks_.begin());  // moves chunk *pointers*, not events
        size_ -= kChunkSize;
        ++chunks_evicted_;
      }
      NewChunk();
    }
    chunks_.back()[chunk_pos_++] = event;
    ++size_;
    RearmWindow();
  }

  [[nodiscard]] std::size_t size() const { return size_ + PendingReserved(); }
  void Clear() {
    DisarmReserveWindow();
    window_base_ = nullptr;
    chunks_.clear();
    chunk_pos_ = kChunkSize;
    size_ = 0;
    saturated_ = false;
  }

  /// Caps buffered storage to ~`bytes` (rounded down to whole chunks,
  /// minimum one chunk). 0 restores the unbounded default. A budget
  /// disables the reservation fast path: shed/evict decisions are
  /// per-event, so every event must go through the virtual Emit.
  void set_byte_budget(std::size_t bytes) {
    SyncReserved();
    if (bytes == 0) {
      max_chunks_ = 0;
      saturated_ = false;
      return;
    }
    max_chunks_ = bytes / (kChunkSize * sizeof(TraceEvent));
    if (max_chunks_ == 0) max_chunks_ = 1;
  }
  [[nodiscard]] std::size_t byte_budget() const {
    return max_chunks_ * kChunkSize * sizeof(TraceEvent);
  }
  [[nodiscard]] std::size_t buffered_bytes() const {
    return size() * sizeof(TraceEvent);
  }

  /// Bulk append: a straight chunk-tail memcpy while no byte budget is
  /// in force (the common case), falling back to the per-event path —
  /// with its shed/evict bookkeeping — once a budget applies.
  void EmitBatch(const TraceEvent* events, std::size_t count) override {
    SyncReserved();
    if (max_chunks_ > 0) {
      for (std::size_t i = 0; i < count; ++i) Emit(events[i]);
      return;
    }
    while (count > 0) {
      if (chunk_pos_ == kChunkSize) NewChunk();
      const std::size_t room = kChunkSize - chunk_pos_;
      const std::size_t n = count < room ? count : room;
      std::memcpy(chunks_.back().data.get() + chunk_pos_, events,
                  n * sizeof(TraceEvent));
      chunk_pos_ += n;
      size_ += n;
      events += n;
      count -= n;
    }
    RearmWindow();
  }

  /// Low-priority events dropped on arrival under the budget.
  [[nodiscard]] std::uint64_t shed_low_priority() const { return shed_low_priority_; }
  /// Oldest-chunk evictions performed to admit critical events.
  [[nodiscard]] std::uint64_t chunks_evicted() const { return chunks_evicted_; }

  /// Visits every buffered event in emit order (reserved-but-unsynced
  /// slots included — the window always covers the last chunk's tail).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      const std::size_t n =
          c + 1 == chunks_.size() ? chunk_pos_ + PendingReserved() : kChunkSize;
      for (std::size_t i = 0; i < n; ++i) fn(chunks_[c][i]);
    }
  }

  /// Number of events on a given layer's track (test/report helper).
  [[nodiscard]] std::size_t CountLayer(Layer layer) const;

  /// Writes the full Chrome trace-event JSON document. Events are sorted
  /// by timestamp; track-naming metadata events are emitted first.
  void WriteJson(std::ostream& os) const;

 private:
  // 256 events × 128 B = 32 KiB per chunk: comfortably below malloc's
  // mmap threshold, so chunk storage is recycled heap memory instead of
  // fresh mmap'd pages whose first-touch soft faults would dominate the
  // emit cost.
  static constexpr std::size_t kChunkSize = 256;

  // Chunks are heap arrays reached through a small vector of owners; the
  // vector's growth only moves pointers, never buffered events.
  struct ChunkHolder {
    ChunkHolder() : data(new TraceEvent[kChunkSize]) {}
    std::unique_ptr<TraceEvent[]> data;
    TraceEvent& operator[](std::size_t i) { return data[i]; }
    const TraceEvent& operator[](std::size_t i) const { return data[i]; }
  };

  void NewChunk() {
    chunks_.emplace_back();
    chunk_pos_ = 0;
  }

  /// Events the emit helpers placed via the reservation window but not
  /// yet folded into chunk_pos_/size_.
  [[nodiscard]] std::size_t PendingReserved() const {
    return window_base_ == nullptr
               ? 0
               : static_cast<std::size_t>(reserve_cursor() - window_base_);
  }

  /// Folds reservation progress into the chunk bookkeeping.
  void SyncReserved() {
    const std::size_t n = PendingReserved();
    chunk_pos_ += n;
    size_ += n;
    window_base_ = nullptr;
    DisarmReserveWindow();
  }

  /// Re-arms the window over the current chunk's free tail (unbudgeted
  /// recorders only — a budget needs per-event shed decisions).
  void RearmWindow() {
    if (max_chunks_ > 0 || chunks_.empty() || chunk_pos_ >= kChunkSize) return;
    TraceEvent* base = chunks_.back().data.get() + chunk_pos_;
    window_base_ = base;
    ArmReserveWindow(base, chunks_.back().data.get() + kChunkSize);
  }

  std::vector<ChunkHolder> chunks_;
  std::size_t chunk_pos_ = kChunkSize;  // forces a chunk on first Emit
  std::size_t size_ = 0;
  std::size_t max_chunks_ = 0;  // 0 = unbounded
  bool saturated_ = false;      // budget reached at least once
  TraceEvent* window_base_ = nullptr;  // reservation window start, or null
  std::uint64_t shed_low_priority_ = 0;
  std::uint64_t chunks_evicted_ = 0;
};

/// Forwards every event to a small list of sinks, so independent
/// consumers (a TraceRecorder and the live anomaly detectors, say) can
/// observe the same emit points without knowing about each other.
class TraceFanout final : public TraceSink {
 public:
  void Add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void Emit(const TraceEvent& event) override {
    for (TraceSink* s : sinks_) s->Emit(event);
  }

  void EmitBatch(const TraceEvent* events, std::size_t count) override {
    for (TraceSink* s : sinks_) s->EmitBatch(events, count);
  }

  [[nodiscard]] std::size_t size() const { return sinks_.size(); }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Batches events in a fixed inline buffer and hands them downstream
/// `EmitBatch`-at-a-time: the producer half of the ingest pipeline.
/// Amortizes the virtual dispatch (and, with a ring downstream, the
/// atomic release) over kBatch events; call `Flush()` at a quiescent
/// point (end of run, checkpoint) — the destructor also flushes.
///
/// Single-threaded like every TraceSink: install one per thread.
class TraceBatcher final : public TraceSink {
 public:
  static constexpr std::size_t kBatch = 256;

  explicit TraceBatcher(TraceSink* downstream) : downstream_(downstream) {
    ArmReserveWindow(buffer_.data(), buffer_.data() + kBatch);
  }
  ~TraceBatcher() override { Flush(); }

  TraceBatcher(const TraceBatcher&) = delete;
  TraceBatcher& operator=(const TraceBatcher&) = delete;

  void Emit(const TraceEvent& event) override {
    SyncFill();
    if (fill_ == kBatch) Flush();
    buffer_[fill_++] = event;
    // Re-arm before any flush: SyncFill derives the fill count from the
    // reserve cursor, so the cursor must account for this direct append
    // too (an empty window when full — TryReserve then returns null).
    ArmReserveWindow(buffer_.data() + fill_, buffer_.data() + kBatch);
    if (fill_ == kBatch) Flush();
  }

  void EmitBatch(const TraceEvent* events, std::size_t count) override {
    // Already batched upstream: flush what's pending (order-preserving)
    // and pass the caller's batch through untouched.
    Flush();
    downstream_->EmitBatch(events, count);
  }

  void Flush() {
    SyncFill();
    if (fill_ > 0) {
      downstream_->EmitBatch(buffer_.data(), fill_);
      fill_ = 0;
    }
    ArmReserveWindow(buffer_.data(), buffer_.data() + kBatch);
  }

  [[nodiscard]] std::size_t pending() const {
    return static_cast<std::size_t>(reserve_cursor() - buffer_.data());
  }

 private:
  /// The armed window always starts at buffer_ + fill_, so the cursor's
  /// offset *is* the true fill count after in-place reservations.
  void SyncFill() { fill_ = static_cast<std::size_t>(reserve_cursor() - buffer_.data()); }

  TraceSink* downstream_;
  std::size_t fill_ = 0;
  std::array<TraceEvent, kBatch> buffer_;
};

/// RAII: installs a sink for the current scope (and thread), restores
/// the previous one on exit. Tests and tools use this so no state leaks.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink* sink) : prev_(set_trace_sink(sink)) {}
  ~ScopedTraceSink() { set_trace_sink(prev_); }

  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* prev_;
};

}  // namespace athena::obs
