#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <unordered_map>

#include "obs/trace_json.hpp"

namespace athena::obs {

const char* ToString(Layer layer) {
  switch (layer) {
    case Layer::kSim: return "sim";
    case Layer::kNet: return "net";
    case Layer::kRan: return "ran";
    case Layer::kCc: return "cc";
    case Layer::kApp: return "app";
    case Layer::kMedia: return "media";
    case Layer::kCore: return "core";
    case Layer::kOther: return "other";
  }
  return "?";
}

namespace jsonio {

/// Human-readable track titles for the Perfetto sidebar.
const char* TrackTitle(Layer layer) {
  switch (layer) {
    case Layer::kSim: return "sim — event kernel";
    case Layer::kNet: return "net — links & captures";
    case Layer::kRan: return "ran — 5G uplink slots/HARQ";
    case Layer::kCc: return "cc — congestion control";
    case Layer::kApp: return "app — endpoints";
    case Layer::kMedia: return "media — frames & jitter buffer";
    case Layer::kCore: return "core — correlated packet stories";
    case Layer::kOther: return "other";
  }
  return "?";
}

void WriteEscaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void WriteNumber(std::ostream& os, double v) {
  // JSON has no NaN/Inf; clamp to null-ish zero rather than emit garbage.
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os << buf;
  }
}

/// One Chrome trace-event JSON object (no surrounding comma/newline).
void WriteEventJson(std::ostream& os, const TraceEvent& e, const std::string& name) {
  const auto tid = static_cast<std::size_t>(e.layer) + 1;
  os << "{\"name\":\"";
  WriteEscaped(os, name);
  os << "\",\"cat\":\"" << ToString(e.layer) << "\",\"ph\":\""
     << static_cast<char>(e.phase) << "\",\"pid\":1,\"tid\":" << tid
     << ",\"ts\":" << e.ts.us();
  switch (e.phase) {
    case TraceEvent::Phase::kComplete:
      os << ",\"dur\":" << e.dur.count();
      break;
    case TraceEvent::Phase::kAsyncBegin:
    case TraceEvent::Phase::kAsyncEnd:
      os << ",\"id\":\"0x" << std::hex << e.id << std::dec << "\"";
      break;
    case TraceEvent::Phase::kInstant:
      os << ",\"s\":\"t\"";  // thread-scoped instant
      break;
    case TraceEvent::Phase::kCounter:
      break;
  }
  if (e.arg_count > 0) {
    os << ",\"args\":{";
    for (std::size_t i = 0; i < e.arg_count; ++i) {
      if (i > 0) os << ",";
      os << "\"";
      WriteEscaped(os, e.args[i].key);
      os << "\":";
      WriteNumber(os, e.args[i].value);
    }
    os << "}";
  }
  os << "}";
}

void WriteTraceHeader(std::ostream& os, const bool layer_used[kLayerCount]) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"athena\"}}";
  for (std::size_t i = 0; i < kLayerCount; ++i) {
    if (!layer_used[i]) continue;
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << i + 1
       << ",\"args\":{\"name\":\"";
    WriteEscaped(os, TrackTitle(static_cast<Layer>(i)));
    os << "\"}}";
  }
}

const std::string& NameCache::Resolve(NameId id) {
  auto [it, inserted] = cache_.try_emplace(id);
  if (inserted) it->second = TraceNameRegistry::Instance().NameOf(id);
  return it->second;
}

}  // namespace jsonio

std::size_t TraceRecorder::CountLayer(Layer layer) const {
  std::size_t n = 0;
  ForEach([&](const TraceEvent& e) {
    if (e.layer == layer) ++n;
  });
  return n;
}

void TraceRecorder::WriteJson(std::ostream& os) const {
  // Stable sort by timestamp: chrome://tracing requires ascending ts, and
  // async pairs emitted at completion time land back where they began.
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(size_);
  bool layer_used[kLayerCount] = {};
  ForEach([&](const TraceEvent& e) {
    sorted.push_back(&e);
    layer_used[static_cast<std::size_t>(e.layer)] = true;
  });
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent* a, const TraceEvent* b) { return a->ts < b->ts; });

  jsonio::NameCache names;
  jsonio::WriteTraceHeader(os, layer_used);
  for (const TraceEvent* ep : sorted) {
    os << ",\n";
    jsonio::WriteEventJson(os, *ep, names.Resolve(ep->name));
  }
  os << "\n]}\n";
}

}  // namespace athena::obs
