// The metrics half of the observability subsystem: a registry of named
// counters, gauges, streaming stats (Welford) and histograms that
// components publish into, snapshotted on a periodic virtual-time grid
// and exportable to CSV (long form: one row per sample) and JSON.
//
// Like tracing (obs/trace.hpp), metrics are off by default: a per-thread
// registry pointer, null unless a tool installs one, and inline helpers
// that cost one branch when disabled.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"

namespace athena::obs {

class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-unique instance id. CachedCounter uses it to detect that a
  /// registry at a recycled address is not the one it resolved against.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Find-or-create. References remain valid for the registry's lifetime
  /// (node-based map), so hot components may cache them.
  [[nodiscard]] std::uint64_t& Counter(std::string_view name);
  [[nodiscard]] double& Gauge(std::string_view name);
  [[nodiscard]] stats::RunningStats& Stats(std::string_view name);
  /// Histogram bounds are fixed on first registration; later calls with
  /// the same name return the existing histogram unchanged.
  [[nodiscard]] stats::Histogram& Histogram(std::string_view name, double lo, double hi,
                                            std::size_t bins);

  [[nodiscard]] bool HasCounter(std::string_view name) const;
  [[nodiscard]] std::uint64_t CounterValue(std::string_view name) const;
  [[nodiscard]] double GaugeValue(std::string_view name) const;

  // Read-only iteration over everything registered (exporters: CSV/JSON
  // writers below, Prometheus text exposition in obs/live/exposition.hpp).
  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, stats::RunningStats, std::less<>>& stats() const {
    return stats_;
  }
  [[nodiscard]] const std::map<std::string, stats::Histogram, std::less<>>& histograms()
      const {
    return histograms_;
  }

  /// Appends one sample row per counter and gauge at virtual time `t`.
  void Snapshot(sim::TimePoint t);

  /// Snapshots every `period` of virtual time (aligned to the call time).
  void StartSampling(sim::Simulator& sim, sim::Duration period);
  void StopSampling();

  /// Long-form CSV of all snapshots: `t_us,t_ms,metric,value`.
  void WriteCsv(std::ostream& os) const;

  /// Final values of everything (counters, gauges, stats summaries,
  /// histogram bins) as one JSON object.
  void WriteJson(std::ostream& os) const;

  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

 private:
  struct Sample {
    sim::TimePoint t;
    const std::string* metric = nullptr;  ///< points into the owning map's key
    double value = 0.0;
  };

  std::uint64_t epoch_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, stats::RunningStats, std::less<>> stats_;
  std::map<std::string, stats::Histogram, std::less<>> histograms_;
  std::vector<Sample> samples_;
  std::unique_ptr<sim::PeriodicTimer> sampling_timer_;
};

namespace detail {
/// Thread-local for the same reason as the trace sink (obs/trace.hpp):
/// concurrent sweep runs each install their own registry on their worker
/// thread and never contend or cross-pollinate.
inline thread_local MetricsRegistry* g_metrics = nullptr;
}  // namespace detail

[[nodiscard]] inline MetricsRegistry* metrics() { return detail::g_metrics; }
[[nodiscard]] inline bool metrics_enabled() { return detail::g_metrics != nullptr; }

inline MetricsRegistry* set_metrics(MetricsRegistry* registry) {
  MetricsRegistry* prev = detail::g_metrics;
  detail::g_metrics = registry;
  return prev;
}

/// Increment a counter in the installed registry (no-op when disabled).
inline void CountInc(std::string_view name, std::uint64_t n = 1) {
  if (MetricsRegistry* m = detail::g_metrics) m->Counter(name) += n;
}

/// Per-thread memoized resolution of one hot counter: after the first
/// increment against a given registry, each Inc is a pointer/epoch check
/// plus an add — no map lookup. Declare at the callsite as
///
///   static thread_local obs::CachedCounter counter{"net.captured"};
///   counter.Inc();
///
/// `thread_local` (not plain `static`) is required: under
/// sim::ParallelRunner each worker thread has its own installed registry,
/// and the cache must follow it. The epoch check catches a new registry
/// allocated at a recycled address.
class CachedCounter {
 public:
  explicit CachedCounter(const char* name) : name_(name) {}

  void Inc(std::uint64_t n = 1) {
    MetricsRegistry* m = detail::g_metrics;
    if (m == nullptr) return;
    if (m != registry_ || m->epoch() != epoch_) {
      registry_ = m;
      epoch_ = m->epoch();
      value_ = &m->Counter(name_);
    }
    *value_ += n;
  }

 private:
  const char* name_;
  MetricsRegistry* registry_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::uint64_t* value_ = nullptr;
};

/// Set a gauge in the installed registry (no-op when disabled).
inline void SetGauge(std::string_view name, double value) {
  if (MetricsRegistry* m = detail::g_metrics) m->Gauge(name) = value;
}

/// Feed a sample into a named RunningStats (no-op when disabled).
inline void Observe(std::string_view name, double value) {
  if (MetricsRegistry* m = detail::g_metrics) m->Stats(name).Add(value);
}

/// RAII installation of a registry, mirroring ScopedTraceSink.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* registry) : prev_(set_metrics(registry)) {}
  ~ScopedMetrics() { set_metrics(prev_); }

  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace athena::obs
