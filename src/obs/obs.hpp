// One-stop observability bundle.
//
// `SimObsBridge` implements the kernel's `sim::SimHooks`, translating
// kernel activity into trace events (a `sim.run` span per Run* call, a
// sampled `sim.queue_depth` counter) and metrics gauges. It lives here —
// not in src/sim/ — so the kernel stays dependency-free.
//
// `ObsSession` is what tools use: it owns a TraceRecorder and a
// MetricsRegistry, installs both globals for its lifetime (RAII), hooks
// the simulator, and optionally snapshots metrics on a virtual-time grid.
//
//   obs::ObsSession observability{sim, {.metrics_period = 100ms}};
//   ... run the scenario ...
//   observability.recorder().WriteJson(trace_file);
//   observability.registry().WriteCsv(metrics_file);
#pragma once

#include <cstdint>
#include <memory>

#include "obs/live/live.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace athena::obs {

/// Kernel → obs adapter. Install with `sim.AddHooks(&bridge)`.
class SimObsBridge final : public sim::SimHooks {
 public:
  /// `queue_sample_every`: emit the queue-depth trace counter every N
  /// executed events (bounds trace volume; 0 disables the counter).
  explicit SimObsBridge(sim::Simulator& sim, std::uint64_t queue_sample_every = 64)
      : sim_(sim), queue_sample_every_(queue_sample_every) {}

  void OnEventExecuted(sim::TimePoint t, std::size_t queue_depth) override {
    if (queue_sample_every_ == 0) return;
    if (++events_since_sample_ < queue_sample_every_) return;
    events_since_sample_ = 0;
    TraceCounter(Layer::kSim, names::kSimQueueDepth, t, static_cast<double>(queue_depth));
  }

  void OnRunCompleted(sim::TimePoint begin, sim::TimePoint end,
                      std::uint64_t events) override {
    TraceSpan(Layer::kSim, names::kSimRun, begin, end,
              {{"events", static_cast<double>(events)}});
    SetGauge("sim.events_executed", static_cast<double>(sim_.events_executed()));
    SetGauge("sim.queue_depth", static_cast<double>(sim_.queue_depth()));
    if (sim_.profiling()) {
      const sim::SimProfile& p = sim_.profile();
      SetGauge("sim.queue_high_water", static_cast<double>(p.queue_high_water));
      SetGauge("sim.events_per_sec_wall", p.events_per_second());
      SetGauge("sim.mean_callback_ns", p.mean_callback_ns());
    }
  }

 private:
  sim::Simulator& sim_;
  std::uint64_t queue_sample_every_;
  std::uint64_t events_since_sample_ = 0;
};

/// Owns recorder + registry, installs the globals and the kernel hooks
/// for its lifetime. Everything is undone in the destructor, so tests
/// and tools cannot leak observability state into each other.
class ObsSession {
 public:
  struct Options {
    bool trace = true;
    bool metrics = true;
    /// 0 = no periodic snapshots (metrics still collect final values).
    sim::Duration metrics_period{0};
    bool profile_sim = false;
    std::uint64_t queue_sample_every = 64;
    /// Run the live diagnosis engine (obs/live/) alongside the recorder;
    /// both consume the same emit points through a TraceFanout.
    bool live = false;
    live::LiveEngine::Options live_options{};
    /// Hard byte budget for the trace recorder (0 = unbounded). Under
    /// the budget, low-priority events are shed and critical events
    /// evict the oldest chunk; see TraceRecorder.
    std::size_t trace_byte_budget = 0;
    /// An additional sink fanned out alongside the recorder/live engine
    /// — how a run joins the telemetry ingest pipeline (pass
    /// pipeline::TelemetryPipeline::CurrentThreadSink()). Null is fine.
    TraceSink* extra_sink = nullptr;
  };

  ObsSession(sim::Simulator& sim, Options options)
      : sim_(sim),
        options_(options),
        bridge_(sim, options.queue_sample_every),
        live_(options.live ? std::make_unique<live::LiveEngine>(options.live_options)
                           : nullptr),
        trace_scope_(PickSink()),
        metrics_scope_(options.metrics ? &registry_ : nullptr) {
    sim.AddHooks(&bridge_);
    if (options.profile_sim) sim.set_profiling(true);
    if (options.trace_byte_budget > 0) recorder_.set_byte_budget(options.trace_byte_budget);
    if (options.metrics && options.metrics_period.count() > 0) {
      registry_.StartSampling(sim, options.metrics_period);
    }
  }

  ~ObsSession() {
    registry_.StopSampling();
    if (options_.profile_sim) sim_.set_profiling(false);
    sim_.RemoveHooks(&bridge_);
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  [[nodiscard]] TraceRecorder& recorder() { return recorder_; }
  [[nodiscard]] MetricsRegistry& registry() { return registry_; }

  /// Reports the recorder's cumulative shed ledger: publishes the
  /// `trace.shed_*` gauges and emits an `overload.shed` trace instant so
  /// the live overload detector (if running) sees recorder-level
  /// shedding. No-op while nothing has been shed.
  void ReportTraceShedding(sim::TimePoint t) {
    const auto shed = recorder_.shed_low_priority();
    const auto evicted = recorder_.chunks_evicted();
    if (shed == 0 && evicted == 0) return;
    SetGauge("trace.shed_low_priority", static_cast<double>(shed));
    SetGauge("trace.chunks_evicted", static_cast<double>(evicted));
    TraceInstant(Layer::kOther, names::kOverloadShed, t,
                 {{"total", static_cast<double>(shed + evicted)}, {"capped", 0.0}});
  }
  /// Null unless Options::live was set.
  [[nodiscard]] live::LiveEngine* live() { return live_.get(); }
  [[nodiscard]] const live::LiveEngine* live() const { return live_.get(); }

 private:
  /// Called after live_ is constructed (declaration order) to decide the
  /// installed global sink: recorder, live engine, extra sink, or a
  /// fanout of whichever subset is active.
  [[nodiscard]] TraceSink* PickSink() {
    TraceSink* singles[3] = {};
    std::size_t n = 0;
    if (options_.trace) singles[n++] = &recorder_;
    if (live_ != nullptr) singles[n++] = live_.get();
    if (options_.extra_sink != nullptr) singles[n++] = options_.extra_sink;
    if (n == 0) return nullptr;
    if (n == 1) return singles[0];
    for (std::size_t i = 0; i < n; ++i) fanout_.Add(singles[i]);
    return &fanout_;
  }

  sim::Simulator& sim_;
  Options options_;
  TraceRecorder recorder_;
  MetricsRegistry registry_;
  SimObsBridge bridge_;
  std::unique_ptr<live::LiveEngine> live_;
  TraceFanout fanout_;
  ScopedTraceSink trace_scope_;
  ScopedMetrics metrics_scope_;
};

}  // namespace athena::obs
