#include "obs/prom_text.hpp"

#include <cmath>
#include <cstdint>
#include <ostream>

namespace athena::obs::prom {
namespace {

bool ValidStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
}

bool ValidRest(char c) { return ValidStart(c) || (c >= '0' && c <= '9'); }

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty() || !ValidStart(name.front())) out.push_back('_');
  for (char c : name) out.push_back(ValidRest(c) ? c : '_');
  return out;
}

void WriteValue(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    os << v;
  }
}

void WriteHeader(std::ostream& os, std::string_view name, std::string_view type,
                 std::string_view help) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

std::uint64_t NameShard(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace athena::obs::prom
