#include "obs/metrics.hpp"

#include <atomic>
#include <ostream>

namespace athena::obs {

namespace {

std::atomic<std::uint64_t> g_next_registry_epoch{0};

}  // namespace

MetricsRegistry::MetricsRegistry()
    : epoch_(g_next_registry_epoch.fetch_add(1, std::memory_order_relaxed) + 1) {}

namespace {

/// find-or-emplace with heterogeneous lookup (avoids a temporary
/// std::string on the hit path, which is the hot one).
template <typename Map, typename... Args>
auto& FindOrCreate(Map& map, std::string_view name, Args&&... args) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string{name}, typename Map::mapped_type{std::forward<Args>(args)...})
             .first;
  }
  return it->second;
}

}  // namespace

std::uint64_t& MetricsRegistry::Counter(std::string_view name) {
  return FindOrCreate(counters_, name, std::uint64_t{0});
}

double& MetricsRegistry::Gauge(std::string_view name) {
  return FindOrCreate(gauges_, name, 0.0);
}

stats::RunningStats& MetricsRegistry::Stats(std::string_view name) {
  return FindOrCreate(stats_, name);
}

stats::Histogram& MetricsRegistry::Histogram(std::string_view name, double lo, double hi,
                                             std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string{name}, stats::Histogram{lo, hi, bins}).first;
  }
  return it->second;
}

bool MetricsRegistry::HasCounter(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::Snapshot(sim::TimePoint t) {
  for (const auto& [name, value] : counters_) {
    samples_.push_back(Sample{t, &name, static_cast<double>(value)});
  }
  for (const auto& [name, value] : gauges_) {
    samples_.push_back(Sample{t, &name, value});
  }
}

void MetricsRegistry::StartSampling(sim::Simulator& sim, sim::Duration period) {
  StopSampling();
  sampling_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim, period, [this, &sim] { Snapshot(sim.Now()); });
  sampling_timer_->Start();
}

void MetricsRegistry::StopSampling() { sampling_timer_.reset(); }

void MetricsRegistry::WriteCsv(std::ostream& os) const {
  os << "t_us,t_ms,metric,value\n";
  for (const Sample& s : samples_) {
    os << s.t.us() << ',' << s.t.ms() << ',' << *s.metric << ',' << s.value << '\n';
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"stats\": {";
  first = true;
  for (const auto& [name, st] : stats_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": " << st.count()
       << ", \"mean\": " << st.mean() << ", \"stddev\": " << st.stddev()
       << ", \"min\": " << st.min() << ", \"max\": " << st.max() << "}";
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": " << h.count()
       << ", \"underflow\": " << h.underflow() << ", \"overflow\": " << h.overflow()
       << ", \"bins\": [";
    for (std::size_t i = 0; i < h.bin_count(); ++i) {
      if (i > 0) os << ",";
      os << h.bin(i);
    }
    os << "]}";
    first = false;
  }
  os << "\n  },\n  \"snapshot_rows\": " << samples_.size() << "\n}\n";
}

}  // namespace athena::obs
