// Shared Prometheus text-format (0.0.4) primitives.
//
// Two writers emit expositions — the single-stream live exposition
// (obs/live/exposition.cpp) and the sharded fleet exporter
// (obs/pipeline/export.cpp) — and they must agree byte-for-byte on name
// sanitization and value tokens, or a fleet's scrape targets drift apart
// under the same metric. The rules live here, once:
//
//   - metric names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* (dots and
//     dashes become underscores; a leading digit gains a '_' prefix),
//   - non-finite values serialize as the tokens +Inf / -Inf / NaN,
//   - every series is preceded by `# HELP` / `# TYPE` comment lines.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace athena::obs::prom {

/// `athena.cc.target-bps` → `athena_cc_target_bps`. Prepends '_' when the
/// first character would be invalid (e.g. a digit).
[[nodiscard]] std::string SanitizeMetricName(std::string_view name);

/// Writes `v` as Prometheus text: regular ostream formatting for finite
/// values, the tokens `+Inf` / `-Inf` / `NaN` otherwise.
void WriteValue(std::ostream& os, double v);

/// The `# HELP` / `# TYPE` preamble for one metric family.
void WriteHeader(std::ostream& os, std::string_view name, std::string_view type,
                 std::string_view help);

/// FNV-1a over the metric name — the shard assignment hash. Stable across
/// platforms/releases so a fleet's scrape config doesn't churn: shard =
/// NameShard(name) % shard_count, forever.
[[nodiscard]] std::uint64_t NameShard(std::string_view name);

}  // namespace athena::obs::prom
