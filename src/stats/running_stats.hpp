// Streaming summary statistics (Welford's algorithm): O(1) memory
// mean/variance/min/max over a stream of doubles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace athena::stats {

class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator (parallel Welford combination).
  void Merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(n_ + o.n_);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) / n;
    mean_ = (mean_ * static_cast<double>(n_) + o.mean_ * static_cast<double>(o.n_)) / n;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
    n_ += o.n_;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void Reset() { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace athena::stats
