#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace athena::stats {

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddNumericRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(Fmt(v, precision));
  AddRow(std::move(formatted));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n' << title << '\n' << std::string(72, '=') << '\n';
}

}  // namespace athena::stats
