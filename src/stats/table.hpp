// Console table / CSV writers used by every bench binary so figure output
// has one consistent, machine-parsable format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace athena::stats {

/// Column-aligned plain-text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each double with `%.*f`.
  void AddNumericRow(const std::vector<double>& cells, int precision = 3);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  void Print(std::ostream& os) const;
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
[[nodiscard]] std::string Fmt(double v, int precision = 3);

/// Section banner used between figure panels in bench output.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace athena::stats
