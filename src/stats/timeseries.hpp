// Timestamped sample series with windowed aggregation — used for the
// paper's time-series figures (Figs. 3, 8, 9).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace athena::stats {

class TimeSeries {
 public:
  struct Sample {
    sim::TimePoint t;
    double value;
  };

  void Add(sim::TimePoint t, double value) { samples_.push_back({t, value}); }

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  /// Mean value per fixed window of `window` duration starting at the
  /// first sample; empty windows yield no point.
  struct WindowPoint {
    sim::TimePoint window_start;
    double mean;
    std::size_t count;
  };
  [[nodiscard]] std::vector<WindowPoint> WindowedMean(sim::Duration window) const;

  /// Sum per window divided by window length in seconds — turns a series
  /// of byte/bit counts into a rate series.
  [[nodiscard]] std::vector<WindowPoint> WindowedRatePerSecond(sim::Duration window) const;

  /// Samples whose timestamps fall in [from, to).
  [[nodiscard]] TimeSeries Slice(sim::TimePoint from, sim::TimePoint to) const;

  [[nodiscard]] std::vector<double> Values() const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace athena::stats
