#include "stats/timeseries.hpp"

#include <algorithm>
#include <cassert>

namespace athena::stats {

namespace {

// Shared windowing loop: `finish` maps (sum, count, window) to the stored value.
template <typename Finish>
std::vector<TimeSeries::WindowPoint> Windowed(const std::vector<TimeSeries::Sample>& samples,
                                              sim::Duration window, Finish finish) {
  std::vector<TimeSeries::WindowPoint> out;
  if (samples.empty() || window.count() <= 0) return out;
  auto sorted = samples;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.t < b.t; });
  sim::TimePoint start = sorted.front().t;
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& s : sorted) {
    while (s.t >= start + window) {
      if (count > 0) out.push_back({start, finish(sum, count), count});
      start += window;
      sum = 0.0;
      count = 0;
    }
    sum += s.value;
    ++count;
  }
  if (count > 0) out.push_back({start, finish(sum, count), count});
  return out;
}

}  // namespace

std::vector<TimeSeries::WindowPoint> TimeSeries::WindowedMean(sim::Duration window) const {
  return Windowed(samples_, window, [](double sum, std::size_t n) {
    return sum / static_cast<double>(n);
  });
}

std::vector<TimeSeries::WindowPoint> TimeSeries::WindowedRatePerSecond(
    sim::Duration window) const {
  const double secs = sim::ToSeconds(window);
  return Windowed(samples_, window,
                  [secs](double sum, std::size_t) { return sum / secs; });
}

TimeSeries TimeSeries::Slice(sim::TimePoint from, sim::TimePoint to) const {
  TimeSeries out;
  for (const auto& s : samples_) {
    if (s.t >= from && s.t < to) out.Add(s.t, s.value);
  }
  return out;
}

std::vector<double> TimeSeries::Values() const {
  std::vector<double> v;
  v.reserve(samples_.size());
  for (const auto& s : samples_) v.push_back(s.value);
  return v;
}

}  // namespace athena::stats
