// Fixed-width-bin histogram. Used for delay-spread quantization analysis
// (Fig. 5 / Fig. 9a: is the mass concentrated on a 2.5 ms grid?).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace athena::stats {

class Histogram {
 public:
  /// Bins [lo, hi) into `bins` equal-width buckets; out-of-range samples
  /// land in underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  /// Sum of every sample ever added, including under/overflow (the
  /// Prometheus `_sum` series).
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double bin_width() const { return width_; }

  /// Fraction of in-range samples lying within `tolerance` of an integer
  /// multiple of `grid` (measures quantization onto a time grid).
  [[nodiscard]] double FractionOnGrid(double grid, double tolerance) const;

  /// Index of the fullest bin; 0 when empty.
  [[nodiscard]] std::size_t ModeBin() const;

  /// ASCII rendering, one line per (non-empty) bin.
  [[nodiscard]] std::string Render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> raw_;  // retained for FractionOnGrid
  double sum_ = 0.0;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace athena::stats
