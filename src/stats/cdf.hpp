// Empirical CDFs and quantiles over collected samples — the workhorse of
// every figure reproduction (the paper reports almost everything as CDFs).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace athena::stats {

/// Collects samples; sorts lazily on first query.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples) : samples_(std::move(samples)) { sorted_ = false; }

  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void AddAll(const std::vector<double>& xs);

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  /// Quantile by linear interpolation, q in [0, 1]. Precondition: !empty().
  [[nodiscard]] double Quantile(double q) const;
  [[nodiscard]] double Median() const { return Quantile(0.5); }
  [[nodiscard]] double P(double percent) const { return Quantile(percent / 100.0); }

  /// Fraction of samples <= x (the empirical CDF evaluated at x).
  [[nodiscard]] double FractionAtOrBelow(double x) const;

  [[nodiscard]] double Min() const { return Quantile(0.0); }
  [[nodiscard]] double Max() const { return Quantile(1.0); }
  [[nodiscard]] double Mean() const;

  /// Evaluates the CDF on `points` evenly spaced x values across
  /// [min, max]; returns (x, F(x)) pairs for plotting/printing.
  struct Point {
    double x;
    double f;
  };
  [[nodiscard]] std::vector<Point> Evaluate(std::size_t points = 50) const;

  /// Evaluates at caller-chosen x values.
  [[nodiscard]] std::vector<Point> EvaluateAt(const std::vector<double>& xs) const;

  /// The sorted samples (for exporting full ECDFs).
  [[nodiscard]] const std::vector<double>& sorted_samples() const;

  /// One-line summary: "n=... min=... p25=... p50=... p75=... p95=... max=..."
  [[nodiscard]] std::string Summary() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// True when `a` is (weakly) stochastically dominated by `b`, i.e.
/// F_a(x) >= F_b(x) at every sampled x: a's values are "smaller". Checked
/// on the merged support grid; `slack` tolerates sampling noise.
[[nodiscard]] bool StochasticallyBelow(const Cdf& a, const Cdf& b, double slack = 0.0);

}  // namespace athena::stats
