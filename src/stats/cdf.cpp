#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "sim/check.hpp"

namespace athena::stats {

void Cdf::AddAll(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::Quantile(double q) const {
  ATHENA_CHECK(!samples_.empty(), "Quantile() requires at least one sample");
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::FractionAtOrBelow(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Cdf::Mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<Cdf::Point> Cdf::Evaluate(std::size_t points) const {
  std::vector<Point> out;
  if (samples_.empty() || points < 2) return out;
  EnsureSorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({x, FractionAtOrBelow(x)});
  }
  return out;
}

std::vector<Cdf::Point> Cdf::EvaluateAt(const std::vector<double>& xs) const {
  std::vector<Point> out;
  out.reserve(xs.size());
  for (const double x : xs) out.push_back({x, FractionAtOrBelow(x)});
  return out;
}

const std::vector<double>& Cdf::sorted_samples() const {
  EnsureSorted();
  return samples_;
}

std::string Cdf::Summary() const {
  if (samples_.empty()) return "n=0";
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.3f p25=%.3f p50=%.3f p75=%.3f p95=%.3f p99=%.3f max=%.3f",
                samples_.size(), Min(), P(25), P(50), P(75), P(95), P(99), Max());
  return buf;
}

bool StochasticallyBelow(const Cdf& a, const Cdf& b, double slack) {
  if (a.empty() || b.empty()) return false;
  std::vector<double> grid = a.sorted_samples();
  const auto& bs = b.sorted_samples();
  grid.insert(grid.end(), bs.begin(), bs.end());
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  for (const double x : grid) {
    if (a.FractionAtOrBelow(x) + slack < b.FractionAtOrBelow(x)) return false;
  }
  return true;
}

}  // namespace athena::stats
