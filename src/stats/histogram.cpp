#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace athena::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  ++total_;
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(idx, counts_.size() - 1)];
  raw_.push_back(x);
}

double Histogram::bin_low(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::FractionOnGrid(double grid, double tolerance) const {
  if (raw_.empty() || grid <= 0.0) return 0.0;
  std::size_t hits = 0;
  for (const double x : raw_) {
    const double nearest = std::round(x / grid) * grid;
    if (std::abs(x - nearest) <= tolerance) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(raw_.size());
}

std::size_t Histogram::ModeBin() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return it == counts_.end() ? 0 : static_cast<std::size_t>(it - counts_.begin());
}

std::string Histogram::Render(std::size_t max_width) const {
  std::string out;
  const std::uint64_t peak = counts_.empty() ? 0 : counts_[ModeBin()];
  if (peak == 0) return "(empty histogram)\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) * static_cast<double>(max_width) /
                                 static_cast<double>(peak));
    char head[64];
    std::snprintf(head, sizeof(head), "[%8.3f, %8.3f) %8llu |", bin_low(i), bin_low(i) + width_,
                  static_cast<unsigned long long>(counts_[i]));
    out += head;
    out.append(std::max<std::size_t>(bar, 1), '#');
    out += '\n';
  }
  return out;
}

}  // namespace athena::stats
