// Audio-quality estimation: a compact ITU-T G.107 E-model.
//
// §1 of the paper: Athena correlates "audio samples whose quality we also
// measure from the application side". Without real audio, the standard
// parametric model maps what the network did to the samples — mouth-to-ear
// delay and loss — onto a transmission-rating factor R and a MOS score:
//
//   R = R0 − Id(delay) − Ie,eff(loss)
//
// with R0 ≈ 93.2 for a wideband-ish codec, the G.107 delay impairment
// (negligible below ~150 ms, steep past ~250 ms), and the codec-specific
// loss impairment curve (Opus-like robustness by default).
#pragma once

#include <cstdint>

namespace athena::media {

class EModel {
 public:
  struct Config {
    double r0 = 93.2;            ///< base transmission rating
    double codec_impairment = 0.0;  ///< Ie for the codec itself (Opus ≈ 0)
    double loss_robustness = 4.3;   ///< Bpl: packet-loss robustness factor
    double loss_impairment_max = 55.0;  ///< Ie ceiling under total loss
  };

  EModel() = default;
  explicit EModel(Config config) : config_(config) {}

  /// Delay impairment Id for a given mouth-to-ear delay (G.107 simplified
  /// curve: ~0 below 150 ms, growing piecewise beyond).
  [[nodiscard]] double DelayImpairment(double mouth_to_ear_ms) const;

  /// Effective equipment impairment Ie,eff for a random loss fraction.
  [[nodiscard]] double LossImpairment(double loss_fraction) const;

  /// Transmission rating R in [0, 100].
  [[nodiscard]] double RFactor(double mouth_to_ear_ms, double loss_fraction) const;

  /// Mean opinion score in [1, 4.5] via the standard R→MOS mapping.
  [[nodiscard]] double Mos(double mouth_to_ear_ms, double loss_fraction) const;

  /// The R→MOS mapping on its own (exposed for tests).
  [[nodiscard]] static double MosFromR(double r);

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace athena::media
