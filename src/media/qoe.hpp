// QoE metric collection: exactly the four panels of Fig. 7 (receive
// bitrate, frame-level jitter, frame rate, SSIM) plus mouth-to-ear delay
// and stall accounting.
//
// The sender registers every encoded unit (the paper's QR-annotated source
// video is the equivalent ground truth); the receiver feeds arriving
// packets and rendered frames. All metrics are computed receiver-side from
// those three event streams.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "media/emodel.hpp"
#include "media/encoder.hpp"
#include "media/jitter_buffer.hpp"
#include "stats/cdf.hpp"
#include "stats/timeseries.hpp"

namespace athena::media {

class QoeCollector {
 public:
  struct Config {
    sim::Duration rate_window{std::chrono::seconds{1}};
    std::uint32_t video_media_clock_hz = 90'000;
  };

  QoeCollector();  // defaults (defined out of line: nested-Config quirk)
  explicit QoeCollector(Config config) : config_(config) {}

  /// Sender-side registry: called for every encoded frame/sample.
  void OnUnitSent(const EncodedUnit& unit);

  /// Receiver-side: every arriving media packet (bitrate accounting).
  void OnPacketReceived(const net::Packet& p, sim::TimePoint now);

  /// Receiver-side: every rendered frame/sample.
  void OnFrameRendered(const RenderedFrame& f);

  // ---- Fig. 7 metrics ----

  /// (a) receive media bitrate per window, Kbps.
  [[nodiscard]] stats::Cdf ReceiveBitrateKbps() const;

  /// (b) frame-level jitter: |inter-completion − inter-media| per video
  /// frame, milliseconds.
  [[nodiscard]] const stats::Cdf& FrameJitterMs() const { return frame_jitter_ms_; }

  /// (c) rendered video frame rate per window, fps.
  [[nodiscard]] stats::Cdf FrameRateFps() const;

  /// (d) SSIM of rendered video frames (encode-side quality of the frames
  /// that actually reached the screen).
  [[nodiscard]] const stats::Cdf& Ssim() const { return ssim_; }

  // ---- additional user-centric metrics ----

  /// Mouth-to-ear (capture→render) delay per rendered unit, ms.
  [[nodiscard]] const stats::Cdf& MouthToEarMs() const { return mouth_to_ear_ms_; }

  /// Jitter-buffer hold (complete-at-receiver → rendered) per unit, ms —
  /// the last segment of the fleet delay decomposition.
  [[nodiscard]] const stats::Cdf& JitterHoldMs() const { return jb_hold_ms_; }

  /// Audio-only mouth-to-ear delay, ms.
  [[nodiscard]] const stats::Cdf& AudioMouthToEarMs() const { return audio_m2e_ms_; }

  /// Fraction of sent audio samples never rendered.
  [[nodiscard]] double AudioLossFraction() const;

  /// E-model (ITU-T G.107) audio MOS from the measured median
  /// mouth-to-ear delay and sample loss — "audio samples whose quality we
  /// also measure from the application side" (§1).
  [[nodiscard]] double AudioMos() const;

  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t video_frames_rendered() const { return video_rendered_; }
  [[nodiscard]] std::uint64_t late_frames() const { return late_frames_; }

  /// Fraction of sent video frames that were rendered.
  [[nodiscard]] double VideoDeliveryRatio() const;

 private:
  Config config_;

  struct SentInfo {
    sim::TimePoint captured_at;
    double ssim = 1.0;
    bool is_audio = false;
  };
  std::unordered_map<std::uint64_t, SentInfo> sent_;

  stats::TimeSeries received_bytes_;   // per media packet
  stats::TimeSeries rendered_frames_;  // 1.0 per rendered video frame
  stats::Cdf frame_jitter_ms_;
  stats::Cdf ssim_;
  stats::Cdf mouth_to_ear_ms_;
  stats::Cdf jb_hold_ms_;
  stats::Cdf audio_m2e_ms_;
  std::uint64_t audio_sent_ = 0;
  std::uint64_t audio_rendered_ = 0;

  bool have_prev_video_ = false;
  sim::TimePoint prev_completed_;
  sim::TimePoint prev_captured_;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t video_rendered_ = 0;
  std::uint64_t late_frames_ = 0;
};

}  // namespace athena::media
