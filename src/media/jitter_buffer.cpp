#include "media/jitter_buffer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace athena::media {

namespace {
constexpr std::uint32_t kMaxPacketsPerFrame = 64;  // seen_mask width
}

JitterBuffer::JitterBuffer(sim::Simulator& sim, Config config)
    : sim_(sim), config_(config), playout_delay_(config.min_playout_delay) {}

void JitterBuffer::OnPacket(const net::Packet& p) {
  if (!p.rtp || !p.is_media()) return;
  ++packets_received_;
  const auto& rtp = *p.rtp;
  const sim::TimePoint now = sim_.Now();

  auto [it, inserted] = pending_.try_emplace(rtp.frame_id);
  PendingFrame& frame = it->second;
  if (inserted) {
    frame.expected_packets = std::min(rtp.packets_in_frame, kMaxPacketsPerFrame);
    frame.first_packet_at = now;
    frame.layer = rtp.layer;
    frame.is_audio = p.is_audio();
    frame.media_ts = rtp.media_ts;
  }

  const std::uint32_t index = std::min(rtp.packet_index_in_frame, kMaxPacketsPerFrame - 1);
  const std::uint64_t bit = std::uint64_t{1} << index;
  if (frame.seen_mask & bit) {
    ++duplicates_;
    return;
  }
  frame.seen_mask |= bit;
  ++frame.received_packets;
  frame.payload_bytes += p.size_bytes;

  if (frame.received_packets >= frame.expected_packets) {
    const PendingFrame complete = frame;
    const std::uint64_t frame_id = it->first;
    pending_.erase(it);
    OnFrameComplete(frame_id, complete);
  }

  GarbageCollect();
}

void JitterBuffer::UpdateJitter(sim::TimePoint completed_at, std::uint32_t media_ts) {
  const double media_us =
      static_cast<double>(media_ts) * 1e6 / static_cast<double>(config_.media_clock_hz);
  if (have_prev_) {
    const double inter_arrival = static_cast<double>((completed_at - prev_completed_).count());
    const double inter_media = media_us - prev_media_us_;
    const double deviation = std::abs(inter_arrival - inter_media);
    jitter_us_ += config_.jitter_ewma_alpha * (deviation - jitter_us_);
    const auto target = sim::Duration{
        static_cast<std::int64_t>(config_.jitter_multiplier * jitter_us_)};
    playout_delay_ =
        std::clamp(target, config_.min_playout_delay, config_.max_playout_delay);
  }
  have_prev_ = true;
  prev_completed_ = completed_at;
  prev_media_us_ = media_us;
}

void JitterBuffer::OnFrameComplete(std::uint64_t frame_id, const PendingFrame& frame) {
  const sim::TimePoint completed_at = sim_.Now();
  UpdateJitter(completed_at, frame.media_ts);

  const double media_us = static_cast<double>(frame.media_ts) * 1e6 /
                          static_cast<double>(config_.media_clock_hz);

  if (!anchored_) {
    anchored_ = true;
    anchor_completed_ = completed_at;
    anchor_media_us_ = media_us;
  }

  const auto media_offset =
      sim::Duration{static_cast<std::int64_t>(media_us - anchor_media_us_)};

  // Playout tightening: when a whole window of frames beats the anchor
  // schedule, the spare margin is latency for nothing — shift the anchor
  // earlier by the window's worst case (cf. WebRTC's shrinking playout
  // delay). The monotonic-render clamp below turns the shift into a
  // gradual speed-up rather than a jump.
  if (config_.tighten_window_frames > 0) {
    const auto rel_delay = completed_at - (anchor_completed_ + media_offset);
    if (window_count_ == 0 || rel_delay > window_max_rel_delay_) {
      window_max_rel_delay_ = rel_delay;
    }
    if (++window_count_ >= config_.tighten_window_frames) {
      if (window_max_rel_delay_.count() < 0) {
        anchor_completed_ += window_max_rel_delay_;
        ++anchor_tightenings_;
      }
      window_count_ = 0;
    }
  }

  sim::TimePoint target = anchor_completed_ + media_offset + playout_delay_;

  bool late = false;
  if (target < completed_at) {
    late = true;
    // The frame missed its slot: render as soon as it is complete and
    // re-anchor the playout clock so subsequent frames inherit the larger
    // effective delay (jitter-buffer expansion under sustained lateness).
    target = completed_at;
    anchor_completed_ = completed_at - media_offset;
  }
  target = std::max(target, last_render_);  // playout stays monotonic
  last_render_ = target;

  RenderedFrame rendered{
      .frame_id = frame_id,
      .layer = frame.layer,
      .is_audio = frame.is_audio,
      .first_packet_at = frame.first_packet_at,
      .completed_at = completed_at,
      .rendered_at = target,
      .payload_bytes = frame.payload_bytes,
      .late = late,
  };
  ++frames_rendered_;
  if (late) ++frames_late_;

  static thread_local obs::CachedCounter counter_frames_rendered{"media.frames_rendered"};
  counter_frames_rendered.Inc();
  if (late) {
    static thread_local obs::CachedCounter counter_frames_late{"media.frames_late"};
    counter_frames_late.Inc();
  }
  // The frame's jitter-buffer residency: first packet in → scheduled render.
  obs::TraceAsyncSpan(obs::Layer::kMedia, frame.is_audio ? obs::names::kSampleJb : obs::names::kFrameJb,
                      frame_id, frame.first_packet_at, target,
                      {{"late", late ? 1.0 : 0.0},
                       {"bytes", static_cast<double>(frame.payload_bytes)},
                       {"playout_delay_ms", sim::ToMs(playout_delay_)}});

  if (on_render_) {
    sim_.ScheduleAt(target, [cb = on_render_, rendered] { cb(rendered); });
  }
}

void JitterBuffer::GarbageCollect() {
  const sim::TimePoint now = sim_.Now();
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.first_packet_at > config_.stale_frame_timeout) {
      it = pending_.erase(it);
      ++frames_abandoned_;
      static thread_local obs::CachedCounter counter_frames_abandoned{"media.frames_abandoned"};
      counter_frames_abandoned.Inc();
    } else {
      ++it;
    }
  }
}

}  // namespace athena::media
