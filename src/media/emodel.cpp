#include "media/emodel.hpp"

#include <algorithm>
#include <cmath>

namespace athena::media {

double EModel::DelayImpairment(double mouth_to_ear_ms) const {
  // G.107's Idd, simplified (no echo term): imperceptible below ~100 ms,
  // gentle to 150 ms, then the familiar conversational-quality cliff.
  const double d = std::max(0.0, mouth_to_ear_ms);
  if (d <= 100.0) return 0.0;
  // Two-segment approximation of Idd: 0.024/ms up to 177.3 ms, a further
  // 0.11/ms beyond the conversational-quality knee.
  const double first = 0.024 * (std::min(d, 177.3) - 100.0);
  const double second = d > 177.3 ? 0.11 * (d - 177.3) : 0.0;
  return first + second;
}

double EModel::LossImpairment(double loss_fraction) const {
  const double ppl = std::clamp(loss_fraction, 0.0, 1.0) * 100.0;  // percent
  // Ie,eff = Ie + (95 − Ie) · Ppl / (Ppl + Bpl)
  return config_.codec_impairment +
         (config_.loss_impairment_max - config_.codec_impairment) * ppl /
             (ppl + config_.loss_robustness);
}

double EModel::RFactor(double mouth_to_ear_ms, double loss_fraction) const {
  const double r =
      config_.r0 - DelayImpairment(mouth_to_ear_ms) - LossImpairment(loss_fraction);
  return std::clamp(r, 0.0, 100.0);
}

double EModel::MosFromR(double r) {
  r = std::clamp(r, 0.0, 100.0);
  if (r <= 0.0) return 1.0;
  if (r >= 100.0) return 4.5;
  // ITU-T G.107 Annex B. The cubic dips fractionally below 1 for tiny R;
  // the standard's MOS scale is [1, 4.5], so clamp.
  const double mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6;
  return std::clamp(mos, 1.0, 4.5);
}

double EModel::Mos(double mouth_to_ear_ms, double loss_fraction) const {
  return MosFromR(RFactor(mouth_to_ear_ms, loss_fraction));
}

}  // namespace athena::media
