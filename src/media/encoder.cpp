#include "media/encoder.hpp"

#include <algorithm>
#include <cmath>

namespace athena::media {

AudioEncoder::AudioEncoder() : AudioEncoder(Config{}) {}

VideoEncoder::VideoEncoder(Config config, sim::Rng rng)
    : config_(config), rng_(rng), target_bitrate_bps_(config.initial_bitrate_bps) {}

void VideoEncoder::set_target_bitrate(double bps) {
  target_bitrate_bps_ = std::clamp(bps, config_.min_bitrate_bps, config_.max_bitrate_bps);
}

void VideoEncoder::set_mode(SvcMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  frame_index_ = 0;  // restart the SVC pattern on a base frame
}

void VideoEncoder::set_enhancement_skip_fraction(double f) {
  skip_fraction_ = std::clamp(f, 0.0, 1.0);
}

std::optional<EncodedUnit> VideoEncoder::EncodeNextFrame(sim::TimePoint now) {
  const net::SvcLayer layer = LayerForFrame(mode_, frame_index_);
  ++frame_index_;

  if (IsDiscardable(layer) && skip_fraction_ > 0.0 && rng_.Bernoulli(skip_fraction_)) {
    ++frames_skipped_;
    return std::nullopt;
  }

  const double fps = NominalFps(mode_);
  const double mean_bits = target_bitrate_bps_ / fps;
  // Lognormal with mean preserved: E[e^N(mu, s^2)] = e^(mu + s^2/2).
  const double sigma = config_.size_sigma;
  const double mu = std::log(mean_bits) - sigma * sigma / 2.0;
  const double bits = rng_.LogNormal(mu, sigma);
  const auto bytes = static_cast<std::uint32_t>(
      std::max<double>(bits / 8.0, config_.min_frame_bytes));

  EncodedUnit out;
  out.unit = rtp::MediaUnit{
      .frame_id = next_frame_id_,
      .payload_bytes = bytes,
      .layer = layer,
      .is_audio = false,
      .media_ts = static_cast<std::uint32_t>(
          static_cast<double>(now.us()) * config_.media_clock_hz / 1e6),
  };
  next_frame_id_ += kVideoFrameIdStride;
  out.captured_at = now;
  out.ssim = SsimModel{config_.ssim}.ForFrameBits(static_cast<double>(bytes) * 8.0);
  out.mode = mode_;
  ++frames_encoded_;
  return out;
}

EncodedUnit AudioEncoder::EncodeNextSample(sim::TimePoint now) {
  const double bits = config_.bitrate_bps * sim::ToSeconds(config_.sample_interval);
  EncodedUnit out;
  out.unit = rtp::MediaUnit{
      .frame_id = next_sample_id_,
      .payload_bytes = static_cast<std::uint32_t>(std::max(bits / 8.0, 16.0)),
      .layer = net::SvcLayer::kNone,
      .is_audio = true,
      .media_ts = static_cast<std::uint32_t>(
          static_cast<double>(now.us()) * config_.media_clock_hz / 1e6),
  };
  next_sample_id_ += 2;  // even ids; see kVideoFrameIdStride
  out.captured_at = now;
  ++samples_encoded_;
  return out;
}

}  // namespace athena::media
