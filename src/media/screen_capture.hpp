// The receiving-side display pipeline of §2: rendered video frames go to a
// virtual screen, and a 70 fps screen-capture process (slightly above the
// monitor refresh rate, as in the paper) samples which frame is visible.
// From those samples we measure how long each frame stayed on screen and
// flag frames displayed longer than their packetization interval — the
// paper's QR-code methodology, with frame ids standing in for QR codes.
#pragma once

#include <cstdint>
#include <vector>

#include "media/jitter_buffer.hpp"
#include "sim/simulator.hpp"

namespace athena::media {

class ScreenCapture {
 public:
  struct Config {
    double capture_fps = 70.0;
  };

  struct FrameObservation {
    std::uint64_t frame_id = 0;
    sim::TimePoint first_seen;
    sim::TimePoint last_seen;
    std::uint32_t samples = 0;

    [[nodiscard]] sim::Duration on_screen_for() const { return last_seen - first_seen; }
  };

  explicit ScreenCapture(sim::Simulator& sim);  // default config
  ScreenCapture(sim::Simulator& sim, Config config);

  void Start();
  void Stop();

  /// Wire as the jitter buffer's render callback (video frames only).
  void OnFrameRendered(const RenderedFrame& f);

  /// Per-frame on-screen observations, in display order.
  [[nodiscard]] const std::vector<FrameObservation>& observations() const {
    return observations_;
  }

  /// Frames that stayed on screen longer than `intended` by more than one
  /// capture period (i.e., visibly frozen at the given nominal rate).
  [[nodiscard]] std::uint64_t FrozenFrameCount(sim::Duration intended) const;

  /// Distinct frames seen per second over the captured span.
  [[nodiscard]] double ObservedFps() const;

  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

 private:
  void Sample();

  sim::Simulator& sim_;
  Config config_;
  sim::PeriodicTimer timer_;
  std::uint64_t displayed_frame_ = 0;  ///< 0 = nothing on screen yet
  std::vector<FrameObservation> observations_;
  std::uint64_t samples_ = 0;
};

}  // namespace athena::media
