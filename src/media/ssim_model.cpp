#include "media/ssim_model.hpp"

#include <algorithm>
#include <cmath>

namespace athena::media {

double SsimModel::ForFrameBits(double frame_bits) const {
  const double pixels = static_cast<double>(config_.width) * config_.height;
  const double bpp = std::max(frame_bits, 1.0) / pixels;
  const double x = config_.steepness * (std::log(bpp) - std::log(config_.midpoint_bpp));
  const double sigmoid = 1.0 / (1.0 + std::exp(-x));
  const double ssim = config_.floor + (config_.ceiling - config_.floor) * sigmoid;
  return std::clamp(ssim, config_.floor, config_.ceiling);
}

double SsimModel::ForStream(double bitrate_bps, double fps) const {
  if (fps <= 0.0) return config_.floor;
  return ForFrameBits(bitrate_bps / fps);
}

}  // namespace athena::media
