// Picture-quality model: maps encoding parameters to an SSIM estimate.
//
// Substitution note (DESIGN.md §1): the paper computes real SSIM between
// QR-annotated sent frames and screen-captured received frames. Without
// pixels, we use the standard rate-distortion observation that SSIM is a
// saturating (logistic in log-rate) function of bits-per-pixel; the curve
// is calibrated so the operating points match Fig. 7d's range
// (SSIM ≈ 0.80–0.88 for the bitrates Zoom uses at 640×360).
#pragma once

#include <cstdint>

namespace athena::media {

class SsimModel {
 public:
  struct Config {
    std::uint32_t width = 640;
    std::uint32_t height = 360;
    double floor = 0.68;      ///< quality at vanishing bitrate
    double ceiling = 0.93;    ///< saturation quality (screen-captured SSIM
                              ///< tops out well below 1.0, cf. Fig. 7d)
    double midpoint_bpp = 0.070;  ///< bits-per-pixel at the curve's midpoint
    double steepness = 1.7;   ///< logistic steepness in ln(bpp) units
  };

  SsimModel() = default;
  explicit SsimModel(Config config) : config_(config) {}

  /// SSIM of a frame encoded with `frame_bits` at the configured
  /// resolution. Monotone in frame_bits; clamped to [floor, ceiling].
  [[nodiscard]] double ForFrameBits(double frame_bits) const;

  /// SSIM for a stream at `bitrate_bps` and `fps` (per-frame bits =
  /// bitrate / fps).
  [[nodiscard]] double ForStream(double bitrate_bps, double fps) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace athena::media
