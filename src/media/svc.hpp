// Scalable Video Coding (SVC) temporal-layer structure as the paper
// observed Zoom using (§2 "How Zoom Adapts", confirmed by Zoom engineers):
//
//   - 28 fps target: base layer at 14 fps + "High-FPS Enhancement" frames
//     interleaved to reach 28 fps.
//   - 14 fps target: base layer at 7 fps + a distinctly-identified
//     "Low-FPS Enhancement" to reach 14 fps.
//
// The layer id travels in an RTP header extension (net::RtpMeta::layer).
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace athena::media {

/// The sender's frame-rate mode: which SVC ladder is in use.
enum class SvcMode : std::uint8_t {
  kHighFps28,  ///< base 14 fps + high-FPS enhancement = 28 fps
  kLowFps14,   ///< base 7 fps + low-FPS enhancement = 14 fps
};

[[nodiscard]] const char* ToString(SvcMode mode);

/// Nominal encoded frame rate of a mode (all layers).
[[nodiscard]] double NominalFps(SvcMode mode);

/// Frame interval at the mode's full rate.
[[nodiscard]] sim::Duration FrameInterval(SvcMode mode);

/// Layer of the `index`-th frame within a mode's repeating pattern.
/// Even frames are base-layer; odd frames are the mode's enhancement.
[[nodiscard]] net::SvcLayer LayerForFrame(SvcMode mode, std::uint64_t index);

/// True when a frame of `layer` may be skipped without breaking decode of
/// later frames (enhancement frames reference only base frames here, the
/// P-frame chain the paper describes runs through the base layer).
[[nodiscard]] bool IsDiscardable(net::SvcLayer layer);

}  // namespace athena::media
