// Media encoder models.
//
// VideoEncoder emits one encoded frame per tick of the active SVC mode's
// clock: P-frames only (the paper: VCAs "typically do not use I-frames but
// rather transmit all video as a series of P-frames"), sized around
// target_bitrate / fps with mild lognormal variation so frame sizes
// "rarely change significantly" (§5.2). AudioEncoder emits an Opus-like
// 20 ms sample at a constant rate. Neither schedules itself — the VCA
// sender drives the ticks — which keeps the models testable in isolation.
#pragma once

#include <cstdint>
#include <optional>

#include "media/ssim_model.hpp"
#include "media/svc.hpp"
#include "rtp/packetizer.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace athena::media {

/// An encoded frame/sample plus the bookkeeping QoE needs.
struct EncodedUnit {
  rtp::MediaUnit unit;           ///< what goes to the packetizer
  sim::TimePoint captured_at;    ///< capture instant (mouth/camera time)
  double ssim = 1.0;             ///< encode-side picture quality (video only)
  SvcMode mode = SvcMode::kHighFps28;
};

class VideoEncoder {
 public:
  struct Config {
    double initial_bitrate_bps = 800e3;
    double min_bitrate_bps = 150e3;
    /// Zoom caps its 360p-class stream around this rate (Fig. 7a/8 range).
    double max_bitrate_bps = 1.2e6;
    double size_sigma = 0.18;     ///< lognormal sigma of frame-size variation
    std::uint32_t min_frame_bytes = 400;
    std::uint32_t media_clock_hz = 90'000;  ///< RTP video clock
    SsimModel::Config ssim;
  };

  VideoEncoder(Config config, sim::Rng rng);

  /// Encodes the next frame of the current mode. Returns nullopt when the
  /// frame is skipped (transient frame-skipping adaptation): skipped
  /// frames are always enhancement-layer frames, so decode continuity is
  /// preserved.
  [[nodiscard]] std::optional<EncodedUnit> EncodeNextFrame(sim::TimePoint now);

  void set_target_bitrate(double bps);
  [[nodiscard]] double target_bitrate() const { return target_bitrate_bps_; }

  void set_mode(SvcMode mode);
  [[nodiscard]] SvcMode mode() const { return mode_; }

  /// Fraction of *enhancement* frames to skip (0 = none, 1 = all); models
  /// Zoom's transient frame skipping under jitter ("reducing to rates
  /// around 20 fps").
  void set_enhancement_skip_fraction(double f);
  [[nodiscard]] double enhancement_skip_fraction() const { return skip_fraction_; }

  [[nodiscard]] sim::Duration frame_interval() const { return FrameInterval(mode_); }
  [[nodiscard]] std::uint64_t frames_encoded() const { return frames_encoded_; }
  [[nodiscard]] std::uint64_t frames_skipped() const { return frames_skipped_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  sim::Rng rng_;
  double target_bitrate_bps_;
  SvcMode mode_ = SvcMode::kHighFps28;
  double skip_fraction_ = 0.0;
  std::uint64_t frame_index_ = 0;   ///< position in the SVC pattern
  std::uint64_t next_frame_id_ = 1;
  std::uint64_t frames_encoded_ = 0;
  std::uint64_t frames_skipped_ = 0;
};

class AudioEncoder {
 public:
  struct Config {
    double bitrate_bps = 64e3;          ///< Opus-like constant rate
    sim::Duration sample_interval{std::chrono::milliseconds{20}};
    std::uint32_t media_clock_hz = 48'000;  ///< RTP audio clock
  };

  AudioEncoder();  // defaults (defined out of line: nested-Config quirk)
  explicit AudioEncoder(Config config) : config_(config) {}

  [[nodiscard]] EncodedUnit EncodeNextSample(sim::TimePoint now);

  [[nodiscard]] sim::Duration sample_interval() const { return config_.sample_interval; }
  [[nodiscard]] std::uint64_t samples_encoded() const { return samples_encoded_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  std::uint64_t next_sample_id_ = 2;  // even ids; video uses odd ids
  std::uint64_t samples_encoded_ = 0;
};

/// Video frame ids are odd, audio sample ids even, so the two id spaces
/// never collide when both streams feed one correlator.
inline constexpr std::uint64_t kVideoFrameIdStride = 2;

}  // namespace athena::media
