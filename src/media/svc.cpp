#include "media/svc.hpp"

namespace athena::media {

const char* ToString(SvcMode mode) {
  switch (mode) {
    case SvcMode::kHighFps28: return "28fps(base14+high-enh)";
    case SvcMode::kLowFps14: return "14fps(base7+low-enh)";
  }
  return "?";
}

double NominalFps(SvcMode mode) {
  switch (mode) {
    case SvcMode::kHighFps28: return 28.0;
    case SvcMode::kLowFps14: return 14.0;
  }
  return 0.0;
}

sim::Duration FrameInterval(SvcMode mode) {
  return sim::FromSeconds(1.0 / NominalFps(mode));
}

net::SvcLayer LayerForFrame(SvcMode mode, std::uint64_t index) {
  const bool base = (index % 2 == 0);
  if (base) return net::SvcLayer::kBase;
  return mode == SvcMode::kHighFps28 ? net::SvcLayer::kHighFpsEnhancement
                                     : net::SvcLayer::kLowFpsEnhancement;
}

bool IsDiscardable(net::SvcLayer layer) {
  return layer == net::SvcLayer::kHighFpsEnhancement ||
         layer == net::SvcLayer::kLowFpsEnhancement;
}

}  // namespace athena::media
