#include "media/screen_capture.hpp"

namespace athena::media {

ScreenCapture::ScreenCapture(sim::Simulator& sim) : ScreenCapture(sim, Config{}) {}

ScreenCapture::ScreenCapture(sim::Simulator& sim, Config config)
    : sim_(sim),
      config_(config),
      timer_(sim, sim::FromSeconds(1.0 / config.capture_fps), [this] { Sample(); }) {}

void ScreenCapture::Start() { timer_.Start(sim::Duration{0}); }

void ScreenCapture::Stop() { timer_.Stop(); }

void ScreenCapture::OnFrameRendered(const RenderedFrame& f) {
  if (f.is_audio) return;
  displayed_frame_ = f.frame_id;
}

void ScreenCapture::Sample() {
  ++samples_;
  if (displayed_frame_ == 0) return;
  const sim::TimePoint now = sim_.Now();
  if (!observations_.empty() && observations_.back().frame_id == displayed_frame_) {
    observations_.back().last_seen = now;
    ++observations_.back().samples;
    return;
  }
  observations_.push_back(FrameObservation{
      .frame_id = displayed_frame_,
      .first_seen = now,
      .last_seen = now,
      .samples = 1,
  });
}

std::uint64_t ScreenCapture::FrozenFrameCount(sim::Duration intended) const {
  const auto capture_period = sim::FromSeconds(1.0 / config_.capture_fps);
  std::uint64_t frozen = 0;
  for (const auto& obs : observations_) {
    if (obs.on_screen_for() > intended + capture_period) ++frozen;
  }
  return frozen;
}

double ScreenCapture::ObservedFps() const {
  if (observations_.size() < 2) return 0.0;
  const auto span = observations_.back().last_seen - observations_.front().first_seen;
  if (span.count() <= 0) return 0.0;
  return static_cast<double>(observations_.size()) / sim::ToSeconds(span);
}

}  // namespace athena::media
