#include "media/qoe.hpp"

#include <cmath>

namespace athena::media {

QoeCollector::QoeCollector() : QoeCollector(Config{}) {}

void QoeCollector::OnUnitSent(const EncodedUnit& unit) {
  sent_[unit.unit.frame_id] = SentInfo{
      .captured_at = unit.captured_at,
      .ssim = unit.ssim,
      .is_audio = unit.unit.is_audio,
  };
  if (unit.unit.is_audio) {
    ++audio_sent_;
  } else {
    ++frames_sent_;
  }
}

void QoeCollector::OnPacketReceived(const net::Packet& p, sim::TimePoint now) {
  if (!p.is_media()) return;
  received_bytes_.Add(now, static_cast<double>(p.size_bytes));
}

void QoeCollector::OnFrameRendered(const RenderedFrame& f) {
  const auto sent = sent_.find(f.frame_id);
  if (sent != sent_.end()) {
    const double m2e_ms = sim::ToMs(f.rendered_at - sent->second.captured_at);
    mouth_to_ear_ms_.Add(m2e_ms);
    if (f.is_audio) audio_m2e_ms_.Add(m2e_ms);
  }
  jb_hold_ms_.Add(sim::ToMs(f.rendered_at - f.completed_at));
  if (f.is_audio) {
    ++audio_rendered_;
    return;
  }

  ++video_rendered_;
  if (f.late) ++late_frames_;
  rendered_frames_.Add(f.rendered_at, 1.0);
  if (sent != sent_.end()) ssim_.Add(sent->second.ssim);

  // Frame-level jitter: deviation of the inter-completion gap from the
  // inter-capture gap of the same two frames.
  if (sent != sent_.end()) {
    if (have_prev_video_) {
      const double inter_completion = sim::ToMs(f.completed_at - prev_completed_);
      const double inter_capture = sim::ToMs(sent->second.captured_at - prev_captured_);
      frame_jitter_ms_.Add(std::abs(inter_completion - inter_capture));
    }
    have_prev_video_ = true;
    prev_completed_ = f.completed_at;
    prev_captured_ = sent->second.captured_at;
  }
}

stats::Cdf QoeCollector::ReceiveBitrateKbps() const {
  stats::Cdf out;
  for (const auto& w : received_bytes_.WindowedRatePerSecond(config_.rate_window)) {
    out.Add(w.mean * 8.0 / 1e3);  // bytes/s → Kbps
  }
  return out;
}

stats::Cdf QoeCollector::FrameRateFps() const {
  stats::Cdf out;
  for (const auto& w : rendered_frames_.WindowedRatePerSecond(config_.rate_window)) {
    out.Add(w.mean);
  }
  return out;
}

double QoeCollector::AudioLossFraction() const {
  if (audio_sent_ == 0) return 0.0;
  const auto lost = audio_sent_ > audio_rendered_ ? audio_sent_ - audio_rendered_ : 0;
  return static_cast<double>(lost) / static_cast<double>(audio_sent_);
}

double QoeCollector::AudioMos() const {
  if (audio_m2e_ms_.empty()) return 1.0;
  return EModel{}.Mos(audio_m2e_ms_.Median(), AudioLossFraction());
}

double QoeCollector::VideoDeliveryRatio() const {
  if (frames_sent_ == 0) return 0.0;
  return static_cast<double>(video_rendered_) / static_cast<double>(frames_sent_);
}

}  // namespace athena::media
