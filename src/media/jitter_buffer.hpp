// Receiver-side jitter buffer: assembles RTP packets into frames, smooths
// delay variation with an adaptive playout delay, and emits rendered
// frames. §2 of the paper: the jitter buffer is the VCA's second knob —
// expand it (more mouth-to-ear delay) or accept stall risk.
//
// Playout model (WebRTC-style): the first completed frame anchors a media
// clock; each later frame's target render time is
//     anchor_render + (media_time - anchor_media_time) + playout_delay
// where playout_delay adapts to the observed frame-completion jitter. A
// frame completing after its target renders late — that lateness is what
// the screen-capture QoE pipeline sees as a frozen/stalled picture.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace athena::media {

/// A frame (or audio sample) leaving the jitter buffer for the renderer.
struct RenderedFrame {
  std::uint64_t frame_id = 0;
  net::SvcLayer layer = net::SvcLayer::kNone;
  bool is_audio = false;
  sim::TimePoint first_packet_at;  ///< arrival of the frame's first packet
  sim::TimePoint completed_at;     ///< arrival of the frame's last packet
  sim::TimePoint rendered_at;      ///< when playout actually happened
  std::uint32_t payload_bytes = 0;
  bool late = false;               ///< missed its playout target
};

class JitterBuffer {
 public:
  struct Config {
    sim::Duration min_playout_delay{std::chrono::milliseconds{30}};
    sim::Duration max_playout_delay{std::chrono::milliseconds{800}};
    double jitter_multiplier = 3.0;      ///< playout delay = multiplier × jitter
    double jitter_ewma_alpha = 0.05;     ///< smoothing of the jitter estimate
    sim::Duration stale_frame_timeout{std::chrono::seconds{3}};
    std::uint32_t media_clock_hz = 90'000;  ///< 90 kHz video, 48 kHz audio
    /// Playout tightening: if every frame in a window of this many frames
    /// arrived ahead of its anchor-relative schedule, the playout clock
    /// shifts earlier by the spare margin (a buffer anchored during a
    /// transient — e.g. a satellite handover — must not inflate latency
    /// forever). 0 disables tightening.
    std::uint32_t tighten_window_frames = 256;
  };

  using RenderCallback = std::function<void(const RenderedFrame&)>;

  JitterBuffer(sim::Simulator& sim, Config config);

  /// Feed every media packet that reaches the receiver.
  void OnPacket(const net::Packet& p);

  void set_render_callback(RenderCallback cb) { on_render_ = std::move(cb); }

  [[nodiscard]] sim::Duration current_playout_delay() const { return playout_delay_; }
  [[nodiscard]] sim::Duration jitter_estimate() const {
    return sim::Duration{static_cast<std::int64_t>(jitter_us_)};
  }
  [[nodiscard]] std::uint64_t frames_rendered() const { return frames_rendered_; }
  [[nodiscard]] std::uint64_t frames_late() const { return frames_late_; }
  [[nodiscard]] std::uint64_t packets_received() const { return packets_received_; }
  [[nodiscard]] std::uint64_t duplicates_dropped() const { return duplicates_; }
  [[nodiscard]] std::uint64_t frames_abandoned() const { return frames_abandoned_; }
  [[nodiscard]] std::uint64_t anchor_tightenings() const { return anchor_tightenings_; }

 private:
  struct PendingFrame {
    std::uint32_t expected_packets = 0;
    std::uint32_t received_packets = 0;
    std::uint32_t payload_bytes = 0;
    std::uint64_t seen_mask = 0;  ///< bitmask of packet indices (frames ≤ 64 packets)
    sim::TimePoint first_packet_at;
    net::SvcLayer layer = net::SvcLayer::kNone;
    bool is_audio = false;
    std::uint32_t media_ts = 0;
  };

  void OnFrameComplete(std::uint64_t frame_id, const PendingFrame& frame);
  void UpdateJitter(sim::TimePoint completed_at, std::uint32_t media_ts);
  void GarbageCollect();

  sim::Simulator& sim_;
  Config config_;
  RenderCallback on_render_;
  std::map<std::uint64_t, PendingFrame> pending_;

  // Playout clock anchor (set by the first completed video frame).
  bool anchored_ = false;
  sim::TimePoint anchor_render_;
  double anchor_media_us_ = 0.0;

  // Jitter estimation state.
  bool have_prev_ = false;
  sim::TimePoint prev_completed_;
  double prev_media_us_ = 0.0;
  double jitter_us_ = 0.0;

  sim::Duration playout_delay_;
  std::uint64_t frames_rendered_ = 0;
  std::uint64_t frames_late_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t frames_abandoned_ = 0;
  std::uint64_t anchor_tightenings_ = 0;
  sim::TimePoint last_render_;
  sim::TimePoint anchor_completed_;

  // Tightening window state: the worst (largest) anchor-relative network
  // delay seen in the current window.
  std::uint32_t window_count_ = 0;
  sim::Duration window_max_rel_delay_{0};
};

}  // namespace athena::media
