// Simulation time: a strong time-point type on a microsecond grid.
//
// The whole repository runs on simulated time. A `TimePoint` is an offset
// from the simulation epoch (t = 0, when `Simulator` is constructed);
// `Duration` is std::chrono::microseconds so call sites can use chrono
// literals (`10ms`, `250us`) directly. Keeping the two types distinct makes
// interfaces explicit: you cannot accidentally pass an interval where an
// absolute time is expected.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace athena::sim {

/// An interval of simulated time. Chrono literals convert implicitly.
using Duration = std::chrono::microseconds;

/// An absolute point in simulated time, measured from the simulation epoch.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(Duration since_epoch) : us_(since_epoch.count()) {}

  /// Time elapsed since the simulation epoch.
  [[nodiscard]] constexpr Duration since_epoch() const { return Duration{us_}; }

  /// Raw microsecond count; for serialization and stats only.
  [[nodiscard]] constexpr std::int64_t us() const { return us_; }

  /// Convenience conversions for reporting.
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint& operator+=(Duration d) {
    us_ += d.count();
    return *this;
  }
  constexpr TimePoint& operator-=(Duration d) {
    us_ -= d.count();
    return *this;
  }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return t += d; }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t += d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return t -= d; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration{a.us_ - b.us_};
  }

 private:
  std::int64_t us_ = 0;
};

/// The simulation epoch (t = 0).
inline constexpr TimePoint kEpoch{};

/// A far-future sentinel usable as "never" / "no deadline".
inline constexpr TimePoint kTimeInfinity{Duration{std::int64_t{1} << 62}};

/// Millisecond value of a duration as a double (for stats and printing).
[[nodiscard]] constexpr double ToMs(Duration d) { return static_cast<double>(d.count()) / 1e3; }

/// Seconds value of a duration as a double.
[[nodiscard]] constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}

/// Builds a Duration from a (possibly fractional) millisecond count.
[[nodiscard]] constexpr Duration FromMs(double ms) {
  return Duration{static_cast<std::int64_t>(ms * 1e3)};
}

/// Builds a Duration from a (possibly fractional) second count.
[[nodiscard]] constexpr Duration FromSeconds(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e6)};
}

/// Human-readable rendering, e.g. "12.500ms".
[[nodiscard]] std::string ToString(Duration d);
[[nodiscard]] std::string ToString(TimePoint t);

std::ostream& operator<<(std::ostream& os, TimePoint t);

}  // namespace athena::sim
