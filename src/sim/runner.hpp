// Deterministic parallel sweep runner.
//
// A sweep runs N independent simulations (e.g. the same session under N
// derived seeds). Each run is a pure function of its index: it builds its
// own Simulator, its own observability session (the obs globals
// `g_trace_sink` / `g_metrics` are thread_local, so concurrent runs never
// see each other), and returns a value. Results are assembled strictly in
// index order, so the output is bit-identical whatever `jobs` is — the
// thread count changes wall-clock time only, never results.
//
// Threading model: the runner owns a *persistent* worker pool, created
// lazily on the first parallel ForEach and reused for every subsequent
// call — a sweep of sweeps (chaos matrix, fleet sweep, the world engine's
// correlation fan-out) pays thread creation once, not per invocation.
// With `jobs == 1` (or n == 1) everything runs inline on the calling
// thread and no pool is ever created. With `jobs > 1` *all* tasks run on
// pool threads — the caller only waits — so a run never inherits the
// caller's thread_local observability state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace athena::sim {

/// Derives a per-run RNG seed from a base seed and a run index
/// (splitmix64 of base ^ golden-ratio-scrambled index). Stable across
/// platforms and releases: sweep run `i` always gets the same seed, so a
/// sweep is reproducible run-by-run, not just as a whole.
[[nodiscard]] std::uint64_t DeriveSeed(std::uint64_t base, std::uint64_t index);

/// Per-worker-thread lifecycle callbacks. The telemetry pipeline
/// (obs/pipeline/) uses these to bind one ring shard per worker: every
/// run a worker executes then feeds that worker's ring, so a sweep's
/// ingest topology is exactly `jobs` producers → one collector.
///
/// Hooks run once per ForEach/Map call on every participating worker
/// (exactly as they did when workers were spawned per call): on_start
/// before the worker claims its first task of that call, on_stop after
/// its last.
struct WorkerHooks {
  /// Runs on the worker thread before it claims its first task.
  /// `worker` ∈ [0, jobs). Must not throw.
  std::function<void(unsigned worker)> on_start;
  /// Runs on the worker thread after its last task (before the caller is
  /// released).
  std::function<void(unsigned worker)> on_stop;
};

/// A small persistent thread pool for index-addressed parallel work.
class ParallelRunner {
 public:
  /// `jobs` = number of worker threads; 0 picks the hardware concurrency
  /// (at least 1). `jobs == 1` executes inline on the calling thread.
  explicit ParallelRunner(unsigned jobs = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Installs worker lifecycle hooks for subsequent ForEach/Map calls.
  /// Inline execution (jobs == 1 or n == 1) still runs them, as worker 0
  /// on the calling thread, so hook-dependent state behaves identically
  /// at any job count.
  void set_worker_hooks(WorkerHooks hooks) { hooks_ = std::move(hooks); }

  /// Runs `task(i)` for every i in [0, n). Tasks are claimed from an
  /// atomic counter, so scheduling is work-stealing-free and any task
  /// order is possible — tasks must not depend on each other. If any task
  /// throws, the first exception (by completion order) is rethrown after
  /// every worker has finished the call. Calls are serialized: concurrent
  /// ForEach invocations on the same runner queue behind one another.
  void ForEach(std::size_t n, const std::function<void(std::size_t)>& task) const;

  /// Runs `fn(i)` for every i in [0, n) and returns the results in index
  /// order — the deterministic-output primitive sweeps are built on.
  template <typename R>
  [[nodiscard]] std::vector<R> Map(std::size_t n,
                                   const std::function<R(std::size_t)>& fn) const {
    std::vector<R> out(n);
    ForEach(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Pool;  // the persistent workers (runner.cpp)

  unsigned jobs_ = 1;
  WorkerHooks hooks_;
  /// Created on the first ForEach that needs >1 worker; mutable so the
  /// logically-const ForEach can build it lazily.
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<Pool> pool_;
};

}  // namespace athena::sim
