#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace athena::sim {

// A 4-ary implicit heap halves the tree depth of a binary heap, trading a
// three-extra-compare inner loop for far fewer cache lines touched per
// sift — a consistent win for the schedule/pop mix the simulator runs.
namespace {
constexpr std::size_t kArity = 4;
}  // namespace

std::uint32_t EventQueue::AcquireSlot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::ReleaseSlot(std::uint32_t slot) const {
  Slot& s = slots_[slot];
  s.cb = Callback{};  // destroy the callable now, not at reuse time
  s.seq = 0;
  s.cancelled = false;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::SiftUp(std::size_t i) const {
  HeapEntry moving = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!Before(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void EventQueue::SiftDown(std::size_t i) const {
  const std::size_t n = heap_.size();
  HeapEntry moving = heap_[i];
  while (true) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

void EventQueue::RemoveRoot() const {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty() && slots_[heap_[0].slot].cancelled) {
    ReleaseSlot(heap_[0].slot);
    RemoveRoot();
  }
}

EventHandle EventQueue::Schedule(TimePoint when, Callback cb) {
  ATHENA_CHECK(cb, "EventQueue::Schedule requires a non-empty callback");
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.seq = seq;
  heap_.push_back(HeapEntry{when, seq, slot});
  SiftUp(heap_.size() - 1);
  ++live_count_;
  return EventHandle{seq, slot};
}

bool EventQueue::Cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= slots_.size()) return false;
  Slot& s = slots_[handle.slot_];
  // The slot's seq is the generation tag: it differs if the event already
  // fired (slot freed or reused for a younger event), so stale handles are
  // rejected exactly and the live count never drifts.
  if (s.seq != handle.seq_ || s.cancelled) return false;
  s.cancelled = true;
  --live_count_;
  return true;
}

TimePoint EventQueue::next_time() const {
  DropCancelledHead();
  ATHENA_CHECK(!heap_.empty(), "next_time() called on an empty queue (check !empty())");
  return heap_[0].when;
}

EventQueue::Fired EventQueue::PopNext() {
  DropCancelledHead();
  ATHENA_CHECK(!heap_.empty(), "PopNext() called on an empty queue (check !empty())");
  const HeapEntry top = heap_[0];
  Fired fired{top.when, std::move(slots_[top.slot].cb)};
  ReleaseSlot(top.slot);
  RemoveRoot();
  --live_count_;
  return fired;
}

}  // namespace athena::sim
