#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace athena::sim {

EventHandle EventQueue::Schedule(TimePoint when, Callback cb) {
  assert(cb && "scheduling an empty callback");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(cb)});
  ++live_count_;
  return EventHandle{seq};
}

bool EventQueue::Cancel(EventHandle handle) {
  if (!handle.valid() || handle.seq_ >= next_seq_) return false;
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), handle.seq_);
  if (it != cancelled_.end() && *it == handle.seq_) return false;  // already cancelled
  // We cannot cheaply know whether the event already ran; callers in this
  // codebase only cancel pending timers they own, so treat unknown as
  // pending if the seq is plausible. PopNext skips cancelled entries.
  cancelled_.insert(it, handle.seq_);
  if (live_count_ > 0) --live_count_;
  return true;
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty()) {
    const auto seq = heap_.top().seq;
    if (!std::binary_search(cancelled_.begin(), cancelled_.end(), seq)) return;
    // Remove the tombstone so seqs can't match twice.
    auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), seq);
    cancelled_.erase(it);
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() const {
  DropCancelledHead();
  assert(!heap_.empty() && "next_time() on an empty queue");
  return heap_.top().when;
}

EventQueue::Fired EventQueue::PopNext() {
  DropCancelledHead();
  assert(!heap_.empty() && "PopNext() on an empty queue");
  // priority_queue::top() is const&; the callback must be moved out, so we
  // const_cast the entry we are about to pop. This is safe: the entry is
  // removed immediately and the heap order does not depend on `cb`.
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.when, std::move(top.cb)};
  heap_.pop();
  --live_count_;
  return fired;
}

}  // namespace athena::sim
