#include "sim/runner.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/check.hpp"

namespace athena::sim {

std::uint64_t DeriveSeed(std::uint64_t base, std::uint64_t index) {
  // splitmix64 finalizer over base ^ scrambled index. Index 0 with base b
  // does NOT return b: derived seeds live in their own namespace so a
  // sweep's run 0 never aliases a non-sweep run with the same base.
  std::uint64_t z = base ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The persistent workers. All coordination is generation-based: a
/// ForEach publishes one generation (task pointer, size, participant
/// count), wakes everyone, and waits until the participating workers have
/// drained the index counter. Workers whose index is >= the participant
/// count skip the generation (n < jobs leaves the surplus parked), so the
/// per-call behaviour — which workers run, when hooks fire — is exactly
/// what per-call thread spawning produced.
struct ParallelRunner::Pool {
  explicit Pool(unsigned workers) {
    threads.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      threads.emplace_back([this, t] { WorkerMain(t); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stopping = true;
    }
    cv_work.notify_all();
    for (auto& th : threads) th.join();
  }

  void Run(std::size_t n, unsigned participants,
           const std::function<void(std::size_t)>& run_task, const WorkerHooks& run_hooks) {
    // Serialize callers: the pool executes one generation at a time.
    std::lock_guard<std::mutex> serialize(run_mu);
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mu);
      task = &run_task;
      hooks = &run_hooks;
      task_count = n;
      active = participants;
      next.store(0, std::memory_order_relaxed);
      remaining = participants;
      first_error = nullptr;
      ++generation;
      cv_work.notify_all();
      cv_done.wait(lock, [this] { return remaining == 0; });
      error = first_error;
      task = nullptr;
      hooks = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void WorkerMain(unsigned index) {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv_work.wait(lock, [&] { return stopping || generation != seen; });
      if (stopping) return;
      seen = generation;
      if (index >= active) continue;  // parked for this generation
      const auto* run_task = task;
      const auto* run_hooks = hooks;
      const std::size_t n = task_count;
      lock.unlock();

      if (run_hooks->on_start) run_hooks->on_start(index);
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          // Contain ATHENA_CHECK: a violated precondition inside one run
          // becomes that run's CheckViolation (caught below and rethrown
          // after the generation completes) instead of an abort() that
          // kills every sibling run in the sweep.
          ScopedCheckThrow contain;
          (*run_task)(i);
        } catch (...) {
          std::lock_guard<std::mutex> error_lock(mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (run_hooks->on_stop) run_hooks->on_stop(index);

      lock.lock();
      if (--remaining == 0) cv_done.notify_all();
    }
  }

  std::mutex run_mu;  ///< serializes Run() callers

  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t generation = 0;
  bool stopping = false;

  // Current generation (valid while remaining > 0).
  const std::function<void(std::size_t)>* task = nullptr;
  const WorkerHooks* hooks = nullptr;
  std::size_t task_count = 0;
  unsigned active = 0;
  std::atomic<std::size_t> next{0};
  unsigned remaining = 0;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
};

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    jobs_ = std::thread::hardware_concurrency();
    if (jobs_ == 0) jobs_ = 1;
  }
}

ParallelRunner::~ParallelRunner() = default;

void ParallelRunner::ForEach(std::size_t n,
                             const std::function<void(std::size_t)>& task) const {
  if (n == 0) return;

  const unsigned threads = jobs_ > n ? static_cast<unsigned>(n) : jobs_;
  if (threads <= 1) {
    // Inline path: worker 0 on the calling thread, hooks included.
    if (hooks_.on_start) hooks_.on_start(0);
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        ScopedCheckThrow contain;
        task(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (hooks_.on_stop) hooks_.on_stop(0);
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  std::call_once(pool_once_, [this] { pool_ = std::make_unique<Pool>(jobs_); });
  pool_->Run(n, threads, task, hooks_);
}

}  // namespace athena::sim
