#include "sim/runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/check.hpp"

namespace athena::sim {

std::uint64_t DeriveSeed(std::uint64_t base, std::uint64_t index) {
  // splitmix64 finalizer over base ^ scrambled index. Index 0 with base b
  // does NOT return b: derived seeds live in their own namespace so a
  // sweep's run 0 never aliases a non-sweep run with the same base.
  std::uint64_t z = base ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    jobs_ = std::thread::hardware_concurrency();
    if (jobs_ == 0) jobs_ = 1;
  }
}

void ParallelRunner::ForEach(std::size_t n,
                             const std::function<void(std::size_t)>& task) const {
  if (n == 0) return;

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto worker = [&](unsigned worker_index) {
    if (hooks_.on_start) hooks_.on_start(worker_index);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        // Contain ATHENA_CHECK: a violated precondition inside one run
        // becomes that run's CheckViolation (caught below and rethrown
        // after the join) instead of an abort() that kills every sibling
        // run in the sweep.
        ScopedCheckThrow contain;
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (hooks_.on_stop) hooks_.on_stop(worker_index);
  };

  const unsigned threads = jobs_ > n ? static_cast<unsigned>(n) : jobs_;
  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace athena::sim
