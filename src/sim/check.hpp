// Release-mode-safe precondition guards.
//
// `assert` compiles away under NDEBUG, so a violated kernel precondition
// (popping an empty event queue, scheduling an empty callback) would run
// straight into undefined behaviour in optimized builds. ATHENA_CHECK
// stays armed in every build mode: it prints the failed expression with
// its location and aborts, turning latent UB into a loud, debuggable
// crash. Use it for cheap, load-bearing preconditions on hot-path entry
// points; keep plain `assert` for expensive internal invariants.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace athena::sim::detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ATHENA_CHECK failed: %s at %s:%d — %s\n", expr, file, line, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace athena::sim::detail

/// Fatal unless `cond` holds — in debug AND release builds. `msg` should
/// say what contract the caller broke, not restate the expression.
#define ATHENA_CHECK(cond, msg)                                                       \
  (static_cast<bool>(cond)                                                            \
       ? static_cast<void>(0)                                                         \
       : ::athena::sim::detail::CheckFailed(#cond, __FILE__, __LINE__, (msg)))
