// Release-mode-safe precondition guards.
//
// `assert` compiles away under NDEBUG, so a violated kernel precondition
// (popping an empty event queue, scheduling an empty callback) would run
// straight into undefined behaviour in optimized builds. ATHENA_CHECK
// stays armed in every build mode: it prints the failed expression with
// its location and aborts, turning latent UB into a loud, debuggable
// crash. Use it for cheap, load-bearing preconditions on hot-path entry
// points; keep plain `assert` for expensive internal invariants.
//
// Supervised execution (src/resilience/, parallel sweeps): abort() on a
// worker thread takes the whole process — and every sibling run — down
// with it. A scope that can contain the blast radius installs
// ScopedCheckThrow, which converts a violated check on *that thread*
// into a CheckViolation exception (still printed loudly first). The
// default, and anything outside such a scope, still aborts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace athena::sim {

/// A violated ATHENA_CHECK captured by ScopedCheckThrow: the run that
/// tripped it is poisoned and must be abandoned, but the process (and
/// any sibling runs) may keep going.
class CheckViolation : public std::logic_error {
 public:
  explicit CheckViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

/// Per-thread: when true, a failed check throws instead of aborting.
inline thread_local bool g_check_throws = false;

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ATHENA_CHECK failed: %s at %s:%d — %s\n", expr, file, line, msg);
  std::fflush(stderr);
  if (g_check_throws) {
    std::string what = "ATHENA_CHECK failed: ";
    what += expr;
    what += " at ";
    what += file;
    what += ':';
    what += std::to_string(line);
    what += " — ";
    what += msg;
    throw CheckViolation(what);
  }
  std::abort();
}

}  // namespace detail

/// RAII: within this scope (and thread), a violated ATHENA_CHECK throws
/// CheckViolation instead of aborting the process. Used by the chaos
/// harness and the resilience supervisor so one poisoned run is reported
/// as a failed run instead of killing every sibling sweep job.
class ScopedCheckThrow {
 public:
  ScopedCheckThrow() : prev_(detail::g_check_throws) { detail::g_check_throws = true; }
  ~ScopedCheckThrow() { detail::g_check_throws = prev_; }

  ScopedCheckThrow(const ScopedCheckThrow&) = delete;
  ScopedCheckThrow& operator=(const ScopedCheckThrow&) = delete;

 private:
  bool prev_;
};

}  // namespace athena::sim

/// Fatal unless `cond` holds — in debug AND release builds. `msg` should
/// say what contract the caller broke, not restate the expression.
#define ATHENA_CHECK(cond, msg)                                                       \
  (static_cast<bool>(cond)                                                            \
       ? static_cast<void>(0)                                                         \
       : ::athena::sim::detail::CheckFailed(#cond, __FILE__, __LINE__, (msg)))
