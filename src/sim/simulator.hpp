// The simulation kernel: a clock plus an event queue.
//
// Components hold a `Simulator&` and schedule callbacks with `ScheduleAt`
// / `ScheduleAfter`. `RunUntil` / `RunFor` advance virtual time; events for
// the same instant fire in FIFO order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace athena::sim {

/// Thrown when a simulation exceeds its configured event budget — a
/// runaway-loop backstop, not a normal termination path.
class EventBudgetExceeded : public std::runtime_error {
 public:
  EventBudgetExceeded() : std::runtime_error("simulation event budget exceeded") {}
};

/// Observer interface for the kernel's own activity (used by the obs
/// subsystem to put the simulator on the trace timeline). The kernel
/// holds a small fan-out list of these; while the list is empty it runs
/// its uninstrumented hot loop.
class SimHooks {
 public:
  virtual ~SimHooks() = default;
  /// After each executed event: the event's virtual time and the queue
  /// depth remaining after the callback ran.
  virtual void OnEventExecuted(TimePoint t, std::size_t queue_depth) = 0;
  /// After each Run* call that executed at least one event.
  virtual void OnRunCompleted(TimePoint begin, TimePoint end, std::uint64_t events) = 0;
};

/// Wall-clock self-profile of the kernel, filled while profiling is
/// enabled: how fast the simulator itself is, independent of what it
/// simulates. This is the `BENCH_obs.json` baseline.
struct SimProfile {
  std::uint64_t events = 0;              ///< events executed while profiling
  std::uint64_t callbacks_sampled = 0;   ///< callbacks individually timed
  std::uint64_t callback_ns_total = 0;   ///< wall time inside sampled callbacks
  std::uint64_t callback_ns_max = 0;     ///< worst sampled callback
  double run_wall_seconds = 0.0;         ///< wall time inside Run* (incl. queue ops)
  std::size_t queue_high_water = 0;      ///< max observed pending-event count

  [[nodiscard]] double events_per_second() const {
    return run_wall_seconds > 0.0 ? static_cast<double>(events) / run_wall_seconds : 0.0;
  }
  [[nodiscard]] double mean_callback_ns() const {
    return callbacks_sampled > 0 ? static_cast<double>(callback_ns_total) /
                                       static_cast<double>(callbacks_sampled)
                                 : 0.0;
  }
};

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint Now() const { return now_; }

  /// Schedules `cb` at absolute time `when`; times in the past are clamped
  /// to "now" (the event still runs, immediately, preserving causality).
  EventHandle ScheduleAt(TimePoint when, EventQueue::Callback cb) {
    if (when < now_) when = now_;
    return queue_.Schedule(when, std::move(cb));
  }

  /// Schedules `cb` to run `delay` from now (negative delays clamp to 0).
  EventHandle ScheduleAfter(Duration delay, EventQueue::Callback cb) {
    if (delay.count() < 0) delay = Duration{0};
    return queue_.Schedule(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event; no-op on invalid/expired handles.
  bool Cancel(EventHandle h) { return queue_.Cancel(h); }

  /// Runs events until the queue is exhausted or virtual time would pass
  /// `deadline`. The clock is left at min(deadline, last event time).
  void RunUntil(TimePoint deadline);

  /// Runs for `span` of virtual time from now.
  void RunFor(Duration span) { RunUntil(now_ + span); }

  /// Runs until the event queue drains completely.
  void RunAll() { RunUntil(kTimeInfinity); }

  /// Executes exactly one event if any is pending; returns whether one ran.
  bool Step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of pending (scheduled, not yet fired or cancelled) events.
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Caps the number of events a single Run* call may execute.
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }

  // --- observability (see src/obs/) ---

  /// Registers a kernel observer. Multiple observers may coexist (trace
  /// bridge, metrics, live detectors); they are notified in registration
  /// order. While any observer or profiling is active, Run*/Step take an
  /// instrumented path; otherwise the hot loop is the same as before
  /// these features existed. Null and duplicate pointers are ignored.
  void AddHooks(SimHooks* hooks) {
    if (hooks == nullptr || HasHooks(hooks)) return;
    hooks_.push_back(hooks);
  }

  /// Unregisters an observer; no-op if it was never added.
  bool RemoveHooks(SimHooks* hooks) {
    const auto it = std::find(hooks_.begin(), hooks_.end(), hooks);
    if (it == hooks_.end()) return false;
    hooks_.erase(it);
    return true;
  }

  [[nodiscard]] bool HasHooks(const SimHooks* hooks) const {
    return std::find(hooks_.begin(), hooks_.end(), hooks) != hooks_.end();
  }
  [[nodiscard]] const std::vector<SimHooks*>& hooks() const { return hooks_; }

  /// Enables wall-clock self-profiling (sampled per-callback timing,
  /// queue high-water mark, events/sec) accumulated into profile().
  void set_profiling(bool enabled) { profiling_ = enabled; }
  [[nodiscard]] bool profiling() const { return profiling_; }

  /// Per-callback timing reads the wall clock twice per sample; sampling
  /// every Nth callback (default 16) keeps the profiler from dominating
  /// what it measures. 1 = time every callback.
  void set_profile_sample_every(std::uint32_t n) { profile_sample_every_ = n > 0 ? n : 1; }
  [[nodiscard]] std::uint32_t profile_sample_every() const { return profile_sample_every_; }
  [[nodiscard]] const SimProfile& profile() const { return profile_; }
  void ResetProfile() { profile_ = SimProfile{}; }

 private:
  void RunUntilInstrumented(TimePoint deadline);

  TimePoint now_ = kEpoch;
  EventQueue queue_;
  std::uint64_t executed_ = 0;
  std::uint64_t event_budget_ = 500'000'000;
  std::vector<SimHooks*> hooks_;
  bool profiling_ = false;
  std::uint32_t profile_sample_every_ = 16;
  std::uint32_t profile_tick_ = 0;
  SimProfile profile_;
};

/// A repeating timer bound to a Simulator. Restartable and cancellable;
/// cancels itself on destruction (RAII).
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Duration period, std::function<void()> tick)
      : sim_(sim), period_(period), tick_(std::move(tick)) {}

  ~PeriodicTimer() { Stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arms the timer; first tick fires after `initial_delay` (default: one
  /// full period). Restarting an armed timer re-phases it.
  void Start() { Start(period_); }
  void Start(Duration initial_delay);

  void Stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Duration period() const { return period_; }
  void set_period(Duration p) { period_ = p; }

 private:
  void Fire();

  Simulator& sim_;
  Duration period_;
  std::function<void()> tick_;
  EventHandle pending_;
  bool running_ = false;
};

}  // namespace athena::sim
