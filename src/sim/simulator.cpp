#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>

namespace athena::sim {

void Simulator::RunUntil(TimePoint deadline) {
  if (!hooks_.empty() || profiling_) {
    RunUntilInstrumented(deadline);
    return;
  }
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    const TimePoint next = queue_.next_time();
    if (next > deadline) break;
    auto fired = queue_.PopNext();
    now_ = fired.when;
    fired.cb();
    ++executed_;
    if (++ran > event_budget_) throw EventBudgetExceeded{};
  }
  if (deadline != kTimeInfinity && deadline > now_) now_ = deadline;
}

void Simulator::RunUntilInstrumented(TimePoint deadline) {
  using WallClock = std::chrono::steady_clock;
  const TimePoint virtual_begin = now_;
  const auto run_start = WallClock::now();
  const std::uint64_t executed_at_entry = executed_;
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    const TimePoint next = queue_.next_time();
    if (next > deadline) break;
    profile_.queue_high_water = std::max(profile_.queue_high_water, queue_.size());
    auto fired = queue_.PopNext();
    now_ = fired.when;
    if (profiling_ && ++profile_tick_ >= profile_sample_every_) {
      profile_tick_ = 0;
      const auto cb_start = WallClock::now();
      fired.cb();
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() - cb_start)
              .count());
      ++profile_.callbacks_sampled;
      profile_.callback_ns_total += ns;
      profile_.callback_ns_max = std::max(profile_.callback_ns_max, ns);
    } else {
      fired.cb();
    }
    ++executed_;
    for (SimHooks* h : hooks_) h->OnEventExecuted(now_, queue_.size());
    if (++ran > event_budget_) throw EventBudgetExceeded{};
  }
  if (deadline != kTimeInfinity && deadline > now_) now_ = deadline;
  const std::uint64_t events = executed_ - executed_at_entry;
  if (profiling_) {
    profile_.events += events;
    profile_.run_wall_seconds +=
        std::chrono::duration<double>(WallClock::now() - run_start).count();
  }
  if (events > 0) {
    for (SimHooks* h : hooks_) h->OnRunCompleted(virtual_begin, now_, events);
  }
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  auto fired = queue_.PopNext();
  now_ = fired.when;
  fired.cb();
  ++executed_;
  for (SimHooks* h : hooks_) h->OnEventExecuted(now_, queue_.size());
  return true;
}

void PeriodicTimer::Start(Duration initial_delay) {
  Stop();
  running_ = true;
  pending_ = sim_.ScheduleAfter(initial_delay, [this] { Fire(); });
}

void PeriodicTimer::Stop() {
  if (running_) sim_.Cancel(pending_);
  running_ = false;
}

void PeriodicTimer::Fire() {
  if (!running_) return;
  // Re-arm before ticking so the callback may Stop() or re-phase us.
  pending_ = sim_.ScheduleAfter(period_, [this] { Fire(); });
  tick_();
}

}  // namespace athena::sim
