#include "sim/simulator.hpp"

namespace athena::sim {

void Simulator::RunUntil(TimePoint deadline) {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    const TimePoint next = queue_.next_time();
    if (next > deadline) break;
    auto fired = queue_.PopNext();
    now_ = fired.when;
    fired.cb();
    ++executed_;
    if (++ran > event_budget_) throw EventBudgetExceeded{};
  }
  if (deadline != kTimeInfinity && deadline > now_) now_ = deadline;
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  auto fired = queue_.PopNext();
  now_ = fired.when;
  fired.cb();
  ++executed_;
  return true;
}

void PeriodicTimer::Start(Duration initial_delay) {
  Stop();
  running_ = true;
  pending_ = sim_.ScheduleAfter(initial_delay, [this] { Fire(); });
}

void PeriodicTimer::Stop() {
  if (running_) sim_.Cancel(pending_);
  running_ = false;
}

void PeriodicTimer::Fire() {
  if (!running_) return;
  // Re-arm before ticking so the callback may Stop() or re-phase us.
  pending_ = sim_.ScheduleAfter(period_, [this] { Fire(); });
  tick_();
}

}  // namespace athena::sim
