// Conservative time-synchronization primitives for sharded simulation.
//
// A sharded world advances in fixed *windows* of `lookahead` virtual
// time: every cross-shard interaction carries at least `lookahead` of
// latency, so a shard executing window k can never receive an event that
// lands inside window k — messages published during window k are only
// deliverable in window k+1 or later. That is the classical conservative
// (CMB-style) synchronization argument, with the lookahead supplied by
// the model (the minimum cross-entity link latency) instead of computed
// per channel.
//
// `WindowBarrier` is the two-phase rendezvous shard workers run between
// windows: phase A publishes every shard's outboxes, phase B lets every
// shard collect its inbound mail; a second rendezvous keeps publishers of
// window k+1 from racing collectors of window k.
//
// `WindowSchedule` is the shared window arithmetic (window k covers
// (start + (k-1)·lookahead, start + k·lookahead]), used identically by
// the threaded and the sequential drivers so both execute the very same
// window sequence — the root of the engine's digest identity across
// shard counts and execution modes.
//
// `BusyRecorder` accumulates per-shard, per-window wall-clock busy time.
// The sum over windows of the slowest shard's busy time is the modeled
// critical-path wall time of a perfectly parallel execution — the
// scaling evidence bench_world reports alongside measured wall clock
// (meaningful even when the host lacks the cores to realize it).
#pragma once

#include <barrier>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace athena::sim {

/// Shared window arithmetic for a conservative sharded run.
struct WindowSchedule {
  TimePoint start = kEpoch;
  Duration lookahead{0};
  std::uint64_t windows = 0;

  /// Builds the schedule covering (start, end] in `lookahead`-sized
  /// windows (the last window is clipped to `end` by WindowEnd).
  [[nodiscard]] static WindowSchedule Cover(TimePoint start, TimePoint end,
                                            Duration lookahead);

  /// Exclusive upper edge of window k (k ∈ [1, windows]); clipped so the
  /// final window never overshoots the configured end.
  [[nodiscard]] TimePoint WindowEnd(std::uint64_t k) const;

  [[nodiscard]] TimePoint end() const { return end_; }

 private:
  TimePoint end_ = kEpoch;
};

/// Reusable two-phase barrier for `parties` shard workers.
class WindowBarrier {
 public:
  explicit WindowBarrier(unsigned parties) : barrier_(parties) {}

  WindowBarrier(const WindowBarrier&) = delete;
  WindowBarrier& operator=(const WindowBarrier&) = delete;

  /// Phase A rendezvous: every shard has published its outboxes for the
  /// window just executed. After it returns, all published mail is
  /// visible to every worker.
  void PublishDone() { barrier_.arrive_and_wait(); }

  /// Phase B rendezvous: every shard has collected (and cleared) its
  /// inbound mail. After it returns, outboxes may be written again.
  void CollectDone() { barrier_.arrive_and_wait(); }

  /// Optional phase C rendezvous, used when a window-boundary hook is
  /// installed (world checkpoints): after CollectDone every worker except
  /// the hook runner parks here, so one thread can observe all shards'
  /// state with full memory visibility; the hook runner arrives last and
  /// releases them. Must be called by every party or by none per window.
  void Sync() { barrier_.arrive_and_wait(); }

 private:
  std::barrier<> barrier_;
};

/// Per-shard, per-window wall-clock busy time (seconds).
class BusyRecorder {
 public:
  BusyRecorder() = default;
  BusyRecorder(std::size_t shards, std::uint64_t windows)
      : shards_(shards), busy_(shards * windows, 0.0) {}

  void Record(std::size_t shard, std::uint64_t window /* 1-based */, double seconds) {
    busy_[(window - 1) * shards_ + shard] += seconds;
  }

  /// Total busy time across all shards and windows (the serial work).
  [[nodiscard]] double TotalSeconds() const;

  /// Σ over windows of the slowest shard's busy time: the wall clock a
  /// perfectly parallel host would need (barrier overhead excluded).
  [[nodiscard]] double CriticalPathSeconds() const;

 private:
  std::size_t shards_ = 0;
  std::vector<double> busy_;
};

}  // namespace athena::sim
