// A small-buffer-optimized, move-only `void()` callable for the event
// queue's hot path.
//
// `std::function` heap-allocates for captures beyond ~16 bytes and pays a
// copyable-wrapper tax the simulator never uses. Almost every callback in
// this repository is a lambda capturing a `this` pointer and a few
// scalars, so `InlineCallback` stores callables up to `kInlineCapacity`
// bytes directly in the object and only falls back to the heap for
// oversized captures (e.g. a lambda holding a whole `net::Packet` by
// value). Dispatch is two loads and an indirect call through a static
// per-type ops table — no virtual destructor, no RTTI.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace athena::sim {

class InlineCallback {
 public:
  /// Captures up to this many bytes live inline; larger callables are
  /// boxed on the heap. Documented in docs/ARCHITECTURE.md — keep in sync.
  static constexpr std::size_t kInlineCapacity = 48;

  InlineCallback() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kBoxedOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty InlineCallback");
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Whether the callable lives in the inline buffer (diagnostics/tests).
  [[nodiscard]] bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into `to` from `from`, then destroy `from`.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool fits_inline = sizeof(D) <= kInlineCapacity &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* from, void* to) noexcept {
        D* src = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
      true,
  };

  template <typename D>
  static constexpr Ops kBoxedOps{
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* from, void* to) noexcept {
        ::new (to) D*(*std::launder(reinterpret_cast<D**>(from)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); },
      false,
  };

  void MoveFrom(InlineCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace athena::sim
