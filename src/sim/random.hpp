// Seeded random-number utilities. One `Rng` per simulation keeps runs
// reproducible; helpers cover the distributions the models need.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>

#include "sim/time.hpp"

namespace athena::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xa7e11a'5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// True with probability `p` (p clamped to [0, 1]).
  [[nodiscard]] bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Normal, truncated below at `lo` (resampled by clamping).
  [[nodiscard]] double NormalAtLeast(double mean, double stddev, double lo) {
    const double v = Normal(mean, stddev);
    return v < lo ? lo : v;
  }

  /// Exponential with the given mean (not rate).
  [[nodiscard]] double ExponentialMean(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Lognormal parameterized by the underlying normal's mu/sigma.
  [[nodiscard]] double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy tails).
  [[nodiscard]] double Pareto(double xm, double alpha) {
    const double u = Uniform(std::numeric_limits<double>::min(), 1.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// A random Duration uniform in [lo, hi].
  [[nodiscard]] Duration UniformDuration(Duration lo, Duration hi) {
    return Duration{UniformInt(lo.count(), hi.count())};
  }

  /// Forks an independent stream (for giving each component its own RNG
  /// while deriving everything from one master seed).
  [[nodiscard]] Rng Fork() { return Rng{engine_()}; }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace athena::sim
