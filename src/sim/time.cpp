#include "sim/time.hpp"

#include <cstdio>
#include <ostream>

namespace athena::sim {

std::string ToString(Duration d) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms", ToMs(d));
  return buf;
}

std::string ToString(TimePoint t) { return ToString(t.since_epoch()); }

std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << ToString(t); }

}  // namespace athena::sim
