// A deterministic discrete-event queue.
//
// Events scheduled for the same instant run in scheduling order (FIFO),
// which makes every simulation in this repository reproducible bit-for-bit
// given the same RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace athena::sim {

/// Opaque handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;  // 0 = invalid
};

/// Min-heap of timestamped callbacks with stable same-time ordering.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to run at absolute time `when`. Returns a handle that
  /// can later be passed to `Cancel`.
  EventHandle Schedule(TimePoint when, Callback cb);

  /// Cancels a pending event. Cancelling an already-run, already-cancelled
  /// or invalid handle is a harmless no-op (returns false).
  bool Cancel(EventHandle handle);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest event. Precondition: !empty().
  struct Fired {
    TimePoint when;
    Callback cb;
  };
  Fired PopNext();

  /// Total number of events ever scheduled (diagnostics).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_ - 1; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq = 0;
    Callback cb;

    // Min-heap: earlier time first; FIFO among equal times.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void DropCancelledHead() const;

  // `mutable` so that next_time() can lazily discard cancelled heads.
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::vector<std::uint64_t> cancelled_;  // sorted seq numbers
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace athena::sim
