// A deterministic discrete-event queue.
//
// Events scheduled for the same instant run in scheduling order (FIFO),
// which makes every simulation in this repository reproducible bit-for-bit
// given the same RNG seed.
//
// Hot-path layout (see docs/ARCHITECTURE.md, "Performance & threading
// model"):
//  - Callbacks are `InlineCallback`s: captures up to ~48 bytes live inline,
//    so scheduling an ordinary lambda never touches the heap.
//  - The heap is a 4-ary implicit min-heap of 24-byte (when, seq, slot)
//    entries ordered by (when, seq); callbacks stay put in a stable slot
//    pool, so sift operations move small PODs instead of callables.
//  - `Cancel` is O(1): it flips a tombstone bit on the slot; the dead heap
//    entry is discarded lazily (O(log n)) when it surfaces at the root.
//    Handles carry a (seq, slot) generation pair, so cancelling a handle
//    whose event already fired — or whose slot was since reused — is
//    detected exactly and never perturbs the live count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace athena::sim {

/// Opaque handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class EventQueue;
  EventHandle(std::uint64_t seq, std::uint32_t slot) : seq_(seq), slot_(slot) {}
  std::uint64_t seq_ = 0;  // 0 = invalid
  std::uint32_t slot_ = 0;
};

/// Min-heap of timestamped callbacks with stable same-time ordering.
class EventQueue {
 public:
  using Callback = InlineCallback;

  /// Schedules `cb` to run at absolute time `when`. Returns a handle that
  /// can later be passed to `Cancel`.
  EventHandle Schedule(TimePoint when, Callback cb);

  /// Cancels a pending event. Cancelling an already-run, already-cancelled
  /// or invalid handle is a harmless no-op (returns false).
  bool Cancel(EventHandle handle);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest pending event. Precondition: !empty();
  /// violated preconditions fail loudly (ATHENA_CHECK) in every build
  /// mode, release included.
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest event. Precondition: !empty();
  /// checked fatally in release builds too (see sim/check.hpp).
  struct Fired {
    TimePoint when;
    Callback cb;
  };
  Fired PopNext();

  /// Total number of events ever scheduled (diagnostics).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_ - 1; }

 private:
  /// 24 bytes; the only thing the heap sifts move.
  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  /// Stable storage for one scheduled callback. `seq` doubles as the
  /// generation tag handles are validated against; it is only cleared
  /// when the matching heap entry leaves the heap.
  struct Slot {
    Callback cb;
    std::uint64_t seq = 0;  // 0 = free
    bool cancelled = false;
    std::uint32_t next_free = kNoFreeSlot;
  };

  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  // Min-heap order: earlier time first, FIFO (lower seq) among equal times.
  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  [[nodiscard]] std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t slot) const;
  void SiftUp(std::size_t i) const;
  void SiftDown(std::size_t i) const;
  void RemoveRoot() const;
  /// Discards cancelled entries sitting at the root (lazy tombstones).
  void DropCancelledHead() const;

  // `mutable` so that next_time() can lazily discard cancelled heads.
  mutable std::vector<HeapEntry> heap_;
  mutable std::vector<Slot> slots_;
  mutable std::uint32_t free_head_ = kNoFreeSlot;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace athena::sim
