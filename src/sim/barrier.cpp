#include "sim/barrier.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace athena::sim {

WindowSchedule WindowSchedule::Cover(TimePoint start, TimePoint end, Duration lookahead) {
  ATHENA_CHECK(lookahead.count() > 0, "window lookahead must be positive");
  ATHENA_CHECK(end >= start, "window schedule must not run backwards");
  WindowSchedule s;
  s.start = start;
  s.lookahead = lookahead;
  s.end_ = end;
  const auto span = (end - start).count();
  const auto step = lookahead.count();
  s.windows = static_cast<std::uint64_t>((span + step - 1) / step);
  return s;
}

TimePoint WindowSchedule::WindowEnd(std::uint64_t k) const {
  const TimePoint edge = start + Duration{static_cast<Duration::rep>(k) * lookahead.count()};
  return edge < end_ ? edge : end_;
}

double BusyRecorder::TotalSeconds() const {
  double total = 0.0;
  for (const double b : busy_) total += b;
  return total;
}

double BusyRecorder::CriticalPathSeconds() const {
  if (shards_ == 0) return 0.0;
  double total = 0.0;
  for (std::size_t w = 0; w * shards_ < busy_.size(); ++w) {
    double worst = 0.0;
    for (std::size_t s = 0; s < shards_; ++s) {
      worst = std::max(worst, busy_[w * shards_ + s]);
    }
    total += worst;
  }
  return total;
}

}  // namespace athena::sim
