#include "core/clock_sync.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace athena::core {

std::optional<sim::Duration> ClockSync::OffsetFromExchanges(
    const std::vector<ExchangeSample>& samples) {
  if (samples.empty()) return std::nullopt;
  std::vector<std::int64_t> offsets;
  offsets.reserve(samples.size());
  for (const auto& s : samples) {
    const auto forward = (s.t1 - s.t0).count();   // owd + offset
    const auto backward = (s.t3 - s.t2).count();  // owd - offset
    offsets.push_back((forward - backward) / 2);
  }
  std::nth_element(offsets.begin(), offsets.begin() + offsets.size() / 2, offsets.end());
  return sim::Duration{offsets[offsets.size() / 2]};
}

std::optional<sim::Duration> ClockSync::OffsetFromMinOwd(const std::vector<OwdPair>& pairs,
                                                         sim::Duration min_path_delay) {
  if (pairs.empty()) return std::nullopt;
  std::int64_t min_observed = std::numeric_limits<std::int64_t>::max();
  for (const auto& p : pairs) {
    min_observed = std::min(min_observed, (p.b_ts - p.a_ts).count());
  }
  return sim::Duration{min_observed - min_path_delay.count()};
}

std::vector<ClockSync::OwdPair> ClockSync::JoinCaptures(
    const std::vector<net::CaptureRecord>& a, const std::vector<net::CaptureRecord>& b) {
  std::unordered_map<net::PacketId, sim::TimePoint> b_by_id;
  b_by_id.reserve(b.size());
  for (const auto& r : b) b_by_id.emplace(r.packet_id, r.local_ts);
  std::vector<OwdPair> out;
  out.reserve(a.size());
  for (const auto& r : a) {
    const auto it = b_by_id.find(r.packet_id);
    if (it != b_by_id.end()) out.push_back(OwdPair{r.local_ts, it->second});
  }
  return out;
}

}  // namespace athena::core
