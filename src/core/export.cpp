#include "core/export.hpp"

#include <ostream>

namespace athena::core {

void CsvExport::Packets(std::ostream& os, const CrossLayerDataset& data) {
  os << "packet_id,kind,size_bytes,frame_id,layer,sent_us,core_us,reached_core,"
        "uplink_owd_us,sched_wait_us,spread_us,rtx_us,harq_rounds,last_grant,"
        "tb_chains,cause\n";
  for (const auto& p : data.packets) {
    os << p.packet_id << ',' << net::ToString(p.kind) << ',' << p.size_bytes << ','
       << p.frame_id << ',' << net::ToString(p.layer) << ',' << p.sent_at.us() << ','
       << (p.reached_core ? p.core_at.us() : -1) << ',' << (p.reached_core ? 1 : 0) << ','
       << p.uplink_owd.count() << ',' << p.sched_wait.count() << ','
       << p.transmission_spread.count() << ',' << p.rtx_inflation.count() << ','
       << static_cast<int>(p.max_harq_rounds) << ',' << ran::ToString(p.last_grant) << ',';
    for (std::size_t i = 0; i < p.tb_chains.size(); ++i) {
      if (i > 0) os << ';';  // the chain list stays one CSV cell
      os << p.tb_chains[i];
    }
    os << ',' << ToString(p.primary_cause) << '\n';
  }
}

void CsvExport::Frames(std::ostream& os, const CrossLayerDataset& data) {
  os << "frame_id,layer,is_audio,packets,complete,first_sent_us,last_sent_us,"
        "first_core_us,last_core_us,sender_spread_us,core_spread_us,frame_delay_us\n";
  for (const auto& f : data.frames) {
    os << f.frame_id << ',' << net::ToString(f.layer) << ',' << (f.is_audio ? 1 : 0) << ','
       << f.packets << ',' << (f.complete_at_core ? 1 : 0) << ',' << f.first_sent.us() << ','
       << f.last_sent.us() << ',' << f.first_core.us() << ',' << f.last_core.us() << ','
       << f.SenderSpread().count() << ',' << f.CoreSpread().count() << ','
       << f.FrameDelay().count() << '\n';
  }
}

void CsvExport::Telemetry(std::ostream& os, const std::vector<ran::TbRecord>& telemetry) {
  os << "tb_id,chain_id,slot_us,grant,tbs_bytes,used_bytes,harq_round,crc_ok\n";
  for (const auto& tb : telemetry) {
    os << tb.tb_id << ',' << tb.chain_id << ',' << tb.slot_time.us() << ','
       << ran::ToString(tb.grant) << ',' << tb.tbs_bytes << ',' << tb.used_bytes << ','
       << static_cast<int>(tb.harq_round) << ',' << (tb.crc_ok ? 1 : 0) << '\n';
  }
}

void CsvExport::Capture(std::ostream& os, const std::vector<net::CaptureRecord>& records) {
  os << "packet_id,local_us,kind,size_bytes,flow,frame_id,transport_seq\n";
  for (const auto& r : records) {
    os << r.packet_id << ',' << r.local_ts.us() << ',' << net::ToString(r.kind) << ','
       << r.size_bytes << ',' << r.flow << ',';
    if (r.rtp) {
      os << r.rtp->frame_id << ',' << r.rtp->transport_seq;
    } else {
      os << ",";
    }
    os << '\n';
  }
}

}  // namespace athena::core
