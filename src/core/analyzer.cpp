#include "core/analyzer.hpp"

#include <cmath>

namespace athena::core {

stats::TimeSeries Analyzer::UplinkOwdSeries(const CrossLayerDataset& data,
                                            std::optional<net::PacketKind> kind) {
  stats::TimeSeries out;
  for (const auto& p : data.packets) {
    if (!p.reached_core) continue;
    if (kind && p.kind != *kind) continue;
    out.Add(p.sent_at, sim::ToMs(p.uplink_owd));
  }
  return out;
}

stats::TimeSeries Analyzer::WanOwdSeries(const CrossLayerDataset& data) {
  stats::TimeSeries out;
  for (const auto& p : data.packets) {
    if (!p.reached_receiver || !p.reached_core) continue;
    out.Add(p.core_at, sim::ToMs(p.wan_owd));
  }
  return out;
}

stats::Cdf Analyzer::RanDelayCdf(const CrossLayerDataset& data, bool audio) {
  stats::Cdf out;
  for (const auto& p : data.packets) {
    if (!p.reached_core) continue;
    const bool is_audio = p.kind == net::PacketKind::kRtpAudio;
    const bool is_video = p.kind == net::PacketKind::kRtpVideo;
    if (audio ? !is_audio : !is_video) continue;
    out.Add(sim::ToMs(p.uplink_owd));
  }
  return out;
}

stats::Cdf Analyzer::FrameDelayCdfByLayer(const CrossLayerDataset& data, net::SvcLayer layer) {
  stats::Cdf out;
  for (const auto& f : data.frames) {
    if (f.is_audio || f.layer != layer || !f.complete_at_core) continue;
    out.Add(sim::ToMs(f.FrameDelay()));
  }
  return out;
}

stats::Cdf Analyzer::DelaySpreadCdf(const CrossLayerDataset& data, SpreadAt where,
                                    bool include_audio) {
  stats::Cdf out;
  for (const auto& f : data.frames) {
    if (f.is_audio && !include_audio) continue;
    if (where == SpreadAt::kSender) {
      out.Add(sim::ToMs(f.SenderSpread()));
    } else {
      if (!f.complete_at_core) continue;
      out.Add(sim::ToMs(f.CoreSpread()));
    }
  }
  return out;
}

stats::Cdf Analyzer::FrameDelayCdf(const CrossLayerDataset& data, bool video_only) {
  stats::Cdf out;
  for (const auto& f : data.frames) {
    if (video_only && f.is_audio) continue;
    if (!f.complete_at_core) continue;
    out.Add(sim::ToMs(f.FrameDelay()));
  }
  return out;
}

std::map<RootCause, std::uint64_t> Analyzer::RootCauseBreakdown(const CrossLayerDataset& data) {
  std::map<RootCause, std::uint64_t> out;
  for (const auto& p : data.packets) ++out[p.primary_cause];
  return out;
}

Analyzer::Decomposition Analyzer::MeanDecomposition(const CrossLayerDataset& data) {
  Decomposition d;
  for (const auto& p : data.packets) {
    if (!p.reached_core || (p.kind != net::PacketKind::kRtpVideo &&
                            p.kind != net::PacketKind::kRtpAudio)) {
      continue;
    }
    ++d.packets;
    d.sched_wait_ms += sim::ToMs(p.sched_wait);
    d.spread_ms += sim::ToMs(p.transmission_spread);
    d.rtx_ms += sim::ToMs(p.rtx_inflation);
    d.total_ms += sim::ToMs(p.uplink_owd);
  }
  if (d.packets == 0) return d;
  const auto n = static_cast<double>(d.packets);
  d.sched_wait_ms /= n;
  d.spread_ms /= n;
  d.rtx_ms /= n;
  d.total_ms /= n;
  d.remainder_ms = d.total_ms - d.sched_wait_ms - d.spread_ms - d.rtx_ms;
  return d;
}

net::DelayTrace Analyzer::BuildDelayTrace(const CrossLayerDataset& data) {
  std::vector<net::DelayTrace::Sample> samples;
  bool have_first = false;
  sim::TimePoint first;
  for (const auto& p : data.packets) {
    if (!p.reached_core || !p.is_media()) continue;
    if (!have_first) {
      have_first = true;
      first = p.sent_at;
    }
    samples.push_back(net::DelayTrace::Sample{p.sent_at - first, p.uplink_owd});
  }
  return net::DelayTrace{std::move(samples)};
}

double Analyzer::SpreadGridFraction(const CrossLayerDataset& data, sim::Duration grid,
                                    sim::Duration tolerance) {
  std::uint64_t total = 0;
  std::uint64_t on_grid = 0;
  const double grid_ms = sim::ToMs(grid);
  const double tol_ms = sim::ToMs(tolerance);
  for (const auto& f : data.frames) {
    if (!f.complete_at_core) continue;
    const double spread_ms = sim::ToMs(f.CoreSpread());
    ++total;
    const double nearest = std::round(spread_ms / grid_ms) * grid_ms;
    if (std::abs(spread_ms - nearest) <= tol_ms) ++on_grid;
  }
  return total ? static_cast<double>(on_grid) / static_cast<double>(total) : 0.0;
}

}  // namespace athena::core
