#include "core/report.hpp"

#include <ostream>

#include "stats/table.hpp"

namespace athena::core {

void Report::Render(std::ostream& os, const Inputs& inputs) {
  if (inputs.dataset == nullptr) {
    os << "(no dataset)\n";
    return;
  }
  const CrossLayerDataset& data = *inputs.dataset;

  stats::PrintBanner(os, "Athena cross-layer session report");
  os << "correlated packets: " << data.packets.size() << "  (unmatched TB bytes "
     << data.unmatched_tb_bytes << ", unmatched packet bytes "
     << data.unmatched_packet_bytes << ")\n";
  os << "media frames/samples: " << data.frames.size() << "\n";

  const auto video = Analyzer::RanDelayCdf(data, /*audio=*/false);
  const auto audio = Analyzer::RanDelayCdf(data, /*audio=*/true);
  if (!video.empty()) os << "\nRAN delay, video (ms): " << video.Summary() << '\n';
  if (!audio.empty()) os << "RAN delay, audio (ms): " << audio.Summary() << '\n';

  const auto spread = Analyzer::DelaySpreadCdf(data, Analyzer::SpreadAt::kCore);
  if (!spread.empty()) {
    os << "frame delay spread at core (ms): " << spread.Summary() << '\n';
    os << "fraction on the 2.5 ms slot grid: "
       << stats::Fmt(Analyzer::SpreadGridFraction(data, std::chrono::microseconds{2500},
                                                  std::chrono::microseconds{100}),
                     4)
       << '\n';
  }

  const auto decomp = Analyzer::MeanDecomposition(data);
  if (decomp.packets > 0) {
    os << "\nmean uplink delay decomposition over " << decomp.packets << " media packets:\n";
    os << "  grant/slot wait " << stats::Fmt(decomp.sched_wait_ms) << " ms + slot trickle "
       << stats::Fmt(decomp.spread_ms) << " ms + HARQ " << stats::Fmt(decomp.rtx_ms)
       << " ms + fixed " << stats::Fmt(decomp.remainder_ms) << " ms = "
       << stats::Fmt(decomp.total_ms) << " ms\n";
  }

  os << "\nroot causes:\n";
  for (const auto& [cause, count] : Analyzer::RootCauseBreakdown(data)) {
    os << "  " << ToString(cause) << ": " << count << '\n';
  }

  if (inputs.ran_counters != nullptr) {
    const auto& c = *inputs.ran_counters;
    os << "\nscheduler efficiency: " << stats::Fmt(100.0 * c.GrantUtilization(), 1)
       << "% grant utilization; " << c.wasted_requested_bytes
       << " requested bytes over-granted; " << c.empty_tb_rtx
       << " empty-TB retransmissions; " << c.packets_lost << " packets lost\n";
  }

  if (inputs.qoe != nullptr) {
    const auto& qoe = *inputs.qoe;
    os << "\nreceiver QoE: ";
    const auto bitrate = qoe.ReceiveBitrateKbps();
    const auto fps = qoe.FrameRateFps();
    if (!bitrate.empty()) os << stats::Fmt(bitrate.Median(), 0) << " kbps p50, ";
    if (!fps.empty()) os << stats::Fmt(fps.Median(), 1) << " fps p50, ";
    if (!qoe.Ssim().empty()) os << "SSIM " << stats::Fmt(qoe.Ssim().Median(), 3) << ", ";
    if (!qoe.MouthToEarMs().empty()) {
      os << "mouth-to-ear " << stats::Fmt(qoe.MouthToEarMs().Median(), 0) << " ms p50 / "
         << stats::Fmt(qoe.MouthToEarMs().P(99), 0) << " ms p99, ";
    }
    os << "audio MOS " << stats::Fmt(qoe.AudioMos(), 2) << '\n';
    os << "video delivery: " << stats::Fmt(100.0 * qoe.VideoDeliveryRatio(), 1) << "% ("
       << qoe.late_frames() << " late of " << qoe.video_frames_rendered() << " rendered)\n";
  }

  if (inputs.controller_target_bps) {
    os << "controller target: " << stats::Fmt(*inputs.controller_target_bps / 1e3, 0)
       << " kbps\n";
  }
}

}  // namespace athena::core
