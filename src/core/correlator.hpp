// The Athena cross-layer correlator — the paper's primary contribution.
//
// Inputs are exactly what the real deployment has (Fig. 2): packet capture
// logs from the measurement points, the PHY control-channel telemetry
// stream (TbRecords), estimated clock offsets, and the public cell
// configuration. It never touches simulator ground truth.
//
// Correlation steps (§1, contributions 1–3):
//   1. Time-synchronize all logs onto one clock (offsets from ClockSync).
//   2. Match network datagrams to the transport blocks that carried them.
//      The UE's RLC queue is FIFO, so byte conservation determines the
//      mapping: replay the TB sequence, draining captured packet bytes in
//      send order; a TB can only carry bytes of packets that reached the
//      modem a processing-delay before its slot.
//   3. Lift packets to application semantics (frame id, SVC layer from the
//      RTP extension) and aggregate per frame.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cross_layer.hpp"
#include "net/capture.hpp"
#include "ran/config.hpp"
#include "ran/types.hpp"
#include "sim/time.hpp"

namespace athena::core {

struct CorrelatorInput {
  /// Capture logs (local clocks). `sender` is required; others optional.
  std::vector<net::CaptureRecord> sender;
  std::vector<net::CaptureRecord> core;
  std::vector<net::CaptureRecord> receiver;

  /// PHY telemetry for the measured UE's uplink.
  std::vector<ran::TbRecord> telemetry;

  /// Clock offsets relative to the common (core) clock: add these to a
  /// local timestamp to land on the common clock.
  sim::Duration sender_offset{0};
  sim::Duration receiver_offset{0};

  /// Cell parameters (public configuration knowledge).
  ran::RanConfig cell;
};

/// The correlated dataset: per-packet and per-frame views plus match
/// diagnostics.
struct CrossLayerDataset {
  std::vector<CrossLayerRecord> packets;
  std::vector<FrameRecord> frames;

  /// Telemetry bytes that could not be matched to any captured packet
  /// (ideally 0; nonzero indicates clock error or missing captures).
  std::uint64_t unmatched_tb_bytes = 0;
  /// Packet bytes never covered by a TB (packets lost in the RAN, or
  /// telemetry truncated before their slots).
  std::uint64_t unmatched_packet_bytes = 0;

  [[nodiscard]] const CrossLayerRecord* FindPacket(net::PacketId id) const;
  [[nodiscard]] const FrameRecord* FindFrame(std::uint64_t frame_id) const;
};

class Correlator {
 public:
  /// Runs the full correlation. Deterministic, pure function of the input.
  [[nodiscard]] static CrossLayerDataset Correlate(const CorrelatorInput& input);

  struct TbChain;  // implementation detail, exposed for the .cpp helpers
};

}  // namespace athena::core
