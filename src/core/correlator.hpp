// The Athena cross-layer correlator — the paper's primary contribution.
//
// Inputs are exactly what the real deployment has (Fig. 2): packet capture
// logs from the measurement points, the PHY control-channel telemetry
// stream (TbRecords), estimated clock offsets, and the public cell
// configuration. It never touches simulator ground truth.
//
// Correlation steps (§1, contributions 1–3):
//   1. Time-synchronize all logs onto one clock (offsets from ClockSync).
//   2. Match network datagrams to the transport blocks that carried them.
//      The UE's RLC queue is FIFO, so byte conservation determines the
//      mapping: replay the TB sequence, draining captured packet bytes in
//      send order; a TB can only carry bytes of packets that reached the
//      modem a processing-delay before its slot.
//   3. Lift packets to application semantics (frame id, SVC layer from the
//      RTP extension) and aggregate per frame.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cross_layer.hpp"
#include "net/capture.hpp"
#include "ran/config.hpp"
#include "ran/types.hpp"
#include "sim/time.hpp"

namespace athena::core {

struct CorrelatorInput {
  /// Capture logs (local clocks). `sender` is required; others optional.
  std::vector<net::CaptureRecord> sender;
  std::vector<net::CaptureRecord> core;
  std::vector<net::CaptureRecord> receiver;

  /// PHY telemetry for the measured UE's uplink.
  std::vector<ran::TbRecord> telemetry;

  /// Clock offsets relative to the common (core) clock: add these to a
  /// local timestamp to land on the common clock.
  sim::Duration sender_offset{0};
  sim::Duration receiver_offset{0};

  /// Cell parameters (public configuration knowledge).
  ran::RanConfig cell;
};

/// Health of one input stream after cleaning. The correlator tolerates
/// duplicate, out-of-order and missing records (deduping and re-sorting
/// internally) but it never hides that it had to: every repair is
/// counted here, and consumers must treat a degraded stream's
/// attributions as low-confidence rather than silently trusting them.
struct StreamHealth {
  enum class State : std::uint8_t {
    kMissing,   ///< stream empty (while others carried traffic)
    kHealthy,   ///< no repairs needed
    kDegraded,  ///< duplicates, reordering or silent gaps were observed
  };
  State state = State::kMissing;
  std::uint64_t records = 0;             ///< records after cleaning
  std::uint64_t duplicates_dropped = 0;  ///< exact re-deliveries removed
  std::uint64_t out_of_order = 0;        ///< records that arrived behind time order
  std::uint64_t gaps = 0;                ///< silent holes with corroborated traffic inside
  sim::Duration longest_gap{0};

  [[nodiscard]] bool degraded() const { return state == State::kDegraded; }
};

/// The degradation contract's summary verdict for one correlation run.
struct CorrelationHealth {
  StreamHealth telemetry;
  StreamHealth sender;
  StreamHealth core;
  StreamHealth receiver;

  /// Packets with zero TB coverage although the telemetry feed was still
  /// alive when they were sent (excludes the end-of-run in-flight tail).
  std::uint64_t uncovered_packets = 0;
  /// TB payload bytes that drained no captured packet. A healthy feed
  /// conserves bytes (payload ≙ captured traffic); a sizeable surplus
  /// means the telemetry *content* is wrong — corrupted size fields or
  /// records from another UE — even when every timestamp looks sane.
  std::uint64_t phantom_tb_bytes = 0;
  /// Set when phantom_tb_bytes exceeds the conservation tolerance.
  bool phantom_capacity = false;
  /// Mean of CrossLayerRecord::match_confidence (1.0 when empty).
  double mean_match_confidence = 1.0;

  /// True when any attribution in the dataset rests on repaired or
  /// missing evidence. A degraded dataset is still usable — the contract
  /// is that this flag (and the per-stream counters) make it *visible*.
  [[nodiscard]] bool degraded() const {
    return telemetry.degraded() || sender.degraded() || core.degraded() ||
           receiver.degraded() || uncovered_packets > 0 || phantom_capacity ||
           (telemetry.state == StreamHealth::State::kMissing && sender.records > 0);
  }
};

/// The correlated dataset: per-packet and per-frame views plus match
/// diagnostics.
struct CrossLayerDataset {
  std::vector<CrossLayerRecord> packets;
  std::vector<FrameRecord> frames;

  /// Per-stream repair counters and the dataset-level degradation verdict.
  CorrelationHealth health;

  /// Telemetry bytes that could not be matched to any captured packet
  /// (ideally 0; nonzero indicates clock error or missing captures).
  std::uint64_t unmatched_tb_bytes = 0;
  /// Packet bytes never covered by a TB (packets lost in the RAN, or
  /// telemetry truncated before their slots).
  std::uint64_t unmatched_packet_bytes = 0;

  [[nodiscard]] const CrossLayerRecord* FindPacket(net::PacketId id) const;
  [[nodiscard]] const FrameRecord* FindFrame(std::uint64_t frame_id) const;
};

class Correlator {
 public:
  /// Runs the full correlation. Deterministic, pure function of the input.
  [[nodiscard]] static CrossLayerDataset Correlate(const CorrelatorInput& input);

  struct TbChain;  // implementation detail, exposed for the .cpp helpers
};

}  // namespace athena::core
