#include "core/wifi_correlator.hpp"

#include <algorithm>
#include <unordered_map>

namespace athena::core {

const char* ToString(WifiCause cause) {
  switch (cause) {
    case WifiCause::kNone: return "none";
    case WifiCause::kHolQueueing: return "hol-queueing";
    case WifiCause::kContention: return "contention";
    case WifiCause::kCollisionRetry: return "collision-retry";
  }
  return "?";
}

const WifiPacketRecord* WifiDataset::Find(net::PacketId id) const {
  for (const auto& p : packets) {
    if (p.packet_id == id) return &p;
  }
  return nullptr;
}

WifiDataset WifiCorrelator::Correlate(const WifiCorrelatorInput& input) {
  WifiDataset out;

  // Group airtime attempts by MAC identity (Wi-Fi carries whole packets).
  std::unordered_map<net::PacketId, std::vector<const net::WifiAirtimeRecord*>> attempts;
  for (const auto& rec : input.telemetry) {
    attempts[rec.packet_id].push_back(&rec);
  }

  std::unordered_map<net::PacketId, sim::TimePoint> egress_ts;
  egress_ts.reserve(input.egress.size());
  for (const auto& rec : input.egress) egress_ts.emplace(rec.packet_id, rec.local_ts);

  std::uint64_t matched_attempts = 0;
  for (const auto& rec : input.sender) {
    WifiPacketRecord p;
    p.packet_id = rec.packet_id;
    p.kind = rec.kind;
    if (rec.rtp) {
      p.frame_id = rec.rtp->frame_id;
      p.layer = rec.rtp->layer;
    }
    p.sent_at = rec.local_ts + input.sender_offset;

    if (const auto it = egress_ts.find(rec.packet_id); it != egress_ts.end()) {
      p.delivered = true;
      p.delivered_at = it->second;
      p.total_delay = p.delivered_at - p.sent_at;
    }

    if (const auto it = attempts.find(rec.packet_id); it != attempts.end()) {
      auto list = it->second;
      std::sort(list.begin(), list.end(),
                [](const net::WifiAirtimeRecord* a, const net::WifiAirtimeRecord* b) {
                  return a->contend_start < b->contend_start;
                });
      matched_attempts += list.size();
      p.attempts = static_cast<std::uint8_t>(list.size());
      p.hol_wait = std::max(list.front()->contend_start - p.sent_at, sim::Duration{0});
      sim::Duration airtime{0};
      for (const auto* a : list) {
        p.contention_wait += a->access_wait;
        airtime += a->access_wait + a->tx_duration;
      }
      if (p.delivered) {
        // Whatever the first attempt's contention + transmission does not
        // explain is retry overhead (backoff penalties + extra attempts).
        const auto first_only =
            list.front()->access_wait + list.front()->tx_duration;
        p.retry_overhead =
            std::max(p.total_delay - p.hol_wait - first_only, sim::Duration{0});
        if (p.attempts == 1) p.retry_overhead = sim::Duration{0};
      }
    }

    // Primary cause: the largest contributor beyond a negligible floor.
    const auto biggest =
        std::max({p.hol_wait, p.contention_wait, p.retry_overhead});
    if (p.attempts > 1 && p.retry_overhead == biggest) {
      p.primary_cause = WifiCause::kCollisionRetry;
    } else if (biggest == p.hol_wait && p.hol_wait > sim::Duration{300}) {
      p.primary_cause = WifiCause::kHolQueueing;
    } else if (biggest == p.contention_wait && p.contention_wait > sim::Duration{300}) {
      p.primary_cause = WifiCause::kContention;
    }
    out.packets.push_back(std::move(p));
  }

  out.unmatched_telemetry = input.telemetry.size() - matched_attempts;
  return out;
}

}  // namespace athena::core
