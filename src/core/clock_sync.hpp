// Clock-offset estimation between capture points.
//
// The paper NTP-synchronizes all hosts, but one-way delays computed across
// two hosts still embed the residual clock offset. Athena estimates and
// removes it two ways:
//   1. Bidirectional (NTP/ICMP-style): offset = ((t1−t0) − (t3−t2)) / 2
//      from request/response timestamp quadruples, assuming symmetric paths.
//   2. Min-filter: when the minimum true one-way delay of a path is known
//      (e.g. the wired gNB→core hop), offset = min(observed OWD) − floor.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/capture.hpp"
#include "sim/time.hpp"

namespace athena::core {

class ClockSync {
 public:
  struct ExchangeSample {
    sim::TimePoint t0;  ///< request sent, clock A
    sim::TimePoint t1;  ///< request received, clock B
    sim::TimePoint t2;  ///< response sent, clock B
    sim::TimePoint t3;  ///< response received, clock A
  };

  /// Offset of clock B relative to clock A (local_B ≈ local_A + offset),
  /// median over samples. Empty input → nullopt.
  [[nodiscard]] static std::optional<sim::Duration> OffsetFromExchanges(
      const std::vector<ExchangeSample>& samples);

  /// Offset of clock B relative to clock A from one-way observations of
  /// the same packets captured at A then B, given the known minimum path
  /// delay between the points.
  struct OwdPair {
    sim::TimePoint a_ts;
    sim::TimePoint b_ts;
  };
  [[nodiscard]] static std::optional<sim::Duration> OffsetFromMinOwd(
      const std::vector<OwdPair>& pairs, sim::Duration min_path_delay);

  /// Joins two capture logs on packet id, yielding OwdPairs for packets
  /// seen at both points (in capture order of A).
  [[nodiscard]] static std::vector<OwdPair> JoinCaptures(
      const std::vector<net::CaptureRecord>& a, const std::vector<net::CaptureRecord>& b);
};

}  // namespace athena::core
