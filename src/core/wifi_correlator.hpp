// Athena for Wi-Fi: the same cross-layer methodology as the 5G correlator,
// instantiated for a contention-based MAC. §5.1 of the paper positions the
// framework as "a blueprint for future measurement" across access
// technologies — this file is that blueprint followed once more:
//
//   L1/L2  per-attempt airtime records (net::WifiAirtimeRecord)
//   L3     packet captures at sender and access-network egress
//   L7     RTP frame/layer semantics from the capture's header extensions
//
// The delay decomposition differs from 5G — there is no grant cycle and no
// slot grid; delay splits into head-of-line queueing, channel-contention
// waits, and collision-retry overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cross_layer.hpp"
#include "net/capture.hpp"
#include "net/wireless_links.hpp"

namespace athena::core {

enum class WifiCause : std::uint8_t {
  kNone,            ///< delivered with negligible extra delay
  kHolQueueing,     ///< waited behind earlier packets at the station
  kContention,      ///< the channel was busy / backoff dominated
  kCollisionRetry,  ///< one or more collided attempts
};

[[nodiscard]] const char* ToString(WifiCause cause);

struct WifiPacketRecord {
  net::PacketId packet_id = 0;
  net::PacketKind kind = net::PacketKind::kGeneric;
  std::uint64_t frame_id = 0;
  net::SvcLayer layer = net::SvcLayer::kNone;

  sim::TimePoint sent_at;
  sim::TimePoint delivered_at;
  bool delivered = false;

  std::uint8_t attempts = 0;
  sim::Duration total_delay{0};
  sim::Duration hol_wait{0};         ///< send → first contention start
  sim::Duration contention_wait{0};  ///< Σ access waits across attempts
  sim::Duration retry_overhead{0};   ///< everything the retries added
  WifiCause primary_cause = WifiCause::kNone;
};

struct WifiDataset {
  std::vector<WifiPacketRecord> packets;
  std::uint64_t unmatched_telemetry = 0;  ///< attempts with no captured packet

  [[nodiscard]] const WifiPacketRecord* Find(net::PacketId id) const;
};

struct WifiCorrelatorInput {
  std::vector<net::CaptureRecord> sender;
  std::vector<net::CaptureRecord> egress;  ///< after the Wi-Fi hop
  std::vector<net::WifiAirtimeRecord> telemetry;
  sim::Duration sender_offset{0};  ///< onto the egress/common clock
};

class WifiCorrelator {
 public:
  [[nodiscard]] static WifiDataset Correlate(const WifiCorrelatorInput& input);
};

}  // namespace athena::core
