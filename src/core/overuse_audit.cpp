#include "core/overuse_audit.hpp"

#include <algorithm>

namespace athena::core {

OveruseAudit::Summary OveruseAudit::Audit(const std::vector<cc::GoogCc::Snapshot>& history,
                                          const CrossLayerDataset& data, sim::Duration window,
                                          sim::Duration receiver_to_core) {
  Summary summary;

  // Media packets sorted by core-clock send time for windowed lookups.
  std::vector<const CrossLayerRecord*> packets;
  packets.reserve(data.packets.size());
  for (const auto& p : data.packets) {
    if (p.is_media()) packets.push_back(&p);
  }
  std::sort(packets.begin(), packets.end(),
            [](const CrossLayerRecord* a, const CrossLayerRecord* b) {
              return a->sent_at < b->sent_at;
            });

  bool was_overusing = false;
  for (const auto& snapshot : history) {
    const bool overusing = snapshot.state == cc::BandwidthUsage::kOverusing;
    if (!overusing || was_overusing) {
      was_overusing = overusing;
      continue;
    }
    was_overusing = true;

    OveruseEvent event;
    event.at = snapshot.t;
    const sim::TimePoint core_time = snapshot.t + receiver_to_core;
    const sim::TimePoint from = core_time - window;

    const auto lo = std::lower_bound(
        packets.begin(), packets.end(), from,
        [](const CrossLayerRecord* p, sim::TimePoint t) { return p->sent_at < t; });
    for (auto it = lo; it != packets.end() && (*it)->sent_at <= core_time; ++it) {
      ++event.window_packets;
      ++event.cause_counts[(*it)->primary_cause];
    }

    // Dominant non-benign cause; slot alignment alone cannot grow a trend,
    // so it does not count as an explanation.
    std::uint32_t best = 0;
    for (const auto& [cause, count] : event.cause_counts) {
      if (cause == RootCause::kNone || cause == RootCause::kSlotAlignment) continue;
      if (count > best) {
        best = count;
        event.dominant_cause = cause;
      }
    }
    // Phantom = the delays GCC reacted to were RAN mechanics, not a queue.
    event.phantom = event.dominant_cause == RootCause::kRetransmission ||
                    event.dominant_cause == RootCause::kBsrWait;
    if (event.window_packets > 0) {
      (event.phantom ? summary.phantom_events : summary.genuine_events) += 1;
      summary.events.push_back(std::move(event));
    }
  }
  return summary;
}

}  // namespace athena::core
