// CSV export of Athena's artifacts: per-packet cross-layer records,
// per-frame aggregates, raw telemetry and capture logs. The schemas are
// stable and documented per column so downstream tooling (pandas, R,
// gnuplot) can regenerate the paper's figures from a session dump.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/correlator.hpp"
#include "net/capture.hpp"
#include "ran/types.hpp"

namespace athena::core {

class CsvExport {
 public:
  /// packets.csv — one row per correlated uplink packet:
  /// packet_id,kind,size_bytes,frame_id,layer,sent_us,core_us,reached_core,
  /// uplink_owd_us,sched_wait_us,spread_us,rtx_us,harq_rounds,last_grant,
  /// tb_chains,cause
  static void Packets(std::ostream& os, const CrossLayerDataset& data);

  /// frames.csv — one row per media unit:
  /// frame_id,layer,is_audio,packets,complete,first_sent_us,last_sent_us,
  /// first_core_us,last_core_us,sender_spread_us,core_spread_us,frame_delay_us
  static void Frames(std::ostream& os, const CrossLayerDataset& data);

  /// telemetry.csv — one row per TB transmission:
  /// tb_id,chain_id,slot_us,grant,tbs_bytes,used_bytes,harq_round,crc_ok
  static void Telemetry(std::ostream& os, const std::vector<ran::TbRecord>& telemetry);

  /// capture.csv — one row per captured packet:
  /// packet_id,local_us,kind,size_bytes,flow,frame_id,transport_seq
  static void Capture(std::ostream& os, const std::vector<net::CaptureRecord>& records);
};

}  // namespace athena::core
