// One-call session reporting: the cross-layer narrative (delays,
// decomposition, root causes, scheduler efficiency, QoE) rendered as
// human-readable text from a correlated dataset — what an operator
// actually reads after a measurement run. Used by the quickstart, the CLI
// and anything else that wants "the Athena story" without re-deriving it.
#pragma once

#include <iosfwd>
#include <optional>

#include "core/analyzer.hpp"
#include "core/correlator.hpp"
#include "media/qoe.hpp"
#include "ran/types.hpp"

namespace athena::core {

class Report {
 public:
  struct Inputs {
    const CrossLayerDataset* dataset = nullptr;          ///< required
    const media::QoeCollector* qoe = nullptr;            ///< optional
    const ran::RanCounters* ran_counters = nullptr;      ///< optional
    std::optional<double> controller_target_bps;         ///< optional
  };

  /// Renders the full report to `os`. Sections with missing inputs are
  /// skipped.
  static void Render(std::ostream& os, const Inputs& inputs);
};

}  // namespace athena::core
