// The overuse audit: Athena's cross-layer view applied to the congestion
// controller itself. For every overuse event GCC declares, look up what
// the RAN was actually doing to the packets in the detector's window —
// retransmission bursts, BSR scheduling spreads, genuine capacity
// contention — and classify the event as *phantom* (a RAN artifact, §4)
// or *genuine* (real queue growth). This is the analysis behind the
// Fig. 10 claim that an idle 5G network makes GCC cry wolf.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cc/gcc.hpp"
#include "core/correlator.hpp"

namespace athena::core {

struct OveruseEvent {
  sim::TimePoint at;                 ///< receiver time of the overuse verdict
  RootCause dominant_cause = RootCause::kNone;
  bool phantom = false;              ///< true if caused by RAN artifacts
  std::uint32_t window_packets = 0;
  std::map<RootCause, std::uint32_t> cause_counts;
};

class OveruseAudit {
 public:
  struct Summary {
    std::vector<OveruseEvent> events;
    std::uint32_t phantom_events = 0;
    std::uint32_t genuine_events = 0;

    [[nodiscard]] double PhantomFraction() const {
      const auto total = phantom_events + genuine_events;
      return total ? static_cast<double>(phantom_events) / total : 0.0;
    }
  };

  /// Joins GCC's detector history with the correlated dataset. Each
  /// transition into the overusing state is audited against the media
  /// packets sent within `window` before the verdict.
  ///
  /// Note on clocks: snapshot timestamps are receiver-side arrival times
  /// while dataset timestamps sit on the core clock; `receiver_to_core`
  /// shifts the former onto the latter (≈ −(WAN + SFU) one-way delay; a
  /// rough value is fine because the window is wide).
  [[nodiscard]] static Summary Audit(const std::vector<cc::GoogCc::Snapshot>& history,
                                     const CrossLayerDataset& data,
                                     sim::Duration window = std::chrono::milliseconds{500},
                                     sim::Duration receiver_to_core =
                                         std::chrono::milliseconds{-22});
};

}  // namespace athena::core
