// Analysis helpers over the correlated dataset: the aggregations behind
// each figure of the paper (one-way-delay series, audio/video RAN-delay
// CDFs, per-frame delay spread, root-cause breakdowns).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/correlator.hpp"
#include "net/trace_link.hpp"
#include "stats/cdf.hpp"
#include "stats/timeseries.hpp"

namespace athena::core {

class Analyzer {
 public:
  /// Fig. 3: per-packet uplink one-way delay (sender → core) over time,
  /// in ms, optionally restricted to one packet kind.
  [[nodiscard]] static stats::TimeSeries UplinkOwdSeries(
      const CrossLayerDataset& data, std::optional<net::PacketKind> kind = std::nullopt);

  /// Fig. 3: core → receiver one-way delay over time (RTP 2→3*→4).
  [[nodiscard]] static stats::TimeSeries WanOwdSeries(const CrossLayerDataset& data);

  /// Fig. 4: CDF of RAN (uplink) delay in ms for audio or video packets.
  [[nodiscard]] static stats::Cdf RanDelayCdf(const CrossLayerDataset& data, bool audio);

  /// Per-SVC-layer frame delay CDF (ms) — the L7 importance dimension:
  /// base-layer frames gate decode of everything after them, so their
  /// delay matters more than enhancement frames' (§2, §5.2).
  [[nodiscard]] static stats::Cdf FrameDelayCdfByLayer(const CrossLayerDataset& data,
                                                       net::SvcLayer layer);

  /// Fig. 5: CDF of per-frame delay spread (ms) at the sender or the core.
  enum class SpreadAt : std::uint8_t { kSender, kCore };
  [[nodiscard]] static stats::Cdf DelaySpreadCdf(const CrossLayerDataset& data, SpreadAt where,
                                                 bool include_audio = true);

  /// Frame-level one-way delay CDF (first packet sent → last packet at
  /// core) — the §5.2 metric the mitigations target.
  [[nodiscard]] static stats::Cdf FrameDelayCdf(const CrossLayerDataset& data,
                                                bool video_only = true);

  /// Packets per primary root cause.
  [[nodiscard]] static std::map<RootCause, std::uint64_t> RootCauseBreakdown(
      const CrossLayerDataset& data);

  /// Mean uplink delay decomposition in ms over media packets:
  /// {sched_wait, spread, rtx, remainder}.
  struct Decomposition {
    double sched_wait_ms = 0.0;
    double spread_ms = 0.0;
    double rtx_ms = 0.0;
    double remainder_ms = 0.0;  ///< core hop + decode pipeline
    double total_ms = 0.0;
    std::uint64_t packets = 0;
  };
  [[nodiscard]] static Decomposition MeanDecomposition(const CrossLayerDataset& data);

  /// Fraction of delay-spread samples lying within `tolerance` of the UL
  /// slot grid — quantifies the Fig. 5 / Fig. 9a "increments of 2.5 ms"
  /// observation.
  [[nodiscard]] static double SpreadGridFraction(const CrossLayerDataset& data,
                                                 sim::Duration grid, sim::Duration tolerance);

  /// Harvests a replayable (send-offset → one-way delay) trace from the
  /// correlated media packets — the raw material for the §5.1 trace-driven
  /// "GCC simulator" (net::TraceDrivenLink).
  [[nodiscard]] static net::DelayTrace BuildDelayTrace(const CrossLayerDataset& data);
};

}  // namespace athena::core
