// Cross-layer record types: the output schema of the Athena correlator —
// one record per uplink packet, annotated with every layer's view of it
// (Fig. 1): the transport blocks that carried it (L1/L2), its one-way
// delays between capture points (L3), and the media frame/SVC layer it
// belongs to (L7), plus a decomposition of *why* it was delayed.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "ran/types.hpp"
#include "sim/time.hpp"

namespace athena::core {

/// Primary explanation for a packet's uplink delay (§3's two causes, split
/// finer).
enum class RootCause : std::uint8_t {
  kNone,               ///< delivered within one slot period: no artifact
  kSlotAlignment,      ///< waited (only) for the next TDD uplink slot
  kBsrWait,            ///< queued until a BSR-requested grant matured (§3.1)
  kRetransmission,     ///< HARQ rounds inflated the delay (§3.2)
  kCapacityContention, ///< grant clipping under cross traffic stretched delivery
};

[[nodiscard]] const char* ToString(RootCause cause);

/// One correlated uplink packet.
struct CrossLayerRecord {
  net::PacketId packet_id = 0;
  net::PacketKind kind = net::PacketKind::kGeneric;
  std::uint32_t size_bytes = 0;

  // L7 identity (from RTP header extensions).
  std::uint64_t frame_id = 0;
  net::SvcLayer layer = net::SvcLayer::kNone;

  // L3 timestamps on the correlator's common clock.
  sim::TimePoint sent_at;       ///< capture point ① (sender egress)
  sim::TimePoint core_at;       ///< capture point ② (mobile core)
  bool reached_core = false;
  sim::TimePoint receiver_at;   ///< capture point ④ (if receiver log given)
  bool reached_receiver = false;

  // L1/L2: the transport-block chains that carried this packet's bytes.
  std::vector<ran::TbId> tb_chains;
  std::uint8_t max_harq_rounds = 0;   ///< worst chain's extra rounds
  ran::GrantType last_grant = ran::GrantType::kProactive;

  // Delay decomposition (uplink = sched_wait + spread + rtx + core hop).
  sim::Duration uplink_owd{0};       ///< sent_at → core_at
  sim::Duration sched_wait{0};       ///< sent_at → first TB transmission
  sim::Duration transmission_spread{0};  ///< first TB → TB with the last byte
  sim::Duration rtx_inflation{0};    ///< HARQ rounds on the final chain
  sim::Duration wan_owd{0};          ///< core_at → receiver_at

  RootCause primary_cause = RootCause::kNone;

  /// How much of this record's L1/L2 story the telemetry actually
  /// supports: the fraction of the packet's bytes covered by observed
  /// transport blocks, discounted when the packet was sent inside a
  /// detected telemetry gap (its attribution is then a guess across the
  /// hole). 1.0 = fully corroborated; 0.0 = pure L3 record.
  double match_confidence = 1.0;

  [[nodiscard]] bool is_media() const {
    return kind == net::PacketKind::kRtpVideo || kind == net::PacketKind::kRtpAudio;
  }
};

/// Per-media-frame aggregate (a frame renders only when its last packet
/// arrives, so frame-level delay is what QoE actually feels — §5.2).
struct FrameRecord {
  std::uint64_t frame_id = 0;
  net::SvcLayer layer = net::SvcLayer::kNone;
  bool is_audio = false;
  std::uint32_t packets = 0;

  sim::TimePoint first_sent;
  sim::TimePoint last_sent;
  sim::TimePoint first_core;
  sim::TimePoint last_core;
  bool complete_at_core = false;

  /// Burst length at the sender (≈0 for a single burst write).
  [[nodiscard]] sim::Duration SenderSpread() const { return last_sent - first_sent; }
  /// Fig. 5: how far the RAN smeared the frame out.
  [[nodiscard]] sim::Duration CoreSpread() const { return last_core - first_core; }
  /// Frame-level one-way delay: first packet out → last packet at core.
  [[nodiscard]] sim::Duration FrameDelay() const { return last_core - first_sent; }
};

}  // namespace athena::core
