#include "core/correlator.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace athena::core {

const char* ToString(RootCause cause) {
  switch (cause) {
    case RootCause::kNone: return "none";
    case RootCause::kSlotAlignment: return "slot-alignment";
    case RootCause::kBsrWait: return "bsr-wait";
    case RootCause::kRetransmission: return "retransmission";
    case RootCause::kCapacityContention: return "capacity-contention";
  }
  return "?";
}

const CrossLayerRecord* CrossLayerDataset::FindPacket(net::PacketId id) const {
  for (const auto& p : packets) {
    if (p.packet_id == id) return &p;
  }
  return nullptr;
}

const FrameRecord* CrossLayerDataset::FindFrame(std::uint64_t frame_id) const {
  for (const auto& f : frames) {
    if (f.frame_id == frame_id) return &f;
  }
  return nullptr;
}

/// A HARQ chain reconstructed from telemetry: one unit of MAC-layer data,
/// transmitted once or more.
struct Correlator::TbChain {
  ran::TbId chain_id = 0;
  sim::TimePoint first_tx;
  sim::TimePoint decoded_at;      ///< first crc_ok transmission
  bool decoded = false;
  std::uint8_t rounds = 0;        ///< extra transmissions beyond the first
  std::uint32_t used_bytes = 0;
  ran::GrantType grant = ran::GrantType::kProactive;
};

namespace {

struct PendingPacket {
  const net::CaptureRecord* record = nullptr;
  sim::TimePoint sent_common;
  std::uint32_t remaining = 0;
  // Filled during the drain:
  std::vector<const Correlator::TbChain*> chains;
};

RootCause Classify(const CrossLayerRecord& rec, const ran::RanConfig& cell) {
  const auto slot = cell.ul_slot_period;
  const auto rtx = rec.rtx_inflation;
  const auto wait = rec.sched_wait;
  const auto spread = rec.transmission_spread;

  if (rtx >= cell.rtx_delay && rtx >= wait && rtx >= spread) {
    return RootCause::kRetransmission;
  }
  const auto dominant = std::max(wait, spread);
  if (dominant > cell.bsr_scheduling_delay + slot) return RootCause::kCapacityContention;
  if (spread > sim::Duration{slot.count() / 2} || wait > slot) return RootCause::kBsrWait;
  if (wait > sim::Duration{200}) return RootCause::kSlotAlignment;
  return RootCause::kNone;
}

}  // namespace

CrossLayerDataset Correlator::Correlate(const CorrelatorInput& input) {
  CrossLayerDataset out;

  // ---- Step 1: everything onto the common (core) clock. ----
  std::vector<PendingPacket> packets;
  packets.reserve(input.sender.size());
  for (const auto& rec : input.sender) {
    packets.push_back(PendingPacket{
        .record = &rec,
        .sent_common = rec.local_ts + input.sender_offset,
        .remaining = rec.size_bytes,
        .chains = {},
    });
  }
  std::stable_sort(packets.begin(), packets.end(),
                   [](const PendingPacket& a, const PendingPacket& b) {
                     return a.sent_common < b.sent_common;
                   });

  // ---- Step 2a: rebuild HARQ chains from the telemetry stream. ----
  std::map<ran::TbId, TbChain> chains_by_id;
  for (const auto& tb : input.telemetry) {
    auto [it, inserted] = chains_by_id.try_emplace(tb.chain_id);
    TbChain& chain = it->second;
    if (inserted) {
      chain.chain_id = tb.chain_id;
      chain.first_tx = tb.slot_time;
      chain.used_bytes = tb.used_bytes;
      chain.grant = tb.grant;
    }
    chain.first_tx = std::min(chain.first_tx, tb.slot_time);
    chain.rounds = std::max(chain.rounds, tb.harq_round);
    if (tb.crc_ok && (!chain.decoded || tb.slot_time < chain.decoded_at)) {
      chain.decoded = true;
      chain.decoded_at = tb.slot_time;
    }
  }
  std::vector<TbChain*> chains;
  chains.reserve(chains_by_id.size());
  for (auto& [id, chain] : chains_by_id) chains.push_back(&chain);
  std::stable_sort(chains.begin(), chains.end(), [](const TbChain* a, const TbChain* b) {
    return a->first_tx < b->first_tx;
  });

  // ---- Step 2b: FIFO byte-conservation drain. The UE's RLC queue is
  // FIFO, so the n-th TB byte carries the n-th queued packet byte; no
  // eligibility heuristics needed, which also makes the matching immune
  // to (bounded) clock-offset estimation error. ----
  std::size_t pkt_idx = 0;
  for (TbChain* chain : chains) {
    std::uint32_t avail = chain->used_bytes;
    while (avail > 0 && pkt_idx < packets.size()) {
      PendingPacket& pkt = packets[pkt_idx];
      if (pkt.remaining == 0) {
        ++pkt_idx;
        continue;
      }
      const std::uint32_t take = std::min(avail, pkt.remaining);
      pkt.remaining -= take;
      avail -= take;
      if (pkt.chains.empty() || pkt.chains.back() != chain) pkt.chains.push_back(chain);
      if (pkt.remaining == 0) ++pkt_idx;
    }
    out.unmatched_tb_bytes += avail;
  }
  for (const auto& pkt : packets) out.unmatched_packet_bytes += pkt.remaining;

  // ---- L3 joins: core and receiver captures by packet id. ----
  std::unordered_map<net::PacketId, sim::TimePoint> core_ts;
  core_ts.reserve(input.core.size());
  for (const auto& rec : input.core) core_ts.emplace(rec.packet_id, rec.local_ts);
  std::unordered_map<net::PacketId, sim::TimePoint> recv_ts;
  recv_ts.reserve(input.receiver.size());
  for (const auto& rec : input.receiver) recv_ts.emplace(rec.packet_id, rec.local_ts);

  // ---- Step 3: emit per-packet records with delay decomposition. ----
  out.packets.reserve(packets.size());
  for (const auto& pkt : packets) {
    const net::CaptureRecord& rec = *pkt.record;
    CrossLayerRecord r;
    r.packet_id = rec.packet_id;
    r.kind = rec.kind;
    r.size_bytes = rec.size_bytes;
    if (rec.rtp) {
      r.frame_id = rec.rtp->frame_id;
      r.layer = rec.rtp->layer;
    }
    r.sent_at = pkt.sent_common;

    if (!pkt.chains.empty()) {
      sim::TimePoint delivered = pkt.chains.front()->first_tx;
      sim::TimePoint last_first_tx = pkt.chains.front()->first_tx;
      for (const TbChain* chain : pkt.chains) {
        r.tb_chains.push_back(chain->chain_id);
        r.max_harq_rounds = std::max(r.max_harq_rounds, chain->rounds);
        last_first_tx = std::max(last_first_tx, chain->first_tx);
        if (chain->decoded) delivered = std::max(delivered, chain->decoded_at);
      }
      const TbChain* first = pkt.chains.front();
      const TbChain* last = pkt.chains.back();
      r.last_grant = last->grant;
      r.sched_wait = std::max(first->first_tx - pkt.sent_common, sim::Duration{0});
      r.transmission_spread = last_first_tx - first->first_tx;
      r.rtx_inflation = std::max(delivered - last_first_tx, sim::Duration{0});
    }

    if (const auto it = core_ts.find(rec.packet_id); it != core_ts.end()) {
      r.reached_core = true;
      r.core_at = it->second;
      r.uplink_owd = r.core_at - r.sent_at;
    }
    if (const auto it = recv_ts.find(rec.packet_id); it != recv_ts.end()) {
      r.reached_receiver = true;
      r.receiver_at = it->second + input.receiver_offset;
      if (r.reached_core) r.wan_owd = r.receiver_at - r.core_at;
    }

    r.primary_cause = Classify(r, input.cell);
    // The "why was this packet late" track: one span per media packet from
    // UE send to core arrival, annotated with the delay decomposition.
    if (obs::trace_enabled() && r.reached_core &&
        (r.kind == net::PacketKind::kRtpVideo || r.kind == net::PacketKind::kRtpAudio)) {
      obs::TraceAsyncSpan(obs::Layer::kCore, obs::names::kPktUplink, r.packet_id, r.sent_at,
                          r.core_at,
                          {{"wait_ms", sim::ToMs(r.sched_wait)},
                           {"spread_ms", sim::ToMs(r.transmission_spread)},
                           {"harq_ms", sim::ToMs(r.rtx_inflation)},
                           {"cause", static_cast<double>(r.primary_cause)}});
    }
    out.packets.push_back(std::move(r));
  }
  obs::CountInc("core.packets_correlated", out.packets.size());

  // ---- Per-frame aggregation (L7). ----
  struct FrameScratch {
    FrameRecord record;
    std::uint32_t expected = 0;
    std::uint32_t arrived_at_core = 0;
    bool seen_core = false;
  };
  std::map<std::uint64_t, FrameScratch> frames;
  for (const auto& pkt : packets) {
    const net::CaptureRecord& rec = *pkt.record;
    if (!rec.rtp) continue;
    const auto frame_id = rec.rtp->frame_id;
    auto [it, inserted] = frames.try_emplace(frame_id);
    FrameScratch& s = it->second;
    FrameRecord& f = s.record;
    if (inserted) {
      f.frame_id = frame_id;
      f.layer = rec.rtp->layer;
      f.is_audio = rec.kind == net::PacketKind::kRtpAudio;
      f.first_sent = pkt.sent_common;
      f.last_sent = pkt.sent_common;
      s.expected = rec.rtp->packets_in_frame;
    }
    ++f.packets;
    f.first_sent = std::min(f.first_sent, pkt.sent_common);
    f.last_sent = std::max(f.last_sent, pkt.sent_common);
    if (const auto core_it = core_ts.find(rec.packet_id); core_it != core_ts.end()) {
      const sim::TimePoint at = core_it->second;
      ++s.arrived_at_core;
      if (!s.seen_core) {
        s.seen_core = true;
        f.first_core = at;
        f.last_core = at;
      } else {
        f.first_core = std::min(f.first_core, at);
        f.last_core = std::max(f.last_core, at);
      }
    }
  }
  out.frames.reserve(frames.size());
  for (auto& [frame_id, s] : frames) {
    // Complete at the core once every packet of the frame arrived there.
    s.record.complete_at_core = s.expected > 0 && s.arrived_at_core >= s.expected;
    out.frames.push_back(s.record);
  }
  obs::CountInc("core.frames_correlated", out.frames.size());
  obs::SetGauge("core.unmatched_tb_bytes", static_cast<double>(out.unmatched_tb_bytes));
  obs::SetGauge("core.unmatched_packet_bytes",
                static_cast<double>(out.unmatched_packet_bytes));

  return out;
}

}  // namespace athena::core
