#include "core/correlator.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace athena::core {

const char* ToString(RootCause cause) {
  switch (cause) {
    case RootCause::kNone: return "none";
    case RootCause::kSlotAlignment: return "slot-alignment";
    case RootCause::kBsrWait: return "bsr-wait";
    case RootCause::kRetransmission: return "retransmission";
    case RootCause::kCapacityContention: return "capacity-contention";
  }
  return "?";
}

const CrossLayerRecord* CrossLayerDataset::FindPacket(net::PacketId id) const {
  for (const auto& p : packets) {
    if (p.packet_id == id) return &p;
  }
  return nullptr;
}

const FrameRecord* CrossLayerDataset::FindFrame(std::uint64_t frame_id) const {
  for (const auto& f : frames) {
    if (f.frame_id == frame_id) return &f;
  }
  return nullptr;
}

/// A HARQ chain reconstructed from telemetry: one unit of MAC-layer data,
/// transmitted once or more.
struct Correlator::TbChain {
  ran::TbId chain_id = 0;
  sim::TimePoint first_tx;
  sim::TimePoint decoded_at;      ///< first crc_ok transmission
  bool decoded = false;
  std::uint8_t rounds = 0;        ///< extra transmissions beyond the first
  std::uint32_t used_bytes = 0;
  ran::GrantType grant = ran::GrantType::kProactive;
};

namespace {

struct PendingPacket {
  const net::CaptureRecord* record = nullptr;
  sim::TimePoint sent_common;
  std::uint32_t remaining = 0;
  // Filled during the drain:
  std::vector<const Correlator::TbChain*> chains;
};

RootCause Classify(const CrossLayerRecord& rec, const ran::RanConfig& cell) {
  const auto slot = cell.ul_slot_period;
  const auto rtx = rec.rtx_inflation;
  const auto wait = rec.sched_wait;
  const auto spread = rec.transmission_spread;

  if (rtx >= cell.rtx_delay && rtx >= wait && rtx >= spread) {
    return RootCause::kRetransmission;
  }
  const auto dominant = std::max(wait, spread);
  if (dominant > cell.bsr_scheduling_delay + slot) return RootCause::kCapacityContention;
  if (spread > sim::Duration{slot.count() / 2} || wait > slot) return RootCause::kBsrWait;
  if (wait > sim::Duration{200}) return RootCause::kSlotAlignment;
  return RootCause::kNone;
}

void FinalizeState(StreamHealth& h) {
  if (h.records == 0) {
    h.state = StreamHealth::State::kMissing;
  } else if (h.duplicates_dropped + h.out_of_order + h.gaps > 0) {
    h.state = StreamHealth::State::kDegraded;
  } else {
    h.state = StreamHealth::State::kHealthy;
  }
}

/// Joins a capture log into a packet_id → timestamp map, tolerating
/// duplicates (first/earliest record wins) and reordering (counted; the
/// map is order-free anyway).
std::unordered_map<net::PacketId, sim::TimePoint> JoinById(
    const std::vector<net::CaptureRecord>& records, StreamHealth& health) {
  std::unordered_map<net::PacketId, sim::TimePoint> by_id;
  by_id.reserve(records.size());
  sim::TimePoint prev;
  bool have_prev = false;
  for (const auto& rec : records) {
    if (have_prev && rec.local_ts < prev) ++health.out_of_order;
    prev = rec.local_ts;
    have_prev = true;
    auto [it, inserted] = by_id.emplace(rec.packet_id, rec.local_ts);
    if (!inserted) {
      ++health.duplicates_dropped;
      it->second = std::min(it->second, rec.local_ts);
    }
  }
  health.records = by_id.size();
  return by_id;
}

}  // namespace

CrossLayerDataset Correlator::Correlate(const CorrelatorInput& input) {
  CrossLayerDataset out;
  CorrelationHealth& health = out.health;

  // ---- Step 0: clean the feeds. Real collectors re-deliver, reorder and
  // lose records; everything below works on deduplicated, time-sorted
  // views and every repair is tallied in `health` (the degradation
  // contract: tolerate, but never silently). ----

  // Sender capture: dedupe by packet id (first record wins — a capture
  // point logs each packet once; re-deliveries are collector artifacts).
  std::vector<PendingPacket> packets;
  packets.reserve(input.sender.size());
  {
    std::unordered_set<net::PacketId> seen;
    seen.reserve(input.sender.size());
    sim::TimePoint prev;
    bool have_prev = false;
    for (const auto& rec : input.sender) {
      if (have_prev && rec.local_ts < prev) ++health.sender.out_of_order;
      prev = rec.local_ts;
      have_prev = true;
      if (!seen.insert(rec.packet_id).second) {
        ++health.sender.duplicates_dropped;
        continue;
      }
      packets.push_back(PendingPacket{
          .record = &rec,
          .sent_common = rec.local_ts + input.sender_offset,
          .remaining = rec.size_bytes,
          .chains = {},
      });
    }
    health.sender.records = packets.size();
  }
  // ---- Step 1: everything onto the common (core) clock; reordered
  // capture logs are repaired by this sort. ----
  // Ties broken by packet id: ids are assigned in send order, so equal
  // timestamps (bursts within one clock tick) still drain in true FIFO
  // order even when the capture log arrived permuted.
  std::stable_sort(packets.begin(), packets.end(),
                   [](const PendingPacket& a, const PendingPacket& b) {
                     if (a.sent_common != b.sent_common) return a.sent_common < b.sent_common;
                     return a.record->packet_id < b.record->packet_id;
                   });

  // Telemetry: count order inversions, then sort and dedupe by tb_id (a
  // tb_id names one transmission; seeing it twice is a feed duplicate,
  // and the same bytes must not be drained twice).
  std::vector<const ran::TbRecord*> telemetry;
  telemetry.reserve(input.telemetry.size());
  {
    sim::TimePoint prev;
    bool have_prev = false;
    for (const auto& tb : input.telemetry) {
      if (have_prev && tb.slot_time < prev) ++health.telemetry.out_of_order;
      prev = tb.slot_time;
      have_prev = true;
      telemetry.push_back(&tb);
    }
    std::stable_sort(telemetry.begin(), telemetry.end(),
                     [](const ran::TbRecord* a, const ran::TbRecord* b) {
                       if (a->slot_time != b->slot_time) return a->slot_time < b->slot_time;
                       return a->tb_id < b->tb_id;
                     });
    std::unordered_set<ran::TbId> seen_tx;
    seen_tx.reserve(telemetry.size());
    std::vector<const ran::TbRecord*> unique;
    unique.reserve(telemetry.size());
    for (const ran::TbRecord* tb : telemetry) {
      if (!seen_tx.insert(tb->tb_id).second) {
        ++health.telemetry.duplicates_dropped;
        continue;
      }
      unique.push_back(tb);
    }
    telemetry.swap(unique);
    health.telemetry.records = telemetry.size();
  }

  // ---- Step 2a: rebuild HARQ chains from the cleaned telemetry. ----
  std::map<ran::TbId, TbChain> chains_by_id;
  for (const ran::TbRecord* tb_ptr : telemetry) {
    const ran::TbRecord& tb = *tb_ptr;
    auto [it, inserted] = chains_by_id.try_emplace(tb.chain_id);
    TbChain& chain = it->second;
    if (inserted) {
      chain.chain_id = tb.chain_id;
      chain.first_tx = tb.slot_time;
      chain.used_bytes = tb.used_bytes;
      chain.grant = tb.grant;
    }
    chain.first_tx = std::min(chain.first_tx, tb.slot_time);
    chain.rounds = std::max(chain.rounds, tb.harq_round);
    if (tb.crc_ok && (!chain.decoded || tb.slot_time < chain.decoded_at)) {
      chain.decoded = true;
      chain.decoded_at = tb.slot_time;
    }
  }
  std::vector<TbChain*> chains;
  chains.reserve(chains_by_id.size());
  for (auto& [id, chain] : chains_by_id) chains.push_back(&chain);
  std::stable_sort(chains.begin(), chains.end(), [](const TbChain* a, const TbChain* b) {
    return a->first_tx < b->first_tx;
  });

  // ---- Step 2b: FIFO byte-conservation drain. The UE's RLC queue is
  // FIFO, so the n-th TB byte carries the n-th queued packet byte; no
  // eligibility heuristics needed, which also makes the matching immune
  // to (bounded) clock-offset estimation error. ----
  std::size_t pkt_idx = 0;
  for (TbChain* chain : chains) {
    std::uint32_t avail = chain->used_bytes;
    while (avail > 0 && pkt_idx < packets.size()) {
      PendingPacket& pkt = packets[pkt_idx];
      if (pkt.remaining == 0) {
        ++pkt_idx;
        continue;
      }
      const std::uint32_t take = std::min(avail, pkt.remaining);
      pkt.remaining -= take;
      avail -= take;
      if (pkt.chains.empty() || pkt.chains.back() != chain) pkt.chains.push_back(chain);
      if (pkt.remaining == 0) ++pkt_idx;
    }
    out.unmatched_tb_bytes += avail;
  }
  for (const auto& pkt : packets) out.unmatched_packet_bytes += pkt.remaining;

  // ---- L3 joins: core and receiver captures by packet id (duplicate-
  // and reorder-tolerant). ----
  std::unordered_map<net::PacketId, sim::TimePoint> core_ts = JoinById(input.core, health.core);
  std::unordered_map<net::PacketId, sim::TimePoint> recv_ts =
      JoinById(input.receiver, health.receiver);

  // ---- Telemetry gap scan: silent holes in the TB stream are only
  // *evidence* of feed loss when traffic demonstrably crossed the RAN
  // inside them (core arrivals imply serving TBs ~a processing delay
  // earlier). Idle spells — no TBs because nothing was sent — are not
  // gaps. Each confirmed gap window later discounts the match confidence
  // of packets correlated across it. ----
  std::vector<std::pair<sim::TimePoint, sim::TimePoint>> gap_windows;
  sim::TimePoint last_tb_slot;
  if (!telemetry.empty()) {
    last_tb_slot = telemetry.back()->slot_time;
    std::vector<sim::TimePoint> core_arrivals;
    core_arrivals.reserve(core_ts.size());
    for (const auto& [id, ts] : core_ts) core_arrivals.push_back(ts);
    std::sort(core_arrivals.begin(), core_arrivals.end());

    const sim::Duration slot = input.cell.ul_slot_period;
    // Median TB spacing calibrates "silent" against the observed cadence.
    sim::Duration median_spacing = slot;
    if (telemetry.size() >= 8) {
      std::vector<std::int64_t> deltas;
      deltas.reserve(telemetry.size() - 1);
      for (std::size_t i = 1; i < telemetry.size(); ++i) {
        deltas.push_back((telemetry[i]->slot_time - telemetry[i - 1]->slot_time).count());
      }
      auto mid = deltas.begin() + static_cast<std::ptrdiff_t>(deltas.size() / 2);
      std::nth_element(deltas.begin(), mid, deltas.end());
      median_spacing = std::max(median_spacing, sim::Duration{*mid});
    }
    const sim::Duration threshold =
        std::max(sim::Duration{4 * median_spacing.count()}, sim::Duration{4 * slot.count()});
    // A TB at t surfaces at the core around t + margin.
    const sim::Duration margin =
        input.cell.ue_processing_delay + input.cell.gnb_to_core_delay + slot;

    auto arrivals_inside = [&](sim::TimePoint lo, sim::TimePoint hi) {
      const auto it = std::lower_bound(core_arrivals.begin(), core_arrivals.end(), lo);
      return it != core_arrivals.end() && *it < hi;
    };
    for (std::size_t i = 1; i < telemetry.size(); ++i) {
      const sim::TimePoint a = telemetry[i - 1]->slot_time;
      const sim::TimePoint b = telemetry[i]->slot_time;
      if (b - a <= threshold) continue;
      if (!arrivals_inside(a + margin + slot, b + margin - slot)) continue;
      ++health.telemetry.gaps;
      health.telemetry.longest_gap = std::max(health.telemetry.longest_gap, b - a);
      gap_windows.emplace_back(a, b);
    }
    // Tail truncation: the feed went dark before the traffic did.
    if (!core_arrivals.empty() && core_arrivals.back() - margin > last_tb_slot + threshold) {
      ++health.telemetry.gaps;
      const sim::Duration tail = (core_arrivals.back() - margin) - last_tb_slot;
      health.telemetry.longest_gap = std::max(health.telemetry.longest_gap, tail);
      gap_windows.emplace_back(last_tb_slot, core_arrivals.back());
    }
  }
  auto sent_in_gap = [&](sim::TimePoint sent) {
    for (const auto& [a, b] : gap_windows) {
      if (sent >= a - input.cell.ul_slot_period && sent < b) return true;
    }
    return false;
  };

  // ---- Step 3: emit per-packet records with delay decomposition. ----
  // A packet sent this long before the last observed TB *should* have
  // been served while the telemetry feed was still alive; zero coverage
  // there means the feed lost its TBs (vs. the end-of-run in-flight tail,
  // which legitimately has none).
  const sim::Duration serve_deadline =
      input.cell.bsr_scheduling_delay + sim::Duration{4 * input.cell.ul_slot_period.count()};
  double confidence_sum = 0.0;
  out.packets.reserve(packets.size());
  for (const auto& pkt : packets) {
    const net::CaptureRecord& rec = *pkt.record;
    CrossLayerRecord r;
    r.packet_id = rec.packet_id;
    r.kind = rec.kind;
    r.size_bytes = rec.size_bytes;
    if (rec.rtp) {
      r.frame_id = rec.rtp->frame_id;
      r.layer = rec.rtp->layer;
    }
    r.sent_at = pkt.sent_common;

    if (!pkt.chains.empty()) {
      sim::TimePoint delivered = pkt.chains.front()->first_tx;
      sim::TimePoint last_first_tx = pkt.chains.front()->first_tx;
      for (const TbChain* chain : pkt.chains) {
        r.tb_chains.push_back(chain->chain_id);
        r.max_harq_rounds = std::max(r.max_harq_rounds, chain->rounds);
        last_first_tx = std::max(last_first_tx, chain->first_tx);
        if (chain->decoded) delivered = std::max(delivered, chain->decoded_at);
      }
      const TbChain* first = pkt.chains.front();
      const TbChain* last = pkt.chains.back();
      r.last_grant = last->grant;
      r.sched_wait = std::max(first->first_tx - pkt.sent_common, sim::Duration{0});
      r.transmission_spread = last_first_tx - first->first_tx;
      r.rtx_inflation = std::max(delivered - last_first_tx, sim::Duration{0});
    }

    if (const auto it = core_ts.find(rec.packet_id); it != core_ts.end()) {
      r.reached_core = true;
      r.core_at = it->second;
      r.uplink_owd = r.core_at - r.sent_at;
    }
    if (const auto it = recv_ts.find(rec.packet_id); it != recv_ts.end()) {
      r.reached_receiver = true;
      r.receiver_at = it->second + input.receiver_offset;
      if (r.reached_core) r.wan_owd = r.receiver_at - r.core_at;
    }

    // Degradation contract: per-record confidence = TB byte coverage,
    // discounted for packets correlated across a detected telemetry gap
    // (the FIFO drain had to bridge the hole, so their chain attribution
    // is a guess).
    const std::uint32_t covered =
        rec.size_bytes > pkt.remaining ? rec.size_bytes - pkt.remaining : 0;
    r.match_confidence =
        rec.size_bytes > 0 ? static_cast<double>(covered) / rec.size_bytes : 1.0;
    if (!gap_windows.empty() && sent_in_gap(pkt.sent_common)) {
      r.match_confidence = std::min(r.match_confidence, 0.25);
    }
    confidence_sum += r.match_confidence;
    if (!telemetry.empty() && covered == 0 &&
        pkt.sent_common + serve_deadline <= last_tb_slot) {
      ++health.uncovered_packets;
    }

    r.primary_cause = Classify(r, input.cell);
    // The "why was this packet late" track: one span per media packet from
    // UE send to core arrival, annotated with the delay decomposition.
    if (obs::trace_enabled() && r.reached_core &&
        (r.kind == net::PacketKind::kRtpVideo || r.kind == net::PacketKind::kRtpAudio)) {
      obs::TraceAsyncSpan(obs::Layer::kCore, obs::names::kPktUplink, r.packet_id, r.sent_at,
                          r.core_at,
                          {{"wait_ms", sim::ToMs(r.sched_wait)},
                           {"spread_ms", sim::ToMs(r.transmission_spread)},
                           {"harq_ms", sim::ToMs(r.rtx_inflation)},
                           {"cause", static_cast<double>(r.primary_cause)}});
    }
    out.packets.push_back(std::move(r));
  }
  obs::CountInc("core.packets_correlated", out.packets.size());

  // ---- Per-frame aggregation (L7). ----
  struct FrameScratch {
    FrameRecord record;
    std::uint32_t expected = 0;
    std::uint32_t arrived_at_core = 0;
    bool seen_core = false;
  };
  std::map<std::uint64_t, FrameScratch> frames;
  for (const auto& pkt : packets) {
    const net::CaptureRecord& rec = *pkt.record;
    if (!rec.rtp) continue;
    const auto frame_id = rec.rtp->frame_id;
    auto [it, inserted] = frames.try_emplace(frame_id);
    FrameScratch& s = it->second;
    FrameRecord& f = s.record;
    if (inserted) {
      f.frame_id = frame_id;
      f.layer = rec.rtp->layer;
      f.is_audio = rec.kind == net::PacketKind::kRtpAudio;
      f.first_sent = pkt.sent_common;
      f.last_sent = pkt.sent_common;
      s.expected = rec.rtp->packets_in_frame;
    }
    ++f.packets;
    f.first_sent = std::min(f.first_sent, pkt.sent_common);
    f.last_sent = std::max(f.last_sent, pkt.sent_common);
    if (const auto core_it = core_ts.find(rec.packet_id); core_it != core_ts.end()) {
      const sim::TimePoint at = core_it->second;
      ++s.arrived_at_core;
      if (!s.seen_core) {
        s.seen_core = true;
        f.first_core = at;
        f.last_core = at;
      } else {
        f.first_core = std::min(f.first_core, at);
        f.last_core = std::max(f.last_core, at);
      }
    }
  }
  out.frames.reserve(frames.size());
  for (auto& [frame_id, s] : frames) {
    // Complete at the core once every packet of the frame arrived there.
    s.record.complete_at_core = s.expected > 0 && s.arrived_at_core >= s.expected;
    out.frames.push_back(s.record);
  }
  obs::CountInc("core.frames_correlated", out.frames.size());
  obs::SetGauge("core.unmatched_tb_bytes", static_cast<double>(out.unmatched_tb_bytes));
  obs::SetGauge("core.unmatched_packet_bytes",
                static_cast<double>(out.unmatched_packet_bytes));

  // ---- Degradation verdict + gap/repair metrics. Silent wrongness is
  // the one forbidden failure mode: every repair surfaces here. ----
  FinalizeState(health.telemetry);
  FinalizeState(health.sender);
  FinalizeState(health.core);
  FinalizeState(health.receiver);
  health.mean_match_confidence =
      out.packets.empty() ? 1.0 : confidence_sum / static_cast<double>(out.packets.size());
  // Byte conservation: uplink TB payload can only be captured traffic, so
  // surplus beyond a few TBs' worth of tolerance means the telemetry
  // content itself is corrupt (scrambled size fields, foreign records).
  health.phantom_tb_bytes = out.unmatched_tb_bytes;
  health.phantom_capacity = out.unmatched_tb_bytes > 8192;
  obs::SetGauge("core.telemetry_phantom_bytes",
                static_cast<double>(health.phantom_tb_bytes));
  obs::SetGauge("core.telemetry_gaps", static_cast<double>(health.telemetry.gaps));
  obs::SetGauge("core.telemetry_longest_gap_ms", sim::ToMs(health.telemetry.longest_gap));
  obs::SetGauge("core.telemetry_duplicates",
                static_cast<double>(health.telemetry.duplicates_dropped));
  obs::SetGauge("core.telemetry_out_of_order",
                static_cast<double>(health.telemetry.out_of_order));
  obs::SetGauge("core.capture_duplicates",
                static_cast<double>(health.sender.duplicates_dropped +
                                    health.core.duplicates_dropped +
                                    health.receiver.duplicates_dropped));
  obs::SetGauge("core.capture_out_of_order",
                static_cast<double>(health.sender.out_of_order + health.core.out_of_order +
                                    health.receiver.out_of_order));
  obs::SetGauge("core.packets_uncovered", static_cast<double>(health.uncovered_packets));
  obs::SetGauge("core.match_confidence_mean", health.mean_match_confidence);
  obs::SetGauge("core.degraded", health.degraded() ? 1.0 : 0.0);

  return out;
}

}  // namespace athena::core
