// Radio-channel error model: per-TB CRC failure sampling.
//
// §3.2: "retransmissions happen due to mobility and dynamic channel
// conditions … frequently, particularly in environments with high
// interference or signal variability". We model a base block-error rate
// (5G link adaptation targets ~10% first-transmission BLER) with an
// optional Gilbert–Elliott two-state chain for bursty fading, and
// soft-combining gain on retransmission rounds.
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace athena::ran {

class ChannelModel {
 public:
  struct Config {
    double base_bler = 0.08;  ///< first-transmission block error rate (good state)
    /// Each HARQ round multiplies the failure probability by this factor
    /// (soft combining makes retransmissions more robust).
    double rtx_bler_factor = 0.5;

    // Gilbert–Elliott burstiness (disabled when bad_state_bler == 0):
    double bad_state_bler = 0.0;       ///< BLER while in the bad state
    double p_good_to_bad = 0.0;        ///< per-slot transition probability
    double p_bad_to_good = 0.2;        ///< per-slot recovery probability

    // Mobility (disabled when handover_interval == 0): the UE periodically
    // crosses a cell edge; during the handover window essentially every
    // transmission fails. §3.2 names mobility as a retransmission cause,
    // and these windows are what pushes the Fig. 4 audio tail "out to
    // seconds". The interval is jittered ±25% so handovers never phase-
    // lock with the media clock.
    sim::Duration handover_interval{0};
    sim::Duration handover_duration{std::chrono::milliseconds{120}};
  };

  ChannelModel(Config config, sim::Rng rng) : config_(config), rng_(rng) {}

  /// Advances the burst/mobility state by one slot of `slot` duration.
  /// Call once per UL slot (the default matches the paper cell's period).
  void Tick(sim::Duration slot = sim::Duration{std::chrono::microseconds{2500}});

  /// Samples the decode outcome of a TB transmission in the current state.
  [[nodiscard]] bool SampleCrcOk(std::uint8_t harq_round);

  [[nodiscard]] bool in_bad_state() const { return bad_; }
  [[nodiscard]] bool in_handover() const { return handover_remaining_.count() > 0; }
  [[nodiscard]] std::uint64_t handovers() const { return handovers_; }
  [[nodiscard]] double CurrentBler(std::uint8_t harq_round) const;
  [[nodiscard]] const Config& config() const { return config_; }

  /// An error-free channel (for the wired-baseline comparisons).
  static ChannelModel Perfect(sim::Rng rng) {
    return ChannelModel{Config{.base_bler = 0.0}, rng};
  }

  /// A realistic over-the-air radio: ~8% steady BLER plus fading episodes
  /// (~every 600 ms, lasting ~40 ms) during which most TBs fail. This is
  /// the "idle network, real radio" condition of Fig. 10 — §3.2:
  /// retransmissions "occur frequently, particularly in environments with
  /// high interference or signal variability".
  static Config FadingRadio() {
    return Config{
        .base_bler = 0.08,
        .rtx_bler_factor = 0.5,
        .bad_state_bler = 0.6,
        .p_good_to_bad = 0.008,
        .p_bad_to_good = 0.06,
    };
  }

 private:
  Config config_;
  sim::Rng rng_;
  bool bad_ = false;
  sim::Duration until_handover_{0};
  sim::Duration handover_remaining_{0};
  bool handover_armed_ = false;
  std::uint64_t handovers_ = 0;
};

}  // namespace athena::ran
