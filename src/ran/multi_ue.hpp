// The multi-UE 5G uplink: one cell, N contending UEs.
//
// `RanUplink` (uplink.hpp) models the paper's measured single-UE cell.
// `MultiUeUplink` generalizes it to a population sharing the PUSCH: one
// slot clock, one per-slot byte budget, per-UE RLC buffers / HARQ chains /
// channel models, and a MultiUeGrantPolicy that divides the budget. All
// single-UE mechanics (slot-grid alignment, BSR path, TB segmentation,
// HARQ retransmission with soft-combining, ECN marking) are preserved
// packet-for-packet; what changes is that grants now *compete*.
//
// UEs are mobile: a UE's radio-side state (`UeRadioState` — channel model,
// RLC queue, undelivered-packet ledger, telemetry stream) can be detached
// from one cell and attached to another mid-session (the world engine's
// handover choreography). Detach drops the UE's pending HARQ
// retransmissions — RLC-UM style handover loss — and hands everything
// else over intact, so packet conservation is exact:
//
//   offered == delivered + lost + |in_flight|      (per UE, at any time)
//
// Unlike RanUplink, this class performs no ground-truth recording and
// does not deliver to the core itself: decode completions surface through
// a callback with the decode timestamp, and the caller (world::NrCell)
// applies the gNB→core latency — in the sharded world that latency is a
// cross-shard mailbox hop.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "ran/channel.hpp"
#include "ran/config.hpp"
#include "ran/grant_policy.hpp"
#include "ran/types.hpp"
#include "sim/simulator.hpp"

namespace athena::ran {

/// One queued datagram's remaining bytes in a UE's RLC buffer.
struct UeQueuedPacket {
  net::Packet pkt;
  std::uint32_t remaining = 0;
  sim::TimePoint enqueued_at;
};

/// A packet that entered the modem and has not yet fully delivered.
struct UeDeliveryState {
  net::Packet pkt;
  std::uint32_t undelivered = 0;
  sim::TimePoint enqueued_at;
};

/// Everything that travels with a UE across cells. Movable value type;
/// the sharded world ships it through a mailbox on handover.
struct UeRadioState {
  ChannelModel channel{ChannelModel::Config{}, sim::Rng{1}};
  std::deque<UeQueuedPacket> queue;
  std::unordered_map<net::PacketId, UeDeliveryState> in_flight;
  /// The UE's control-channel telemetry stream, accumulated across every
  /// cell it visits (slot-time ordered: handover is one-way in time).
  std::vector<TbRecord> telemetry;

  // --- conservation ledger ---
  std::uint64_t offered = 0;    ///< packets handed to SendFromUe
  std::uint64_t delivered = 0;  ///< packets fully decoded (on their way to the core)
  std::uint64_t lost = 0;       ///< HARQ-chain drops + handover-dropped chains

  [[nodiscard]] std::uint32_t TotalBufferBytes() const {
    std::uint32_t bytes = 0;
    for (const auto& q : queue) bytes += q.remaining;
    return bytes;
  }
};

class MultiUeUplink {
 public:
  /// Decode completion: `pkt` fully decoded for `ue` at `decoded_at` (the
  /// slot time). The caller adds the gNB→core transfer latency.
  using DeliverFn =
      std::function<void(std::uint32_t ue, const net::Packet& pkt, sim::TimePoint decoded_at)>;

  /// `cell_tag` namespaces TB/chain ids (bits 40+) so the telemetry
  /// streams of different cells never collide in a handed-over UE's
  /// concatenated stream. `policy` null = SharedBsrGrantPolicy baseline.
  MultiUeUplink(sim::Simulator& sim, RanConfig config, std::uint32_t cell_tag,
                std::unique_ptr<MultiUeGrantPolicy> policy = nullptr);

  /// Starts the slot clock (idempotent). Slots stay on the epoch-aligned
  /// UL grid, so every cell in a world ticks the same instants.
  void Start();
  void Stop();

  /// Hands a UE's radio state to this cell. The UE takes part in grant
  /// contention from the next slot.
  void AttachUe(std::uint32_t ue, UeRadioState state);

  /// Removes the UE, returning its radio state for transfer. Pending HARQ
  /// retransmissions are dropped (their packets count as `lost` — the
  /// RLC-UM handover loss); queued and in-flight packets travel intact.
  [[nodiscard]] UeRadioState DetachUe(std::uint32_t ue);

  [[nodiscard]] bool HasUe(std::uint32_t ue) const { return ues_.count(ue) != 0; }
  [[nodiscard]] std::vector<std::uint32_t> AttachedUes() const;
  [[nodiscard]] const UeRadioState* FindUe(std::uint32_t ue) const;

  /// A datagram from `ue`'s IP stack enters its RLC buffer.
  void SendFromUe(std::uint32_t ue, const net::Packet& p);

  void set_deliver_sink(DeliverFn sink) { deliver_ = std::move(sink); }

  /// Cell-wide outage window (world-scale chaos): while now ∈
  /// [start, end) nothing transmits and HARQ retransmissions slide,
  /// exactly like RanUplink's in-handover slots.
  void SetOutage(sim::TimePoint start, sim::TimePoint end) {
    outage_start_ = start;
    outage_end_ = end;
  }

  [[nodiscard]] const RanCounters& counters() const { return counters_; }
  [[nodiscard]] const RanConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t slots_run() const { return slot_index_; }
  [[nodiscard]] MultiUeGrantPolicy& policy() { return *policy_; }

 private:
  struct Segment {
    net::PacketId packet_id = 0;
    std::uint32_t bytes = 0;
    bool last = false;
  };

  struct Tb {
    std::uint32_t ue = 0;
    TbId id = 0;
    TbId chain_id = 0;
    GrantType grant = GrantType::kProactive;
    std::uint32_t tbs = 0;
    std::uint32_t used = 0;
    std::uint8_t round = 0;
    sim::TimePoint first_tx_slot;
    std::vector<Segment> segments;
    bool has_bsr = false;
    std::uint32_t bsr_bytes = 0;
  };

  void OnUplinkSlot();
  void TransmitNewTb(UeRadioState& ue_state, const MultiUeGrantPolicy::Allocation& alloc,
                     sim::TimePoint slot_time);
  void Transmit(Tb tb, sim::TimePoint slot_time);
  void OnTbDecoded(const Tb& tb, sim::TimePoint slot_time);
  void OnChainDropped(const Tb& tb, sim::TimePoint slot_time);
  void RecordTelemetry(UeRadioState& ue_state, const Tb& tb, sim::TimePoint slot_time,
                       bool crc_ok);
  [[nodiscard]] static std::uint32_t EligibleBufferBytes(const UeRadioState& ue_state,
                                                        sim::TimePoint slot_time,
                                                        sim::Duration processing_delay);
  [[nodiscard]] bool InOutage(sim::TimePoint t) const {
    return outage_end_ > outage_start_ && t >= outage_start_ && t < outage_end_;
  }

  sim::Simulator& sim_;
  RanConfig config_;
  std::unique_ptr<MultiUeGrantPolicy> policy_;
  DeliverFn deliver_;

  /// Ordered by UE id: all per-slot iteration is deterministic.
  std::map<std::uint32_t, UeRadioState> ues_;
  /// Retransmissions waiting for their slot, keyed by absolute slot time
  /// (µs); within a slot, insertion order.
  std::map<std::int64_t, std::vector<Tb>> pending_rtx_;

  RanCounters counters_;
  TbId next_tb_id_ = 1;
  std::uint64_t slot_index_ = 0;
  sim::TimePoint outage_start_;
  sim::TimePoint outage_end_;
  bool started_ = false;
  sim::EventHandle slot_timer_;
};

}  // namespace athena::ran
