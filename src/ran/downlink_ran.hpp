// A full downlink RAN model (gNB → UE), the counterpart of RanUplink.
//
// Downlink is structurally simpler than uplink — the gNB schedules its own
// transmit queue, so there is no grant cycle, no BSR delay and no
// proactive-grant waste. What remains: the TDD slot grid (DL slots are 4×
// as dense as UL slots in the paper's cell), per-slot capacity shared with
// other UEs, and HARQ retransmissions. The model exists to *demonstrate*
// the paper's takeaway (c) — "the 5G RAN downlink provides low and stable
// delay" — as an emergent property, and to let two-party calls put a
// mobile receiver behind real radio machinery.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "ran/channel.hpp"
#include "ran/config.hpp"
#include "ran/cross_traffic.hpp"
#include "ran/types.hpp"
#include "sim/simulator.hpp"

namespace athena::ran {

class RanDownlink {
 public:
  RanDownlink(sim::Simulator& sim, RanConfig config, ChannelModel channel,
              CrossTraffic cross_traffic);

  void Start();
  void Stop();

  /// The core hands a datagram to the gNB for over-the-air delivery.
  void SendFromCore(const net::Packet& p);
  [[nodiscard]] net::PacketHandler AsHandler() {
    return [this](const net::Packet& p) { SendFromCore(p); };
  }

  /// Packets pop out at the UE.
  void set_ue_sink(net::PacketHandler sink) { ue_sink_ = std::move(sink); }

  /// DL slot spacing: ul_slot_period / dl_slots_per_ul_period.
  [[nodiscard]] sim::Duration slot_period() const { return slot_period_; }

  [[nodiscard]] const std::vector<TbRecord>& telemetry() const { return telemetry_; }
  [[nodiscard]] const RanCounters& counters() const { return counters_; }
  [[nodiscard]] std::uint32_t queue_bytes() const;

 private:
  struct Queued {
    net::Packet pkt;
    std::uint32_t remaining = 0;
  };

  struct Tb {
    TbId id = 0;
    TbId chain_id = 0;
    std::uint32_t tbs = 0;
    std::uint32_t used = 0;
    std::uint8_t round = 0;
    std::vector<std::pair<net::PacketId, std::uint32_t>> segments;  // (id, bytes)
  };

  void OnSlot();
  void Transmit(Tb tb, sim::TimePoint slot_time);
  void OnTbDecoded(const Tb& tb);

  sim::Simulator& sim_;
  RanConfig config_;
  sim::Duration slot_period_;
  ChannelModel channel_;
  CrossTraffic cross_traffic_;
  net::PacketHandler ue_sink_;

  std::deque<Queued> queue_;
  std::unordered_map<net::PacketId, std::pair<net::Packet, std::uint32_t>> in_flight_;
  std::unordered_map<std::int64_t, std::vector<Tb>> pending_rtx_;
  std::vector<TbRecord> telemetry_;
  RanCounters counters_;
  TbId next_tb_id_ = 1;
  bool started_ = false;
  sim::EventHandle slot_timer_;
};

}  // namespace athena::ran
