#include "ran/types.hpp"

namespace athena::ran {

const char* ToString(GrantType g) {
  switch (g) {
    case GrantType::kProactive: return "proactive";
    case GrantType::kRequested: return "requested";
  }
  return "?";
}

}  // namespace athena::ran
