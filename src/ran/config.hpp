// 5G RAN configuration: the Fig. 6 frame structure and the timing
// constants §3 of the paper measures on the private standalone cell.
//
//   - TDD with downlink slots 4× as frequent as uplink slots; an uplink
//     slot every 2.5 ms.
//   - BSR scheduling delay (BSR sent → grant usable) ≈ 10 ms.
//   - HARQ retransmission delay 10 ms per round.
//   - Proactive grants: small pre-allocated uplink TBs each UL slot.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace athena::ran {

struct RanConfig {
  // --- frame structure ---
  /// Interval between consecutive uplink slots (TDD: 2.5 ms; an FDD-like
  /// configuration sets this to slot_duration).
  sim::Duration ul_slot_period{std::chrono::microseconds{2500}};
  /// Single slot length (30 kHz SCS ⇒ 0.5 ms).
  sim::Duration slot_duration{std::chrono::microseconds{500}};

  // --- scheduling ---
  /// Delay from the UE sending a BSR to the requested grant being usable.
  sim::Duration bsr_scheduling_delay{std::chrono::milliseconds{10}};
  /// Proactive (pre-allocated) grant size per UL slot; carries "one or two"
  /// media packets (§3.1). 0 disables proactive grants.
  std::uint32_t proactive_grant_bytes = 2500;
  /// Uplink cell capacity shared by all UEs.
  double cell_ul_capacity_bps = 30e6;
  /// Data enqueued closer than this to a slot cannot make that slot
  /// (UE-side L2 processing time).
  sim::Duration ue_processing_delay{std::chrono::microseconds{500}};

  // --- HARQ ---
  /// One retransmission round costs this much extra delay (§3.2: 10 ms).
  sim::Duration rtx_delay{std::chrono::milliseconds{10}};
  /// Rounds after which the TB is abandoned (RLC would take over; we count
  /// the packet as lost).
  std::uint8_t max_harq_rounds = 4;

  // --- L4S-style marking (§5.3 extension) ---
  /// When > 0, packets that waited longer than this in the RLC buffer
  /// before their transport block leave with ECN-CE set (the modem is the
  /// bottleneck, so it can mark precisely — the ABC/L4S idea the paper
  /// points to). 0 disables marking.
  sim::Duration ecn_marking_threshold{0};

  // --- wired tail ---
  /// gNB → mobile-core transfer (the capture point ② of Fig. 2).
  sim::Duration gnb_to_core_delay{std::chrono::milliseconds{1}};

  /// Bytes a single UL slot can carry at cell capacity.
  [[nodiscard]] std::uint32_t SlotCapacityBytes() const {
    return static_cast<std::uint32_t>(cell_ul_capacity_bps *
                                      sim::ToSeconds(ul_slot_period) / 8.0);
  }

  /// The private 5G small cell of §2 (defaults above).
  static RanConfig PaperCell() { return RanConfig{}; }

  /// Same cell without proactive grants (every packet waits for a BSR
  /// grant) — the §3.1 ablation.
  static RanConfig PaperCellNoProactive() {
    RanConfig c;
    c.proactive_grant_bytes = 0;
    return c;
  }

  /// FDD-like configuration (§5.1: duplexing strategies differ): an uplink
  /// opportunity every slot, same aggregate capacity.
  static RanConfig FddLikeCell() {
    RanConfig c;
    c.ul_slot_period = c.slot_duration;
    c.proactive_grant_bytes = 500;  // same proactive *rate* (bytes/s)
    return c;
  }
};

}  // namespace athena::ran
