// Competing uplink demand from other mobiles in the cell (§2 runs six
// cross-traffic UEs stepping through 0 / 14 / 16 / 18 Mbps phases). The
// scheduler serves this demand first, shrinking the capacity available to
// the measured UE — the mechanism behind the 40–120 ms uplink jitter of
// Fig. 3.
#pragma once

#include <cstdint>

#include "net/capacity_trace.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace athena::ran {

class CrossTraffic {
 public:
  struct Config {
    net::CapacityTrace demand;    ///< aggregate offered load over time
    double burstiness = 0.25;     ///< lognormal sigma of per-slot demand variation
    /// Slow-timescale modulation: competing flows (TCP ramps, on/off
    /// sources) make the aggregate wander for hundreds of ms at a time,
    /// which is what actually saturates the cell in bursts. A new
    /// mean-preserving lognormal factor is drawn every interval.
    sim::Duration modulation_interval{std::chrono::milliseconds{250}};
    double modulation_sigma = 0.0;  ///< 0 disables slow modulation
  };

  CrossTraffic(Config config, sim::Rng rng) : config_(std::move(config)), rng_(rng) {}

  /// Bytes the cross-traffic UEs want to send in the UL slot at `slot_time`
  /// of length `slot_share` (the UL slot period).
  [[nodiscard]] std::uint32_t DemandBytes(sim::TimePoint slot_time, sim::Duration slot_share);

  [[nodiscard]] const Config& config() const { return config_; }

  /// No cross traffic at all (the idle cell of Fig. 10).
  static CrossTraffic Idle(sim::Rng rng) {
    return CrossTraffic{Config{net::CapacityTrace{0.0}, 0.0}, rng};
  }

 private:
  Config config_;
  sim::Rng rng_;
  double slow_factor_ = 1.0;
  sim::TimePoint next_modulation_;
};

}  // namespace athena::ran
