#include "ran/grant_policy.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/check.hpp"

namespace athena::ran {

TunableGrantPolicy::TunableGrantPolicy(std::unique_ptr<GrantPolicy> baseline,
                                       std::unique_ptr<GrantPolicy> alternate)
    : baseline_(std::move(baseline)), alternate_(std::move(alternate)) {
  ATHENA_CHECK(baseline_ != nullptr, "TunableGrantPolicy: baseline policy required");
}

GrantPolicy::Decision TunableGrantPolicy::OnUplinkSlot(const SlotInfo& slot) {
  GrantPolicy& active = (use_alternate_ && alternate_) ? *alternate_ : *baseline_;
  Decision d = active.OnUplinkSlot(slot);
  if (d.grant == GrantType::kProactive && proactive_scale_ != 1.0) {
    const double scaled = static_cast<double>(d.tbs_bytes) * proactive_scale_;
    d.tbs_bytes = std::min(static_cast<std::uint32_t>(scaled), slot.available_bytes);
  }
  return d;
}

void TunableGrantPolicy::OnBsrDecoded(sim::TimePoint decoded_at,
                                      std::uint32_t reported_bytes) {
  baseline_->OnBsrDecoded(decoded_at, reported_bytes);
  if (alternate_) alternate_->OnBsrDecoded(decoded_at, reported_bytes);
}

void TunableGrantPolicy::OnTbFilled(sim::TimePoint slot_time, const Decision& grant,
                                    std::uint32_t used_bytes) {
  baseline_->OnTbFilled(slot_time, grant, used_bytes);
  if (alternate_) alternate_->OnTbFilled(slot_time, grant, used_bytes);
}

bool TunableGrantPolicy::set_use_alternate(bool use_alternate) {
  if (use_alternate && !alternate_) return false;
  if (use_alternate_ != use_alternate) ++mode_switches_;
  use_alternate_ = use_alternate;
  return true;
}

double TunableGrantPolicy::set_proactive_scale(double scale) {
  ATHENA_CHECK(std::isfinite(scale) && scale > 0.0,
               "TunableGrantPolicy::set_proactive_scale: scale must be finite and positive");
  proactive_scale_ = std::clamp(scale, kMinProactiveScale, kMaxProactiveScale);
  return proactive_scale_;
}

GrantPolicy::Decision BsrGrantPolicy::OnUplinkSlot(const SlotInfo& slot) {
  // Matured requested grants take the slot's PUSCH; otherwise the standing
  // proactive grant (if configured) does.
  std::uint32_t requested = 0;
  while (!pending_.empty() && pending_.front().usable_from <= slot.slot_time) {
    requested += pending_.front().bytes;
    pending_.pop_front();
  }
  if (requested > 0) {
    const std::uint32_t tbs = std::min(requested, slot.available_bytes);
    // Capacity-clipped remainder stays pending for the next slot (the
    // grant was promised; cross traffic merely delays it).
    const std::uint32_t leftover = requested - tbs;
    if (leftover > 0) {
      pending_.push_front(PendingGrant{slot.slot_time + config_.ul_slot_period, leftover});
    }
    outstanding_ -= tbs;
    return Decision{tbs, GrantType::kRequested};
  }
  const std::uint32_t proactive =
      std::min(config_.proactive_grant_bytes, slot.available_bytes);
  return Decision{proactive, GrantType::kProactive};
}

void BsrGrantPolicy::OnBsrDecoded(sim::TimePoint decoded_at, std::uint32_t reported_bytes) {
  if (reported_bytes <= outstanding_) return;  // demand already covered
  const std::uint32_t grant = reported_bytes - outstanding_;
  outstanding_ += grant;
  // The grant becomes usable one scheduling delay later, aligned up to the
  // uplink slot grid.
  const auto delay_us = config_.bsr_scheduling_delay.count();
  const auto period_us = config_.ul_slot_period.count();
  const auto target = decoded_at.us() + delay_us;
  const auto aligned = ((target + period_us - 1) / period_us) * period_us;
  pending_.push_back(
      PendingGrant{sim::TimePoint{sim::Duration{aligned}}, grant});
}

void BsrGrantPolicy::OnTbFilled(sim::TimePoint, const Decision&, std::uint32_t) {
  // The baseline scheduler learns nothing from utilization — that blind
  // spot is the §3.1 waste finding.
}

std::vector<MultiUeGrantPolicy::Allocation> SharedBsrGrantPolicy::OnUplinkSlot(
    sim::TimePoint slot_time, std::uint64_t slot_index, std::uint32_t available_bytes,
    const std::vector<UeDemand>& demand) {
  std::vector<Allocation> out;
  if (demand.empty() || available_bytes == 0) return out;
  std::uint32_t budget = available_bytes;

  // Pass 1 — matured requested grants, in UE-id order. A grant the budget
  // cannot honour stays pending for the next slot (it was promised; the
  // contention merely delays it — the §3.1 delay, now population-induced).
  std::map<std::uint32_t, Allocation> granted;
  for (const UeDemand& d : demand) {
    if (budget == 0) break;
    auto it = ues_.find(d.ue);
    if (it == ues_.end()) continue;
    UeState& state = it->second;
    std::uint32_t requested = 0;
    while (!state.pending.empty() && state.pending.front().usable_from <= slot_time) {
      requested += state.pending.front().bytes;
      state.pending.pop_front();
    }
    if (requested == 0) continue;
    const std::uint32_t tbs = std::min(requested, budget);
    const std::uint32_t leftover = requested - tbs;
    if (leftover > 0) {
      state.pending.push_front(
          PendingGrant{slot_time + config_.ul_slot_period, leftover});
    }
    state.outstanding -= tbs;
    budget -= tbs;
    granted[d.ue] = Allocation{d.ue, tbs, GrantType::kRequested};
  }

  // Pass 2 — proactive grants, round-robin from a slot-rotated offset so
  // a saturated cell starves no UE permanently. UEs that already hold a
  // requested TB this slot are skipped (one PUSCH per UE per slot).
  if (config_.proactive_grant_bytes > 0) {
    const std::size_t n = demand.size();
    const std::size_t offset = static_cast<std::size_t>(slot_index % n);
    for (std::size_t i = 0; i < n && budget > 0; ++i) {
      const UeDemand& d = demand[(offset + i) % n];
      if (granted.count(d.ue) != 0) continue;
      const std::uint32_t tbs = std::min(config_.proactive_grant_bytes, budget);
      budget -= tbs;
      granted[d.ue] = Allocation{d.ue, tbs, GrantType::kProactive};
    }
  }

  out.reserve(granted.size());
  for (auto& [ue, alloc] : granted) out.push_back(alloc);
  return out;
}

void SharedBsrGrantPolicy::OnBsrDecoded(std::uint32_t ue, sim::TimePoint decoded_at,
                                        std::uint32_t reported_bytes) {
  UeState& state = ues_[ue];
  if (reported_bytes <= state.outstanding) return;  // demand already covered
  const std::uint32_t grant = reported_bytes - state.outstanding;
  state.outstanding += grant;
  const auto delay_us = config_.bsr_scheduling_delay.count();
  const auto period_us = config_.ul_slot_period.count();
  const auto target = decoded_at.us() + delay_us;
  const auto aligned = ((target + period_us - 1) / period_us) * period_us;
  state.pending.push_back(PendingGrant{sim::TimePoint{sim::Duration{aligned}}, grant});
}

void SharedBsrGrantPolicy::OnTbFilled(std::uint32_t, sim::TimePoint, std::uint32_t,
                                      std::uint32_t) {
  // Same learning blind spot as the single-UE baseline.
}

void SharedBsrGrantPolicy::OnUeRemoved(std::uint32_t ue) { ues_.erase(ue); }

}  // namespace athena::ran
