#include "ran/grant_policy.hpp"

#include <algorithm>

namespace athena::ran {

GrantPolicy::Decision BsrGrantPolicy::OnUplinkSlot(const SlotInfo& slot) {
  // Matured requested grants take the slot's PUSCH; otherwise the standing
  // proactive grant (if configured) does.
  std::uint32_t requested = 0;
  while (!pending_.empty() && pending_.front().usable_from <= slot.slot_time) {
    requested += pending_.front().bytes;
    pending_.pop_front();
  }
  if (requested > 0) {
    const std::uint32_t tbs = std::min(requested, slot.available_bytes);
    // Capacity-clipped remainder stays pending for the next slot (the
    // grant was promised; cross traffic merely delays it).
    const std::uint32_t leftover = requested - tbs;
    if (leftover > 0) {
      pending_.push_front(PendingGrant{slot.slot_time + config_.ul_slot_period, leftover});
    }
    outstanding_ -= tbs;
    return Decision{tbs, GrantType::kRequested};
  }
  const std::uint32_t proactive =
      std::min(config_.proactive_grant_bytes, slot.available_bytes);
  return Decision{proactive, GrantType::kProactive};
}

void BsrGrantPolicy::OnBsrDecoded(sim::TimePoint decoded_at, std::uint32_t reported_bytes) {
  if (reported_bytes <= outstanding_) return;  // demand already covered
  const std::uint32_t grant = reported_bytes - outstanding_;
  outstanding_ += grant;
  // The grant becomes usable one scheduling delay later, aligned up to the
  // uplink slot grid.
  const auto delay_us = config_.bsr_scheduling_delay.count();
  const auto period_us = config_.ul_slot_period.count();
  const auto target = decoded_at.us() + delay_us;
  const auto aligned = ((target + period_us - 1) / period_us) * period_us;
  pending_.push_back(
      PendingGrant{sim::TimePoint{sim::Duration{aligned}}, grant});
}

void BsrGrantPolicy::OnTbFilled(sim::TimePoint, const Decision&, std::uint32_t) {
  // The baseline scheduler learns nothing from utilization — that blind
  // spot is the §3.1 waste finding.
}

}  // namespace athena::ran
