#include "ran/multi_ue.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace athena::ran {

MultiUeUplink::MultiUeUplink(sim::Simulator& sim, RanConfig config, std::uint32_t cell_tag,
                             std::unique_ptr<MultiUeGrantPolicy> policy)
    : sim_(sim),
      config_(config),
      policy_(policy ? std::move(policy) : std::make_unique<SharedBsrGrantPolicy>(config)),
      next_tb_id_((static_cast<TbId>(cell_tag) << 40) + 1) {}

void MultiUeUplink::Start() {
  if (started_) return;
  started_ = true;
  const auto period = config_.ul_slot_period.count();
  const auto now = sim_.Now().us();
  const auto next = ((now / period) + 1) * period;
  slot_timer_ =
      sim_.ScheduleAt(sim::TimePoint{sim::Duration{next}}, [this] { OnUplinkSlot(); });
}

void MultiUeUplink::Stop() {
  if (!started_) return;
  started_ = false;
  sim_.Cancel(slot_timer_);
}

void MultiUeUplink::AttachUe(std::uint32_t ue, UeRadioState state) {
  assert(ues_.count(ue) == 0 && "UE already attached");
  ues_.emplace(ue, std::move(state));
}

UeRadioState MultiUeUplink::DetachUe(std::uint32_t ue) {
  auto it = ues_.find(ue);
  assert(it != ues_.end() && "detach of unattached UE");
  UeRadioState state = std::move(it->second);
  ues_.erase(it);
  policy_->OnUeRemoved(ue);

  // Drop the UE's pending HARQ retransmissions: the source gNB's soft
  // buffers do not follow the UE (RLC-UM). Each dropped chain's
  // not-yet-delivered packets become handover loss.
  for (auto& [slot_us, due] : pending_rtx_) {
    auto first_removed = std::stable_partition(
        due.begin(), due.end(), [ue](const Tb& tb) { return tb.ue != ue; });
    for (auto tb_it = first_removed; tb_it != due.end(); ++tb_it) {
      ++counters_.tb_dropped_chains;
      for (const auto& seg : tb_it->segments) {
        auto flight = state.in_flight.find(seg.packet_id);
        if (flight == state.in_flight.end()) continue;
        state.in_flight.erase(flight);
        ++state.lost;
        ++counters_.packets_lost;
      }
    }
    due.erase(first_removed, due.end());
  }
  return state;
}

std::vector<std::uint32_t> MultiUeUplink::AttachedUes() const {
  std::vector<std::uint32_t> out;
  out.reserve(ues_.size());
  for (const auto& [ue, state] : ues_) out.push_back(ue);
  return out;
}

const UeRadioState* MultiUeUplink::FindUe(std::uint32_t ue) const {
  const auto it = ues_.find(ue);
  return it == ues_.end() ? nullptr : &it->second;
}

void MultiUeUplink::SendFromUe(std::uint32_t ue, const net::Packet& p) {
  auto it = ues_.find(ue);
  assert(it != ues_.end() && "traffic offered for unattached UE");
  UeRadioState& state = it->second;
  state.queue.push_back(UeQueuedPacket{p, p.size_bytes, sim_.Now()});
  state.in_flight.emplace(p.id, UeDeliveryState{p, p.size_bytes, sim_.Now()});
  ++state.offered;
}

std::uint32_t MultiUeUplink::EligibleBufferBytes(const UeRadioState& ue_state,
                                                sim::TimePoint slot_time,
                                                sim::Duration processing_delay) {
  std::uint32_t bytes = 0;
  for (const auto& q : ue_state.queue) {
    if (q.enqueued_at + processing_delay <= slot_time) bytes += q.remaining;
  }
  return bytes;
}

void MultiUeUplink::OnUplinkSlot() {
  const sim::TimePoint slot_time = sim_.Now();
  ++slot_index_;

  // Every attached UE's radio advances, outage or not.
  for (auto& [ue, state] : ues_) state.channel.Tick(config_.ul_slot_period);

  if (obs::trace_enabled()) {
    std::uint32_t cell_buffer = 0;
    for (const auto& [ue, state] : ues_) cell_buffer += state.TotalBufferBytes();
    obs::TraceCounter(obs::Layer::kRan, obs::names::kRanRlcBytes, slot_time,
                      static_cast<double>(cell_buffer));
  }

  // A cell-wide outage behaves like RanUplink's handover slots: nothing
  // transmits, pending retransmissions slide forward, demand queues.
  if (InOutage(slot_time)) {
    const auto due = pending_rtx_.find(slot_time.us());
    if (due != pending_rtx_.end()) {
      auto& next = pending_rtx_[(slot_time + config_.ul_slot_period).us()];
      for (auto& tb : due->second) next.push_back(std::move(tb));
      pending_rtx_.erase(due);
    }
    slot_timer_ = sim_.ScheduleAfter(config_.ul_slot_period, [this] { OnUplinkSlot(); });
    return;
  }

  std::uint32_t available = config_.SlotCapacityBytes();

  // HARQ retransmissions preempt new data.
  const auto rtx_it = pending_rtx_.find(slot_time.us());
  if (rtx_it != pending_rtx_.end()) {
    std::vector<Tb> due = std::move(rtx_it->second);
    pending_rtx_.erase(rtx_it);
    for (Tb& tb : due) {
      available = available > tb.tbs ? available - tb.tbs : 0;
      Transmit(std::move(tb), slot_time);
    }
  }

  // Divide what is left among the population.
  std::vector<MultiUeGrantPolicy::UeDemand> demand;
  demand.reserve(ues_.size());
  for (const auto& [ue, state] : ues_) {
    demand.push_back(MultiUeGrantPolicy::UeDemand{
        ue, EligibleBufferBytes(state, slot_time, config_.ue_processing_delay)});
  }
  const auto allocations =
      policy_->OnUplinkSlot(slot_time, slot_index_, available, demand);

  // Transmit in UE-id order (the policy contract), then let UEs that got
  // no PUSCH surface their demand over the control channel (SR path).
  std::uint64_t granted_mask_hint = 0;  // fast path for small populations
  std::vector<std::uint32_t> granted;
  granted.reserve(allocations.size());
  for (const auto& alloc : allocations) {
    auto it = ues_.find(alloc.ue);
    if (it == ues_.end() || alloc.tbs_bytes == 0) continue;
    TransmitNewTb(it->second, alloc, slot_time);
    granted.push_back(alloc.ue);
    if (alloc.ue < 64) granted_mask_hint |= (1ULL << alloc.ue);
  }
  for (auto& [ue, state] : ues_) {
    const bool got_pusch =
        ue < 64 ? (granted_mask_hint & (1ULL << ue)) != 0
                : std::binary_search(granted.begin(), granted.end(), ue);
    if (got_pusch) continue;
    const std::uint32_t buffered = state.TotalBufferBytes();
    if (buffered == 0) continue;
    ++counters_.bsr_sent;
    policy_->OnBsrDecoded(ue, slot_time, buffered);
  }

  slot_timer_ = sim_.ScheduleAfter(config_.ul_slot_period, [this] { OnUplinkSlot(); });
}

void MultiUeUplink::TransmitNewTb(UeRadioState& ue_state,
                                  const MultiUeGrantPolicy::Allocation& alloc,
                                  sim::TimePoint slot_time) {
  Tb tb;
  tb.ue = alloc.ue;
  tb.id = next_tb_id_++;
  tb.chain_id = tb.id;
  tb.grant = alloc.grant;
  tb.tbs = alloc.tbs_bytes;
  tb.round = 0;
  tb.first_tx_slot = slot_time;

  // Fill from this UE's RLC buffer, FIFO with segmentation, honouring the
  // L2 processing-delay eligibility — identical to RanUplink.
  std::uint32_t room = tb.tbs;
  while (room > 0 && !ue_state.queue.empty()) {
    UeQueuedPacket& head = ue_state.queue.front();
    if (head.enqueued_at + config_.ue_processing_delay > slot_time) break;
    const std::uint32_t take = std::min(room, head.remaining);
    head.remaining -= take;
    room -= take;
    tb.segments.push_back(Segment{head.pkt.id, take, head.remaining == 0});
    if (config_.ecn_marking_threshold.count() > 0 &&
        slot_time - head.enqueued_at > config_.ecn_marking_threshold) {
      const auto flight = ue_state.in_flight.find(head.pkt.id);
      if (flight != ue_state.in_flight.end()) flight->second.pkt.ecn_ce = true;
      ++counters_.ecn_marked;
    }
    if (head.remaining == 0) ue_state.queue.pop_front();
  }
  tb.used = tb.tbs - room;

  const std::uint32_t remaining = ue_state.TotalBufferBytes();
  if (remaining > 0) {
    tb.has_bsr = true;
    tb.bsr_bytes = remaining;
    ++counters_.bsr_sent;
  }

  ++counters_.tb_new;
  counters_.granted_bytes += tb.tbs;
  counters_.used_bytes += tb.used;
  if (tb.used < tb.tbs) {
    const std::uint32_t waste = tb.tbs - tb.used;
    if (tb.grant == GrantType::kRequested) {
      counters_.wasted_requested_bytes += waste;
    } else {
      counters_.wasted_proactive_bytes += waste;
    }
  }

  Transmit(std::move(tb), slot_time);
}

void MultiUeUplink::Transmit(Tb tb, sim::TimePoint slot_time) {
  auto ue_it = ues_.find(tb.ue);
  assert(ue_it != ues_.end() && "transmission for detached UE");
  UeRadioState& ue_state = ue_it->second;

  ++counters_.tb_transmissions;
  static thread_local obs::CachedCounter counter_tb_transmissions{"ran.tb_transmissions"};
  counter_tb_transmissions.Inc();
  if (tb.round > 0) {
    ++counters_.tb_rtx;
    if (tb.used == 0) ++counters_.empty_tb_rtx;
  }
  if (tb.used == 0) ++counters_.empty_tb_transmissions;

  const bool crc_ok = ue_state.channel.SampleCrcOk(tb.round);
  RecordTelemetry(ue_state, tb, slot_time, crc_ok);

  if (crc_ok) {
    OnTbDecoded(tb, slot_time);
    return;
  }

  ++counters_.tb_failed;
  if (tb.round + 1 >= config_.max_harq_rounds) {
    OnChainDropped(tb, slot_time);
    return;
  }
  Tb rtx = std::move(tb);
  ++rtx.round;
  const auto period = config_.ul_slot_period.count();
  const auto target = (slot_time + config_.rtx_delay).us();
  const auto aligned = ((target + period - 1) / period) * period;
  pending_rtx_[aligned].push_back(std::move(rtx));
}

void MultiUeUplink::OnTbDecoded(const Tb& tb, sim::TimePoint slot_time) {
  auto ue_it = ues_.find(tb.ue);
  if (ue_it == ues_.end()) return;  // detached between rtx rounds (handover)
  UeRadioState& ue_state = ue_it->second;

  for (const auto& seg : tb.segments) {
    auto it = ue_state.in_flight.find(seg.packet_id);
    if (it == ue_state.in_flight.end()) continue;  // aborted by a dropped chain
    UeDeliveryState& state = it->second;
    assert(state.undelivered >= seg.bytes);
    state.undelivered -= seg.bytes;
    if (state.undelivered == 0) {
      const net::Packet pkt = state.pkt;
      ue_state.in_flight.erase(it);
      ++ue_state.delivered;
      ++counters_.packets_delivered;
      if (deliver_) deliver_(tb.ue, pkt, slot_time);
    }
  }

  if (tb.has_bsr) policy_->OnBsrDecoded(tb.ue, slot_time, tb.bsr_bytes);
  policy_->OnTbFilled(tb.ue, tb.first_tx_slot, tb.tbs, tb.used);
}

void MultiUeUplink::OnChainDropped(const Tb& tb, sim::TimePoint slot_time) {
  ++counters_.tb_dropped_chains;
  auto ue_it = ues_.find(tb.ue);
  if (ue_it == ues_.end()) return;
  UeRadioState& ue_state = ue_it->second;
  obs::TraceAsyncSpan(obs::Layer::kRan, obs::names::kHarqChain, tb.chain_id, tb.first_tx_slot,
                      slot_time,
                      {{"rounds", static_cast<double>(tb.round)}, {"dropped", 1.0}});
  for (const auto& seg : tb.segments) {
    auto it = ue_state.in_flight.find(seg.packet_id);
    if (it == ue_state.in_flight.end()) continue;
    ue_state.in_flight.erase(it);
    ++ue_state.lost;
    ++counters_.packets_lost;
  }
}

void MultiUeUplink::RecordTelemetry(UeRadioState& ue_state, const Tb& tb,
                                    sim::TimePoint slot_time, bool crc_ok) {
  ue_state.telemetry.push_back(TbRecord{
      .tb_id = tb.round == 0 ? tb.id : next_tb_id_++,
      .chain_id = tb.chain_id,
      .slot_time = slot_time,
      .grant = tb.grant,
      .tbs_bytes = tb.tbs,
      .used_bytes = tb.used,
      .harq_round = tb.round,
      .crc_ok = crc_ok,
  });
  if (obs::trace_enabled()) {
    obs::TraceInstant(obs::Layer::kRan,
                      tb.round == 0 ? obs::names::kTbTx : obs::names::kTbRtx, slot_time,
                      {{"tbs", static_cast<double>(tb.tbs)},
                       {"used", static_cast<double>(tb.used)},
                       {"round", static_cast<double>(tb.round)},
                       {"crc_ok", crc_ok ? 1.0 : 0.0},
                       {"ue", static_cast<double>(tb.ue)}});
  }
}

}  // namespace athena::ran
