#include "ran/downlink_ran.hpp"

#include <algorithm>
#include <cassert>

namespace athena::ran {

namespace {
/// DL slots per UL period in the paper's TDD pattern (Fig. 6: downlink
/// slots occur four times as frequently as uplink slots).
constexpr std::int64_t kDlSlotsPerUlPeriod = 4;
}  // namespace

RanDownlink::RanDownlink(sim::Simulator& sim, RanConfig config, ChannelModel channel,
                         CrossTraffic cross_traffic)
    : sim_(sim),
      config_(config),
      slot_period_(sim::Duration{config.ul_slot_period.count() / kDlSlotsPerUlPeriod}),
      channel_(channel),
      cross_traffic_(std::move(cross_traffic)) {
  assert(slot_period_.count() > 0);
}

void RanDownlink::Start() {
  if (started_) return;
  started_ = true;
  const auto period = slot_period_.count();
  const auto next = ((sim_.Now().us() / period) + 1) * period;
  slot_timer_ = sim_.ScheduleAt(sim::TimePoint{sim::Duration{next}}, [this] { OnSlot(); });
}

void RanDownlink::Stop() {
  if (!started_) return;
  started_ = false;
  sim_.Cancel(slot_timer_);
}

void RanDownlink::SendFromCore(const net::Packet& p) {
  assert(started_ && "offer traffic only after Start()");
  queue_.push_back(Queued{p, p.size_bytes});
  in_flight_.emplace(p.id, std::make_pair(p, p.size_bytes));
}

std::uint32_t RanDownlink::queue_bytes() const {
  std::uint32_t bytes = 0;
  for (const auto& q : queue_) bytes += q.remaining;
  return bytes;
}

void RanDownlink::OnSlot() {
  const sim::TimePoint slot_time = sim_.Now();
  channel_.Tick(slot_period_);

  // Handover: the UE is unreachable; the gNB buffers and HARQ slides.
  if (channel_.in_handover()) {
    const auto due = pending_rtx_.find(slot_time.us());
    if (due != pending_rtx_.end()) {
      auto& next = pending_rtx_[(slot_time + slot_period_).us()];
      for (auto& tb : due->second) next.push_back(std::move(tb));
      pending_rtx_.erase(due);
    }
    slot_timer_ = sim_.ScheduleAfter(slot_period_, [this] { OnSlot(); });
    return;
  }

  // Per-DL-slot capacity: the same aggregate cell rate, on a denser grid.
  const auto slot_capacity = static_cast<std::uint32_t>(
      config_.cell_ul_capacity_bps * sim::ToSeconds(slot_period_) / 8.0);
  const std::uint32_t cross =
      std::min(cross_traffic_.DemandBytes(slot_time, slot_period_), slot_capacity);
  std::uint32_t available = slot_capacity - cross;

  // HARQ retransmissions first.
  const auto rtx_it = pending_rtx_.find(slot_time.us());
  if (rtx_it != pending_rtx_.end()) {
    std::vector<Tb> due = std::move(rtx_it->second);
    pending_rtx_.erase(rtx_it);
    for (Tb& tb : due) {
      available = available > tb.tbs ? available - tb.tbs : 0;
      Transmit(std::move(tb), slot_time);
    }
  }

  // New data: the gNB knows its own queue exactly — it grants itself the
  // smaller of the backlog and the slot budget. No BSR cycle, no waste.
  const std::uint32_t backlog = queue_bytes();
  const std::uint32_t tbs = std::min(backlog, available);
  if (tbs > 0) {
    Tb tb;
    tb.id = next_tb_id_++;
    tb.chain_id = tb.id;
    tb.tbs = tbs;
    std::uint32_t room = tbs;
    while (room > 0 && !queue_.empty()) {
      Queued& head = queue_.front();
      const std::uint32_t take = std::min(room, head.remaining);
      head.remaining -= take;
      room -= take;
      tb.segments.emplace_back(head.pkt.id, take);
      if (head.remaining == 0) queue_.pop_front();
    }
    tb.used = tbs - room;
    ++counters_.tb_new;
    counters_.granted_bytes += tb.tbs;
    counters_.used_bytes += tb.used;
    Transmit(std::move(tb), slot_time);
  }

  slot_timer_ = sim_.ScheduleAfter(slot_period_, [this] { OnSlot(); });
}

void RanDownlink::Transmit(Tb tb, sim::TimePoint slot_time) {
  ++counters_.tb_transmissions;
  if (tb.round > 0) ++counters_.tb_rtx;

  const bool crc_ok = channel_.SampleCrcOk(tb.round);
  telemetry_.push_back(TbRecord{
      .tb_id = tb.round == 0 ? tb.id : next_tb_id_++,
      .chain_id = tb.chain_id,
      .slot_time = slot_time,
      .grant = GrantType::kRequested,  // self-scheduled
      .tbs_bytes = tb.tbs,
      .used_bytes = tb.used,
      .harq_round = tb.round,
      .crc_ok = crc_ok,
  });

  if (crc_ok) {
    OnTbDecoded(tb);
    return;
  }
  ++counters_.tb_failed;
  if (tb.round + 1 >= config_.max_harq_rounds) {
    ++counters_.tb_dropped_chains;
    for (const auto& [id, bytes] : tb.segments) {
      if (in_flight_.erase(id) > 0) ++counters_.packets_lost;
    }
    return;
  }
  Tb rtx = std::move(tb);
  ++rtx.round;
  const auto period = slot_period_.count();
  const auto target = (slot_time + config_.rtx_delay).us();
  const auto aligned = ((target + period - 1) / period) * period;
  pending_rtx_[aligned].push_back(std::move(rtx));
}

void RanDownlink::OnTbDecoded(const Tb& tb) {
  for (const auto& [id, bytes] : tb.segments) {
    auto it = in_flight_.find(id);
    if (it == in_flight_.end()) continue;
    auto& [pkt, remaining] = it->second;
    assert(remaining >= bytes);
    remaining -= bytes;
    if (remaining == 0) {
      const net::Packet out = pkt;
      in_flight_.erase(it);
      ++counters_.packets_delivered;
      // UE-side decode/delivery pipeline, symmetric with gnb_to_core.
      sim_.ScheduleAfter(config_.gnb_to_core_delay, [this, out] {
        if (ue_sink_) ue_sink_(out);
      });
    }
  }
}

}  // namespace athena::ran
