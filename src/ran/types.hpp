// Telemetry record types: what a PHY-layer control-channel sniffer
// (NG-Scope in the paper) exposes, and the ground-truth records the
// simulator additionally keeps so tests can validate Athena's correlation
// without the correlator ever reading them.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace athena::ran {

enum class GrantType : std::uint8_t {
  kProactive,  ///< pre-allocated, no BSR involved
  kRequested,  ///< allocated in response to a BSR
};

[[nodiscard]] const char* ToString(GrantType g);

using TbId = std::uint64_t;

/// One transport-block *transmission* as seen on the control channel: each
/// HARQ round of the same TB yields its own record, linked by `chain_id`.
/// This is the schema the Athena correlator consumes (DESIGN.md §1:
/// NG-Scope substitution).
struct TbRecord {
  TbId tb_id = 0;        ///< unique per transmission
  TbId chain_id = 0;     ///< tb_id of the chain's first transmission
  sim::TimePoint slot_time;
  GrantType grant = GrantType::kProactive;
  std::uint32_t tbs_bytes = 0;   ///< granted transport-block size
  std::uint32_t used_bytes = 0;  ///< RLC payload actually carried (rest is padding)
  std::uint8_t harq_round = 0;   ///< 0 = first transmission
  bool crc_ok = true;            ///< decode outcome of this transmission
};

/// Ground truth: which packet bytes a TB chain carried. Tests compare the
/// correlator's inferred mapping against this; the correlator itself must
/// work only from TbRecord + packet captures (matching by time and size),
/// exactly like the real system.
struct SegmentTruth {
  net::PacketId packet_id = 0;
  std::uint32_t bytes = 0;
  bool last_segment = false;
};

struct TbTruth {
  TbId chain_id = 0;
  sim::TimePoint first_tx_slot;
  sim::TimePoint delivered_at;  ///< decode success time; 0-equivalent if dropped
  bool dropped = false;
  std::vector<SegmentTruth> segments;
};

/// Aggregate RAN counters for efficiency reporting (over-granting, empty-TB
/// retransmissions — the §3 waste findings).
struct RanCounters {
  std::uint64_t tb_transmissions = 0;
  std::uint64_t tb_new = 0;
  std::uint64_t tb_rtx = 0;
  std::uint64_t tb_failed = 0;
  std::uint64_t tb_dropped_chains = 0;
  std::uint64_t empty_tb_transmissions = 0;  ///< fully padded TBs
  std::uint64_t empty_tb_rtx = 0;            ///< the paper's "retransmit empty TBs" waste
  std::uint64_t granted_bytes = 0;
  std::uint64_t used_bytes = 0;
  std::uint64_t wasted_requested_bytes = 0;  ///< over-granting (§3.1)
  std::uint64_t wasted_proactive_bytes = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t bsr_sent = 0;
  std::uint64_t ecn_marked = 0;  ///< L4S-style marks applied by the modem

  [[nodiscard]] double GrantUtilization() const {
    return granted_bytes ? static_cast<double>(used_bytes) / static_cast<double>(granted_bytes)
                         : 0.0;
  }
};

}  // namespace athena::ran
