// The 5G downlink: deliberately simple. §2's takeaway (c): "the WAN, and
// importantly, the 5G RAN downlink provide low and stable delay" — DL
// slots occur 4× as often as UL slots, and the gNB needs no grant cycle to
// transmit. We model slot alignment on the dense DL grid plus a fixed
// RAN-processing delay.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "ran/config.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace athena::ran {

class DownlinkPath {
 public:
  struct Config {
    /// Fixed core→gNB→UE processing and transmission time.
    sim::Duration base_delay{std::chrono::milliseconds{4}};
    /// DL slot spacing: a packet waits at most this long for its slot.
    sim::Duration dl_slot_spacing{std::chrono::microseconds{625}};
    double loss_probability = 0.0;
  };

  DownlinkPath(sim::Simulator& sim, Config config, sim::Rng rng)
      : sim_(sim), config_(config), rng_(rng) {}

  /// Convenience: derives DL slot spacing from a RAN config (4 DL slots
  /// per UL period in the paper's TDD pattern).
  static DownlinkPath ForCell(sim::Simulator& sim, const RanConfig& cell, sim::Rng rng) {
    Config c;
    c.dl_slot_spacing = sim::Duration{cell.ul_slot_period.count() / 4};
    return DownlinkPath{sim, c, rng};
  }

  void Send(const net::Packet& p);

  void set_ue_sink(net::PacketHandler sink) { sink_ = std::move(sink); }
  [[nodiscard]] net::PacketHandler AsHandler() {
    return [this](const net::Packet& p) { Send(p); };
  }

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  sim::Simulator& sim_;
  Config config_;
  sim::Rng rng_;
  net::PacketHandler sink_;
  sim::TimePoint last_delivery_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace athena::ran
