#include "ran/channel.hpp"

#include <algorithm>
#include <cmath>

namespace athena::ran {

void ChannelModel::Tick(sim::Duration slot) {
  if (config_.bad_state_bler > 0.0) {
    if (bad_) {
      if (rng_.Bernoulli(config_.p_bad_to_good)) bad_ = false;
    } else {
      if (rng_.Bernoulli(config_.p_good_to_bad)) bad_ = true;
    }
  }

  if (config_.handover_interval.count() > 0) {
    if (!handover_armed_) {
      handover_armed_ = true;
      until_handover_ = rng_.UniformDuration(
          sim::Duration{config_.handover_interval.count() * 3 / 4},
          sim::Duration{config_.handover_interval.count() * 5 / 4});
    }
    if (handover_remaining_.count() > 0) {
      handover_remaining_ -= slot;
    } else if ((until_handover_ -= slot).count() <= 0) {
      handover_remaining_ = config_.handover_duration;
      handover_armed_ = false;  // schedule the next crossing afterwards
      ++handovers_;
    }
  }
}

double ChannelModel::CurrentBler(std::uint8_t harq_round) const {
  if (in_handover()) return 0.98;  // nothing decodes at the cell edge
  const double base = bad_ ? config_.bad_state_bler : config_.base_bler;
  const double factor = std::pow(config_.rtx_bler_factor, static_cast<double>(harq_round));
  return std::clamp(base * factor, 0.0, 1.0);
}

bool ChannelModel::SampleCrcOk(std::uint8_t harq_round) {
  return !rng_.Bernoulli(CurrentBler(harq_round));
}

}  // namespace athena::ran
