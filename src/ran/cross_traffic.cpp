#include "ran/cross_traffic.hpp"

#include <cmath>

namespace athena::ran {

std::uint32_t CrossTraffic::DemandBytes(sim::TimePoint slot_time, sim::Duration slot_share) {
  const double bps = config_.demand.At(slot_time);
  if (bps <= 0.0) return 0;
  if (config_.modulation_sigma > 0.0 && slot_time >= next_modulation_) {
    const double s = config_.modulation_sigma;
    slow_factor_ = rng_.LogNormal(-s * s / 2.0, s);  // mean-preserving
    next_modulation_ = slot_time + config_.modulation_interval;
  }
  double bytes = bps * slow_factor_ * sim::ToSeconds(slot_share) / 8.0;
  if (config_.burstiness > 0.0) {
    const double sigma = config_.burstiness;
    // Mean-preserving lognormal per-slot variation.
    bytes *= rng_.LogNormal(-sigma * sigma / 2.0, sigma);
  }
  return static_cast<std::uint32_t>(bytes);
}

}  // namespace athena::ran
