#include "ran/uplink.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace athena::ran {

RanUplink::RanUplink(sim::Simulator& sim, RanConfig config, ChannelModel channel,
                     CrossTraffic cross_traffic, std::unique_ptr<GrantPolicy> policy)
    : sim_(sim),
      config_(config),
      channel_(channel),
      cross_traffic_(std::move(cross_traffic)),
      policy_(policy ? std::move(policy) : std::make_unique<BsrGrantPolicy>(config)) {}

void RanUplink::Start() {
  if (started_) return;
  started_ = true;
  // Align the first slot to the UL grid (slot 0 lives at the epoch).
  const auto period = config_.ul_slot_period.count();
  const auto now = sim_.Now().us();
  const auto next = ((now / period) + 1) * period;
  slot_timer_ =
      sim_.ScheduleAt(sim::TimePoint{sim::Duration{next}}, [this] { OnUplinkSlot(); });
}

void RanUplink::Stop() {
  if (!started_) return;
  started_ = false;
  sim_.Cancel(slot_timer_);
}

void RanUplink::SendFromUe(const net::Packet& p) {
  assert(started_ && "offer traffic only after Start()");
  queue_.push_back(QueuedPacket{p, p.size_bytes, sim_.Now()});
  in_flight_.emplace(p.id, DeliveryState{p, p.size_bytes, sim_.Now()});
}

std::uint32_t RanUplink::EligibleBufferBytes(sim::TimePoint slot_time) const {
  std::uint32_t bytes = 0;
  for (const auto& q : queue_) {
    if (q.enqueued_at + config_.ue_processing_delay <= slot_time) bytes += q.remaining;
  }
  return bytes;
}

std::uint32_t RanUplink::TotalBufferBytes() const {
  std::uint32_t bytes = 0;
  for (const auto& q : queue_) bytes += q.remaining;
  return bytes;
}

std::uint32_t RanUplink::buffer_bytes() const { return TotalBufferBytes(); }

void RanUplink::OnUplinkSlot() {
  const sim::TimePoint slot_time = sim_.Now();
  channel_.Tick(config_.ul_slot_period);
  if (obs::trace_enabled()) {
    obs::TraceCounter(obs::Layer::kRan, obs::names::kRanRlcBytes, slot_time,
                      static_cast<double>(TotalBufferBytes()));
  }

  // During a handover the UE has no serving cell: nothing transmits and
  // pending HARQ retransmissions slide to the next slot. Everything else
  // queues — the source of the seconds-scale delay tail under mobility.
  if (channel_.in_handover()) {
    const auto due = pending_rtx_.find(slot_time.us());
    if (due != pending_rtx_.end()) {
      auto& next = pending_rtx_[(slot_time + config_.ul_slot_period).us()];
      for (auto& tb : due->second) next.push_back(std::move(tb));
      pending_rtx_.erase(due);
    }
    slot_timer_ = sim_.ScheduleAfter(config_.ul_slot_period, [this] { OnUplinkSlot(); });
    return;
  }

  // Capacity budget for this slot: cell capacity minus competing UEs.
  const std::uint32_t slot_capacity = config_.SlotCapacityBytes();
  const std::uint32_t cross =
      std::min(cross_traffic_.DemandBytes(slot_time, config_.ul_slot_period), slot_capacity);
  std::uint32_t available = slot_capacity - cross;

  // HARQ retransmissions preempt new data (they reuse their original
  // allocation, so they always fit; clamp the remaining budget).
  const auto rtx_it = pending_rtx_.find(slot_time.us());
  if (rtx_it != pending_rtx_.end()) {
    std::vector<Tb> due = std::move(rtx_it->second);
    pending_rtx_.erase(rtx_it);
    for (Tb& tb : due) {
      available = available > tb.tbs ? available - tb.tbs : 0;
      Transmit(std::move(tb), slot_time);
    }
  }

  // New-data TB, sized by the grant policy.
  const GrantPolicy::Decision grant =
      policy_->OnUplinkSlot(GrantPolicy::SlotInfo{slot_time, available});
  if (grant.tbs_bytes > 0) {
    TransmitNewTb(grant, slot_time);
  } else if (TotalBufferBytes() > 0) {
    // No PUSCH this slot: demand travels via a scheduling request on the
    // control channel (robust, not subject to data CRC).
    ++counters_.bsr_sent;
    policy_->OnBsrDecoded(slot_time, TotalBufferBytes());
  }

  slot_timer_ = sim_.ScheduleAfter(config_.ul_slot_period, [this] { OnUplinkSlot(); });
}

void RanUplink::TransmitNewTb(const GrantPolicy::Decision& grant, sim::TimePoint slot_time) {
  Tb tb;
  tb.id = next_tb_id_++;
  tb.chain_id = tb.id;
  tb.grant = grant.grant;
  tb.tbs = grant.tbs_bytes;
  tb.round = 0;
  tb.first_tx_slot = slot_time;

  // Fill from the RLC buffer: packets that reached the modem early enough
  // for this slot, in FIFO order, with segmentation.
  std::uint32_t room = tb.tbs;
  while (room > 0 && !queue_.empty()) {
    QueuedPacket& head = queue_.front();
    if (head.enqueued_at + config_.ue_processing_delay > slot_time) break;
    const std::uint32_t take = std::min(room, head.remaining);
    head.remaining -= take;
    room -= take;
    tb.segments.push_back(Segment{head.pkt.id, take, head.remaining == 0});
    if (config_.ecn_marking_threshold.count() > 0 &&
        slot_time - head.enqueued_at > config_.ecn_marking_threshold) {
      const auto flight = in_flight_.find(head.pkt.id);
      if (flight != in_flight_.end()) flight->second.pkt.ecn_ce = true;
      ++counters_.ecn_marked;
    }
    if (head.remaining == 0) queue_.pop_front();
  }
  tb.used = tb.tbs - room;

  // Piggy-backed BSR: reports the buffer left *after* this fill; decoded
  // by the gNB only if (a round of) the TB decodes.
  const std::uint32_t remaining = TotalBufferBytes();
  if (remaining > 0) {
    tb.has_bsr = true;
    tb.bsr_bytes = remaining;
    ++counters_.bsr_sent;
  }

  ++counters_.tb_new;
  counters_.granted_bytes += tb.tbs;
  counters_.used_bytes += tb.used;
  if (tb.used < tb.tbs) {
    const std::uint32_t waste = tb.tbs - tb.used;
    if (tb.grant == GrantType::kRequested) {
      counters_.wasted_requested_bytes += waste;
    } else {
      counters_.wasted_proactive_bytes += waste;
    }
  }

  truth_index_[tb.chain_id] = truth_.size();
  TbTruth truth;
  truth.chain_id = tb.chain_id;
  truth.first_tx_slot = slot_time;
  for (const auto& seg : tb.segments) {
    truth.segments.push_back(SegmentTruth{seg.packet_id, seg.bytes, seg.last});
  }
  truth_.push_back(std::move(truth));

  Transmit(std::move(tb), slot_time);
}

void RanUplink::Transmit(Tb tb, sim::TimePoint slot_time) {
  ++counters_.tb_transmissions;
  static thread_local obs::CachedCounter counter_tb_transmissions{"ran.tb_transmissions"};
  counter_tb_transmissions.Inc();
  if (tb.round > 0) {
    ++counters_.tb_rtx;
    static thread_local obs::CachedCounter counter_tb_rtx{"ran.tb_rtx"};
    counter_tb_rtx.Inc();
    if (tb.used == 0) ++counters_.empty_tb_rtx;
  }
  if (tb.used == 0) ++counters_.empty_tb_transmissions;

  const bool crc_ok = channel_.SampleCrcOk(tb.round);
  RecordTelemetry(tb, slot_time, crc_ok);

  if (crc_ok) {
    OnTbDecoded(tb, slot_time);
    return;
  }

  ++counters_.tb_failed;
  if (tb.round + 1 >= config_.max_harq_rounds) {
    OnChainDropped(tb, slot_time);
    return;
  }
  // The gNB NACKs; the UE retransmits one rtx_delay later. The base
  // station requires this even of empty TBs (§3.2's waste observation).
  Tb rtx = std::move(tb);
  ++rtx.round;
  // Align the retransmission to the UL slot grid (rtx_delay is a grid
  // multiple in the paper's cell, but arbitrary configs must not lose TBs).
  const auto period = config_.ul_slot_period.count();
  const auto target = (slot_time + config_.rtx_delay).us();
  const auto aligned = ((target + period - 1) / period) * period;
  pending_rtx_[aligned].push_back(std::move(rtx));
}

void RanUplink::OnTbDecoded(const Tb& tb, sim::TimePoint slot_time) {
  // Segments land; packets whose bytes are now all delivered move to the
  // core after the gNB→core transfer delay.
  for (const auto& seg : tb.segments) {
    auto it = in_flight_.find(seg.packet_id);
    if (it == in_flight_.end()) continue;  // packet aborted by a dropped chain
    DeliveryState& state = it->second;
    assert(state.undelivered >= seg.bytes);
    state.undelivered -= seg.bytes;
    if (state.undelivered == 0) {
      const net::Packet pkt = state.pkt;
      const sim::TimePoint enqueued_at = state.enqueued_at;
      in_flight_.erase(it);
      ++counters_.packets_delivered;
      static thread_local obs::CachedCounter counter_packets_delivered{"ran.packets_delivered"};
      counter_packets_delivered.Inc();
      sim_.ScheduleAfter(config_.gnb_to_core_delay, [this, pkt, enqueued_at] {
        obs::TraceAsyncSpan(obs::Layer::kRan, obs::names::kRanTransit, pkt.id, enqueued_at,
                            sim_.Now(), {{"bytes", static_cast<double>(pkt.size_bytes)}});
        if (core_sink_) core_sink_(pkt);
      });
    }
  }

  if (tb.round > 0) {
    // The HARQ chain needed retransmissions: its whole first-tx → decode
    // life is the "rtx inflation" the correlator will later blame.
    obs::TraceAsyncSpan(obs::Layer::kRan, obs::names::kHarqChain, tb.chain_id, tb.first_tx_slot,
                        slot_time,
                        {{"rounds", static_cast<double>(tb.round)},
                         {"used_bytes", static_cast<double>(tb.used)}});
  }

  if (tb.has_bsr) policy_->OnBsrDecoded(slot_time, tb.bsr_bytes);
  policy_->OnTbFilled(tb.first_tx_slot,
                      GrantPolicy::Decision{tb.tbs, tb.grant}, tb.used);

  auto truth_it = truth_index_.find(tb.chain_id);
  if (truth_it != truth_index_.end()) {
    truth_[truth_it->second].delivered_at = slot_time;
  }
}

void RanUplink::OnChainDropped(const Tb& tb, sim::TimePoint slot_time) {
  ++counters_.tb_dropped_chains;
  obs::TraceAsyncSpan(obs::Layer::kRan, obs::names::kHarqChain, tb.chain_id, tb.first_tx_slot,
                      slot_time,
                      {{"rounds", static_cast<double>(tb.round)}, {"dropped", 1.0}});
  for (const auto& seg : tb.segments) {
    auto it = in_flight_.find(seg.packet_id);
    if (it == in_flight_.end()) continue;
    in_flight_.erase(it);
    ++counters_.packets_lost;
    static thread_local obs::CachedCounter counter_packets_lost{"ran.packets_lost"};
    counter_packets_lost.Inc();
  }
  auto truth_it = truth_index_.find(tb.chain_id);
  if (truth_it != truth_index_.end()) {
    truth_[truth_it->second].dropped = true;
    truth_[truth_it->second].delivered_at = slot_time;
  }
  // A lost BSR still needs the demand to surface eventually; the SR path
  // in OnUplinkSlot covers it the next time the UE has no grant... but with
  // proactive grants always present, re-report via the next TB's BSR
  // (remaining buffer is re-read each fill), so nothing to do here.
}

void RanUplink::RecordTelemetry(const Tb& tb, sim::TimePoint slot_time, bool crc_ok) {
  telemetry_.push_back(TbRecord{
      .tb_id = tb.round == 0 ? tb.id : next_tb_id_++,
      .chain_id = tb.chain_id,
      .slot_time = slot_time,
      .grant = tb.grant,
      .tbs_bytes = tb.tbs,
      .used_bytes = tb.used,
      .harq_round = tb.round,
      .crc_ok = crc_ok,
  });
  if (telemetry_listener_) telemetry_listener_(telemetry_.back());
  obs::TraceInstant(obs::Layer::kRan, tb.round == 0 ? obs::names::kTbTx : obs::names::kTbRtx, slot_time,
                    {{"tbs", static_cast<double>(tb.tbs)},
                     {"used", static_cast<double>(tb.used)},
                     {"round", static_cast<double>(tb.round)},
                     {"crc_ok", crc_ok ? 1.0 : 0.0},
                     {"grant", tb.grant == GrantType::kRequested ? 1.0 : 0.0}});
}

net::CapacityTrace RanUplink::ObservedCapacityTrace(sim::Duration window) const {
  net::CapacityTrace trace;
  if (telemetry_.empty()) return trace;
  sim::TimePoint window_start = sim::kEpoch;
  std::uint64_t bytes = 0;
  for (const auto& tb : telemetry_) {
    while (tb.slot_time >= window_start + window) {
      trace.Append(window_start,
                   static_cast<double>(bytes) * 8.0 / sim::ToSeconds(window));
      window_start += window;
      bytes = 0;
    }
    if (tb.harq_round == 0) bytes += tb.tbs_bytes;
  }
  trace.Append(window_start, static_cast<double>(bytes) * 8.0 / sim::ToSeconds(window));
  return trace;
}

}  // namespace athena::ran
