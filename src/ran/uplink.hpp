// The 5G uplink machine: UE-side RLC buffer, slot-clocked grant issuance,
// TB filling with segmentation, HARQ retransmissions, and delivery to the
// mobile core. This is the system under measurement in §§2–3: every delay
// artifact the paper explains (2.5 ms delay-spread quantization, ~10 ms
// BSR scheduling delay, 10 ms HARQ inflation, over-granting, empty-TB
// retransmissions) is an emergent behaviour of this component.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/capacity_trace.hpp"
#include "net/packet.hpp"
#include "ran/channel.hpp"
#include "ran/config.hpp"
#include "ran/cross_traffic.hpp"
#include "ran/grant_policy.hpp"
#include "ran/types.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace athena::ran {

class RanUplink {
 public:
  /// `policy` may be null, in which case the paper-faithful BsrGrantPolicy
  /// is used.
  RanUplink(sim::Simulator& sim, RanConfig config, ChannelModel channel,
            CrossTraffic cross_traffic, std::unique_ptr<GrantPolicy> policy = nullptr);

  /// Starts the slot clock. Must be called before traffic is offered.
  void Start();

  /// Cancels the slot clock. After Stop() no further TBs are transmitted
  /// or delivered; buffered packets stay queued. Safe to call repeatedly.
  void Stop();

  /// The UE's IP stack hands a datagram to the modem (enters the RLC
  /// transmission buffer).
  void SendFromUe(const net::Packet& p);
  [[nodiscard]] net::PacketHandler AsHandler() {
    return [this](const net::Packet& p) { SendFromUe(p); };
  }

  /// Packets pop out here at the mobile core (capture point ② of Fig. 2).
  void set_core_sink(net::PacketHandler sink) { core_sink_ = std::move(sink); }

  // --- telemetry (what NG-Scope exposes; Athena's L1 input) ---
  [[nodiscard]] const std::vector<TbRecord>& telemetry() const { return telemetry_; }

  /// Streams each telemetry record as it is produced (for online
  /// consumers such as the §5.3 PHY-informed controller).
  void set_telemetry_listener(std::function<void(const TbRecord&)> listener) {
    telemetry_listener_ = std::move(listener);
  }

  // --- ground truth (tests only; see types.hpp) ---
  [[nodiscard]] const std::vector<TbTruth>& truth() const { return truth_; }

  [[nodiscard]] const RanCounters& counters() const { return counters_; }
  [[nodiscard]] const RanConfig& config() const { return config_; }
  [[nodiscard]] GrantPolicy& policy() { return *policy_; }

  /// Current RLC buffer occupancy in bytes (diagnostics).
  [[nodiscard]] std::uint32_t buffer_bytes() const;

  /// Capacity trace computed from granted transport-block sizes, windowed —
  /// exactly how the paper derives the Fig. 7 emulated-baseline rate.
  [[nodiscard]] net::CapacityTrace ObservedCapacityTrace(sim::Duration window) const;

 private:
  struct QueuedPacket {
    net::Packet pkt;
    std::uint32_t remaining = 0;
    sim::TimePoint enqueued_at;
  };

  struct Segment {
    net::PacketId packet_id = 0;
    std::uint32_t bytes = 0;
    bool last = false;
  };

  struct Tb {
    TbId id = 0;
    TbId chain_id = 0;
    GrantType grant = GrantType::kProactive;
    std::uint32_t tbs = 0;
    std::uint32_t used = 0;
    std::uint8_t round = 0;
    sim::TimePoint first_tx_slot;
    std::vector<Segment> segments;
    bool has_bsr = false;
    std::uint32_t bsr_bytes = 0;
  };

  struct DeliveryState {
    net::Packet pkt;
    std::uint32_t undelivered = 0;
    sim::TimePoint enqueued_at;  ///< modem arrival (obs: ran.transit span)
  };

  void OnUplinkSlot();
  /// Builds and transmits a new-data TB of the granted size.
  void TransmitNewTb(const GrantPolicy::Decision& grant, sim::TimePoint slot_time);
  /// Transmits (or retransmits) `tb` and samples its decode outcome.
  void Transmit(Tb tb, sim::TimePoint slot_time);
  void OnTbDecoded(const Tb& tb, sim::TimePoint slot_time);
  void OnChainDropped(const Tb& tb, sim::TimePoint slot_time);
  [[nodiscard]] std::uint32_t EligibleBufferBytes(sim::TimePoint slot_time) const;
  [[nodiscard]] std::uint32_t TotalBufferBytes() const;
  void RecordTelemetry(const Tb& tb, sim::TimePoint slot_time, bool crc_ok);

  sim::Simulator& sim_;
  RanConfig config_;
  ChannelModel channel_;
  CrossTraffic cross_traffic_;
  std::unique_ptr<GrantPolicy> policy_;
  net::PacketHandler core_sink_;

  std::deque<QueuedPacket> queue_;
  std::unordered_map<net::PacketId, DeliveryState> in_flight_;
  /// Retransmissions waiting for their slot, keyed by absolute slot time (µs).
  std::unordered_map<std::int64_t, std::vector<Tb>> pending_rtx_;

  std::vector<TbRecord> telemetry_;
  std::function<void(const TbRecord&)> telemetry_listener_;
  std::vector<TbTruth> truth_;
  std::unordered_map<TbId, std::size_t> truth_index_;  // chain_id → truth_ slot
  RanCounters counters_;

  TbId next_tb_id_ = 1;
  bool started_ = false;
  sim::EventHandle slot_timer_;
};

}  // namespace athena::ran
