#include "ran/downlink.hpp"

#include <algorithm>

namespace athena::ran {

void DownlinkPath::Send(const net::Packet& p) {
  if (config_.loss_probability > 0.0 && rng_.Bernoulli(config_.loss_probability)) {
    ++dropped_;
    return;
  }
  // Wait for the next DL slot, then the fixed pipeline delay.
  const auto spacing = config_.dl_slot_spacing.count();
  const auto now = sim_.Now().us();
  const auto slot = ((now + spacing - 1) / spacing) * spacing;
  sim::TimePoint deliver_at =
      sim::TimePoint{sim::Duration{slot}} + config_.base_delay;
  deliver_at = std::max(deliver_at, last_delivery_);  // FIFO
  last_delivery_ = deliver_at;
  sim_.ScheduleAt(deliver_at, [this, p] {
    ++delivered_;
    if (sink_) sink_(p);
  });
}

}  // namespace athena::ran
