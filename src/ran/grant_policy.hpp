// Uplink grant policies.
//
// The scheduler asks its policy, once per uplink slot, how large a
// new-data TB to grant the measured UE. The default `BsrGrantPolicy`
// reproduces §3.1 faithfully — small proactive grants every slot plus
// BSR-requested grants that mature ~10 ms later and are sized from the
// buffer state *at BSR time* (the over-granting pathology). §5.2's
// application-aware scheduler is just another implementation of this
// interface (src/mitigation/).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "ran/config.hpp"
#include "ran/types.hpp"
#include "sim/time.hpp"

namespace athena::ran {

class GrantPolicy {
 public:
  virtual ~GrantPolicy() = default;

  struct SlotInfo {
    sim::TimePoint slot_time;
    std::uint32_t available_bytes = 0;  ///< capacity left after cross traffic & HARQ rtx
  };

  struct Decision {
    std::uint32_t tbs_bytes = 0;  ///< 0 = no new-data TB this slot
    GrantType grant = GrantType::kProactive;
  };

  /// Called at every uplink slot; returns the new-data TB grant.
  virtual Decision OnUplinkSlot(const SlotInfo& slot) = 0;

  /// Called when a BSR from the UE is successfully decoded. `reported`
  /// is the UE buffer occupancy at the time the BSR was *built*.
  virtual void OnBsrDecoded(sim::TimePoint decoded_at, std::uint32_t reported_bytes) = 0;

  /// Called after the UE fills the granted TB (what was actually used) —
  /// learning-based policies observe traffic through this.
  virtual void OnTbFilled(sim::TimePoint slot_time, const Decision& grant,
                          std::uint32_t used_bytes) = 0;
};

/// The paper's baseline scheduler (§3.1).
class BsrGrantPolicy : public GrantPolicy {
 public:
  explicit BsrGrantPolicy(const RanConfig& config) : config_(config) {}

  Decision OnUplinkSlot(const SlotInfo& slot) override;
  void OnBsrDecoded(sim::TimePoint decoded_at, std::uint32_t reported_bytes) override;
  void OnTbFilled(sim::TimePoint slot_time, const Decision& grant,
                  std::uint32_t used_bytes) override;

  /// Requested-grant bytes scheduled but not yet issued (diagnostics).
  [[nodiscard]] std::uint32_t outstanding_requested_bytes() const { return outstanding_; }

 private:
  struct PendingGrant {
    sim::TimePoint usable_from;
    std::uint32_t bytes = 0;
  };

  RanConfig config_;
  std::deque<PendingGrant> pending_;
  /// Bytes already promised to the UE (issued or pending). New BSRs only
  /// request the excess over this — but crucially nobody accounts for the
  /// bytes *proactive* grants drain during the scheduling delay, which is
  /// exactly the over-granting bug of §3.1.
  std::uint32_t outstanding_ = 0;
};

/// Runtime-switchable policy pair: the actuation seam the mitigation
/// control plane drives. Wraps a `baseline` and an `alternate` policy;
/// a mode knob selects which one issues grants, while *both* observe
/// every BSR decode and TB fill so the inactive policy keeps learning
/// and a switch takes effect with warm state. A clamped
/// `proactive_scale` knob additionally shrinks/boosts proactive grant
/// sizes (the §3.1 over-granting dial).
///
/// Switching consumes slot decisions from only the active policy; the
/// inactive one's pending-grant bookkeeping can go stale across long
/// active stretches, which is safe (grants are re-clamped to available
/// capacity every slot) but means a revert resumes conservatively.
class TunableGrantPolicy final : public GrantPolicy {
 public:
  static constexpr double kMinProactiveScale = 0.25;
  static constexpr double kMaxProactiveScale = 4.0;

  TunableGrantPolicy(std::unique_ptr<GrantPolicy> baseline,
                     std::unique_ptr<GrantPolicy> alternate);

  Decision OnUplinkSlot(const SlotInfo& slot) override;
  void OnBsrDecoded(sim::TimePoint decoded_at, std::uint32_t reported_bytes) override;
  void OnTbFilled(sim::TimePoint slot_time, const Decision& grant,
                  std::uint32_t used_bytes) override;

  /// Knob: selects the grant-issuing policy. Rejects the switch when no
  /// alternate was provided (returns false).
  bool set_use_alternate(bool use_alternate);
  [[nodiscard]] bool use_alternate() const { return use_alternate_; }

  /// Knob: scales proactive grants, clamped to [0.25, 4]. NaN is rejected
  /// with ATHENA_CHECK. Returns the value actually applied.
  double set_proactive_scale(double scale);
  [[nodiscard]] double proactive_scale() const { return proactive_scale_; }

  [[nodiscard]] GrantPolicy& baseline() { return *baseline_; }
  [[nodiscard]] GrantPolicy* alternate() { return alternate_.get(); }
  [[nodiscard]] std::uint64_t mode_switches() const { return mode_switches_; }

 private:
  std::unique_ptr<GrantPolicy> baseline_;
  std::unique_ptr<GrantPolicy> alternate_;
  bool use_alternate_ = false;
  double proactive_scale_ = 1.0;
  std::uint64_t mode_switches_ = 0;
};

/// Multi-UE scheduler: divides one cell's per-slot PUSCH budget among N
/// contending UEs (the world engine's PRB-contention model). The same
/// per-UE BSR machinery as GrantPolicy, plus an explicit budget split —
/// under load, a UE's grant waits not only for the scheduling delay but
/// for its *turn*, which is the population-level queueing the fleet
/// reports surface.
class MultiUeGrantPolicy {
 public:
  virtual ~MultiUeGrantPolicy() = default;

  struct UeDemand {
    std::uint32_t ue = 0;
    std::uint32_t eligible_bytes = 0;  ///< buffer old enough to make this slot
  };

  struct Allocation {
    std::uint32_t ue = 0;
    std::uint32_t tbs_bytes = 0;
    GrantType grant = GrantType::kProactive;
  };

  /// Splits `available_bytes` (capacity left after HARQ retransmissions)
  /// among the UEs in `demand` (sorted by UE id). At most one allocation
  /// per UE; allocations are returned in UE-id order so the caller's
  /// transmit sequence is deterministic. `slot_index` rotates round-robin
  /// fairness across slots.
  [[nodiscard]] virtual std::vector<Allocation> OnUplinkSlot(
      sim::TimePoint slot_time, std::uint64_t slot_index, std::uint32_t available_bytes,
      const std::vector<UeDemand>& demand) = 0;

  /// A BSR from `ue` decoded at the gNB (piggy-backed or via SR).
  virtual void OnBsrDecoded(std::uint32_t ue, sim::TimePoint decoded_at,
                            std::uint32_t reported_bytes) = 0;

  /// The UE filled its granted TB with `used_bytes` of payload.
  virtual void OnTbFilled(std::uint32_t ue, sim::TimePoint slot_time,
                          std::uint32_t granted_bytes, std::uint32_t used_bytes) = 0;

  /// Forgets all scheduler state for `ue` (handover detach).
  virtual void OnUeRemoved(std::uint32_t ue) = 0;
};

/// The baseline multi-UE scheduler: per-UE BSR grant queues with the same
/// §3.1 over-granting blind spot as BsrGrantPolicy, matured requested
/// grants served in UE-id order, then proactive grants handed out
/// round-robin (rotation offset = slot_index mod population) until the
/// slot budget runs out.
class SharedBsrGrantPolicy : public MultiUeGrantPolicy {
 public:
  explicit SharedBsrGrantPolicy(const RanConfig& config) : config_(config) {}

  std::vector<Allocation> OnUplinkSlot(sim::TimePoint slot_time, std::uint64_t slot_index,
                                       std::uint32_t available_bytes,
                                       const std::vector<UeDemand>& demand) override;
  void OnBsrDecoded(std::uint32_t ue, sim::TimePoint decoded_at,
                    std::uint32_t reported_bytes) override;
  void OnTbFilled(std::uint32_t ue, sim::TimePoint slot_time, std::uint32_t granted_bytes,
                  std::uint32_t used_bytes) override;
  void OnUeRemoved(std::uint32_t ue) override;

 private:
  struct PendingGrant {
    sim::TimePoint usable_from;
    std::uint32_t bytes = 0;
  };
  struct UeState {
    std::deque<PendingGrant> pending;
    std::uint32_t outstanding = 0;
  };

  RanConfig config_;
  /// Ordered map: every per-slot iteration is in UE-id order, so the
  /// allocation sequence is a pure function of (slot, demand, state).
  std::map<std::uint32_t, UeState> ues_;
};

}  // namespace athena::ran
