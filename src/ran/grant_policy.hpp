// Uplink grant policies.
//
// The scheduler asks its policy, once per uplink slot, how large a
// new-data TB to grant the measured UE. The default `BsrGrantPolicy`
// reproduces §3.1 faithfully — small proactive grants every slot plus
// BSR-requested grants that mature ~10 ms later and are sized from the
// buffer state *at BSR time* (the over-granting pathology). §5.2's
// application-aware scheduler is just another implementation of this
// interface (src/mitigation/).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "ran/config.hpp"
#include "ran/types.hpp"
#include "sim/time.hpp"

namespace athena::ran {

class GrantPolicy {
 public:
  virtual ~GrantPolicy() = default;

  struct SlotInfo {
    sim::TimePoint slot_time;
    std::uint32_t available_bytes = 0;  ///< capacity left after cross traffic & HARQ rtx
  };

  struct Decision {
    std::uint32_t tbs_bytes = 0;  ///< 0 = no new-data TB this slot
    GrantType grant = GrantType::kProactive;
  };

  /// Called at every uplink slot; returns the new-data TB grant.
  virtual Decision OnUplinkSlot(const SlotInfo& slot) = 0;

  /// Called when a BSR from the UE is successfully decoded. `reported`
  /// is the UE buffer occupancy at the time the BSR was *built*.
  virtual void OnBsrDecoded(sim::TimePoint decoded_at, std::uint32_t reported_bytes) = 0;

  /// Called after the UE fills the granted TB (what was actually used) —
  /// learning-based policies observe traffic through this.
  virtual void OnTbFilled(sim::TimePoint slot_time, const Decision& grant,
                          std::uint32_t used_bytes) = 0;
};

/// The paper's baseline scheduler (§3.1).
class BsrGrantPolicy : public GrantPolicy {
 public:
  explicit BsrGrantPolicy(const RanConfig& config) : config_(config) {}

  Decision OnUplinkSlot(const SlotInfo& slot) override;
  void OnBsrDecoded(sim::TimePoint decoded_at, std::uint32_t reported_bytes) override;
  void OnTbFilled(sim::TimePoint slot_time, const Decision& grant,
                  std::uint32_t used_bytes) override;

  /// Requested-grant bytes scheduled but not yet issued (diagnostics).
  [[nodiscard]] std::uint32_t outstanding_requested_bytes() const { return outstanding_; }

 private:
  struct PendingGrant {
    sim::TimePoint usable_from;
    std::uint32_t bytes = 0;
  };

  RanConfig config_;
  std::deque<PendingGrant> pending_;
  /// Bytes already promised to the UE (issued or pending). New BSRs only
  /// request the excess over this — but crucially nobody accounts for the
  /// bytes *proactive* grants drain during the scheduling delay, which is
  /// exactly the over-granting bug of §3.1.
  std::uint32_t outstanding_ = 0;
};

}  // namespace athena::ran
