#include "net/link.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace athena::net {

FixedDelayLink::FixedDelayLink(sim::Simulator& sim, Config config, sim::Rng rng)
    : sim_(sim), config_(config), rng_(rng) {}

void FixedDelayLink::Send(const Packet& p) {
  if (config_.loss_probability > 0.0 && rng_.Bernoulli(config_.loss_probability)) {
    ++dropped_;
    static thread_local obs::CachedCounter counter_wire_dropped{"net.wire_dropped"};
    counter_wire_dropped.Inc();
    return;
  }
  sim::Duration delay = config_.delay;
  if (config_.jitter_stddev.count() > 0) {
    const double jitter_us = rng_.NormalAtLeast(
        0.0, static_cast<double>(config_.jitter_stddev.count()),
        -static_cast<double>(config_.delay.count()));
    delay += sim::Duration{static_cast<std::int64_t>(jitter_us)};
  }
  const sim::TimePoint sent_at = sim_.Now();
  sim::TimePoint deliver_at = sent_at + delay;
  // FIFO: never deliver before a packet sent earlier.
  deliver_at = std::max(deliver_at, last_delivery_);
  last_delivery_ = deliver_at;
  sim_.ScheduleAt(deliver_at, [this, p, sent_at] {
    ++delivered_;
    static thread_local obs::CachedCounter counter_wire_delivered{"net.wire_delivered"};
    counter_wire_delivered.Inc();
    obs::TraceAsyncSpan(obs::Layer::kNet, obs::names::kPktHop, p.id, sent_at, sim_.Now(),
                        {{"bytes", static_cast<double>(p.size_bytes)}});
    if (sink_) sink_(p);
  });
}

RateLimitedLink::RateLimitedLink(sim::Simulator& sim, Config config)
    : sim_(sim), config_(std::move(config)) {}

void RateLimitedLink::Send(const Packet& p) {
  if (queue_.size() >= config_.max_queue_packets) {
    ++dropped_;
    static thread_local obs::CachedCounter counter_link_dropped{"net.link_dropped"};
    counter_link_dropped.Inc();
    obs::TraceInstant(obs::Layer::kNet, obs::names::kLinkDrop, sim_.Now(),
                      {{"packet", static_cast<double>(p.id)}});
    return;
  }
  queue_.push_back(p);
  obs::TraceCounter(obs::Layer::kNet, obs::names::kNetLinkQueue, sim_.Now(),
                    static_cast<double>(queue_depth()));
  StartServiceIfIdle();
}

void RateLimitedLink::StartServiceIfIdle() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  ServeHead();
}

void RateLimitedLink::ServeHead() {
  assert(busy_);
  if (queue_.empty()) {
    busy_ = false;
    obs::TraceCounter(obs::Layer::kNet, obs::names::kNetLinkQueue, sim_.Now(), 0.0);
    return;
  }
  const Packet p = queue_.front();
  queue_.pop_front();
  const double bps = config_.capacity.At(sim_.Now());
  // A zero-rate interval parks the head until the next capacity step; poll
  // on a coarse tick to keep the model simple.
  if (bps <= 0.0) {
    queue_.push_front(p);
    sim_.ScheduleAfter(sim::Duration{1000}, [this] { ServeHead(); });
    return;
  }
  const double tx_seconds = static_cast<double>(p.size_bytes) * 8.0 / bps;
  const auto tx = sim::FromSeconds(tx_seconds);
  // Service times are serialized by busy_, so a plain complete span is safe.
  obs::TraceSpan(obs::Layer::kNet, obs::names::kLinkTx, sim_.Now(), sim_.Now() + tx,
                 {{"packet", static_cast<double>(p.id)},
                  {"bytes", static_cast<double>(p.size_bytes)}});
  sim_.ScheduleAfter(tx, [this, p] {
    sim_.ScheduleAfter(config_.propagation, [this, p] {
      ++delivered_;
      static thread_local obs::CachedCounter counter_link_delivered{"net.link_delivered"};
      counter_link_delivered.Inc();
      if (sink_) sink_(p);
    });
    ServeHead();
  });
}

}  // namespace athena::net
