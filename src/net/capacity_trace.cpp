#include "net/capacity_trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/check.hpp"

namespace athena::net {

void CapacityTrace::Append(sim::TimePoint from, double bits_per_second) {
  assert((steps_.empty() || from >= steps_.back().from) && "steps must be time-ordered");
  // Armed in all builds: a NaN or negative capacity sample silently
  // poisons every downstream mean/At query, so reject it at the boundary.
  ATHENA_CHECK(std::isfinite(bits_per_second) && bits_per_second >= 0.0,
               "CapacityTrace::Append: capacity must be finite and non-negative");
  steps_.push_back({from, bits_per_second});
}

double CapacityTrace::At(sim::TimePoint t) const {
  double bps = 0.0;
  for (const auto& s : steps_) {
    if (s.from > t) break;
    bps = s.bits_per_second;
  }
  return bps;
}

double CapacityTrace::MeanOver(sim::TimePoint from, sim::TimePoint to) const {
  if (to <= from || steps_.empty()) return At(from);
  double weighted = 0.0;
  sim::TimePoint cursor = from;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const sim::TimePoint seg_start = std::max(steps_[i].from, from);
    const sim::TimePoint seg_end =
        (i + 1 < steps_.size()) ? std::min(steps_[i + 1].from, to) : to;
    if (seg_end <= seg_start) continue;
    weighted += steps_[i].bits_per_second * sim::ToSeconds(seg_end - seg_start);
    cursor = seg_end;
  }
  (void)cursor;
  return weighted / sim::ToSeconds(to - from);
}

CapacityTrace CapacityTrace::PaperCrossTrafficSchedule(sim::Duration phase) {
  CapacityTrace t;
  const double kMbps = 1e6;
  t.Append(sim::kEpoch, 0.0);
  t.Append(sim::kEpoch + phase, 14.0 * kMbps);
  t.Append(sim::kEpoch + phase + phase, 16.0 * kMbps);
  t.Append(sim::kEpoch + phase + phase + phase, 18.0 * kMbps);
  return t;
}

}  // namespace athena::net
