// A step function of link capacity over time.
//
// Two uses mirror the paper: (1) driving time-varying cross-traffic /
// channel quality, and (2) the Fig. 7 baseline, where the wired emulation's
// rate is replayed from the capacity observed on the 5G link ("calculated
// from the physical transport block sizes").
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace athena::net {

class CapacityTrace {
 public:
  struct Step {
    sim::TimePoint from;
    double bits_per_second;
  };

  CapacityTrace() = default;
  explicit CapacityTrace(double constant_bps) { Append(sim::kEpoch, constant_bps); }

  /// Appends a step; steps must be appended in nondecreasing time order.
  void Append(sim::TimePoint from, double bits_per_second);

  /// Capacity at time t (0 before the first step).
  [[nodiscard]] double At(sim::TimePoint t) const;

  /// Mean capacity over [from, to).
  [[nodiscard]] double MeanOver(sim::TimePoint from, sim::TimePoint to) const;

  [[nodiscard]] bool empty() const { return steps_.empty(); }
  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }

  /// The paper's cross-traffic schedule: 0, 14, 16, 18 Mbps in phases of
  /// `phase` duration each (§2: five-minute phases of a 20-minute call).
  static CapacityTrace PaperCrossTrafficSchedule(sim::Duration phase);

 private:
  std::vector<Step> steps_;
};

}  // namespace athena::net
