#include "net/icmp.hpp"

namespace athena::net {

IcmpProber::IcmpProber(sim::Simulator& sim, Config config, PacketIdGenerator& ids)
    : sim_(sim),
      config_(config),
      ids_(ids),
      timer_(sim, config.interval, [this] { SendProbe(); }) {}

void IcmpProber::Start() { timer_.Start(sim::Duration{0}); }

void IcmpProber::Stop() { timer_.Stop(); }

void IcmpProber::SendProbe() {
  if (!outbound_) return;
  Packet p;
  p.id = ids_.Next();
  p.flow = config_.flow;
  p.kind = PacketKind::kIcmpEcho;
  p.size_bytes = config_.packet_size_bytes;
  p.created_at = sim_.Now();
  p.icmp = IcmpMeta{.probe_seq = next_seq_++, .echo_sent_at = sim_.Now()};
  outbound_(p);
}

void IcmpProber::OnReply(const Packet& p) {
  if (p.kind != PacketKind::kIcmpReply || !p.icmp) return;
  const sim::TimePoint now = sim_.Now();
  results_.push_back(ProbeResult{
      .seq = p.icmp->probe_seq,
      .sent_at = p.icmp->echo_sent_at,
      .replied_at = now,
      .rtt = now - p.icmp->echo_sent_at,
  });
}

void IcmpResponder::OnPacket(const Packet& p) {
  if (p.kind != PacketKind::kIcmpEcho || !p.icmp) return;
  Packet reply = p;
  reply.kind = PacketKind::kIcmpReply;
  sim_.ScheduleAfter(turnaround_, [this, reply] {
    if (return_path_) return_path_(reply);
  });
}

}  // namespace athena::net
