// Capture points: the pcap taps of Fig. 2 (sender ①, mobile core ②,
// SFU ③/③*, receiver ④). A capture point is a pass-through observer that
// records (packet, local timestamp) using the host's possibly-offset
// clock. Athena's correlator works *only* from these logs — never from
// simulator ground truth — mirroring the real measurement pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/clock.hpp"
#include "net/packet.hpp"
#include "obs/trace_names.hpp"
#include "sim/simulator.hpp"

namespace athena::net {

struct CaptureRecord {
  PacketId packet_id = 0;
  sim::TimePoint local_ts;   ///< timestamp by the capturing host's clock
  sim::TimePoint true_ts;    ///< ground truth (tests only; Athena must not use it)
  PacketKind kind = PacketKind::kGeneric;
  std::uint32_t size_bytes = 0;
  FlowId flow = 0;
  std::optional<RtpMeta> rtp;
  std::optional<IcmpMeta> icmp;
};

class CapturePoint {
 public:
  CapturePoint(sim::Simulator& sim, std::string name, HostClock clock = {})
      : sim_(sim), name_(std::move(name)), trace_name_(name_), clock_(clock) {}

  /// Records the packet and forwards it to the downstream handler (if any).
  void OnPacket(const Packet& p);

  /// The handler packets continue to after being logged.
  void set_sink(PacketHandler sink) { sink_ = std::move(sink); }

  /// A handler bound to this capture point, usable as an upstream's sink.
  [[nodiscard]] PacketHandler AsHandler() {
    return [this](const Packet& p) { OnPacket(p); };
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const HostClock& clock() const { return clock_; }
  [[nodiscard]] const std::vector<CaptureRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t count() const { return records_.size(); }

  void Clear() { records_.clear(); }

 private:
  sim::Simulator& sim_;
  std::string name_;
  obs::TraceName trace_name_;  ///< `name_` interned once, not per packet
  HostClock clock_;
  PacketHandler sink_;
  std::vector<CaptureRecord> records_;
};

}  // namespace athena::net
