// Per-host clocks. The paper NTP-synchronizes all hosts but still has to
// reason about residual offsets when computing one-way delays between
// capture points; `HostClock` models exactly that (constant offset plus
// parts-per-million drift), and core::ClockSync later estimates and
// removes the offsets the way the measurement pipeline does.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace athena::net {

class HostClock {
 public:
  HostClock() = default;
  HostClock(sim::Duration offset, double drift_ppm) : offset_(offset), drift_ppm_(drift_ppm) {}

  /// Maps true simulation time to this host's local timestamp.
  [[nodiscard]] sim::TimePoint ToLocal(sim::TimePoint true_time) const {
    const double drift_us =
        static_cast<double>(true_time.us()) * drift_ppm_ * 1e-6;
    return true_time + offset_ + sim::Duration{static_cast<std::int64_t>(drift_us)};
  }

  /// Inverse mapping (first-order; exact for drift_ppm == 0).
  [[nodiscard]] sim::TimePoint ToTrue(sim::TimePoint local_time) const {
    const sim::TimePoint approx = local_time - offset_;
    const double drift_us = static_cast<double>(approx.us()) * drift_ppm_ * 1e-6;
    return approx - sim::Duration{static_cast<std::int64_t>(drift_us)};
  }

  [[nodiscard]] sim::Duration offset() const { return offset_; }
  [[nodiscard]] double drift_ppm() const { return drift_ppm_; }

  void set_offset(sim::Duration offset) { offset_ = offset; }
  void set_drift_ppm(double ppm) { drift_ppm_ = ppm; }

 private:
  sim::Duration offset_{0};
  double drift_ppm_ = 0.0;
};

}  // namespace athena::net
