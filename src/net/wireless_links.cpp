#include "net/wireless_links.hpp"

#include <algorithm>
#include <cmath>

namespace athena::net {

WifiLikeLink::WifiLikeLink(sim::Simulator& sim, Config config, sim::Rng rng)
    : sim_(sim), config_(config), rng_(rng) {}

void WifiLikeLink::Send(const Packet& p) {
  queue_.push_back(Pending{p, 0});
  if (!busy_) {
    busy_ = true;
    TryHead();
  }
}

sim::Duration WifiLikeLink::SampleAccessDelay() {
  // Contention: exponential channel-busy wait scaled by load, plus a
  // uniform backoff slot draw. Heavy-tailed by construction.
  const double busy_scale =
      config_.channel_load / std::max(1e-6, 1.0 - config_.channel_load);
  const double busy_us = rng_.ExponentialMean(
      busy_scale * static_cast<double>(config_.max_backoff.count()));
  const auto backoff =
      rng_.UniformDuration(config_.min_backoff, config_.max_backoff);
  return backoff + sim::Duration{static_cast<std::int64_t>(busy_us)};
}

void WifiLikeLink::TryHead() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  Pending& head = queue_.front();
  ++head.attempts;
  const auto access = SampleAccessDelay();
  const double tx_s = static_cast<double>(head.pkt.size_bytes) * 8.0 / config_.rate_bps;
  const auto when = access + sim::FromSeconds(tx_s);

  // Collision probability grows with contention and retry count.
  const double p_collision = std::min(
      0.9, config_.collision_probability * (1.0 + config_.channel_load) *
               std::pow(1.3, head.attempts - 1));
  const bool collided = rng_.Bernoulli(p_collision);

  telemetry_.push_back(WifiAirtimeRecord{
      .packet_id = head.pkt.id,
      .attempt = static_cast<std::uint8_t>(head.attempts),
      .contend_start = sim_.Now(),
      .access_wait = access,
      .tx_duration = sim::FromSeconds(tx_s),
      .collided = collided,
  });

  if (collided) {
    ++collisions_;
    if (head.attempts > config_.max_retries) {
      ++dropped_;
      queue_.pop_front();
      sim_.ScheduleAfter(when, [this] { TryHead(); });
      return;
    }
    // Exponential backoff before the retry.
    const auto penalty = sim::Duration{config_.retry_timeout.count() << (head.attempts - 1)};
    sim_.ScheduleAfter(when + penalty, [this] { TryHead(); });
    return;
  }

  const Packet pkt = head.pkt;
  queue_.pop_front();
  sim_.ScheduleAfter(when, [this, pkt] {
    ++delivered_;
    if (sink_) sink_(pkt);
    TryHead();
  });
}

LeoSatLink::LeoSatLink(sim::Simulator& sim, Config config) : sim_(sim), config_(config) {}

sim::Duration LeoSatLink::PropagationAt(sim::TimePoint t) const {
  // Triangle wave across each pass: nearest overhead mid-pass.
  const auto period = config_.pass_period.count();
  const auto phase = static_cast<double>(t.us() % period) / static_cast<double>(period);
  const double tri = std::abs(2.0 * phase - 1.0);  // 1 → 0 → 1
  const auto swing =
      static_cast<std::int64_t>(tri * static_cast<double>(config_.propagation_swing.count()));
  return config_.base_propagation + sim::Duration{swing};
}

bool LeoSatLink::InOutage(sim::TimePoint t) const {
  const auto period = config_.pass_period.count();
  return (t.us() % period) < config_.handover_outage.count();
}

void LeoSatLink::Send(const Packet& p) {
  const sim::TimePoint now = sim_.Now();
  sim::TimePoint start = now;
  if (InOutage(now)) {
    // Park until the handover completes.
    const auto period = config_.pass_period.count();
    const auto into = now.us() % period;
    start = now + sim::Duration{config_.handover_outage.count() - into};
  }
  const double tx_s = static_cast<double>(p.size_bytes) * 8.0 / config_.rate_bps;
  sim::TimePoint deliver = start + sim::FromSeconds(tx_s) + PropagationAt(start);
  deliver = std::max(deliver, last_delivery_);  // FIFO
  last_delivery_ = deliver;
  sim_.ScheduleAt(deliver, [this, p] {
    ++delivered_;
    if (sink_) sink_(p);
  });
}

}  // namespace athena::net
