// Trace-driven network emulation — the paper's §5.1 vision: "work toward
// a GCC simulator that evaluates video-conferencing behavior in various
// physical-layer contexts."
//
// A `DelayTrace` is a recorded sequence of (send-offset, one-way delay)
// samples — typically harvested from an Athena cross-layer dataset of a
// real (simulated) 5G/Wi-Fi/LEO session. A `TraceDrivenLink` replays it:
// each packet entering at elapsed time t gets the delay of the nearest
// recorded sample (cyclically extended), so different congestion
// controllers can be compared against byte-identical network behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace athena::net {

class DelayTrace {
 public:
  struct Sample {
    sim::Duration offset{0};  ///< send time since trace start
    sim::Duration delay{0};
  };

  DelayTrace() = default;
  explicit DelayTrace(std::vector<Sample> samples);

  /// Delay for a packet sent at `elapsed` since the replay began. The
  /// trace extends cyclically past its span. Empty trace → 0 delay.
  [[nodiscard]] sim::Duration DelayAt(sim::Duration elapsed) const;

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] sim::Duration span() const;
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

 private:
  std::vector<Sample> samples_;  // sorted by offset
};

class TraceDrivenLink {
 public:
  TraceDrivenLink(sim::Simulator& sim, DelayTrace trace)
      : sim_(sim), trace_(std::move(trace)), start_(sim.Now()) {}

  void Send(const Packet& p);
  [[nodiscard]] PacketHandler AsHandler() {
    return [this](const Packet& p) { Send(p); };
  }
  void set_sink(PacketHandler sink) { sink_ = std::move(sink); }

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] const DelayTrace& trace() const { return trace_; }

 private:
  sim::Simulator& sim_;
  DelayTrace trace_;
  sim::TimePoint start_;
  sim::TimePoint last_delivery_;
  PacketHandler sink_;
  std::uint64_t delivered_ = 0;
};

}  // namespace athena::net
