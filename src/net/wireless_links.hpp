// Alternative wireless access models — §5.1 of the paper: "an ever-growing
// set of physical and link-layer technologies (e.g., 4G and 5G …, Wi-Fi,
// satellite networks, and Bluetooth). All underlying networks introduce
// different artifacts". These two deliberately simple models give the
// framework contrasting artifact profiles to correlate against:
//
//   WifiLikeLink — contention-based access (DCF spirit): no slot grid, a
//     load-dependent random backoff before each transmission, collisions
//     retried with exponential backoff. Artifact: heavy-tailed per-packet
//     delay with *no* quantization.
//
//   LeoSatLink — low-earth-orbit path: moderate fixed propagation that
//     drifts with satellite elevation, plus a brief outage at each
//     inter-satellite handover (every ~15 s). Artifact: slow delay ramps
//     and periodic multi-hundred-ms gaps.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace athena::net {

/// One MAC transmission attempt as a Wi-Fi sniffer sees it (radiotap-level
/// view: MAC sequence/identity, timing, retry flag). The Wi-Fi analog of
/// the 5G `ran::TbRecord` — Athena's L1 input on this access technology.
struct WifiAirtimeRecord {
  PacketId packet_id = 0;       ///< MAC-level identity (no segmentation in Wi-Fi)
  std::uint8_t attempt = 1;     ///< 1 = first transmission
  sim::TimePoint contend_start; ///< when the station began contending
  sim::Duration access_wait{0}; ///< backoff + channel-busy time
  sim::Duration tx_duration{0};
  bool collided = false;        ///< this attempt failed (retry follows)
};

class WifiLikeLink {
 public:
  struct Config {
    double rate_bps = 60e6;              ///< PHY rate for serialization
    double channel_load = 0.3;           ///< fraction of airtime others hold
    sim::Duration min_backoff{std::chrono::microseconds{50}};
    sim::Duration max_backoff{std::chrono::microseconds{1200}};
    double collision_probability = 0.08; ///< per attempt, at nominal load
    int max_retries = 6;
    sim::Duration retry_timeout{std::chrono::milliseconds{2}};
  };

  WifiLikeLink(sim::Simulator& sim, Config config, sim::Rng rng);

  void Send(const Packet& p);
  [[nodiscard]] PacketHandler AsHandler() {
    return [this](const Packet& p) { Send(p); };
  }
  void set_sink(PacketHandler sink) { sink_ = std::move(sink); }

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

  /// Per-attempt airtime telemetry (what a monitor-mode sniffer records).
  [[nodiscard]] const std::vector<WifiAirtimeRecord>& telemetry() const {
    return telemetry_;
  }

 private:
  void TryHead();
  [[nodiscard]] sim::Duration SampleAccessDelay();

  sim::Simulator& sim_;
  Config config_;
  sim::Rng rng_;
  PacketHandler sink_;
  struct Pending {
    Packet pkt;
    int attempts = 0;
  };
  std::deque<Pending> queue_;
  bool busy_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t collisions_ = 0;
  std::vector<WifiAirtimeRecord> telemetry_;
};

class LeoSatLink {
 public:
  struct Config {
    sim::Duration base_propagation{std::chrono::milliseconds{28}};
    /// Propagation drifts ± this much over an orbit pass (triangle wave).
    sim::Duration propagation_swing{std::chrono::milliseconds{8}};
    sim::Duration pass_period{std::chrono::seconds{15}};
    /// Handover at each pass boundary: traffic stalls for this long.
    sim::Duration handover_outage{std::chrono::milliseconds{180}};
    double rate_bps = 50e6;
  };

  LeoSatLink(sim::Simulator& sim, Config config);

  void Send(const Packet& p);
  [[nodiscard]] PacketHandler AsHandler() {
    return [this](const Packet& p) { Send(p); };
  }
  void set_sink(PacketHandler sink) { sink_ = std::move(sink); }

  /// Current one-way propagation (for tests/inspection).
  [[nodiscard]] sim::Duration PropagationAt(sim::TimePoint t) const;
  /// Whether `t` falls inside a handover outage window.
  [[nodiscard]] bool InOutage(sim::TimePoint t) const;

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

 private:
  sim::Simulator& sim_;
  Config config_;
  PacketHandler sink_;
  sim::TimePoint last_delivery_;
  std::uint64_t delivered_ = 0;
};

}  // namespace athena::net
