#include "net/capture.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace athena::net {

void CapturePoint::OnPacket(const Packet& p) {
  const sim::TimePoint now = sim_.Now();
  records_.push_back(CaptureRecord{
      .packet_id = p.id,
      .local_ts = clock_.ToLocal(now),
      .true_ts = now,
      .kind = p.kind,
      .size_bytes = p.size_bytes,
      .flow = p.flow,
      .rtp = p.rtp,
      .icmp = p.icmp,
  });
  if (obs::trace_enabled()) {
    // One instant per tap, named after the capture point (Fig. 2 ①–④),
    // so a packet's journey reads as a row of dots across the net track.
    obs::TraceInstant(obs::Layer::kNet, trace_name_, now,
                      {{"packet", static_cast<double>(p.id)},
                       {"bytes", static_cast<double>(p.size_bytes)}});
  }
  static thread_local obs::CachedCounter counter_captured{"net.captured"};
  counter_captured.Inc();
  if (sink_) sink_(p);
}

}  // namespace athena::net
