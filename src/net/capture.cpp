#include "net/capture.hpp"

namespace athena::net {

void CapturePoint::OnPacket(const Packet& p) {
  const sim::TimePoint now = sim_.Now();
  records_.push_back(CaptureRecord{
      .packet_id = p.id,
      .local_ts = clock_.ToLocal(now),
      .true_ts = now,
      .kind = p.kind,
      .size_bytes = p.size_bytes,
      .flow = p.flow,
      .rtp = p.rtp,
      .icmp = p.icmp,
  });
  if (sink_) sink_(p);
}

}  // namespace athena::net
