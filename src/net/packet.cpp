#include "net/packet.hpp"

namespace athena::net {

const char* ToString(PacketKind kind) {
  switch (kind) {
    case PacketKind::kRtpVideo: return "rtp-video";
    case PacketKind::kRtpAudio: return "rtp-audio";
    case PacketKind::kRtcpFeedback: return "rtcp";
    case PacketKind::kIcmpEcho: return "icmp-echo";
    case PacketKind::kIcmpReply: return "icmp-reply";
    case PacketKind::kCrossTraffic: return "cross-traffic";
    case PacketKind::kGeneric: return "generic";
  }
  return "?";
}

const char* ToString(SvcLayer layer) {
  switch (layer) {
    case SvcLayer::kBase: return "base";
    case SvcLayer::kLowFpsEnhancement: return "low-fps-enh";
    case SvcLayer::kHighFpsEnhancement: return "high-fps-enh";
    case SvcLayer::kNone: return "none";
  }
  return "?";
}

}  // namespace athena::net
