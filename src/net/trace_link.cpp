#include "net/trace_link.hpp"

#include <algorithm>
#include <cassert>

namespace athena::net {

DelayTrace::DelayTrace(std::vector<Sample> samples) : samples_(std::move(samples)) {
  std::stable_sort(samples_.begin(), samples_.end(),
                   [](const Sample& a, const Sample& b) { return a.offset < b.offset; });
}

sim::Duration DelayTrace::span() const {
  return samples_.empty() ? sim::Duration{0} : samples_.back().offset;
}

sim::Duration DelayTrace::DelayAt(sim::Duration elapsed) const {
  if (samples_.empty()) return sim::Duration{0};
  const auto total = span().count();
  std::int64_t t = elapsed.count();
  if (total > 0) t %= (total + 1);  // cyclic extension
  const Sample probe{sim::Duration{t}, sim::Duration{0}};
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), probe,
      [](const Sample& a, const Sample& b) { return a.offset < b.offset; });
  if (it == samples_.end()) return samples_.back().delay;
  if (it == samples_.begin()) return it->delay;
  // Nearest of the two neighbours.
  const auto prev = std::prev(it);
  const auto d_prev = t - prev->offset.count();
  const auto d_next = it->offset.count() - t;
  return d_prev <= d_next ? prev->delay : it->delay;
}

void TraceDrivenLink::Send(const Packet& p) {
  const auto elapsed = sim_.Now() - start_;
  sim::TimePoint deliver = sim_.Now() + trace_.DelayAt(elapsed);
  deliver = std::max(deliver, last_delivery_);  // FIFO
  last_delivery_ = deliver;
  sim_.ScheduleAt(deliver, [this, p] {
    ++delivered_;
    if (sink_) sink_(p);
  });
}

}  // namespace athena::net
