// Wired-path building blocks: fixed-delay hops (WAN segments, which the
// paper finds "low and stable"), and rate-limited FIFO queues (the tc-style
// emulated bottleneck of Fig. 7).
#pragma once

#include <cstdint>
#include <deque>

#include "net/capacity_trace.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace athena::net {

/// Delivers packets after `delay` plus optional truncated-Gaussian jitter.
/// Preserves ordering even when jitter would reorder (FIFO semantics, like
/// a well-behaved wired path).
class FixedDelayLink {
 public:
  struct Config {
    sim::Duration delay{0};
    sim::Duration jitter_stddev{0};  ///< 0 = deterministic
    double loss_probability = 0.0;
  };

  FixedDelayLink(sim::Simulator& sim, Config config, sim::Rng rng = sim::Rng{1});

  void Send(const Packet& p);

  void set_sink(PacketHandler sink) { sink_ = std::move(sink); }
  [[nodiscard]] PacketHandler AsHandler() {
    return [this](const Packet& p) { Send(p); };
  }

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  sim::Simulator& sim_;
  Config config_;
  sim::Rng rng_;
  PacketHandler sink_;
  sim::TimePoint last_delivery_;  // enforces FIFO under jitter
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Drop-tail FIFO queue drained at a (possibly time-varying) service rate,
/// followed by a propagation delay — the classic bottleneck-link model the
/// paper says congestion control was designed around (§1), and the model
/// behind the Fig. 7 "Emulated" baseline.
class RateLimitedLink {
 public:
  struct Config {
    CapacityTrace capacity;          ///< service rate over time
    sim::Duration propagation{0};
    std::uint32_t max_queue_packets = 1000;
  };

  RateLimitedLink(sim::Simulator& sim, Config config);

  void Send(const Packet& p);

  void set_sink(PacketHandler sink) { sink_ = std::move(sink); }
  [[nodiscard]] PacketHandler AsHandler() {
    return [this](const Packet& p) { Send(p); };
  }

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }

 private:
  void StartServiceIfIdle();
  void ServeHead();

  sim::Simulator& sim_;
  Config config_;
  PacketHandler sink_;
  std::deque<Packet> queue_;
  bool busy_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace athena::net
