// The datagram model shared by every layer of the simulation.
//
// A `Packet` is a value type carrying the header fields the real system
// would put on the wire: IP/UDP sizing, RTP header + extensions (SVC layer
// id, frame id, abs-send-time — the extensions §2 and §5.2 of the paper
// rely on), or ICMP echo bookkeeping. Layering note: the RTP fields live
// here as plain data so that the link/RAN substrates can carry packets
// without depending on the rtp library; rtp/ holds the *logic*
// (packetization, feedback) that manipulates these fields.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace athena::net {

using PacketId = std::uint64_t;
using FlowId = std::uint32_t;

enum class PacketKind : std::uint8_t {
  kRtpVideo,
  kRtpAudio,
  kRtcpFeedback,
  kIcmpEcho,
  kIcmpReply,
  kCrossTraffic,
  kGeneric,
};

[[nodiscard]] const char* ToString(PacketKind kind);

/// SVC temporal layers as Zoom uses them (§2 "How Zoom Adapts"): a base
/// layer at 7 or 14 fps plus enhancement layers; the low-FPS enhancement
/// has its own id when the target is 14 fps.
enum class SvcLayer : std::uint8_t {
  kBase,
  kLowFpsEnhancement,
  kHighFpsEnhancement,
  kNone,  // audio / non-video
};

[[nodiscard]] const char* ToString(SvcLayer layer);

/// RTP header + the header-extension fields Athena reads (carried as
/// structured data instead of serialized bytes).
struct RtpMeta {
  std::uint32_t ssrc = 0;
  std::uint16_t seq = 0;           ///< per-SSRC RTP sequence number
  std::uint32_t media_ts = 0;      ///< RTP media timestamp (clock-rate ticks)
  bool marker = false;             ///< last packet of a frame
  SvcLayer layer = SvcLayer::kNone;
  std::uint64_t frame_id = 0;      ///< frame / audio-sample identity (QR substitute)
  std::uint16_t transport_seq = 0; ///< transport-wide sequence number (TWCC)
  std::uint32_t packets_in_frame = 0;
  std::uint32_t packet_index_in_frame = 0;
};

/// ICMP echo bookkeeping for the core→server probes of Fig. 2/3.
struct IcmpMeta {
  std::uint32_t probe_seq = 0;
  sim::TimePoint echo_sent_at;  ///< set on the echo, copied into the reply
};

/// One receive report inside a transport-wide congestion-control (TWCC)
/// feedback message: "packet with this transport-wide sequence number
/// arrived at this receiver-clock time".
struct TwccArrival {
  std::uint16_t transport_seq = 0;
  sim::TimePoint recv_ts;
  bool ce = false;  ///< packet arrived with the ECN-CE mark
};

/// RTCP transport-wide feedback payload (RFC 8888 / WebRTC TWCC spirit),
/// carried structured instead of serialized. §5.3 of the paper proposes
/// masking RAN-induced delay exactly by rewriting these timestamps.
struct FeedbackMeta {
  std::uint32_t feedback_seq = 0;
  std::vector<TwccArrival> arrivals;
};

/// RTCP NACK (RFC 4585 generic NACK): the receiver asks the sender to
/// retransmit specific RTP sequence numbers of one SSRC.
struct NackMeta {
  std::uint32_t ssrc = 0;
  std::vector<std::uint16_t> seqs;
};

struct Packet {
  PacketId id = 0;
  FlowId flow = 0;
  PacketKind kind = PacketKind::kGeneric;
  std::uint32_t size_bytes = 0;       ///< on-the-wire size (IP + UDP + payload)
  sim::TimePoint created_at;          ///< true simulation time of creation
  /// ECN Congestion Experienced mark (set by an L4S-style marker in the
  /// modem when the packet waited too long for a grant — §5.3 / ABC).
  bool ecn_ce = false;
  std::optional<RtpMeta> rtp;
  std::optional<IcmpMeta> icmp;
  std::optional<FeedbackMeta> feedback;
  std::optional<NackMeta> nack;

  [[nodiscard]] bool is_media() const {
    return kind == PacketKind::kRtpVideo || kind == PacketKind::kRtpAudio;
  }
  [[nodiscard]] bool is_video() const { return kind == PacketKind::kRtpVideo; }
  [[nodiscard]] bool is_audio() const { return kind == PacketKind::kRtpAudio; }
};

/// Sinks are plain callables: a component delivers a packet by invoking the
/// downstream handler. Handlers run at the simulated delivery instant.
using PacketHandler = std::function<void(const Packet&)>;

/// Process-wide monotonically increasing packet id source. Per-simulation
/// determinism does not require resetting it, but tests may.
class PacketIdGenerator {
 public:
  PacketId Next() { return ++last_; }
  void Reset() { last_ = 0; }

 private:
  PacketId last_ = 0;
};

/// Typical wire overhead: IPv4 (20) + UDP (8) + RTP (12) + extensions (8).
inline constexpr std::uint32_t kRtpHeaderOverheadBytes = 48;
/// Conservative RTP payload MTU used by VCAs (media packets ~1.2 kB).
inline constexpr std::uint32_t kRtpPayloadMtuBytes = 1148;

}  // namespace athena::net
