// ICMP echo probing, as in Fig. 2/3: the mobile core pings the SFU every
// 20 ms to separate WAN path delay from the SFU's application-layer
// processing (ping replies skip the app layer, so RTP-minus-ICMP exposes
// the server's processing jitter).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace athena::net {

/// Sends periodic echo requests into an outbound handler and matches the
/// replies that come back via `OnReply`.
class IcmpProber {
 public:
  struct Config {
    sim::Duration interval{std::chrono::milliseconds{20}};
    std::uint32_t packet_size_bytes = 64;
    FlowId flow = 9000;
  };

  struct ProbeResult {
    std::uint32_t seq = 0;
    sim::TimePoint sent_at;
    sim::TimePoint replied_at;
    sim::Duration rtt{0};
  };

  IcmpProber(sim::Simulator& sim, Config config, PacketIdGenerator& ids);

  void Start();
  void Stop();

  /// Where echo requests go (towards the responder).
  void set_outbound(PacketHandler h) { outbound_ = std::move(h); }

  /// Feed replies here (wire the responder's return path to this).
  void OnReply(const Packet& p);

  [[nodiscard]] const std::vector<ProbeResult>& results() const { return results_; }
  [[nodiscard]] std::uint32_t probes_sent() const { return next_seq_; }

 private:
  void SendProbe();

  sim::Simulator& sim_;
  Config config_;
  PacketIdGenerator& ids_;
  PacketHandler outbound_;
  sim::PeriodicTimer timer_;
  std::uint32_t next_seq_ = 0;
  std::vector<ProbeResult> results_;
};

/// Turns echo requests around (optionally with a processing delay) — the
/// kernel-level reflection at the probed server.
class IcmpResponder {
 public:
  IcmpResponder(sim::Simulator& sim, sim::Duration turnaround = sim::Duration{0})
      : sim_(sim), turnaround_(turnaround) {}

  void OnPacket(const Packet& p);

  void set_return_path(PacketHandler h) { return_path_ = std::move(h); }
  [[nodiscard]] PacketHandler AsHandler() {
    return [this](const Packet& p) { OnPacket(p); };
  }

 private:
  sim::Simulator& sim_;
  sim::Duration turnaround_;
  PacketHandler return_path_;
};

}  // namespace athena::net
