// A bidirectional two-party call with the mobile endpoint behind full
// radio machinery both ways: A's media and feedback climb the 5G uplink
// (sharing one RLC queue), B's media rides the downlink. Prints the
// per-direction cross-layer report — the clearest demonstration that the
// uplink's grant cycle, not the radio, is what jitters.
#include <chrono>
#include <iostream>

#include "app/two_party.hpp"
#include "core/analyzer.hpp"
#include "core/report.hpp"
#include "stats/table.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;

  sim::Simulator simulator;
  app::TwoPartyConfig config;
  config.seed = 123;
  config.channel = ran::ChannelModel::FadingRadio();
  config.cell.cell_ul_capacity_bps = 25e6;
  app::TwoPartySession session{simulator, config};

  std::cout << "Running a 60 s two-party call (A on 5G, B wired)...\n";
  session.Run(60s);

  const auto up = core::Correlator::Correlate(session.BuildUplinkCorrelatorInput());
  const auto down = core::Correlator::Correlate(session.BuildDownlinkCorrelatorInput());

  std::cout << "\n########## direction A → B (5G uplink) ##########\n";
  core::Report::Render(std::cout, core::Report::Inputs{
                                      .dataset = &up,
                                      .qoe = &session.qoe_at_b(),
                                      .ran_counters = &session.uplink().counters(),
                                      .controller_target_bps = std::nullopt,
                                  });

  std::cout << "\n########## direction B → A (5G downlink) ##########\n";
  core::Report::Render(std::cout, core::Report::Inputs{
                                      .dataset = &down,
                                      .qoe = &session.qoe_at_a(),
                                      .ran_counters = &session.downlink().counters(),
                                      .controller_target_bps = std::nullopt,
                                  });

  stats::Cdf up_owd{core::Analyzer::UplinkOwdSeries(up).Values()};
  stats::Cdf down_owd{core::Analyzer::UplinkOwdSeries(down).Values()};
  std::cout << "\nsame radio, different scheduler: uplink p50 "
            << stats::Fmt(up_owd.Median(), 2) << " ms vs downlink p50 "
            << stats::Fmt(down_owd.Median(), 2) << " ms\n";
  return 0;
}
