// §4 + §5.3 walkthrough: why a delay-based congestion controller
// misreads an idle 5G uplink, and how PHY telemetry fixes it.
//
// Runs the same call twice on an idle cell (our mobile is the only user):
//   1. plain GCC — the trendline filter sees the RAN's scheduling and
//      retransmission artifacts as congestion gradients (Fig. 10);
//   2. PHY-informed GCC — the modem's transport-block telemetry is used to
//      subtract RAN-attributed delay from the TWCC feedback before the
//      filter (the §5.3 "mask RAN-induced delays" proposal).
#include <chrono>
#include <iostream>

#include "app/session.hpp"
#include "mitigation/phy_informed.hpp"
#include "stats/table.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;

  auto make_config = [] {
    app::SessionConfig config;
    config.seed = 99;
    config.channel = ran::ChannelModel::FadingRadio();
    config.cell.cell_ul_capacity_bps = 25e6;
    return config;
  };

  // --- run 1: plain GCC ---
  sim::Simulator sim_plain;
  app::Session plain{sim_plain, make_config()};
  plain.Run(2min);
  const auto& gcc = dynamic_cast<app::GccController&>(plain.sender().controller()).gcc();

  std::cout << "Plain GCC on an IDLE 5G cell (2 min):\n";
  std::cout << "  detector updates: " << gcc.detector_updates() << '\n';
  std::cout << "  phantom overuse events: " << gcc.overuse_events() << '\n';
  std::cout << "  final target: " << stats::Fmt(gcc.target_bps() / 1e3, 0) << " kbps\n";

  std::cout << "\nA few detector snapshots around an overuse event:\n";
  const auto& history = gcc.history();
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history[i].state != cc::BandwidthUsage::kOverusing) continue;
    const std::size_t from = i >= 3 ? i - 3 : 0;
    for (std::size_t j = from; j <= i + 2 && j < history.size(); ++j) {
      const auto& s = history[j];
      std::cout << "  t=" << stats::Fmt(s.t.seconds(), 2) << "s  modified_trend="
                << stats::Fmt(s.modified_trend_ms, 2) << "ms  threshold="
                << stats::Fmt(s.threshold_ms, 2) << "ms  → " << cc::ToString(s.state) << '\n';
    }
    break;
  }

  // --- run 2: PHY-informed GCC ---
  sim::Simulator sim_masked;
  auto config = make_config();
  mitigation::PhyInformedController* phy = nullptr;
  config.controller_factory = [&phy] {
    auto c = std::make_unique<mitigation::PhyInformedController>();
    phy = c.get();
    return c;
  };
  app::Session masked{sim_masked, config};
  masked.ran_uplink()->set_telemetry_listener(
      [&phy](const ran::TbRecord& tb) { phy->OnTbRecord(tb); });
  masked.Run(2min);

  std::cout << "\nPHY-informed GCC on the same cell:\n";
  std::cout << "  reports masked with RAN-attributed delay: " << phy->masked_reports() << '\n';
  std::cout << "  packets resolved by the online packet↔TB estimator: "
            << phy->estimator().resolved_packets() << '\n';
  std::cout << "  phantom overuse events: " << phy->gcc().overuse_events() << '\n';
  std::cout << "  final target: " << stats::Fmt(phy->gcc().target_bps() / 1e3, 0) << " kbps\n";

  std::cout << "\nQoE side by side (receive bitrate p50 kbps / frame rate p50):\n";
  std::cout << "  plain:        " << stats::Fmt(plain.qoe().ReceiveBitrateKbps().Median(), 0)
            << " / " << stats::Fmt(plain.qoe().FrameRateFps().Median(), 1) << '\n';
  std::cout << "  PHY-informed: " << stats::Fmt(masked.qoe().ReceiveBitrateKbps().Median(), 0)
            << " / " << stats::Fmt(masked.qoe().FrameRateFps().Median(), 1) << '\n';
  return 0;
}
