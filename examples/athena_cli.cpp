// athena_cli — scenario runner with CSV export.
//
// Run any session configuration from the command line and dump the full
// cross-layer dataset for offline analysis (pandas/R/gnuplot):
//
//   athena_cli [options]
//     --access=5g|emulated|wifi|leo     access network      (default 5g)
//     --controller=gcc|nada|scream|l4s  congestion control  (default gcc)
//     --duration=SECONDS                call length         (default 60)
//     --seed=N                          RNG seed            (default 42)
//     --cross-mbps=X                    cross-traffic load  (default 0)
//     --fading                          enable the fading radio
//     --out=DIR                         write packets/frames/telemetry/
//                                       capture CSVs into DIR
//     --trace=FILE                      write a Chrome trace-event JSON
//                                       (open in Perfetto / chrome://tracing)
//     --metrics=FILE                    write periodic metric snapshots as CSV
//     --diagnose                        run the live anomaly detectors and
//                                       print the ranked health report (with
//                                       --mitigate: also the decision ledger —
//                                       trigger, attribution, knob delta,
//                                       outcome per decision)
//     --mitigate                        close the loop: a MitigationController
//                                       subscribes to the live detectors and
//                                       actuates the grant/CC/pacing knobs
//                                       under fail-safe guardrails. With
//                                       --chaos: runs mitigation-on/off pairs
//                                       and checks the QoE + guardrail
//                                       contracts instead of the plain
//                                       degradation contract
//     --mitigate-budget-ms=N            hard sense-to-act budget, virtual
//                                       time (default 50)
//     --expose=FILE                     write metrics + live detector state in
//                                       Prometheus text format
//     --anomalies=FILE                  write the structured event log as JSONL
//     --sweep=N                         run N sessions with per-run seeds
//                                       derived from --seed (run i gets
//                                       sim::DeriveSeed(seed, i)); file
//                                       outputs gain a .runN suffix
//     --jobs=J                          worker threads for --sweep/--chaos
//                                       (default: hardware concurrency).
//                                       Output is bit-identical for any J.
//     --chaos=NAME[,NAME...]|all        chaos mode: run the named fault
//                                       scenario(s) (or the whole catalog) under
//                                       --chaos-seeds derived seeds and check
//                                       the degradation-contract invariants;
//                                       exits nonzero on any violation
//     --chaos-seeds=N                   seeds per chaos scenario (default 4)
//     --chaos-out=FILE                  write the chaos matrix as JSON
//     --chaos-list                      list the built-in chaos scenarios
//     --ingest-out=FILE                 stream trace events through the
//                                       telemetry ingest pipeline into a
//                                       compact ATHC columnar file
//     --rollup-bucket=MS                rollup bucket width (default 100);
//                                       activates the pipeline rollup
//     --rollup-out=FILE                 write the time-bucketed rollup as JSON
//     --export-shards=N                 write the fleet exposition as N
//                                       sharded Prometheus files (requires
//                                       --expose as the base path)
//     --perfetto-out=FILE               convert the finished --ingest-out
//                                       columnar stream to Chrome trace JSON
//                                       (chunked: O(block) memory)
//     --checkpoint-every=MS             snapshot the session every MS of
//                                       virtual time (resilient mode)
//     --checkpoint-out=FILE             spill the latest checkpoint to FILE
//     --restore=FILE                    resume from a checkpoint file; the
//                                       replayed state is digest-verified
//                                       before the run continues
//     --mem-budget=BYTES                overload governor: bound the
//                                       correlator input, shedding
//                                       lowest-priority records first
//     --supervise                       run under the watchdog supervisor
//                                       (stall detection + bounded
//                                       restart-from-checkpoint)
//     --kill-at=MS                      inject a crash at virtual time MS
//                                       (exercises the restore path)
//     --kill-every-events=N             inject a crash every N events
//     --fleet-report=FILE               aggregate every run of this
//                                       invocation (single, --sweep or
//                                       --chaos) into a fleet report:
//                                       population delay-decomposition CDFs,
//                                       anomaly prevalence and the SLO
//                                       scoreboard as deterministic JSON
//                                       (byte-identical at any --jobs)
//     --fleet-slo=FILE                  SLO spec file (one per line:
//                                       "name: sample metric <= T @ 0.95
//                                       window 64"); default = built-ins
//     --fleet-expose=FILE               write the fleet.slo.* and
//                                       fleet.prevalence.* gauges in
//                                       Prometheus text format
//     --world-ues=N                     world mode: run N concurrent
//                                       sessions sharing --world-cells
//                                       cells across --world-shards
//                                       shard workers (sharded engine,
//                                       src/world/); prints the world
//                                       digest + population summary and
//                                       honours --fleet-report
//     --world-cells=C                   cells in the world  (default 4)
//     --world-shards=S                  shards (clamped to C, default 1)
//     --world-handover=K                every K-th UE hands over mid-run
//     --world-mode=threads|seq          one worker per shard vs the
//                                       sequential oracle (default threads)
//     --world-crosscheck                after the run, repeat at 1 shard
//                                       sequentially and require a
//                                       byte-identical digest + report
//     --world-chaos                     run the world chaos contract
//                                       (cell outage; see
//                                       src/fault/world_chaos.hpp)
//     --world-checkpoint-every=K        snapshot the whole world every K
//                                       window boundaries (default 64 in
//                                       supervised mode)
//     --world-checkpoint-out=FILE       spill the latest world snapshot
//                                       to FILE (ATHWSNP format)
//     --world-kill-shard=S              supervised mode: shard S's worker
//                                       dies once; the supervisor restores
//                                       from the latest snapshot and the
//                                       recovered digest must equal an
//                                       uninterrupted run's
//     --world-kill-window=W             1-based window of the kill
//                                       (default: derived from --seed)
//     --world-kill-cell=C               blame the kills on cell C and keep
//                                       killing until its restart budget
//                                       (1) is exhausted — the supervisor
//                                       quarantines the cell and evacuates
//                                       its UEs
//     --world-restore=FILE              resume a world from a snapshot
//                                       file; the replay is digest-verified
//                                       at the snapshot's window before
//                                       the run continues
//     --fleet-baseline=FILE             stored baseline report to gate
//                                       against
//     --fleet-gate                      with --chaos/--sweep: after the run,
//                                       compare the fleet report against
//                                       --fleet-baseline (CDF dominance +
//                                       SLO compliance) and exit nonzero on
//                                       regression. Without a run mode:
//                                       gate --fleet-report (an existing
//                                       file) against the baseline directly
//
// Example:
//   athena_cli --access=5g --fading --cross-mbps=16 --duration=120
//       --out=/tmp/athena_run --trace=/tmp/athena_run/trace.json --diagnose
//
// CI regression gate:
//   athena_cli --chaos=all --chaos-seeds=2 --jobs=2
//       --fleet-report=fleet.json --fleet-baseline=tests/data/fleet_baseline.json
//       --fleet-gate
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <algorithm>

#include "athena.hpp"
#include "core/report.hpp"
#include "fault/chaos.hpp"
#include "fault/mitigation_chaos.hpp"
#include "fault/world_chaos.hpp"
#include "mitigation/control/runtime.hpp"
#include "obs/fleet/report.hpp"
#include "obs/live/exposition.hpp"
#include "obs/live/health.hpp"
#include "obs/pipeline/export.hpp"
#include "obs/pipeline/pipeline.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/supervisor.hpp"
#include "resilience/world_checkpoint.hpp"
#include "resilience/world_supervisor.hpp"
#include "sim/runner.hpp"
#include "world/engine.hpp"

namespace {

using namespace athena;

struct Options {
  std::string access = "5g";
  std::string controller = "gcc";
  int duration_s = 60;
  std::uint64_t seed = 42;
  double cross_mbps = 0.0;
  bool fading = false;
  std::string out_dir;
  std::string trace_path;
  std::string metrics_path;
  bool diagnose = false;
  bool mitigate = false;       ///< closed-loop mitigation control plane
  int mitigate_budget_ms = 50; ///< sense-to-act budget (virtual ms)
  std::string expose_path;
  std::string anomalies_path;
  int sweep = 0;       ///< 0 = single run; N>0 = N derived-seed runs
  unsigned jobs = 0;   ///< 0 = hardware concurrency
  std::string chaos;   ///< scenario name or "all"; empty = normal mode
  std::size_t chaos_seeds = 4;
  std::string chaos_out;
  bool chaos_list = false;

  // --- telemetry ingest pipeline (src/obs/pipeline/) ---
  std::string ingest_out;      ///< ATHC columnar stream destination
  int rollup_bucket_ms = 0;    ///< 0 = default width; >0 activates rollup out
  std::string rollup_out;      ///< rollup JSON destination
  unsigned export_shards = 0;  ///< 0 = no sharded exposition
  std::string perfetto_out;    ///< chunked columnar→Chrome-JSON conversion

  [[nodiscard]] bool pipeline() const {
    return !ingest_out.empty() || rollup_bucket_ms > 0 || !rollup_out.empty() ||
           export_shards > 0 || !perfetto_out.empty();
  }

  // --- resilient mode (src/resilience/) ---
  int checkpoint_every_ms = 0;          ///< 0 = no periodic snapshots
  std::string checkpoint_out;           ///< latest-checkpoint spill file
  std::string restore_path;             ///< resume from this checkpoint
  std::size_t mem_budget = 0;           ///< input byte budget (0 = unbounded)
  bool supervise = false;
  int kill_at_ms = 0;                   ///< injected crash (virtual ms)
  std::uint64_t kill_every_events = 0;  ///< injected crash cadence

  [[nodiscard]] bool resilient() const {
    return checkpoint_every_ms > 0 || !checkpoint_out.empty() ||
           !restore_path.empty() || mem_budget > 0 || supervise ||
           kill_at_ms > 0 || kill_every_events > 0;
  }

  // --- fleet observability (src/obs/fleet/) ---
  std::string fleet_report;    ///< report JSON destination
  std::string fleet_slo;       ///< SLO spec file (empty = built-in catalog)
  std::string fleet_expose;    ///< fleet gauges, Prometheus text format
  std::string fleet_baseline;  ///< stored baseline for the gate
  bool fleet_gate = false;

  [[nodiscard]] bool fleet() const {
    return !fleet_report.empty() || !fleet_expose.empty() || fleet_gate;
  }

  // --- world mode (src/world/) ---
  std::size_t world_ues = 0;  ///< >0 activates the sharded world engine
  std::size_t world_cells = 4;
  std::size_t world_shards = 1;
  std::size_t world_handover_every = 0;
  std::string world_mode = "threads";  ///< threads | seq
  bool world_crosscheck = false;
  bool world_chaos = false;

  // --- world resilience (src/resilience/world_*) ---
  std::uint64_t world_checkpoint_every = 64;  ///< snapshot cadence (windows)
  std::string world_checkpoint_out;           ///< latest-snapshot spill file
  std::size_t world_kill_shard = world::WorldConfig::kNoCrash;
  std::uint64_t world_kill_window = 0;  ///< 0 = derived from the seed
  std::size_t world_kill_cell = world::WorldConfig::kNoCrash;  ///< blame cell
  std::string world_restore;            ///< resume from this snapshot

  [[nodiscard]] bool world() const { return world_ues > 0; }
  [[nodiscard]] bool world_supervised() const {
    return world_kill_shard != world::WorldConfig::kNoCrash ||
           !world_restore.empty() || !world_checkpoint_out.empty();
  }
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "access", &value)) {
      opt.access = value;
    } else if (ParseFlag(arg, "controller", &value)) {
      opt.controller = value;
    } else if (ParseFlag(arg, "duration", &value)) {
      opt.duration_s = std::stoi(value);
    } else if (ParseFlag(arg, "seed", &value)) {
      opt.seed = std::stoull(value);
    } else if (ParseFlag(arg, "cross-mbps", &value)) {
      opt.cross_mbps = std::stod(value);
    } else if (ParseFlag(arg, "out", &value)) {
      opt.out_dir = value;
    } else if (ParseFlag(arg, "trace", &value)) {
      opt.trace_path = value;
    } else if (ParseFlag(arg, "metrics", &value)) {
      opt.metrics_path = value;
    } else if (ParseFlag(arg, "expose", &value)) {
      opt.expose_path = value;
    } else if (ParseFlag(arg, "anomalies", &value)) {
      opt.anomalies_path = value;
    } else if (ParseFlag(arg, "sweep", &value)) {
      opt.sweep = std::stoi(value);
    } else if (ParseFlag(arg, "jobs", &value)) {
      opt.jobs = static_cast<unsigned>(std::stoul(value));
    } else if (ParseFlag(arg, "chaos", &value)) {
      opt.chaos = value;
    } else if (ParseFlag(arg, "chaos-seeds", &value)) {
      opt.chaos_seeds = std::stoul(value);
    } else if (ParseFlag(arg, "chaos-out", &value)) {
      opt.chaos_out = value;
    } else if (arg == "--chaos-list") {
      opt.chaos_list = true;
    } else if (ParseFlag(arg, "ingest-out", &value)) {
      opt.ingest_out = value;
    } else if (ParseFlag(arg, "rollup-bucket", &value)) {
      opt.rollup_bucket_ms = std::stoi(value);
    } else if (ParseFlag(arg, "rollup-out", &value)) {
      opt.rollup_out = value;
    } else if (ParseFlag(arg, "export-shards", &value)) {
      opt.export_shards = static_cast<unsigned>(std::stoul(value));
    } else if (ParseFlag(arg, "perfetto-out", &value)) {
      opt.perfetto_out = value;
    } else if (ParseFlag(arg, "checkpoint-every", &value)) {
      opt.checkpoint_every_ms = std::stoi(value);
    } else if (ParseFlag(arg, "checkpoint-out", &value)) {
      opt.checkpoint_out = value;
    } else if (ParseFlag(arg, "restore", &value)) {
      opt.restore_path = value;
    } else if (ParseFlag(arg, "mem-budget", &value)) {
      opt.mem_budget = std::stoul(value);
    } else if (ParseFlag(arg, "kill-at", &value)) {
      opt.kill_at_ms = std::stoi(value);
    } else if (ParseFlag(arg, "kill-every-events", &value)) {
      opt.kill_every_events = std::stoull(value);
    } else if (ParseFlag(arg, "fleet-report", &value)) {
      opt.fleet_report = value;
    } else if (ParseFlag(arg, "fleet-slo", &value)) {
      opt.fleet_slo = value;
    } else if (ParseFlag(arg, "fleet-expose", &value)) {
      opt.fleet_expose = value;
    } else if (ParseFlag(arg, "fleet-baseline", &value)) {
      opt.fleet_baseline = value;
    } else if (ParseFlag(arg, "world-ues", &value)) {
      opt.world_ues = std::stoul(value);
    } else if (ParseFlag(arg, "world-cells", &value)) {
      opt.world_cells = std::stoul(value);
    } else if (ParseFlag(arg, "world-shards", &value)) {
      opt.world_shards = std::stoul(value);
    } else if (ParseFlag(arg, "world-handover", &value)) {
      opt.world_handover_every = std::stoul(value);
    } else if (ParseFlag(arg, "world-mode", &value)) {
      opt.world_mode = value;
    } else if (arg == "--world-crosscheck") {
      opt.world_crosscheck = true;
    } else if (arg == "--world-chaos") {
      opt.world_chaos = true;
    } else if (ParseFlag(arg, "world-checkpoint-every", &value)) {
      opt.world_checkpoint_every = std::stoull(value);
    } else if (ParseFlag(arg, "world-checkpoint-out", &value)) {
      opt.world_checkpoint_out = value;
    } else if (ParseFlag(arg, "world-kill-shard", &value)) {
      opt.world_kill_shard = std::stoul(value);
    } else if (ParseFlag(arg, "world-kill-window", &value)) {
      opt.world_kill_window = std::stoull(value);
    } else if (ParseFlag(arg, "world-kill-cell", &value)) {
      opt.world_kill_cell = std::stoul(value);
    } else if (ParseFlag(arg, "world-restore", &value)) {
      opt.world_restore = value;
    } else if (arg == "--fleet-gate") {
      opt.fleet_gate = true;
    } else if (arg == "--supervise") {
      opt.supervise = true;
    } else if (arg == "--diagnose") {
      opt.diagnose = true;
    } else if (arg == "--mitigate") {
      opt.mitigate = true;
    } else if (ParseFlag(arg, "mitigate-budget-ms", &value)) {
      opt.mitigate_budget_ms = std::stoi(value);
    } else if (arg == "--fading") {
      opt.fading = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: athena_cli [--access=5g|emulated|wifi|leo] "
                   "[--controller=gcc|nada|scream|l4s] [--duration=S] [--seed=N] "
                   "[--cross-mbps=X] [--fading] [--out=DIR] [--trace=FILE] "
                   "[--metrics=FILE] [--diagnose] [--mitigate] "
                   "[--mitigate-budget-ms=N] [--expose=FILE] "
                   "[--anomalies=FILE] [--sweep=N] [--jobs=J] "
                   "[--chaos=NAME|all] [--chaos-seeds=N] [--chaos-out=FILE] "
                   "[--chaos-list] [--ingest-out=FILE] [--rollup-bucket=MS] "
                   "[--rollup-out=FILE] [--export-shards=N] [--perfetto-out=FILE] "
                   "[--checkpoint-every=MS] [--checkpoint-out=FILE] "
                   "[--restore=FILE] [--mem-budget=BYTES] [--supervise] "
                   "[--kill-at=MS] [--kill-every-events=N] "
                   "[--fleet-report=FILE] [--fleet-slo=FILE] "
                   "[--fleet-expose=FILE] [--fleet-baseline=FILE] [--fleet-gate] "
                   "[--world-ues=N] [--world-cells=C] [--world-shards=S] "
                   "[--world-handover=K] [--world-mode=threads|seq] "
                   "[--world-crosscheck] [--world-chaos] "
                   "[--world-checkpoint-every=K] [--world-checkpoint-out=FILE] "
                   "[--world-kill-shard=S] [--world-kill-window=W] "
                   "[--world-kill-cell=C] [--world-restore=FILE]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  return opt;
}

app::SessionConfig BuildConfig(const Options& opt, std::uint64_t seed) {
  app::SessionConfig config;
  config.seed = seed;
  if (opt.access == "emulated") {
    config.access = app::SessionConfig::Access::kEmulated;
  } else if (opt.access == "wifi") {
    config.access = app::SessionConfig::Access::kWifiLike;
  } else if (opt.access == "leo") {
    config.access = app::SessionConfig::Access::kLeoSat;
  } else if (opt.access != "5g") {
    std::cerr << "unknown access network: " << opt.access << '\n';
    std::exit(2);
  }
  if (opt.controller == "nada") {
    config.controller = app::SessionConfig::Controller::kNada;
  } else if (opt.controller == "scream") {
    config.controller = app::SessionConfig::Controller::kScream;
  } else if (opt.controller == "l4s") {
    config.controller = app::SessionConfig::Controller::kL4s;
  } else if (opt.controller != "gcc") {
    std::cerr << "unknown controller: " << opt.controller << '\n';
    std::exit(2);
  }
  if (opt.fading) config.channel = ran::ChannelModel::FadingRadio();
  if (opt.cross_mbps > 0.0) {
    config.cross_traffic = net::CapacityTrace{opt.cross_mbps * 1e6};
    config.cross_burstiness = 0.35;
    config.cross_modulation_sigma = 0.5;
    config.cell.cell_ul_capacity_bps = 25e6;
  }
  return config;
}

std::vector<obs::fleet::SloSpec> LoadSlos(const Options& opt) {
  if (opt.fleet_slo.empty()) return obs::fleet::DefaultSlos();
  std::ifstream in{opt.fleet_slo};
  if (!in) throw std::runtime_error("cannot read " + opt.fleet_slo);
  return obs::fleet::ParseSloSpecs(in);
}

/// Runs the gate of `report` against the stored baseline. Returns the
/// process exit code (nonzero on regression).
int GateReport(const Options& opt, const obs::fleet::FleetReport& report) {
  std::ifstream in{opt.fleet_baseline};
  if (!in) throw std::runtime_error("cannot read " + opt.fleet_baseline);
  const obs::fleet::FleetReport baseline = obs::fleet::ParseReport(in);
  obs::fleet::GateOptions gate_options;
  // Under --mitigate the baseline is the un-mitigated population:
  // actuations change what the detectors see, so detection-rate deltas
  // are expected and only the QoE/delay + SLO axes are the contract.
  gate_options.compare_prevalence = !opt.mitigate;
  const obs::fleet::GateResult gate =
      obs::fleet::GateAgainstBaseline(report, baseline, gate_options);
  for (const std::string& failure : gate.failures) {
    std::cout << "fleet gate: " << failure << '\n';
  }
  std::cout << "fleet gate vs " << opt.fleet_baseline << ": "
            << (gate.ok ? "PASS" : "FAIL") << " (" << report.sessions
            << " sessions, " << gate.failures.size() << " regression(s)"
            << (gate_options.compare_prevalence ? "" : ", prevalence axis skipped")
            << ")\n";
  return gate.ok ? 0 : 1;
}

/// Fleet outputs for one invocation's aggregated summaries: the report
/// JSON, the fleet.slo.* / fleet.prevalence.* exposition, and the gate.
/// Returns the process exit code.
int FinishFleet(const Options& opt, const obs::fleet::FleetAggregator& aggregator,
                const obs::fleet::SloEngine& engine) {
  const obs::fleet::FleetReport report = obs::fleet::BuildReport(aggregator, engine);

  if (!opt.fleet_report.empty()) {
    std::ofstream os{opt.fleet_report};
    if (!os) throw std::runtime_error("cannot write " + opt.fleet_report);
    obs::fleet::WriteJson(report, os);
    std::cout << "wrote " << opt.fleet_report << " (" << report.sessions
              << " sessions)\n";
  }

  if (!opt.fleet_expose.empty()) {
    // Publish into a scoped registry and render through the shared
    // prom_text exposition path — the same formatter every other metric
    // family uses.
    obs::MetricsRegistry registry;
    {
      obs::ScopedMetrics scope{&registry};
      engine.PublishMetrics();
      obs::fleet::PublishPrevalenceMetrics(aggregator.fleet());
    }
    std::ofstream os{opt.fleet_expose};
    if (!os) throw std::runtime_error("cannot write " + opt.fleet_expose);
    const obs::pipeline::TimeBucketRollup empty;
    obs::pipeline::WritePrometheusShard(os, empty, &registry,
                                        {.shard = 0, .shard_count = 1});
    std::cout << "wrote " << opt.fleet_expose << '\n';
  }

  if (opt.fleet_gate) {
    if (opt.fleet_baseline.empty()) {
      std::cerr << "--fleet-gate needs --fleet-baseline=FILE\n";
      return 2;
    }
    return GateReport(opt, report);
  }
  return 0;
}

/// Inserts `tag` before the path's extension: ("m.prom", ".shard0") ->
/// "m.shard0.prom"; suffix-less paths just append.
std::string TagPath(const std::string& path, const std::string& tag) {
  const auto dot = path.find_last_of('.');
  const auto slash = path.find_last_of('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + tag;
  }
  return path.substr(0, dot) + tag + path.substr(dot);
}

/// "trace.json" + run 3 -> "trace.run3.json".
std::string RunPath(const std::string& path, std::size_t run_index, bool sweep) {
  if (!sweep) return path;
  return TagPath(path, ".run" + std::to_string(run_index));
}

/// One run's console output plus (when fleet mode is on) its fleet digest.
struct RunResult {
  std::string text;
  obs::fleet::SessionSummary summary;
};

/// One complete session: build, run, export, report. All console output
/// goes to the returned string so sweep runs can execute concurrently and
/// still print in index order. Thread-safe because the obs globals are
/// thread_local and everything else here is per-call state.
RunResult RunOne(const Options& opt, std::uint64_t seed, std::size_t run_index,
                 bool sweep) {
  std::ostringstream out;
  sim::Simulator simulator;

  // Observability: installed before the session is built so constructor-time
  // events are captured too. The correlator runs inside the session scope so
  // its core/pkt.uplink track lands in the same trace. When the telemetry
  // pipeline is active, this worker thread's ring shard (bound by the
  // ParallelRunner hooks, or by main for a single run) joins the fanout.
  // Closed-loop mitigation: the runtime's sink joins the trace fanout so
  // its private LiveEngine sees the same event stream as the diagnostics.
  std::unique_ptr<mitigation::control::MitigationRuntime> runtime;
  if (opt.mitigate) {
    mitigation::control::MitigationRuntime::Options mopt;
    mopt.controller.budget =
        sim::Duration{std::chrono::milliseconds{std::max(1, opt.mitigate_budget_ms)}};
    runtime = std::make_unique<mitigation::control::MitigationRuntime>(mopt);
  }

  const bool live = opt.diagnose || !opt.expose_path.empty() ||
                    !opt.anomalies_path.empty() || opt.fleet();
  obs::TraceSink* ring_sink = obs::pipeline::TelemetryPipeline::CurrentThreadSink();
  obs::TraceFanout extra_fanout;
  if (ring_sink != nullptr) extra_fanout.Add(ring_sink);
  if (runtime) extra_fanout.Add(runtime->sink());
  std::unique_ptr<obs::ObsSession> observability;
  if (!opt.trace_path.empty() || !opt.metrics_path.empty() || live ||
      extra_fanout.size() > 0) {
    obs::ObsSession::Options obs_options;
    obs_options.trace = !opt.trace_path.empty();
    obs_options.metrics = true;
    obs_options.metrics_period = opt.metrics_path.empty()
                                     ? sim::Duration{0}
                                     : sim::Duration{std::chrono::milliseconds{100}};
    obs_options.live = live;
    obs_options.extra_sink = extra_fanout.size() > 0 ? &extra_fanout : nullptr;
    observability = std::make_unique<obs::ObsSession>(simulator, obs_options);
  }

  app::SessionConfig config = BuildConfig(opt, seed);
  if (runtime) runtime->InstallConfigHooks(config);
  app::Session session{simulator, config};
  if (runtime) runtime->BindSession(simulator, session);
  out << "running " << opt.duration_s << " s over " << opt.access << " with "
      << opt.controller << " (seed " << seed << ")"
      << (runtime ? " [mitigation on]" : "") << "...\n";
  session.Run(std::chrono::seconds{opt.duration_s});

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());

  auto write = [&](const std::string& path, auto&& writer) {
    std::ofstream os{path};
    if (!os) throw std::runtime_error("cannot write " + path);
    writer(os);
    out << "wrote " << path << '\n';
  };

  if (observability) {
    if (!opt.trace_path.empty()) {
      write(RunPath(opt.trace_path, run_index, sweep),
            [&](std::ostream& os) { observability->recorder().WriteJson(os); });
    }
    if (!opt.metrics_path.empty()) {
      write(RunPath(opt.metrics_path, run_index, sweep),
            [&](std::ostream& os) { observability->registry().WriteCsv(os); });
    }
    if (!opt.expose_path.empty()) {
      write(RunPath(opt.expose_path, run_index, sweep), [&](std::ostream& os) {
        obs::live::WritePrometheus(os, observability->registry(),
                                   observability->live());
      });
    }
    if (!opt.anomalies_path.empty() && observability->live() != nullptr) {
      write(RunPath(opt.anomalies_path, run_index, sweep),
            [&](std::ostream& os) { observability->live()->log().WriteJsonl(os); });
    }
    if (opt.diagnose && observability->live() != nullptr) {
      obs::live::HealthReport::Build(*observability->live()).Render(out);
    }
  }

  if (runtime) {
    if (opt.diagnose) {
      runtime->RenderLedger(out);
    } else if (const auto* c = runtime->controller()) {
      out << "mitigation: decisions=" << c->ledger().size()
          << " actuations=" << c->actuations() << " reverts=" << c->reverts()
          << " guardrail_blocks=" << c->guardrail_blocks()
          << " max_sense_to_act_us=" << c->max_sense_to_act().count()
          << " ledger=0x" << std::hex << c->LedgerDigest() << std::dec << '\n';
    }
  }

  // --- the cross-layer report ---
  core::Report::Render(
      out,
      core::Report::Inputs{
          .dataset = &data,
          .qoe = &session.qoe(),
          .ran_counters =
              session.ran_uplink() ? &session.ran_uplink()->counters() : nullptr,
          .controller_target_bps = session.sender().controller().target_bps(),
      });

  // --- CSV export ---
  if (!opt.out_dir.empty()) {
    auto write_csv = [&](const std::string& name, auto&& writer) {
      write(opt.out_dir + "/" + RunPath(name, run_index, sweep), writer);
    };
    write_csv("packets.csv",
              [&](std::ostream& os) { core::CsvExport::Packets(os, data); });
    write_csv("frames.csv",
              [&](std::ostream& os) { core::CsvExport::Frames(os, data); });
    if (session.ran_uplink() != nullptr) {
      write_csv("telemetry.csv", [&](std::ostream& os) {
        core::CsvExport::Telemetry(os, session.ran_uplink()->telemetry());
      });
    }
    write_csv("capture_sender.csv", [&](std::ostream& os) {
      core::CsvExport::Capture(os, session.sender_capture().records());
    });
  }

  RunResult result;
  if (opt.fleet()) {
    const obs::live::DetectorBank* bank =
        observability && observability->live() != nullptr
            ? &observability->live()->bank()
            : nullptr;
    result.summary =
        obs::fleet::SummarizeSession({.dataset = &data,
                                      .qoe = &session.qoe(),
                                      .detectors = bank,
                                      .scenario = opt.access + "_" + opt.controller,
                                      .seed = seed});
  }
  result.text = out.str();
  return result;
}

/// Chaos mode: run fault scenarios × derived seeds through the matrix
/// runner and fail loudly on any invariant violation. Returns the
/// process exit code.
int RunChaos(const Options& opt) {
  const std::vector<fault::ChaosScenario> catalog = fault::BuiltinScenarios();

  std::vector<fault::ChaosScenario> selected;
  if (opt.chaos == "all") {
    selected = catalog;
  } else {
    // Comma-separated scenario names, e.g. the CI 2-scenario smoke pair.
    std::stringstream names{opt.chaos};
    std::string name;
    while (std::getline(names, name, ',')) {
      if (name.empty()) continue;
      const fault::ChaosScenario* s = fault::FindScenario(catalog, name);
      if (s == nullptr) {
        std::cerr << "unknown chaos scenario: " << name << " (try --chaos-list)\n";
        return 2;
      }
      selected.push_back(*s);
    }
    if (selected.empty()) {
      std::cerr << "--chaos needs at least one scenario name\n";
      return 2;
    }
  }
  if (opt.chaos_seeds == 0) {
    std::cerr << "--chaos-seeds must be >= 1\n";
    return 2;
  }

  sim::ParallelRunner probe{opt.jobs};

  if (opt.mitigate) {
    // Mitigation-on/off pairs: judge the QoE delta + guardrail contract
    // instead of the plain degradation contract.
    const sim::Duration budget{
        std::chrono::milliseconds{std::max(1, opt.mitigate_budget_ms)}};
    std::cout << "mitigation chaos: " << selected.size() << " scenario(s) x "
              << opt.chaos_seeds << " seed(s), " << probe.jobs() << " jobs, base seed "
              << opt.seed << ", budget " << sim::ToMs(budget) << " ms\n";
    const fault::MitigationMatrixResult result =
        fault::RunMitigationMatrix(selected, opt.seed, opt.chaos_seeds, opt.jobs,
                                   budget, /*summarize=*/opt.fleet());
    fault::RenderMitigationTable(std::cout, result);

    if (!opt.chaos_out.empty()) {
      std::ofstream os{opt.chaos_out};
      if (!os) throw std::runtime_error("cannot write " + opt.chaos_out);
      fault::WriteMitigationJson(os, result, opt.seed, opt.chaos_seeds, probe.jobs(),
                                 budget);
      std::cout << "wrote " << opt.chaos_out << '\n';
    }

    int exit_code = result.all_ok() ? 0 : 1;
    if (opt.fleet()) {
      obs::fleet::FleetAggregator aggregator;
      obs::fleet::SloEngine engine{LoadSlos(opt)};
      for (const fault::MitigationOutcome& o : result.outcomes) {
        aggregator.Fold(o.summary);
        engine.Observe(o.summary);
      }
      const int fleet_code = FinishFleet(opt, aggregator, engine);
      if (exit_code == 0) exit_code = fleet_code;
    }
    return exit_code;
  }

  std::cout << "chaos: " << selected.size() << " scenario(s) x " << opt.chaos_seeds
            << " seed(s), " << probe.jobs() << " jobs, base seed " << opt.seed << '\n';
  const fault::ChaosMatrixResult result = fault::RunChaosMatrix(
      selected, opt.seed, opt.chaos_seeds, opt.jobs, /*summarize=*/opt.fleet());
  fault::RenderChaosTable(std::cout, result);

  if (!opt.chaos_out.empty()) {
    std::ofstream os{opt.chaos_out};
    if (!os) throw std::runtime_error("cannot write " + opt.chaos_out);
    fault::WriteChaosJson(os, result, opt.seed, opt.chaos_seeds, probe.jobs());
    std::cout << "wrote " << opt.chaos_out << '\n';
  }

  int exit_code = result.all_ok() ? 0 : 1;
  if (opt.fleet()) {
    // Outcomes arrive in index order regardless of --jobs, so the fold
    // (and therefore the report bytes and SLO windows) is reproducible.
    obs::fleet::FleetAggregator aggregator;
    obs::fleet::SloEngine engine{LoadSlos(opt)};
    for (const fault::ChaosOutcome& o : result.outcomes) {
      aggregator.Fold(o.summary);
      engine.Observe(o.summary);
    }
    const int fleet_code = FinishFleet(opt, aggregator, engine);
    if (exit_code == 0) exit_code = fleet_code;
  }
  return exit_code;
}

/// Resilient mode: checkpointed, optionally supervised, optionally
/// restored run of a single session. Returns the process exit code.
int RunResilient(const Options& opt) {
  // The mitigation runtime must outlive the driver/supervisor: RunPlan is
  // copied per restart attempt and its hooks capture the runtime raw.
  std::unique_ptr<mitigation::control::MitigationRuntime> runtime;
  if (opt.mitigate) {
    mitigation::control::MitigationRuntime::Options mopt;
    mopt.controller.budget =
        sim::Duration{std::chrono::milliseconds{std::max(1, opt.mitigate_budget_ms)}};
    runtime = std::make_unique<mitigation::control::MitigationRuntime>(mopt);
  }

  resilience::RunPlan plan;
  plan.config = BuildConfig(opt, opt.seed);
  plan.duration = std::chrono::seconds{opt.duration_s};
  plan.checkpoint_every = std::chrono::milliseconds{opt.checkpoint_every_ms};
  plan.budget.input_bytes = opt.mem_budget;
  if (runtime) {
    // Every attempt (first run, restarts, --restore) rebinds a fresh
    // controller; the replayed ledger lands in the report appendix, so
    // restore byte-identity covers the control plane's decisions too.
    runtime->InstallConfigHooks(plan.config);
    mitigation::control::MitigationRuntime* rt = runtime.get();
    plan.trace_sink = rt->sink();
    plan.on_session = [rt](sim::Simulator& sim, app::Session& session) {
      rt->BindSession(sim, session);
    };
    plan.report_appendix = [rt](std::ostream& os) { rt->RenderLedger(os); };
  }
  if (!opt.checkpoint_out.empty()) {
    plan.on_checkpoint = [&](const resilience::Checkpoint& c) {
      c.WriteFile(opt.checkpoint_out);
      std::cout << "checkpoint @ " << c.virtual_time.ms() << " ms ("
                << c.SerializedBytes() << " bytes) -> " << opt.checkpoint_out << '\n';
    };
  }

  resilience::ProcessFaultSpec faults;
  if (opt.kill_at_ms > 0) {
    faults.kill_at = sim::kEpoch + std::chrono::milliseconds{opt.kill_at_ms};
  }
  faults.kill_every_events = opt.kill_every_events;

  std::optional<resilience::Checkpoint> start;
  if (!opt.restore_path.empty()) {
    start = resilience::Checkpoint::LoadFile(opt.restore_path);
    std::cout << "loaded checkpoint " << opt.restore_path << " @ "
              << start->virtual_time.ms() << " ms (" << start->events_executed
              << " events)\n";
  }

  resilience::RunOutcome outcome;
  if (opt.supervise || faults.any()) {
    resilience::SupervisorOptions options;
    options.on_event = [](const std::string& m) {
      std::cout << "[supervisor] " << m << '\n';
    };
    resilience::Supervisor supervisor{std::move(plan), options};
    const resilience::SupervisedOutcome sup =
        start ? supervisor.RunFrom(*start, faults) : supervisor.Run(faults);
    std::cout << "supervision: crashes=" << sup.crashes << " stalls=" << sup.stalls
              << " restarts=" << sup.restarts << '\n';
    if (!sup.completed) {
      std::cerr << "supervised run did not complete: " << sup.last_error << '\n';
      return 1;
    }
    outcome = sup.outcome;
  } else {
    resilience::CheckpointingDriver driver{std::move(plan)};
    outcome = start ? driver.Resume(*start) : driver.Run();
  }

  if (outcome.restored) {
    std::cout << "restored from checkpoint: replayed state digest verified\n";
  }
  if (outcome.shed.total() > 0) {
    std::cout << "overload governor: shed " << outcome.shed.total() << " records ("
              << outcome.shed.capped() << " hard-capped)\n";
  }
  std::cout << outcome.report;
  std::cout << "final state digest: " << std::hex << outcome.final_digest
            << "  report digest: " << outcome.report_digest << std::dec << " ("
            << outcome.checkpoints_taken << " checkpoint(s), "
            << outcome.events_executed << " events)\n";
  return 0;
}

world::WorldConfig BuildWorldConfig(const Options& opt) {
  world::WorldConfig config;
  config.seed = opt.seed;
  config.ues = opt.world_ues;
  config.cells = opt.world_cells;
  // The engine rejects layouts with empty shards; the CLI keeps its
  // documented clamp-to-cells behaviour instead of erroring out.
  config.shards = std::max<std::size_t>(1, std::min(opt.world_shards, opt.world_cells));
  config.threaded = opt.world_mode != "seq";
  config.duration = sim::Duration{std::chrono::seconds{opt.duration_s}};
  config.handover_every = opt.world_handover_every;
  config.correlate_jobs = opt.jobs;
  return config;
}

void PrintWorldSummary(const world::WorldResult& result) {
  std::cout << "world: " << result.shards << " shard(s) ("
            << (result.threaded ? "threaded" : "sequential") << "), "
            << result.windows << " windows\n"
            << "  wall " << result.wall_seconds << " s, busy "
            << result.busy_seconds << " s, critical path "
            << result.critical_path_seconds << " s\n"
            << "  events " << result.events_executed << ", mailbox msgs "
            << result.messages_delivered << ", handovers " << result.handovers
            << '\n'
            << "  ledger: offered " << result.offered << " = delivered "
            << result.delivered << " + lost " << result.lost << " + in-flight "
            << result.in_flight << " (transit " << result.in_transit_uplink
            << " up / " << result.in_transit_delivery << " down)\n"
            << "  conservation: " << (result.conservation_ok ? "OK" : "VIOLATED")
            << '\n'
            << "  digest: " << std::hex << result.digest << std::dec << '\n';
  if (!result.quarantined_cells.empty()) {
    std::cout << "  quarantine: " << result.quarantined_cells.size()
              << " cell(s) dark, " << result.evacuated << " UE(s) evacuated, "
              << result.stranded << " stranded\n";
  }
  if (!result.conservation_ok) {
    std::cout << "  violation: " << result.conservation_error << '\n';
  }
}

/// World mode: the sharded multi-cell engine. Returns the process exit
/// code (nonzero on conservation violation or cross-check mismatch).
int RunWorld(const Options& opt) {
  if (opt.world_mode != "threads" && opt.world_mode != "seq") {
    std::cerr << "--world-mode must be 'threads' or 'seq'\n";
    return 2;
  }

  if (opt.world_chaos) {
    fault::WorldChaosConfig config;
    config.seed = opt.seed;
    config.ues = opt.world_ues;
    config.cells = opt.world_cells;
    config.shards = opt.world_shards;
    config.threaded = opt.world_mode != "seq";
    config.duration = sim::Duration{std::chrono::seconds{opt.duration_s}};
    if (opt.world_handover_every > 0) {
      config.handover_every = opt.world_handover_every;
    }
    const fault::WorldChaosOutcome outcome = fault::RunWorldChaos(config);
    std::cout << "world chaos: cell " << config.outage_cell << " outage, clean "
              << outcome.clean.delivered << " delivered vs faulted "
              << outcome.faulted.delivered << '\n';
    for (const std::string& violation : outcome.violations) {
      std::cerr << "violation: " << violation << '\n';
    }
    std::cout << "world chaos invariants: "
              << (outcome.invariants_ok ? "PASS" : "FAIL") << '\n';
    return outcome.invariants_ok ? 0 : 1;
  }

  world::WorldResult result;
  if (opt.world_supervised()) {
    resilience::WorldSupervisorOptions options;
    options.checkpoint_every_windows = opt.world_checkpoint_every;
    options.on_event = [](const std::string& m) {
      std::cout << "[world-supervisor] " << m << '\n';
    };
    if (!opt.world_checkpoint_out.empty()) {
      options.on_checkpoint = [&opt](const resilience::WorldSnapshot& snapshot) {
        snapshot.WriteFile(opt.world_checkpoint_out);
      };
    }

    resilience::WorldFaultSpec faults;
    faults.crash_shard = opt.world_kill_shard;
    faults.crash_window = opt.world_kill_window;
    if (opt.world_kill_cell != world::WorldConfig::kNoCrash) {
      // Blamed-cell mode: keep killing until the cell's restart budget
      // is exhausted and the supervisor quarantines it.
      faults.blame_cell = opt.world_kill_cell;
      faults.max_kills = 8;
      options.cell_restart_budget = 1;
      options.max_restarts = 4;
    }

    resilience::WorldSupervisor supervisor{BuildWorldConfig(opt), options};
    resilience::WorldSupervisedOutcome outcome;
    if (!opt.world_restore.empty()) {
      const resilience::WorldSnapshot start =
          resilience::WorldSnapshot::LoadFile(opt.world_restore);
      std::cout << "loaded world snapshot " << opt.world_restore << " @ window "
                << start.window << "/" << start.windows_total << " ("
                << start.mailbox.size() << " pending message(s))\n";
      outcome = supervisor.RunFrom(start, faults);
    } else {
      outcome = supervisor.Run(faults);
    }
    std::cout << "world supervision: crashes=" << outcome.crashes
              << " restarts=" << outcome.restarts << " restores=" << outcome.restores
              << " checkpoints=" << outcome.checkpoints_taken << " ("
              << outcome.last_snapshot_bytes << " B latest)\n";
    for (const std::size_t cell : outcome.quarantined_cells) {
      std::cout << "quarantined: cell " << cell << '\n';
    }
    if (!outcome.completed) {
      std::cerr << "supervised world did not complete: " << outcome.last_error << '\n';
      return 1;
    }
    result = std::move(outcome.result);
  } else {
    world::WorldEngine engine{BuildWorldConfig(opt)};
    result = engine.Run();
  }
  PrintWorldSummary(result);
  std::cout << "fleet: " << result.report.sessions << " session(s), "
            << result.report.scenarios.size() << " cell group(s)\n";

  if (!opt.fleet_report.empty()) {
    std::ofstream os{opt.fleet_report};
    if (!os) throw std::runtime_error("cannot write " + opt.fleet_report);
    os << result.fleet_json;
    std::cout << "wrote " << opt.fleet_report << '\n';
  }

  int exit_code = result.conservation_ok ? 0 : 1;
  if (opt.world_crosscheck) {
    // The determinism oracle: a 1-shard sequential run of the same
    // world must produce the exact same digest and report bytes. A
    // crash/restore run is held against an *uninterrupted* oracle —
    // recovery must be invisible — while a quarantine run legitimately
    // changes the world, so its oracle replays the same fault plan.
    world::WorldConfig reference = BuildWorldConfig(opt);
    reference.shards = 1;
    reference.threaded = false;
    world::WorldResult ref;
    if (opt.world_kill_cell != world::WorldConfig::kNoCrash) {
      resilience::WorldSupervisorOptions oracle_options;
      oracle_options.checkpoint_every_windows = opt.world_checkpoint_every;
      oracle_options.cell_restart_budget = 1;
      oracle_options.max_restarts = 4;
      resilience::WorldFaultSpec faults;
      faults.crash_shard = opt.world_kill_shard;
      faults.crash_window = opt.world_kill_window;
      faults.blame_cell = opt.world_kill_cell;
      faults.max_kills = 8;
      resilience::WorldSupervisor oracle{std::move(reference), oracle_options};
      resilience::WorldSupervisedOutcome oracle_outcome = oracle.Run(faults);
      if (!oracle_outcome.completed) {
        std::cerr << "cross-check oracle did not complete: "
                  << oracle_outcome.last_error << '\n';
        return 1;
      }
      ref = std::move(oracle_outcome.result);
    } else {
      world::WorldEngine oracle{std::move(reference)};
      ref = oracle.Run();
    }
    const bool match =
        ref.digest == result.digest && ref.fleet_json == result.fleet_json;
    std::cout << "digest cross-check: " << (match ? "PASS" : "FAIL") << " ("
              << result.shards << " shard(s) vs 1-shard oracle)\n";
    if (!match && exit_code == 0) exit_code = 1;
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Parse(argc, argv);

  try {
    if (opt.chaos_list) {
      for (const auto& s : fault::BuiltinScenarios()) {
        std::cout << s.name << " — " << s.description << '\n';
      }
      return 0;
    }
    if (!opt.chaos.empty()) return RunChaos(opt);
    if (opt.world()) return RunWorld(opt);
    if (opt.fleet_gate && opt.sweep == 0 && !opt.resilient()) {
      // Gate-only mode: no run requested — compare an existing report
      // file against the baseline (the cheap CI re-check path).
      if (opt.fleet_report.empty() || opt.fleet_baseline.empty()) {
        std::cerr << "gate-only mode needs --fleet-report=FILE (existing) and "
                     "--fleet-baseline=FILE\n";
        return 2;
      }
      std::ifstream in{opt.fleet_report};
      if (!in) throw std::runtime_error("cannot read " + opt.fleet_report);
      return GateReport(opt, obs::fleet::ParseReport(in));
    }
    if (opt.resilient()) {
      if (opt.sweep > 0) {
        std::cerr << "--sweep and the resilience flags are mutually exclusive\n";
        return 2;
      }
      if (opt.fleet()) {
        std::cerr << "the fleet flags and the resilience flags are mutually "
                     "exclusive (use --chaos=kill_restore_midrun for supervised "
                     "fleet runs)\n";
        return 2;
      }
      return RunResilient(opt);
    }
    if (opt.export_shards > 0 && opt.expose_path.empty()) {
      std::cerr << "--export-shards needs --expose=FILE as the shard base path\n";
      return 2;
    }
    if (!opt.perfetto_out.empty() && opt.ingest_out.empty()) {
      std::cerr << "--perfetto-out needs --ingest-out (it converts that file)\n";
      return 2;
    }

    // Telemetry ingest pipeline: per-producer ring shards → one collector
    // thread → rollup + columnar stream. Runs (single or sweep) join it
    // through ObsSession::extra_sink; see src/obs/pipeline/pipeline.hpp.
    std::unique_ptr<obs::pipeline::TelemetryPipeline> pipeline;
    std::ofstream ingest_os;
    if (opt.pipeline()) {
      obs::pipeline::TelemetryPipeline::Options popt;
      popt.collector.ring_capacity = 1 << 16;
      if (opt.rollup_bucket_ms > 0) {
        popt.rollup.bucket_width = std::chrono::milliseconds{opt.rollup_bucket_ms};
      }
      if (!opt.ingest_out.empty()) {
        ingest_os.open(opt.ingest_out, std::ios::binary);
        if (!ingest_os) throw std::runtime_error("cannot write " + opt.ingest_out);
        popt.columnar_out = &ingest_os;
      }
      popt.background = true;
      pipeline = std::make_unique<obs::pipeline::TelemetryPipeline>(popt);
    }

    // Fleet aggregation folds every run's summary in index order, so the
    // report is byte-identical at any --jobs.
    obs::fleet::FleetAggregator fleet_aggregator;
    obs::fleet::SloEngine fleet_engine{LoadSlos(opt)};

    if (opt.sweep > 0) {
      // Every run is a pure function of its index (seed derived from
      // --seed), and outputs print in index order — so the sweep's output
      // is byte-identical for --jobs=1 and --jobs=8. (The pipeline's
      // rollup folds are commutative, so its aggregates are too; only the
      // columnar stream's cross-run interleaving depends on scheduling.)
      const auto n = static_cast<std::size_t>(opt.sweep);
      sim::ParallelRunner runner{opt.jobs};
      if (pipeline) runner.set_worker_hooks(pipeline->MakeWorkerHooks());
      std::cout << "sweep: " << n << " runs, " << runner.jobs() << " jobs, base seed "
                << opt.seed << '\n';
      const std::vector<RunResult> outputs =
          runner.Map<RunResult>(n, [&](std::size_t i) {
            return RunOne(opt, sim::DeriveSeed(opt.seed, i), i, /*sweep=*/true);
          });
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        std::cout << "--- run " << i << " ---\n" << outputs[i].text;
        if (opt.fleet()) {
          fleet_aggregator.Fold(outputs[i].summary);
          fleet_engine.Observe(outputs[i].summary);
        }
      }
    } else {
      if (pipeline) pipeline->BindCurrentThread();
      const RunResult result = RunOne(opt, opt.seed, 0, /*sweep=*/false);
      if (pipeline) pipeline->UnbindCurrentThread();
      std::cout << result.text;
      if (opt.fleet()) {
        fleet_aggregator.Fold(result.summary);
        fleet_engine.Observe(result.summary);
      }
    }

    if (pipeline) {
      // Finish publishes `pipeline.*` gauges into whichever registry is
      // installed here — a fleet-scope one, so the sharded exposition
      // carries the ingest counters alongside the rollup series.
      obs::MetricsRegistry fleet_registry;
      {
        obs::ScopedMetrics fleet_scope{&fleet_registry};
        pipeline->Finish();
      }
      ingest_os.close();
      if (!opt.ingest_out.empty()) std::cout << "wrote " << opt.ingest_out << '\n';

      if (!opt.rollup_out.empty()) {
        std::ofstream os{opt.rollup_out};
        if (!os) throw std::runtime_error("cannot write " + opt.rollup_out);
        pipeline->rollup().WriteJson(os);
        std::cout << "wrote " << opt.rollup_out << '\n';
      }
      for (unsigned s = 0; s < opt.export_shards; ++s) {
        const std::string path = TagPath(opt.expose_path, ".shard" + std::to_string(s));
        std::ofstream os{path};
        if (!os) throw std::runtime_error("cannot write " + path);
        obs::pipeline::WritePrometheusShard(
            os, pipeline->rollup(), &fleet_registry,
            {.shard = s, .shard_count = opt.export_shards});
        std::cout << "wrote " << path << '\n';
      }
      if (!opt.perfetto_out.empty()) {
        if (opt.ingest_out.empty()) {
          std::cerr << "--perfetto-out needs --ingest-out (it converts that file)\n";
          return 2;
        }
        std::ifstream in{opt.ingest_out, std::ios::binary};
        if (!in) throw std::runtime_error("cannot read " + opt.ingest_out);
        std::ofstream os{opt.perfetto_out};
        if (!os) throw std::runtime_error("cannot write " + opt.perfetto_out);
        const std::uint64_t emitted = obs::pipeline::WriteChunkedPerfetto(in, os);
        std::cout << "wrote " << opt.perfetto_out << " (" << emitted << " events)\n";
      }
    }

    if (opt.fleet()) {
      const int fleet_code = FinishFleet(opt, fleet_aggregator, fleet_engine);
      if (fleet_code != 0) return fleet_code;
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  return 0;
}
