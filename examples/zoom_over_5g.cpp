// The paper's §2 experiment as one program: a 20-minute two-party
// Zoom-like call where the sender is on a private 5G cell and cross
// traffic steps through 0 / 14 / 16 / 18 Mbps five-minute phases. Prints a
// per-phase report (delay, QoE) and the session-wide cross-layer findings.
//
//   ./build/examples/zoom_over_5g [seconds_per_phase]
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace athena;
  using namespace std::chrono_literals;
  using sim::kEpoch;

  // Default five-minute phases; pass a smaller number for a quick look.
  const int phase_s = argc > 1 ? std::atoi(argv[1]) : 300;
  const auto phase = std::chrono::seconds{phase_s};

  sim::Simulator simulator;
  app::SessionConfig config;
  config.seed = 2024;
  config.channel = ran::ChannelModel::FadingRadio();
  config.cell.cell_ul_capacity_bps = 25e6;
  config.cross_traffic = net::CapacityTrace::PaperCrossTrafficSchedule(phase);
  config.cross_burstiness = 0.35;
  config.cross_modulation_sigma = 0.5;
  app::Session session{simulator, config};

  std::cout << "Simulating a " << 4 * phase_s << " s call (4 phases of " << phase_s
            << " s: cross traffic 0 / 14 / 16 / 18 Mbps)...\n";
  session.Run(4 * phase);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  const auto owd = core::Analyzer::UplinkOwdSeries(data);

  stats::PrintBanner(std::cout, "per-phase uplink delay (ms)");
  stats::Table phases{{"phase", "cross Mbps", "p50", "p95", "p99", "max"}};
  const char* labels[] = {"idle", "14 Mbps", "16 Mbps", "18 Mbps"};
  const double rates[] = {0, 14, 16, 18};
  for (int i = 0; i < 4; ++i) {
    stats::Cdf cdf{owd.Slice(kEpoch + i * phase, kEpoch + (i + 1) * phase).Values()};
    if (cdf.empty()) continue;
    phases.AddRow({labels[i], stats::Fmt(rates[i], 0), stats::Fmt(cdf.Median(), 2),
                   stats::Fmt(cdf.P(95), 2), stats::Fmt(cdf.P(99), 2),
                   stats::Fmt(cdf.Max(), 1)});
  }
  phases.Print(std::cout);

  stats::PrintBanner(std::cout, "receiver QoE");
  auto& qoe = session.qoe();
  std::cout << "receive bitrate p50: " << stats::Fmt(qoe.ReceiveBitrateKbps().Median(), 0)
            << " kbps\nframe rate p50:     " << stats::Fmt(qoe.FrameRateFps().Median(), 1)
            << " fps\nSSIM p50:           " << stats::Fmt(qoe.Ssim().Median(), 3)
            << "\nmouth-to-ear p50:   " << stats::Fmt(qoe.MouthToEarMs().Median(), 1)
            << " ms (p99 " << stats::Fmt(qoe.MouthToEarMs().P(99), 0) << " ms)"
            << "\nlate frames:        " << qoe.late_frames() << " of "
            << qoe.video_frames_rendered() << " rendered\n";

  stats::PrintBanner(std::cout, "what Athena saw across the layers");
  const auto decomp = core::Analyzer::MeanDecomposition(data);
  std::cout << "mean uplink delay " << stats::Fmt(decomp.total_ms, 2) << " ms = grant/slot wait "
            << stats::Fmt(decomp.sched_wait_ms, 2) << " + slot trickle "
            << stats::Fmt(decomp.spread_ms, 2) << " + HARQ " << stats::Fmt(decomp.rtx_ms, 2)
            << " + fixed " << stats::Fmt(decomp.remainder_ms, 2) << '\n';
  for (const auto& [cause, count] : core::Analyzer::RootCauseBreakdown(data)) {
    std::cout << "  " << core::ToString(cause) << ": " << count << " packets\n";
  }
  const auto& counters = session.ran_uplink()->counters();
  std::cout << "scheduler efficiency: " << stats::Fmt(100 * counters.GrantUtilization(), 1)
            << "% of granted bytes carried data; " << counters.wasted_requested_bytes
            << " requested bytes over-granted; " << counters.empty_tb_rtx
            << " empty TBs retransmitted\n";
  std::cout << "adaptation: " << session.sender().adaptation().mode_downgrades()
            << " ladder downgrades, " << session.sender().video_encoder().frames_skipped()
            << " frames skipped under jitter\n";
  return 0;
}
